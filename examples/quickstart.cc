// quickstart — a guided tour of the Personal Process Manager.
//
// This example stands up a small networked computing environment (three
// machines on one Ethernet, as a mid-80s Berkeley lab would have), logs
// a user in, and exercises the PPM's core capabilities end to end:
//
//   1. session establishment (inetd → pmd → LPM, Figure 2 of the paper);
//   2. the LPM as process creation server, locally and remotely;
//   3. a genealogical snapshot of the distributed computation (Figure 1);
//   4. process control across machine boundaries (stop / resume / kill);
//   5. exited-process resource statistics.
//
// Everything below the `PpmClient` line is the public API a tool writer
// sees; the cluster object is the simulated world.
#include <cstdio>

#include "core/cluster.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 501;
const char* kUser = "grace";

// Small helper: run the world until an async call completes.
template <typename Pred>
void WaitFor(core::Cluster& cluster, Pred done) {
  while (!done()) cluster.RunFor(sim::Millis(5));
}
}  // namespace

int main() {
  // --- the world -----------------------------------------------------
  core::Cluster cluster;
  cluster.AddHost("ernie", host::HostType::kVax780);
  cluster.AddHost("bert", host::HostType::kVax750);
  cluster.AddHost("kim", host::HostType::kSun2);
  cluster.Ethernet({"ernie", "bert", "kim"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);  // ~/.rhosts on every host
  cluster.SetRecoveryList(kUid, {"ernie", "bert"});  // ~/.recovery
  cluster.RunFor(sim::Millis(10));

  // --- 1. session establishment ----------------------------------------
  tools::PpmClient* me = tools::SpawnTool(cluster.host("ernie"), kUser, kUid, "shell");
  bool up = false;
  me->Start([&](bool ok, std::string err) {
    up = ok;
    if (!ok) std::fprintf(stderr, "PPM session failed: %s\n", err.c_str());
  });
  WaitFor(cluster, [&] { return up; });
  std::printf("session up: local LPM on %s, crash coordinator at %s\n",
              me->lpm_host().c_str(), me->session_ccs().c_str());

  // --- 2. create a distributed computation ------------------------------
  // A coordinator at home, workers on the other two machines.
  core::GPid coord, w1, w2;
  bool done = false;
  me->CreateProcess("ernie", "coordinator", {}, [&](const core::CreateResp& r) {
    coord = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  done = false;
  me->CreateProcess("bert", "worker", coord, [&](const core::CreateResp& r) {
    w1 = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  done = false;
  me->CreateProcess("kim", "worker", coord, [&](const core::CreateResp& r) {
    w2 = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  std::printf("created %s, %s, %s\n", core::ToString(coord).c_str(),
              core::ToString(w1).c_str(), core::ToString(w2).c_str());

  // --- 3. snapshot -------------------------------------------------------
  std::optional<tools::SnapshotResult> snap;
  tools::RunSnapshotTool(*me, [&](const tools::SnapshotResult& r) { snap = r; });
  WaitFor(cluster, [&] { return snap.has_value(); });
  std::printf("\ngenealogical snapshot (%s):\n%s\n", snap->summary.c_str(),
              snap->rendering.c_str());

  // --- 4. control across machine boundaries ------------------------------
  bool ok = false;
  done = false;
  tools::StopProcess(*me, w2, [&](bool success, std::string) {
    ok = success;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  std::printf("stopped %s on a machine two API calls away: %s\n",
              core::ToString(w2).c_str(), ok ? "ok" : "FAILED");
  done = false;
  tools::ResumeProcess(*me, w2, [&](bool, std::string) { done = true; });
  WaitFor(cluster, [&] { return done; });

  // Kill the whole computation with one call (snapshot + fan-out).
  std::optional<std::pair<size_t, size_t>> killed;
  me->SignalAll(host::Signal::kSigKill,
                [&](size_t k, size_t failed) { killed = {k, failed}; });
  WaitFor(cluster, [&] { return killed.has_value(); });
  std::printf("killed the computation: %zu processes, %zu failures\n", killed->first,
              killed->second);
  cluster.RunFor(sim::Seconds(1));

  // --- 5. post-mortem statistics -------------------------------------------
  std::optional<tools::RusageResult> stats;
  tools::RunRusageTool(*me, "bert", [&](const tools::RusageResult& r) { stats = r; });
  WaitFor(cluster, [&] { return stats.has_value(); });
  std::printf("\nexited-process statistics on bert:\n%s", stats->table.c_str());

  me->Disconnect();
  std::printf("\nquickstart complete.\n");
  return 0;
}

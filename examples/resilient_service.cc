// resilient_service — everything the extensions add, in one scenario.
//
// A user runs a long-lived three-worker service.  On top of the 1986
// PPM this example layers the three features the paper sketched but did
// not build, all implemented in this repository:
//
//   * a Supervisor (the "robust protocols implemented on top of our
//     basic mechanism") that restarts crashed workers and fails them
//     over to other machines;
//   * name-server-assisted CCS recovery (Section 5's alternative to the
//     ~/.recovery walk);
//   * process migration ("change … possibly the site of execution"):
//     the operator drains a machine for maintenance by migrating its
//     worker away, live.
//
// Plus the future-work display tool: the final state is exported as
// Graphviz DOT.
#include <cstdio>

#include "core/cluster.h"
#include "core/lpm.h"
#include "core/nameserver.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"
#include "tools/dot_export.h"
#include "tools/supervisor.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 505;
const char* kUser = "radia";

template <typename Pred>
bool WaitFor(core::Cluster& cluster, Pred done,
             sim::SimDuration horizon = sim::Seconds(300)) {
  sim::SimTime deadline = cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!done()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(sim::Millis(10));
  }
  return true;
}
}  // namespace

int main() {
  core::ClusterConfig config;
  config.lpm.ccs_nameserver = "ns";  // Section 5's name-server variant
  core::Cluster cluster(config);
  cluster.AddHost("ns", host::HostType::kVax750);
  cluster.AddHost("ops", host::HostType::kVax780);
  cluster.AddHost("node1", host::HostType::kVax780);
  cluster.AddHost("node2", host::HostType::kVax750);
  cluster.AddHost("node3", host::HostType::kSun2);
  cluster.Ethernet(cluster.host_names());
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  core::StartCcsNameServer(cluster.host("ns"));
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* console = tools::SpawnTool(cluster.host("ops"), kUser, kUid, "console");
  bool up = false;
  console->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });
  std::printf("console up; CCS registered with the name server on 'ns'\n");

  // --- the supervised service ------------------------------------------
  tools::Supervisor supervisor(cluster, *console);
  supervisor.set_event_handler([&](const std::string& name, const std::string& what,
                                   const std::string& where) {
    std::printf("  [supervisor] %-8s %-10s %s\n", name.c_str(), what.c_str(),
                where.c_str());
  });
  supervisor.Launch({
      {"frontend", "svc-frontend", {"node1", "node2", "node3"}},
      {"indexer", "svc-indexer", {"node2", "node3", "node1"}},
      {"store", "svc-store", {"node3", "node1", "node2"}},
  });
  WaitFor(cluster, [&] { return supervisor.AllHealthy(); });
  std::printf("service healthy: 3 workers across 3 nodes\n");

  // --- a worker crashes: in-place restart ---------------------------------
  core::GPid frontend = supervisor.status().at("frontend").gpid;
  cluster.host("node1").kernel().PostSignal(frontend.pid, host::Signal::kSigKill, kUid);
  WaitFor(cluster, [&] {
    return supervisor.AllHealthy() && supervisor.status().at("frontend").gpid != frontend;
  });
  std::printf("frontend crashed and was restarted on %s\n",
              supervisor.status().at("frontend").host.c_str());

  // --- a node dies: failover ----------------------------------------------
  cluster.Crash("node2");
  WaitFor(cluster, [&] {
    return supervisor.AllHealthy() && supervisor.status().at("indexer").host != "node2";
  });
  std::printf("node2 crashed; indexer failed over to %s\n",
              supervisor.status().at("indexer").host.c_str());
  cluster.Reboot("node2");

  // --- planned maintenance: migrate, don't kill -----------------------------
  // node3 needs new memory boards; move the store off it live.  (The
  // supervisor would treat the kill as a crash; migration keeps the
  // incarnation chain intact instead.)
  supervisor.Stop();  // hand control to the operator for the maintenance
  core::GPid store = supervisor.status().at("store").gpid;
  std::optional<core::MigrateResp> moved;
  console->Migrate(store, "node1", [&](const core::MigrateResp& r) { moved = r; });
  WaitFor(cluster, [&] { return moved.has_value(); });
  std::printf("store migrated %s: %s -> %s\n", moved->ok ? "ok" : "FAILED",
              core::ToString(store).c_str(), core::ToString(moved->new_gpid).c_str());

  // --- the ops host itself dies: name-server recovery ------------------------
  console->Disconnect();
  cluster.Crash("ops");
  WaitFor(cluster, [&] {
    for (const char* n : {"node1", "node2", "node3"}) {
      core::Lpm* lpm = cluster.FindLpm(n, kUid);
      if (lpm && lpm->is_ccs()) return true;
    }
    return false;
  });
  std::string new_ccs;
  for (const char* n : {"node1", "node2", "node3"}) {
    core::Lpm* lpm = cluster.FindLpm(n, kUid);
    if (lpm && lpm->is_ccs()) new_ccs = n;
  }
  std::printf("ops crashed; '%s' took over as CCS via the name server\n",
              new_ccs.c_str());

  // --- final picture -----------------------------------------------------------
  // The ops LPM died with its host and its knowledge died with it (paper
  // Section 5) — so the returning operator connects where the computation
  // lives: the acting CCS, whose sibling graph reaches every manager.
  cluster.Reboot("ops");
  cluster.RunFor(sim::Seconds(2));
  tools::PpmClient* console2 =
      tools::SpawnTool(cluster.host(new_ccs), kUser, kUid, "console");
  up = false;
  console2->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });
  std::printf("reconnected on %s (the acting CCS)\n", new_ccs.c_str());
  std::optional<core::SnapshotResp> snap;
  console2->Snapshot([&](const core::SnapshotResp& r) { snap = r; });
  WaitFor(cluster, [&] { return snap.has_value(); });
  std::printf("\nfinal forest:\n%s\n",
              tools::RenderForest(tools::BuildForest(snap->records)).c_str());
  std::printf("Graphviz export (pipe into `dot -Tpng`):\n%s",
              tools::ExportDot(snap->records).c_str());
  std::printf("\nresilient-service example complete.\n");
  return 0;
}

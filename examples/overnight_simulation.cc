// overnight_simulation — the PPM outliving a login session.
//
// The paper: "The PPM may outlive the user login session in which it was
// created … a user's request for a LPM following a new login will yield
// an existing one.  This simple scheme allows users to regain knowledge
// and control of all of the processes that have been created under the
// PPM mechanism in the past and are still alive."
//
// A researcher kicks off a three-host simulation in the evening, logs
// out, and logs back in "the next morning" (an hour of virtual time
// later, compressed here) to find the whole computation still tracked —
// including a process that was started *outside* the PPM and adopted.
#include <cstdio>

#include "core/cluster.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 503;
const char* kUser = "barbara";

template <typename Pred>
void WaitFor(core::Cluster& cluster, Pred done) {
  while (!done()) cluster.RunFor(sim::Millis(5));
}
}  // namespace

int main() {
  core::ClusterConfig config;
  config.lpm.time_to_live = sim::Seconds(7200);  // generous: overnight
  core::Cluster cluster(config);
  cluster.AddHost("desk", host::HostType::kSun2);
  cluster.AddHost("cruncher1", host::HostType::kVax780);
  cluster.AddHost("cruncher2", host::HostType::kVax780);
  cluster.Ethernet({"desk", "cruncher1", "cruncher2"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.RunFor(sim::Millis(10));

  // --- evening: start the run --------------------------------------------
  tools::PpmClient* evening = tools::SpawnTool(cluster.host("desk"), kUser, kUid, "shell");
  bool up = false;
  evening->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });

  core::GPid driver, part1, part2;
  bool done = false;
  evening->CreateProcess("desk", "mc-driver", {}, [&](const core::CreateResp& r) {
    driver = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  done = false;
  evening->CreateProcess("cruncher1", "mc-partition-1", driver,
                         [&](const core::CreateResp& r) {
                           part1 = r.gpid;
                           done = true;
                         });
  WaitFor(cluster, [&] { return done; });
  done = false;
  evening->CreateProcess("cruncher2", "mc-partition-2", driver,
                         [&](const core::CreateResp& r) {
                           part2 = r.gpid;
                           done = true;
                         });
  WaitFor(cluster, [&] { return done; });

  // A colleague's helper script was already running on cruncher1,
  // started without the PPM; adopt it so it is administered too.
  host::Pid stray =
      cluster.host("cruncher1").kernel().Spawn(host::kNoPid, kUid, "tail -f run.log");
  done = false;
  evening->Adopt(core::GPid{"cruncher1", stray}, host::kTraceAll,
                 [&](const core::AdoptResp& r) {
                   done = true;
                   std::printf("adopted pre-existing process: %zu process(es)\n",
                               r.adopted_pids.size());
                 });
  WaitFor(cluster, [&] { return done; });

  std::printf("evening: run started, logging out.\n");
  evening->Disconnect();

  // --- overnight ------------------------------------------------------------
  // The user is asleep; the PPM is not.  The partitions exchange results
  // with the driver every few minutes, and the kernel's IPC tracing
  // records every message for the morning's analysis.
  for (int hour_slice = 0; hour_slice < 12; ++hour_slice) {
    cluster.RunFor(sim::Seconds(300));
    cluster.host("cruncher1").kernel().RecordIpc(part1.pid, /*sent=*/true, 2048);
    cluster.host("cruncher2").kernel().RecordIpc(part2.pid, /*sent=*/true, 2048);
    cluster.host("cruncher1").kernel().RecordIpc(part1.pid, /*sent=*/false, 128);
  }

  // --- morning: new login, same PPM ----------------------------------------
  tools::PpmClient* morning =
      tools::SpawnTool(cluster.host("desk"), kUser, kUid, "shell");
  up = false;
  morning->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });
  std::printf("morning: reconnected to the existing LPM on %s\n",
              morning->lpm_host().c_str());

  std::optional<tools::SnapshotResult> snap;
  tools::RunSnapshotTool(*morning, [&](const tools::SnapshotResult& r) { snap = r; });
  WaitFor(cluster, [&] { return snap.has_value(); });
  std::printf("\nthe overnight computation, still under management:\n%s\n",
              snap->rendering.c_str());

  // The run is done; take the partitions down gently and check the books.
  std::optional<std::pair<size_t, size_t>> killed;
  morning->SignalAll(host::Signal::kSigTerm,
                     [&](size_t k, size_t f) { killed = {k, f}; });
  WaitFor(cluster, [&] { return killed.has_value(); });
  cluster.RunFor(sim::Seconds(1));
  std::printf("terminated %zu processes (%zu failures)\n", killed->first, killed->second);

  std::optional<tools::IpcTraceResult> trace;
  tools::RunIpcTraceTool(*morning, "cruncher1", host::kNoPid,
                         [&](const tools::IpcTraceResult& r) { trace = r; });
  WaitFor(cluster, [&] { return trace.has_value(); });
  std::printf("\nIPC activity recorded overnight on cruncher1: %s",
              trace->report.c_str());

  morning->Disconnect();
  std::printf("\novernight-simulation example complete.\n");
  return 0;
}

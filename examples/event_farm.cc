// event_farm — an event-parallel farm built on the group operations.
//
// The paper's computations are gangs of cooperating processes spread
// over the network; this example runs one as a farm: a dispatcher feeds
// work items to a group of workers spread over 16 machines, using every
// piece of the group subsystem (src/group/) at once:
//
//   * gang-spawn: 32 workers come up across 16 hosts in one client
//     round, all-or-nothing;
//   * barrier: the dispatcher and the per-site watch agents synchronize
//     at a cluster-wide barrier before any work flows;
//   * global envars: each work item is published as a change to the
//     replicated `farm.task` variable; per-site watchers turn the
//     change into a local signal to a worker (the event-parallel part);
//   * the `la` load estimator: every batch the dispatcher re-aims the
//     farm at the least-loaded machine ("processing power is cheap,
//     while humans are not" — so let the machine pick the machine);
//   * triggers: a worker killed mid-run is respawned by an exit trigger
//     and re-enrolled in the group, invisibly to the dispatcher;
//   * group signal/join: shutdown is one gsig, and gjoin collects every
//     exit status — including the murdered worker's and its
//     replacement's.
#include <cstdio>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tools/client.h"
#include "tools/ppmstat.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 507;
const char* kUser = "barbara";
constexpr int kHosts = 16;
constexpr int kWorkersPerHost = 2;
constexpr int kEvents = 1000;
constexpr int kBatch = 100;

template <typename Pred>
bool WaitFor(core::Cluster& cluster, Pred done,
             sim::SimDuration horizon = sim::Seconds(300)) {
  sim::SimTime deadline = cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!done()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(sim::Millis(10));
  }
  return true;
}

std::string HostName(int i) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "n%02d", i + 1);
  return buf;
}
}  // namespace

int main() {
  core::Cluster cluster;
  std::vector<std::string> hosts;
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(HostName(i));
    cluster.AddHost(hosts.back(), i % 3 == 0   ? host::HostType::kVax780
                                  : i % 3 == 1 ? host::HostType::kVax750
                                               : host::HostType::kSun2);
  }
  cluster.Ethernet(hosts);
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.RunFor(sim::Millis(10));

  // The dispatcher's LPM (n01) will coordinate the group.
  tools::PpmClient* dispatcher =
      tools::SpawnTool(cluster.host(hosts[0]), kUser, kUid, "farm-dispatcher");
  bool up = false;
  dispatcher->Start([&](bool ok, std::string err) {
    up = ok;
    if (!ok) std::fprintf(stderr, "dispatcher session failed: %s\n", err.c_str());
  });
  WaitFor(cluster, [&] { return up; });
  std::printf("dispatcher connected on %s\n", dispatcher->lpm_host().c_str());

  // --- gang-spawn the farm ------------------------------------------------
  std::vector<std::string> spawn_hosts, commands;
  for (int w = 0; w < kHosts * kWorkersPerHost; ++w) {
    spawn_hosts.push_back(hosts[w % kHosts]);
    commands.push_back("farm-worker --shard " + std::to_string(w));
  }
  std::optional<core::GroupSpawnResp> gang;
  dispatcher->GroupSpawn("farm", spawn_hosts, commands,
                         [&](const core::GroupSpawnResp& r) { gang = r; });
  WaitFor(cluster, [&] { return gang.has_value(); });
  if (!gang->ok) {
    std::fprintf(stderr, "gang spawn failed: %s\n", gang->error.c_str());
    return 1;
  }
  std::printf("gang-spawned %zu workers across %d hosts (one round)\n",
              gang->members.size(), kHosts);

  // --- per-site watch agents ----------------------------------------------
  // Four sites turn `farm.task` changes into local worker signals.
  // (SIGCONT is the benign tap: delivered and counted, never lethal.)
  const std::vector<std::string> sites = {hosts[1], hosts[4], hosts[8], hosts[12]};
  std::vector<tools::PpmClient*> agents;
  for (const std::string& site : sites) {
    tools::PpmClient* agent = tools::SpawnTool(cluster.host(site), kUser, kUid,
                                               "farm-agent");
    bool agent_up = false;
    agent->Start([&](bool ok, std::string) { agent_up = ok; });
    WaitFor(cluster, [&] { return agent_up; });
    core::GPid local_worker;
    for (const core::GPid& m : gang->members) {
      if (m.host == site) local_worker = m;
    }
    core::TriggerSpec spec;
    spec.action = core::TriggerAction::kSignal;
    spec.action_signal = host::Signal::kSigCont;
    spec.action_target = local_worker;
    std::optional<core::EnvarWatchResp> watch;
    agent->GenvWatch("farm.task", spec,
                     [&](const core::EnvarWatchResp& r) { watch = r; });
    WaitFor(cluster, [&] { return watch.has_value(); });
    std::printf("  watch %llu on %s -> %s\n",
                static_cast<unsigned long long>(watch->watch_id), site.c_str(),
                core::ToString(local_worker).c_str());
    agents.push_back(agent);
  }

  // --- barrier: nobody dispatches until every site is armed ----------------
  const uint32_t kParties = 1 + static_cast<uint32_t>(sites.size());
  size_t released = 0;
  dispatcher->BarrierEnter("farm-start", 1, kParties,
                           [&](const core::BarrierEnterResp& r) {
                             if (r.ok && r.released) ++released;
                           });
  for (tools::PpmClient* agent : agents) {
    agent->BarrierEnter("farm-start", 1, kParties,
                        [&](const core::BarrierEnterResp& r) {
                          if (r.ok && r.released) ++released;
                        });
  }
  WaitFor(cluster, [&] { return released == kParties; });
  std::printf("barrier released: %u parties synchronized cluster-wide\n", kParties);

  // --- a worker is murdered mid-run; a trigger resurrects it --------------
  // Arm the exit trigger now, on the victim's own manager: respawn the
  // worker and re-enroll it in the farm, with nobody the wiser.
  core::GPid victim;
  for (const core::GPid& m : gang->members) {
    if (m.host == hosts[3]) victim = m;
  }
  core::TriggerSpec respawn;
  respawn.event_kind = host::KEvent::kExit;
  respawn.subject_pid = victim.pid;
  respawn.action = core::TriggerAction::kSpawn;
  respawn.spawn_command = "farm-worker --respawned";
  respawn.group = "farm";
  std::optional<core::TriggerResp> armed;
  dispatcher->InstallTrigger(victim.host, respawn,
                             [&](const core::TriggerResp& r) { armed = r; });
  WaitFor(cluster, [&] { return armed.has_value(); });
  std::printf("respawn trigger armed on %s for %s\n", victim.host.c_str(),
              core::ToString(victim).c_str());

  // --- dispatch 1000 events through the envar fabric -----------------------
  int done_events = 0;
  for (int batch = 0; batch * kBatch < kEvents; ++batch) {
    // Rebalance: aim this batch at the machine with the lowest load
    // average (the calibrated `la` estimator the cost model runs on).
    std::string target = hosts[0];
    double best = 1e18;
    for (const std::string& h : hosts) {
      double la = cluster.host(h).kernel().LoadAverage();
      if (la < best) {
        best = la;
        target = h;
      }
    }
    std::optional<core::EnvarSetResp> aimed;
    dispatcher->GenvSet("farm.assign", target,
                        [&](const core::EnvarSetResp& r) { aimed = r; });
    WaitFor(cluster, [&] { return aimed.has_value(); });
    std::printf("  batch %2d -> %s (la %.2f)\n", batch, target.c_str(), best);

    for (int i = 0; i < kBatch; ++i) {
      int event = batch * kBatch + i;
      std::optional<core::EnvarSetResp> resp;
      dispatcher->GenvSet("farm.task", "evt-" + std::to_string(event),
                          [&](const core::EnvarSetResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) ++done_events;
    }
    if (batch == 4) {
      // Mid-run murder: the worker dies, its manager's trigger respawns
      // it and re-enrolls the replacement with the coordinator.
      cluster.host(victim.host).kernel().PostSignal(victim.pid,
                                                    host::Signal::kSigKill, kUid);
      std::printf("  killed %s mid-run\n", core::ToString(victim).c_str());
    }
  }
  std::printf("dispatched %d events via envar watchers\n", done_events);

  // Wait until the replacement is enrolled: the coordinator's ledger
  // shows 33 members, exactly one of them exited (the victim).
  bool restarted = WaitFor(cluster, [&] {
    core::Lpm* lpm = cluster.FindLpm(hosts[0], kUid);
    if (lpm == nullptr) return false;
    auto it = lpm->group_table().groups().find("farm");
    if (it == lpm->group_table().groups().end()) return false;
    size_t exited = 0;
    for (const auto& m : it->second) {
      if (m.exited) ++exited;
    }
    return it->second.size() == static_cast<size_t>(kHosts * kWorkersPerHost + 1) &&
           exited == 1;
  });
  std::printf("trigger-driven restart %s\n", restarted ? "observed" : "NOT observed");

  // --- one stat round shows the farm --------------------------------------
  std::optional<tools::PpmStatResult> stat;
  tools::RunPpmStatTool(*dispatcher, [&](const tools::PpmStatResult& r) { stat = r; });
  WaitFor(cluster, [&] { return stat.has_value(); });
  std::printf("\n%s\n", stat->table.c_str());

  // --- shutdown: one gsig, one gjoin ---------------------------------------
  std::optional<core::GroupSignalResp> sig;
  dispatcher->GroupSignal("farm", host::Signal::kSigKill,
                          [&](const core::GroupSignalResp& r) { sig = r; });
  WaitFor(cluster, [&] { return sig.has_value(); });
  std::printf("gsig kill: delivered %u, failed %u\n", sig->delivered, sig->failed);

  std::optional<core::GroupJoinResp> join;
  dispatcher->GroupJoin("farm", [&](const core::GroupJoinResp& r) { join = r; });
  WaitFor(cluster, [&] { return join.has_value(); });
  std::printf("gjoin: %zu exit statuses collected\n", join->exits.size());

  for (tools::PpmClient* agent : agents) agent->Disconnect();
  dispatcher->Disconnect();
  std::printf("\nevent-farm example complete: %d events, %zu workers, 1 resurrection.\n",
              done_events, join->exits.size());
  return 0;
}

// ppmsh — a miniature command interpreter over the PPM.
//
// The paper (Section 4): "The PPM mechanism is not integrated with any
// command interpreter, and thus its services must be obtained by one of
// a series of tools (which may include command interpreters)."  This is
// that command interpreter: a scripted shell whose verbs map one-to-one
// onto the client library.  Run it to watch a whole session transcript;
// feed it your own script on stdin with `ppmsh -`.
//
// Verbs:
//   hosts                          list machines
//   run <host> <command...>        create a process (adopted at birth)
//   ps                             genealogical snapshot (Figure 1 view)
//   stop|cont|kill <host> <pid>    process control across machines
//   migrate <host> <pid> <dest>    move a process (extension)
//   rusage <host>                  exited-process statistics
//   hist <host>                    event timeline
//   dot                            Graphviz export of the snapshot
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"
#include "tools/dot_export.h"
#include "tools/timeline.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 506;
const char* kUser = "dennis";

template <typename Pred>
void WaitFor(core::Cluster& cluster, Pred done) {
  while (!done()) cluster.RunFor(sim::Millis(5));
}

struct Shell {
  core::Cluster& cluster;
  tools::PpmClient& client;

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty() || verb[0] == '#') return;
    std::printf("ppm%% %s\n", line.c_str());
    if (verb == "hosts") {
      for (const auto& h : cluster.host_names()) {
        std::printf("  %-10s %s\n", h.c_str(),
                    cluster.host(h).up() ? host::ToString(cluster.host(h).type())
                                         : "(down)");
      }
    } else if (verb == "run") {
      std::string target;
      in >> target;
      std::string command;
      std::getline(in, command);
      if (!command.empty() && command[0] == ' ') command.erase(0, 1);
      std::optional<core::CreateResp> resp;
      client.CreateProcess(target, command,
                           {}, [&](const core::CreateResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  started %s\n", core::ToString(resp->gpid).c_str());
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else if (verb == "ps") {
      std::optional<tools::SnapshotResult> result;
      tools::RunSnapshotTool(client, [&](const tools::SnapshotResult& r) { result = r; });
      WaitFor(cluster, [&] { return result.has_value(); });
      std::printf("%s  (%s)\n", result->rendering.c_str(), result->summary.c_str());
    } else if (verb == "stop" || verb == "cont" || verb == "kill") {
      std::string target_host;
      host::Pid pid;
      in >> target_host >> pid;
      host::Signal sig = verb == "stop" ? host::Signal::kSigStop
                         : verb == "cont" ? host::Signal::kSigCont
                                          : host::Signal::kSigKill;
      std::optional<core::SignalResp> resp;
      client.Signal(core::GPid{target_host, pid}, sig,
                    [&](const core::SignalResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      std::printf("  %s\n", resp->ok ? "ok" : resp->error.c_str());
    } else if (verb == "migrate") {
      std::string target_host, dest;
      host::Pid pid;
      in >> target_host >> pid >> dest;
      std::optional<core::MigrateResp> resp;
      client.Migrate(core::GPid{target_host, pid}, dest,
                     [&](const core::MigrateResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  now %s\n", core::ToString(resp->new_gpid).c_str());
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else if (verb == "rusage") {
      std::string target_host;
      in >> target_host;
      std::optional<tools::RusageResult> result;
      tools::RunRusageTool(client, target_host,
                           [&](const tools::RusageResult& r) { result = r; });
      WaitFor(cluster, [&] { return result.has_value(); });
      std::printf("%s", result->table.c_str());
    } else if (verb == "hist") {
      std::string target_host;
      in >> target_host;
      std::optional<core::HistoryResp> resp;
      client.History(target_host, host::kNoPid, 0,
                     [&](const core::HistoryResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      std::printf("%s", tools::RenderTimeline(resp->events).c_str());
    } else if (verb == "dot") {
      std::optional<core::SnapshotResp> snap;
      client.Snapshot([&](const core::SnapshotResp& r) { snap = r; });
      WaitFor(cluster, [&] { return snap.has_value(); });
      std::printf("%s", tools::ExportDot(snap->records).c_str());
    } else {
      std::printf("  ?unknown verb '%s'\n", verb.c_str());
    }
  }
};

// The default scripted session, when not reading stdin.
const char* kScript[] = {
    "hosts",
    "run alpha simulate --steps 50000",
    "run beta reduce-results",
    "run gamma plot-output",
    "ps",
    "stop beta 6",
    "ps",
    "cont beta 6",
    "migrate gamma 6 alpha",
    "ps",
    "kill alpha 9",
    "rusage alpha",
    "hist alpha",
    "dot",
};

}  // namespace

int main(int argc, char** argv) {
  core::Cluster cluster;
  cluster.AddHost("alpha", host::HostType::kVax780);
  cluster.AddHost("beta", host::HostType::kVax750);
  cluster.AddHost("gamma", host::HostType::kSun2);
  cluster.Ethernet({"alpha", "beta", "gamma"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = tools::SpawnTool(cluster.host("alpha"), kUser, kUid, "ppmsh");
  bool up = false;
  client->Start([&](bool ok, std::string err) {
    up = ok;
    if (!ok) std::fprintf(stderr, "session failed: %s\n", err.c_str());
  });
  WaitFor(cluster, [&] { return up; });
  std::printf("ppmsh: connected to LPM on %s (user %s)\n", client->lpm_host().c_str(),
              kUser);

  Shell shell{cluster, *client};
  bool from_stdin = argc > 1 && std::string(argv[1]) == "-";
  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) shell.Execute(line);
  } else {
    for (const char* line : kScript) shell.Execute(line);
  }
  client->Disconnect();
  std::printf("ppmsh: session closed\n");
  return 0;
}

// ppmsh — a miniature command interpreter over the PPM.
//
// The paper (Section 4): "The PPM mechanism is not integrated with any
// command interpreter, and thus its services must be obtained by one of
// a series of tools (which may include command interpreters)."  This is
// that command interpreter: a scripted shell whose verbs map one-to-one
// onto the client library.  Run it to watch a whole session transcript;
// feed it your own script on stdin with `ppmsh -`.
//
// Verbs:
//   hosts                          list machines
//   run <host> <command...>        create a process (adopted at birth)
//   ps                             genealogical snapshot (Figure 1 view)
//   stop|cont|kill <host> <pid>    process control across machines
//   migrate <host> <pid> <dest>    move a process (extension)
//   rusage <host>                  exited-process statistics
//   hist <host>                    event timeline
//   dot                            Graphviz export of the snapshot
//   gspawn <group> <h1,h2,..> <command...>   gang-spawn one command per host
//   barrier <name> <epoch> <expected>        enter a cluster-wide barrier
//   genv set <key> <value...>                set a global envar (replicated)
//   genv get <key>                           read a global envar
//   genv watch <key> <sig> <host> <pid>      signal <host:pid> on each change
//   gsig <group> <kill|term|usr1|...>        signal every live group member
//   gjoin <group>                            wait for all members, show exits
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"
#include "tools/dot_export.h"
#include "tools/timeline.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 506;
const char* kUser = "dennis";

template <typename Pred>
void WaitFor(core::Cluster& cluster, Pred done) {
  while (!done()) cluster.RunFor(sim::Millis(5));
}

host::Signal ParseSignal(const std::string& name) {
  if (name == "hup") return host::Signal::kSigHup;
  if (name == "int") return host::Signal::kSigInt;
  if (name == "usr1") return host::Signal::kSigUsr1;
  if (name == "term") return host::Signal::kSigTerm;
  if (name == "stop") return host::Signal::kSigStop;
  if (name == "cont") return host::Signal::kSigCont;
  return host::Signal::kSigKill;  // "kill", "9", anything else
}

struct Shell {
  core::Cluster& cluster;
  tools::PpmClient& client;

  void Execute(const std::string& line) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty() || verb[0] == '#') return;
    std::printf("ppm%% %s\n", line.c_str());
    if (verb == "hosts") {
      for (const auto& h : cluster.host_names()) {
        std::printf("  %-10s %s\n", h.c_str(),
                    cluster.host(h).up() ? host::ToString(cluster.host(h).type())
                                         : "(down)");
      }
    } else if (verb == "run") {
      std::string target;
      in >> target;
      std::string command;
      std::getline(in, command);
      if (!command.empty() && command[0] == ' ') command.erase(0, 1);
      std::optional<core::CreateResp> resp;
      client.CreateProcess(target, command,
                           {}, [&](const core::CreateResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  started %s\n", core::ToString(resp->gpid).c_str());
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else if (verb == "ps") {
      std::optional<tools::SnapshotResult> result;
      tools::RunSnapshotTool(client, [&](const tools::SnapshotResult& r) { result = r; });
      WaitFor(cluster, [&] { return result.has_value(); });
      std::printf("%s  (%s)\n", result->rendering.c_str(), result->summary.c_str());
    } else if (verb == "stop" || verb == "cont" || verb == "kill") {
      std::string target_host;
      host::Pid pid;
      in >> target_host >> pid;
      host::Signal sig = verb == "stop" ? host::Signal::kSigStop
                         : verb == "cont" ? host::Signal::kSigCont
                                          : host::Signal::kSigKill;
      std::optional<core::SignalResp> resp;
      client.Signal(core::GPid{target_host, pid}, sig,
                    [&](const core::SignalResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      std::printf("  %s\n", resp->ok ? "ok" : resp->error.c_str());
    } else if (verb == "migrate") {
      std::string target_host, dest;
      host::Pid pid;
      in >> target_host >> pid >> dest;
      std::optional<core::MigrateResp> resp;
      client.Migrate(core::GPid{target_host, pid}, dest,
                     [&](const core::MigrateResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  now %s\n", core::ToString(resp->new_gpid).c_str());
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else if (verb == "rusage") {
      std::string target_host;
      in >> target_host;
      std::optional<tools::RusageResult> result;
      tools::RunRusageTool(client, target_host,
                           [&](const tools::RusageResult& r) { result = r; });
      WaitFor(cluster, [&] { return result.has_value(); });
      std::printf("%s", result->table.c_str());
    } else if (verb == "hist") {
      std::string target_host;
      in >> target_host;
      std::optional<core::HistoryResp> resp;
      client.History(target_host, host::kNoPid, 0,
                     [&](const core::HistoryResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      std::printf("%s", tools::RenderTimeline(resp->events).c_str());
    } else if (verb == "dot") {
      std::optional<core::SnapshotResp> snap;
      client.Snapshot([&](const core::SnapshotResp& r) { snap = r; });
      WaitFor(cluster, [&] { return snap.has_value(); });
      std::printf("%s", tools::ExportDot(snap->records).c_str());
    } else if (verb == "gspawn") {
      std::string group, hostlist, command;
      in >> group >> hostlist;
      std::getline(in, command);
      if (!command.empty() && command[0] == ' ') command.erase(0, 1);
      std::vector<std::string> hosts;
      std::istringstream hs(hostlist);
      std::string h;
      while (std::getline(hs, h, ',')) {
        if (!h.empty()) hosts.push_back(h);
      }
      std::vector<std::string> commands(hosts.size(), command);
      std::optional<core::GroupSpawnResp> resp;
      client.GroupSpawn(group, hosts, commands,
                        [&](const core::GroupSpawnResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  group %s up (%zu members):\n", group.c_str(),
                    resp->members.size());
        for (const auto& m : resp->members) {
          std::printf("    %s\n", core::ToString(m).c_str());
        }
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
        for (const auto& e : resp->host_errors) {
          std::printf("    %s\n", e.c_str());
        }
      }
    } else if (verb == "barrier") {
      std::string name;
      uint64_t epoch = 0;
      uint32_t expected = 0;
      in >> name >> epoch >> expected;
      std::optional<core::BarrierEnterResp> resp;
      client.BarrierEnter(name, epoch, expected,
                          [&](const core::BarrierEnterResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok && resp->released) {
        std::printf("  released (epoch %llu)\n",
                    static_cast<unsigned long long>(resp->epoch));
      } else {
        std::printf("  %s\n", resp->error.c_str());
        for (const auto& s : resp->stragglers) {
          std::printf("    stuck: %s\n", s.c_str());
        }
      }
    } else if (verb == "genv") {
      std::string sub, key;
      in >> sub >> key;
      if (sub == "set") {
        std::string value;
        std::getline(in, value);
        if (!value.empty() && value[0] == ' ') value.erase(0, 1);
        std::optional<core::EnvarSetResp> resp;
        client.GenvSet(key, value, [&](const core::EnvarSetResp& r) { resp = r; });
        WaitFor(cluster, [&] { return resp.has_value(); });
        if (resp->ok) {
          std::printf("  %s=%s (v%llu)\n", key.c_str(), value.c_str(),
                      static_cast<unsigned long long>(resp->version));
        } else {
          std::printf("  error: %s\n", resp->error.c_str());
        }
      } else if (sub == "get") {
        std::optional<core::EnvarGetResp> resp;
        client.GenvGet(key, [&](const core::EnvarGetResp& r) { resp = r; });
        WaitFor(cluster, [&] { return resp.has_value(); });
        if (resp->ok) {
          std::printf("  %s=%s (v%llu)\n", key.c_str(), resp->value.c_str(),
                      static_cast<unsigned long long>(resp->version));
        } else {
          std::printf("  %s\n", resp->error.c_str());
        }
      } else if (sub == "watch") {
        std::string signame, target_host;
        host::Pid target_pid = host::kNoPid;
        in >> signame >> target_host >> target_pid;
        core::TriggerSpec spec;
        spec.action = core::TriggerAction::kSignal;
        spec.action_signal = ParseSignal(signame);
        spec.action_target = core::GPid{target_host, target_pid};
        std::optional<core::EnvarWatchResp> resp;
        client.GenvWatch(key, spec, [&](const core::EnvarWatchResp& r) { resp = r; });
        WaitFor(cluster, [&] { return resp.has_value(); });
        if (resp->ok) {
          std::printf("  watch %llu installed on %s\n",
                      static_cast<unsigned long long>(resp->watch_id), key.c_str());
        } else {
          std::printf("  error: %s\n", resp->error.c_str());
        }
      } else {
        std::printf("  ?genv set|get|watch\n");
      }
    } else if (verb == "gsig") {
      std::string group, signame;
      in >> group >> signame;
      std::optional<core::GroupSignalResp> resp;
      client.GroupSignal(group, ParseSignal(signame),
                         [&](const core::GroupSignalResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  delivered %u, failed %u\n", resp->delivered, resp->failed);
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else if (verb == "gjoin") {
      std::string group;
      in >> group;
      std::optional<core::GroupJoinResp> resp;
      client.GroupJoin(group, [&](const core::GroupJoinResp& r) { resp = r; });
      WaitFor(cluster, [&] { return resp.has_value(); });
      if (resp->ok) {
        std::printf("  group %s complete:\n", group.c_str());
        for (const auto& e : resp->exits) {
          std::printf("    %s exit %d\n", core::ToString(e.gpid).c_str(),
                      e.exit_status);
        }
      } else {
        std::printf("  error: %s\n", resp->error.c_str());
      }
    } else {
      std::printf("  ?unknown verb '%s'\n", verb.c_str());
    }
  }
};

// The default scripted session, when not reading stdin.
const char* kScript[] = {
    "hosts",
    "run alpha simulate --steps 50000",
    "run beta reduce-results",
    "run gamma plot-output",
    "ps",
    "stop beta 6",
    "ps",
    "cont beta 6",
    "migrate gamma 6 alpha",
    "ps",
    "kill alpha 9",
    "rusage alpha",
    "hist alpha",
    "dot",
    "gspawn workers alpha,beta,gamma crunch --shard",
    "genv set phase warmup",
    "genv get phase",
    "barrier ready 1 1",
    "gsig workers kill",
    "gjoin workers",
};

}  // namespace

int main(int argc, char** argv) {
  core::Cluster cluster;
  cluster.AddHost("alpha", host::HostType::kVax780);
  cluster.AddHost("beta", host::HostType::kVax750);
  cluster.AddHost("gamma", host::HostType::kSun2);
  cluster.Ethernet({"alpha", "beta", "gamma"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = tools::SpawnTool(cluster.host("alpha"), kUser, kUid, "ppmsh");
  bool up = false;
  client->Start([&](bool ok, std::string err) {
    up = ok;
    if (!ok) std::fprintf(stderr, "session failed: %s\n", err.c_str());
  });
  WaitFor(cluster, [&] { return up; });
  std::printf("ppmsh: connected to LPM on %s (user %s)\n", client->lpm_host().c_str(),
              kUser);

  Shell shell{cluster, *client};
  bool from_stdin = argc > 1 && std::string(argv[1]) == "-";
  if (from_stdin) {
    std::string line;
    while (std::getline(std::cin, line)) shell.Execute(line);
  } else {
    for (const char* line : kScript) shell.Execute(line);
  }
  client->Disconnect();
  std::printf("ppmsh: session closed\n");
  return 0;
}

// distributed_make — a compile farm administered by the PPM.
//
// The scenario the paper's introduction motivates: a user program that
// spreads work over the idle machines of a lab.  A "dmake" coordinator
// on the home machine creates one compile job per source file on a farm
// of hosts, watches them through the PPM's event history, reacts to a
// failing job with a *history-dependent trigger* ("if cc1 dies, stop the
// link step"), and finally reads per-job resource consumption from the
// exited-process statistics — all without caring where anything ran.
#include <cstdio>
#include <map>

#include "core/cluster.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 502;
const char* kUser = "ken";

template <typename Pred>
void WaitFor(core::Cluster& cluster, Pred done) {
  while (!done()) cluster.RunFor(sim::Millis(5));
}
}  // namespace

int main() {
  core::Cluster cluster;
  cluster.AddHost("home", host::HostType::kVax780);
  for (const char* farm : {"farm1", "farm2", "farm3"}) {
    cluster.AddHost(farm, host::HostType::kVax750);
  }
  cluster.Ethernet({"home", "farm1", "farm2", "farm3"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* dmake = tools::SpawnTool(cluster.host("home"), kUser, kUid, "dmake");
  bool up = false;
  dmake->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });

  // The link step waits at home; compile jobs go to the farm.
  core::GPid link_step;
  bool done = false;
  dmake->CreateProcess("home", "ld a.out", {}, [&](const core::CreateResp& r) {
    link_step = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });

  const char* files[6] = {"cc main.c", "cc parser.c", "cc lexer.c",
                          "cc eval.c", "cc print.c", "cc util.c"};
  const char* hosts[3] = {"farm1", "farm2", "farm3"};
  std::map<std::string, core::GPid> jobs;
  for (int i = 0; i < 6; ++i) {
    done = false;
    dmake->CreateProcess(hosts[i % 3], files[i], link_step,
                         [&](const core::CreateResp& r) {
                           jobs[files[i]] = r.gpid;
                           done = true;
                         });
    WaitFor(cluster, [&] { return done; });
  }
  std::printf("dispatched %zu compile jobs over 3 farm hosts\n", jobs.size());

  // History-dependent trigger: if the parser compile dies, stop the link
  // step so it cannot link a stale object ("history dependent events can
  // be set by users to trigger process state changes").
  core::TriggerSpec guard;
  guard.event_kind = host::KEvent::kExit;
  guard.subject_pid = jobs["cc parser.c"].pid;
  guard.action_signal = host::Signal::kSigStop;
  guard.action_target = link_step;
  done = false;
  dmake->InstallTrigger(jobs["cc parser.c"].host, guard,
                        [&](const core::TriggerResp& r) {
                          done = true;
                          std::printf("guard trigger installed on %s (id %llu)\n",
                                      jobs["cc parser.c"].host.c_str(),
                                      static_cast<unsigned long long>(r.trigger_id));
                        });
  WaitFor(cluster, [&] { return done; });

  // Mid-build snapshot: where is everything?
  std::optional<tools::SnapshotResult> snap;
  tools::RunSnapshotTool(*dmake, [&](const tools::SnapshotResult& r) { snap = r; });
  WaitFor(cluster, [&] { return snap.has_value(); });
  std::printf("\nmid-build snapshot:\n%s\n", snap->rendering.c_str());

  // The compiles finish one by one — the parser job *crashes*.
  for (const auto& [name, gpid] : jobs) {
    core::Cluster* c = &cluster;
    host::Signal sig = (name == "cc parser.c") ? host::Signal::kSigKill
                                               : host::Signal::kSigTerm;
    // (jobs exit on their own in reality; the kernel call stands in for
    //  the job finishing or crashing)
    c->host(gpid.host).kernel().PostSignal(gpid.pid, sig, kUid);
    c->RunFor(sim::Millis(300));
  }
  cluster.RunFor(sim::Seconds(2));

  // The guard must have stopped the link step.
  const host::Process* link_proc = cluster.host("home").kernel().Find(link_step.pid);
  std::printf("link step after parser crash: %s (trigger %s)\n",
              host::ToString(link_proc->state),
              link_proc->state == host::ProcState::kStopped ? "fired" : "DID NOT FIRE");

  // Per-job resource accounting from each farm host.
  std::printf("\nper-host exited-job statistics:\n");
  for (const char* farm : hosts) {
    std::optional<tools::RusageResult> stats;
    tools::RunRusageTool(*dmake, farm, [&](const tools::RusageResult& r) { stats = r; });
    WaitFor(cluster, [&] { return stats.has_value(); });
    std::printf("--- %s ---\n%s", farm, stats->table.c_str());
  }

  dmake->Disconnect();
  std::printf("\ndistributed make complete.\n");
  return 0;
}

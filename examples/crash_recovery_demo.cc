// crash_recovery_demo — the PPM riding out host crashes and a network
// partition (paper Section 5).
//
// Walks through the full failure vocabulary:
//   1. a worker host crashes: the snapshot degrades to a forest and the
//      coordinator notes the failure;
//   2. the crash coordinator site itself dies: the surviving LPMs walk
//      the user's ~/.recovery list and elect an acting CCS, which probes
//      the dead home machine at low frequency;
//   3. the home machine reboots: the acting CCS notices on its next
//      probe and yields;
//   4. a network partition splits the world into two working halves,
//      then heals.
#include <cstdio>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"

using namespace ppm;

namespace {
constexpr host::Uid kUid = 504;
const char* kUser = "butler";

template <typename Pred>
bool WaitFor(core::Cluster& cluster, Pred done,
             sim::SimDuration horizon = sim::Seconds(300)) {
  sim::SimTime deadline = cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!done()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(sim::Millis(10));
  }
  return true;
}

void PrintModes(core::Cluster& cluster, const char* when) {
  std::printf("%s:\n", when);
  for (const auto& name : cluster.host_names()) {
    core::Lpm* lpm = cluster.FindLpm(name, kUid);
    if (!lpm) {
      std::printf("    %-8s %s\n", name.c_str(),
                  cluster.host(name).up() ? "no LPM" : "host down");
      continue;
    }
    std::printf("    %-8s mode=%-11s ccs=%-8s %s\n", name.c_str(),
                core::ToString(lpm->mode()), lpm->ccs_host().c_str(),
                lpm->is_ccs() ? "<== coordinator" : "");
  }
}
}  // namespace

int main() {
  core::ClusterConfig config;
  config.lpm.probe_interval = sim::Seconds(30);
  config.lpm.retry_interval = sim::Seconds(20);
  config.lpm.time_to_die = sim::Seconds(240);
  core::Cluster cluster(config);
  cluster.AddHost("home", host::HostType::kVax780);
  cluster.AddHost("second", host::HostType::kVax780);
  cluster.AddHost("lab1", host::HostType::kVax750);
  cluster.AddHost("lab2", host::HostType::kSun2);
  cluster.Ethernet({"home", "second"});
  cluster.Ethernet({"second", "lab1", "lab2"});
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  cluster.SetRecoveryList(kUid, {"home", "second"});  // the home machines
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* shell = tools::SpawnTool(cluster.host("home"), kUser, kUid, "shell");
  bool up = false;
  shell->Start([&](bool ok, std::string) { up = ok; });
  WaitFor(cluster, [&] { return up; });

  // A computation on every machine.  lab1's and lab2's workers hang off
  // a process on `second`, so a lab crash orphans nobody's children, but
  // a `second` crash would.
  core::GPid root, mid;
  bool done = false;
  shell->CreateProcess("home", "root", {}, [&](const core::CreateResp& r) {
    root = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  done = false;
  shell->CreateProcess("second", "fanout", root, [&](const core::CreateResp& r) {
    mid = r.gpid;
    done = true;
  });
  WaitFor(cluster, [&] { return done; });
  for (const char* lab : {"lab1", "lab2"}) {
    done = false;
    shell->CreateProcess(lab, "worker", mid, [&](const core::CreateResp&) { done = true; });
    WaitFor(cluster, [&] { return done; });
  }
  PrintModes(cluster, "\n[0] steady state");

  // --- 1. a worker host crashes ------------------------------------------
  cluster.Crash("lab2");
  core::Lpm* home_lpm = cluster.FindLpm("home", kUid);
  WaitFor(cluster, [&] { return home_lpm->stats().failures_detected > 0 ||
                                cluster.FindLpm("second", kUid)->stats().failures_detected >
                                    0; });
  std::optional<tools::SnapshotResult> snap;
  tools::RunSnapshotTool(*shell, [&](const tools::SnapshotResult& r) { snap = r; });
  WaitFor(cluster, [&] { return snap.has_value(); });
  std::printf("\n[1] lab2 crashed; the computation is now a %s:\n%s\n",
              snap->forest.IsTree() ? "tree" : "forest", snap->rendering.c_str());

  // --- 2. the coordinator (home) dies ----------------------------------------
  shell->Disconnect();
  cluster.Crash("home");
  core::Lpm* second_lpm = cluster.FindLpm("second", kUid);
  WaitFor(cluster, [&] { return second_lpm->is_ccs(); });
  PrintModes(cluster, "\n[2] home crashed; 'second' is acting CCS (probing upward)");

  // --- 3. home reboots --------------------------------------------------------
  cluster.Reboot("home");
  WaitFor(cluster, [&] { return !second_lpm->is_ccs(); });
  PrintModes(cluster, "\n[3] home rebooted; acting CCS yielded on its next probe");

  // --- 4. partition and heal ---------------------------------------------------
  auto id = [&](const char* n) { return *cluster.network().FindHost(n); };
  cluster.network().Partition({{id("home"), id("second")}, {id("lab1"), id("lab2")}});
  core::Lpm* lab1_lpm = cluster.FindLpm("lab1", kUid);
  WaitFor(cluster, [&] { return lab1_lpm == nullptr || lab1_lpm->mode() != core::LpmMode::kNormal; },
          sim::Seconds(120));
  PrintModes(cluster, "\n[4a] partition: labs cut off from both home machines");

  cluster.network().Heal();
  WaitFor(cluster, [&] {
    core::Lpm* l = cluster.FindLpm("lab1", kUid);
    return l != nullptr && l->mode() == core::LpmMode::kNormal;
  });
  PrintModes(cluster, "\n[4b] healed: everyone back in contact with the CCS");

  std::printf("\ncrash-recovery demo complete.\n");
  return 0;
}

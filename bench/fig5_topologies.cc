// fig5_topologies — reproduces Figure 5 of the paper:
//
//   "Snapshot Configuration for Four PPM Topologies" — the four sibling
//   topologies whose snapshot times Table 3 reports.  The original
//   diagrams are not legible in the scan; the shapes below are our
//   reconstruction (documented in EXPERIMENTS.md) chosen to be
//   consistent with the measured 205/225/461/507 ms.  For each topology
//   we print the diagram plus the per-snapshot message count and the
//   hosts covered, showing the covering broadcast at work.
#include <cstdio>

#include "bench/snapshot_topologies.h"

int main() {
  using namespace ppm;
  bench::BenchReport report("fig5_topologies");
  bench::PrintHeader("Figure 5: snapshot configuration for four PPM topologies");
  for (const auto& topo : bench::SnapshotTopologies()) {
    std::printf("\n%s  (paper: %.0f ms)\n%s\n", topo.name.c_str(), topo.paper_ms,
                topo.diagram.c_str());
    bench::TopologyRun run = bench::RunSnapshotTopology(topo, 3);
    if (run.mean_ms < 0) {
      std::printf("  FAILED\n");
      continue;
    }
    report.Result(topo.name + ".ms", run.mean_ms);
    std::printf(
        "  snapshot: %.0f ms, %zu process records from %zu hosts, %llu frames on "
        "the wire\n",
        run.mean_ms, run.records, run.hosts_covered,
        static_cast<unsigned long long>(run.frames));
  }
  std::printf(
      "\n(processes are identified network-wide as <host, pid>; each remote host\n"
      " holds six user processes, as in the paper's measurement)\n");
  return 0;
}

// fig4_endpoints — reproduces Figure 4 of the paper:
//
//   "LPM Types Of Communication End Points": one kernel socket (where
//   the modified kernel deposits event messages), one accept socket
//   (whose address pmd distributes), and any number of circuits to
//   sibling LPMs and to local tools.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ppm;

int main() {
  bench::BenchReport report("fig4_endpoints");
  core::Cluster cluster;
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.AddHost("vaxC");
  cluster.Ethernet({"vaxA", "vaxB", "vaxC"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  // Two tools and two siblings attached to the vaxA LPM.
  tools::PpmClient* snapshot_tool = bench::Connect(cluster, "vaxA", "snapshot");
  tools::PpmClient* stats_tool = bench::Connect(cluster, "vaxA", "rusage-stats");
  if (!snapshot_tool || !stats_tool) return 1;
  auto root = bench::CreateSync(cluster, *snapshot_tool, "vaxA", "root");
  bench::CreateSync(cluster, *snapshot_tool, "vaxB", "w1", *root);
  bench::CreateSync(cluster, *snapshot_tool, "vaxC", "w2", *root);
  cluster.RunFor(sim::Millis(100));

  core::Lpm* lpm = cluster.FindLpm("vaxA", bench::kUid);
  if (!lpm) return 1;
  core::LpmEndpoints ep = lpm->Endpoints();

  bench::PrintHeader("Figure 4: LPM types of communication end points (LPM on vaxA)");
  std::printf("  kernel socket : %s (event sink registered with the modified kernel)\n",
              ep.kernel_socket ? "bound" : "MISSING");
  std::printf("  accept socket : %s (address distributed by pmd)\n",
              net::ToString(ep.accept_socket).c_str());
  std::printf("  sibling circuits (%zu):\n", ep.siblings.size());
  for (const auto& [host, conn] : ep.siblings) {
    std::printf("      -> LPM on %-6s circuit #%llu\n", host.c_str(),
                static_cast<unsigned long long>(conn));
  }
  std::printf("  tool circuits    : %zu (snapshot, rusage-stats)\n", ep.tool_circuits);
  std::printf(
      "\n  kernel events received so far: %llu (each a %zu-byte message)\n",
      static_cast<unsigned long long>(lpm->stats().kernel_events),
      core::kKernelEventWireBytes);
  bool ok = ep.kernel_socket && ep.siblings.size() == 2 && ep.tool_circuits == 2;
  report.Result("sibling_circuits", static_cast<double>(ep.siblings.size()));
  report.Result("tool_circuits", static_cast<double>(ep.tool_circuits));
  return ok ? 0 : 1;
}

// fig1_genealogy — reproduces Figure 1 of the paper:
//
//   "Possible State of a PPM Spanning Three Hosts" — the genealogical
//   display of one user's distributed computation, with processes
//   identified as <host, pid>, host boundaries visible, and an exited
//   interior process retained and marked.
#include <cstdio>

#include "bench/bench_common.h"
#include "tools/builtin_tools.h"

int main() {
  using namespace ppm;
  bench::BenchReport report("fig1_genealogy");
  core::Cluster cluster;
  cluster.AddHost("vaxA", host::HostType::kVax780);
  cluster.AddHost("vaxB", host::HostType::kVax750);
  cluster.AddHost("sun1", host::HostType::kSun2);
  cluster.Ethernet({"vaxA", "vaxB", "sun1"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = bench::Connect(cluster, "vaxA", "snapshot");
  if (!client) {
    std::fprintf(stderr, "session failed\n");
    return 1;
  }

  // A computation shaped like the paper's figure: a root on vaxA with
  // children on all three hosts, one of which has exited while its own
  // children live on.
  auto root = bench::CreateSync(cluster, *client, "vaxA", "simulate", {}, true);
  auto coord = bench::CreateSync(cluster, *client, "vaxB", "coordinator", *root, true);
  auto w1 = bench::CreateSync(cluster, *client, "vaxB", "worker", *coord, true);
  auto w2 = bench::CreateSync(cluster, *client, "sun1", "worker", *coord, true);
  auto logger = bench::CreateSync(cluster, *client, "vaxA", "logger", *root, true);
  if (!root || !coord || !w1 || !w2 || !logger) {
    std::fprintf(stderr, "computation setup failed\n");
    return 1;
  }
  // Stop one worker, and let the coordinator exit: its record must stay,
  // marked exited, because its children are alive.
  bench::SignalSync(cluster, *client, *w1, host::Signal::kSigStop);
  cluster.host("vaxB").kernel().Exit(coord->pid, 0);
  cluster.RunFor(sim::Seconds(1));

  std::optional<tools::SnapshotResult> result;
  tools::RunSnapshotTool(*client, [&](const tools::SnapshotResult& r) { result = r; });
  bench::RunUntil(cluster, [&] { return result.has_value(); });
  if (!result || !result->ok) {
    std::fprintf(stderr, "snapshot failed\n");
    return 1;
  }

  bench::PrintHeader("Figure 1: possible state of a PPM spanning three hosts");
  std::printf("%s\n", result->rendering.c_str());
  std::printf("%s\n", result->summary.c_str());
  std::printf("hosts covered by the snapshot broadcast:");
  for (const auto& h : result->hosts_covered) std::printf(" %s", h.c_str());
  std::printf("\n");
  report.Result("hosts_covered", static_cast<double>(result->hosts_covered.size()));
  return 0;
}

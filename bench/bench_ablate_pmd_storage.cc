// bench_ablate_pmd_storage — the stable-storage pmd registry the paper
// proposed but did not implement (Section 5: "The state information kept
// by the process manager daemon could be stored in secondary (even
// stable) storage … This feature, which has not been implemented, would
// certainly add to the overhead of creating LPMs").
//
// We implement it and measure both sides of the trade: the added LPM
// creation overhead, and the behaviour after a pmd-only crash (duplicate
// LPM with a volatile registry vs clean reuse with a stable one).
#include <cstdio>

#include "bench/bench_common.h"
#include "daemon/inetd.h"
#include "daemon/protocol.h"

using namespace ppm;

namespace {

struct Result {
  double cold_create_ms = 0;
  double warm_lookup_ms = 0;
  bool duplicate_after_pmd_crash = false;
};

std::optional<daemon::LpmResponse> Request(core::Cluster& cluster, double* ms) {
  std::optional<daemon::LpmResponse> response;
  host::Host& h = cluster.host("solo");
  sim::SimTime start = cluster.simulator().Now();
  net::ConnCallbacks cb;
  cb.on_data = [&](net::ConnId c, const std::vector<uint8_t>& bytes) {
    response = daemon::LpmResponse::Parse(bytes);
    cluster.network().Close(c);
  };
  cluster.network().Connect(h.net_id(), net::SocketAddr{h.net_id(), net::kInetdPort},
                            std::move(cb), [&](std::optional<net::ConnId> c) {
                              if (!c) return;
                              daemon::LpmRequest req;
                              req.user = bench::kUser;
                              req.origin_host = "solo";
                              req.origin_user = bench::kUser;
                              cluster.network().Send(*c, req.Serialize());
                            });
  bench::RunUntil(cluster, [&] { return response.has_value(); });
  if (ms)
    *ms = sim::ToMillis(static_cast<sim::SimDuration>(cluster.simulator().Now() - start));
  return response;
}

Result RunVariant(bool stable) {
  core::ClusterConfig config;
  config.pmd.stable_storage = stable;
  core::Cluster cluster(config);
  cluster.AddHost("solo");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  Result out;
  auto first = Request(cluster, &out.cold_create_ms);
  cluster.RunFor(sim::Millis(100));
  Request(cluster, &out.warm_lookup_ms);
  cluster.RunFor(sim::Millis(100));

  // pmd-only crash: the LPM survives, the daemon's memory does not.
  daemon::Pmd* pmd = cluster.FindPmd("solo");
  if (pmd) {
    cluster.host("solo").kernel().PostSignal(pmd->pid(), host::Signal::kSigKill,
                                             host::kRootUid);
  }
  cluster.RunFor(sim::Millis(200));
  auto after = Request(cluster, nullptr);
  out.duplicate_after_pmd_crash =
      after && after->ok && first && first->ok && after->lpm_pid != first->lpm_pid;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("ablate_pmd_storage");
  bench::PrintHeader("Ablation: pmd registry on stable storage (paper Sec. 5)");
  std::printf("%-22s%-20s%-20s%-26s\n", "variant", "cold create ms", "warm lookup ms",
              "after pmd-only crash");
  for (bool stable : {false, true}) {
    Result r = RunVariant(stable);
    std::printf("%-22s%-20.0f%-20.0f%-26s\n",
                stable ? "stable storage" : "volatile (paper)", r.cold_create_ms,
                r.warm_lookup_ms,
                r.duplicate_after_pmd_crash ? "DUPLICATE LPM (broken)" : "same LPM reused");
    const char* variant = stable ? "stable" : "volatile";
    report.Result(std::string(variant) + ".cold_create.ms", r.cold_create_ms);
    report.Result(std::string(variant) + ".warm_lookup.ms", r.warm_lookup_ms);
  }
  std::printf(
      "\n(the stable write adds to every LPM creation, exactly the overhead the\n"
      " paper predicted; in exchange a pmd-only crash no longer forks a second\n"
      " manager for the same user)\n");
  return 0;
}

// bench_micro — google-benchmark microbenchmarks of the real (wall-
// clock) hot paths of the library: wire encode/decode, the event queue,
// the broadcast filter, and forest rendering.  These complement the
// virtual-time reproduction benches: they measure what this C++
// implementation itself costs.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/broadcast.h"
#include "core/wire.h"
#include "sim/simulator.h"
#include "tools/display.h"

namespace {

using namespace ppm;

core::SnapshotResp MakeSnapshotResp(size_t records) {
  core::SnapshotResp resp;
  resp.req_id = 7;
  resp.origin_host = "vaxA";
  resp.bcast_seq = 3;
  resp.replier_host = "vaxC";
  resp.route = {"vaxA", "vaxB", "vaxC"};
  for (size_t i = 0; i < records; ++i) {
    core::ProcRecord rec;
    rec.gpid = {"vaxC", static_cast<host::Pid>(i + 2)};
    rec.logical_parent = {"vaxA", 1};
    rec.uid = 100;
    rec.command = "worker-" + std::to_string(i);
    rec.state = host::ProcState::kRunning;
    rec.start_time = 1000 + i;
    rec.cpu_time = static_cast<sim::SimDuration>(i * 17);
    resp.records.push_back(std::move(rec));
  }
  return resp;
}

void BM_WireSerializeSnapshot(benchmark::State& state) {
  core::Msg msg{MakeSnapshotResp(static_cast<size_t>(state.range(0)))};
  for (auto _ : state) {
    auto bytes = core::Serialize(msg);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireSerializeSnapshot)->Arg(1)->Arg(10)->Arg(100);

void BM_WireParseSnapshot(benchmark::State& state) {
  auto bytes = core::Serialize(core::Msg{MakeSnapshotResp(static_cast<size_t>(state.range(0)))});
  for (auto _ : state) {
    auto msg = core::Parse(bytes);
    benchmark::DoNotOptimize(msg);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_WireParseSnapshot)->Arg(1)->Arg(10)->Arg(100);

void BM_KernelEventRoundTrip(benchmark::State& state) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kExit;
  ev.pid = 42;
  ev.status = 3;
  ev.at = 123456;
  ev.detail = "worker";
  for (auto _ : state) {
    auto bytes = core::SerializeKernelEvent(ev);
    auto parsed = core::ParseKernelEvent(bytes);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * core::kKernelEventWireBytes));
}
BENCHMARK(BM_KernelEventRoundTrip);

void BM_SimulatorScheduleFire(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < batch; ++i) {
      sim.ScheduleIn(i % 997, [] {});
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimulatorScheduleFire)->Arg(1000)->Arg(10000);

void BM_BroadcastFilter(benchmark::State& state) {
  core::BroadcastFilter filter(sim::Seconds(60));
  uint64_t seq = 0;
  sim::SimTime now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.CheckAndRecord("vaxA", seq++, now));
    now += 1000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BroadcastFilter);

void BM_BuildAndRenderForest(benchmark::State& state) {
  auto resp = MakeSnapshotResp(static_cast<size_t>(state.range(0)));
  // Add a root so the records form a tree.
  core::ProcRecord root;
  root.gpid = {"vaxA", 1};
  root.command = "root";
  resp.records.push_back(root);
  for (auto _ : state) {
    auto forest = tools::BuildForest(resp.records);
    auto text = tools::RenderForest(forest);
    benchmark::DoNotOptimize(text);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BuildAndRenderForest)->Arg(10)->Arg(100);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ppm::bench::BenchReport report("micro");
  report.Result("benchmarks_run",
                static_cast<double>(benchmark::RunSpecifiedBenchmarks()));
  benchmark::Shutdown();
  return 0;
}

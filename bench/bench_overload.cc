// bench_overload — goodput under offered load, with and without the
// overload-protection layer (PR 8).
//
// The scenario the protection exists for: a tool streams forwarded
// requests through its local LPM faster than the handler pool can serve
// them.  With admission control on, excess arrivals are shed with an
// explicit BUSY while admitted work keeps completing promptly; with the
// master switch off, the dispatcher queues everything, latency grows
// without bound, and *goodput* — completions within a deadline budget —
// collapses even though the machinery is "working" at full rate.
//
// Method: for each cluster width (1 and 3 target hosts) we measure the
// closed-loop saturation rate (16-deep pipeline of forwarded signals),
// then sweep open-loop offered load at {0.5, 1, 2, 4}x that rate for a
// fixed window.  A response counts toward goodput only when it arrived
// ok within the 1-second budget; we report goodput, p50/p99 latency of
// good responses, and the shed/late/failed split.  The 4x row is then
// repeated with overload_protection=false — the collapse row.
//
// Everything runs in virtual time from a fixed seed, so every number is
// deterministic and bench_diff gates the committed baseline tightly.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"

using namespace ppm;

namespace {

// A good response arrives ok within this budget (virtual time).
constexpr double kGoodputDeadlineMs = 1000.0;
// Open-loop measurement window (virtual seconds).
constexpr double kWindowS = 5.0;
constexpr int kClosedLoopOps = 400;
constexpr int kClosedLoopDepth = 16;

struct ArmResult {
  size_t sent = 0;
  size_t ok_good = 0;   // ok within the deadline budget
  size_t ok_late = 0;   // ok but past the budget (wasted work)
  size_t busy = 0;      // explicit BUSY shed
  size_t failed = 0;    // other explicit failure (timeout etc.)
  size_t unresolved = 0;  // never answered — must stay 0 (no silent loss)
  std::vector<double> good_lat_ms;

  double goodput_per_s() const {
    return static_cast<double>(ok_good) / kWindowS;
  }
};

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

// One cluster per arm: a tool host "a" plus `targets` signal sinks, all
// on one Ethernet, with a sleeping victim process on each sink.
struct World {
  core::Cluster cluster;
  tools::PpmClient* client = nullptr;
  std::vector<core::GPid> victims;

  World(int targets, bool protection) : cluster(Config(protection)) {
    cluster.AddHost("a");
    std::vector<std::string> segment{"a"};
    for (int i = 0; i < targets; ++i) {
      std::string name = "b" + std::to_string(i + 1);
      cluster.AddHost(name);
      segment.push_back(name);
    }
    cluster.Ethernet(segment);
    bench::InstallUser(cluster);
    cluster.RunFor(sim::Millis(10));
    client = bench::Connect(cluster, "a");
    if (client == nullptr) return;
    for (int i = 0; i < targets; ++i) {
      auto g = bench::CreateSync(cluster, *client, segment[i + 1], "victim");
      if (!g) {
        client = nullptr;
        return;
      }
      victims.push_back(*g);
    }
  }

  static core::ClusterConfig Config(bool protection) {
    core::ClusterConfig config;
    config.seed = 11;
    config.lpm.overload_protection = protection;
    // Size the protection to the goodput budget.  The request deadline
    // matches the budget, so doomed work is cancelled at the boundary
    // instead of 10 s later; the backlog bound keeps the queue-wait of
    // admitted work inside the budget (Little's law: at the ~40 req/s
    // measured service rate, 16 queued ≈ 400 ms of wait on top of the
    // ~200 ms service time).  The off arm ignores both by definition of
    // the master switch — that unbounded queue is the collapse row.
    config.lpm.request_timeout = sim::Seconds(1);
    config.lpm.max_queue_depth = 16;
    return config;
  }
};

// Closed loop: `kClosedLoopDepth` chains of back-to-back forwarded
// signals.  The completion rate is the saturation throughput the open
// loop sweeps against.
double MeasureSaturation(int targets) {
  World w(targets, /*protection=*/true);
  if (w.client == nullptr) return 0;
  int issued = 0;
  int done = 0;
  std::function<void()> next = [&] {
    if (issued >= kClosedLoopOps) return;
    const core::GPid& victim = w.victims[static_cast<size_t>(issued) % w.victims.size()];
    ++issued;
    w.client->Signal(victim, host::Signal::kSigStop, [&](const core::SignalResp&) {
      ++done;
      next();
    });
  };
  sim::SimTime start = w.cluster.simulator().Now();
  for (int i = 0; i < kClosedLoopDepth; ++i) next();
  if (!bench::RunUntil(w.cluster, [&] { return done >= kClosedLoopOps; },
                       sim::Seconds(300))) {
    return 0;
  }
  double elapsed_s =
      sim::ToMillis(static_cast<sim::SimDuration>(w.cluster.simulator().Now() - start)) /
      1000.0;
  return elapsed_s > 0 ? kClosedLoopOps / elapsed_s : 0;
}

// Open loop: one forwarded signal every 1/rate seconds for the window,
// then drain until every response arrived.
ArmResult RunOpenLoop(int targets, bool protection, double rate_per_s) {
  ArmResult arm;
  World w(targets, protection);
  if (w.client == nullptr) return arm;

  sim::Simulator& sim = w.cluster.simulator();
  const auto interval = static_cast<sim::SimDuration>(
      sim::Micros(static_cast<int64_t>(1e6 / rate_per_s)));
  const size_t to_send = static_cast<size_t>(rate_per_s * kWindowS);
  size_t resolved = 0;

  std::function<void()> tick = [&] {
    const core::GPid& victim = w.victims[arm.sent % w.victims.size()];
    sim::SimTime sent_at = sim.Now();
    w.client->Signal(victim, host::Signal::kSigStop,
                     [&, sent_at](const core::SignalResp& r) {
                       ++resolved;
                       double lat_ms = sim::ToMillis(
                           static_cast<sim::SimDuration>(sim.Now() - sent_at));
                       if (r.ok && lat_ms <= kGoodputDeadlineMs) {
                         ++arm.ok_good;
                         arm.good_lat_ms.push_back(lat_ms);
                       } else if (r.ok) {
                         ++arm.ok_late;
                       } else if (r.error.rfind("busy", 0) == 0) {
                         ++arm.busy;
                       } else {
                         ++arm.failed;
                       }
                     });
    if (++arm.sent < to_send) sim.ScheduleIn(interval, tick, "overload-offer");
  };
  sim.ScheduleIn(interval, tick, "overload-offer");

  // The window, then a generous drain: with protection off the queue can
  // hold many seconds of backlog that must still terminate explicitly.
  bench::RunUntil(w.cluster, [&] { return resolved >= to_send; },
                  sim::Seconds(600));
  arm.unresolved = to_send - resolved;
  return arm;
}

std::string RateKey(double mult) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "x%g", mult);
  std::string s = buf;
  for (char& c : s) {
    if (c == '.') c = '_';
  }
  return s;
}

}  // namespace

int main() {
  obs::Registry::Instance().Reset();
  bench::BenchReport report("overload");
  // The whole point of this bench is to flood queues past their SLOs
  // (especially the protection-off collapse arm), so the registry's
  // health verdict is "degraded" by construction.
  report.ExpectDegradedHealth();
  bench::PrintHeader("Goodput under offered load (deadline budget 1000 ms)");

  constexpr double kMultipliers[] = {0.5, 1.0, 2.0, 4.0};

  for (int targets : {1, 3}) {
    const double saturation = MeasureSaturation(targets);
    std::printf("\n%d target host(s): closed-loop saturation %.0f req/s\n", targets,
                saturation);
    const std::string prefix = "h" + std::to_string(targets) + ".";
    report.Result(prefix + "saturation_per_s", saturation);
    if (saturation <= 0) continue;

    bench::PrintRow({"offered", "mode", "goodput/s", "vs-peak", "p50ms", "p99ms",
                     "busy", "late", "fail"},
                    11);

    double peak_goodput = 0;
    for (double mult : kMultipliers) {
      ArmResult arm = RunOpenLoop(targets, /*protection=*/true, saturation * mult);
      peak_goodput = std::max(peak_goodput, arm.goodput_per_s());
      const double ratio = peak_goodput > 0 ? arm.goodput_per_s() / peak_goodput : 0;
      bench::PrintRow({bench::Fmt(mult, 1) + "x", "on",
                       bench::Fmt(arm.goodput_per_s(), 0), bench::Fmt(ratio, 2),
                       bench::Fmt(Percentile(arm.good_lat_ms, 0.50), 1),
                       bench::Fmt(Percentile(arm.good_lat_ms, 0.99), 1),
                       std::to_string(arm.busy), std::to_string(arm.ok_late),
                       std::to_string(arm.failed + arm.unresolved)},
                      11);
      const std::string key = prefix + RateKey(mult) + ".";
      report.Result(key + "goodput_per_s", arm.goodput_per_s());
      report.Result(key + "p50_ms", Percentile(arm.good_lat_ms, 0.50));
      report.Result(key + "p99_ms", Percentile(arm.good_lat_ms, 0.99));
      report.Result(key + "busy", static_cast<double>(arm.busy));
      report.Result(key + "unresolved", static_cast<double>(arm.unresolved));
      if (mult == 4.0) {
        // The acceptance claim: shedding holds goodput within 20% of the
        // sweep's peak at 4x saturating load.
        report.Result(prefix + "x4_goodput_vs_peak", ratio);
        std::printf("  -> 4x goodput holds %.0f%% of peak (claim: >= 80%%)\n",
                    ratio * 100.0);
      }
    }

    // The collapse row: same 4x offered load, protection off.
    ArmResult off = RunOpenLoop(targets, /*protection=*/false, saturation * 4.0);
    const double off_ratio =
        peak_goodput > 0 ? off.goodput_per_s() / peak_goodput : 0;
    bench::PrintRow({"4.0x", "off", bench::Fmt(off.goodput_per_s(), 0),
                     bench::Fmt(off_ratio, 2),
                     bench::Fmt(Percentile(off.good_lat_ms, 0.50), 1),
                     bench::Fmt(Percentile(off.good_lat_ms, 0.99), 1),
                     std::to_string(off.busy), std::to_string(off.ok_late),
                     std::to_string(off.failed + off.unresolved)},
                    11);
    report.Result(prefix + "x4_off.goodput_per_s", off.goodput_per_s());
    report.Result(prefix + "x4_off.goodput_vs_peak", off_ratio);
    report.Result(prefix + "x4_off.late", static_cast<double>(off.ok_late));
    report.Result(prefix + "x4_off.unresolved", static_cast<double>(off.unresolved));
    std::printf("  -> unprotected 4x goodput falls to %.0f%% of peak\n",
                off_ratio * 100.0);
  }
  return 0;
}

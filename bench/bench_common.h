// bench_common.h — shared infrastructure for the reproduction benches.
//
// Every bench_table*/fig* binary reproduces one exhibit of the paper.
// Measurements are in *virtual* milliseconds: the simulator's clock plays
// the role of the authors' wall clock, and the cost model (see
// host/calibration.h) is calibrated against Table 1 and the within-host
// column of Table 2.  Shape fidelity — who wins, by what factor, where
// costs cross over — is the claim; absolute equality is not.
#pragma once

#include <cstdio>
#include <functional>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "core/lpm.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tools/client.h"

namespace ppm::bench {

constexpr host::Uid kUid = 100;
inline const char* kUser = "leslie";

// Advances the cluster until `pred` holds (or `horizon` elapses).
template <typename Pred>
bool RunUntil(core::Cluster& cluster, Pred pred,
              sim::SimDuration horizon = sim::Seconds(120),
              sim::SimDuration step = sim::Millis(5)) {
  sim::SimTime deadline = cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!pred()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(step);
  }
  return true;
}

inline void InstallUser(core::Cluster& cluster,
                        const std::vector<std::string>& recovery = {}) {
  cluster.AddUserEverywhere(kUser, kUid);
  cluster.TrustUserEverywhere(kUser, kUid);
  if (!recovery.empty()) cluster.SetRecoveryList(kUid, recovery);
}

inline tools::PpmClient* Connect(core::Cluster& cluster, const std::string& host,
                                 const std::string& tool = "bench") {
  tools::PpmClient* client = tools::SpawnTool(cluster.host(host), kUser, kUid, tool);
  bool done = false, ok = false;
  client->Start([&](bool success, std::string) {
    done = true;
    ok = success;
  });
  if (!RunUntil(cluster, [&] { return done; })) return nullptr;
  return ok ? client : nullptr;
}

// Synchronous wrappers over the client API (they pump the simulator).
inline std::optional<core::GPid> CreateSync(core::Cluster& cluster,
                                            tools::PpmClient& client,
                                            const std::string& host,
                                            const std::string& command,
                                            const core::GPid& parent = {},
                                            bool initially_running = false) {
  // Benches default to sleeping children: the paper measured lightly
  // loaded hosts, and a runnable child would raise `la` mid-measurement.
  std::optional<core::CreateResp> result;
  client.CreateProcess(host, command, parent,
                       [&](const core::CreateResp& r) { result = r; },
                       initially_running);
  if (!RunUntil(cluster, [&] { return result.has_value(); })) return std::nullopt;
  if (!result->ok) return std::nullopt;
  return result->gpid;
}

inline bool SignalSync(core::Cluster& cluster, tools::PpmClient& client,
                       const core::GPid& target, host::Signal sig) {
  std::optional<core::SignalResp> result;
  client.Signal(target, sig, [&](const core::SignalResp& r) { result = r; });
  if (!RunUntil(cluster, [&] { return result.has_value(); })) return false;
  return result->ok;
}

inline std::optional<core::SnapshotResp> SnapshotSync(core::Cluster& cluster,
                                                      tools::PpmClient& client) {
  std::optional<core::SnapshotResp> result;
  client.Snapshot([&](const core::SnapshotResp& r) { result = r; });
  if (!RunUntil(cluster, [&] { return result.has_value(); })) return std::nullopt;
  return result;
}

// Measures the virtual elapsed time of one client operation.
inline double MeasureMs(core::Cluster& cluster, const std::function<void()>& issue,
                        const std::function<bool()>& completed) {
  sim::SimTime start = cluster.simulator().Now();
  issue();
  RunUntil(cluster, completed);
  return sim::ToMillis(static_cast<sim::SimDuration>(cluster.simulator().Now() - start));
}

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

// --- table printing -------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  for (size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int prec = 1) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// --- machine-readable bench output ----------------------------------------
//
// Alongside the printed table every bench writes BENCH_<name>.json into
// the working directory: the headline virtual-ms results plus a full
// snapshot of the metrics registry at exit, so a run's counters (frames,
// drops, handler forks, …) travel with its numbers.  Written by the
// destructor, so `BenchReport report("table3");` at the top of main()
// is the whole integration.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  // Records one headline number (insertion order is preserved).
  // Results are deterministic (virtual-time or counter) by default and
  // gated tightly by bench_diff.
  void Result(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  // Records a *wall-clock* number: machine-dependent, so the committed
  // baseline tags it with the "wallclock" tolerance class and bench_diff
  // gates it by ratio (order-of-magnitude drift) instead of the tight
  // percent threshold used for deterministic counters.
  void ResultWallClock(const std::string& key, double value) {
    results_.emplace_back(key, value);
    wallclock_.push_back(key);
  }

  // Declares that this bench drives its world past the health SLOs on
  // purpose (e.g. the overload bench's collapse arm floods a queue), so
  // a "degraded" verdict in the registry snapshot is the expected
  // outcome, not a sick baseline.  bench_diff skips the health gate for
  // files carrying the declaration.
  void ExpectDegradedHealth() { expects_degraded_ = true; }

  std::string Path() const { return "BENCH_" + name_ + ".json"; }

  ~BenchReport() {
    std::string out = "{\"bench\":\"";
    obs::json::AppendEscaped(out, name_);
    out += "\",\"results\":{";
    bool first = true;
    for (const auto& [key, value] : results_) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      obs::json::AppendEscaped(out, key);
      out += "\":";
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      out += buf;
    }
    out += "},\"classes\":{";
    first = true;
    for (const std::string& key : wallclock_) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      obs::json::AppendEscaped(out, key);
      out += "\":\"wallclock\"";
    }
    out += "},";
    if (expects_degraded_) out += "\"expects_degraded\":true,";
    out += "\"metrics\":";
    out += obs::Registry::Instance().DumpJson();
    out += "}\n";
    std::FILE* f = std::fopen(Path().c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", Path().c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> results_;
  std::vector<std::string> wallclock_;
  bool expects_degraded_ = false;
};

}  // namespace ppm::bench

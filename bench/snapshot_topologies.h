// snapshot_topologies.h — the four PPM topologies of Figure 5 / Table 3.
//
// The paper's scan does not preserve the four diagrams, so we define four
// shapes consistent with the measured times (205 / 225 / 461 / 507 ms —
// two shallow configurations and two chain-deepened ones) and document
// them in EXPERIMENTS.md:
//
//   T1:  root — A                    (1 remote, direct sibling)
//   T2:  root — A, root — B         (2 remotes, star)
//   T3:  root — A — B               (2 remotes, sibling chain of depth 2)
//   T4:  root — A — {B, C}          (3 remotes: the T3 chain plus one
//                                    more leaf behind A — the interior
//                                    LPM serves one extra sibling, which
//                                    matches the small 461→507 ms step)
//
// Each remote host holds six user processes, as in the paper ("we
// transmitted between the appropriate LPMs information about six user
// processes in each of the remote machines").  Sibling chains are built
// the way they arise in practice: a tool on each interior host creates
// the processes of the next host, so the connection graph follows the
// process-creation pattern (paper Section 4).
#pragma once

#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace ppm::bench {

struct Topology {
  std::string name;
  // Edges of the sibling graph as (creator host, target host); targets
  // receive the six processes.
  std::vector<std::pair<std::string, std::string>> edges;
  double paper_ms;
  std::string diagram;
};

inline std::vector<Topology> SnapshotTopologies() {
  return {
      {"topology 1",
       {{"root", "hostA"}},
       205,
       "  root ---- hostA(6)"},
      {"topology 2",
       {{"root", "hostA"}, {"root", "hostB"}},
       225,
       "  root ---- hostA(6)\n"
       "    \\------ hostB(6)"},
      {"topology 3",
       {{"root", "hostA"}, {"hostA", "hostB"}},
       461,
       "  root ---- hostA(6) ---- hostB(6)"},
      {"topology 4",
       {{"root", "hostA"}, {"hostA", "hostB"}, {"hostA", "hostC"}},
       507,
       "  root ---- hostA(6) ---- hostB(6)\n"
       "               \\--------- hostC(6)"},
  };
}

struct TopologyRun {
  double mean_ms = -1;
  size_t records = 0;
  size_t hosts_covered = 0;
  uint64_t frames = 0;  // network frames spent per snapshot (mean)
};

// Builds the topology and measures `reps` snapshots from the root tool.
inline TopologyRun RunSnapshotTopology(const Topology& topo, int reps = 5) {
  TopologyRun out;
  core::Cluster cluster;
  cluster.AddHost("root");
  // Physical network mirrors the sibling chain: a segment per edge.
  for (const auto& [from, to] : topo.edges) {
    if (!cluster.HasHost(to)) cluster.AddHost(to);
    cluster.Link(from, to);
  }
  InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* root_tool = Connect(cluster, "root", "snapshot");
  if (!root_tool) return out;
  // Populate: the tool on each edge's creator host makes the six remote
  // processes, shaping the sibling graph like the computation.
  for (const auto& [from, to] : topo.edges) {
    tools::PpmClient* creator =
        (from == "root") ? root_tool : Connect(cluster, from, "spawner");
    if (!creator) return out;
    for (int i = 0; i < 6; ++i) {
      if (!CreateSync(cluster, *creator, to, "proc" + std::to_string(i))) return out;
    }
    if (creator != root_tool) creator->Disconnect();
  }
  cluster.RunFor(sim::Seconds(1));

  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    uint64_t frames_before = cluster.network().stats().frames_sent;
    std::optional<core::SnapshotResp> snap;
    double ms = MeasureMs(
        cluster, [&] { root_tool->Snapshot([&](const core::SnapshotResp& r) { snap = r; }); },
        [&] { return snap.has_value(); });
    times.push_back(ms);
    if (snap) {
      out.records = snap->records.size();
      out.hosts_covered = snap->forwarded_to.size();
    }
    out.frames += cluster.network().stats().frames_sent - frames_before;
    cluster.RunFor(sim::Millis(500));
  }
  out.mean_ms = Mean(times);
  out.frames /= static_cast<uint64_t>(reps);
  return out;
}

}  // namespace ppm::bench

// bench_group — latency of the group-operations subsystem (PR 9).
//
// Three questions an operator of an event-parallel farm asks:
//
//   1. Gang-spawn: what does all-or-nothing creation of an n-member
//      group cost, and how does it scale with n?  The coordinator fans
//      GroupPartReq out to the member hosts in parallel, so the latency
//      should track the *slowest* member, not the sum.
//   2. Barrier: what is the release round-trip when every host of an
//      n-host cluster contributes one participant?  Each member LPM
//      aggregates its local waiters into one BarrierJoinReq to the CCS;
//      the verdict fans back out — two sibling-graph hops end to end.
//   3. Envar fan-out: after a GenvSet at one host, how long until every
//      LPM's replicated table holds the new value?  The update floods
//      the covering graph like a snapshot broadcast.
//
// Everything runs in virtual time from a fixed seed, so every number is
// deterministic and bench_diff gates the committed baseline tightly.
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "group/group.h"

using namespace ppm;

namespace {

core::ClusterConfig Config() {
  core::ClusterConfig config;
  config.seed = 9;
  // Fast CCS discovery: the member managers probe the listed
  // coordinator and yield within a probe round, so cluster assembly
  // stays out of the measured numbers.
  config.lpm.probe_interval = sim::Seconds(1);
  return config;
}

std::vector<std::string> HostNames(int n) {
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) names.push_back("h" + std::to_string(i));
  return names;
}

// An n-host Ethernet segment with one connected tool per host (which
// also guarantees an LPM is running everywhere).
struct World {
  core::Cluster cluster;
  std::vector<std::string> hosts;
  std::vector<tools::PpmClient*> clients;
  bool ok = false;

  explicit World(int n) : cluster(Config()), hosts(HostNames(n)) {
    for (const auto& h : hosts) cluster.AddHost(h);
    cluster.Ethernet(hosts);
    // h0 leads the .recovery list, so it is the CCS every barrier join
    // tallies at and the root the member managers probe and yield to.
    bench::InstallUser(cluster, {hosts[0]});
    cluster.RunFor(sim::Millis(10));
    for (const auto& h : hosts) {
      tools::PpmClient* c = bench::Connect(cluster, h);
      if (c == nullptr) return;
      clients.push_back(c);
    }
    // Wait until every member manager discovered the coordinator, so
    // the first measured op pays for the op, not cluster assembly.
    ok = bench::RunUntil(cluster, [&] {
      for (const auto& h : hosts) {
        core::Lpm* lpm = cluster.FindLpm(h, bench::kUid);
        if (lpm == nullptr) return false;
        if (h == hosts[0] ? !lpm->is_ccs() : lpm->ccs_host() != hosts[0])
          return false;
      }
      return true;
    });
  }
};

// --- 1. gang-spawn latency vs group size ----------------------------------

// One coordinator, members round-robin over all 16 hosts.  Fresh group
// name per size; the members stay alive (sleeping) — the cost of a
// *later* spawn is unaffected because groups are independent.
void BenchGangSpawn(bench::BenchReport& report) {
  World w(16);
  if (!w.ok) {
    std::printf("gang-spawn: cluster failed to assemble\n");
    return;
  }
  bench::PrintHeader("Gang-spawn latency vs group size (16-host cluster)");
  bench::PrintRow({"members", "total ms", "ms/member"}, 12);
  for (int n : {1, 2, 4, 8, 16}) {
    std::vector<std::string> member_hosts;
    std::vector<std::string> commands;
    for (int i = 0; i < n; ++i) {
      member_hosts.push_back(w.hosts[static_cast<size_t>(i) % w.hosts.size()]);
      commands.push_back("worker");
    }
    std::optional<core::GroupSpawnResp> resp;
    const std::string group = "gang" + std::to_string(n);
    double ms = bench::MeasureMs(
        w.cluster,
        [&] {
          w.clients[0]->GroupSpawn(group, member_hosts, commands,
                                   [&](const core::GroupSpawnResp& r) { resp = r; });
        },
        [&] { return resp.has_value(); });
    if (!resp || !resp->ok || resp->members.size() != static_cast<size_t>(n)) {
      std::printf("  gang-spawn n=%d FAILED: %s\n", n,
                  resp ? resp->error.c_str() : "no response");
      continue;
    }
    bench::PrintRow({std::to_string(n), bench::Fmt(ms, 1), bench::Fmt(ms / n, 2)}, 12);
    report.Result("gang.n" + std::to_string(n) + "_ms", ms);
  }
}

// --- 2. barrier release RTT vs host count ---------------------------------

// Every host contributes one participant; the round completes when the
// last entrant's released verdict lands.  Mean of three epochs.
void BenchBarrier(bench::BenchReport& report) {
  bench::PrintHeader("Barrier release RTT vs host count (1 party/host)");
  bench::PrintRow({"hosts", "rtt ms"}, 12);
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    if (!w.ok) {
      std::printf("  barrier h=%d: cluster failed to assemble\n", n);
      continue;
    }
    std::vector<double> rounds;
    for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
      size_t released = 0;
      bool failed = false;
      double ms = bench::MeasureMs(
          w.cluster,
          [&] {
            for (auto* c : w.clients) {
              c->BarrierEnter("bench.bar", epoch, static_cast<uint32_t>(n),
                              [&](const core::BarrierEnterResp& r) {
                                if (r.ok && r.released) {
                                  ++released;
                                } else {
                                  failed = true;
                                }
                              });
            }
          },
          [&] { return released == static_cast<size_t>(n) || failed; });
      if (failed || released != static_cast<size_t>(n)) {
        std::printf("  barrier h=%d epoch=%llu FAILED\n", n,
                    static_cast<unsigned long long>(epoch));
        return;
      }
      rounds.push_back(ms);
    }
    double mean = bench::Mean(rounds);
    bench::PrintRow({std::to_string(n), bench::Fmt(mean, 1)}, 12);
    report.Result("barrier.h" + std::to_string(n) + "_rtt_ms", mean);
  }
}

// --- 3. envar propagation fan-out -----------------------------------------

// GenvSet at h0, then watch every LPM's replicated table until the new
// value is visible cluster-wide.  The ack returns as soon as the origin
// applied the write; the fan-out time is the flood's, not the caller's.
void BenchEnvarFanout(bench::BenchReport& report) {
  bench::PrintHeader("Global envar fan-out (set at h0 -> visible everywhere)");
  bench::PrintRow({"hosts", "ack ms", "fanout ms"}, 12);
  for (int n : {2, 4, 8, 16}) {
    World w(n);
    if (!w.ok) {
      std::printf("  envar h=%d: cluster failed to assemble\n", n);
      continue;
    }
    const std::string key = "bench.fan" + std::to_string(n);
    const std::string value = "v1";
    auto everywhere = [&] {
      for (const auto& h : w.hosts) {
        core::Lpm* lpm = w.cluster.FindLpm(h, bench::kUid);
        if (lpm == nullptr) return false;
        const group::Envar* e = lpm->group_table().FindEnvar(key);
        if (e == nullptr || e->value != value) return false;
      }
      return true;
    };
    std::optional<core::EnvarSetResp> resp;
    sim::SimTime start = w.cluster.simulator().Now();
    w.clients[0]->GenvSet(key, value, [&](const core::EnvarSetResp& r) { resp = r; });
    if (!bench::RunUntil(w.cluster, [&] { return resp.has_value(); })) {
      std::printf("  envar h=%d: set never acknowledged\n", n);
      continue;
    }
    double ack_ms = sim::ToMillis(
        static_cast<sim::SimDuration>(w.cluster.simulator().Now() - start));
    if (!resp->ok) {
      std::printf("  envar h=%d: set failed: %s\n", n, resp->error.c_str());
      continue;
    }
    if (!bench::RunUntil(w.cluster, everywhere)) {
      std::printf("  envar h=%d: update never covered the cluster\n", n);
      continue;
    }
    double fan_ms = sim::ToMillis(
        static_cast<sim::SimDuration>(w.cluster.simulator().Now() - start));
    bench::PrintRow({std::to_string(n), bench::Fmt(ack_ms, 1), bench::Fmt(fan_ms, 1)},
                    12);
    report.Result("envar.h" + std::to_string(n) + "_ack_ms", ack_ms);
    report.Result("envar.h" + std::to_string(n) + "_fanout_ms", fan_ms);
  }
}

}  // namespace

int main() {
  obs::Registry::Instance().Reset();
  bench::BenchReport report("group");
  BenchGangSpawn(report);
  BenchBarrier(report);
  BenchEnvarFanout(report);
  return 0;
}

// fig3_channels — reproduces Figure 3 of the paper:
//
//   "All LPMs of a PPM Maintain a Secure Reliable Communication
//    Channel."  We stand up a three-host PPM, print the sibling channel
//    table of every LPM, and then demonstrate the security property: a
//    forged HelloSibling with a wrong session token is rejected, while
//    the pmd-mediated path succeeds (user-level masquerade prevented;
//    host-level masquerade out of scope, as in the paper).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/wire.h"

using namespace ppm;

int main() {
  bench::BenchReport report("fig3_channels");
  core::Cluster cluster;
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.AddHost("vaxC");
  cluster.Ethernet({"vaxA", "vaxB", "vaxC"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = bench::Connect(cluster, "vaxA");
  if (!client) return 1;
  auto root = bench::CreateSync(cluster, *client, "vaxA", "root");
  bench::CreateSync(cluster, *client, "vaxB", "w1", *root);
  bench::CreateSync(cluster, *client, "vaxC", "w2", *root);
  // Close the triangle: a tool on vaxB creates on vaxC.
  tools::PpmClient* side = bench::Connect(cluster, "vaxB", "side");
  if (!side) return 1;
  bench::CreateSync(cluster, *side, "vaxC", "w3", {});
  side->Disconnect();
  cluster.RunFor(sim::Millis(200));

  bench::PrintHeader("Figure 3: secure reliable channels between sibling LPMs");
  for (const char* h : {"vaxA", "vaxB", "vaxC"}) {
    core::Lpm* lpm = cluster.FindLpm(h, bench::kUid);
    if (!lpm) continue;
    auto ep = lpm->Endpoints();
    std::printf("LPM on %-6s (pid %3d, ccs=%s):\n", h, lpm->pid(),
                lpm->ccs_host().c_str());
    for (const auto& [peer, conn] : ep.siblings) {
      auto addrs = cluster.network().ConnEndpoints(conn);
      std::printf("    channel to %-6s circuit #%llu %s <-> %s  [authenticated]\n",
                  peer.c_str(), static_cast<unsigned long long>(conn),
                  addrs ? net::ToString(addrs->first).c_str() : "?",
                  addrs ? net::ToString(addrs->second).c_str() : "?");
    }
  }

  // Security demonstration: connect straight to vaxB's accept socket and
  // present a *forged* token (what an attacker without pmd's blessing
  // would hold).
  core::Lpm* lpm_b = cluster.FindLpm("vaxB", bench::kUid);
  bool rejected = false;
  bool accepted = false;
  net::ConnCallbacks cb;
  cb.on_data = [&](net::ConnId, const std::vector<uint8_t>& bytes) {
    auto msg = core::Parse(bytes);
    if (msg && std::holds_alternative<core::HelloReject>(*msg)) rejected = true;
    if (msg && std::holds_alternative<core::HelloAck>(*msg)) accepted = true;
  };
  cluster.network().Connect(cluster.host("vaxC").net_id(), lpm_b->accept_addr(),
                            std::move(cb), [&](std::optional<net::ConnId> c) {
                              if (!c) return;
                              core::HelloSibling forged;
                              forged.user = bench::kUser;
                              forged.origin_host = "vaxC";
                              forged.origin_lpm_pid = 999;
                              forged.token = 0xbadbadbadbadULL;  // not pmd-issued
                              cluster.network().Send(*c, core::Serialize(core::Msg{forged}));
                            });
  bench::RunUntil(cluster, [&] { return rejected || accepted; }, sim::Seconds(5));
  report.Result("forged_hello_rejected", rejected ? 1 : 0);

  std::printf(
      "\nauthentication audit:\n"
      "    forged HelloSibling with wrong session token -> %s\n"
      "    pmd-mediated setup (token from trusted name server) -> accepted\n"
      "    (host-level masquerade is not addressed, as in the paper, Sec. 3)\n",
      rejected ? "REJECTED" : (accepted ? "ACCEPTED (BUG!)" : "no answer"));
  return rejected && !accepted ? 0 : 1;
}

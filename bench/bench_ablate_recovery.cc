// bench_ablate_recovery — the two CCS re-establishment mechanisms of
// paper Section 5: the ~/.recovery priority-list walk (implemented by
// the authors) vs the name-server-assisted assignment (sketched as an
// alternative: "LPMs would query the name server for a CCS.  The
// mechanism based on .recovery files would not be needed").
//
// Setup: the CCS host crashes together with the first `k` hosts of the
// recovery list, so the walking LPM must burn one connect timeout per
// dead entry before reaching a live one.  The name-server variant pays
// one datagram query plus at most one failed probe regardless of k.
// Measured: virtual time from the crash until the surviving LPM is back
// in normal mode with a coordinator.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/lpm.h"
#include "core/nameserver.h"

using namespace ppm;

namespace {

double MeasureRecovery(bool use_nameserver, int dead_list_prefix) {
  core::ClusterConfig config;
  if (use_nameserver) config.lpm.ccs_nameserver = "ns";
  config.lpm.retry_interval = sim::Seconds(15);
  core::Cluster cluster(config);
  cluster.AddHost("ns");
  // list hosts: r0..r3 are recovery-list entries; "survivor" holds the
  // LPM whose recovery we time.
  std::vector<std::string> list_hosts;
  for (int i = 0; i < 4; ++i) {
    std::string name = "r" + std::to_string(i);
    cluster.AddHost(name);
    list_hosts.push_back(name);
  }
  cluster.AddHost("survivor");
  std::vector<std::string> all = cluster.host_names();
  cluster.Ethernet(all);
  bench::InstallUser(cluster, list_hosts);
  core::StartCcsNameServer(cluster.host("ns"));
  cluster.RunFor(sim::Millis(10));

  // Session: CCS at r0 (first invocation), worker on survivor.
  tools::PpmClient* client = bench::Connect(cluster, "r0");
  if (!client) return -1;
  if (!bench::CreateSync(cluster, *client, "survivor", "w")) return -1;
  // Put live LPMs on the recovery hosts beyond the dead prefix so the
  // walk's first live entry answers quickly.
  for (int i = dead_list_prefix; i < 4; ++i) {
    if (i == 0) continue;  // r0 is the CCS already
    if (!bench::CreateSync(cluster, *client, list_hosts[static_cast<size_t>(i)], "w"))
      return -1;
  }
  cluster.RunFor(sim::Seconds(1));

  // Crash the CCS and the dead prefix (r0 always dies; it is entry 0).
  for (int i = 0; i < dead_list_prefix; ++i) {
    if (cluster.host(list_hosts[static_cast<size_t>(i)]).up()) {
      cluster.Crash(list_hosts[static_cast<size_t>(i)]);
    }
  }
  if (cluster.host("r0").up()) cluster.Crash("r0");
  sim::SimTime start = cluster.simulator().Now();

  core::Lpm* lpm = cluster.FindLpm("survivor", bench::kUid);
  if (!lpm) return -1;
  bool ok = bench::RunUntil(
      cluster,
      [&] {
        return lpm->mode() == core::LpmMode::kNormal && !lpm->ccs_host().empty() &&
               lpm->ccs_host() != "r0" && lpm->stats().recoveries_started > 0;
      },
      sim::Seconds(300));
  if (!ok) return -1;
  return sim::ToMillis(static_cast<sim::SimDuration>(cluster.simulator().Now() - start));
}

}  // namespace

int main() {
  bench::BenchReport report("ablate_recovery");
  bench::PrintHeader(
      "Ablation: .recovery list walk vs name-server-assisted CCS recovery");
  std::printf("%-26s%-22s%-22s\n", "dead recovery entries", ".recovery walk ms",
              "name server ms");
  for (int k : {1, 2, 3}) {
    double walk = MeasureRecovery(false, k);
    double ns = MeasureRecovery(true, k);
    std::printf("%-26d%-22.0f%-22.0f\n", k, walk, ns);
    report.Result("dead" + std::to_string(k) + ".walk.ms", walk);
    report.Result("dead" + std::to_string(k) + ".nameserver.ms", ns);
  }
  std::printf(
      "\n(each dead entry costs the walker a connect timeout; the name server\n"
      " answers in one datagram round trip regardless — but adds a daemon the\n"
      " administrators must place and keep alive, the paper's stated trade)\n");
  return 0;
}

// bench_table3_snapshot — reproduces Table 3 of the paper:
//
//   "Elapsed Time in Milliseconds To Transmit Snapshot Information in
//    Four Topologies" (205 / 225 / 461 / 507 ms), six user processes on
//    each remote machine, topologies per Figure 5 (see
//    snapshot_topologies.h for our reconstruction of the four shapes).
#include <cstdio>

#include "bench/snapshot_topologies.h"

int main() {
  using namespace ppm;
  bench::BenchReport report("table3_snapshot");
  bench::PrintHeader(
      "Table 3: elapsed time (ms) to transmit snapshot information, four topologies");
  std::printf("%-14s%-12s%-12s%-10s%-10s%-10s\n", "", "measured", "paper", "records",
              "hosts", "frames");
  for (const auto& topo : bench::SnapshotTopologies()) {
    bench::TopologyRun run = bench::RunSnapshotTopology(topo);
    if (run.mean_ms < 0) {
      std::printf("%-14s%s\n", topo.name.c_str(), "FAILED");
      continue;
    }
    std::printf("%-14s%-12.0f%-12.0f%-10zu%-10zu%-10llu\n", topo.name.c_str(),
                run.mean_ms, topo.paper_ms, run.records, run.hosts_covered,
                static_cast<unsigned long long>(run.frames));
    report.Result(topo.name + ".ms", run.mean_ms);
    report.Result(topo.name + ".paper_ms", topo.paper_ms);
  }
  std::printf(
      "\n(six adopted processes per remote host; the snapshot is flooded over the\n"
      " sibling graph with duplicate suppression and replies routed back along the\n"
      " recorded source-destination routes)\n");
  return 0;
}

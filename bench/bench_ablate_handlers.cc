// bench_ablate_handlers — ablation of the handler pool policy (paper
// Section 6: "Since process creation in UNIX is relatively expensive,
// processes that have handled a request may be given further requests,
// rather than simply creating new processes").
//
// We issue bursts of concurrent requests against one LPM under both
// policies (reuse vs fork-per-request) and report batch completion time
// and handler forks.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ppm;

namespace {

struct Result {
  double batch_ms = 0;
  uint64_t handlers_created = 0;
  uint64_t handler_reuses = 0;
};

Result RunBurst(bool reuse, int burst, int rounds) {
  core::ClusterConfig config;
  config.lpm.handler_reuse = reuse;
  core::Cluster cluster(config);
  cluster.AddHost("solo");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = bench::Connect(cluster, "solo");
  if (!client) return {};

  Result out;
  std::vector<double> batch_times;
  for (int r = 0; r < rounds; ++r) {
    int done = 0;
    double ms = bench::MeasureMs(
        cluster,
        [&] {
          for (int i = 0; i < burst; ++i) {
            client->CreateProcess(
                "solo", "w", {}, [&](const core::CreateResp&) { ++done; },
                /*initially_running=*/false);
          }
        },
        [&] { return done == burst; });
    batch_times.push_back(ms);
    cluster.RunFor(sim::Millis(500));
  }
  out.batch_ms = bench::Mean(batch_times);
  core::Lpm* lpm = cluster.FindLpm("solo", bench::kUid);
  if (lpm) {
    out.handlers_created = lpm->stats().handlers_created;
    out.handler_reuses = lpm->stats().handler_reuses;
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("ablate_handlers");
  bench::PrintHeader("Ablation: handler reuse vs fork-per-request (paper Sec. 6)");
  std::printf("%-10s%-18s%-20s%-16s%-12s\n", "burst", "policy", "batch latency ms",
              "handler forks", "reuses");
  for (int burst : {1, 4, 8, 16}) {
    for (bool reuse : {true, false}) {
      Result r = RunBurst(reuse, burst, 5);
      std::printf("%-10d%-18s%-20.0f%-16llu%-12llu\n", burst,
                  reuse ? "reuse (PPM)" : "fork-per-request", r.batch_ms,
                  static_cast<unsigned long long>(r.handlers_created),
                  static_cast<unsigned long long>(r.handler_reuses));
      report.Result("burst" + std::to_string(burst) +
                        (reuse ? ".reuse.ms" : ".fork.ms"),
                    r.batch_ms);
    }
  }
  std::printf(
      "\n(reuse amortizes the fork across requests; fork-per-request pays ~18 ms\n"
      " per request and floods the process table under bursts)\n");
  return 0;
}

// fig2_lpm_creation — reproduces Figure 2 of the paper:
//
//   "LPM Creation Steps Ab Initio": (1) the request reaches inetd,
//   (2) inetd passes it to pmd, creating pmd if necessary, (3) pmd
//   creates the LPM, (4) the accept address is returned.
//
// We run the four-step path against a cold host and narrate each step
// with virtual timestamps, then run it again to show the warm path
// (existing LPM: its address is simply returned).
#include <cstdio>

#include "bench/bench_common.h"
#include "daemon/inetd.h"
#include "daemon/protocol.h"

using namespace ppm;

namespace {

// Issues one LpmRequest from `from` to `to`'s inetd and reports timing.
std::optional<daemon::LpmResponse> Request(core::Cluster& cluster, const std::string& from,
                                           const std::string& to, double* elapsed_ms) {
  std::optional<daemon::LpmResponse> response;
  host::Host& src = cluster.host(from);
  net::HostId dst = *cluster.network().FindHost(to);
  sim::SimTime start = cluster.simulator().Now();
  net::ConnCallbacks cb;
  cb.on_data = [&](net::ConnId c, const std::vector<uint8_t>& bytes) {
    response = daemon::LpmResponse::Parse(bytes);
    cluster.network().Close(c);
  };
  cluster.network().Connect(src.net_id(), net::SocketAddr{dst, net::kInetdPort},
                            std::move(cb), [&](std::optional<net::ConnId> c) {
                              if (!c) return;
                              daemon::LpmRequest req;
                              req.user = bench::kUser;
                              req.origin_host = from;
                              req.origin_user = bench::kUser;
                              cluster.network().Send(*c, req.Serialize());
                            });
  bench::RunUntil(cluster, [&] { return response.has_value(); });
  *elapsed_ms =
      sim::ToMillis(static_cast<sim::SimDuration>(cluster.simulator().Now() - start));
  return response;
}

}  // namespace

int main() {
  bench::BenchReport report("fig2_lpm_creation");
  core::Cluster cluster;
  cluster.AddHost("home");
  cluster.AddHost("target");
  cluster.Link("home", "target");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  bench::PrintHeader("Figure 2: LPM creation steps ab initio");
  std::printf("cold host 'target', request from 'home':\n\n");

  daemon::Inetd* inetd_before = nullptr;
  for (host::Pid p : cluster.host("target").kernel().AllPids()) {
    host::Process* proc = cluster.host("target").kernel().Find(p);
    if (proc && proc->alive() && proc->command == "inetd")
      inetd_before = dynamic_cast<daemon::Inetd*>(proc->body.get());
  }
  std::printf("  (0) boot state: inetd running=%s, pmd running=%s, LPMs=0\n",
              inetd_before ? "yes" : "no", "no");

  double cold_ms = 0;
  auto cold = Request(cluster, "home", "target", &cold_ms);
  if (!cold || !cold->ok) {
    std::fprintf(stderr, "cold request failed\n");
    return 1;
  }
  cluster.RunFor(sim::Millis(50));
  daemon::Pmd* pmd = nullptr;
  host::Process* lpm_proc = cluster.host("target").kernel().Find(cold->lpm_pid);
  for (host::Pid p : cluster.host("target").kernel().AllPids()) {
    host::Process* proc = cluster.host("target").kernel().Find(p);
    if (proc && proc->alive() && proc->command == "pmd")
      pmd = dynamic_cast<daemon::Pmd*>(proc->body.get());
  }
  std::printf("  (1) stream connection accepted by inetd on port %u\n", net::kInetdPort);
  std::printf("  (2) inetd passed the request to pmd, creating it (pmd spawns: %llu)\n",
              static_cast<unsigned long long>(
                  inetd_before ? inetd_before->stats().pmd_spawns : 0));
  std::printf("  (3) pmd verified no LPM for user '%s' existed and created one:\n",
              bench::kUser);
  std::printf("      lpm pid %d (%s), registry size %zu\n", cold->lpm_pid,
              lpm_proc && lpm_proc->alive() ? "alive" : "?",
              pmd ? pmd->registry_size() : 0);
  std::printf("  (4) accept address %s + session token returned to requester\n",
              net::ToString(cold->accept_addr).c_str());
  std::printf("\n  cold-path elapsed: %.1f ms (created=%s)\n", cold_ms,
              cold->created ? "yes" : "no");

  double warm_ms = 0;
  auto warm = Request(cluster, "home", "target", &warm_ms);
  if (!warm || !warm->ok) {
    std::fprintf(stderr, "warm request failed\n");
    return 1;
  }
  std::printf(
      "\nwarm path (LPM already present): same address %s returned, created=%s,\n"
      "  elapsed %.1f ms — \"If an appropriate LPM is found in the host, its\n"
      "  accept address is returned.\"\n",
      net::ToString(warm->accept_addr).c_str(), warm->created ? "yes" : "no", warm_ms);
  std::printf("\nLPM creation is \"somewhat expensive\": cold/warm ratio = %.1fx\n",
              cold_ms / warm_ms);
  report.Result("cold.ms", cold_ms);
  report.Result("warm.ms", warm_ms);
  return 0;
}

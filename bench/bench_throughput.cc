// bench_throughput — the repo's first *wall-clock* bench.
//
// Everything else in bench/ measures virtual milliseconds; this one asks
// how fast the machinery itself runs, because ROADMAP item 2 ("millions
// of events/sec wall-clock") needs a guarded trajectory, not guesswork.
// Following the socket-throughput methodology of the event-parallel
// multiprocessor work in PAPERS.md, we report events/sec and frames/sec
// on the kernel-message path — the paper's Table 1 unit of cost — plus
// encode/decode ns/frame for the wire codec, and close with a ppmprof
// attribution check: the profiler must explain >= 90% of the measured
// wall time from named spans.
//
// Wall-clock numbers are machine-dependent: every one is recorded via
// ResultWallClock, so the committed baseline gates them at bench_diff's
// loose ratio class while the deterministic counters stay tight.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench/bench_common.h"
#include "core/wire.h"
#include "obs/health.h"
#include "obs/prof.h"
#include "tools/ppmprof.h"

using namespace ppm;

namespace {

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

uint64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::Registry::Instance().FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

// --- phase 1: bare simulator dispatch --------------------------------

// A self-rescheduling event chain: the cost is one heap pop, one label
// count, one (possibly compiled-out) profiler span, one closure call.
double SimDispatchEventsPerSec(int events) {
  sim::Simulator s(42);
  int remaining = events;
  std::function<void()> tick = [&] {
    if (--remaining > 0) s.ScheduleIn(sim::Micros(10), tick, "bench-tick");
  };
  s.ScheduleIn(0, tick, "bench-tick");
  auto t0 = WallClock::now();
  s.Run();
  double secs = SecondsSince(t0);
  return secs > 0 ? static_cast<double>(events) / secs : 0;
}

// --- phase 2: wire codec ns/frame ------------------------------------

struct CodecCost {
  double encode_ns = 0;
  double decode_ns = 0;
};

CodecCost KernelEventCodecCost(int frames) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kFileOpen;
  ev.pid = 1234;
  ev.other = 1;
  ev.sig = host::Signal::kSigHup;
  ev.status = 0;
  ev.at = 987654321;
  ev.detail = "/etc/passwd";
  CodecCost out;
  // Zero-copy path: one reusable buffer for every frame (cleared, not
  // reallocated), decoded in place through a non-owning view — this is
  // exactly how the LPM's kernel socket runs the codec.
  core::WireBuffer buf;
  auto t0 = WallClock::now();
  for (int i = 0; i < frames; ++i) core::SerializeKernelEvent(ev, buf);
  out.encode_ns = SecondsSince(t0) * 1e9 / frames;
  std::optional<host::KernelEvent> parsed;
  auto t1 = WallClock::now();
  for (int i = 0; i < frames; ++i) parsed = core::ParseKernelEvent(core::WireView(buf));
  out.decode_ns = SecondsSince(t1) * 1e9 / frames;
  if (!parsed || parsed->detail != ev.detail) std::fprintf(stderr, "codec mismatch?\n");
  return out;
}

CodecCost MsgCodecCost(int frames) {
  core::SignalReq req;
  req.req_id = 7;
  req.target = core::GPid{"alpha", 4242};
  req.sig = host::Signal::kSigStop;
  core::Msg msg = req;
  CodecCost out;
  core::WireBuffer buf;
  auto t0 = WallClock::now();
  for (int i = 0; i < frames; ++i) core::Serialize(msg, obs::TraceContext{}, buf);
  out.encode_ns = SecondsSince(t0) * 1e9 / frames;
  std::optional<core::Msg> parsed;
  auto t1 = WallClock::now();
  for (int i = 0; i < frames; ++i) parsed = core::Parse(core::WireView(buf));
  out.decode_ns = SecondsSince(t1) * 1e9 / frames;
  if (!parsed) std::fprintf(stderr, "codec mismatch?\n");
  return out;
}

// --- phase 3: the end-to-end kernel-message path ---------------------

struct PathRun {
  double wall_s = 0;
  uint64_t kernel_events = 0;
  uint64_t sim_events = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  double attribution_pct = 0;
};

// Two hosts under churn, driven entirely by a self-rescheduling
// simulator event so every cycle of the measured window falls inside
// the "sim.run" / "sim.dispatch.*" profiler spans.  Each driver firing
// touches files and toggles stop/cont for every local worker (each
// traced kernel event crossing the kernel->LPM boundary through
// SerializeKernelEvent/ParseKernelEvent — the paper's kernel-message
// path), and signals the remote workers through the client so real
// frames cross the wire during the window.
PathRun KernelMessagePathRun(int local_workers, int remote_workers, int rounds) {
  // Phase 2's codec loops inflated the wire.* counters; the report's
  // per-opcode table should describe this run's traffic only.
  obs::Registry::Instance().Reset();
  // The default lpm.queue.depth threshold (8) is sized for interactive
  // tool sessions.  This bench intentionally floods the dispatcher —
  // every driver tick enqueues work for all 12 workers at once, so the
  // handler queue legitimately runs thousands deep.  Size the SLO for
  // the bench workload (next power of two above the deterministic peak
  // of 7936) so the committed baseline reports genuine health, not a
  // threshold mismatch; bench_diff fails on a degraded baseline.
  obs::HealthMonitor::Instance().set_threshold("lpm.queue.depth", 8192);
  core::ClusterConfig config;
  config.lpm.granularity_mask = host::kTraceAll;
  // The deep backlog above is the measurement: this bench saturates the
  // dispatcher to time the hot path at full rate.  With the default
  // bounded queue, admission control would shed most of the flood as
  // BUSY and the numbers would measure rejection, not dispatch.
  config.lpm.max_queue_depth = 0;
  core::Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Ethernet({"a", "b"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  PathRun out;
  tools::PpmClient* client = bench::Connect(cluster, "a");
  if (client == nullptr) return out;
  std::vector<host::Pid> local;
  for (int i = 0; i < local_workers; ++i) {
    auto g = bench::CreateSync(cluster, *client, "a", "worker", {}, true);
    if (!g) return out;
    local.push_back(g->pid);
  }
  std::vector<core::GPid> remote;
  for (int i = 0; i < remote_workers; ++i) {
    auto g = bench::CreateSync(cluster, *client, "b", "remote-worker", {}, true);
    if (!g) return out;
    remote.push_back(*g);
  }

  host::Kernel& kernel = cluster.host("a").kernel();
  sim::Simulator& sim = cluster.simulator();
  int remaining = rounds;
  int round = 0;
  std::function<void()> drive = [&] {
    // Stop on even rounds, continue on odd: traced signal traffic that
    // leaves every worker alive for the whole run.
    const host::Signal sig =
        (round++ % 2 == 0) ? host::Signal::kSigStop : host::Signal::kSigCont;
    for (host::Pid pid : local) {
      int fd = kernel.OpenFileFor(pid, "/tmp/bench", "r");
      kernel.CloseFileFor(pid, fd);
      kernel.PostSignal(pid, sig, bench::kUid);
    }
    for (const core::GPid& g : remote) {
      client->Signal(g, sig, [](const core::SignalResp&) {});
    }
    if (--remaining > 0) sim.ScheduleIn(sim::Millis(1), drive, "bench-driver");
  };
  sim.ScheduleIn(sim::Millis(1), drive, "bench-driver");

  const uint64_t kernel_events0 =
      kernel.stats().events_emitted + cluster.host("b").kernel().stats().events_emitted;
  const uint64_t sim_events0 = sim.total_fired();
  const uint64_t frames0 = CounterValue("net.frames.sent");
  const uint64_t bytes0 = CounterValue("net.bytes.sent");
  obs::prof::ProfRegistry::Instance().Reset();

  auto t0 = WallClock::now();
  // One uninterrupted RunFor: all wall time inside the simulator loop.
  cluster.RunFor(sim::Millis(rounds) + sim::Seconds(5));
  out.wall_s = SecondsSince(t0);

  out.kernel_events = kernel.stats().events_emitted +
                      cluster.host("b").kernel().stats().events_emitted -
                      kernel_events0;
  out.sim_events = sim.total_fired() - sim_events0;
  out.frames_sent = CounterValue("net.frames.sent") - frames0;
  out.bytes_sent = CounterValue("net.bytes.sent") - bytes0;
  const uint64_t root_ns =
      tools::RootTotalNs(obs::prof::ProfRegistry::Instance().Snapshot());
  out.attribution_pct =
      out.wall_s > 0 ? static_cast<double>(root_ns) / (out.wall_s * 1e9) * 100.0 : 0;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("throughput");
  bench::PrintHeader("Wall-clock throughput on the kernel-message path");

  constexpr int kSimEvents = 200'000;
  const double sim_eps = SimDispatchEventsPerSec(kSimEvents);
  std::printf("%-44s %14.0f events/sec\n", "bare simulator dispatch", sim_eps);
  report.ResultWallClock("sim.events_per_sec", sim_eps);

  constexpr int kCodecFrames = 200'000;
  const CodecCost kev = KernelEventCodecCost(kCodecFrames);
  const CodecCost msg = MsgCodecCost(kCodecFrames);
  const double kev_fps = 1e9 / (kev.encode_ns + kev.decode_ns);
  std::printf("%-44s %10.0f ns encode, %10.0f ns decode (%0.0f frames/sec)\n",
              "kernel event codec (112-byte frame)", kev.encode_ns, kev.decode_ns,
              kev_fps);
  std::printf("%-44s %10.0f ns encode, %10.0f ns decode\n",
              "wire message codec (SignalReq)", msg.encode_ns, msg.decode_ns);
  report.ResultWallClock("wire.kevent.encode_ns", kev.encode_ns);
  report.ResultWallClock("wire.kevent.decode_ns", kev.decode_ns);
  report.ResultWallClock("wire.kevent.frames_per_sec", kev_fps);
  report.ResultWallClock("wire.msg.encode_ns", msg.encode_ns);
  report.ResultWallClock("wire.msg.decode_ns", msg.decode_ns);
  report.Result("wire.kevent.bytes", static_cast<double>(core::kKernelEventWireBytes));

  constexpr int kLocalWorkers = 8;
  constexpr int kRemoteWorkers = 4;
  constexpr int kRounds = 2000;
  const PathRun path = KernelMessagePathRun(kLocalWorkers, kRemoteWorkers, kRounds);
  std::printf(
      "\nkernel-message path (%d local + %d remote workers x %d rounds, %.2f s wall):\n",
      kLocalWorkers, kRemoteWorkers, kRounds, path.wall_s);
  std::printf("  %-42s %14.0f /sec (%llu total)\n", "kernel events",
              path.wall_s > 0 ? path.kernel_events / path.wall_s : 0,
              static_cast<unsigned long long>(path.kernel_events));
  std::printf("  %-42s %14.0f /sec (%llu total)\n", "sim events",
              path.wall_s > 0 ? path.sim_events / path.wall_s : 0,
              static_cast<unsigned long long>(path.sim_events));
  std::printf("  %-42s %14.0f /sec (%llu total, %llu bytes)\n", "wire frames",
              path.wall_s > 0 ? path.frames_sent / path.wall_s : 0,
              static_cast<unsigned long long>(path.frames_sent),
              static_cast<unsigned long long>(path.bytes_sent));
  report.ResultWallClock("kmsg.events_per_sec",
                         path.wall_s > 0 ? path.kernel_events / path.wall_s : 0);
  report.ResultWallClock("kmsg.sim_events_per_sec",
                         path.wall_s > 0 ? path.sim_events / path.wall_s : 0);
  report.ResultWallClock("kmsg.frames_per_sec",
                         path.wall_s > 0 ? path.frames_sent / path.wall_s : 0);
  // The workload is seeded and virtual-time deterministic, so the event
  // and frame counts gate tightly even though the rates above do not.
  report.Result("kmsg.kernel_events", static_cast<double>(path.kernel_events));
  report.Result("kmsg.sim_events", static_cast<double>(path.sim_events));
  report.Result("kmsg.frames_sent", static_cast<double>(path.frames_sent));
  report.Result("kmsg.bytes_sent", static_cast<double>(path.bytes_sent));

#if PPM_PROF_ENABLED
  std::printf("  %-42s %13.1f%% (claim: >= 90%%)\n", "ppmprof wall-time attribution",
              path.attribution_pct);
  report.ResultWallClock("prof.attribution_pct", path.attribution_pct);

  // The ppmprof report for this run: hotspot tables plus the per-opcode
  // wire decomposition.  CI uploads the text file as an artifact.
  const auto sites = obs::prof::ProfRegistry::Instance().Snapshot();
  const std::string prof_report = tools::RenderProfReport(sites);
  std::printf("\n%s", prof_report.c_str());
  std::ofstream("ppmprof_throughput.txt") << prof_report;
#else
  std::printf("  (profiler compiled out: no attribution)\n");
#endif

  // Cross-check the per-opcode partition right here in the bench: 1 when
  // the net.op.* sums reproduce the net totals exactly.
  uint64_t op_frames = 0, op_bytes = 0;
  {
    auto doc = obs::json::Parse(obs::Registry::Instance().DumpJson());
    if (doc && doc->is_object()) {
      if (const auto* counters = doc->Find("counters"); counters && counters->is_object()) {
        for (const auto& [key, value] : counters->obj) {
          if (key.rfind("net.op.", 0) != 0 || !value.is_number()) continue;
          if (key.size() > 7 && key.rfind(".frames") == key.size() - 7) {
            op_frames += static_cast<uint64_t>(value.number);
          } else if (key.rfind(".bytes") == key.size() - 6) {
            op_bytes += static_cast<uint64_t>(value.number);
          }
        }
      }
    }
  }
  const bool partition_exact = op_frames == CounterValue("net.frames.sent") &&
                               op_bytes == CounterValue("net.bytes.sent");
  std::printf("per-opcode partition exact: %s\n", partition_exact ? "yes" : "NO");
  report.Result("net.opcode_partition_exact", partition_exact ? 1.0 : 0.0);
  return 0;
}

// bench_scale_nodes — scaling "into the tens of nodes" (paper Section 8:
// "The PPM's algorithms were designed to scale well into the tens of
// nodes, but we have yet to stress test our implementation").  This is
// that stress test.
//
// N hosts on one internetwork, one process per remote host, star sibling
// graph from the root (the common interactive shape).  We report remote
// create latency (should be flat: each host's own LPM does the work),
// snapshot latency and frames (grows with N: the root must reach
// everyone), and the total manager footprint.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ppm;

int main() {
  bench::BenchReport report("scale_nodes");
  bench::PrintHeader("Scaling: PPM across N hosts (star sibling graph)");
  std::printf("%-8s%-18s%-16s%-14s%-14s%-12s\n", "N", "create ms (last)", "snapshot ms",
              "records", "frames/snap", "LPMs");
  for (int n : {2, 4, 8, 16, 24, 32, 48}) {
    core::Cluster cluster;
    std::vector<std::string> names;
    for (int i = 0; i < n; ++i) {
      std::string name = "h" + std::to_string(i);
      cluster.AddHost(name);
      names.push_back(name);
    }
    // Two Ethernet segments joined at h0 (hosts are 1-2 hops apart).
    int mid = (n + 1) / 2;
    std::vector<std::string> seg1(names.begin(), names.begin() + mid);
    std::vector<std::string> seg2(names.begin() + mid, names.end());
    seg2.push_back(names[0]);  // h0 is the gateway
    if (seg1.size() >= 2) cluster.Ethernet(seg1);
    if (seg2.size() >= 2) cluster.Ethernet(seg2);
    bench::InstallUser(cluster);
    cluster.RunFor(sim::Millis(10));

    tools::PpmClient* client = bench::Connect(cluster, "h0");
    if (!client) {
      std::printf("%-8d%s\n", n, "session failed");
      continue;
    }
    double last_create = 0;
    bool ok = true;
    for (int i = 1; i < n; ++i) {
      std::optional<core::CreateResp> created;
      last_create = bench::MeasureMs(
          cluster,
          [&] {
            client->CreateProcess(
                names[i], "w", {}, [&](const core::CreateResp& r) { created = r; },
                /*initially_running=*/false);
          },
          [&] { return created.has_value(); });
      if (!created || !created->ok) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      std::printf("%-8d%s\n", n, "create failed");
      continue;
    }
    cluster.RunFor(sim::Seconds(1));

    std::vector<double> snap_ms;
    uint64_t frames = 0;
    size_t records = 0;
    for (int i = 0; i < 3; ++i) {
      uint64_t before = cluster.network().stats().frames_sent;
      std::optional<core::SnapshotResp> snap;
      snap_ms.push_back(bench::MeasureMs(
          cluster,
          [&] { client->Snapshot([&](const core::SnapshotResp& r) { snap = r; }); },
          [&] { return snap.has_value(); }));
      if (snap) records = snap->records.size();
      frames += cluster.network().stats().frames_sent - before;
      cluster.RunFor(sim::Millis(500));
    }
    size_t lpms = 0;
    for (const auto& name : names) {
      if (cluster.FindLpm(name, bench::kUid)) ++lpms;
    }
    std::printf("%-8d%-18.0f%-16.0f%-14zu%-14llu%-12zu\n", n, last_create,
                bench::Mean(snap_ms), records,
                static_cast<unsigned long long>(frames / 3), lpms);
    report.Result("n" + std::to_string(n) + ".create.ms", last_create);
    report.Result("n" + std::to_string(n) + ".snapshot.ms", bench::Mean(snap_ms));
  }
  std::printf(
      "\n(create latency stays flat — work is done by the target host's own LPM;\n"
      " snapshot cost grows with the number of hosts covered, dominated by the\n"
      " root's serialized flood sends: the price of on-demand low connectivity)\n");
  return 0;
}

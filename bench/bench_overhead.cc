// bench_overhead — the paper's two headline overhead claims (Sections 2
// and 8):
//
//   (1) "The runtime overhead for the users not requiring the PPM is
//        negligible, as it only involves comparing to zero the value of
//        a variable."  — untracked processes cost the kernel nothing
//        beyond the trace-mask test;
//   (2) "The PPM overhead is proportional to the services requested" —
//        tracked processes cost exactly one kernel→LPM message per
//        traced event, and the granularity mask prunes that at the
//        source.
//
// Method: a churn workload (Poisson-ish process lifecycles) runs three
// ways on one host — user not using the PPM at all; PPM user tracking
// at full granularity; PPM user tracking exits only.  We report kernel
// events emitted, LPM CPU consumed, and events per unit of service.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/lpm.h"
#include "obs/flight.h"

using namespace ppm;

namespace {

struct Churn {
  uint64_t processes = 0;
  uint64_t kernel_events = 0;
  uint64_t events_suppressed = 0;
  sim::SimDuration lpm_cpu = 0;
};

// Runs `n` short process lifecycles (spawn, some file activity, a stop/
// cont pair, exit) for a user that may or may not be under the PPM.
Churn RunChurn(bool tracked, uint32_t granularity, int n) {
  core::ClusterConfig config;
  config.lpm.granularity_mask = granularity;
  core::Cluster cluster(config);
  cluster.AddHost("solo");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  Churn out;
  tools::PpmClient* client = nullptr;
  if (tracked) {
    client = bench::Connect(cluster, "solo");
    if (!client) return out;
  }
  host::Kernel& kernel = cluster.host("solo").kernel();
  sim::Rng& rng = cluster.simulator().rng();

  for (int i = 0; i < n; ++i) {
    host::Pid pid;
    if (tracked) {
      auto g = bench::CreateSync(cluster, *client, "solo", "churn", {}, true);
      if (!g) return out;
      pid = g->pid;
    } else {
      // The user simply forks; the kernel's only PPM cost is testing the
      // (zero) trace mask.
      pid = kernel.Spawn(host::kNoPid, bench::kUid, "churn");
    }
    int files = static_cast<int>(rng.Below(3));
    for (int f = 0; f < files; ++f) {
      int fd = kernel.OpenFileFor(pid, "/tmp/data", "r");
      kernel.CloseFileFor(pid, fd);
    }
    if (rng.Chance(0.4)) {
      kernel.PostSignal(pid, host::Signal::kSigStop, bench::kUid);
      cluster.RunFor(sim::Millis(50));
      kernel.PostSignal(pid, host::Signal::kSigCont, bench::kUid);
    }
    cluster.RunFor(sim::Millis(static_cast<int64_t>(rng.Below(100))));
    kernel.PostSignal(pid, host::Signal::kSigKill, bench::kUid);
    cluster.RunFor(sim::Millis(20));
    ++out.processes;
  }
  cluster.RunFor(sim::Seconds(2));

  out.kernel_events = kernel.stats().events_emitted;
  out.events_suppressed = kernel.stats().events_dropped;
  if (core::Lpm* lpm = cluster.FindLpm("solo", bench::kUid)) {
    out.events_suppressed += lpm->event_log().total_filtered();
    const host::Process* proc = kernel.Find(lpm->pid());
    if (proc) out.lpm_cpu = proc->rusage.cpu_time;
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("overhead");
  constexpr int kProcs = 60;
  bench::PrintHeader(
      "Overhead: 'negligible when unused, proportional to service' (Secs. 2, 8)");
  std::printf("%-30s%-16s%-18s%-16s\n", "configuration", "kernel events",
              "events filtered", "LPM cpu (ms)");

  Churn untracked = RunChurn(false, host::kTraceAll, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16s\n", "no PPM (untracked user)",
              static_cast<unsigned long long>(untracked.kernel_events),
              static_cast<unsigned long long>(untracked.events_suppressed), "-");

  Churn full = RunChurn(true, host::kTraceAll, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16.1f\n", "PPM, full granularity",
              static_cast<unsigned long long>(full.kernel_events),
              static_cast<unsigned long long>(full.events_suppressed),
              sim::ToMillis(full.lpm_cpu));

  Churn exits_only = RunChurn(true, host::kTraceExit, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16.1f\n", "PPM, exits-only history",
              static_cast<unsigned long long>(exits_only.kernel_events),
              static_cast<unsigned long long>(exits_only.events_suppressed),
              sim::ToMillis(exits_only.lpm_cpu));

  std::printf(
      "\nper-process cost at full granularity: %.1f kernel events, %.2f ms LPM cpu\n",
      static_cast<double>(full.kernel_events) / kProcs,
      sim::ToMillis(full.lpm_cpu) / kProcs);
  report.Result("untracked.kernel_events", static_cast<double>(untracked.kernel_events));
  report.Result("full.kernel_events", static_cast<double>(full.kernel_events));
  report.Result("full.lpm_cpu.ms", sim::ToMillis(full.lpm_cpu));
  report.Result("exits_only.kernel_events",
                static_cast<double>(exits_only.kernel_events));
  report.Result("exits_only.lpm_cpu.ms", sim::ToMillis(exits_only.lpm_cpu));

  // The LPM service-latency histograms (lpm.signal.ms, lpm.snapshot.ms,
  // lpm.stat.ms) travel with this report's metrics dump, and tooling
  // (ppmstat, the DESIGN.md walkthroughs) reads them from the committed
  // baseline.  The churn above never crosses the LPM service path — it
  // pokes the kernel directly — so exercise each service here once to
  // keep those distributions non-zero in BENCH_overhead.json.
  {
    core::ClusterConfig config;
    core::Cluster cluster(config);
    cluster.AddHost("solo");
    bench::InstallUser(cluster);
    cluster.RunFor(sim::Millis(10));
    tools::PpmClient* client = bench::Connect(cluster, "solo");
    if (client != nullptr) {
      auto g = bench::CreateSync(cluster, *client, "solo", "svc", {}, true);
      double signal_ms = 0, snapshot_ms = 0, stat_ms = 0;
      if (g) {
        std::optional<core::SignalResp> sig;
        signal_ms = bench::MeasureMs(
            cluster,
            [&] {
              client->Signal(*g, host::Signal::kSigHup,
                             [&](const core::SignalResp& r) { sig = r; });
            },
            [&] { return sig.has_value(); });
      }
      std::optional<core::SnapshotResp> snap;
      snapshot_ms = bench::MeasureMs(
          cluster,
          [&] { client->Snapshot([&](const core::SnapshotResp& r) { snap = r; }); },
          [&] { return snap.has_value(); });
      std::optional<core::StatResp> stat;
      stat_ms = bench::MeasureMs(
          cluster,
          [&] {
            client->Stat(false, [&](const core::StatResp& r) { stat = r; });
          },
          [&] { return stat.has_value(); });
      std::printf(
          "\nLPM service round trips (virtual): signal %.1f ms, snapshot %.1f ms, "
          "stat %.1f ms\n",
          signal_ms, snapshot_ms, stat_ms);
      report.Result("svc.signal.ms", signal_ms);
      report.Result("svc.snapshot.ms", snapshot_ms);
      report.Result("svc.stat.ms", stat_ms);
    }
  }

  // Flight recorder on the kernel-message hot path.  Record() charges no
  // virtual time (it is bookkeeping, not simulated work), so the claim
  // "always-on costs <5%" is about the bench's own wall clock: the same
  // tracked churn with the recorder off, then on.  Wall-clock numbers
  // are machine-dependent, so they are printed but kept out of the JSON
  // report; only the deterministic record count is committed.
  auto& flight = obs::FlightRecorder::Instance();
  constexpr int kReps = 5;
  // Min-of-reps: scheduler hiccups only ever make a run slower, so the
  // minimum is the least-noisy estimate of each configuration's cost.
  double off_ms = 1e300, on_ms = 1e300;
  Churn flight_off, flight_on;
  flight.Clear();
  for (int rep = 0; rep < kReps; ++rep) {
    flight.set_enabled(false);
    auto w0 = std::chrono::steady_clock::now();
    flight_off = RunChurn(true, host::kTraceAll, kProcs);
    auto w1 = std::chrono::steady_clock::now();
    off_ms = std::min(off_ms, std::chrono::duration<double, std::milli>(w1 - w0).count());
    flight.set_enabled(true);
    auto w2 = std::chrono::steady_clock::now();
    flight_on = RunChurn(true, host::kTraceAll, kProcs);
    auto w3 = std::chrono::steady_clock::now();
    on_ms = std::min(on_ms, std::chrono::duration<double, std::milli>(w3 - w2).count());
  }
  const double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;
  std::printf(
      "\nflight recorder, best of %d churns: off %.2f ms wall, on %.2f ms wall "
      "(%+.1f%%), %llu records recorded\n",
      kReps, off_ms, on_ms, overhead_pct,
      static_cast<unsigned long long>(flight.total_recorded()));
  report.Result("flight.records_recorded",
                static_cast<double>(flight.total_recorded()));
  // The hot path itself, isolated: a raw Record() loop shaped like the
  // kernel-event call site.  ns/record is the whole per-event tax.
  constexpr uint64_t kHot = 1'000'000;
  auto h0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < kHot; ++i) {
    flight.Record(obs::FlightKind::kKernelEvent, "solo", "exec", 0, i & 0xff);
  }
  auto h1 = std::chrono::steady_clock::now();
  const double ns_per_record =
      std::chrono::duration<double, std::nano>(h1 - h0).count() / kHot;
  std::printf("raw Record() on the kernel-event hot path: %.1f ns/record\n",
              ns_per_record);
  // The recorder's share of a whole churn, computed from the stable
  // microtiming (the A/B wall numbers above jitter at this scale): the
  // always-on claim is that this stays under 5%.
  const double records_per_churn =
      static_cast<double>(flight.total_recorded() - kHot) / kReps;
  const double share_pct =
      on_ms > 0 ? records_per_churn * ns_per_record / (on_ms * 1e6) * 100.0 : 0.0;
  std::printf(
      "hot-path share: %.0f records x %.1f ns = %.1f us of a %.2f ms churn "
      "= %.2f%% (claim: <5%%)\n",
      records_per_churn, ns_per_record, records_per_churn * ns_per_record / 1000.0,
      on_ms, share_pct);
  if (flight_on.kernel_events != flight_off.kernel_events) {
    std::printf("warning: recorder toggled kernel event count (%llu vs %llu)?\n",
                static_cast<unsigned long long>(flight_on.kernel_events),
                static_cast<unsigned long long>(flight_off.kernel_events));
  }
  // Wall-clock percentages are machine noise at this scale; only the
  // deterministic counters go into the committed JSON.
  report.Result("flight.kernel_events", static_cast<double>(flight_on.kernel_events));
  flight.Clear();

  std::printf(
      "(the untracked run emits ZERO kernel events — the mask test is the whole\n"
      " cost; with the PPM the cost scales with events traced, and the user-set\n"
      " granularity mask prunes the history without silencing the kernel socket)\n");
  return 0;
}

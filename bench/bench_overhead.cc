// bench_overhead — the paper's two headline overhead claims (Sections 2
// and 8):
//
//   (1) "The runtime overhead for the users not requiring the PPM is
//        negligible, as it only involves comparing to zero the value of
//        a variable."  — untracked processes cost the kernel nothing
//        beyond the trace-mask test;
//   (2) "The PPM overhead is proportional to the services requested" —
//        tracked processes cost exactly one kernel→LPM message per
//        traced event, and the granularity mask prunes that at the
//        source.
//
// Method: a churn workload (Poisson-ish process lifecycles) runs three
// ways on one host — user not using the PPM at all; PPM user tracking
// at full granularity; PPM user tracking exits only.  We report kernel
// events emitted, LPM CPU consumed, and events per unit of service.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/lpm.h"

using namespace ppm;

namespace {

struct Churn {
  uint64_t processes = 0;
  uint64_t kernel_events = 0;
  uint64_t events_suppressed = 0;
  sim::SimDuration lpm_cpu = 0;
};

// Runs `n` short process lifecycles (spawn, some file activity, a stop/
// cont pair, exit) for a user that may or may not be under the PPM.
Churn RunChurn(bool tracked, uint32_t granularity, int n) {
  core::ClusterConfig config;
  config.lpm.granularity_mask = granularity;
  core::Cluster cluster(config);
  cluster.AddHost("solo");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  Churn out;
  tools::PpmClient* client = nullptr;
  if (tracked) {
    client = bench::Connect(cluster, "solo");
    if (!client) return out;
  }
  host::Kernel& kernel = cluster.host("solo").kernel();
  sim::Rng& rng = cluster.simulator().rng();

  for (int i = 0; i < n; ++i) {
    host::Pid pid;
    if (tracked) {
      auto g = bench::CreateSync(cluster, *client, "solo", "churn", {}, true);
      if (!g) return out;
      pid = g->pid;
    } else {
      // The user simply forks; the kernel's only PPM cost is testing the
      // (zero) trace mask.
      pid = kernel.Spawn(host::kNoPid, bench::kUid, "churn");
    }
    int files = static_cast<int>(rng.Below(3));
    for (int f = 0; f < files; ++f) {
      int fd = kernel.OpenFileFor(pid, "/tmp/data", "r");
      kernel.CloseFileFor(pid, fd);
    }
    if (rng.Chance(0.4)) {
      kernel.PostSignal(pid, host::Signal::kSigStop, bench::kUid);
      cluster.RunFor(sim::Millis(50));
      kernel.PostSignal(pid, host::Signal::kSigCont, bench::kUid);
    }
    cluster.RunFor(sim::Millis(static_cast<int64_t>(rng.Below(100))));
    kernel.PostSignal(pid, host::Signal::kSigKill, bench::kUid);
    cluster.RunFor(sim::Millis(20));
    ++out.processes;
  }
  cluster.RunFor(sim::Seconds(2));

  out.kernel_events = kernel.stats().events_emitted;
  out.events_suppressed = kernel.stats().events_dropped;
  if (core::Lpm* lpm = cluster.FindLpm("solo", bench::kUid)) {
    out.events_suppressed += lpm->event_log().total_filtered();
    const host::Process* proc = kernel.Find(lpm->pid());
    if (proc) out.lpm_cpu = proc->rusage.cpu_time;
  }
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("overhead");
  constexpr int kProcs = 60;
  bench::PrintHeader(
      "Overhead: 'negligible when unused, proportional to service' (Secs. 2, 8)");
  std::printf("%-30s%-16s%-18s%-16s\n", "configuration", "kernel events",
              "events filtered", "LPM cpu (ms)");

  Churn untracked = RunChurn(false, host::kTraceAll, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16s\n", "no PPM (untracked user)",
              static_cast<unsigned long long>(untracked.kernel_events),
              static_cast<unsigned long long>(untracked.events_suppressed), "-");

  Churn full = RunChurn(true, host::kTraceAll, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16.1f\n", "PPM, full granularity",
              static_cast<unsigned long long>(full.kernel_events),
              static_cast<unsigned long long>(full.events_suppressed),
              sim::ToMillis(full.lpm_cpu));

  Churn exits_only = RunChurn(true, host::kTraceExit, kProcs);
  std::printf("%-30s%-16llu%-18llu%-16.1f\n", "PPM, exits-only history",
              static_cast<unsigned long long>(exits_only.kernel_events),
              static_cast<unsigned long long>(exits_only.events_suppressed),
              sim::ToMillis(exits_only.lpm_cpu));

  std::printf(
      "\nper-process cost at full granularity: %.1f kernel events, %.2f ms LPM cpu\n",
      static_cast<double>(full.kernel_events) / kProcs,
      sim::ToMillis(full.lpm_cpu) / kProcs);
  report.Result("untracked.kernel_events", static_cast<double>(untracked.kernel_events));
  report.Result("full.kernel_events", static_cast<double>(full.kernel_events));
  report.Result("full.lpm_cpu.ms", sim::ToMillis(full.lpm_cpu));
  report.Result("exits_only.kernel_events",
                static_cast<double>(exits_only.kernel_events));
  report.Result("exits_only.lpm_cpu.ms", sim::ToMillis(exits_only.lpm_cpu));
  std::printf(
      "(the untracked run emits ZERO kernel events — the mask test is the whole\n"
      " cost; with the PPM the cost scales with events traced, and the user-set\n"
      " granularity mask prunes the history without silencing the kernel socket)\n");
  return 0;
}

// bench_baselines — PPM vs the two prior mechanisms the paper measures
// itself against (Section 6): 4.2BSD rexec, and the Summer-1984
// centralized system-wide process control facility.
//
// Three comparisons:
//   (1) remote process creation latency (warm paths) — rexec is cheapest
//       because it does least; the PPM pays for adoption and genealogy;
//   (2) killing a remote computation whose root has forked: the PPM's
//       genealogy reaches every descendant, the baselines strand orphans
//       ("remote processes must therefore be explicitly hunted for");
//   (3) a 20-request burst: the centralized facility serializes at the
//       omniscient site, the PPM spreads work across per-host LPMs.
#include <cstdio>

#include "baseline/central.h"
#include "baseline/rexec.h"
#include "bench/bench_common.h"

using namespace ppm;

namespace {

void BuildWorld(core::Cluster& cluster) {
  cluster.AddHost("root");
  cluster.AddHost("work1");
  cluster.AddHost("work2");
  cluster.Ethernet({"root", "work1", "work2"});
  bench::InstallUser(cluster);
  baseline::StartRexecd(cluster.host("work1"));
  baseline::StartRexecd(cluster.host("work2"));
  baseline::StartCentralManager(cluster.host("root"));
  for (const char* h : {"root", "work1", "work2"}) {
    baseline::StartCentralAgent(cluster.host(h));
  }
  cluster.RunFor(sim::Millis(10));
}

}  // namespace

int main() {
  bench::BenchReport report("baselines");
  bench::PrintHeader("Baselines: PPM vs rexec vs centralized facility");

  // --- (1) remote create latency ------------------------------------------
  {
    core::Cluster cluster;
    BuildWorld(cluster);
    tools::PpmClient* client = bench::Connect(cluster, "root");
    if (!client) return 1;
    bench::CreateSync(cluster, *client, "work1", "warmup");  // LPM + circuit up

    std::vector<double> ppm_ms, rexec_ms, central_ms;
    for (int i = 0; i < 10; ++i) {
      std::optional<core::CreateResp> created;
      ppm_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            client->CreateProcess(
                "work1", "w", {}, [&](const core::CreateResp& r) { created = r; },
                false);
          },
          [&] { return created.has_value(); }));
      std::optional<baseline::RexecResult> rex;
      rexec_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            baseline::RexecSpawn(cluster.host("root"), "work1", bench::kUser, "w",
                                 [&](const baseline::RexecResult& r) { rex = r; });
          },
          [&] { return rex.has_value(); }));
      std::optional<baseline::CentralResult> cen;
      central_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            baseline::CentralSpawn(cluster.host("root"), "root", "work1", bench::kUser,
                                   "w", [&](const baseline::CentralResult& r) { cen = r; });
          },
          [&] { return cen.has_value(); }));
      // The baseline-created processes spin by default; reap them so load
      // stays light across iterations (the PPM ones were born sleeping).
      if (rex && rex->ok)
        cluster.host("work1").kernel().PostSignal(rex->pid, host::Signal::kSigKill,
                                                  host::kRootUid);
      if (cen && cen->ok)
        cluster.host("work1").kernel().PostSignal(cen->pid, host::Signal::kSigKill,
                                                  host::kRootUid);
      cluster.RunFor(sim::Millis(100));
    }
    std::printf("\n(1) remote create, warm (ms): PPM %.0f | rexec %.0f | central %.0f\n",
                bench::Mean(ppm_ms), bench::Mean(rexec_ms), bench::Mean(central_ms));
    report.Result("create.ppm.ms", bench::Mean(ppm_ms));
    report.Result("create.rexec.ms", bench::Mean(rexec_ms));
    report.Result("create.central.ms", bench::Mean(central_ms));
    std::printf(
        "    rexec does least (no adoption, no tracking); the PPM's premium buys\n"
        "    the genealogy that comparison (2) cashes in\n");
  }

  // --- (2) kill a forked remote computation ---------------------------------
  {
    core::Cluster cluster;
    BuildWorld(cluster);
    host::Kernel& kernel = cluster.host("work1").kernel();
    auto count_orphans = [&](std::vector<host::Pid> pids) {
      size_t alive = 0;
      for (host::Pid p : pids) {
        const host::Process* proc = kernel.Find(p);
        if (proc && proc->alive()) ++alive;
      }
      return alive;
    };

    // PPM: create root remotely; it forks two children on its own; kill
    // everything via snapshot+signal.
    tools::PpmClient* client = bench::Connect(cluster, "root");
    if (!client) return 1;
    auto groot = bench::CreateSync(cluster, *client, "work1", "proot", {}, true);
    host::Pid k1 = kernel.Spawn(groot->pid, bench::kUid, "kid1");
    host::Pid k2 = kernel.Spawn(k1, bench::kUid, "grandkid");
    cluster.RunFor(sim::Seconds(1));  // fork events reach the LPM
    std::optional<std::pair<size_t, size_t>> killed;
    client->SignalAll(host::Signal::kSigKill,
                      [&](size_t ok, size_t failed) { killed = {ok, failed}; });
    bench::RunUntil(cluster, [&] { return killed.has_value(); });
    cluster.RunFor(sim::Seconds(1));
    size_t ppm_orphans = count_orphans({groot->pid, k1, k2});

    // rexec: the caller knows only the root pid it got back.
    std::optional<baseline::RexecResult> rex;
    baseline::RexecSpawn(cluster.host("root"), "work1", bench::kUser, "rroot",
                         [&](const baseline::RexecResult& r) { rex = r; });
    bench::RunUntil(cluster, [&] { return rex.has_value(); });
    host::Pid r1 = kernel.Spawn(rex->pid, bench::kUid, "kid1");
    host::Pid r2 = kernel.Spawn(r1, bench::kUid, "grandkid");
    std::optional<baseline::RexecResult> rsig;
    baseline::RexecSignal(cluster.host("root"), "work1", bench::kUser, rex->pid,
                          host::Signal::kSigKill,
                          [&](const baseline::RexecResult& r) { rsig = r; });
    bench::RunUntil(cluster, [&] { return rsig.has_value(); });
    cluster.RunFor(sim::Seconds(1));
    size_t rexec_orphans = count_orphans({rex->pid, r1, r2});

    // central: only registered processes are known; self-forked children
    // never registered.
    std::optional<baseline::CentralResult> cen;
    baseline::CentralSpawn(cluster.host("root"), "root", "work1", bench::kUser, "croot",
                           [&](const baseline::CentralResult& r) { cen = r; });
    bench::RunUntil(cluster, [&] { return cen.has_value(); });
    host::Pid c1 = kernel.Spawn(cen->pid, bench::kUid, "kid1");
    host::Pid c2 = kernel.Spawn(c1, bench::kUid, "grandkid");
    std::optional<baseline::CentralResult> csnap;
    baseline::CentralSnapshot(cluster.host("root"), "root", bench::kUser,
                              [&](const baseline::CentralResult& r) { csnap = r; });
    bench::RunUntil(cluster, [&] { return csnap.has_value(); });
    for (const auto& entry : csnap->entries) {
      std::optional<baseline::CentralResult> s;
      baseline::CentralSignal(cluster.host("root"), "root", entry.host, entry.pid,
                              bench::kUser, host::Signal::kSigKill,
                              [&](const baseline::CentralResult& r) { s = r; });
      bench::RunUntil(cluster, [&] { return s.has_value(); });
    }
    cluster.RunFor(sim::Seconds(1));
    size_t central_orphans = count_orphans({cen->pid, c1, c2});

    std::printf(
        "\n(2) kill a remote computation that forked twice (3 processes total):\n"
        "    orphans left alive: PPM %zu | rexec %zu | central %zu\n"
        "    (the PPM's kernel fork events keep the genealogy complete; rexec\n"
        "    knows one pid; the central registry only sees what it created)\n",
        ppm_orphans, rexec_orphans, central_orphans);
    report.Result("orphans.ppm", static_cast<double>(ppm_orphans));
    report.Result("orphans.rexec", static_cast<double>(rexec_orphans));
    report.Result("orphans.central", static_cast<double>(central_orphans));
  }

  // --- (3) multi-user burst: per-user managers vs one omniscient site ----------
  {
    core::Cluster cluster;
    BuildWorld(cluster);
    // Four users, each with their own PPM (the paper's decentralization
    // axis is *per user*, not per machine).
    std::vector<std::string> users = {"alice", "bob", "carol", "dave"};
    std::vector<tools::PpmClient*> clients;
    for (size_t u = 0; u < users.size(); ++u) {
      host::Uid uid = static_cast<host::Uid>(200 + u);
      cluster.AddUserEverywhere(users[u], uid);
      cluster.TrustUserEverywhere(users[u], uid);
      tools::PpmClient* c =
          tools::SpawnTool(cluster.host("root"), users[u], uid, "burst");
      bool ok = false, done = false;
      c->Start([&](bool success, std::string) {
        done = true;
        ok = success;
      });
      bench::RunUntil(cluster, [&] { return done; });
      if (!ok) return 1;
      clients.push_back(c);
      // Warm each user's circuits.
      std::optional<core::CreateResp> w1, w2;
      c->CreateProcess("work1", "warm", {}, [&](const core::CreateResp& r) { w1 = r; },
                       false);
      bench::RunUntil(cluster, [&] { return w1.has_value(); });
      c->CreateProcess("work2", "warm", {}, [&](const core::CreateResp& r) { w2 = r; },
                       false);
      bench::RunUntil(cluster, [&] { return w2.has_value(); });
    }

    int done = 0;
    double ppm_batch = bench::MeasureMs(
        cluster,
        [&] {
          for (int i = 0; i < 20; ++i) {
            clients[static_cast<size_t>(i) % clients.size()]->CreateProcess(
                i % 2 ? "work1" : "work2", "w", {},
                [&](const core::CreateResp&) { ++done; }, false);
          }
        },
        [&] { return done == 20; });

    int cdone = 0;
    double central_batch = bench::MeasureMs(
        cluster,
        [&] {
          for (int i = 0; i < 20; ++i) {
            baseline::CentralSpawn(cluster.host("root"), "root",
                                   i % 2 ? "work1" : "work2",
                                   users[static_cast<size_t>(i) % users.size()], "w",
                                   [&](const baseline::CentralResult&) { ++cdone; });
          }
        },
        [&] { return cdone == 20; });
    std::printf(
        "\n(3) 20-request creation burst from FOUR users across two hosts (ms):\n"
        "    PPM (per-user managers) %.0f | centralized facility %.0f\n"
        "    (each user's LPMs proceed independently; the omniscient site\n"
        "     serializes everyone — paper Sec. 3)\n",
        ppm_batch, central_batch);
    report.Result("burst.ppm.ms", ppm_batch);
    report.Result("burst.central.ms", central_batch);
  }
  return 0;
}

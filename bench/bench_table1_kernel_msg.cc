// bench_table1_kernel_msg — reproduces Table 1 of the paper:
//
//   "Estimated 112-byte Kernel-LPM Message Delivery Time in
//    Milliseconds.  Load estimator: la."
//
// Method: one host per type; CPU-bound load generators pin the
// time-averaged run-queue length inside each bucket; a traced process is
// toggled with SIGSTOP/SIGCONT and the delivery latency of each 112-byte
// state-change event from the kernel to the (bench-owned) event sink is
// measured against the kernel-side timestamp.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/wire.h"
#include "host/loadgen.h"

namespace {

using namespace ppm;

struct Cell {
  double measured = -1;
  double paper = -1;
};

// Table 1 of the paper (N/A for VAX 780 at la in (3,4]).
constexpr double kPaper[3][4] = {
    {7.2, 9.8, 13.6, -1},     // VAX 11/780
    {7.2, 9.6, 12.8, 18.9},   // VAX 11/750
    {8.31, 14.13, 22.0, 42.7} // SUN II
};

double MeasureBucket(host::HostType type, double target_la) {
  sim::Simulator sim(42);
  net::Network net(sim);
  net::HostId id = net.AddHost("bench");
  host::Host machine(sim, net, id, type, "bench");

  // Pin the load average near the bucket midpoint: 2*target generators
  // at 50% duty keeps the instantaneous queue length near the mean.
  int gens = static_cast<int>(target_la * 2.0 + 0.5);
  host::LoadGenerator load(machine, bench::kUid, gens, gens ? target_la / gens : 0.0);

  // A traced process whose file activity generates kernel events.  It
  // sleeps between syscalls, so sampling does not perturb the run queue.
  host::Pid subject = machine.kernel().Spawn(host::kNoPid, bench::kUid, "subject",
                                             nullptr, host::ProcState::kSleeping);
  host::Pid fake_lpm = machine.kernel().Spawn(host::kNoPid, bench::kUid, "lpm",
                                              nullptr, host::ProcState::kSleeping);
  std::vector<host::Pid> adopted;
  machine.kernel().Adopt(fake_lpm, subject, host::kTraceAll, bench::kUid, &adopted);

  std::vector<double> latencies;
  machine.kernel().RegisterEventSink(bench::kUid, fake_lpm,
                                     [&](const host::KernelEvent& ev) {
                                       // The wire format is the honest 112 bytes.
                                       auto bytes = core::SerializeKernelEvent(ev);
                                       if (bytes.size() != core::kKernelEventWireBytes) return;
                                       latencies.push_back(sim::ToMillis(
                                           static_cast<sim::SimDuration>(sim.Now() - ev.at)));
                                     });

  // Let the EWMA converge, then sample.
  sim.RunUntil(sim.Now() + sim::Seconds(90));
  int fd = -1;
  for (int i = 0; i < 200; ++i) {
    if (fd < 0) {
      fd = machine.kernel().OpenFileFor(subject, "/tmp/probe", "w");
    } else {
      machine.kernel().CloseFileFor(subject, fd);
      fd = -1;
    }
    sim.RunUntil(sim.Now() + sim::Millis(250));
  }
  return bench::Mean(latencies);
}

}  // namespace

int main() {
  bench::BenchReport report("table1_kernel_msg");
  bench::PrintHeader(
      "Table 1: estimated 112-byte kernel-LPM message delivery time (ms) vs load");
  std::printf("%-14s%-22s%-22s%-22s\n", "load bucket", "VAX 11/780", "VAX 11/750", "SUN II");
  std::printf("%-14s%-11s%-11s%-11s%-11s%-11s%-11s\n", "", "measured", "paper",
              "measured", "paper", "measured", "paper");

  const host::HostType types[3] = {host::HostType::kVax780, host::HostType::kVax750,
                                   host::HostType::kSun2};
  const char* names[3] = {"vax780", "vax750", "sun2"};
  const char* buckets[4] = {"0<la<=1", "1<la<=2", "2<la<=3", "3<la<=4"};
  for (int b = 0; b < 4; ++b) {
    double mid = 0.5 + b;
    std::printf("%-14s", buckets[b]);
    for (int t = 0; t < 3; ++t) {
      if (kPaper[t][b] < 0) {
        std::printf("%-11s%-11s", "-", "-");
        continue;
      }
      double measured = MeasureBucket(types[t], mid);
      std::printf("%-11.2f%-11.2f", measured, kPaper[t][b]);
      report.Result(std::string(names[t]) + ".la" + std::to_string(b + 1) + ".ms",
                    measured);
    }
    std::printf("\n");
  }
  std::printf(
      "\n(load pinned at bucket midpoints by duty-cycled CPU hogs; events are\n"
      " file open/close syscalls of a sleeping adopted process, so the probe\n"
      " itself does not perturb the run queue; 200 samples per cell)\n");
  return 0;
}

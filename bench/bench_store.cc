// bench_store — the durable state store: append throughput vs group
// commit, and warm-restart replay time vs journal length.
//
// Unlike the table/figure benches this one measures *wall-clock* cost:
// the journal is a real data structure doing real CRC and framing work,
// and recovery replay happens on the restart path where its latency is
// what an operator experiences.  The virtual-time side of the story is
// the fsync count: each physical sync charges BaseCosts::kStoreSync
// (30 ms of mid-80s Winchester) to the manager, so the
// records-per-fsync ratio IS the simulated durability overhead — the
// bench reports both.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "host/calibration.h"
#include "host/filesystem.h"
#include "store/journal.h"
#include "store/lpm_store.h"

using namespace ppm;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

core::HistEvent MakeEvent(int i) {
  core::HistEvent ev;
  ev.at = static_cast<sim::SimTime>(i) * 1000;
  ev.kind = (i % 3 == 0) ? host::KEvent::kFork
                         : (i % 3 == 1 ? host::KEvent::kExec : host::KEvent::kExit);
  ev.pid = 100 + i % 500;
  ev.other = i % 7 ? host::kNoPid : 100 + (i + 1) % 500;
  ev.detail = "w";
  return ev;
}

struct AppendResult {
  double appends_per_sec = 0;
  size_t fsyncs = 0;
  double virtual_sync_ms = 0;  // fsyncs * kStoreSync
  double bytes_per_fsync = 0;
};

AppendResult BenchAppend(uint32_t group_commit, int records) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::Journal journal(disk, "wal", group_commit);
  size_t fsyncs = 0;
  size_t flushed_bytes = 0;
  journal.set_sync_hook([&](size_t flushed) {
    ++fsyncs;
    flushed_bytes += flushed;
  });
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(static_cast<size_t>(records));
  for (int i = 0; i < records; ++i) {
    util::ByteWriter w;
    w.U64(static_cast<uint64_t>(i));
    w.U8(2);
    w.I32(100 + i % 500);
    w.Str("bench-payload");
    payloads.push_back(w.Take());
  }
  Clock::time_point start = Clock::now();
  for (const auto& p : payloads) journal.Append(p);
  journal.Sync();
  double secs = SecondsSince(start);
  AppendResult out;
  out.appends_per_sec = secs > 0 ? records / secs : 0;
  out.fsyncs = fsyncs;
  out.virtual_sync_ms =
      sim::ToMillis(host::BaseCosts::kStoreSync) * static_cast<double>(fsyncs);
  out.bytes_per_fsync = fsyncs ? static_cast<double>(flushed_bytes) / fsyncs : 0;
  return out;
}

struct ReplayResult {
  double replay_ms = 0;        // wall-clock LpmStore::Recover
  size_t events_recovered = 0;
  size_t journal_bytes = 0;
};

ReplayResult BenchReplay(int records, uint32_t checkpoint_every) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 64;
  cfg.checkpoint_every = checkpoint_every;
  cfg.event_capacity = static_cast<size_t>(records) + 1;  // no ring trim
  {
    store::LpmStore s(disk, cfg);
    s.Open(store::RecoveredState{}, 0);
    for (int i = 0; i < records; ++i) s.RecordEvent(MakeEvent(i));
    s.Sync();
  }
  ReplayResult out;
  out.journal_bytes = disk.Size(store::LpmStore::kJournalFile);
  Clock::time_point start = Clock::now();
  store::RecoveredState st = store::LpmStore::Recover(disk);
  out.replay_ms = SecondsSince(start) * 1000.0;
  out.events_recovered = st.events.size();
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("store");
  constexpr int kAppendRecords = 100000;

  bench::PrintHeader("Journal append throughput vs group-commit batch");
  std::printf("%-12s%-18s%-12s%-22s%-16s\n", "batch", "appends/sec", "fsyncs",
              "virtual sync ms", "bytes/fsync");
  for (uint32_t batch : {1u, 4u, 16u, 64u}) {
    AppendResult r = BenchAppend(batch, kAppendRecords);
    std::printf("%-12u%-18.0f%-12zu%-22.0f%-16.0f\n", batch, r.appends_per_sec,
                r.fsyncs, r.virtual_sync_ms, r.bytes_per_fsync);
    std::string key = "append.batch" + std::to_string(batch);
    report.Result(key + ".appends_per_sec", r.appends_per_sec);
    report.Result(key + ".fsyncs", static_cast<double>(r.fsyncs));
    report.Result(key + ".virtual_sync_ms", r.virtual_sync_ms);
  }

  bench::PrintHeader("Warm-restart replay time vs journal length (no checkpoints)");
  std::printf("%-12s%-14s%-16s%-16s\n", "records", "replay ms", "recovered",
              "journal KiB");
  for (int len : {1000, 10000, 50000}) {
    ReplayResult r = BenchReplay(len, /*checkpoint_every=*/0);
    std::printf("%-12d%-14.2f%-16zu%-16zu\n", len, r.replay_ms,
                r.events_recovered, r.journal_bytes / 1024);
    std::string key = "replay.len" + std::to_string(len);
    report.Result(key + ".ms", r.replay_ms);
    report.Result(key + ".events", static_cast<double>(r.events_recovered));
  }

  bench::PrintHeader("Replay with compaction (checkpoint every 256 records)");
  std::printf("%-12s%-14s%-16s%-16s\n", "records", "replay ms", "recovered",
              "journal KiB");
  for (int len : {1000, 10000, 50000}) {
    ReplayResult r = BenchReplay(len, /*checkpoint_every=*/256);
    std::printf("%-12d%-14.2f%-16zu%-16zu\n", len, r.replay_ms,
                r.events_recovered, r.journal_bytes / 1024);
    std::string key = "replay_ckpt.len" + std::to_string(len);
    report.Result(key + ".ms", r.replay_ms);
  }

  std::printf(
      "\n(group commit trades durability lag for fsync count: batch 64 does\n"
      " ~64x fewer 30 ms virtual syncs than batch 1 for the same records;\n"
      " checkpoints bound replay by the interval, not by history length)\n");
  return 0;
}

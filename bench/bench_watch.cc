// bench_watch — the cost of continuous monitoring (PR 10).
//
// Two questions gate the push-based STAT stream:
//
//   1. Overhead: what does an active watch cost the kernel-message hot
//      path?  The bench_throughput workload (8 local + 4 remote workers
//      driven every virtual millisecond) runs with 0, 1, and 4 watches
//      at a 100ms virtual interval.  The acceptance budget is <5%
//      degradation with one watch: a delta push is priced at
//      BaseCosts::kStatPush (3ms) per 100ms interval — a 3% dispatcher
//      share by construction — and the deterministic sim-event overhead
//      reported here pins the measured machinery cost alongside the
//      machine-dependent wall-clock events/sec.
//   2. Fan-in: a watch must cost O(hosts) StatDelta frames per interval
//      — each manager sends exactly one aggregated frame up its delta
//      path — not a flood per refresh.  Measured at 16/64/256 hosts via
//      the per-opcode frame accounting (net.op.StatDelta.frames), whose
//      partition invariant keeps the count exact.
//
// Frame counts and sim-event counts are deterministic (fixed seed) and
// gated tightly by bench_diff; events/sec is wall-clock and gated at
// the loose ratio class.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "host/calibration.h"
#include "obs/health.h"
#include "tools/ppmtop.h"

using namespace ppm;

namespace {

using WallClock = std::chrono::steady_clock;

constexpr uint64_t kIntervalUs = 100'000;  // 100ms virtual watch interval

double SecondsSince(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

uint64_t CounterValue(const char* name) {
  const obs::Counter* c = obs::Registry::Instance().FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

// --- phase 1: hot-path overhead under 0 / 1 / 4 watches --------------

struct OverheadRun {
  bool ok = false;
  double wall_s = 0;
  uint64_t kernel_events = 0;
  uint64_t sim_events = 0;
  uint64_t watch_pushes = 0;
  double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(kernel_events) / wall_s : 0;
  }
};

// The bench_throughput kernel-message workload, with `watches` active
// subscriptions riding it.  Virtual timeline and seed are fixed, so the
// kernel-event and sim-event totals are deterministic per watch count.
OverheadRun KernelPathWithWatches(int watches, int rounds) {
  obs::Registry::Instance().Reset();
  // Same saturated-dispatcher setup as bench_throughput (see there for
  // the rationale): unbounded queue, SLO sized for the flood.
  obs::HealthMonitor::Instance().set_threshold("lpm.queue.depth", 8192);
  core::ClusterConfig config;
  config.lpm.granularity_mask = host::kTraceAll;
  config.lpm.max_queue_depth = 0;
  config.seed = 10;
  core::Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Ethernet({"a", "b"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  OverheadRun out;
  tools::PpmClient* client = bench::Connect(cluster, "a");
  if (client == nullptr) return out;
  std::vector<host::Pid> local;
  for (int i = 0; i < 8; ++i) {
    auto g = bench::CreateSync(cluster, *client, "a", "worker", {}, true);
    if (!g) return out;
    local.push_back(g->pid);
  }
  std::vector<core::GPid> remote;
  for (int i = 0; i < 4; ++i) {
    auto g = bench::CreateSync(cluster, *client, "b", "remote-worker", {}, true);
    if (!g) return out;
    remote.push_back(*g);
  }

  std::vector<std::unique_ptr<tools::PpmTop>> tops;
  for (int i = 0; i < watches; ++i) {
    auto top = std::make_unique<tools::PpmTop>(cluster.host("a"), *client,
                                               kIntervalUs);
    std::optional<bool> started;
    top->Start([&](bool ok) { started = ok; });
    if (!bench::RunUntil(cluster, [&] { return started.has_value(); }) || !*started) {
      return out;
    }
    tops.push_back(std::move(top));
  }
  // Let every watch reach its per-interval steady state before timing.
  cluster.RunFor(sim::Millis(300));

  host::Kernel& kernel = cluster.host("a").kernel();
  sim::Simulator& sim = cluster.simulator();
  int remaining = rounds;
  int round = 0;
  std::function<void()> drive = [&] {
    const host::Signal sig =
        (round++ % 2 == 0) ? host::Signal::kSigStop : host::Signal::kSigCont;
    for (host::Pid pid : local) {
      int fd = kernel.OpenFileFor(pid, "/tmp/bench", "r");
      kernel.CloseFileFor(pid, fd);
      kernel.PostSignal(pid, sig, bench::kUid);
    }
    for (const core::GPid& g : remote) {
      client->Signal(g, sig, [](const core::SignalResp&) {});
    }
    if (--remaining > 0) sim.ScheduleIn(sim::Millis(1), drive, "bench-driver");
  };
  sim.ScheduleIn(sim::Millis(1), drive, "bench-driver");

  const uint64_t kernel0 = kernel.stats().events_emitted +
                           cluster.host("b").kernel().stats().events_emitted;
  const uint64_t sim0 = sim.total_fired();
  const uint64_t pushes0 = CounterValue("lpm.watch.pushes");

  auto t0 = WallClock::now();
  cluster.RunFor(sim::Millis(rounds) + sim::Seconds(5));
  out.wall_s = SecondsSince(t0);

  out.kernel_events = kernel.stats().events_emitted +
                      cluster.host("b").kernel().stats().events_emitted - kernel0;
  out.sim_events = sim.total_fired() - sim0;
  out.watch_pushes = CounterValue("lpm.watch.pushes") - pushes0;
  for (auto& top : tops) top->Stop();
  cluster.RunFor(sim::Millis(50));
  out.ok = true;
  return out;
}

// --- phase 2: StatDelta fan-in vs cluster size -----------------------

struct FanInRun {
  bool ok = false;
  double frames_per_interval = 0;
  double frames_per_host_per_interval = 0;
  double bytes_per_interval = 0;
  uint64_t seq_gaps = 0;
  uint64_t seq_dups = 0;
};

// A star of n hosts (one worker each, sibling graph centered on the
// hub) under one watch: the per-opcode accounting counts the StatDelta
// frames a steady interval costs.
FanInRun DeltaFanIn(int n, int intervals) {
  obs::Registry::Instance().Reset();
  core::ClusterConfig config;
  config.seed = 10;
  core::Cluster cluster(config);
  std::vector<std::string> hosts;
  for (int i = 0; i < n; ++i) hosts.push_back("h" + std::to_string(i));
  for (const std::string& h : hosts) cluster.AddHost(h);
  for (size_t i = 1; i < hosts.size(); ++i) cluster.Link("h0", hosts[i]);
  bench::InstallUser(cluster, {"h0", "h1"});
  cluster.RunFor(sim::Millis(10));

  FanInRun out;
  tools::PpmClient* client = bench::Connect(cluster, "h0");
  if (client == nullptr) return out;
  std::optional<core::GPid> root;
  for (const std::string& h : hosts) {
    auto g = bench::CreateSync(cluster, *client, h, "worker-" + h,
                               h == "h0" ? core::GPid{} : *root, false);
    if (!g) return out;
    if (h == "h0") root = g;
  }

  tools::PpmTop top(cluster.host("h0"), *client, kIntervalUs);
  std::optional<bool> started;
  top.Start([&](bool ok) { started = ok; });
  if (!bench::RunUntil(cluster, [&] { return started.has_value(); }) || !*started) {
    return out;
  }
  if (!bench::RunUntil(cluster,
                       [&] { return top.host_count() == hosts.size(); })) {
    return out;
  }
  cluster.RunFor(sim::Millis(300));  // fill the relay pipeline

  const uint64_t frames0 = CounterValue("net.op.StatDelta.frames");
  const uint64_t bytes0 = CounterValue("net.op.StatDelta.bytes");
  cluster.RunFor(sim::Micros(kIntervalUs * static_cast<uint64_t>(intervals)));
  const uint64_t frames = CounterValue("net.op.StatDelta.frames") - frames0;
  const uint64_t bytes = CounterValue("net.op.StatDelta.bytes") - bytes0;

  out.frames_per_interval = static_cast<double>(frames) / intervals;
  out.frames_per_host_per_interval = out.frames_per_interval / n;
  out.bytes_per_interval = static_cast<double>(bytes) / intervals;
  out.seq_gaps = top.seq_gaps();
  out.seq_dups = top.seq_dups();
  top.Stop();
  cluster.RunFor(sim::Millis(50));
  out.ok = true;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("watch");

  bench::PrintHeader("Monitoring overhead: kernel-message path with active watches");
  constexpr int kRounds = 2000;
  const double budget_pct = sim::ToMillis(host::BaseCosts::kStatPush) /
                            (static_cast<double>(kIntervalUs) / 1000.0) * 100.0;
  std::printf("per-watch push budget: %.1f virtual ms per %.0f ms interval (%.1f%%)\n\n",
              sim::ToMillis(host::BaseCosts::kStatPush),
              static_cast<double>(kIntervalUs) / 1000.0, budget_pct);
  report.Result("watch.push_budget_pct", budget_pct);

  OverheadRun base;
  for (int watches : {0, 1, 4}) {
    const OverheadRun run = KernelPathWithWatches(watches, kRounds);
    if (!run.ok) {
      std::printf("  %d watches: workload failed to assemble\n", watches);
      continue;
    }
    if (watches == 0) base = run;
    const double sim_overhead_pct =
        base.sim_events > 0
            ? (static_cast<double>(run.sim_events) -
               static_cast<double>(base.sim_events)) /
                  static_cast<double>(base.sim_events) * 100.0
            : 0;
    std::printf(
        "  %d watches: %10.0f events/sec wall, %llu kernel events, %llu sim events"
        " (+%.2f%%), %llu pushes\n",
        watches, run.events_per_sec(),
        static_cast<unsigned long long>(run.kernel_events),
        static_cast<unsigned long long>(run.sim_events), sim_overhead_pct,
        static_cast<unsigned long long>(run.watch_pushes));
    const std::string key = "overhead.w" + std::to_string(watches);
    report.ResultWallClock(key + ".events_per_sec", run.events_per_sec());
    // Deterministic: the workload's kernel events must not depend on
    // monitoring at all, and the sim-event machinery overhead is the
    // measured (virtual-schedule) cost of the watches.
    report.Result(key + ".kernel_events", static_cast<double>(run.kernel_events));
    report.Result(key + ".sim_events", static_cast<double>(run.sim_events));
  }

  bench::PrintHeader("Delta fan-in: StatDelta frames per interval vs hosts");
  bench::PrintRow({"hosts", "frames/intvl", "per-host", "bytes/intvl"}, 14);
  constexpr int kIntervals = 10;
  for (int n : {16, 64, 256}) {
    const FanInRun run = DeltaFanIn(n, kIntervals);
    if (!run.ok) {
      std::printf("  h=%d: fan-in run failed to assemble\n", n);
      continue;
    }
    bench::PrintRow({std::to_string(n), bench::Fmt(run.frames_per_interval, 1),
                     bench::Fmt(run.frames_per_host_per_interval, 2),
                     bench::Fmt(run.bytes_per_interval, 0)},
                    14);
    const std::string key = "fanin.h" + std::to_string(n);
    report.Result(key + ".frames_per_interval", run.frames_per_interval);
    report.Result(key + ".frames_per_host_per_interval",
                  run.frames_per_host_per_interval);
    report.Result(key + ".bytes_per_interval", run.bytes_per_interval);
    report.Result(key + ".seq_gaps", static_cast<double>(run.seq_gaps));
    report.Result(key + ".seq_dups", static_cast<double>(run.seq_dups));
  }
  std::printf(
      "\nOne aggregated frame per manager per interval: the per-host column\n"
      "stays at ~1.0 as the cluster grows — O(hosts), not a flood per refresh.\n");
  return 0;
}

// bench_migration — cost profile of the process-migration extension.
//
// The 1986 PPM had no migration; the paper cites DEMOS/MP and LOCUS as
// systems that did and lists event-dependent changes of "the site of
// execution" as a motivation.  This bench characterizes our cold
// migration: cost vs topological distance between source and
// destination, compared against plain remote creation (migration must
// cost more: it ships an image and runs a distributed commit), plus the
// host-evacuation scenario (move everything off a machine before taking
// it down).
#include <cstdio>

#include "bench/bench_common.h"

using namespace ppm;

int main() {
  bench::BenchReport report("migration");
  // Chain: home — h1 — h2 — h3 (so migrations cover 1..3 hops).
  core::Cluster cluster;
  cluster.AddHost("home");
  cluster.AddHost("h1");
  cluster.AddHost("h2");
  cluster.AddHost("h3");
  cluster.Link("home", "h1");
  cluster.Link("h1", "h2");
  cluster.Link("h2", "h3");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = bench::Connect(cluster, "home");
  if (!client) return 1;
  // Warm every LPM and circuit.
  for (const char* h : {"home", "h1", "h2", "h3"}) {
    if (!bench::CreateSync(cluster, *client, h, "warm")) return 1;
  }

  bench::PrintHeader("Extension: process migration cost vs distance");
  std::printf("%-22s%-18s%-18s\n", "move", "migrate ms", "plain create ms");
  struct Move {
    const char* from;
    const char* to;
    const char* label;
  };
  for (const Move& mv : {Move{"home", "h1", "home -> h1 (1 hop)"},
                         Move{"home", "h2", "home -> h2 (2 hops)"},
                         Move{"home", "h3", "home -> h3 (3 hops)"},
                         Move{"h1", "h3", "h1 -> h3 (2 hops)"}}) {
    auto g = bench::CreateSync(cluster, *client, mv.from, "migrant");
    if (!g) return 1;
    std::optional<core::MigrateResp> migrated;
    double mig_ms = bench::MeasureMs(
        cluster,
        [&] {
          client->Migrate(*g, mv.to, [&](const core::MigrateResp& r) { migrated = r; });
        },
        [&] { return migrated.has_value(); });
    if (!migrated || !migrated->ok) {
      std::printf("%-22sFAILED: %s\n", mv.label, migrated ? migrated->error.c_str() : "");
      continue;
    }
    std::optional<core::CreateResp> created;
    double create_ms = bench::MeasureMs(
        cluster,
        [&] {
          client->CreateProcess(
              mv.to, "fresh", {}, [&](const core::CreateResp& r) { created = r; }, false);
        },
        [&] { return created.has_value(); });
    std::printf("%-22s%-18.0f%-18.0f\n", mv.label, mig_ms, create_ms);
    report.Result(std::string(mv.from) + "_to_" + mv.to + ".migrate.ms", mig_ms);
    report.Result(std::string(mv.from) + "_to_" + mv.to + ".create.ms", create_ms);
    cluster.RunFor(sim::Millis(200));
  }

  // Host evacuation: drain N processes off h1 before maintenance.
  bench::PrintHeader("Extension: evacuating a host (migrate everything off h1)");
  std::printf("%-12s%-20s\n", "processes", "evacuation ms");
  for (int n : {2, 4, 8}) {
    std::vector<core::GPid> movers;
    for (int i = 0; i < n; ++i) {
      auto g = bench::CreateSync(cluster, *client, "h1", "svc" + std::to_string(i));
      if (!g) return 1;
      movers.push_back(*g);
    }
    size_t done_count = 0;
    double ms = bench::MeasureMs(
        cluster,
        [&] {
          for (const core::GPid& g : movers) {
            client->Migrate(g, "h2",
                            [&](const core::MigrateResp& r) { done_count += r.ok; });
          }
        },
        [&] { return done_count == movers.size(); });
    std::printf("%-12d%-20.0f\n", n, ms);
    report.Result("evacuate" + std::to_string(n) + ".ms", ms);
    cluster.RunFor(sim::Millis(500));
  }
  std::printf(
      "\n(migration = checkpoint + image transfer + remote create + distributed\n"
      " commit; it rides the same sibling channels and handler machinery as every\n"
      " other PPM operation, so evacuation parallelizes across handlers)\n");
  return 0;
}

// bench_ablate_procfs — message-based LPMs vs the processes-as-files
// approach (paper Section 6).
//
// The authors wrote that /proc over a network file system is "a very
// elegant alternative to our message based approach" for signal
// delivery, but that event detection and remote creation fall outside
// it.  Both mechanisms exist in this repository, so the comparison runs:
//
//   * latency of one remote stop: PPM sibling channel (amortized) vs a
//     one-shot NFS-style /proc ctl write;
//   * the "hunting" cost /proc imposes: without genealogy, finding your
//     own processes means listing and reading every pid on every host;
//   * the capability matrix the paper argues from.
#include <cstdio>

#include "bench/bench_common.h"
#include "host/procfs.h"

using namespace ppm;

int main() {
  bench::BenchReport report("ablate_procfs");
  core::Cluster cluster;
  cluster.AddHost("home");
  cluster.AddHost("work");
  cluster.Link("home", "work");
  bench::InstallUser(cluster);
  host::StartProcFsServer(cluster.host("work"));
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = bench::Connect(cluster, "home");
  if (!client) return 1;
  auto target = bench::CreateSync(cluster, *client, "work", "victim");
  if (!target) return 1;
  // Other processes on the host, to make the hunt realistic.
  for (int i = 0; i < 20; ++i) {
    cluster.host("work").kernel().Spawn(host::kNoPid, 777, "noise", nullptr,
                                        host::ProcState::kSleeping);
  }

  bench::PrintHeader("Ablation: PPM messages vs /proc-over-NFS (paper Sec. 6)");

  // (1) one remote stop, both ways.
  std::vector<double> ppm_ms, proc_ms;
  for (int i = 0; i < 10; ++i) {
    std::optional<core::SignalResp> sig;
    ppm_ms.push_back(bench::MeasureMs(
        cluster,
        [&] {
          client->Signal(*target, i % 2 ? host::Signal::kSigCont : host::Signal::kSigStop,
                         [&](const core::SignalResp& r) { sig = r; });
        },
        [&] { return sig.has_value(); }));
    std::optional<host::ProcFsResult> result;
    proc_ms.push_back(bench::MeasureMs(
        cluster,
        [&] {
          host::ProcFsWriteCtl(cluster.host("home"), "work", target->pid,
                               i % 2 ? "stop" : "cont", bench::kUid,
                               [&](const host::ProcFsResult& r) { result = r; });
        },
        [&] { return result.has_value(); }));
  }
  std::printf("\n(1) remote stop/cont latency: PPM %.0f ms | /proc ctl write %.0f ms\n",
              bench::Mean(ppm_ms), bench::Mean(proc_ms));
  report.Result("stop.ppm.ms", bench::Mean(ppm_ms));
  report.Result("stop.procfs.ms", bench::Mean(proc_ms));
  std::printf(
      "    the one-shot /proc write beats the marshalled sibling channel on a\n"
      "    single signal — exactly why the authors called it elegant for\n"
      "    message delivery\n");

  // (2) but finding your processes without genealogy means hunting.
  double snap_ms;
  size_t snap_records = 0;
  {
    std::optional<core::SnapshotResp> snap;
    snap_ms = bench::MeasureMs(
        cluster, [&] { client->Snapshot([&](const core::SnapshotResp& r) { snap = r; }); },
        [&] { return snap.has_value(); });
    if (snap) snap_records = snap->records.size();
  }
  double hunt_ms;
  size_t reads = 0;
  {
    std::optional<host::ProcFsResult> listing;
    size_t mine = 0;
    hunt_ms = bench::MeasureMs(
        cluster,
        [&] {
          host::ProcFsList(cluster.host("home"), "work",
                           [&](const host::ProcFsResult& r) { listing = r; });
        },
        [&] { return listing.has_value(); });
    // Read every status file to find ours (uid match) — the "explicitly
    // hunted for" cost.
    for (host::Pid p : listing->pids) {
      std::optional<host::ProcFsResult> status;
      hunt_ms += bench::MeasureMs(
          cluster,
          [&] {
            host::ProcFsRead(cluster.host("home"), "work", p,
                             [&](const host::ProcFsResult& r) { status = r; });
          },
          [&] { return status.has_value(); });
      ++reads;
      if (status->ok &&
          status->content.find("uid " + std::to_string(bench::kUid)) != std::string::npos) {
        ++mine;
      }
    }
    (void)mine;
  }
  std::printf(
      "\n(2) locating the user's processes on one busy host:\n"
      "    PPM snapshot %.0f ms (%zu records, genealogy included)\n"
      "    /proc hunt   %.0f ms (%zu status files read one RPC at a time)\n",
      snap_ms, snap_records, hunt_ms, reads);
  report.Result("locate.snapshot.ms", snap_ms);
  report.Result("locate.proc_hunt.ms", hunt_ms);

  // (3) capability matrix.
  std::printf(
      "\n(3) capability matrix (paper Sec. 6):\n"
      "    %-34s %-8s %s\n"
      "    %-34s %-8s %s\n"
      "    %-34s %-8s %s\n"
      "    %-34s %-8s %s\n"
      "    %-34s %-8s %s\n",
      "capability", "PPM", "/proc+NFS",
      "signal delivery", "yes", "yes",
      "event detection / history", "yes", "NO (pull-only)",
      "remote process creation", "yes", "NO",
      "authenticated control", "pmd token", "claimed uid (AUTH_UNIX)");
  return 0;
}

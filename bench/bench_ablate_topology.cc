// bench_ablate_topology — ablation of the sibling interconnection policy
// (paper Sections 3-4 and 7: "One area of our implementation that
// deserves a second look is the establishment and maintenance of the PPM
// communication topology").
//
// Same four hosts, six processes on every non-root host, three sibling
// graph shapes:
//   star       root talks to everyone directly (what eager connection
//              propagation would buy)
//   chain      connections follow a pipeline-shaped computation (the
//              low-connectivity graph the PPM favours)
//   full mesh  every pair connected (maximum connectivity)
//
// Measured: snapshot latency, circuits maintained, frames per snapshot —
// the trade the paper describes between connection-maintenance cost and
// request latency.
#include <cstdio>

#include "bench/snapshot_topologies.h"

using namespace ppm;

int main() {
  bench::BenchReport report("ablate_topology");
  std::vector<bench::Topology> shapes = {
      {"star",
       {{"root", "hostA"}, {"root", "hostB"}, {"root", "hostC"}},
       -1,
       ""},
      {"chain",
       {{"root", "hostA"}, {"hostA", "hostB"}, {"hostB", "hostC"}},
       -1,
       ""},
      {"full mesh",
       {{"root", "hostA"},
        {"root", "hostB"},
        {"root", "hostC"},
        {"hostA", "hostB"},
        {"hostA", "hostC"},
        {"hostB", "hostC"}},
       -1,
       ""},
  };

  bench::PrintHeader(
      "Ablation: sibling interconnection topology (4 hosts, 6 procs per remote)");
  std::printf("%-12s%-14s%-12s%-12s%-14s\n", "shape", "snapshot ms", "circuits",
              "frames", "dup suppressed");
  for (const auto& shape : shapes) {
    // Count circuits after setup by rebuilding and inspecting.
    core::Cluster cluster;
    cluster.AddHost("root");
    for (const auto& [from, to] : shape.edges) {
      if (!cluster.HasHost(to)) cluster.AddHost(to);
    }
    // Physically fully linked so the logical shape is the only variable.
    cluster.Ethernet(cluster.host_names());
    bench::InstallUser(cluster);
    cluster.RunFor(sim::Millis(10));
    tools::PpmClient* root_tool = bench::Connect(cluster, "root", "snapshot");
    if (!root_tool) return 1;
    bool populated[8] = {false};
    for (const auto& [from, to] : shape.edges) {
      tools::PpmClient* creator =
          (from == "root") ? root_tool : bench::Connect(cluster, from, "spawner");
      if (!creator) return 1;
      // Six processes the first time a host is targeted; later edges to
      // the same host only warm the circuit with one short-lived create.
      size_t host_index = 0;
      auto names = cluster.host_names();
      for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == to) host_index = i;
      int procs = populated[host_index] ? 1 : 6;
      populated[host_index] = true;
      for (int i = 0; i < procs; ++i) {
        if (!bench::CreateSync(cluster, *creator, to, "p" + std::to_string(i))) return 1;
      }
      if (creator != root_tool) creator->Disconnect();
    }
    cluster.RunFor(sim::Seconds(1));

    size_t circuits = 0;
    uint64_t dups_before = 0;
    for (const auto& name : cluster.host_names()) {
      core::Lpm* lpm = cluster.FindLpm(name, bench::kUid);
      if (lpm) {
        circuits += lpm->sibling_hosts().size();
        dups_before += lpm->stats().bcast_duplicates;
      }
    }
    circuits /= 2;  // each circuit counted at both ends

    std::vector<double> times;
    uint64_t frames = 0;
    for (int i = 0; i < 5; ++i) {
      uint64_t before = cluster.network().stats().frames_sent;
      std::optional<core::SnapshotResp> snap;
      times.push_back(bench::MeasureMs(
          cluster,
          [&] { root_tool->Snapshot([&](const core::SnapshotResp& r) { snap = r; }); },
          [&] { return snap.has_value(); }));
      frames += cluster.network().stats().frames_sent - before;
      cluster.RunFor(sim::Millis(500));
    }
    uint64_t dups_after = 0;
    for (const auto& name : cluster.host_names()) {
      core::Lpm* lpm = cluster.FindLpm(name, bench::kUid);
      if (lpm) dups_after += lpm->stats().bcast_duplicates;
    }
    std::printf("%-12s%-14.0f%-12zu%-12llu%-14llu\n", shape.name.c_str(),
                bench::Mean(times), circuits,
                static_cast<unsigned long long>(frames / 5),
                static_cast<unsigned long long>(dups_after - dups_before));
    report.Result(shape.name + ".snapshot.ms", bench::Mean(times));
  }
  std::printf(
      "\n(low-connectivity graphs pay latency on deep snapshots; high connectivity\n"
      " pays circuits to maintain and duplicate-suppression work on every flood —\n"
      " the policy trade-off of paper Sections 3-4)\n");
  return 0;
}

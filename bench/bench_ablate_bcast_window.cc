// bench_ablate_bcast_window — ablation of the broadcast duplicate-
// suppression window (paper Section 4: "The appropriate time window for
// retaining old broadcast requests is a configuration parameter whose
// optimum value will be derived from experience").
//
// A triangle sibling graph echoes every flood back around the cycle a
// few hundred milliseconds later.  A window shorter than that echo time
// forgets the request before its duplicate arrives and re-floods it
// (wasted frames and scans); a long window remembers everything but
// holds more filter state.  We sweep the window and report both costs.
#include <cstdio>

#include "bench/bench_common.h"

using namespace ppm;

namespace {

struct Result {
  uint64_t duplicates = 0;       // suppressed (good)
  uint64_t extra_scans = 0;      // snapshots served beyond the minimum (waste)
  uint64_t frames_per_snap = 0;
  size_t filter_entries = 0;
};

Result RunWindow(sim::SimDuration window, int snapshots) {
  core::ClusterConfig config;
  config.lpm.bcast_window = window;
  core::Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.AddHost("c");
  cluster.Ethernet({"a", "b", "c"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  // Triangle sibling graph.
  tools::PpmClient* ta = bench::Connect(cluster, "a");
  if (!ta) return {};
  bench::CreateSync(cluster, *ta, "b", "w1");
  tools::PpmClient* tb = bench::Connect(cluster, "b");
  if (!tb) return {};
  bench::CreateSync(cluster, *tb, "c", "w2");
  tb->Disconnect();
  tools::PpmClient* tc = bench::Connect(cluster, "c");
  if (!tc) return {};
  bench::CreateSync(cluster, *tc, "a", "w3");
  tc->Disconnect();
  cluster.RunFor(sim::Seconds(1));

  uint64_t frames_before = cluster.network().stats().frames_sent;
  uint64_t served_before = 0;
  for (const char* h : {"a", "b", "c"}) {
    if (core::Lpm* lpm = cluster.FindLpm(h, bench::kUid))
      served_before += lpm->stats().snapshots_served;
  }
  for (int i = 0; i < snapshots; ++i) {
    std::optional<core::SnapshotResp> snap;
    ta->Snapshot([&](const core::SnapshotResp& r) { snap = r; });
    bench::RunUntil(cluster, [&] { return snap.has_value(); });
    cluster.RunFor(sim::Seconds(2));  // let echoes settle
  }

  Result out;
  out.frames_per_snap = (cluster.network().stats().frames_sent - frames_before) /
                        static_cast<uint64_t>(snapshots);
  uint64_t served_after = 0;
  for (const char* h : {"a", "b", "c"}) {
    if (core::Lpm* lpm = cluster.FindLpm(h, bench::kUid)) {
      served_after += lpm->stats().snapshots_served;
      out.duplicates += lpm->stats().bcast_duplicates;
    }
  }
  // Minimum serves: two non-origin hosts per snapshot.
  out.extra_scans = (served_after - served_before) -
                    static_cast<uint64_t>(snapshots) * 2;
  return out;
}

}  // namespace

int main() {
  bench::BenchReport report("ablate_bcast_window");
  bench::PrintHeader(
      "Ablation: broadcast duplicate-suppression window (triangle sibling graph)");
  std::printf("%-14s%-16s%-18s%-18s\n", "window", "dups caught", "redundant scans",
              "frames/snapshot");
  struct W {
    const char* label;
    sim::SimDuration window;
  };
  for (const W& w : {W{"100 ms", sim::Millis(100)}, W{"250 ms", sim::Millis(250)},
                     W{"1 s", sim::Seconds(1)}, W{"10 s", sim::Seconds(10)},
                     W{"120 s", sim::Seconds(120)}}) {
    Result r = RunWindow(w.window, 10);
    std::printf("%-14s%-16llu%-18llu%-18llu\n", w.label,
                static_cast<unsigned long long>(r.duplicates),
                static_cast<unsigned long long>(r.extra_scans),
                static_cast<unsigned long long>(r.frames_per_snap));
    report.Result(std::string("window_") + w.label + ".frames_per_snap",
                  static_cast<double>(r.frames_per_snap));
  }
  std::printf(
      "\n(too-short windows forget a request before its echo returns around the\n"
      " cycle, so the echo is treated as new: extra scans and frames; long\n"
      " windows suppress every duplicate at the price of filter memory)\n");
  return 0;
}

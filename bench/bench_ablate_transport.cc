// bench_ablate_transport — the virtual-circuit vs datagram design choice
// (paper Section 3: "Virtual circuits, however, limit extensibility.  A
// datagram based scheme would scale much better, but would require
// individual authentication for each message. […] A reliable datagram
// protocol and a scheme based on remote procedure calls, would be
// promising alternatives for scalability").
//
// Both transports are real implementations in this repository:
//   * circuits   net::Network's TCP-like streams (what the PPM uses):
//                connect handshake once, then messages ride free of
//                per-message authentication (auth happened at setup);
//   * RDP        net::RdpEndpoint (stop-and-wait reliable datagrams):
//                no setup, but every message carries credentials that
//                cost kAuthMs to verify at the receiver.
//
// Three measurements: total time for M request/reply exchanges (the
// setup-amortization crossover); session state held at N peers; and
// behaviour across a transient partition (circuits break and must be
// re-established; RDP retransmits through).
#include <cstdio>

#include "bench/bench_common.h"
#include "net/rdp.h"

using namespace ppm;

namespace {

// Per-message credential verification for the datagram scheme (a 1986
// unforgeable-ticket check).
constexpr sim::SimDuration kAuthCost = sim::Millis(8);

struct World {
  sim::Simulator sim{11};
  net::Network net{sim};
  net::HostId a, b;
  World() {
    a = net.AddHost("a");
    b = net.AddHost("b");
    net.AddLink(a, b, net::LinkParams{sim::Micros(5'500), sim::Micros(1)});
  }
};

// M request/reply exchanges over a fresh circuit, including setup.
double CircuitExchanges(int m) {
  World w;
  int replies = 0;
  w.net.Listen(w.b, 9, [&](net::ConnId server, net::SocketAddr) {
    net::ConnCallbacks cb;
    cb.on_data = [&w, server](net::ConnId, const std::vector<uint8_t>&) {
      w.net.Send(server, {'r'});
    };
    return cb;
  });
  std::optional<net::ConnId> conn;
  net::ConnCallbacks cb;
  cb.on_data = [&](net::ConnId c, const std::vector<uint8_t>&) {
    ++replies;
    if (replies < m) w.net.Send(c, std::vector<uint8_t>(100, 1));
  };
  sim::SimTime start = w.sim.Now();
  w.net.Connect(w.a, net::SocketAddr{w.b, 9}, cb, [&](std::optional<net::ConnId> c) {
    conn = c;
    if (c) w.net.Send(*c, std::vector<uint8_t>(100, 1));
  });
  while (replies < m && w.sim.Step()) {
  }
  return sim::ToMillis(static_cast<sim::SimDuration>(w.sim.Now() - start));
}

// M request/reply exchanges over RDP with per-message auth at each end.
double RdpExchanges(int m) {
  World w;
  int replies = 0;
  net::RdpEndpoint* server_ptr = nullptr;
  net::RdpEndpoint server(w.net, w.b, 70,
                          [&](net::SocketAddr from, const std::vector<uint8_t>&) {
                            // verify ticket, then answer
                            w.sim.ScheduleIn(kAuthCost, [&, from] {
                              if (server_ptr) server_ptr->SendReliable(from, {'r'});
                            });
                          });
  server_ptr = &server;
  net::RdpEndpoint* client_ptr = nullptr;
  std::function<void()> send_next;
  net::RdpEndpoint client(w.net, w.a, 70,
                          [&](net::SocketAddr, const std::vector<uint8_t>&) {
                            w.sim.ScheduleIn(kAuthCost, [&] {
                              ++replies;
                              if (replies < m && send_next) send_next();
                            });
                          });
  client_ptr = &client;
  send_next = [&] {
    client_ptr->SendReliable(net::SocketAddr{w.b, 70}, std::vector<uint8_t>(100, 1));
  };
  sim::SimTime start = w.sim.Now();
  send_next();
  while (replies < m && w.sim.Step()) {
  }
  return sim::ToMillis(static_cast<sim::SimDuration>(w.sim.Now() - start));
}

}  // namespace

int main() {
  bench::BenchReport report("ablate_transport");
  bench::PrintHeader(
      "Ablation: virtual circuits vs reliable datagrams (both real, Sec. 3)");
  std::printf("%-14s%-20s%-20s%-10s\n", "exchanges M", "circuit ms", "RDP+auth ms",
              "winner");
  double crossover = -1;
  for (int m : {1, 2, 4, 8, 16, 32, 64}) {
    double vc = CircuitExchanges(m);
    double dg = RdpExchanges(m);
    if (crossover < 0 && vc <= dg) crossover = m;
    std::printf("%-14d%-20.1f%-20.1f%-10s\n", m, vc, dg, vc <= dg ? "circuit" : "RDP");
    report.Result("m" + std::to_string(m) + ".circuit.ms", vc);
    report.Result("m" + std::to_string(m) + ".rdp.ms", dg);
  }
  report.Result("crossover_exchanges", crossover);
  if (crossover > 0) {
    std::printf("\ncrossover: circuits amortize their setup after ~%.0f exchanges\n",
                crossover);
  }

  std::printf("\nsession state at N peers (the 'scale much better' axis):\n");
  std::printf("%-8s%-28s%-28s\n", "N", "circuit endpoints held", "RDP state held");
  for (int n : {2, 8, 16, 32, 64}) {
    std::printf("%-8d%-28s%-28s\n", n,
                (std::to_string(n - 1) + " circuits (fds, buffers)").c_str(),
                (std::to_string(n - 1) + " seq-number pairs").c_str());
  }

  // Partition behaviour.
  {
    World w;
    // circuit: established, partitioned, healed -> must reconnect.
    std::optional<net::ConnId> conn;
    bool broke = false;
    w.net.Listen(w.b, 9, [](net::ConnId, net::SocketAddr) { return net::ConnCallbacks{}; });
    net::ConnCallbacks cb;
    cb.on_close = [&](net::ConnId, net::CloseReason) { broke = true; };
    w.net.Connect(w.a, net::SocketAddr{w.b, 9}, cb,
                  [&](std::optional<net::ConnId> c) { conn = c; });
    w.sim.Run();
    w.net.SetLinkUp(w.a, w.b, false);
    w.sim.Run();
    w.net.SetLinkUp(w.a, w.b, true);
    w.sim.Run();
    std::printf(
        "\ntransient partition: the circuit %s (re-setup required); RDP merely\n"
        "retransmits through the outage (see RdpTest.RetransmitsThroughTransientPartition)\n",
        broke ? "BROKE" : "survived");
  }
  std::printf(
      "\n(the PPM keeps circuits because its sibling graphs are small, long-lived\n"
      " and chatty — left of the crossover only for one-shot contacts — and\n"
      " because 'TCP connections are also needed to assure message delivery';\n"
      " RDP is the road the paper points down for hundreds of nodes)\n");
  return 0;
}

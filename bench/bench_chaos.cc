// bench_chaos — recovery convergence and snapshot availability under
// each chaos fault profile (paper Section 5: the PPM "survives LPM,
// host and network failures").
//
// For every plan in src/chaos/plan.cc a handful of seeds runs the full
// engine: fault schedule, heal, convergence wait, end-to-end verify.
// The headline numbers are how fast the cluster returns to a single
// quiescent CCS after the faults stop, and what fraction of snapshots
// attempted *during* the fault phase still completed.  Failures (any
// invariant violation) are reported, never hidden — a chaos bench that
// drops failing seeds would report the availability of a fairy tale.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "chaos/engine.h"
#include "chaos/plan.h"

using namespace ppm;

namespace {

constexpr uint64_t kSeeds = 8;

struct PlanRow {
  std::string name;
  double convergence_ms_mean = 0;
  double convergence_ms_max = 0;
  double snapshot_success = 0;   // completed / attempted, fault phase
  double verify_success = 0;     // seeds whose end-to-end verify passed
  uint64_t snapshots_attempted = 0;
  uint64_t violations = 0;
};

PlanRow RunPlan(const chaos::ChaosPlan& plan) {
  PlanRow row;
  row.name = plan.name;
  uint64_t completed = 0;
  uint64_t verify_ok = 0;
  double conv_sum = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    chaos::ChaosOutcome out = chaos::RunChaosPlan(seed, plan);
    const double conv_ms =
        static_cast<double>(out.convergence_time) / 1000.0;
    conv_sum += conv_ms;
    if (conv_ms > row.convergence_ms_max) row.convergence_ms_max = conv_ms;
    row.snapshots_attempted += out.snapshots_attempted;
    completed += out.snapshots_completed;
    verify_ok += out.verify_ok;
    row.violations += out.violations.size();
    if (!out.ok()) {
      std::fprintf(stderr, "chaos bench: FAILING RUN\n%s\n",
                   out.Summary().c_str());
    }
  }
  row.convergence_ms_mean = conv_sum / static_cast<double>(kSeeds);
  row.snapshot_success =
      row.snapshots_attempted
          ? static_cast<double>(completed) /
                static_cast<double>(row.snapshots_attempted)
          : 1.0;
  row.verify_success =
      static_cast<double>(verify_ok) / static_cast<double>(kSeeds);
  return row;
}

}  // namespace

int main() {
  bench::BenchReport report("chaos");
  const std::vector<chaos::ChaosPlan> plans = {
      chaos::CrashPlan(), chaos::PartitionPlan(), chaos::CorruptionPlan()};

  std::printf("%-12s %14s %14s %10s %8s %6s\n", "plan", "converge(ms)",
              "worst(ms)", "snap-ok", "verify", "viol");
  for (const chaos::ChaosPlan& plan : plans) {
    PlanRow row = RunPlan(plan);
    std::printf("%-12s %14.1f %14.1f %9.0f%% %7.0f%% %6llu\n",
                row.name.c_str(), row.convergence_ms_mean,
                row.convergence_ms_max, row.snapshot_success * 100.0,
                row.verify_success * 100.0,
                static_cast<unsigned long long>(row.violations));
    report.Result(row.name + ".convergence_ms.mean", row.convergence_ms_mean);
    report.Result(row.name + ".convergence_ms.max", row.convergence_ms_max);
    report.Result(row.name + ".snapshot_success_rate", row.snapshot_success);
    report.Result(row.name + ".verify_success_rate", row.verify_success);
    report.Result(row.name + ".violations",
                  static_cast<double>(row.violations));
  }
  report.Result("seeds_per_plan", static_cast<double>(kSeeds));
  return 0;
}

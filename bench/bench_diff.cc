// bench_diff — compares a fresh bench run against committed baselines.
//
//   bench_diff <baseline-dir> <fresh-dir> [threshold-pct] [wallclock-factor]
//
// Scans <baseline-dir> for BENCH_*.json files (the committed baselines
// at the repo root), pairs each with the same-named file in <fresh-dir>,
// and compares their "results" maps.  Exit status 1 when any shared
// metric regressed by more than its tolerance, which is what the CI
// bench-smoke / perf-smoke jobs gate on.
//
// Per-metric tolerance classes: a baseline's optional "classes" map tags
// metrics as "wallclock".  Deterministic metrics (the default class) use
// the symmetric percent threshold (default 25%); wallclock metrics are
// machine- and load-dependent, so they gate on the *ratio* between the
// two values (default factor 8 — an order-of-magnitude cliff, not
// noise).  A percent threshold cannot express that looseness: a slowdown
// bottoms out at -100%, so any percent gate above 100% would never fire.
//
// The comparison is symmetric — a large *improvement* also trips the
// gate — because either direction means the baseline no longer describes
// the code and should be recommitted.  Metrics present on only one side
// are reported but never fail the run (benches grow columns).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fs = std::filesystem;
using ppm::obs::json::Parse;
using ppm::obs::json::Value;

namespace {

std::map<std::string, double> LoadResults(const fs::path& path, bool* ok,
                                          std::map<std::string, std::string>* classes,
                                          std::string* health_level,
                                          bool* expects_degraded = nullptr) {
  *ok = false;
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) return out;
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = Parse(buf.str());
  if (!doc || !doc->is_object()) return out;
  const Value* results = doc->Find("results");
  if (!results || !results->is_object()) return out;
  for (const auto& [key, value] : results->obj) {
    if (value.is_number()) out[key] = value.number;
  }
  // The health verdict of the run that produced the file ("healthy" /
  // "degraded"); absent in benches that predate health reporting.
  if (health_level != nullptr) {
    if (const Value* metrics = doc->Find("metrics"); metrics && metrics->is_object()) {
      if (const Value* health = metrics->Find("health"); health && health->is_object()) {
        if (const Value* level = health->Find("level"); level && level->is_string()) {
          *health_level = level->str;
        }
      }
    }
  }
  // Benches that overload their world on purpose declare it, which
  // exempts both sides of the comparison from the health gate.
  if (expects_degraded != nullptr) {
    const Value* flag = doc->Find("expects_degraded");
    *expects_degraded =
        flag != nullptr && flag->type == Value::Type::kBool && flag->boolean;
  }
  // Tolerance classes are read from the BASELINE side only: the
  // committed file is the contract, a fresh run cannot loosen it.
  if (classes != nullptr) {
    const Value* cls = doc->Find("classes");
    if (cls != nullptr && cls->is_object()) {
      for (const auto& [key, value] : cls->obj) {
        if (value.is_string()) (*classes)[key] = value.str;
      }
    }
  }
  *ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 5) {
    std::fprintf(stderr,
                 "usage: %s <baseline-dir> <fresh-dir> [threshold-pct] "
                 "[wallclock-factor]\n",
                 argv[0]);
    return 2;
  }
  const fs::path baseline_dir = argv[1];
  const fs::path fresh_dir = argv[2];
  const double threshold = argc >= 4 ? std::atof(argv[3]) : 25.0;
  const double wallclock_factor = argc >= 5 ? std::atof(argv[4]) : 8.0;

  std::vector<fs::path> baselines;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && entry.path().extension() == ".json") {
      baselines.push_back(entry.path());
    }
  }
  if (ec || baselines.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json baselines in %s\n",
                 baseline_dir.string().c_str());
    return 2;
  }
  std::sort(baselines.begin(), baselines.end());

  int regressions = 0;
  int compared = 0;
  for (const fs::path& base_path : baselines) {
    const std::string name = base_path.filename().string();
    bool base_ok = false, fresh_ok = false;
    std::map<std::string, std::string> classes;
    std::string base_health, fresh_health;
    bool expects_degraded = false;
    auto base =
        LoadResults(base_path, &base_ok, &classes, &base_health, &expects_degraded);
    auto fresh = LoadResults(fresh_dir / name, &fresh_ok, nullptr, &fresh_health);
    if (!base_ok) {
      std::printf("%-28s unreadable baseline — skipped\n", name.c_str());
      continue;
    }
    if (!fresh_ok) {
      // A bench that stopped producing output is itself a regression.
      std::printf("%-28s missing from fresh run: FAIL [missing-fresh]\n", name.c_str());
      ++regressions;
      continue;
    }
    std::printf("%s\n", name.c_str());
    // A committed baseline must describe a healthy run: "degraded" means
    // the bench tripped a health SLO and the file was committed anyway,
    // so every later comparison would silently normalize the breach.
    // The fresh side gates too — a run that newly degrades is a live
    // regression even when every numeric metric stays inside tolerance.
    if (expects_degraded) {
      // The baseline declares its world is overloaded by design; the
      // health verdict carries no signal for this bench.
      std::printf("  %-34s degraded-by-design (health gate skipped)\n", "health.level");
    } else if (base_health == "degraded") {
      std::printf(
          "  %-34s baseline health is degraded: FAIL [health-gate] (recommit from a healthy run)\n",
          "health.level");
      ++regressions;
    } else if (fresh_health == "degraded") {
      std::printf("  %-34s fresh run health is degraded: FAIL [health-gate] (baseline %s)\n",
                  "health.level", base_health.empty() ? "n/a" : base_health.c_str());
      ++regressions;
    }
    for (const auto& [key, base_val] : base) {
      auto it = fresh.find(key);
      if (it == fresh.end()) {
        std::printf("  %-34s baseline-only (ignored)\n", key.c_str());
        continue;
      }
      ++compared;
      const double fresh_val = it->second;
      auto cls = classes.find(key);
      const bool wallclock = cls != classes.end() && cls->second == "wallclock";
      bool fail;
      if (wallclock) {
        // Ratio gate: either direction beyond the factor is a cliff.
        double ratio;
        if (base_val <= 0.0 || fresh_val <= 0.0) {
          ratio = (base_val == fresh_val) ? 1.0 : wallclock_factor + 1.0;
        } else {
          ratio = std::max(fresh_val / base_val, base_val / fresh_val);
        }
        fail = ratio > wallclock_factor;
        // A failing line names the class that tripped, so a red CI log
        // says *which* tolerance regime to reason about, not just which
        // metric moved.
        std::printf("  %-34s %12.4g -> %12.4g  x%-6.2f [wallclock]%s\n", key.c_str(),
                    base_val, fresh_val, ratio, fail ? "  FAIL [wallclock-ratio]" : "");
      } else {
        double pct;
        if (base_val == 0.0) {
          pct = fresh_val == 0.0 ? 0.0 : 100.0;
        } else {
          pct = (fresh_val - base_val) / std::fabs(base_val) * 100.0;
        }
        fail = std::fabs(pct) > threshold;
        std::printf("  %-34s %12.4g -> %12.4g  %+7.1f%%%s\n", key.c_str(), base_val,
                    fresh_val, pct, fail ? "  FAIL [tight-pct]" : "");
      }
      if (fail) ++regressions;
    }
    for (const auto& [key, val] : fresh) {
      if (!base.count(key)) {
        std::printf("  %-34s new metric %.4g (ignored)\n", key.c_str(), val);
      }
    }
  }

  std::printf("\n%d metrics compared, %d beyond tolerance (%.0f%% tight, x%.1f wallclock)\n",
              compared, regressions, threshold, wallclock_factor);
  return regressions > 0 ? 1 : 0;
}

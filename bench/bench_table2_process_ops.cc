// bench_table2_process_ops — reproduces Table 2 of the paper:
//
//   "Elapsed Time of Process Creation and Termination Events in
//    Milliseconds" — create / stop / terminate against topological
//    distance (within host, one hop, two hops), with sibling LPM
//    connections already established (the paper excludes LPM creation
//    and connection setup from these numbers).
//
// Topology: root —1 hop— mid —1 hop— far (mid is the gateway), all
// VAX 11/780s, unloaded.
#include <cstdio>

#include "bench/bench_common.h"

namespace {

using namespace ppm;
using bench::kUid;

struct OpTimes {
  double create = -1, stop = -1, terminate_ = -1;
};

}  // namespace

int main() {
  bench::BenchReport report("table2_process_ops");
  core::Cluster cluster;
  cluster.AddHost("root");
  cluster.AddHost("mid");
  cluster.AddHost("far");
  cluster.Link("root", "mid");
  cluster.Link("mid", "far");
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = bench::Connect(cluster, "root");
  if (!client) {
    std::fprintf(stderr, "session establishment failed\n");
    return 1;
  }
  // Warm-up: create one process per host.  This forks the LPMs, the
  // handler processes, and the sibling circuits, none of which Table 2
  // includes ("does not include the time to create the LPM or to form a
  // connection with it").
  const char* hosts[3] = {"root", "mid", "far"};
  for (const char* h : hosts) {
    if (!bench::CreateSync(cluster, *client, h, "warmup")) {
      std::fprintf(stderr, "warmup create on %s failed\n", h);
      return 1;
    }
  }

  constexpr int kReps = 10;
  OpTimes results[3];
  for (int d = 0; d < 3; ++d) {
    const std::string target = hosts[d];
    std::vector<double> create_ms, stop_ms, term_ms;
    for (int i = 0; i < kReps; ++i) {
      // create
      std::optional<core::CreateResp> created;
      create_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            client->CreateProcess(
                target, "victim", {}, [&](const core::CreateResp& r) { created = r; },
                /*initially_running=*/false);
          },
          [&] { return created.has_value(); }));
      if (!created || !created->ok) {
        std::fprintf(stderr, "create on %s failed\n", target.c_str());
        return 1;
      }
      core::GPid g = created->gpid;
      // stop
      std::optional<core::SignalResp> sig;
      stop_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            client->Signal(g, host::Signal::kSigStop,
                           [&](const core::SignalResp& r) { sig = r; });
          },
          [&] { return sig.has_value(); }));
      // terminate
      sig.reset();
      term_ms.push_back(bench::MeasureMs(
          cluster,
          [&] {
            client->Signal(g, host::Signal::kSigKill,
                           [&](const core::SignalResp& r) { sig = r; });
          },
          [&] { return sig.has_value(); }));
      cluster.RunFor(sim::Millis(200));  // drain exit events
    }
    results[d].create = bench::Mean(create_ms);
    results[d].stop = bench::Mean(stop_ms);
    results[d].terminate_ = bench::Mean(term_ms);
    const char* hop_names[3] = {"within", "one_hop", "two_hops"};
    report.Result(std::string(hop_names[d]) + ".create.ms", results[d].create);
    report.Result(std::string(hop_names[d]) + ".stop.ms", results[d].stop);
    report.Result(std::string(hop_names[d]) + ".terminate.ms", results[d].terminate_);
  }

  bench::PrintHeader(
      "Table 2: elapsed time of process creation and termination events (ms)");
  std::printf("%-12s%-24s%-24s%-24s\n", "action", "within host", "one hop", "two hops");
  std::printf("%-12s%-12s%-12s%-12s%-12s%-12s%-12s\n", "", "measured", "paper",
              "measured", "paper", "measured", "paper");
  std::printf("%-12s%-12.1f%-12s%-12.1f%-12s%-12.1f%-12s\n", "create",
              results[0].create, "77", results[1].create, "N/A", results[2].create,
              "N/A");
  std::printf("%-12s%-12.1f%-12s%-12.1f%-12s%-12.1f%-12s\n", "stop", results[0].stop,
              "30", results[1].stop, "199", results[2].stop, "210");
  std::printf("%-12s%-12.1f%-12s%-12.1f%-12s%-12.1f%-12s\n", "terminate",
              results[0].terminate_, "30", results[1].terminate_, "199",
              results[2].terminate_, "210");
  std::printf(
      "\n(the paper's text additionally reports 177 ms for remote creation under\n"
      " light load; our one-hop create measures %.1f ms — see EXPERIMENTS.md on\n"
      " the internal inconsistency between that figure and Table 2's 199 ms stop)\n",
      results[1].create);
  return 0;
}

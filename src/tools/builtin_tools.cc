#include "tools/builtin_tools.h"

#include <iomanip>
#include <sstream>

namespace ppm::tools {

void RunSnapshotTool(PpmClient& client, std::function<void(const SnapshotResult&)> done) {
  client.Snapshot([done = std::move(done)](const core::SnapshotResp& resp) {
    SnapshotResult result;
    result.ok = !resp.replier_host.empty();
    result.forest = BuildForest(resp.records);
    result.rendering = RenderForest(result.forest);
    result.summary = SummarizeForest(result.forest);
    result.hosts_covered = resp.forwarded_to;
    done(result);
  });
}

namespace {
void SignalOne(PpmClient& client, const core::GPid& target, host::Signal sig,
               std::function<void(bool, std::string)> done) {
  client.Signal(target, sig, [done = std::move(done)](const core::SignalResp& resp) {
    done(resp.ok, resp.error);
  });
}
}  // namespace

void StopProcess(PpmClient& client, const core::GPid& target,
                 std::function<void(bool, std::string)> done) {
  SignalOne(client, target, host::Signal::kSigStop, std::move(done));
}

void ResumeProcess(PpmClient& client, const core::GPid& target,
                   std::function<void(bool, std::string)> done) {
  SignalOne(client, target, host::Signal::kSigCont, std::move(done));
}

void KillProcess(PpmClient& client, const core::GPid& target,
                 std::function<void(bool, std::string)> done) {
  SignalOne(client, target, host::Signal::kSigKill, std::move(done));
}

void SignalComputation(PpmClient& client, host::Signal sig,
                       std::function<void(size_t, size_t)> done) {
  client.SignalAll(sig, std::move(done));
}

void RunRusageTool(PpmClient& client, const std::string& target_host,
                   std::function<void(const RusageResult&)> done) {
  client.Rusage(target_host, [done = std::move(done)](const core::RusageResp& resp) {
    RusageResult result;
    result.ok = resp.ok;
    result.error = resp.error;
    result.records = resp.records;
    std::ostringstream out;
    out << std::left << std::setw(18) << "PROCESS" << std::setw(14) << "COMMAND"
        << std::setw(10) << "CPU(ms)" << std::setw(8) << "FORKS" << std::setw(8) << "MSGS"
        << std::setw(8) << "FILES" << "EXIT\n";
    for (const core::RusageRecord& rec : resp.records) {
      out << std::left << std::setw(18) << core::ToString(rec.gpid) << std::setw(14)
          << rec.command << std::setw(10) << std::fixed << std::setprecision(1)
          << sim::ToMillis(rec.rusage.cpu_time) << std::setw(8) << rec.rusage.forks
          << std::setw(8) << (rec.rusage.messages_sent + rec.rusage.messages_received)
          << std::setw(8) << rec.rusage.files_opened;
      if (rec.killed_by_signal) {
        out << "killed(" << host::ToString(rec.death_signal) << ")";
      } else {
        out << "exit(" << rec.exit_status << ")";
      }
      out << "\n";
    }
    result.table = out.str();
    done(result);
  });
}

void RunFilesTool(PpmClient& client, const core::GPid& target,
                  std::function<void(const FilesResult&)> done) {
  client.OpenFiles(target, [target, done = std::move(done)](const core::FilesResp& resp) {
    FilesResult result;
    result.ok = resp.ok;
    result.error = resp.error;
    result.files = resp.files;
    std::ostringstream out;
    out << "open files of " << core::ToString(target) << ":\n";
    for (const core::FileRecord& f : resp.files) {
      out << "  fd " << std::setw(3) << f.fd << "  " << std::setw(4) << f.mode << "  "
          << f.path << "\n";
    }
    result.table = out.str();
    done(result);
  });
}

void RunIpcTraceTool(PpmClient& client, const std::string& target_host,
                     host::Pid pid_filter,
                     std::function<void(const IpcTraceResult&)> done) {
  client.History(target_host, pid_filter, 0,
                 [done = std::move(done)](const core::HistoryResp& resp) {
                   IpcTraceResult result;
                   result.ok = resp.ok;
                   result.error = resp.error;
                   std::ostringstream out;
                   for (const core::HistEvent& ev : resp.events) {
                     if (ev.kind == host::KEvent::kIpcSend) {
                       ++result.sends;
                       result.bytes += static_cast<uint64_t>(ev.status);
                     } else if (ev.kind == host::KEvent::kIpcRecv) {
                       ++result.receives;
                       result.bytes += static_cast<uint64_t>(ev.status);
                     } else {
                       continue;
                     }
                     char stamp[32];
                     std::snprintf(stamp, sizeof(stamp), "%.1f",
                                   sim::ToMillis(static_cast<sim::SimDuration>(ev.at)));
                     out << "  t=" << stamp << "ms pid " << ev.pid << " "
                         << (ev.kind == host::KEvent::kIpcSend ? "send" : "recv") << " "
                         << ev.status << " bytes\n";
                   }
                   std::ostringstream head;
                   head << "IPC activity: " << result.sends << " sends, " << result.receives
                        << " receives, " << result.bytes << " bytes\n";
                   result.report = head.str() + out.str();
                   done(result);
                 });
}

}  // namespace ppm::tools

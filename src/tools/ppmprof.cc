#include "tools/ppmprof.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ppm::tools {

namespace {

using obs::prof::EdgeSnapshot;
using obs::prof::SiteSnapshot;

std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string Pct(uint64_t part, uint64_t whole) {
  char buf[32];
  if (whole == 0) return "-";
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                static_cast<double>(part) / static_cast<double>(whole) * 100.0);
  return buf;
}

// One caller->callee edge of the top-down tree, as indexed below.
struct TreeEdge {
  std::string child;
  uint64_t count;
  uint64_t total_ns;
};

std::map<std::string, std::vector<TreeEdge>> BuildTree(
    const std::vector<SiteSnapshot>& sites) {
  std::map<std::string, std::vector<TreeEdge>> children;
  for (const SiteSnapshot& s : sites) {
    for (const EdgeSnapshot& e : s.edges) {
      children[e.parent].push_back(TreeEdge{s.name, e.count, e.total_ns});
    }
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(), [](const TreeEdge& a, const TreeEdge& b) {
      return a.total_ns > b.total_ns;
    });
  }
  return children;
}

// The profiler records per-site caller edges, not full call paths, so
// when a site runs under several parents its children's edges are
// aggregates across all contexts.  Like gprof, the tree apportions a
// child edge to each context by the context's share of the child's
// site-wide total (`scale`) — an estimate in that case, exact when
// every site has a single caller.
void RenderNode(std::string& out,
                const std::map<std::string, std::vector<TreeEdge>>& children,
                const std::map<std::string, uint64_t>& site_totals,
                const TreeEdge& edge, double scale, uint64_t parent_ns, int depth,
                std::set<std::string>& path) {
  constexpr int kMaxDepth = 16;
  const uint64_t shown_ns =
      static_cast<uint64_t>(static_cast<double>(edge.total_ns) * scale);
  out += std::string(static_cast<size_t>(depth) * 2, ' ');
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-40s %12s ms %10llu x  %s\n",
                (std::string(edge.child) + (path.count(edge.child) ? " (recursive)" : ""))
                    .c_str(),
                Ms(shown_ns).c_str(),
                static_cast<unsigned long long>(edge.count),
                parent_ns ? Pct(shown_ns, parent_ns).c_str() : "root");
  out += buf;
  if (depth >= kMaxDepth || path.count(edge.child)) return;
  auto it = children.find(edge.child);
  if (it == children.end()) return;
  auto total_it = site_totals.find(edge.child);
  const uint64_t child_total =
      total_it != site_totals.end() ? total_it->second : 0;
  const double child_scale =
      child_total > 0 ? static_cast<double>(shown_ns) / static_cast<double>(child_total)
                      : 1.0;
  path.insert(edge.child);
  for (const TreeEdge& kid : it->second) {
    RenderNode(out, children, site_totals, kid, child_scale, shown_ns, depth + 1, path);
  }
  path.erase(edge.child);
}

// Counter values from the registry dump (the registry exposes no
// iteration API; its JSON dump is the stable enumeration surface).
std::map<std::string, uint64_t> RegistryCounters() {
  std::map<std::string, uint64_t> out;
  auto doc = obs::json::Parse(obs::Registry::Instance().DumpJson());
  if (!doc || !doc->is_object()) return out;
  const obs::json::Value* counters = doc->Find("counters");
  if (!counters || !counters->is_object()) return out;
  for (const auto& [key, value] : counters->obj) {
    if (value.is_number()) out[key] = static_cast<uint64_t>(value.number);
  }
  return out;
}

// Splits "net.op.<class>.frames|bytes" keys into per-class rows.
struct OpRow {
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

std::map<std::string, OpRow> OpRows(const std::map<std::string, uint64_t>& counters) {
  std::map<std::string, OpRow> rows;
  const std::string prefix = "net.op.";
  for (const auto& [key, value] : counters) {
    if (key.rfind(prefix, 0) != 0) continue;
    size_t dot = key.rfind('.');
    std::string cls = key.substr(prefix.size(), dot - prefix.size());
    std::string measure = key.substr(dot + 1);
    if (measure == "frames") rows[cls].frames = value;
    if (measure == "bytes") rows[cls].bytes = value;
  }
  return rows;
}

}  // namespace

std::string RenderProfFlat(const std::vector<SiteSnapshot>& sites, size_t top_n) {
  std::vector<SiteSnapshot> sorted = sites;
  std::sort(sorted.begin(), sorted.end(),
            [](const SiteSnapshot& a, const SiteSnapshot& b) {
              return a.self_ns() > b.self_ns();
            });
  uint64_t grand_self = 0;
  for (const SiteSnapshot& s : sorted) grand_self += s.self_ns();
  if (top_n != 0 && sorted.size() > top_n) sorted.resize(top_n);

  std::string out = "flat profile (by self time)\n";
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-34s %10s %12s %12s %7s %10s %10s %10s\n", "site",
                "count", "total ms", "self ms", "self%", "avg ns", "min ns", "max ns");
  out += buf;
  for (const SiteSnapshot& s : sorted) {
    if (s.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%-34s %10llu %12s %12s %7s %10llu %10llu %10llu\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  Ms(s.total_ns).c_str(), Ms(s.self_ns()).c_str(),
                  Pct(s.self_ns(), grand_self).c_str(),
                  static_cast<unsigned long long>(s.count ? s.total_ns / s.count : 0),
                  static_cast<unsigned long long>(s.min_ns),
                  static_cast<unsigned long long>(s.max_ns));
    out += buf;
  }
  out += "total self time: " + Ms(grand_self) + " ms\n";
  return out;
}

std::string RenderProfTopDown(const std::vector<SiteSnapshot>& sites) {
  auto children = BuildTree(sites);
  std::string out = "top-down profile (caller tree, by inclusive time)\n";
  auto roots = children.find("");
  if (roots == children.end()) {
    out += "(no root spans)\n";
    return out;
  }
  uint64_t root_ns = 0;
  for (const TreeEdge& r : roots->second) root_ns += r.total_ns;
  std::map<std::string, uint64_t> site_totals;
  for (const SiteSnapshot& s : sites) site_totals[s.name] = s.total_ns;
  std::set<std::string> path;
  for (const TreeEdge& root : roots->second) {
    RenderNode(out, children, site_totals, root, 1.0, root_ns, 0, path);
  }
  out += "total root time: " + Ms(root_ns) + " ms\n";
  return out;
}

std::string RenderWireAccounting() {
  auto counters = RegistryCounters();
  auto rows = OpRows(counters);
  const uint64_t total_frames = counters.count("net.frames.sent")
                                    ? counters["net.frames.sent"]
                                    : 0;
  const uint64_t total_bytes = counters.count("net.bytes.sent")
                                   ? counters["net.bytes.sent"]
                                   : 0;

  std::string out = "per-opcode wire accounting\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-20s %12s %14s %8s\n", "opcode class", "frames",
                "bytes", "bytes%");
  out += buf;
  // Biggest byte-consumers first.
  std::vector<std::pair<std::string, OpRow>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.bytes > b.second.bytes;
  });
  uint64_t sum_frames = 0, sum_bytes = 0;
  for (const auto& [cls, row] : sorted) {
    sum_frames += row.frames;
    sum_bytes += row.bytes;
    std::snprintf(buf, sizeof(buf), "%-20s %12llu %14llu %8s\n", cls.c_str(),
                  static_cast<unsigned long long>(row.frames),
                  static_cast<unsigned long long>(row.bytes),
                  Pct(row.bytes, total_bytes).c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-20s %12llu %14llu %8s\n", "sum",
                static_cast<unsigned long long>(sum_frames),
                static_cast<unsigned long long>(sum_bytes),
                Pct(sum_bytes, total_bytes).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-20s %12llu %14llu  %s\n", "net totals",
                static_cast<unsigned long long>(total_frames),
                static_cast<unsigned long long>(total_bytes),
                (sum_frames == total_frames && sum_bytes == total_bytes)
                    ? "(opcode sums match)"
                    : "(MISMATCH)");
  out += buf;
  // The codec's escape-header overhead (inside the payload bytes above).
  for (const char* key : {"wire.hdr.checksum.bytes", "wire.hdr.trace.bytes"}) {
    auto it = counters.find(key);
    if (it == counters.end()) continue;
    std::snprintf(buf, sizeof(buf), "%-20s %12s %14llu %8s\n", key, "",
                  static_cast<unsigned long long>(it->second),
                  Pct(it->second, total_bytes).c_str());
    out += buf;
  }
  return out;
}

std::string RenderProfJson(const std::vector<SiteSnapshot>& sites) {
  std::string out = "{\"sites\":[";
  bool first = true;
  for (const SiteSnapshot& s : sites) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    obs::json::AppendEscaped(out, s.name);
    out += "\",\"count\":" + std::to_string(s.count);
    out += ",\"total_ns\":" + std::to_string(s.total_ns);
    out += ",\"self_ns\":" + std::to_string(s.self_ns());
    out += ",\"min_ns\":" + std::to_string(s.min_ns);
    out += ",\"max_ns\":" + std::to_string(s.max_ns);
    out += ",\"edges\":[";
    bool efirst = true;
    for (const EdgeSnapshot& e : s.edges) {
      if (!efirst) out += ',';
      efirst = false;
      out += "{\"parent\":\"";
      obs::json::AppendEscaped(out, e.parent);
      out += "\",\"count\":" + std::to_string(e.count);
      out += ",\"total_ns\":" + std::to_string(e.total_ns);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"wire\":{";
  auto rows = OpRows(RegistryCounters());
  first = true;
  for (const auto& [cls, row] : rows) {
    if (!first) out += ',';
    first = false;
    out += '"';
    obs::json::AppendEscaped(out, cls);
    out += "\":{\"frames\":" + std::to_string(row.frames);
    out += ",\"bytes\":" + std::to_string(row.bytes) + '}';
  }
  out += "}}";
  return out;
}

uint64_t RootTotalNs(const std::vector<SiteSnapshot>& sites) {
  uint64_t total = 0;
  for (const SiteSnapshot& s : sites) {
    for (const EdgeSnapshot& e : s.edges) {
      if (e.parent.empty()) total += e.total_ns;
    }
  }
  return total;
}

std::string RenderProfReport(const std::vector<SiteSnapshot>& sites) {
  std::string out = RenderProfFlat(sites);
  out += '\n';
  out += RenderProfTopDown(sites);
  out += '\n';
  out += RenderWireAccounting();
  return out;
}

}  // namespace ppm::tools

#include "tools/display.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace ppm::tools {

using core::GPid;
using core::ProcRecord;

size_t Forest::HostCount() const {
  std::set<std::string> hosts;
  for (const ForestNode& n : nodes) hosts.insert(n.record.gpid.host);
  return hosts.size();
}

Forest BuildForest(const std::vector<ProcRecord>& records) {
  Forest forest;
  // Deterministic node order.
  std::vector<ProcRecord> sorted = records;
  std::sort(sorted.begin(), sorted.end(),
            [](const ProcRecord& a, const ProcRecord& b) { return a.gpid < b.gpid; });
  // Duplicate suppression: a snapshot assembled from several repliers
  // can in principle carry the same gpid twice.
  std::map<GPid, size_t> index;
  for (const ProcRecord& rec : sorted) {
    if (index.count(rec.gpid)) continue;
    index[rec.gpid] = forest.nodes.size();
    forest.nodes.push_back(ForestNode{rec, {}});
  }
  for (size_t i = 0; i < forest.nodes.size(); ++i) {
    const ProcRecord& rec = forest.nodes[i].record;
    auto pit = rec.logical_parent.valid() ? index.find(rec.logical_parent) : index.end();
    if (pit == index.end()) {
      forest.roots.push_back(i);
    } else {
      forest.nodes[pit->second].children.push_back(i);
    }
  }
  return forest;
}

namespace {

void RenderNode(const Forest& forest, size_t idx, const std::string& prefix, bool last,
                bool is_root, std::ostringstream& out) {
  const ProcRecord& rec = forest.nodes[idx].record;
  out << prefix;
  if (!is_root) out << (last ? "`-- " : "|-- ");
  out << core::ToString(rec.gpid) << " " << rec.command;
  if (rec.exited) {
    out << " (exited)";
  } else {
    out << " [" << host::ToString(rec.state) << "]";
  }
  out << "\n";
  const auto& children = forest.nodes[idx].children;
  std::string child_prefix = prefix;
  if (!is_root) child_prefix += last ? "    " : "|   ";
  for (size_t i = 0; i < children.size(); ++i) {
    RenderNode(forest, children[i], child_prefix, i + 1 == children.size(), false, out);
  }
}

}  // namespace

std::string RenderForest(const Forest& forest) {
  std::ostringstream out;
  for (size_t i = 0; i < forest.roots.size(); ++i) {
    if (i) out << "\n";
    RenderNode(forest, forest.roots[i], "", true, true, out);
  }
  return out.str();
}

std::string SummarizeForest(const Forest& forest) {
  size_t running = 0, stopped = 0, sleeping = 0, exited = 0;
  for (const ForestNode& n : forest.nodes) {
    if (n.record.exited) {
      ++exited;
    } else if (n.record.state == host::ProcState::kStopped) {
      ++stopped;
    } else if (n.record.state == host::ProcState::kSleeping) {
      ++sleeping;
    } else {
      ++running;
    }
  }
  std::ostringstream out;
  out << forest.nodes.size() << " processes on " << forest.HostCount() << " hosts: "
      << running << " running, " << sleeping << " sleeping, " << stopped << " stopped, "
      << exited << " exited";
  return out.str();
}

}  // namespace ppm::tools

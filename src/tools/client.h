// client.h — the PPM subroutine library.
//
// "A library of subroutines handles most interactions with the PPM, so
// that user-written programs may easily make use of PPM's capabilities."
// (paper Section 6).  PpmClient is that library: a tool links it, calls
// Start() to reach (and if necessary create, via inetd/pmd) the local
// LPM, and then issues typed asynchronous requests.  The client is
// itself a simulated process — tools are ordinary user programs.
//
// All calls are callback-style because the world is event-driven; the
// callbacks fire from the simulation loop.  Every entry point mirrors
// one LPM wire request; the PPM's distributed machinery (forwarding,
// broadcast, recovery) stays entirely behind the local LPM, which is the
// paper's central interface claim: tools "ignore all topological aspects
// of requesting and gathering distributed information".
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/wire.h"
#include "host/host.h"

namespace ppm::tools {

using core::Msg;

class PpmClient : public host::ProcessBody {
 public:
  PpmClient(host::Host& host, std::string user, host::Uid uid, std::string tool_name);

  void OnShutdown() override;

  // Reaches the local LPM (creating it through inetd/pmd if absent) and
  // authenticates.  `done(ok, error)` fires when the session is up.
  void Start(std::function<void(bool, std::string)> done);

  bool connected() const { return connected_; }
  const std::string& lpm_host() const { return lpm_host_; }
  std::string session_ccs() const { return ccs_host_; }

  // --- requests (one per PPM capability) ------------------------------
  // `initially_running` false starts the child off the run queue
  // (sleeping), e.g. a server that waits for input immediately.
  void CreateProcess(const std::string& target_host, const std::string& command,
                     const core::GPid& logical_parent,
                     std::function<void(const core::CreateResp&)> done,
                     bool initially_running = true);
  void Signal(const core::GPid& target, host::Signal sig,
              std::function<void(const core::SignalResp&)> done);
  void Snapshot(std::function<void(const core::SnapshotResp&)> done);
  // Live cluster introspection: one covering-graph broadcast gathers an
  // LpmStatRecord from every reachable LPM.  `dump_flight` also asks the
  // local LPM to dump its flight recorder.
  void Stat(bool dump_flight, std::function<void(const core::StatResp&)> done);
  // Continuous telemetry: subscribes to per-interval StatDelta pushes
  // from every reachable LPM (the push-based counterpart of Stat()).
  // `on_delta` fires once per arriving frame, for the watch's lifetime;
  // `done(ok, watch_id)` fires when the first push — the subscribe ack,
  // carrying the seq-1 baseline records — arrives.  End the stream with
  // StatUnsubscribe(watch_id).  A lost LPM circuit ends every watch
  // (done/on_delta simply stop firing); resubscribe after reconnecting.
  void StatSubscribe(uint64_t interval_us,
                     std::function<void(const core::StatDelta&)> on_delta,
                     std::function<void(bool, uint64_t)> done);
  void StatUnsubscribe(uint64_t watch_id);
  size_t active_watch_count() const { return watches_.size(); }
  void Rusage(const std::string& target_host,
              std::function<void(const core::RusageResp&)> done);
  void Adopt(const core::GPid& target, uint32_t trace_mask,
             std::function<void(const core::AdoptResp&)> done);
  void SetTraceMask(const core::GPid& target, uint32_t trace_mask,
                    std::function<void(const core::TraceResp&)> done);
  void History(const std::string& target_host, host::Pid pid_filter, uint32_t max,
               std::function<void(const core::HistoryResp&)> done);
  void InstallTrigger(const std::string& target_host, const core::TriggerSpec& spec,
                      std::function<void(const core::TriggerResp&)> done);
  void OpenFiles(const core::GPid& target,
                 std::function<void(const core::FilesResp&)> done);
  // Moves a process to another host (extension; see core/wire.h).
  void Migrate(const core::GPid& target, const std::string& dest_host,
               std::function<void(const core::MigrateResp&)> done);

  // --- group operations (src/group/) ----------------------------------
  // Gang-spawns `commands[i]` on `hosts[i]` as the named group,
  // all-or-nothing.  The LPM this client is connected to becomes the
  // group's coordinator; GroupSignal/GroupJoin must go to the same LPM.
  void GroupSpawn(const std::string& group, const std::vector<std::string>& hosts,
                  const std::vector<std::string>& commands,
                  std::function<void(const core::GroupSpawnResp&)> done);
  // Blocks (callback-style) in barrier <name, epoch> until `expected`
  // participants have entered cluster-wide, or the barrier times out.
  void BarrierEnter(const std::string& name, uint64_t epoch, uint32_t expected,
                    std::function<void(const core::BarrierEnterResp&)> done);
  void GenvSet(const std::string& key, const std::string& value,
               std::function<void(const core::EnvarSetResp&)> done);
  void GenvGet(const std::string& key,
               std::function<void(const core::EnvarGetResp&)> done);
  // Installs a change watcher on the connected LPM: `spec`'s action
  // (signal / spawn / migrate) fires on every applied change of `key`.
  void GenvWatch(const std::string& key, const core::TriggerSpec& spec,
                 std::function<void(const core::EnvarWatchResp&)> done);
  void GroupSignal(const std::string& group, host::Signal sig,
                   std::function<void(const core::GroupSignalResp&)> done);
  // Resolves once every member of `group` has exited, with all statuses.
  void GroupJoin(const std::string& group,
                 std::function<void(const core::GroupJoinResp&)> done);

  // Convenience composites used by the built-in tools:
  // stop / continue / kill every process in the user's computation
  // ("broadcasting, say, a software interrupt to stop execution").
  void SignalAll(host::Signal sig,
                 std::function<void(size_t ok, size_t failed)> done);

  void Disconnect();

 private:
  template <typename RespT>
  void Expect(uint64_t req_id, std::function<void(const RespT&)> done);
  void SendRequest(const Msg& msg);
  void OnLpmData(net::ConnId conn, const std::vector<uint8_t>& bytes);
  void OnLpmClose(net::ConnId conn, net::CloseReason reason);
  void FailAllPending(const std::string& why);
  uint64_t NextReqId() { return next_req_id_++; }

  host::Host& host_;
  std::string user_;
  host::Uid uid_;
  std::string tool_name_;
  net::ConnId conn_ = net::kInvalidConn;
  bool connected_ = false;
  std::string lpm_host_;
  std::string ccs_host_;
  std::function<void(bool, std::string)> start_done_;
  uint64_t next_req_id_ = 1;
  std::map<uint64_t, std::function<void(const Msg*)>> pending_;
  // Active stat watches (watch_id -> delta sink) plus subscriptions
  // whose ack push has not arrived yet (keyed by subscribe req_id).
  struct PendingSub {
    std::function<void(const core::StatDelta&)> on_delta;
    std::function<void(bool, uint64_t)> done;
  };
  std::map<uint64_t, std::function<void(const core::StatDelta&)>> watches_;
  std::map<uint64_t, PendingSub> pending_subs_;
};

// Spawns a tool process on `host` running a PpmClient body; the returned
// pointer is owned by the process table and valid while the tool lives.
PpmClient* SpawnTool(host::Host& host, const std::string& user, host::Uid uid,
                     const std::string& tool_name);

}  // namespace ppm::tools

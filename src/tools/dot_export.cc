#include "tools/dot_export.h"

#include <map>
#include <sstream>

namespace ppm::tools {

namespace {

// DOT identifiers cannot contain arbitrary characters; quote + escape.
std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string NodeId(const core::GPid& g) {
  return "\"" + g.host + "_" + std::to_string(g.pid) + "\"";
}

const char* FillFor(const core::ProcRecord& rec) {
  if (rec.exited) return "lightgray";
  switch (rec.state) {
    case host::ProcState::kRunning: return "palegreen";
    case host::ProcState::kSleeping: return "lightyellow";
    case host::ProcState::kStopped: return "lightsalmon";
    default: return "white";
  }
}

}  // namespace

std::string ExportDot(const std::vector<core::ProcRecord>& records,
                      const DotOptions& options) {
  std::ostringstream out;
  out << "digraph " << Quoted(options.graph_name) << " {\n";
  if (options.rankdir_lr) out << "  rankdir=LR;\n";
  out << "  node [shape=box, style=filled, fontname=\"Courier\"];\n";

  std::map<std::string, std::vector<const core::ProcRecord*>> by_host;
  for (const core::ProcRecord& rec : records) by_host[rec.gpid.host].push_back(&rec);

  size_t cluster = 0;
  for (const auto& [host_name, recs] : by_host) {
    if (options.cluster_by_host) {
      out << "  subgraph cluster_" << cluster++ << " {\n";
      out << "    label=" << Quoted(host_name) << ";\n";
      out << "    style=dashed;\n";
    }
    for (const core::ProcRecord* rec : recs) {
      std::string label = core::ToString(rec->gpid) + "\\n" + rec->command;
      if (rec->exited) {
        label += "\\n(exited)";
      } else {
        label += std::string("\\n[") + host::ToString(rec->state) + "]";
      }
      out << (options.cluster_by_host ? "    " : "  ") << NodeId(rec->gpid)
          << " [label=" << Quoted(label) << ", fillcolor=" << FillFor(*rec) << "];\n";
    }
    if (options.cluster_by_host) out << "  }\n";
  }

  // Parent edges; cross-host edges dashed (a machine boundary crossed).
  std::map<core::GPid, const core::ProcRecord*> index;
  for (const core::ProcRecord& rec : records) index[rec.gpid] = &rec;
  for (const core::ProcRecord& rec : records) {
    if (!rec.logical_parent.valid() || !index.count(rec.logical_parent)) continue;
    out << "  " << NodeId(rec.logical_parent) << " -> " << NodeId(rec.gpid);
    if (rec.logical_parent.host != rec.gpid.host) out << " [style=dashed]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ppm::tools

// supervisor.h — resilient computations layered on the PPM.
//
// Paper Section 5: "Were we managing resilient computations, control
// would have to be carefully transferred to another host.  This can be
// achieved with robust protocols implemented on top of our basic
// mechanism.  We have chosen not to do so in our first implementation."
// Section 7 likewise lists "management of resilient computations" as a
// direction.  This class is that robust protocol: a user-level
// supervisor that keeps a set of workers alive using only public PPM
// primitives (create, history, snapshot) — no new kernel or LPM support.
//
// Policy: each worker has a home host and an ordered list of fallback
// hosts.  The supervisor polls the event history of the hosts it uses
// (on-demand, in the PPM spirit) and, when it sees a worker's exit,
// restarts it — on the same host if reachable, else on the next
// fallback — up to a restart budget.  A worker that exhausts its budget
// is declared failed.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "tools/client.h"

namespace ppm::tools {

struct WorkerSpec {
  std::string name;                 // stable logical identity
  std::string command;
  std::vector<std::string> hosts;   // home first, then fallbacks
};

struct SupervisorConfig {
  int max_restarts_per_worker = 3;
  sim::SimDuration poll_interval = sim::Seconds(2);
};

struct WorkerStatus {
  core::GPid gpid;           // current incarnation (invalid if failed)
  std::string host;          // where it currently runs
  int restarts = 0;
  bool failed = false;       // restart budget exhausted / no host reachable
};

class Supervisor {
 public:
  // `client` must be a connected PpmClient; the supervisor does not own
  // it.  Events: (worker name, "started"/"restarted"/"failed", host).
  using EventFn =
      std::function<void(const std::string&, const std::string&, const std::string&)>;

  Supervisor(core::Cluster& cluster, PpmClient& client, SupervisorConfig config = {});

  void set_event_handler(EventFn fn) { on_event_ = std::move(fn); }

  // Starts every worker (asynchronously) and begins supervision.
  void Launch(const std::vector<WorkerSpec>& workers);

  // Stops supervising (running workers are left alone).
  void Stop();

  const std::map<std::string, WorkerStatus>& status() const { return status_; }
  bool AllHealthy() const;
  uint64_t total_restarts() const { return total_restarts_; }

 private:
  void StartWorker(const std::string& name, size_t host_index);
  void Poll();
  void HandleExit(const std::string& name);

  core::Cluster& cluster_;
  PpmClient& client_;
  SupervisorConfig config_;
  std::map<std::string, WorkerSpec> specs_;
  std::map<std::string, WorkerStatus> status_;
  EventFn on_event_;
  bool running_ = false;
  sim::EventId poll_event_ = sim::kInvalidEventId;
  uint64_t total_restarts_ = 0;
};

}  // namespace ppm::tools

#include "tools/client.h"

#include "daemon/protocol.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::tools {

using core::GPid;

PpmClient::PpmClient(host::Host& host, std::string user, host::Uid uid,
                     std::string tool_name)
    : host_(host), user_(std::move(user)), uid_(uid), tool_name_(std::move(tool_name)) {}

void PpmClient::OnShutdown() {
  if (host_.up() && conn_ != net::kInvalidConn) host_.network().Abort(conn_);
  conn_ = net::kInvalidConn;
  connected_ = false;
  FailAllPending("tool shutting down");
}

void PpmClient::Start(std::function<void(bool, std::string)> done) {
  PPM_CHECK_MSG(!connected_, "Start called twice");
  start_done_ = std::move(done);
  // Figure 2, steps (1)-(4): contact the local inetd.
  net::ConnCallbacks cb;
  cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto resp = daemon::LpmResponse::Parse(bytes);
    host_.network().Close(c);
    if (!resp || !resp->ok) {
      auto done_fn = std::move(start_done_);
      start_done_ = nullptr;
      if (done_fn) done_fn(false, resp ? resp->error : "bad pmd response");
      return;
    }
    // Connect to the LPM's accept socket and say hello as a tool.
    net::ConnCallbacks lpm_cb;
    lpm_cb.on_data = [this](net::ConnId c2, const std::vector<uint8_t>& b) {
      OnLpmData(c2, b);
    };
    lpm_cb.on_close = [this](net::ConnId c2, net::CloseReason r) { OnLpmClose(c2, r); };
    host_.network().Connect(
        host_.net_id(), resp->accept_addr, std::move(lpm_cb),
        [this](std::optional<net::ConnId> c2) {
          if (!c2) {
            auto done_fn = std::move(start_done_);
            start_done_ = nullptr;
            if (done_fn) done_fn(false, "LPM accept socket unreachable");
            return;
          }
          conn_ = *c2;
          core::HelloTool hello;
          hello.user = user_;
          hello.uid = uid_;
          hello.tool_name = tool_name_;
          host_.network().Send(conn_, core::Serialize(Msg{hello}));
        });
  };
  cb.on_close = [](net::ConnId, net::CloseReason) {};
  host_.network().Connect(
      host_.net_id(), net::SocketAddr{host_.net_id(), net::kInetdPort}, std::move(cb),
      [this](std::optional<net::ConnId> c) {
        if (!c) {
          auto done_fn = std::move(start_done_);
          start_done_ = nullptr;
          if (done_fn) done_fn(false, "inetd unreachable");
          return;
        }
        daemon::LpmRequest req;
        req.user = user_;
        req.origin_host = host_.name();
        req.origin_user = user_;
        host_.network().Send(*c, req.Serialize());
      });
}

void PpmClient::OnLpmData(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  if (conn != conn_) return;
  host_.kernel().RecordIpc(pid(), /*sent=*/false, bytes.size());
  auto msg = core::Parse(bytes);
  if (!msg) return;

  if (!connected_) {
    if (const auto* ack = std::get_if<core::HelloAck>(&*msg)) {
      connected_ = true;
      lpm_host_ = ack->host;
      ccs_host_ = ack->ccs_host;
      auto done_fn = std::move(start_done_);
      start_done_ = nullptr;
      if (done_fn) done_fn(true, "");
    } else if (const auto* rej = std::get_if<core::HelloReject>(&*msg)) {
      auto done_fn = std::move(start_done_);
      start_done_ = nullptr;
      if (done_fn) done_fn(false, rej->reason);
    }
    return;
  }

  // Watch pushes are a stream, not a response: intercept them before the
  // one-shot req_id correlation.  The first push of a new watch carries
  // the subscribe's req_id, which is how the subscriber learns its
  // watch_id.
  if (const auto* delta = std::get_if<core::StatDelta>(&*msg)) {
    auto wit = watches_.find(delta->watch_id);
    if (wit != watches_.end()) {
      wit->second(*delta);
      return;
    }
    auto pit = pending_subs_.find(delta->req_id);
    if (pit != pending_subs_.end()) {
      PendingSub sub = std::move(pit->second);
      pending_subs_.erase(pit);
      auto& sink = watches_[delta->watch_id];
      sink = std::move(sub.on_delta);
      if (sub.done) sub.done(true, delta->watch_id);
      if (sink) sink(*delta);
      return;
    }
    // A push for a watch this tool no longer holds: cancel it at the LPM.
    core::StatUnsubscribe un;
    un.watch_id = delta->watch_id;
    SendRequest(Msg{un});
    return;
  }

  // Correlate by req_id.
  uint64_t req_id = 0;
  std::visit(
      [&req_id](const auto& m) {
        if constexpr (requires { m.req_id; }) {
          req_id = m.req_id;
        } else {
          (void)m;
        }
      },
      *msg);
  auto it = pending_.find(req_id);
  if (it == pending_.end()) {
    // A shed subscribe comes back as BusyResp under the subscribe req_id.
    auto pit = pending_subs_.find(req_id);
    if (pit != pending_subs_.end() && std::get_if<core::BusyResp>(&*msg)) {
      auto done = std::move(pit->second.done);
      pending_subs_.erase(pit);
      if (done) done(false, 0);
    }
    return;
  }
  auto cb = std::move(it->second);
  pending_.erase(it);
  cb(&*msg);
}

void PpmClient::OnLpmClose(net::ConnId conn, net::CloseReason reason) {
  if (conn != conn_) return;
  conn_ = net::kInvalidConn;
  connected_ = false;
  if (start_done_) {
    auto done_fn = std::move(start_done_);
    start_done_ = nullptr;
    done_fn(false, std::string("LPM circuit closed: ") + net::ToString(reason));
  }
  FailAllPending(std::string("LPM circuit closed: ") + net::ToString(reason));
}

void PpmClient::FailAllPending(const std::string& why) {
  (void)why;
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, cb] : pending) cb(nullptr);
  auto subs = std::move(pending_subs_);
  pending_subs_.clear();
  for (auto& [id, sub] : subs) {
    if (sub.done) sub.done(false, 0);
  }
  // Watches are pinned to the lost circuit on the LPM side too; they do
  // not survive a reconnect (resubscribe under a fresh watch_id).
  watches_.clear();
}

void PpmClient::SendRequest(const Msg& msg) {
  PPM_CHECK_MSG(connected_, "client not connected");
  host_.kernel().RecordIpc(pid(), /*sent=*/true, 0);
  host_.network().Send(conn_, core::Serialize(msg));
}

template <typename RespT>
void PpmClient::Expect(uint64_t req_id, std::function<void(const RespT&)> done) {
  pending_[req_id] = [done = std::move(done)](const Msg* msg) {
    if (msg != nullptr) {
      if (const auto* resp = std::get_if<RespT>(msg)) {
        done(*resp);
        return;
      }
      // The LPM shed this request at admission (handler queue full):
      // surface the explicit BUSY as a typed failure with the retry
      // hint, so no tool request ever vanishes silently.
      if (const auto* busy = std::get_if<core::BusyResp>(msg)) {
        RespT shed;
        shed.ok = false;
        shed.error = "busy: " + busy->error + " (retry after " +
                     std::to_string(busy->retry_after_us) + "us)";
        done(shed);
        return;
      }
    }
    RespT failed;
    failed.ok = false;
    failed.error = "request failed: channel lost";
    done(failed);
  };
}

// StatResp has no ok/error fields either; an empty response (no records)
// is the channel-lost shape.
template <>
void PpmClient::Expect<core::StatResp>(
    uint64_t req_id, std::function<void(const core::StatResp&)> done) {
  pending_[req_id] = [done = std::move(done)](const Msg* msg) {
    if (msg != nullptr) {
      if (const auto* resp = std::get_if<core::StatResp>(msg)) {
        done(*resp);
        return;
      }
    }
    done(core::StatResp{});
  };
}

// SnapshotResp has no ok/error fields; specialize its failure shape.
template <>
void PpmClient::Expect<core::SnapshotResp>(
    uint64_t req_id, std::function<void(const core::SnapshotResp&)> done) {
  pending_[req_id] = [done = std::move(done)](const Msg* msg) {
    if (msg != nullptr) {
      if (const auto* resp = std::get_if<core::SnapshotResp>(msg)) {
        done(*resp);
        return;
      }
    }
    done(core::SnapshotResp{});  // empty: no records, no coverage
  };
}

void PpmClient::CreateProcess(const std::string& target_host, const std::string& command,
                              const GPid& logical_parent,
                              std::function<void(const core::CreateResp&)> done,
                              bool initially_running) {
  core::CreateReq req;
  req.req_id = NextReqId();
  req.target_host = target_host;
  req.command = command;
  req.logical_parent = logical_parent;
  req.initially_running = initially_running;
  Expect<core::CreateResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::Signal(const GPid& target, host::Signal sig,
                       std::function<void(const core::SignalResp&)> done) {
  core::SignalReq req;
  req.req_id = NextReqId();
  req.target = target;
  req.sig = sig;
  Expect<core::SignalResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::Snapshot(std::function<void(const core::SnapshotResp&)> done) {
  core::SnapshotReq req;
  req.req_id = NextReqId();
  // origin_host empty = "originate a snapshot for me".
  Expect<core::SnapshotResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::Stat(bool dump_flight,
                     std::function<void(const core::StatResp&)> done) {
  core::StatReq req;
  req.req_id = NextReqId();
  // origin_host empty = "originate a stat broadcast for me".
  req.dump_flight = dump_flight;
  Expect<core::StatResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::StatSubscribe(uint64_t interval_us,
                              std::function<void(const core::StatDelta&)> on_delta,
                              std::function<void(bool, uint64_t)> done) {
  core::StatSubscribe req;
  req.req_id = NextReqId();
  // origin_host empty = "originate a watch for me".
  req.interval_us = interval_us;
  pending_subs_[req.req_id] = PendingSub{std::move(on_delta), std::move(done)};
  SendRequest(Msg{req});
}

void PpmClient::StatUnsubscribe(uint64_t watch_id) {
  watches_.erase(watch_id);
  if (!connected_) return;
  core::StatUnsubscribe req;
  req.req_id = NextReqId();
  req.watch_id = watch_id;
  SendRequest(Msg{req});
}

void PpmClient::Rusage(const std::string& target_host,
                       std::function<void(const core::RusageResp&)> done) {
  core::RusageReq req;
  req.req_id = NextReqId();
  req.target_host = target_host;
  Expect<core::RusageResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::Adopt(const GPid& target, uint32_t trace_mask,
                      std::function<void(const core::AdoptResp&)> done) {
  core::AdoptReq req;
  req.req_id = NextReqId();
  req.target = target;
  req.trace_mask = trace_mask;
  Expect<core::AdoptResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::SetTraceMask(const GPid& target, uint32_t trace_mask,
                             std::function<void(const core::TraceResp&)> done) {
  core::TraceReq req;
  req.req_id = NextReqId();
  req.target = target;
  req.trace_mask = trace_mask;
  Expect<core::TraceResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::History(const std::string& target_host, host::Pid pid_filter, uint32_t max,
                        std::function<void(const core::HistoryResp&)> done) {
  core::HistoryReq req;
  req.req_id = NextReqId();
  req.target_host = target_host;
  req.pid_filter = pid_filter;
  req.max_events = max;
  Expect<core::HistoryResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::InstallTrigger(const std::string& target_host, const core::TriggerSpec& spec,
                               std::function<void(const core::TriggerResp&)> done) {
  core::TriggerReq req;
  req.req_id = NextReqId();
  req.target_host = target_host;
  req.spec = spec;
  Expect<core::TriggerResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::OpenFiles(const GPid& target,
                          std::function<void(const core::FilesResp&)> done) {
  core::FilesReq req;
  req.req_id = NextReqId();
  req.target = target;
  Expect<core::FilesResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::Migrate(const GPid& target, const std::string& dest_host,
                        std::function<void(const core::MigrateResp&)> done) {
  core::MigrateReq req;
  req.req_id = NextReqId();
  req.target = target;
  req.dest_host = dest_host;
  Expect<core::MigrateResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GroupSpawn(const std::string& group,
                           const std::vector<std::string>& hosts,
                           const std::vector<std::string>& commands,
                           std::function<void(const core::GroupSpawnResp&)> done) {
  core::GroupSpawnReq req;
  req.req_id = NextReqId();
  req.group = group;
  req.hosts = hosts;
  req.commands = commands;
  Expect<core::GroupSpawnResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::BarrierEnter(const std::string& name, uint64_t epoch, uint32_t expected,
                             std::function<void(const core::BarrierEnterResp&)> done) {
  core::BarrierEnterReq req;
  req.req_id = NextReqId();
  req.name = name;
  req.epoch = epoch;
  req.expected = expected;
  Expect<core::BarrierEnterResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GenvSet(const std::string& key, const std::string& value,
                        std::function<void(const core::EnvarSetResp&)> done) {
  core::EnvarSetReq req;
  req.req_id = NextReqId();
  req.key = key;
  req.value = value;
  Expect<core::EnvarSetResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GenvGet(const std::string& key,
                        std::function<void(const core::EnvarGetResp&)> done) {
  core::EnvarGetReq req;
  req.req_id = NextReqId();
  req.key = key;
  Expect<core::EnvarGetResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GenvWatch(const std::string& key, const core::TriggerSpec& spec,
                          std::function<void(const core::EnvarWatchResp&)> done) {
  core::EnvarWatchReq req;
  req.req_id = NextReqId();
  req.key = key;
  req.spec = spec;
  Expect<core::EnvarWatchResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GroupSignal(const std::string& group, host::Signal sig,
                            std::function<void(const core::GroupSignalResp&)> done) {
  core::GroupSignalReq req;
  req.req_id = NextReqId();
  req.group = group;
  req.sig = sig;
  Expect<core::GroupSignalResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::GroupJoin(const std::string& group,
                          std::function<void(const core::GroupJoinResp&)> done) {
  core::GroupJoinReq req;
  req.req_id = NextReqId();
  req.group = group;
  Expect<core::GroupJoinResp>(req.req_id, std::move(done));
  SendRequest(Msg{req});
}

void PpmClient::SignalAll(host::Signal sig,
                          std::function<void(size_t, size_t)> done) {
  // Composite: snapshot to locate every process, then signal each one
  // wherever it lives.  This is the tool-level realization of
  // "broadcasting a software interrupt".
  Snapshot([this, sig, done = std::move(done)](const core::SnapshotResp& snap) {
    std::vector<GPid> targets;
    for (const core::ProcRecord& rec : snap.records) {
      if (!rec.exited) targets.push_back(rec.gpid);
    }
    if (targets.empty()) {
      done(0, 0);
      return;
    }
    auto ok = std::make_shared<size_t>(0);
    auto failed = std::make_shared<size_t>(0);
    auto left = std::make_shared<size_t>(targets.size());
    for (const GPid& g : targets) {
      Signal(g, sig, [ok, failed, left, done](const core::SignalResp& resp) {
        if (resp.ok) {
          ++*ok;
        } else {
          ++*failed;
        }
        if (--*left == 0) done(*ok, *failed);
      });
    }
  });
}

void PpmClient::Disconnect() {
  if (conn_ != net::kInvalidConn && host_.up()) host_.network().Close(conn_);
  conn_ = net::kInvalidConn;
  connected_ = false;
  FailAllPending("disconnected");
}

PpmClient* SpawnTool(host::Host& host, const std::string& user, host::Uid uid,
                     const std::string& tool_name) {
  auto body = std::make_unique<PpmClient>(host, user, uid, tool_name);
  PpmClient* raw = body.get();
  host.kernel().Spawn(host::kNoPid, uid, tool_name, std::move(body),
                      host::ProcState::kSleeping);
  return raw;
}

}  // namespace ppm::tools

// ppmprof.h — report rendering for the wall-clock profiler (obs/prof.h).
//
// The profiler accumulates raw spans; this library turns a Snapshot()
// into something a person (or CI artifact diff) can read:
//
//   * RenderProfFlat — flat hotspot table sorted by self (exclusive)
//     time, with count, total/self ms, self %, and avg/min/max ns;
//   * RenderProfTopDown — caller tree reconstructed from the per-site
//     parent edges, inclusive time and share-of-parent per node;
//   * RenderWireAccounting — the per-opcode decomposition of
//     net.frames.sent / net.bytes.sent from the "net.op.*" counters,
//     plus the wire codec's escape-header overhead counters;
//   * RenderProfJson — the same data machine-readable.
//
// All renderers are pure functions of their inputs (the wire table reads
// the metrics registry), so tests can feed synthetic snapshots.
#pragma once

#include <string>
#include <vector>

#include "obs/prof.h"

namespace ppm::tools {

// Flat table, most exclusive time first.  `top_n` 0 means all sites.
std::string RenderProfFlat(const std::vector<obs::prof::SiteSnapshot>& sites,
                           size_t top_n = 0);

// Caller tree: roots are spans that opened with no enclosing span; each
// node shows the edge's inclusive time and its share of the parent.
// Sites reached from several callers have their children apportioned to
// each context by that context's share of the site total (gprof-style
// estimate; exact when every site has a single caller).
std::string RenderProfTopDown(const std::vector<obs::prof::SiteSnapshot>& sites);

// Per-opcode wire table from the current metrics registry, with a
// trailer line checking that the net.op.* sums reproduce
// net.frames.sent / net.bytes.sent exactly.
std::string RenderWireAccounting();

// {"sites":[{name,count,total_ns,self_ns,min_ns,max_ns,
//            edges:[{parent,count,total_ns}]}],
//  "wire":{"<class>":{"frames":n,"bytes":n},...}}
std::string RenderProfJson(const std::vector<obs::prof::SiteSnapshot>& sites);

// Total wall nanoseconds attributed to root spans (edges whose parent is
// "") — the denominator-side of "ppmprof attributes >= 90% of wall
// time": compare against a wall-clock measurement of the same window.
uint64_t RootTotalNs(const std::vector<obs::prof::SiteSnapshot>& sites);

// Convenience: flat + top-down + wire accounting in one text report.
std::string RenderProfReport(const std::vector<obs::prof::SiteSnapshot>& sites);

}  // namespace ppm::tools

#include "tools/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ppm::tools {

namespace {

std::string Ms(uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1000.0);
  return buf;
}

// Children of each span, in the Trace() order (start time, then id).
std::map<uint64_t, std::vector<const obs::SpanRecord*>> ChildIndex(
    const std::vector<obs::SpanRecord>& spans) {
  std::map<uint64_t, std::vector<const obs::SpanRecord*>> kids;
  for (const obs::SpanRecord& s : spans) kids[s.parent_span].push_back(&s);
  return kids;
}

void RenderSpan(const obs::SpanRecord& span, uint64_t t0, int depth,
                const std::map<uint64_t, std::vector<const obs::SpanRecord*>>& kids,
                std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += Ms(span.start_us - t0);
  *out += "  +";
  *out += span.arrived ? Ms(span.end_us - span.start_us) : Ms(0);
  *out += "  ";
  *out += span.name;
  if (span.dst_host.empty()) {
    *out += " [" + span.src_host + "]";
  } else {
    *out += " " + span.src_host + " -> " + span.dst_host;
  }
  if (!span.arrived && span.parent_span != 0) *out += " (in flight)";
  *out += "\n";
  auto it = kids.find(span.span_id);
  if (it == kids.end()) return;
  for (const obs::SpanRecord* child : it->second) {
    RenderSpan(*child, t0, depth + 1, kids, out);
  }
}

}  // namespace

std::string RenderTraceTimeline(const std::vector<obs::SpanRecord>& spans) {
  if (spans.empty()) return "trace (empty)\n";
  std::string out = "trace " + std::to_string(spans.front().trace_id) + " (" +
                    std::to_string(spans.size()) + " spans)\n";
  uint64_t t0 = spans.front().start_us;
  for (const obs::SpanRecord& s : spans) {
    if (s.start_us < t0) t0 = s.start_us;
  }
  auto kids = ChildIndex(spans);
  // Roots: spans whose parent is 0 or not retained (evicted from the
  // tracer's ring) — render each as its own top-level tree.
  std::map<uint64_t, bool> present;
  for (const obs::SpanRecord& s : spans) present[s.span_id] = true;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_span == 0 || !present.count(s.parent_span)) {
      RenderSpan(s, t0, 1, kids, &out);
    }
  }
  return out;
}

std::string ExportTraceDot(const std::vector<obs::SpanRecord>& spans) {
  std::string out = "digraph trace {\n  rankdir=TB;\n  node [shape=box];\n";
  std::map<uint64_t, bool> present;
  for (const obs::SpanRecord& s : spans) present[s.span_id] = true;
  for (const obs::SpanRecord& s : spans) {
    out += "  s" + std::to_string(s.span_id) + " [label=\"" + s.name;
    if (s.dst_host.empty()) {
      out += "\\n" + s.src_host;
    } else {
      out += "\\n" + s.src_host + " -> " + s.dst_host;
    }
    out += "\\n@" + Ms(s.start_us) + "\"";
    if (!s.arrived && s.parent_span != 0) out += ", style=dashed";
    out += "];\n";
  }
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_span != 0 && present.count(s.parent_span)) {
      out += "  s" + std::to_string(s.parent_span) + " -> s" +
             std::to_string(s.span_id) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string RenderTimelineWithFlight(const std::vector<obs::SpanRecord>& spans,
                                     const std::vector<obs::FlightRecord>& flight) {
  // One merged event per span start and per flight record.  Spans are
  // rendered in the flight-record line format so the columns align; ties
  // keep flight records after the span that caused them.
  struct Line {
    uint64_t at_us;
    int order;  // 0 = span, 1 = flight; stable tiebreak at equal times
    std::string text;
  };
  std::vector<Line> lines;
  lines.reserve(spans.size() + flight.size());
  for (const obs::SpanRecord& s : spans) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%10llu us] %-19s ",
                  static_cast<unsigned long long>(s.start_us), "span");
    std::string text = buf;
    text += s.name;
    if (s.dst_host.empty()) {
      text += " [" + s.src_host + "]";
    } else {
      text += " " + s.src_host + " -> " + s.dst_host;
    }
    if (s.arrived) {
      text += " (+" + Ms(s.end_us - s.start_us) + ")";
    } else if (s.parent_span != 0) {
      text += " (in flight)";
    }
    text += " trace=" + std::to_string(s.trace_id);
    lines.push_back({s.start_us, 0, std::move(text)});
  }
  for (const obs::FlightRecord& r : flight) {
    lines.push_back({r.at_us, 1, obs::FormatFlightRecord(r)});
  }
  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.at_us != b.at_us) return a.at_us < b.at_us;
    return a.order < b.order;
  });
  std::string out = "merged timeline (" + std::to_string(spans.size()) + " spans, " +
                    std::to_string(flight.size()) + " flight records)\n";
  for (const Line& l : lines) {
    out += l.text;
    out += "\n";
  }
  return out;
}

std::string RenderTimelineWithProf(const std::vector<obs::SpanRecord>& spans,
                                   const std::vector<obs::prof::TimelineSpan>& prof) {
  std::string out = RenderTraceTimeline(spans);
  out += "\nprofiler spans (wall clock, " + std::to_string(prof.size()) + " captured)\n";
  for (const obs::prof::TimelineSpan& p : prof) {
    out.append(static_cast<size_t>(p.depth) * 2, ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3fus  +%.3fus  ",
                  static_cast<double>(p.start_ns) / 1000.0,
                  static_cast<double>(p.dur_ns) / 1000.0);
    out += buf;
    out += p.site != nullptr ? p.site->name() : "?";
    out += "\n";
  }
  return out;
}

}  // namespace ppm::tools

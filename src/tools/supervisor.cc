#include "tools/supervisor.h"

#include "util/log.h"

namespace ppm::tools {

Supervisor::Supervisor(core::Cluster& cluster, PpmClient& client, SupervisorConfig config)
    : cluster_(cluster), client_(client), config_(config) {}

void Supervisor::Launch(const std::vector<WorkerSpec>& workers) {
  running_ = true;
  for (const WorkerSpec& spec : workers) {
    specs_[spec.name] = spec;
    status_[spec.name] = WorkerStatus{};
    StartWorker(spec.name, 0);
  }
  poll_event_ = cluster_.simulator().ScheduleIn(config_.poll_interval, [this] { Poll(); },
                                                "supervisor-poll");
}

void Supervisor::Stop() {
  running_ = false;
  cluster_.simulator().Cancel(poll_event_);
  poll_event_ = sim::kInvalidEventId;
}

bool Supervisor::AllHealthy() const {
  for (const auto& [name, st] : status_) {
    if (st.failed || !st.gpid.valid()) return false;
  }
  return !status_.empty();
}

void Supervisor::StartWorker(const std::string& name, size_t host_index) {
  const WorkerSpec& spec = specs_[name];
  WorkerStatus& st = status_[name];
  if (st.failed) return;
  if (host_index >= spec.hosts.size()) {
    // No host reachable for this incarnation.
    st.failed = true;
    st.gpid = core::GPid{};
    if (on_event_) on_event_(name, "failed", "");
    return;
  }
  const std::string target = spec.hosts[host_index];
  client_.CreateProcess(target, spec.command, {}, [this, name, host_index,
                                                   target](const core::CreateResp& r) {
    if (!running_) return;
    WorkerStatus& st = status_[name];
    if (!r.ok) {
      // This host refused or is unreachable; walk the fallback list.
      StartWorker(name, host_index + 1);
      return;
    }
    bool restart = st.restarts > 0;
    st.gpid = r.gpid;
    st.host = target;
    if (on_event_) on_event_(name, restart ? "restarted" : "started", target);
  });
}

void Supervisor::Poll() {
  poll_event_ = sim::kInvalidEventId;
  if (!running_) return;
  client_.Snapshot([this](const core::SnapshotResp& snap) {
    if (!running_) return;
    // Which incarnations are still visibly alive?
    std::map<core::GPid, bool> alive;
    for (const core::ProcRecord& rec : snap.records) {
      if (!rec.exited) alive[rec.gpid] = true;
    }
    for (auto& [name, st] : status_) {
      if (st.failed || !st.gpid.valid()) continue;
      if (!alive.count(st.gpid)) HandleExit(name);
    }
    if (running_) {
      poll_event_ = cluster_.simulator().ScheduleIn(config_.poll_interval,
                                                    [this] { Poll(); }, "supervisor-poll");
    }
  });
}

void Supervisor::HandleExit(const std::string& name) {
  WorkerStatus& st = status_[name];
  st.gpid = core::GPid{};
  if (st.restarts >= config_.max_restarts_per_worker) {
    st.failed = true;
    if (on_event_) on_event_(name, "failed", st.host);
    return;
  }
  ++st.restarts;
  ++total_restarts_;
  // Home-first placement: walk the host list from the top, so a worker
  // displaced by a crash returns home once its machine is back —
  // "control would have to be carefully transferred to another host".
  StartWorker(name, 0);
}

}  // namespace ppm::tools

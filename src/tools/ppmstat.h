// ppmstat.h — live cluster introspection (a distributed ps for the PPM).
//
// Where the snapshot tool answers "what processes exist", ppmstat
// answers "how are their managers doing": one covering-graph broadcast
// collects an LpmStatRecord from every reachable LPM — mode, CCS role,
// recovery-list rank, dispatcher load and queue watermarks, journal
// state, flight-recorder counters, and a health verdict — and renders
// the lot as a ps-like per-host table, or as JSON for scripting.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "tools/client.h"

namespace ppm::tools {

// Version of the machine-readable schema shared by `ppmstat --json` and
// `ppmtop --json`.  Bump on any structural change to either document.
inline constexpr int kStatSchemaVersion = 2;

struct PpmStatResult {
  bool ok = false;                     // at least one manager answered
  std::vector<core::LpmStatRecord> records;
  std::vector<std::string> hosts_covered;
  size_t procs_total = 0;
  size_t degraded_hosts = 0;
  std::string table;                   // ps-like rendering
  std::string json;                    // machine-readable (--json)
};

// Runs one stat broadcast through `client`'s LPM.  `dump_flight` also
// makes the origin LPM dump its flight recorder to the log.
void RunPpmStatTool(PpmClient& client, std::function<void(const PpmStatResult&)> done,
                    bool dump_flight = false);

// Pure formatters, exposed for tests.
std::string RenderStatTable(const std::vector<core::LpmStatRecord>& records);
std::string RenderStatJson(const std::vector<core::LpmStatRecord>& records);

}  // namespace ppm::tools

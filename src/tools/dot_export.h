// dot_export.h — graphical display of a snapshot (paper Section 7:
// "Work is beginning on graphics interfaces for these tools" and the
// future-work list's "display tool").
//
// Emits Graphviz DOT: one cluster per host (machine boundaries are the
// point of the diagram, exactly as in the paper's Figure 1), one node
// per process coloured by state, and edges for logical parentage —
// dashed when they cross a host boundary.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"

namespace ppm::tools {

struct DotOptions {
  std::string graph_name = "ppm";
  bool cluster_by_host = true;   // draw host boundaries
  bool rankdir_lr = false;       // left-to-right instead of top-down
};

// Renders snapshot records as a DOT digraph.
std::string ExportDot(const std::vector<core::ProcRecord>& records,
                      const DotOptions& options = {});

}  // namespace ppm::tools

// timeline.h — textual timeline of a process history.
//
// One of the "data reduction and data representation tools" the PPM is
// meant to feed (paper Sections 1-2): renders an LPM's event history as
// a per-process timeline, so a user can see *when* things happened —
// the historical information the paper argues process management needs.
//
//   t(ms)      pid 6 worker
//   0.0        exec
//   120.5      stop   (SIGSTOP)
//   980.0      continue
//   1420.9     exit   status=0
#pragma once

#include <string>
#include <vector>

#include "core/types.h"

namespace ppm::tools {

struct TimelineOptions {
  bool relative_times = true;  // subtract the first event's timestamp
  host::Pid pid_filter = host::kNoPid;
};

// Renders the events (assumed chronologically ordered, as the LPM's
// EventLog keeps them) into a readable table.
std::string RenderTimeline(const std::vector<core::HistEvent>& events,
                           const TimelineOptions& options = {});

// Compact per-process summary: one line per pid with event counts and
// lifetime, the "data reduction" half.
std::string SummarizeHistory(const std::vector<core::HistEvent>& events);

}  // namespace ppm::tools

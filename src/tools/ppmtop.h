// ppmtop.h — live cluster view over the push-based STAT stream.
//
// Where ppmstat takes one covering-graph broadcast per refresh, ppmtop
// subscribes once (StatSubscribe) and then renders the per-interval
// StatDelta pushes each LPM sends back along the covering graph: rates
// (events/sec, sheds/sec, retries/sec, journal bytes/sec per host),
// queue depth, health, and a per-user accounting rollup that attributes
// rusage/event/journal charges through the genealogy to the owning
// user.  A watch costs O(hosts) frames per interval, not a flood per
// refresh — continuous monitoring at the price the paper's design rule
// demands ("overhead proportional to service provided").
//
// Staleness: a host whose deltas stop arriving is flagged within two
// intervals (a twice-per-interval check flags any arrival gap beyond
// 1.5x interval) and the count feeds obs/health, so a partitioned or dead
// manager is visible in the live view long before a snapshot would
// notice.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/series.h"
#include "tools/client.h"

namespace ppm::tools {

class PpmTop {
 public:
  // `interval_us` is the watch's virtual sampling interval.
  PpmTop(host::Host& host, PpmClient& client, uint64_t interval_us);

  // Subscribes through the client's LPM.  `done(ok)` fires when the
  // first push (the subscribe ack) arrives, or on a shed/lost subscribe.
  void Start(std::function<void(bool)> done);
  // Ends the watch (StatUnsubscribe) and stops the staleness timer.
  void Stop();

  bool running() const { return running_; }
  uint64_t watch_id() const { return watch_id_; }
  uint64_t interval_us() const { return interval_us_; }

  // --- per-host live state ----------------------------------------------
  struct HostRow {
    std::string host;
    std::string user;
    int32_t uid = -1;
    uint64_t last_seq = 0;
    uint64_t last_seen_us = 0;   // arrival time of the newest delta
    uint64_t deltas = 0;         // frames' records seen from this host
    bool stale = false;
    // Last-interval rates (delta / dt).
    double events_per_sec = 0;
    double sheds_per_sec = 0;
    double retries_per_sec = 0;
    double journal_bytes_per_sec = 0;
    // Latest instantaneous readings.
    uint32_t queue_depth = 0;
    uint32_t procs_live = 0;
    uint8_t health = 0;
    // Cumulative charges attributed to this host since the watch began.
    uint64_t cum_kernel_events = 0;
    uint64_t cum_eventlog_recorded = 0;
    uint64_t cum_journal_bytes = 0;
    uint64_t cum_acct_cpu_us = 0;
  };
  std::vector<HostRow> Rows() const;
  size_t host_count() const { return rows_.size(); }
  size_t stale_host_count() const;

  // --- per-user accounting rollup ---------------------------------------
  // Sums the accounting deltas across hosts by owning user: the
  // genealogy already attributes every process to the <user, host> LPM
  // that tracks it, so the per-host records roll up by their user field.
  struct UserAcct {
    std::string user;
    int32_t uid = -1;
    uint64_t cpu_us = 0;           // cpu charged to the user's processes
    uint64_t kernel_events = 0;    // kernel messages handled on their behalf
    uint64_t journal_bytes = 0;    // durable-store bytes written for them
    uint32_t hosts = 0;            // hosts contributing
    uint32_t procs_live = 0;       // currently live processes
  };
  std::vector<UserAcct> AccountingRollup() const;

  // --- stream integrity (chaos no-silent-loss invariant) ----------------
  // Per-<watch, host> sequence numbers must arrive contiguous: a gap is
  // a silently lost interval, a dup a double-count.  Both must stay zero
  // for the lifetime of any one watch.
  uint64_t seq_gaps() const { return seq_gaps_; }
  uint64_t seq_dups() const { return seq_dups_; }
  uint64_t deltas_received() const { return deltas_received_; }

  // Time-series history: per-host rate series (<host>.events_per_sec,
  // <host>.sheds_per_sec, ...) plus a full Registry sample per staleness
  // tick (cluster-level history at the watch interval).
  const obs::SeriesStore& series() const { return series_; }

  // --- rendering --------------------------------------------------------
  std::string RenderTable() const;
  std::string RenderJson() const;  // schema_version == ppmstat's

 private:
  void OnDelta(const core::StatDelta& delta);
  void StalenessTick();

  host::Host& host_;
  PpmClient& client_;
  uint64_t interval_us_;
  bool running_ = false;
  uint64_t watch_id_ = 0;
  sim::EventId tick_ev_ = sim::kInvalidEventId;
  std::map<std::string, HostRow> rows_;
  obs::SeriesStore series_;
  uint64_t seq_gaps_ = 0;
  uint64_t seq_dups_ = 0;
  uint64_t deltas_received_ = 0;
};

}  // namespace ppm::tools

#include "tools/ppmstat.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "core/recovery.h"
#include "obs/health.h"
#include "obs/json.h"

namespace ppm::tools {

namespace {

// Sorted copy so the table is stable regardless of reply arrival order.
std::vector<core::LpmStatRecord> Sorted(std::vector<core::LpmStatRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const core::LpmStatRecord& a, const core::LpmStatRecord& b) {
              return a.host < b.host;
            });
  return records;
}

// Appends `s` as a quoted, escaped JSON string.
void Quoted(std::string& out, std::string_view s) {
  out += '"';
  obs::json::AppendEscaped(out, s);
  out += '"';
}

}  // namespace

std::string RenderStatTable(const std::vector<core::LpmStatRecord>& in) {
  auto records = Sorted(in);
  std::ostringstream out;
  out << std::left << std::setw(12) << "HOST" << std::setw(6) << "MODE"
      << std::setw(5) << "CCS" << std::setw(6) << "RANK" << std::setw(7) << "PROCS"
      << std::setw(9) << "HANDLERS" << std::setw(9) << "QUEUE" << std::setw(6)
      << "SHED" << std::setw(7) << "RETRY" << std::setw(6) << "BRKR" << std::setw(9)
      << "KEVENTS" << std::setw(7) << "DROPS" << std::setw(9) << "JOURNAL"
      << std::setw(8) << "FLIGHT" << "HEALTH\n";
  for (const core::LpmStatRecord& r : records) {
    size_t live = 0;
    for (const core::ProcRecord& p : r.procs) {
      if (!p.exited) ++live;
    }
    std::ostringstream handlers, queue, journal, rank;
    handlers << r.handlers_busy << "/" << r.handlers;
    // current depth plus the high-watermark the dispatcher ever saw
    queue << r.queue_depth << "/" << r.queue_watermark;
    if (r.store_enabled) {
      journal << r.journal_seq << "+" << r.journal_pending;
    } else {
      journal << "-";
    }
    if (r.recovery_rank >= 0) {
      rank << r.recovery_rank;
    } else {
      rank << "-";
    }
    out << std::left << std::setw(12) << r.host << std::setw(6)
        << core::ToString(static_cast<core::LpmMode>(r.mode)) << std::setw(5)
        << (r.is_ccs ? "*" : "") << std::setw(6) << rank.str() << std::setw(7) << live
        << std::setw(9) << handlers.str() << std::setw(9) << queue.str() << std::setw(6)
        << r.requests_shed << std::setw(7) << r.retries << std::setw(6)
        << r.breaker_open << std::setw(9)
        << r.kernel_events << std::setw(7) << r.eventlog_dropped << std::setw(9)
        << journal.str() << std::setw(8) << r.flight_records
        << obs::ToString(static_cast<obs::HealthLevel>(r.health)) << "\n";
    for (const std::string& reason : r.health_reasons) {
      out << "  ! " << reason << "\n";
    }
  }
  // GROUPS: coordinator-side gangs and barrier waiters, host by host.
  // Only rendered when some host actually carries group state.
  bool any_groups = false;
  for (const core::LpmStatRecord& r : records) {
    if (!r.groups.empty() || !r.barriers.empty() || r.envars > 0 ||
        r.envar_watchers > 0) {
      any_groups = true;
      break;
    }
  }
  if (any_groups) {
    out << "\nGROUPS\n";
    out << std::left << std::setw(12) << "HOST" << std::setw(16) << "GROUP"
        << std::setw(9) << "MEMBERS" << std::setw(8) << "EXITED" << std::setw(16)
        << "BARRIER" << std::setw(7) << "EPOCH" << std::setw(9) << "WAITERS"
        << std::setw(9) << "EXPECTED" << std::setw(8) << "ENVARS" << "WATCHERS\n";
    for (const core::LpmStatRecord& r : records) {
      size_t rows = std::max(r.groups.size(), r.barriers.size());
      if (rows == 0 && (r.envars > 0 || r.envar_watchers > 0)) rows = 1;
      for (size_t i = 0; i < rows; ++i) {
        out << std::left << std::setw(12) << (i == 0 ? r.host : "");
        if (i < r.groups.size()) {
          const core::GroupStatEntry& g = r.groups[i];
          out << std::setw(16) << g.name << std::setw(9) << g.members << std::setw(8)
              << g.exited;
        } else {
          out << std::setw(16) << "" << std::setw(9) << "" << std::setw(8) << "";
        }
        if (i < r.barriers.size()) {
          const core::BarrierStatEntry& b = r.barriers[i];
          out << std::setw(16) << b.name << std::setw(7) << b.epoch << std::setw(9)
              << b.waiters << std::setw(9) << b.expected;
        } else {
          out << std::setw(16) << "" << std::setw(7) << "" << std::setw(9) << ""
              << std::setw(9) << "";
        }
        if (i == 0) {
          out << std::setw(8) << r.envars << r.envar_watchers;
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

std::string RenderStatJson(const std::vector<core::LpmStatRecord>& in) {
  auto records = Sorted(in);
  std::string out =
      "{\"schema_version\":" + std::to_string(kStatSchemaVersion) + ",\"hosts\":[";
  bool first_host = true;
  for (const core::LpmStatRecord& r : records) {
    if (!first_host) out += ",";
    first_host = false;
    out += "{\"host\":";
    Quoted(out, r.host);
    out += ",\"user\":";
    Quoted(out, r.user);
    out += ",\"uid\":" + std::to_string(r.uid);
    out += ",\"lpm_pid\":" + std::to_string(r.lpm_pid);
    out += ",\"mode\":";
    Quoted(out, core::ToString(static_cast<core::LpmMode>(r.mode)));
    out += std::string(",\"is_ccs\":") + (r.is_ccs ? "true" : "false");
    out += ",\"ccs_host\":";
    Quoted(out, r.ccs_host);
    out += ",\"recovery_rank\":" + std::to_string(r.recovery_rank);
    out += ",\"siblings\":[";
    for (size_t i = 0; i < r.siblings.size(); ++i) {
      if (i) out += ",";
      Quoted(out, r.siblings[i]);
    }
    out += "],\"dispatcher\":{\"handlers\":" + std::to_string(r.handlers);
    out += ",\"busy\":" + std::to_string(r.handlers_busy);
    out += ",\"queue_depth\":" + std::to_string(r.queue_depth);
    out += ",\"queue_watermark\":" + std::to_string(r.queue_watermark);
    out += ",\"tool_circuits\":" + std::to_string(r.tool_circuits);
    out += "},\"counters\":{\"requests\":" + std::to_string(r.requests);
    out += ",\"forwards\":" + std::to_string(r.forwards);
    out += ",\"kernel_events\":" + std::to_string(r.kernel_events);
    out += ",\"snapshots_served\":" + std::to_string(r.snapshots_served);
    out += ",\"bcasts_originated\":" + std::to_string(r.bcasts_originated);
    out += ",\"bcast_duplicates\":" + std::to_string(r.bcast_duplicates);
    out += ",\"triggers_fired\":" + std::to_string(r.triggers_fired);
    out += ",\"failures_detected\":" + std::to_string(r.failures_detected);
    out += ",\"recoveries_started\":" + std::to_string(r.recoveries_started);
    out += ",\"request_timeouts\":" + std::to_string(r.request_timeouts);
    out += "},\"overload\":{\"requests_shed\":" + std::to_string(r.requests_shed);
    out += ",\"busy_sent\":" + std::to_string(r.busy_sent);
    out += ",\"retries\":" + std::to_string(r.retries);
    out += ",\"deadline_expired\":" + std::to_string(r.deadline_expired);
    out += ",\"dup_suppressed\":" + std::to_string(r.dup_suppressed);
    out += ",\"breaker_open\":" + std::to_string(r.breaker_open);
    out += "},\"eventlog\":{\"size\":" + std::to_string(r.eventlog_size);
    out += ",\"recorded\":" + std::to_string(r.eventlog_recorded);
    out += ",\"filtered\":" + std::to_string(r.eventlog_filtered);
    out += ",\"dropped\":" + std::to_string(r.eventlog_dropped);
    out += ",\"dropped_by_pid\":{";
    for (size_t i = 0; i < r.dropped_by_pid.size(); ++i) {
      if (i) out += ",";
      Quoted(out, std::to_string(r.dropped_by_pid[i].pid));
      out += ":" + std::to_string(r.dropped_by_pid[i].dropped);
    }
    out += std::string("}},\"store\":{\"enabled\":") + (r.store_enabled ? "true" : "false");
    out += ",\"journal_seq\":" + std::to_string(r.journal_seq);
    out += ",\"journal_bytes\":" + std::to_string(r.journal_bytes);
    out += ",\"journal_pending\":" + std::to_string(r.journal_pending);
    out += "},\"pmd\":{\"registry\":" + std::to_string(r.pmd_registry);
    out += ",\"requests\":" + std::to_string(r.pmd_requests);
    out += "},\"flight\":{\"records\":" + std::to_string(r.flight_records);
    out += ",\"dumps\":" + std::to_string(r.flight_dumps);
    out += "},\"health\":{\"level\":";
    Quoted(out, obs::ToString(static_cast<obs::HealthLevel>(r.health)));
    out += ",\"reasons\":[";
    for (size_t i = 0; i < r.health_reasons.size(); ++i) {
      if (i) out += ",";
      Quoted(out, r.health_reasons[i]);
    }
    out += "]},\"groups\":[";
    for (size_t i = 0; i < r.groups.size(); ++i) {
      const core::GroupStatEntry& g = r.groups[i];
      if (i) out += ",";
      out += "{\"name\":";
      Quoted(out, g.name);
      out += ",\"members\":" + std::to_string(g.members);
      out += ",\"exited\":" + std::to_string(g.exited) + "}";
    }
    out += "],\"barriers\":[";
    for (size_t i = 0; i < r.barriers.size(); ++i) {
      const core::BarrierStatEntry& b = r.barriers[i];
      if (i) out += ",";
      out += "{\"name\":";
      Quoted(out, b.name);
      out += ",\"epoch\":" + std::to_string(b.epoch);
      out += ",\"waiters\":" + std::to_string(b.waiters);
      out += ",\"expected\":" + std::to_string(b.expected) + "}";
    }
    out += "],\"envars\":" + std::to_string(r.envars);
    out += ",\"envar_watchers\":" + std::to_string(r.envar_watchers);
    out += ",\"acct\":{\"cpu_us\":" + std::to_string(r.acct_cpu_us);
    out += ",\"rusage_records\":" + std::to_string(r.acct_rusage_records) + "}";
    out += ",\"procs\":[";
    for (size_t i = 0; i < r.procs.size(); ++i) {
      const core::ProcRecord& p = r.procs[i];
      if (i) out += ",";
      out += "{\"gpid\":";
      Quoted(out, core::ToString(p.gpid));
      out += ",\"parent\":";
      Quoted(out, core::ToString(p.logical_parent));
      out += ",\"command\":";
      Quoted(out, p.command);
      out += ",\"state\":";
      Quoted(out, host::ToString(p.state));
      out += std::string(",\"exited\":") + (p.exited ? "true" : "false") + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void RunPpmStatTool(PpmClient& client, std::function<void(const PpmStatResult&)> done,
                    bool dump_flight) {
  client.Stat(dump_flight, [done = std::move(done)](const core::StatResp& resp) {
    PpmStatResult result;
    result.records = resp.records;
    result.ok = !resp.records.empty();
    for (const core::LpmStatRecord& r : resp.records) {
      result.hosts_covered.push_back(r.host);
      result.procs_total += r.procs.size();
      if (r.health != 0) ++result.degraded_hosts;
    }
    std::sort(result.hosts_covered.begin(), result.hosts_covered.end());
    result.table = RenderStatTable(resp.records);
    result.json = RenderStatJson(resp.records);
    done(result);
  });
}

}  // namespace ppm::tools

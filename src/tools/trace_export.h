// trace_export.h — rendering of causal traces (obs/trace.h).
//
// A snapshot broadcast's trace is the covering-graph tree the request
// actually traversed: each span is one hop (sender -> receiver) in
// virtual time.  These exporters make that tree readable:
//
//   * RenderTraceTimeline — indented text, one line per span, children
//     under parents, with virtual-ms start/duration columns;
//   * ExportTraceDot — Graphviz DOT, nodes labelled by hop and host,
//     edges following the parent-span links.
//
// Both take the span list from obs::Tracer::Trace(trace_id).
#pragma once

#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace ppm::tools {

// Indented timeline, e.g.:
//
//   trace 3 (4 spans)
//   0.000ms  +12.500ms  snapshot [alpha]
//     0.300ms  +1.200ms  snapshot.req alpha -> beta
//       1.500ms  +1.100ms  snapshot.req beta -> gamma
// Spans whose message never arrived are marked "(in flight)".
std::string RenderTraceTimeline(const std::vector<obs::SpanRecord>& spans);

// DOT digraph of the span tree; node shape encodes arrival.
std::string ExportTraceDot(const std::vector<obs::SpanRecord>& spans);

// Flat chronological timeline merging a trace's spans with flight
// recorder records (e.g. a chaos post-mortem dump): every span start and
// every flight record becomes one line, ordered by virtual time, so wire
// frames, timer fires, and state transitions read in context against the
// causal hops they happened between.
std::string RenderTimelineWithFlight(const std::vector<obs::SpanRecord>& spans,
                                     const std::vector<obs::FlightRecord>& flight);

// Causal timeline with the profiler's wall-clock spans appended: the
// virtual-time span tree first (what happened, in simulation order),
// then a wall-clock section listing each captured profiler span (from
// ProfRegistry::StartTimeline/StopTimeline) indented by nesting depth.
// The two clocks are incommensurable — virtual µs vs wall ns — so the
// sections sit side by side rather than interleaved: the causal tree
// names the work, the profiler section prices it.
std::string RenderTimelineWithProf(const std::vector<obs::SpanRecord>& spans,
                                   const std::vector<obs::prof::TimelineSpan>& prof);

}  // namespace ppm::tools

#include "tools/timeline.h"

#include <iomanip>
#include <map>
#include <sstream>

namespace ppm::tools {

namespace {

std::string DescribeEvent(const core::HistEvent& ev) {
  std::ostringstream out;
  switch (ev.kind) {
    case host::KEvent::kFork:
      out << "fork     child=" << ev.other;
      break;
    case host::KEvent::kExec:
      out << "exec     " << ev.detail;
      break;
    case host::KEvent::kExit:
      out << "exit     status=" << ev.status;
      break;
    case host::KEvent::kSignal:
      out << "signal   " << host::ToString(ev.sig);
      break;
    case host::KEvent::kStop:
      out << "stop";
      break;
    case host::KEvent::kContinue:
      out << "continue";
      break;
    case host::KEvent::kFileOpen:
      out << "open     " << ev.detail;
      break;
    case host::KEvent::kFileClose:
      out << "close    " << ev.detail;
      break;
    case host::KEvent::kIpcSend:
      out << "ipc-send " << ev.status << " bytes";
      break;
    case host::KEvent::kIpcRecv:
      out << "ipc-recv " << ev.status << " bytes";
      break;
  }
  return out.str();
}

}  // namespace

std::string RenderTimeline(const std::vector<core::HistEvent>& events,
                           const TimelineOptions& options) {
  std::ostringstream out;
  out << std::left << std::setw(12) << "t(ms)" << std::setw(8) << "pid" << "event\n";
  sim::SimTime base = 0;
  bool base_set = false;
  for (const core::HistEvent& ev : events) {
    if (options.pid_filter != host::kNoPid && ev.pid != options.pid_filter) continue;
    if (!base_set && options.relative_times) {
      base = ev.at;
      base_set = true;
    }
    double t = sim::ToMillis(static_cast<sim::SimDuration>(ev.at - base));
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%.1f", t);
    out << std::left << std::setw(12) << stamp << std::setw(8) << ev.pid
        << DescribeEvent(ev) << "\n";
  }
  return out.str();
}

std::string SummarizeHistory(const std::vector<core::HistEvent>& events) {
  struct PerPid {
    size_t count = 0;
    sim::SimTime first = 0, last = 0;
    bool exited = false;
    bool seen = false;
  };
  std::map<host::Pid, PerPid> by_pid;
  for (const core::HistEvent& ev : events) {
    PerPid& p = by_pid[ev.pid];
    if (!p.seen) {
      p.first = ev.at;
      p.seen = true;
    }
    p.last = ev.at;
    ++p.count;
    if (ev.kind == host::KEvent::kExit) p.exited = true;
  }
  std::ostringstream out;
  out << std::left << std::setw(8) << "pid" << std::setw(10) << "events" << std::setw(14)
      << "span(ms)" << "status\n";
  for (const auto& [pid, p] : by_pid) {
    char span[32];
    std::snprintf(span, sizeof(span), "%.1f",
                  sim::ToMillis(static_cast<sim::SimDuration>(p.last - p.first)));
    out << std::left << std::setw(8) << pid << std::setw(10) << p.count << std::setw(14)
        << span << (p.exited ? "exited" : "alive") << "\n";
  }
  return out.str();
}

}  // namespace ppm::tools

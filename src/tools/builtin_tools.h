// builtin_tools.h — the built-in PPM tools.
//
// "At present, our implementation includes two tools: snapshots with
// process control, and exited process resource consumption statistics."
// (paper Section 6).  We implement those two, plus the tools the paper
// lists as future work: an open-files/file-descriptor display and an IPC
// activity trace.  Each tool is a thin formatting layer over PpmClient —
// the architecture's point is precisely that tools stay trivial.
//
// Tool results are delivered as formatted text through callbacks, so
// examples can print them and tests can assert on them.
#pragma once

#include <functional>
#include <string>

#include "tools/client.h"
#include "tools/display.h"

namespace ppm::tools {

// --- snapshot tool (with process control) -------------------------------

struct SnapshotResult {
  bool ok = false;
  Forest forest;
  std::string rendering;   // Figure-1 style ASCII forest
  std::string summary;
  std::vector<std::string> hosts_covered;
};

// Takes a genealogical snapshot of the whole distributed computation.
void RunSnapshotTool(PpmClient& client, std::function<void(const SnapshotResult&)> done);

// Process control verbs of the snapshot tool: "stop a process, execute
// it in the foreground, execute it in the background, kill it".  In
// 4.3BSD terms: SIGSTOP, SIGCONT (fg and bg both resume; the fg/bg
// distinction is a terminal matter the PPM does not model), SIGKILL.
void StopProcess(PpmClient& client, const core::GPid& target,
                 std::function<void(bool, std::string)> done);
void ResumeProcess(PpmClient& client, const core::GPid& target,
                   std::function<void(bool, std::string)> done);
void KillProcess(PpmClient& client, const core::GPid& target,
                 std::function<void(bool, std::string)> done);

// Stop (or kill, or resume) the entire computation across all hosts.
void SignalComputation(PpmClient& client, host::Signal sig,
                       std::function<void(size_t ok, size_t failed)> done);

// --- exited-process statistics tool ----------------------------------------

struct RusageResult {
  bool ok = false;
  std::string error;
  std::vector<core::RusageRecord> records;
  std::string table;  // formatted report
};

// Resource consumption of exited processes on `target_host` ("" = the
// local host).
void RunRusageTool(PpmClient& client, const std::string& target_host,
                   std::function<void(const RusageResult&)> done);

// --- future-work tools, implemented -------------------------------------------

struct FilesResult {
  bool ok = false;
  std::string error;
  std::vector<core::FileRecord> files;
  std::string table;
};

// Open files / descriptors of one process anywhere in the computation.
void RunFilesTool(PpmClient& client, const core::GPid& target,
                  std::function<void(const FilesResult&)> done);

struct IpcTraceResult {
  bool ok = false;
  std::string error;
  uint64_t sends = 0;
  uint64_t receives = 0;
  uint64_t bytes = 0;
  std::string report;
};

// IPC activity analysis from the LPM's event history on `target_host`.
void RunIpcTraceTool(PpmClient& client, const std::string& target_host,
                     host::Pid pid_filter, std::function<void(const IpcTraceResult&)> done);

}  // namespace ppm::tools

#include "tools/ppmtop.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tools/ppmstat.h"

namespace ppm::tools {

namespace {

void Quoted(std::string& out, std::string_view s) {
  out += '"';
  obs::json::AppendEscaped(out, s);
  out += '"';
}

double Rate(uint64_t delta, uint64_t dt_us) {
  if (dt_us == 0) return 0;
  return static_cast<double>(delta) * 1e6 / static_cast<double>(dt_us);
}

}  // namespace

PpmTop::PpmTop(host::Host& host, PpmClient& client, uint64_t interval_us)
    : host_(host), client_(client),
      interval_us_(interval_us ? interval_us : 1'000'000) {}

void PpmTop::Start(std::function<void(bool)> done) {
  client_.StatSubscribe(
      interval_us_,
      [this](const core::StatDelta& delta) { OnDelta(delta); },
      [this, done = std::move(done)](bool ok, uint64_t watch_id) {
        if (ok) {
          running_ = true;
          watch_id_ = watch_id;
          StalenessTick();
        }
        if (done) done(ok);
      });
}

void PpmTop::Stop() {
  if (!running_) return;
  running_ = false;
  host_.simulator().Cancel(tick_ev_);
  tick_ev_ = sim::kInvalidEventId;
  client_.StatUnsubscribe(watch_id_);
}

void PpmTop::OnDelta(const core::StatDelta& delta) {
  ++deltas_received_;
  const uint64_t now = static_cast<uint64_t>(host_.simulator().Now());
  for (const core::StatDeltaRecord& r : delta.records) {
    HostRow& row = rows_[r.host];
    if (row.host.empty()) {
      row.host = r.host;
    } else if (r.seq != row.last_seq + 1) {
      // Contiguity break: the LPM side pins the delta path precisely so
      // this cannot happen while frames arrive at all.
      if (r.seq <= row.last_seq) {
        ++seq_dups_;
        continue;  // never double-count a replayed interval
      }
      ++seq_gaps_;
    }
    row.last_seq = r.seq;
    row.last_seen_us = now;
    row.stale = false;
    ++row.deltas;
    row.user = r.user;
    row.uid = r.uid;
    row.events_per_sec = Rate(r.d_kernel_events, r.dt_us);
    row.sheds_per_sec = Rate(r.d_requests_shed, r.dt_us);
    row.retries_per_sec = Rate(r.d_retries, r.dt_us);
    row.journal_bytes_per_sec = Rate(r.d_journal_bytes, r.dt_us);
    row.queue_depth = r.queue_depth;
    row.procs_live = r.procs_live;
    row.health = r.health;
    row.cum_kernel_events += r.d_kernel_events;
    row.cum_eventlog_recorded += r.d_eventlog_recorded;
    row.cum_journal_bytes += r.d_journal_bytes;
    row.cum_acct_cpu_us += r.d_acct_cpu_us;
    // Per-host rate history, timestamped with the record's own clock.
    series_.Get(r.host + ".events_per_sec")->Push(r.t_us, row.events_per_sec);
    series_.Get(r.host + ".sheds_per_sec")->Push(r.t_us, row.sheds_per_sec);
    series_.Get(r.host + ".retries_per_sec")->Push(r.t_us, row.retries_per_sec);
    series_.Get(r.host + ".journal_bytes_per_sec")
        ->Push(r.t_us, row.journal_bytes_per_sec);
  }
}

void PpmTop::StalenessTick() {
  const uint64_t now = static_cast<uint64_t>(host_.simulator().Now());
  size_t stale = 0;
  for (auto& [name, row] : rows_) {
    // Arrival cadence, not record timestamps: a distant host's records
    // are buffered one hop per interval, but they still *arrive* every
    // interval once the pipeline fills.  The flag trips at a gap of
    // 1.5 intervals, checked twice per interval, so a silenced host is
    // flagged strictly within two intervals of its last arrival while
    // ordinary transit jitter (well under half an interval) never
    // false-positives.
    if (now - row.last_seen_us >= interval_us_ + interval_us_ / 2) {
      row.stale = true;
      ++stale;
    }
  }
  obs::Registry::Instance().GetGauge("tool.watch.stale_hosts")
      ->Set(static_cast<double>(stale));
  if (stale > 0) {
    obs::HealthMonitor::Instance().Watermark("watch.stale_hosts",
                                             static_cast<double>(stale));
  }
  // Cluster-level history rides the same tick.
  series_.SampleRegistry(now);
  tick_ev_ = host_.simulator().ScheduleIn(
      static_cast<sim::SimDuration>(interval_us_ / 2 ? interval_us_ / 2 : 1),
      [this] {
        tick_ev_ = sim::kInvalidEventId;
        if (running_) StalenessTick();
      },
      "ppmtop-staleness");
}

std::vector<PpmTop::HostRow> PpmTop::Rows() const {
  std::vector<HostRow> out;
  out.reserve(rows_.size());
  for (const auto& [name, row] : rows_) out.push_back(row);
  return out;
}

size_t PpmTop::stale_host_count() const {
  size_t n = 0;
  for (const auto& [name, row] : rows_) {
    if (row.stale) ++n;
  }
  return n;
}

std::vector<PpmTop::UserAcct> PpmTop::AccountingRollup() const {
  std::map<std::string, UserAcct> by_user;
  for (const auto& [name, row] : rows_) {
    UserAcct& u = by_user[row.user];
    u.user = row.user;
    u.uid = row.uid;
    u.cpu_us += row.cum_acct_cpu_us;
    u.kernel_events += row.cum_kernel_events;
    u.journal_bytes += row.cum_journal_bytes;
    ++u.hosts;
    u.procs_live += row.procs_live;
  }
  std::vector<UserAcct> out;
  out.reserve(by_user.size());
  for (auto& [name, u] : by_user) out.push_back(std::move(u));
  return out;
}

std::string PpmTop::RenderTable() const {
  std::ostringstream out;
  out << std::left << std::setw(12) << "HOST" << std::setw(10) << "USER"
      << std::right << std::setw(9) << "EV/S" << std::setw(9) << "SHED/S"
      << std::setw(9) << "RETRY/S" << std::setw(11) << "JRNL-B/S"
      << std::setw(7) << "QUEUE" << std::setw(7) << "PROCS" << std::setw(6)
      << "SEQ" << "  " << std::left << std::setw(9) << "HEALTH" << "STALE\n";
  out << std::fixed << std::setprecision(1);
  for (const auto& [name, r] : rows_) {
    out << std::left << std::setw(12) << r.host << std::setw(10) << r.user
        << std::right << std::setw(9) << r.events_per_sec << std::setw(9)
        << r.sheds_per_sec << std::setw(9) << r.retries_per_sec << std::setw(11)
        << r.journal_bytes_per_sec << std::setw(7) << r.queue_depth
        << std::setw(7) << r.procs_live << std::setw(6) << r.last_seq << "  "
        << std::left << std::setw(9)
        << obs::ToString(static_cast<obs::HealthLevel>(r.health))
        << (r.stale ? "STALE" : "-") << "\n";
  }
  auto users = AccountingRollup();
  if (!users.empty()) {
    out << "\nUSERS\n";
    out << std::left << std::setw(10) << "USER" << std::right << std::setw(6)
        << "UID" << std::setw(12) << "CPU-MS" << std::setw(10) << "KEVENTS"
        << std::setw(12) << "JRNL-B" << std::setw(7) << "HOSTS" << std::setw(7)
        << "PROCS" << "\n";
    for (const UserAcct& u : users) {
      out << std::left << std::setw(10) << u.user << std::right << std::setw(6)
          << u.uid << std::setw(12) << (u.cpu_us / 1000) << std::setw(10)
          << u.kernel_events << std::setw(12) << u.journal_bytes << std::setw(7)
          << u.hosts << std::setw(7) << u.procs_live << "\n";
    }
  }
  return out.str();
}

std::string PpmTop::RenderJson() const {
  std::string out =
      "{\"schema_version\":" + std::to_string(kStatSchemaVersion);
  out += ",\"watch_id\":" + std::to_string(watch_id_);
  out += ",\"interval_us\":" + std::to_string(interval_us_);
  out += ",\"seq_gaps\":" + std::to_string(seq_gaps_);
  out += ",\"seq_dups\":" + std::to_string(seq_dups_);
  out += ",\"hosts\":[";
  bool first = true;
  for (const auto& [name, r] : rows_) {
    if (!first) out += ",";
    first = false;
    out += "{\"host\":";
    Quoted(out, r.host);
    out += ",\"user\":";
    Quoted(out, r.user);
    out += ",\"uid\":" + std::to_string(r.uid);
    out += ",\"seq\":" + std::to_string(r.last_seq);
    out += std::string(",\"stale\":") + (r.stale ? "true" : "false");
    out += ",\"rates\":{\"events_per_sec\":" + std::to_string(r.events_per_sec);
    out += ",\"sheds_per_sec\":" + std::to_string(r.sheds_per_sec);
    out += ",\"retries_per_sec\":" + std::to_string(r.retries_per_sec);
    out += ",\"journal_bytes_per_sec\":" +
           std::to_string(r.journal_bytes_per_sec);
    out += "},\"queue_depth\":" + std::to_string(r.queue_depth);
    out += ",\"procs_live\":" + std::to_string(r.procs_live);
    out += ",\"health\":";
    Quoted(out, obs::ToString(static_cast<obs::HealthLevel>(r.health)));
    out += ",\"cum\":{\"kernel_events\":" + std::to_string(r.cum_kernel_events);
    out += ",\"eventlog_recorded\":" + std::to_string(r.cum_eventlog_recorded);
    out += ",\"journal_bytes\":" + std::to_string(r.cum_journal_bytes);
    out += ",\"acct_cpu_us\":" + std::to_string(r.cum_acct_cpu_us) + "}}";
  }
  out += "],\"users\":[";
  first = true;
  for (const UserAcct& u : AccountingRollup()) {
    if (!first) out += ",";
    first = false;
    out += "{\"user\":";
    Quoted(out, u.user);
    out += ",\"uid\":" + std::to_string(u.uid);
    out += ",\"cpu_us\":" + std::to_string(u.cpu_us);
    out += ",\"kernel_events\":" + std::to_string(u.kernel_events);
    out += ",\"journal_bytes\":" + std::to_string(u.journal_bytes);
    out += ",\"hosts\":" + std::to_string(u.hosts);
    out += ",\"procs_live\":" + std::to_string(u.procs_live) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace ppm::tools

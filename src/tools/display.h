// display.h — genealogical forest assembly and rendering.
//
// Turns the flat ProcRecord list of a snapshot into the tree-with-
// host-boundaries display of the paper's Figure 1.  The structure may be
// a forest: processes whose logical parent is unknown (parent exited
// long ago, parent's host crashed, or genuinely a root) become roots.
// Exited processes that still anchor children are rendered with an
// "(exited)" mark, per the paper's display rule.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/types.h"

namespace ppm::tools {

struct ForestNode {
  core::ProcRecord record;
  std::vector<size_t> children;  // indices into Forest::nodes
};

struct Forest {
  std::vector<ForestNode> nodes;
  std::vector<size_t> roots;  // indices, in deterministic order

  size_t size() const { return nodes.size(); }
  // Number of distinct hosts appearing in the snapshot.
  size_t HostCount() const;
  // True if every record hangs off a single root (tree, not forest).
  bool IsTree() const { return roots.size() <= 1; }
};

// Assembles the forest.  Records are matched to parents by GPid; orphans
// become roots.  Deterministic: roots and children sorted by GPid.
Forest BuildForest(const std::vector<core::ProcRecord>& records);

// Renders an ASCII tree, one process per line:
//   <vaxA,12> cruncher [running]
//   +-- <vaxA,13> worker [stopped]
//   +-- <vaxB,7> worker (exited)
// Host boundaries are visible in every line because identity is
// <host, pid>.
std::string RenderForest(const Forest& forest);

// One-line summary per state for quick assertions:
// "7 processes on 3 hosts: 5 running, 1 stopped, 1 exited".
std::string SummarizeForest(const Forest& forest);

}  // namespace ppm::tools

// rdp.h — a reliable datagram protocol.
//
// Paper Section 3: virtual circuits "limit extensibility.  A datagram
// based scheme would scale much better, but would require individual
// authentication for each message. […] A reliable datagram protocol and
// a scheme based on remote procedure calls, would be promising
// alternatives for scalability."  This module is that protocol, built on
// the unreliable datagrams of net::Network in the style of the era
// (RFC 908 RDP, simplified): per-peer sequence numbers, positive
// acknowledgements, stop-and-wait retransmission with bounded retries,
// and receiver-side duplicate suppression.
//
// It deliberately holds **no per-peer connection state beyond a pair of
// sequence counters** — that is the scalability argument: N peers cost
// two integers each, not a circuit.  The price is a per-message
// round-trip before the next message to the same peer can leave
// (stop-and-wait), and per-message authentication at a higher layer.
//
// bench_ablate_transport measures this implementation head-to-head
// against the circuit transport the PPM uses.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/network.h"

namespace ppm::net {

struct RdpParams {
  sim::SimDuration retransmit_timeout = sim::Millis(200);
  int max_retries = 5;
};

struct RdpStats {
  uint64_t sent = 0;            // distinct messages handed to SendReliable
  uint64_t delivered = 0;       // messages delivered to the local receiver
  uint64_t retransmits = 0;
  uint64_t duplicates = 0;      // suppressed at the receiver
  uint64_t acks_sent = 0;
  uint64_t failures = 0;        // gave up after max_retries
};

// One bound RDP endpoint.  Lifetime: Close() (or destruction) unbinds.
class RdpEndpoint {
 public:
  // Receive callback: payload + sender address.
  using RecvFn = std::function<void(SocketAddr from, const std::vector<uint8_t>&)>;
  // Send completion: true once acknowledged, false after retries exhaust.
  using SentFn = std::function<void(bool)>;

  RdpEndpoint(Network& network, HostId host, Port port, RecvFn on_recv,
              RdpParams params = {});
  ~RdpEndpoint();

  RdpEndpoint(const RdpEndpoint&) = delete;
  RdpEndpoint& operator=(const RdpEndpoint&) = delete;

  // Queues `payload` for reliable delivery to `dst` (another
  // RdpEndpoint).  Messages to the same destination are delivered in
  // order; distinct destinations are independent.
  void SendReliable(SocketAddr dst, std::vector<uint8_t> payload, SentFn done = nullptr);

  void Close();
  bool closed() const { return closed_; }
  const RdpStats& stats() const { return stats_; }
  SocketAddr addr() const { return SocketAddr{host_, port_}; }

 private:
  struct PeerKey {
    SocketAddr addr;
    bool operator<(const PeerKey& o) const {
      if (addr.host != o.addr.host) return addr.host < o.addr.host;
      return addr.port < o.addr.port;
    }
  };
  struct Outgoing {
    std::vector<uint8_t> payload;
    SentFn done;
  };
  struct PeerState {
    uint64_t next_send_seq = 0;   // seq of the next *new* message
    uint64_t next_recv_seq = 0;   // seq expected from this peer
    bool in_flight = false;
    int retries_left = 0;
    sim::EventId retransmit_ev = sim::kInvalidEventId;
    std::deque<Outgoing> queue;   // head = the in-flight message
  };

  void OnDgram(SocketAddr from, const std::vector<uint8_t>& data);
  void PumpPeer(const PeerKey& key, PeerState& peer);
  void TransmitHead(const PeerKey& key, PeerState& peer);
  void HandleAck(const PeerKey& key, uint64_t seq);
  void FailHead(const PeerKey& key, PeerState& peer);

  Network& net_;
  HostId host_;
  Port port_;
  RecvFn on_recv_;
  RdpParams params_;
  std::map<PeerKey, PeerState> peers_;
  RdpStats stats_;
  bool closed_ = false;
};

}  // namespace ppm::net

// address.h — network-level naming.
//
// Hosts have small integer ids assigned by the Network at registration
// and human-readable names (the paper identifies processes network-wide
// as <host name, pid>).  A SocketAddr is <host, port>, the accept-address
// currency that the process manager daemon hands out in step (4) of LPM
// creation (paper Figure 2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ppm::net {

using HostId = uint32_t;
using Port = uint16_t;

constexpr HostId kInvalidHost = ~static_cast<HostId>(0);

// Well-known ports, mirroring 4.3BSD conventions: only inetd has a
// well-known port; every other address is handed out dynamically.
constexpr Port kInetdPort = 512;
constexpr Port kDynamicPortBase = 1024;

struct SocketAddr {
  HostId host = kInvalidHost;
  Port port = 0;

  bool operator==(const SocketAddr&) const = default;
  bool valid() const { return host != kInvalidHost; }
};

inline std::string ToString(const SocketAddr& a) {
  return "<" + std::to_string(a.host) + ":" + std::to_string(a.port) + ">";
}

struct SocketAddrHash {
  size_t operator()(const SocketAddr& a) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(a.host) << 16) | a.port);
  }
};

}  // namespace ppm::net

// network.h — the simulated internetwork.
//
// Models the environment of the paper: multiple Ethernets joined by
// gateway hosts, so some host pairs are one hop apart and some two or
// more (the independent variable of Tables 2 and 3).  The model is
// store-and-forward at the host granularity:
//
//   * a Link connects two hosts with a propagation latency and a
//     per-byte transmission cost; a directed link serializes frames
//     (a frame occupies the wire for its transmission time, so back to
//     back frames queue);
//   * routes are shortest-hop paths recomputed whenever topology or
//     fault state changes; each delivered frame carries the route it
//     travelled, which the PPM layer records for source-destination
//     routing of replies (paper Section 4);
//   * faults: links can be taken down (partitions) and hosts can crash;
//     frames in flight toward a dead hop are dropped silently, exactly
//     like datagrams on a partitioned 1986 internet.
//
// Two transports are offered, mirroring the paper's discussion:
//   * reliable stream connections ("virtual circuits", the transport the
//     PPM actually uses): explicit connect/accept, FIFO data delivery,
//     and broken-circuit notification after a detection delay when the
//     peer crashes or the route partitions;
//   * datagrams (the "would scale much better" alternative evaluated in
//     bench_ablate_transport): fire-and-forget, silently droppable.
//
// The Network knows nothing about processes or users; the host layer
// bridges frames to simulated processes and charges local CPU costs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "sim/simulator.h"

namespace ppm::obs {
class Counter;
}  // namespace ppm::obs

namespace ppm::net {

// Why a circuit went away.  kLocalClose is the graceful case; the rest
// feed the PPM's failure detection.
enum class CloseReason : uint8_t {
  kLocalClose,   // this endpoint closed
  kPeerClose,    // peer closed gracefully
  kPeerCrash,    // peer host or peer process died
  kNetBroken,    // route partitioned / link down
};

const char* ToString(CloseReason r);

using ConnId = uint64_t;
constexpr ConnId kInvalidConn = 0;

// Callbacks one endpoint registers for a circuit.  Both are optional.
struct ConnCallbacks {
  std::function<void(ConnId, const std::vector<uint8_t>&)> on_data;
  std::function<void(ConnId, CloseReason)> on_close;
};

// Accept decision: return callbacks to accept, nullopt to refuse.
using AcceptFn = std::function<std::optional<ConnCallbacks>(ConnId, SocketAddr peer)>;

// Datagram receive: payload plus the route the frame travelled
// (route.front() == sender host, route.back() == this host).
using DgramFn =
    std::function<void(SocketAddr from, const std::vector<uint8_t>&, const std::vector<HostId>& route)>;

using ConnectResultFn = std::function<void(std::optional<ConnId>)>;

struct LinkParams {
  sim::SimDuration latency = sim::Micros(500);   // one-way propagation
  sim::SimDuration per_byte = sim::Micros(1);    // transmission cost per byte
};

struct NetworkParams {
  // How long after a crash/partition the surviving endpoint of a circuit
  // learns it is broken (models TCP RST / retransmission give-up).
  sim::SimDuration break_detection_delay = sim::Millis(150);
  // Connect attempts that get no answer fail after this long.
  sim::SimDuration connect_timeout = sim::Millis(500);
  // Fixed cost of the connect handshake on top of 1 RTT (socket setup).
  sim::SimDuration handshake_cpu = sim::Millis(2);
};

struct NetStats {
  uint64_t frames_sent = 0;
  uint64_t frames_delivered = 0;
  uint64_t frames_dropped = 0;
  uint64_t bytes_sent = 0;
  uint64_t conns_opened = 0;
  uint64_t conns_broken = 0;
  uint64_t connects_timed_out = 0;  // handshakes that never completed
  uint64_t half_open_reaped = 0;    // accepted-but-unestablished endpoints torn down
  // Chaos accounting (LinkFaultProfile injections and their fallout).
  uint64_t faults_dropped = 0;     // frames eaten by a drop fault
  uint64_t faults_duplicated = 0;  // extra copies injected on the wire
  uint64_t faults_reordered = 0;   // frames held back by a reorder delay
  uint64_t faults_corrupted = 0;   // frames with a payload byte flipped
  uint64_t dup_frames_discarded = 0;  // stale circuit frames suppressed
};

// Adversarial per-link behaviour for chaos testing.  Probabilities are
// per frame per traversal of the link; every roll draws from the
// simulator's single seeded RNG, so a fault sequence replays from the
// seed alone.  Corruption flips one payload byte, which the PPM wire
// checksum detects on parse; control frames (empty payload) pass
// through unchanged.
struct LinkFaultProfile {
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double corrupt = 0.0;
  sim::SimDuration reorder_delay_max = sim::Millis(50);

  bool active() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

class Network {
 public:
  Network(sim::Simulator& simulator, NetworkParams params = {});

  // --- topology -----------------------------------------------------
  HostId AddHost(const std::string& name);
  void AddLink(HostId a, HostId b, LinkParams params = {});

  const std::string& HostName(HostId h) const;
  std::optional<HostId> FindHost(const std::string& name) const;
  size_t host_count() const { return hosts_.size(); }

  // Shortest-hop distance considering current fault state; nullopt if
  // unreachable.
  std::optional<size_t> HopDistance(HostId a, HostId b) const;

  // --- fault injection ----------------------------------------------
  void SetLinkUp(HostId a, HostId b, bool up);
  void SetHostUp(HostId h, bool up);  // down = crash: breaks circuits, clears binds
  bool HostUp(HostId h) const;

  // Partitions the network into the given groups by downing every link
  // that crosses a group boundary.  Links inside a group are restored.
  void Partition(const std::vector<std::vector<HostId>>& groups);
  // Restores every link.
  void Heal();

  // --- adversarial link behaviour (chaos testing) ---------------------
  void SetLinkFaults(HostId a, HostId b, LinkFaultProfile profile);
  void SetAllLinkFaults(LinkFaultProfile profile);  // every existing link
  void ClearLinkFaults();

  // --- stream circuits ----------------------------------------------
  void Listen(HostId h, Port p, AcceptFn accept);
  void Unlisten(HostId h, Port p);
  bool HasListener(HostId h, Port p) const;

  // Opens a circuit from `from` (an ephemeral port is assigned) to `to`.
  // `done` fires with the ConnId once established, or nullopt on refusal
  // or timeout.  Callbacks are installed on success.
  void Connect(HostId from, SocketAddr to, ConnCallbacks cb, ConnectResultFn done);

  // Sends bytes on an established circuit.  Returns false if the circuit
  // is already locally closed/unknown.  Delivery is FIFO per circuit; if
  // the route is broken the data vanishes and break detection fires.
  bool Send(ConnId c, std::vector<uint8_t> data);

  // Gracefully closes this endpoint; peer gets on_close(kPeerClose).
  void Close(ConnId c);

  // Abrupt teardown, as when the owning process dies: this endpoint
  // closes silently (no callback) and the peer learns of the break only
  // after the detection delay, with kPeerCrash.
  void Abort(ConnId c);

  // Introspection for tests and the fig3/fig4 exhibits.
  bool ConnAlive(ConnId c) const;
  std::optional<std::pair<SocketAddr, SocketAddr>> ConnEndpoints(ConnId c) const;
  std::vector<ConnId> ConnsTouching(HostId h) const;
  // Socket-leak checks for the chaos invariants: how many stream
  // listeners / datagram binds currently sit on `h` (a crashed host must
  // have none).
  size_t ListenerCount(HostId h) const;
  size_t DgramBindCount(HostId h) const;
  // Circuits touching `h` that are neither established nor still inside
  // the handshake window (no pending connect).  Any such entry at a
  // quiescent point is a half-open leak: a connect that timed out or was
  // refused but left state behind.  Must be zero once the dust settles.
  size_t HalfOpenConnCount(HostId h) const;

  // --- datagrams ------------------------------------------------------
  void BindDgram(HostId h, Port p, DgramFn fn);
  void UnbindDgram(HostId h, Port p);
  // One-shot unreliable send; silently dropped when unreachable.
  void SendDgram(HostId from, Port from_port, SocketAddr to, std::vector<uint8_t> data);

  const NetStats& stats() const { return stats_; }
  sim::Simulator& simulator() { return sim_; }
  const NetworkParams& params() const { return params_; }

  // Per-opcode wire accounting.  Every frame put on the wire increments
  // "net.op.<class>.frames" / "net.op.<class>.bytes" alongside the
  // net.frames.sent / net.bytes.sent totals, so the totals decompose
  // exactly by opcode.  Control frames and datagrams classify here by
  // frame kind ("ctl.syn", "dgram", ...); data payloads are opaque to
  // this layer, so their class comes from the installed classifier
  // (core::Cluster installs core::ClassifyWireFrame) — "data" when none
  // is installed.  The returned pointer must be stable (a literal or a
  // name-table entry): it keys the counter cache.
  using PayloadClassFn = const char* (*)(const uint8_t* payload, size_t len);
  void set_payload_classifier(PayloadClassFn fn) { classify_ = fn; }

 private:
  struct HostRec {
    std::string name;
    bool up = true;
  };
  struct LinkRec {
    LinkParams params;
    bool up = true;
    LinkFaultProfile faults;
    // Directed wire-busy horizon for serialization, indexed [a<b ? 0:1].
    sim::SimTime busy_until[2] = {0, 0};
    // Per-link registry instruments ("net.link.<a>-<b>.*"), resolved
    // once at AddLink so the per-frame path is a bare increment.
    obs::Counter* frames_counter = nullptr;
    obs::Counter* bytes_counter = nullptr;
    obs::Counter* drops_counter = nullptr;
  };
  enum class FrameKind : uint8_t { kSyn, kSynAck, kData, kFin, kRst, kDgram };
  struct Frame {
    FrameKind kind;
    SocketAddr src, dst;
    ConnId conn = kInvalidConn;
    uint64_t seq = 0;  // per-circuit sequence for FIFO reassembly
    std::vector<uint8_t> payload;
    std::vector<HostId> route;  // filled hop by hop
    size_t hop_index = 0;       // next index in planned path
    std::vector<HostId> path;   // planned at send time
  };
  struct Endpoint {
    SocketAddr addr;
    ConnCallbacks cb;
    bool open = false;
    uint64_t next_send_seq = 0;
    uint64_t next_recv_seq = 0;
    std::map<uint64_t, Frame> reorder;  // frames arrived ahead of order
  };
  struct Conn {
    ConnId id = kInvalidConn;
    Endpoint a, b;           // a = initiator
    bool established = false;
    bool dead = false;
    bool syn_seen = false;   // guards the accept path against duplicated SYNs
  };
  struct PendingConnect {
    ConnId conn;
    ConnectResultFn done;
    sim::EventId timeout_ev;
  };

  uint64_t LinkKey(HostId a, HostId b) const;
  // Opcode class of a frame (see set_payload_classifier), and the
  // "sent" side of the per-opcode accounting.  `wire_bytes` is 0 for a
  // chaos-duplicated copy, which (like the totals) counts the extra
  // frame but no extra bytes.
  const char* FrameClass(const Frame& f) const;
  void CountOpFrame(const Frame& f, size_t wire_bytes);
  LinkRec* FindLink(HostId a, HostId b);
  const LinkRec* FindLinkConst(HostId a, HostId b) const;
  std::optional<std::vector<HostId>> Route(HostId from, HostId to) const;
  void SendFrame(Frame f);
  void ForwardFrame(Frame f);
  // Puts one frame on the u->v wire, applying the link's corruption and
  // reordering faults to this copy.
  void TransmitOnLink(LinkRec& link, HostId u, HostId v, Frame f);
  void DeliverFrame(Frame f);
  void DeliverData(Conn& conn, Endpoint& self, Frame f);
  Endpoint* EndpointAt(Conn& conn, HostId h, Port p);
  void BreakConn(Conn& conn, HostId detected_by, CloseReason reason);
  // `reap_after` erases the conns_ entry once the notice has fired —
  // used for never-established circuits, which nothing else will reap.
  void ScheduleBreakNotice(ConnId id, bool notify_a, bool notify_b, CloseReason reason,
                           bool reap_after = false);
  Port NextEphemeral(HostId h);

  sim::Simulator& sim_;
  NetworkParams params_;
  std::vector<HostRec> hosts_;
  std::unordered_map<uint64_t, LinkRec> links_;
  std::unordered_map<HostId, std::vector<HostId>> adj_;
  std::unordered_map<SocketAddr, AcceptFn, SocketAddrHash> listeners_;
  std::unordered_map<SocketAddr, DgramFn, SocketAddrHash> dgram_binds_;
  std::unordered_map<ConnId, Conn> conns_;
  std::unordered_map<ConnId, PendingConnect> pending_connects_;
  std::unordered_map<HostId, Port> next_ephemeral_;
  ConnId next_conn_id_ = 1;
  NetStats stats_;
  PayloadClassFn classify_ = nullptr;
};

}  // namespace ppm::net

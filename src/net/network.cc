#include "net/network.h"

#include <algorithm>
#include <deque>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::net {

namespace {
// Fixed per-frame header cost charged on the wire (addresses, sequence
// numbers, checksums) — roughly a 1986 TCP/IP header.
constexpr size_t kFrameHeaderBytes = 40;
constexpr Port kEphemeralBase = 32768;

struct NetCounters {
  obs::Counter* frames_sent;
  obs::Counter* frames_delivered;
  obs::Counter* frames_dropped;
  obs::Counter* bytes_sent;
  obs::Counter* conns_opened;
  obs::Counter* conns_broken;
  obs::Counter* dup_suppressed;
  obs::Counter* connect_timeouts;
  obs::Counter* half_open_reaped;
};

NetCounters& Counters() {
  static NetCounters c = {
      obs::Registry::Instance().GetCounter("net.frames.sent"),
      obs::Registry::Instance().GetCounter("net.frames.delivered"),
      obs::Registry::Instance().GetCounter("net.frames.dropped"),
      obs::Registry::Instance().GetCounter("net.bytes.sent"),
      obs::Registry::Instance().GetCounter("net.conns.opened"),
      obs::Registry::Instance().GetCounter("net.conns.broken"),
      obs::Registry::Instance().GetCounter("net.frames.dup-suppressed"),
      obs::Registry::Instance().GetCounter("net.conns.connect-timeouts"),
      obs::Registry::Instance().GetCounter("net.conns.half-open-reaped"),
  };
  return c;
}

// Chaos-injection counters, one per LinkFaultProfile knob.
struct FaultCounterSet {
  obs::Counter* dropped;
  obs::Counter* duplicated;
  obs::Counter* reordered;
  obs::Counter* corrupted;
};

FaultCounterSet& FaultCounters() {
  static FaultCounterSet c = {
      obs::Registry::Instance().GetCounter("net.faults.dropped"),
      obs::Registry::Instance().GetCounter("net.faults.duplicated"),
      obs::Registry::Instance().GetCounter("net.faults.reordered"),
      obs::Registry::Instance().GetCounter("net.faults.corrupted"),
  };
  return c;
}

// Per-opcode accounting: "net.op.<class>.{frames,bytes}".  The cache is
// keyed by the stable class pointer the classifier returns, so the
// per-frame cost after the first occurrence of a class is one pointer
// hash.  Two distinct pointers with equal text resolve to the same
// registry counters, so the sums stay exact either way.
struct OpCounterSet {
  obs::Counter* frames;
  obs::Counter* bytes;
};

OpCounterSet& OpCounters(const char* cls) {
  static std::unordered_map<const char*, OpCounterSet> cache;
  auto [it, inserted] = cache.try_emplace(cls);
  if (inserted) {
    std::string base = "net.op.";
    base += cls;
    it->second.frames = obs::Registry::Instance().GetCounter(base + ".frames");
    it->second.bytes = obs::Registry::Instance().GetCounter(base + ".bytes");
  }
  return it->second;
}

// One counter per circuit close reason, "net.conn.close.<reason>".
obs::Counter* CloseCounter(CloseReason r) {
  static obs::Counter* c[4] = {
      obs::Registry::Instance().GetCounter("net.conn.close.local-close"),
      obs::Registry::Instance().GetCounter("net.conn.close.peer-close"),
      obs::Registry::Instance().GetCounter("net.conn.close.peer-crash"),
      obs::Registry::Instance().GetCounter("net.conn.close.net-broken"),
  };
  return c[static_cast<size_t>(r)];
}
}  // namespace

const char* ToString(CloseReason r) {
  switch (r) {
    case CloseReason::kLocalClose: return "local-close";
    case CloseReason::kPeerClose: return "peer-close";
    case CloseReason::kPeerCrash: return "peer-crash";
    case CloseReason::kNetBroken: return "net-broken";
  }
  return "?";
}

Network::Network(sim::Simulator& simulator, NetworkParams params)
    : sim_(simulator), params_(params) {}

HostId Network::AddHost(const std::string& name) {
  HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(HostRec{name, true});
  adj_[id];  // ensure entry
  next_ephemeral_[id] = kEphemeralBase;
  return id;
}

void Network::AddLink(HostId a, HostId b, LinkParams params) {
  PPM_CHECK(a < hosts_.size() && b < hosts_.size() && a != b);
  uint64_t key = LinkKey(a, b);
  PPM_CHECK_MSG(!links_.count(key), "duplicate link");
  links_[key] = LinkRec{params, true, {0, 0}};
  LinkRec& link = links_[key];
  const std::string edge =
      hosts_[std::min(a, b)].name + "-" + hosts_[std::max(a, b)].name;
  obs::Registry& reg = obs::Registry::Instance();
  link.frames_counter = reg.GetCounter("net.link." + edge + ".frames");
  link.bytes_counter = reg.GetCounter("net.link." + edge + ".bytes");
  link.drops_counter = reg.GetCounter("net.link." + edge + ".drops");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

const std::string& Network::HostName(HostId h) const {
  PPM_CHECK(h < hosts_.size());
  return hosts_[h].name;
}

std::optional<HostId> Network::FindHost(const std::string& name) const {
  for (HostId i = 0; i < hosts_.size(); ++i)
    if (hosts_[i].name == name) return i;
  return std::nullopt;
}

uint64_t Network::LinkKey(HostId a, HostId b) const {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

Network::LinkRec* Network::FindLink(HostId a, HostId b) {
  auto it = links_.find(LinkKey(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

const Network::LinkRec* Network::FindLinkConst(HostId a, HostId b) const {
  auto it = links_.find(LinkKey(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

std::optional<std::vector<HostId>> Network::Route(HostId from, HostId to) const {
  if (from >= hosts_.size() || to >= hosts_.size()) return std::nullopt;
  if (!hosts_[from].up || !hosts_[to].up) return std::nullopt;
  if (from == to) return std::vector<HostId>{from};
  // BFS over up links and up intermediate hosts.  Neighbor order is the
  // link-creation order, so routes are deterministic.
  std::unordered_map<HostId, HostId> parent;
  std::deque<HostId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    HostId u = frontier.front();
    frontier.pop_front();
    auto it = adj_.find(u);
    if (it == adj_.end()) continue;
    for (HostId v : it->second) {
      if (parent.count(v) || !hosts_[v].up) continue;
      const LinkRec* link = FindLinkConst(u, v);
      if (!link || !link->up) continue;
      parent[v] = u;
      if (v == to) {
        std::vector<HostId> path{to};
        for (HostId cur = to; cur != from; cur = parent[cur]) path.push_back(parent[cur]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return std::nullopt;
}

std::optional<size_t> Network::HopDistance(HostId a, HostId b) const {
  auto path = Route(a, b);
  if (!path) return std::nullopt;
  return path->size() - 1;
}

// --- fault injection --------------------------------------------------

void Network::SetLinkUp(HostId a, HostId b, bool up) {
  LinkRec* link = FindLink(a, b);
  PPM_CHECK_MSG(link != nullptr, "no such link");
  if (link->up == up) return;
  link->up = up;
  if (up) return;
  // Break every established circuit whose endpoints are no longer
  // mutually reachable.
  for (auto& [id, conn] : conns_) {
    if (conn.dead || !conn.established) continue;
    if (!Route(conn.a.addr.host, conn.b.addr.host)) {
      BreakConn(conn, kInvalidHost, CloseReason::kNetBroken);
    }
  }
}

void Network::SetHostUp(HostId h, bool up) {
  PPM_CHECK(h < hosts_.size());
  if (hosts_[h].up == up) return;
  hosts_[h].up = up;
  if (up) return;
  // Crash: every bind on the host vanishes; circuits touching it break.
  for (auto it = listeners_.begin(); it != listeners_.end();) {
    it = (it->first.host == h) ? listeners_.erase(it) : std::next(it);
  }
  for (auto it = dgram_binds_.begin(); it != dgram_binds_.end();) {
    it = (it->first.host == h) ? dgram_binds_.erase(it) : std::next(it);
  }
  for (auto it = pending_connects_.begin(); it != pending_connects_.end();) {
    auto conn_it = conns_.find(it->first);
    bool mine = conn_it != conns_.end() && conn_it->second.a.addr.host == h;
    if (mine) {
      sim_.Cancel(it->second.timeout_ev);
      ConnId id = it->first;
      it = pending_connects_.erase(it);
      Conn& conn = conn_it->second;
      conn.dead = true;
      if (conn.b.open) {
        // The acceptor already opened its endpoint for this handshake;
        // marking the conn dead here would make the BreakConn sweep
        // below skip it and leave the acceptor half-open forever.
        ScheduleBreakNotice(id, /*notify_a=*/false, /*notify_b=*/true,
                            CloseReason::kPeerCrash, /*reap_after=*/true);
      } else {
        conns_.erase(conn_it);
      }
    } else {
      ++it;
    }
  }
  for (auto& [id, conn] : conns_) {
    if (conn.dead) continue;
    if (conn.a.addr.host != h && conn.b.addr.host != h) continue;
    BreakConn(conn, h, CloseReason::kPeerCrash);
  }
}

bool Network::HostUp(HostId h) const {
  PPM_CHECK(h < hosts_.size());
  return hosts_[h].up;
}

void Network::Partition(const std::vector<std::vector<HostId>>& groups) {
  std::unordered_map<HostId, size_t> group_of;
  for (size_t g = 0; g < groups.size(); ++g)
    for (HostId h : groups[g]) group_of[h] = g;
  for (auto& [key, link] : links_) {
    HostId a = static_cast<HostId>(key >> 32);
    HostId b = static_cast<HostId>(key & 0xffffffff);
    auto ia = group_of.find(a);
    auto ib = group_of.find(b);
    bool same = ia != group_of.end() && ib != group_of.end() && ia->second == ib->second;
    if (link.up && !same) {
      SetLinkUp(a, b, false);
    } else if (!link.up && same) {
      SetLinkUp(a, b, true);
    }
  }
}

void Network::Heal() {
  for (auto& [key, link] : links_) {
    if (!link.up) {
      link.up = true;
    }
  }
}

void Network::SetLinkFaults(HostId a, HostId b, LinkFaultProfile profile) {
  LinkRec* link = FindLink(a, b);
  PPM_CHECK_MSG(link != nullptr, "no such link");
  link->faults = profile;
}

void Network::SetAllLinkFaults(LinkFaultProfile profile) {
  for (auto& [key, link] : links_) link.faults = profile;
}

void Network::ClearLinkFaults() { SetAllLinkFaults(LinkFaultProfile{}); }

void Network::BreakConn(Conn& conn, HostId detected_by, CloseReason reason) {
  if (conn.dead) return;
  conn.dead = true;
  ++stats_.conns_broken;
  Counters().conns_broken->Inc();
  CloseCounter(reason)->Inc();
  // The endpoint on a crashed host dies silently (its process is gone);
  // every other open endpoint learns of the break after the detection
  // delay, modelling TCP's retransmission give-up.
  bool notify_a = conn.a.open && conn.a.addr.host != detected_by;
  bool notify_b = conn.b.open && conn.b.addr.host != detected_by;
  if (conn.a.addr.host == detected_by) conn.a.open = false;
  if (conn.b.addr.host == detected_by) conn.b.open = false;
  ScheduleBreakNotice(conn.id, notify_a, notify_b, reason);
}

void Network::ScheduleBreakNotice(ConnId id, bool notify_a, bool notify_b,
                                  CloseReason reason, bool reap_after) {
  sim_.ScheduleIn(params_.break_detection_delay,
                  [this, id, notify_a, notify_b, reason, reap_after] {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (notify_a && conn.a.open) {
      conn.a.open = false;
      if (auto fn = conn.a.cb.on_close) fn(id * 2, reason);
    }
    if (notify_b && conn.b.open) {
      conn.b.open = false;
      if (auto fn = conn.b.cb.on_close) fn(id * 2 + 1, reason);
    }
    if (reap_after) {
      // Re-find: an on_close callback may have opened new circuits and
      // rehashed the map (which invalidates iterators, not references).
      ++stats_.half_open_reaped;
      Counters().half_open_reaped->Inc();
      conns_.erase(id);
    }
  }, "conn-break-notice");
}

// --- circuits ---------------------------------------------------------

void Network::Listen(HostId h, Port p, AcceptFn accept) {
  PPM_CHECK(h < hosts_.size());
  PPM_CHECK_MSG(hosts_[h].up, "listen on crashed host");
  SocketAddr addr{h, p};
  PPM_CHECK_MSG(!listeners_.count(addr), "port already bound: " + ToString(addr));
  listeners_[addr] = std::move(accept);
}

void Network::Unlisten(HostId h, Port p) { listeners_.erase(SocketAddr{h, p}); }

bool Network::HasListener(HostId h, Port p) const {
  return listeners_.count(SocketAddr{h, p}) > 0;
}

Port Network::NextEphemeral(HostId h) {
  Port p = next_ephemeral_[h]++;
  if (next_ephemeral_[h] == 0) next_ephemeral_[h] = kEphemeralBase;  // wrap
  return p;
}

void Network::Connect(HostId from, SocketAddr to, ConnCallbacks cb, ConnectResultFn done) {
  PPM_CHECK(from < hosts_.size());
  if (!hosts_[from].up) return;  // dead caller: drop silently
  ConnId id = next_conn_id_++;
  Conn conn;
  conn.id = id;
  conn.a.addr = SocketAddr{from, NextEphemeral(from)};
  conn.a.cb = std::move(cb);
  conn.b.addr = to;
  conns_[id] = std::move(conn);

  PendingConnect pending;
  pending.conn = id;
  pending.done = std::move(done);
  pending.timeout_ev = sim_.ScheduleIn(params_.connect_timeout, [this, id] {
    auto pit = pending_connects_.find(id);
    if (pit == pending_connects_.end()) return;
    ConnectResultFn done_fn = std::move(pit->second.done);
    pending_connects_.erase(pit);
    ++stats_.connects_timed_out;
    Counters().connect_timeouts->Inc();
    auto cit = conns_.find(id);
    if (cit != conns_.end()) {
      Conn& conn = cit->second;
      conn.dead = true;
      if (conn.b.open) {
        // The acceptor answered the SYN but the SYN-ACK never made it
        // back (dropped, or the route broke mid-handshake).  Its
        // endpoint is half-open: notify it after the usual detection
        // window, then reap the entry — nothing else ever will.
        ScheduleBreakNotice(id, /*notify_a=*/false, /*notify_b=*/true,
                            CloseReason::kNetBroken, /*reap_after=*/true);
      } else {
        // The SYN never reached a listener: no peer state to unwind.
        conns_.erase(cit);
      }
    }
    if (done_fn) done_fn(std::nullopt);
  }, "connect-timeout");
  pending_connects_[id] = std::move(pending);

  Frame syn;
  syn.kind = FrameKind::kSyn;
  syn.src = conns_[id].a.addr;
  syn.dst = to;
  syn.conn = id;
  SendFrame(std::move(syn));
}

bool Network::Send(ConnId handle, std::vector<uint8_t> data) {
  auto it = conns_.find(handle / 2);
  if (it == conns_.end()) return false;
  Conn& conn = it->second;
  Endpoint& self = (handle % 2 == 0) ? conn.a : conn.b;
  Endpoint& peer = (handle % 2 == 0) ? conn.b : conn.a;
  if (!self.open || !conn.established) return false;
  // A broken-but-undetected circuit accepts writes; the bytes vanish in
  // the network, exactly as with TCP before the RST arrives.
  Frame f;
  f.kind = FrameKind::kData;
  f.src = self.addr;
  f.dst = peer.addr;
  f.conn = conn.id;
  f.seq = self.next_send_seq++;
  f.payload = std::move(data);
  SendFrame(std::move(f));
  return true;
}

void Network::Close(ConnId handle) {
  auto it = conns_.find(handle / 2);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  Endpoint& self = (handle % 2 == 0) ? conn.a : conn.b;
  Endpoint& peer = (handle % 2 == 0) ? conn.b : conn.a;
  if (!self.open) return;
  self.open = false;
  CloseCounter(CloseReason::kLocalClose)->Inc();
  if (conn.established && !conn.dead) {
    Frame fin;
    fin.kind = FrameKind::kFin;
    fin.src = self.addr;
    fin.dst = peer.addr;
    fin.conn = conn.id;
    SendFrame(std::move(fin));
  }
  if (!peer.open) conn.dead = true;
}

void Network::Abort(ConnId handle) {
  auto it = conns_.find(handle / 2);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  Endpoint& self = (handle % 2 == 0) ? conn.a : conn.b;
  Endpoint& peer = (handle % 2 == 0) ? conn.b : conn.a;
  if (!self.open) return;
  self.open = false;
  // Deliberately leave self.cb in place: this very call may be running
  // inside one of those callbacks, and the open flag already guarantees
  // it will never be invoked again.
  if (peer.open && conn.established && !conn.dead) {
    ++stats_.conns_broken;
    Counters().conns_broken->Inc();
    CloseCounter(CloseReason::kPeerCrash)->Inc();
    ScheduleBreakNotice(conn.id, /*notify_a=*/(&peer == &conn.a),
                        /*notify_b=*/(&peer == &conn.b), CloseReason::kPeerCrash);
  }
  conn.dead = true;
}

bool Network::ConnAlive(ConnId handle) const {
  auto it = conns_.find(handle / 2);
  if (it == conns_.end()) return false;
  const Endpoint& self = (handle % 2 == 0) ? it->second.a : it->second.b;
  return self.open && it->second.established;
}

std::optional<std::pair<SocketAddr, SocketAddr>> Network::ConnEndpoints(ConnId handle) const {
  auto it = conns_.find(handle / 2);
  if (it == conns_.end()) return std::nullopt;
  const Conn& conn = it->second;
  if (handle % 2 == 0) return std::make_pair(conn.a.addr, conn.b.addr);
  return std::make_pair(conn.b.addr, conn.a.addr);
}

std::vector<ConnId> Network::ConnsTouching(HostId h) const {
  std::vector<ConnId> out;
  for (const auto& [id, conn] : conns_) {
    if (conn.dead || !conn.established) continue;
    if (conn.a.addr.host == h && conn.a.open) out.push_back(id * 2);
    if (conn.b.addr.host == h && conn.b.open) out.push_back(id * 2 + 1);
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t Network::ListenerCount(HostId h) const {
  size_t n = 0;
  for (const auto& [addr, fn] : listeners_) n += (addr.host == h);
  return n;
}

size_t Network::DgramBindCount(HostId h) const {
  size_t n = 0;
  for (const auto& [addr, fn] : dgram_binds_) n += (addr.host == h);
  return n;
}

size_t Network::HalfOpenConnCount(HostId h) const {
  // Established entries linger after close by design (ids are never
  // reused); what must NOT linger is a handshake that concluded without
  // establishing — those are reaped on timeout/refusal/crash.  A
  // not-yet-expired pending connect is a legitimate transient.
  size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (conn.established) continue;
    if (pending_connects_.count(id)) continue;
    if (conn.a.addr.host == h || conn.b.addr.host == h) ++n;
  }
  return n;
}

// --- datagrams ----------------------------------------------------------

void Network::BindDgram(HostId h, Port p, DgramFn fn) {
  SocketAddr addr{h, p};
  PPM_CHECK_MSG(!dgram_binds_.count(addr), "dgram port already bound");
  dgram_binds_[addr] = std::move(fn);
}

void Network::UnbindDgram(HostId h, Port p) { dgram_binds_.erase(SocketAddr{h, p}); }

void Network::SendDgram(HostId from, Port from_port, SocketAddr to,
                        std::vector<uint8_t> data) {
  if (from >= hosts_.size() || !hosts_[from].up) return;
  Frame f;
  f.kind = FrameKind::kDgram;
  f.src = SocketAddr{from, from_port};
  f.dst = to;
  f.payload = std::move(data);
  SendFrame(std::move(f));
}

// --- frame plumbing -----------------------------------------------------

const char* Network::FrameClass(const Frame& f) const {
  switch (f.kind) {
    case FrameKind::kSyn: return "ctl.syn";
    case FrameKind::kSynAck: return "ctl.synack";
    case FrameKind::kFin: return "ctl.fin";
    case FrameKind::kRst: return "ctl.rst";
    case FrameKind::kDgram: return "dgram";
    case FrameKind::kData:
      return classify_ ? classify_(f.payload.data(), f.payload.size()) : "data";
  }
  return "data";
}

void Network::CountOpFrame(const Frame& f, size_t wire_bytes) {
  OpCounterSet& c = OpCounters(FrameClass(f));
  c.frames->Inc();
  if (wire_bytes > 0) c.bytes->Inc(wire_bytes);
}

void Network::SendFrame(Frame f) {
  ++stats_.frames_sent;
  stats_.bytes_sent += f.payload.size() + kFrameHeaderBytes;
  Counters().frames_sent->Inc();
  Counters().bytes_sent->Inc(f.payload.size() + kFrameHeaderBytes);
  CountOpFrame(f, f.payload.size() + kFrameHeaderBytes);
  auto path = Route(f.src.host, f.dst.host);
  if (!path) {
    ++stats_.frames_dropped;
    Counters().frames_dropped->Inc();
    return;
  }
  f.path = std::move(*path);
  f.hop_index = 0;
  f.route.clear();
  f.route.push_back(f.src.host);
  if (f.path.size() == 1) {
    // Local delivery: no wire, but keep it asynchronous so the event
    // order matches the remote case.
    Frame frame = std::move(f);
    sim_.ScheduleIn(0, [this, frame = std::move(frame)]() mutable {
      DeliverFrame(std::move(frame));
    }, "frame-local");
    return;
  }
  ForwardFrame(std::move(f));
}

void Network::ForwardFrame(Frame f) {
  HostId u = f.path[f.hop_index];
  HostId v = f.path[f.hop_index + 1];
  if (!hosts_[u].up) {
    ++stats_.frames_dropped;
    Counters().frames_dropped->Inc();
    return;
  }
  LinkRec* link = FindLink(u, v);
  if (!link || !link->up) {
    ++stats_.frames_dropped;
    Counters().frames_dropped->Inc();
    if (link) link->drops_counter->Inc();
    return;
  }
  if (link->faults.active()) {
    sim::Rng& rng = sim_.rng();
    if (link->faults.drop > 0 && rng.Chance(link->faults.drop)) {
      ++stats_.frames_dropped;
      ++stats_.faults_dropped;
      Counters().frames_dropped->Inc();
      FaultCounters().dropped->Inc();
      link->drops_counter->Inc();
      // A dropped circuit frame is unrecoverable (there is no
      // retransmission), so the circuit's FIFO contract is already
      // broken: the receiver would wedge on the sequence gap forever,
      // silently if the stream then goes idle.  Declare the break now,
      // after the usual detection window, so both ends learn and can
      // re-establish — the analogue of TCP giving up on a link this bad.
      if (f.kind == FrameKind::kData || f.kind == FrameKind::kFin) {
        const ConnId id = f.conn;
        sim_.ScheduleIn(params_.break_detection_delay, [this, id] {
          auto it = conns_.find(id);
          if (it == conns_.end() || it->second.dead) return;
          BreakConn(it->second, kInvalidHost, CloseReason::kNetBroken);
        }, "circuit-drop-break");
      }
      return;
    }
    if (link->faults.duplicate > 0 && rng.Chance(link->faults.duplicate)) {
      // The duplicate is a real extra frame: it occupies the wire and is
      // counted as sent, so `sent >= delivered + dropped` still holds.
      // Mirrored in the per-opcode accounting (frame but no bytes, like
      // the totals) so net.op.* keeps summing to net.frames.sent.
      ++stats_.frames_sent;
      ++stats_.faults_duplicated;
      Counters().frames_sent->Inc();
      FaultCounters().duplicated->Inc();
      CountOpFrame(f, 0);
      TransmitOnLink(*link, u, v, f);
    }
  }
  TransmitOnLink(*link, u, v, std::move(f));
}

void Network::TransmitOnLink(LinkRec& link, HostId u, HostId v, Frame f) {
  sim::SimDuration extra = 0;
  if (link.faults.active()) {
    sim::Rng& rng = sim_.rng();
    if (link.faults.corrupt > 0 && !f.payload.empty() && rng.Chance(link.faults.corrupt)) {
      size_t idx = static_cast<size_t>(rng.Below(f.payload.size()));
      f.payload[idx] ^= static_cast<uint8_t>(rng.Range(1, 255));
      ++stats_.faults_corrupted;
      FaultCounters().corrupted->Inc();
    }
    if (link.faults.reorder > 0 && link.faults.reorder_delay_max > 0 &&
        rng.Chance(link.faults.reorder)) {
      // The extra delay does not occupy the wire, so a later frame can
      // overtake this one.
      extra = static_cast<sim::SimDuration>(rng.Range(1, link.faults.reorder_delay_max));
      ++stats_.faults_reordered;
      FaultCounters().reordered->Inc();
    }
  }
  link.frames_counter->Inc();
  link.bytes_counter->Inc(f.payload.size() + kFrameHeaderBytes);
  int dir = (u < v) ? 0 : 1;
  sim::SimTime now = sim_.Now();
  sim::SimDuration tx =
      static_cast<sim::SimDuration>(f.payload.size() + kFrameHeaderBytes) * link.params.per_byte;
  sim::SimTime start = std::max(now, link.busy_until[dir]);
  sim::SimTime arrival = start + static_cast<sim::SimTime>(tx + link.params.latency + extra);
  link.busy_until[dir] = start + static_cast<sim::SimTime>(tx);

  Frame frame = std::move(f);
  frame.route.push_back(v);
  frame.hop_index += 1;
  sim_.ScheduleAt(arrival, [this, frame = std::move(frame)]() mutable {
    HostId here = frame.path[frame.hop_index];
    if (!hosts_[here].up) {
      ++stats_.frames_dropped;
      Counters().frames_dropped->Inc();
      return;
    }
    if (frame.hop_index + 1 == frame.path.size()) {
      DeliverFrame(std::move(frame));
    } else {
      ForwardFrame(std::move(frame));
    }
  }, "frame-hop");
}

Network::Endpoint* Network::EndpointAt(Conn& conn, HostId h, Port p) {
  if (conn.a.addr.host == h && conn.a.addr.port == p) return &conn.a;
  if (conn.b.addr.host == h && conn.b.addr.port == p) return &conn.b;
  return nullptr;
}

void Network::DeliverData(Conn& conn, Endpoint& self, Frame f) {
  // Duplicate suppression: chaos duplication (and only it) can replay a
  // sequence number that was already delivered or is already queued.
  // Discarding here keeps the circuit's exactly-once FIFO contract.
  if (f.seq < self.next_recv_seq) {
    ++stats_.frames_dropped;
    ++stats_.dup_frames_discarded;
    Counters().frames_dropped->Inc();
    Counters().dup_suppressed->Inc();
    return;
  }
  // FIFO reassembly: per-link serialization normally preserves order,
  // but a reorder fault or a route change mid-stream (after a heal) can
  // reorder frames.
  if (f.seq != self.next_recv_seq) {
    // A gap can be a reordered frame still in flight — or a frame a drop
    // fault ate, which will never arrive: the circuit would wedge
    // silently, since there is no retransmission.  Give the gap one
    // break-detection window to fill; if the receive cursor has not
    // advanced past it by then, declare the circuit broken so both ends
    // learn (TCP's retransmission give-up).
    const bool is_a = (&self == &conn.a);
    const ConnId id = conn.id;
    const uint64_t stalled_at = self.next_recv_seq;
    sim_.ScheduleIn(params_.break_detection_delay,
                    [this, id, is_a, stalled_at] {
                      auto cit = conns_.find(id);
                      if (cit == conns_.end() || cit->second.dead) return;
                      Endpoint& ep = is_a ? cit->second.a : cit->second.b;
                      if (!ep.open || ep.next_recv_seq > stalled_at) return;
                      // Neither endpoint crashed: notify both sides.
                      BreakConn(cit->second, kInvalidHost,
                                CloseReason::kNetBroken);
                    },
                    "circuit-gap-stall");
    if (!self.reorder.emplace(f.seq, std::move(f)).second) {
      ++stats_.frames_dropped;
      ++stats_.dup_frames_discarded;
      Counters().frames_dropped->Inc();
      Counters().dup_suppressed->Inc();
    }
    return;
  }
  ConnId handle = (&self == &conn.a) ? conn.id * 2 : conn.id * 2 + 1;
  ++stats_.frames_delivered;
  Counters().frames_delivered->Inc();
  if (auto fn = self.cb.on_data) fn(handle, f.payload);
  self.next_recv_seq++;
  while (true) {
    auto it = self.reorder.find(self.next_recv_seq);
    if (it == self.reorder.end()) break;
    Frame next = std::move(it->second);
    self.reorder.erase(it);
    ++stats_.frames_delivered;
    Counters().frames_delivered->Inc();
    if (auto fn = self.cb.on_data) fn(handle, next.payload);
    self.next_recv_seq++;
  }
}

void Network::DeliverFrame(Frame f) {
  switch (f.kind) {
    case FrameKind::kDgram: {
      auto it = dgram_binds_.find(f.dst);
      if (it == dgram_binds_.end()) {
        ++stats_.frames_dropped;
        Counters().frames_dropped->Inc();
        return;
      }
      ++stats_.frames_delivered;
      Counters().frames_delivered->Inc();
      // Copy before invoking: the handler may unbind itself (one-shot
      // reply sockets do), which would destroy the closure mid-call.
      DgramFn fn = it->second;
      fn(f.src, f.payload, f.route);
      return;
    }
    case FrameKind::kSyn: {
      auto cit = conns_.find(f.conn);
      if (cit == conns_.end() || cit->second.dead) return;
      Conn& conn = cit->second;
      // A duplicated SYN must not re-run the accept path (it would
      // clobber the acceptor state or answer a refused connect twice).
      if (conn.syn_seen) return;
      conn.syn_seen = true;
      auto lit = listeners_.find(f.dst);
      bool accepted = false;
      if (lit != listeners_.end()) {
        AcceptFn accept_fn = lit->second;  // may Unlisten itself
        auto cb = accept_fn(conn.id * 2 + 1, f.src);
        if (cb) {
          conn.b.cb = std::move(*cb);
          conn.b.open = true;
          accepted = true;
        }
      }
      Frame reply;
      reply.kind = accepted ? FrameKind::kSynAck : FrameKind::kRst;
      reply.src = f.dst;
      reply.dst = f.src;
      reply.conn = f.conn;
      // The accepting host pays a fixed socket-setup CPU cost before the
      // SYN-ACK leaves (paper: authentication happens at channel setup).
      ConnId id = f.conn;
      sim_.ScheduleIn(params_.handshake_cpu, [this, reply = std::move(reply), id]() mutable {
        auto it2 = conns_.find(id);
        if (it2 == conns_.end()) return;
        SendFrame(std::move(reply));
      }, "syn-reply");
      return;
    }
    case FrameKind::kSynAck: {
      auto pit = pending_connects_.find(f.conn);
      auto cit = conns_.find(f.conn);
      if (pit == pending_connects_.end() || cit == conns_.end()) {
        // A duplicated SYN-ACK for an already-established circuit is
        // ignored; answering with a RST would kill the live circuit.
        if (cit != conns_.end() && cit->second.established) return;
        // Initiator timed out already; tell the acceptor to clean up.
        Frame rst;
        rst.kind = FrameKind::kRst;
        rst.src = f.dst;
        rst.dst = f.src;
        rst.conn = f.conn;
        SendFrame(std::move(rst));
        return;
      }
      sim_.Cancel(pit->second.timeout_ev);
      ConnectResultFn done_fn = std::move(pit->second.done);
      pending_connects_.erase(pit);
      Conn& conn = cit->second;
      conn.established = true;
      conn.a.open = true;
      ++stats_.conns_opened;
      Counters().conns_opened->Inc();
      if (done_fn) done_fn(conn.id * 2);
      return;
    }
    case FrameKind::kRst: {
      auto pit = pending_connects_.find(f.conn);
      if (pit != pending_connects_.end()) {
        sim_.Cancel(pit->second.timeout_ev);
        ConnectResultFn done_fn = std::move(pit->second.done);
        pending_connects_.erase(pit);
        auto cit = conns_.find(f.conn);
        if (cit != conns_.end()) {
          cit->second.dead = true;
          // Refused connect: the acceptor never opened (a RST means the
          // accept path declined), so the entry can go right away.
          if (!cit->second.b.open) conns_.erase(cit);
        }
        if (done_fn) done_fn(std::nullopt);
        return;
      }
      auto cit = conns_.find(f.conn);
      if (cit == conns_.end()) return;
      Conn& conn = cit->second;
      Endpoint* self = EndpointAt(conn, f.dst.host, f.dst.port);
      if (!self || !self->open) return;
      self->open = false;
      conn.dead = true;
      CloseCounter(CloseReason::kNetBroken)->Inc();
      ConnId handle = (self == &conn.a) ? conn.id * 2 : conn.id * 2 + 1;
      if (auto fn = self->cb.on_close) fn(handle, CloseReason::kNetBroken);
      return;
    }
    case FrameKind::kData: {
      auto cit = conns_.find(f.conn);
      Endpoint* self = nullptr;
      if (cit != conns_.end()) {
        self = EndpointAt(cit->second, f.dst.host, f.dst.port);
      }
      if (!self || !self->open) {
        // Data for a circuit this endpoint no longer holds — typically
        // the FIN that closed it was lost on a faulty link.  Answer RST
        // so the sender tears down its half instead of feeding a black
        // hole forever (TCP's data-after-close behaviour).
        Frame rst;
        rst.kind = FrameKind::kRst;
        rst.src = f.dst;
        rst.dst = f.src;
        rst.conn = f.conn;
        SendFrame(std::move(rst));
        return;
      }
      DeliverData(cit->second, *self, std::move(f));
      return;
    }
    case FrameKind::kFin: {
      auto cit = conns_.find(f.conn);
      if (cit == conns_.end()) return;
      Conn& conn = cit->second;
      Endpoint* self = EndpointAt(conn, f.dst.host, f.dst.port);
      if (!self || !self->open) return;
      self->open = false;
      conn.dead = true;
      CloseCounter(CloseReason::kPeerClose)->Inc();
      ConnId handle = (self == &conn.a) ? conn.id * 2 : conn.id * 2 + 1;
      if (auto fn = self->cb.on_close) fn(handle, CloseReason::kPeerClose);
      return;
    }
  }
}

}  // namespace ppm::net

#include "net/rdp.h"

#include "obs/health.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace ppm::net {

namespace {
constexpr uint8_t kRdpMagic = 0xd9;
constexpr uint8_t kKindData = 1;
constexpr uint8_t kKindAck = 2;

std::vector<uint8_t> EncodeData(uint64_t seq, const std::vector<uint8_t>& payload) {
  util::ByteWriter w;
  w.U8(kRdpMagic);
  w.U8(kKindData);
  w.U64(seq);
  w.Blob(payload);
  return w.Take();
}

std::vector<uint8_t> EncodeAck(uint64_t seq) {
  util::ByteWriter w;
  w.U8(kRdpMagic);
  w.U8(kKindAck);
  w.U64(seq);
  return w.Take();
}
}  // namespace

RdpEndpoint::RdpEndpoint(Network& network, HostId host, Port port, RecvFn on_recv,
                         RdpParams params)
    : net_(network), host_(host), port_(port), on_recv_(std::move(on_recv)),
      params_(params) {
  net_.BindDgram(host_, port_, [this](SocketAddr from, const std::vector<uint8_t>& data,
                                      const std::vector<HostId>&) {
    OnDgram(from, data);
  });
}

RdpEndpoint::~RdpEndpoint() { Close(); }

void RdpEndpoint::Close() {
  if (closed_) return;
  closed_ = true;
  if (net_.HostUp(host_)) net_.UnbindDgram(host_, port_);
  for (auto& [key, peer] : peers_) {
    net_.simulator().Cancel(peer.retransmit_ev);
    peer.retransmit_ev = sim::kInvalidEventId;
    // Fail everything still queued so callers are not left hanging.
    while (!peer.queue.empty()) {
      Outgoing out = std::move(peer.queue.front());
      peer.queue.pop_front();
      if (out.done) out.done(false);
    }
  }
}

void RdpEndpoint::SendReliable(SocketAddr dst, std::vector<uint8_t> payload, SentFn done) {
  PPM_CHECK_MSG(!closed_, "send on closed RDP endpoint");
  ++stats_.sent;
  PeerKey key{dst};
  PeerState& peer = peers_[key];
  peer.queue.push_back(Outgoing{std::move(payload), std::move(done)});
  PumpPeer(key, peer);
}

void RdpEndpoint::PumpPeer(const PeerKey& key, PeerState& peer) {
  if (closed_ || peer.in_flight || peer.queue.empty()) return;
  peer.in_flight = true;
  peer.retries_left = params_.max_retries;
  TransmitHead(key, peer);
}

void RdpEndpoint::TransmitHead(const PeerKey& key, PeerState& peer) {
  if (closed_ || !peer.in_flight || peer.queue.empty()) return;
  net_.SendDgram(host_, port_, key.addr, EncodeData(peer.next_send_seq,
                                                    peer.queue.front().payload));
  PeerKey key_copy = key;
  peer.retransmit_ev = net_.simulator().ScheduleIn(
      params_.retransmit_timeout,
      [this, key_copy] {
        if (closed_) return;
        auto it = peers_.find(key_copy);
        if (it == peers_.end() || !it->second.in_flight) return;
        PeerState& p = it->second;
        p.retransmit_ev = sim::kInvalidEventId;
        if (p.retries_left-- <= 0) {
          FailHead(key_copy, p);
          return;
        }
        ++stats_.retransmits;
        obs::HealthMonitor::Instance().RateEvent("net.rdp.retransmit");
        TransmitHead(key_copy, p);
      },
      "rdp-retransmit");
}

void RdpEndpoint::FailHead(const PeerKey& key, PeerState& peer) {
  ++stats_.failures;
  Outgoing out = std::move(peer.queue.front());
  peer.queue.pop_front();
  peer.in_flight = false;
  // The message is abandoned but the sequence number is burnt, so a
  // late-arriving stale ACK cannot be mistaken for the next message's.
  peer.next_send_seq++;
  if (out.done) out.done(false);
  PumpPeer(key, peer);
}

void RdpEndpoint::HandleAck(const PeerKey& key, uint64_t seq) {
  auto it = peers_.find(key);
  if (it == peers_.end()) return;
  PeerState& peer = it->second;
  if (!peer.in_flight || seq != peer.next_send_seq) return;  // stale ack
  net_.simulator().Cancel(peer.retransmit_ev);
  peer.retransmit_ev = sim::kInvalidEventId;
  Outgoing out = std::move(peer.queue.front());
  peer.queue.pop_front();
  peer.in_flight = false;
  peer.next_send_seq++;
  if (out.done) out.done(true);
  PumpPeer(key, peer);
}

void RdpEndpoint::OnDgram(SocketAddr from, const std::vector<uint8_t>& data) {
  if (closed_) return;
  util::ByteReader r(data);
  auto magic = r.U8();
  auto kind = r.U8();
  auto seq = r.U64();
  if (!magic || *magic != kRdpMagic || !kind || !seq) return;
  PeerKey key{from};
  if (*kind == kKindAck) {
    HandleAck(key, *seq);
    return;
  }
  if (*kind != kKindData) return;
  auto payload = r.Blob();
  if (!payload) return;
  PeerState& peer = peers_[key];
  // Always acknowledge: the sender may be retransmitting because our
  // previous ACK was lost.
  ++stats_.acks_sent;
  net_.SendDgram(host_, port_, from, EncodeAck(*seq));
  if (*seq < peer.next_recv_seq) {
    ++stats_.duplicates;
    return;
  }
  if (*seq > peer.next_recv_seq) {
    // Stop-and-wait sender never runs ahead; a gap means the peer
    // restarted.  Resynchronize to its new stream.
    peer.next_recv_seq = *seq;
  }
  peer.next_recv_seq++;
  ++stats_.delivered;
  if (on_recv_) on_recv_(from, *payload);
}

}  // namespace ppm::net

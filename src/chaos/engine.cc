#include "chaos/engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "core/lpm.h"
#include "core/wire.h"
#include "host/loadgen.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "sim/rng.h"
#include "tools/client.h"

namespace ppm::chaos {

namespace {

// Advances the simulation until `pred()` holds, up to `horizon` from now.
template <typename Pred>
bool RunUntil(core::Cluster& cluster, Pred pred, sim::SimDuration horizon,
              sim::SimDuration step = sim::Millis(10)) {
  sim::SimTime deadline =
      cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!pred()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(step);
  }
  return true;
}

// The engine's action alphabet; a plan's weights select from it.
enum class Action : uint8_t {
  kCreate,
  kSignal,
  kSnapshot,
  kBarrier,
  kEnvarSet,
  kKillLpm,
  kCrashHost,
  kRebootHost,
  kPartition,
  kHeal,
};

struct WeightedAction {
  Action action;
  uint32_t weight;
};

// One barrier round's parties and their (aligned) terminal replies.
struct BarrierRound {
  std::vector<std::string> hosts;
  std::vector<std::optional<core::BarrierEnterResp>> replies;
};

std::vector<WeightedAction> ActionTable(const ChaosPlan& plan) {
  std::vector<WeightedAction> table;
  auto add = [&](Action a, uint32_t w) {
    if (w > 0) table.push_back({a, w});
  };
  add(Action::kCreate, plan.workload.create);
  add(Action::kSignal, plan.workload.signal);
  add(Action::kSnapshot, plan.workload.snapshot);
  add(Action::kBarrier, plan.workload.barrier);
  add(Action::kEnvarSet, plan.workload.envar_set);
  add(Action::kKillLpm, plan.faults.kill_lpm);
  add(Action::kCrashHost, plan.faults.crash_host);
  add(Action::kRebootHost, plan.faults.reboot_host);
  add(Action::kPartition, plan.faults.partition);
  add(Action::kHeal, plan.faults.heal);
  return table;
}

// Quiescence predicate of the recovery phase: with the network whole, no
// LPM may still be dying and at most one may hold the CCS role.
// (kRecovering is a legitimate stable state while a top-priority recovery
// host simply has no LPM yet, so it does not block convergence.)
bool Quiet(core::Cluster& cluster, const ChaosPlan& plan) {
  size_t ccs = 0;
  for (const std::string& h : plan.hosts) {
    if (core::Lpm* lpm = cluster.FindLpm(h, kChaosUid)) {
      if (lpm->mode() == core::LpmMode::kDying) return false;
      // A recovery walk begun under the partition can straddle the heal
      // and only afterwards conclude "nobody reachable", tipping the LPM
      // into kDying; convergence must not be declared over its head.
      if (lpm->recovery_in_progress()) return false;
      if (lpm->is_ccs()) ++ccs;
    }
  }
  return ccs <= 1;
}

}  // namespace

core::ClusterConfig MakeClusterConfig(const ChaosPlan& plan, uint64_t seed) {
  core::ClusterConfig config;
  config.seed = seed;
  config.lpm.time_to_die = plan.time_to_die;
  config.lpm.retry_interval = plan.retry_interval;
  config.lpm.probe_interval = plan.probe_interval;
  config.lpm.durable_store = plan.durable_store;
  config.lpm.store_group_commit = plan.store_group_commit;
  config.lpm.store_checkpoint_every = plan.store_checkpoint_every;
  return config;
}

void SetupCluster(core::Cluster& cluster, const ChaosPlan& plan) {
  for (const std::string& h : plan.hosts) cluster.AddHost(h);
  cluster.Ethernet(plan.hosts);
  cluster.AddUserEverywhere(kChaosUser, kChaosUid);
  cluster.TrustUserEverywhere(kChaosUser, kChaosUid);
  cluster.SetRecoveryList(kChaosUid, plan.recovery);
}

std::string ChaosOutcome::Summary() const {
  std::ostringstream os;
  os << "chaos run: plan=" << plan_name << " seed=" << seed
     << "  [replay: RunChaos(" << seed << ", " << plan_name << " plan)]\n";
  os << "  workload: creates=" << creates_ok << " signals=" << signals_sent
     << " snapshots=" << snapshots_completed << "/" << snapshots_attempted
     << " barriers=" << barrier_releases << "/" << barrier_parties
     << " envar-sets=" << envar_sets_ok << "\n";
  os << "  faults: crashes=" << host_crashes << " reboots=" << host_reboots
     << " lpm-kills=" << lpm_kills << " partitions=" << partitions
     << " heals=" << heals << "\n";
  os << "  link: drop=" << frames_drop_injected
     << " dup=" << frames_dup_injected << " reorder=" << frames_reorder_injected
     << " corrupt=" << corrupt_injected << " detected=" << corrupt_detected
     << "\n";
  if (converged) {
    os << "  converged in " << convergence_time / 1000 << " ms";
  } else {
    os << "  DID NOT CONVERGE within settle";
  }
  os << ", verify " << (verify_ok ? "ok" : "FAILED") << "\n";
  for (const InvariantViolation& v : violations) {
    os << "  VIOLATION [" << v.name << "] " << v.detail << "\n";
  }
  return os.str();
}

ChaosOutcome RunChaosPlan(uint64_t seed, const ChaosPlan& plan) {
  core::Cluster cluster(MakeClusterConfig(plan, seed));
  SetupCluster(cluster, plan);
  return RunChaosPlan(cluster, seed, plan);
}

ChaosOutcome RunChaosPlan(core::Cluster& cluster, uint64_t seed,
                          const ChaosPlan& plan) {
  ChaosOutcome out;
  out.seed = seed;
  out.plan_name = plan.name;

  net::Network& net = cluster.network();
  sim::Rng& rng = cluster.simulator().rng();

  // Baselines for delta accounting: NetStats belong to this cluster, but
  // the corruption-detection counter is registry-global and survives
  // earlier runs in the same process (seed sweeps, benches).
  const net::NetStats start_stats = net.stats();
  obs::Counter* corrupt_counter =
      obs::Registry::Instance().GetCounter("net.corrupt_frames");
  const uint64_t start_detected = corrupt_counter->value();

  cluster.RunFor(sim::Millis(10));  // let inetd come up everywhere
  if (plan.link_faults.active()) net.SetAllLinkFaults(plan.link_faults);

  // Noisy neighbor: pin CPU hogs on the last host for the whole run.
  // Duty 1.0 schedules no toggle events, so the generator's lifetime is
  // simply this scope (Stop() kills the hogs, generation-guarded against
  // an intervening crash of the host).
  std::optional<host::LoadGenerator> noisy;
  if (plan.noisy_procs > 0) {
    noisy.emplace(cluster.host(plan.hosts.back()), kChaosUid,
                  static_cast<int>(plan.noisy_procs), /*duty=*/1.0);
  }

  auto random_host = [&]() -> const std::string& {
    return plan.hosts[rng.Below(plan.hosts.size())];
  };

  // The workload tool, re-established whenever its host dies.  The body
  // pointer is owned by the process table, so it is re-validated through
  // the kernel before every use.
  std::string tool_host;
  host::Pid tool_pid = host::kNoPid;
  auto current_tool = [&]() -> tools::PpmClient* {
    if (tool_host.empty()) return nullptr;
    host::Host& h = cluster.host(tool_host);
    if (!h.up()) return nullptr;
    host::Process* proc = h.kernel().Find(tool_pid);
    if (!proc || !proc->alive()) return nullptr;
    auto* client = dynamic_cast<tools::PpmClient*>(proc->body.get());
    return (client && client->connected()) ? client : nullptr;
  };
  auto ensure_tool = [&]() -> tools::PpmClient* {
    if (tools::PpmClient* alive = current_tool()) return alive;
    tool_host.clear();
    for (const std::string& h : plan.hosts) {
      if (!cluster.host(h).up()) continue;
      tools::PpmClient* candidate =
          tools::SpawnTool(cluster.host(h), kChaosUser, kChaosUid, "chaos");
      // Response holders live on the heap: a request the wait below gives
      // up on can still fail (and call back) much later, e.g. when the
      // carrying circuit finally breaks.
      auto started = std::make_shared<std::optional<bool>>();
      candidate->Start(
          [started](bool success, std::string) { *started = success; });
      RunUntil(cluster, [&] { return started->has_value(); },
               sim::Seconds(30));
      if (started->value_or(false)) {
        tool_host = h;
        tool_pid = candidate->pid();
        return candidate;
      }
    }
    return nullptr;
  };

  // One barrier round: an ephemeral tool on each up host of
  // `party_hosts` enters <"chaos.bar", epoch> with expected = party
  // count, then the round runs until every enter has a terminal reply —
  // released, timed out with stragglers, or the member LPM's local
  // safety failure when its CCS is unreachable (a parked wait cannot
  // outlive twice the barrier timeout).  Sessions are torn down before
  // returning so no parked waiter survives the round.
  uint64_t barrier_epoch = 0;
  auto barrier_round =
      [&](const std::vector<std::string>& party_hosts) -> BarrierRound {
    BarrierRound round;
    const uint64_t epoch = ++barrier_epoch;
    std::vector<host::Pid> pids;
    std::vector<tools::PpmClient*> clients;
    for (const std::string& h : party_hosts) {
      if (!cluster.host(h).up()) continue;
      tools::PpmClient* t =
          tools::SpawnTool(cluster.host(h), kChaosUser, kChaosUid, "chaos-bar");
      auto started = std::make_shared<std::optional<bool>>();
      t->Start([started](bool success, std::string) { *started = success; });
      RunUntil(cluster, [&] { return started->has_value(); }, sim::Seconds(30));
      if (started->value_or(false)) {
        round.hosts.push_back(h);
        pids.push_back(t->pid());
        clients.push_back(t);
      }
    }
    if (round.hosts.empty()) return round;
    auto resps = std::make_shared<
        std::vector<std::optional<core::BarrierEnterResp>>>(round.hosts.size());
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->BarrierEnter(
          "chaos.bar", epoch, static_cast<uint32_t>(clients.size()),
          [resps, i](const core::BarrierEnterResp& r) { (*resps)[i] = r; });
      ++out.barrier_parties;
    }
    RunUntil(cluster,
             [&] {
               for (const auto& r : *resps)
                 if (!r.has_value()) return false;
               return true;
             },
             sim::Seconds(90));
    round.replies = *resps;
    for (size_t i = 0; i < round.hosts.size(); ++i) {
      if (round.replies[i] && round.replies[i]->ok &&
          round.replies[i]->released) {
        ++out.barrier_releases;
      }
      // Tear the session down only through a re-validated pointer: the
      // party's host may have lost its tool while the wait was parked.
      host::Host& h = cluster.host(round.hosts[i]);
      if (!h.up()) continue;
      host::Process* proc = h.kernel().Find(pids[i]);
      if (!proc || !proc->alive()) continue;
      auto* c = dynamic_cast<tools::PpmClient*>(proc->body.get());
      if (c && c->connected()) c->Disconnect();
    }
    // Drain the release fan-out: the CCS's per-member BarrierReleaseReq
    // forwards resolve on the members' acks, which land a beat after the
    // waiters' own replies.  Bounded, because a forward retrying toward
    // a dead host legitimately outlives the round (its deadline reaps it
    // later).
    RunUntil(cluster,
             [&] {
               for (const std::string& h : plan.hosts) {
                 core::Lpm* lpm = cluster.FindLpm(h, kChaosUid);
                 if (lpm && lpm->pending_forward_count() != 0) return false;
               }
               return true;
             },
             sim::Seconds(10));
    return round;
  };

  // --- phase 1: the schedule -------------------------------------------
  const std::vector<WeightedAction> table = ActionTable(plan);
  uint32_t total_weight = 0;
  for (const WeightedAction& wa : table) total_weight += wa.weight;

  std::vector<core::GPid> procs;
  for (size_t step = 0; step < plan.steps && total_weight > 0; ++step) {
    uint64_t roll = rng.Below(total_weight);
    Action action = table.back().action;
    for (const WeightedAction& wa : table) {
      if (roll < wa.weight) {
        action = wa.action;
        break;
      }
      roll -= wa.weight;
    }

    switch (action) {
      case Action::kCreate: {
        if (tools::PpmClient* t = ensure_tool()) {
          const std::string& target = random_host();
          if (cluster.host(target).up()) {
            auto resp = std::make_shared<std::optional<core::CreateResp>>();
            t->CreateProcess(target, "chaos-w", {},
                             [resp](const core::CreateResp& r) { *resp = r; });
            RunUntil(cluster, [&] { return resp->has_value(); },
                     sim::Seconds(30));
            if (*resp && (*resp)->ok) {
              procs.push_back((*resp)->gpid);
              ++out.creates_ok;
            }
          }
        }
        break;
      }
      case Action::kSignal: {
        if (procs.empty()) break;
        if (tools::PpmClient* t = ensure_tool()) {
          const core::GPid& target = procs[rng.Below(procs.size())];
          host::Signal sig = rng.Chance(0.5) ? host::Signal::kSigStop
                                             : host::Signal::kSigKill;
          auto resp = std::make_shared<std::optional<core::SignalResp>>();
          t->Signal(target, sig,
                    [resp](const core::SignalResp& r) { *resp = r; });
          RunUntil(cluster, [&] { return resp->has_value(); },
                   sim::Seconds(30));
          ++out.signals_sent;
        }
        break;
      }
      case Action::kSnapshot: {
        if (tools::PpmClient* t = ensure_tool()) {
          ++out.snapshots_attempted;
          auto resp = std::make_shared<std::optional<core::SnapshotResp>>();
          t->Snapshot([resp](const core::SnapshotResp& r) { *resp = r; });
          RunUntil(cluster, [&] { return resp->has_value(); },
                   sim::Seconds(60));
          if (resp->has_value()) ++out.snapshots_completed;
        }
        break;
      }
      case Action::kBarrier: {
        // Two or three parties on random distinct hosts; whatever mix of
        // release / timeout / unknown the faults produce, the ledgers
        // are judged by group.no_split_release afterwards.
        std::vector<std::string> ups;
        for (const std::string& h : plan.hosts) {
          if (cluster.host(h).up()) ups.push_back(h);
        }
        for (size_t i = ups.size(); i > 1; --i) {
          std::swap(ups[i - 1], ups[rng.Below(i)]);
        }
        size_t parties = std::min<size_t>(ups.size(), 2 + rng.Below(2));
        ups.resize(parties);
        barrier_round(ups);
        break;
      }
      case Action::kEnvarSet: {
        if (tools::PpmClient* t = ensure_tool()) {
          auto resp = std::make_shared<std::optional<core::EnvarSetResp>>();
          t->GenvSet("chaos.env", "step" + std::to_string(step),
                     [resp](const core::EnvarSetResp& r) { *resp = r; });
          RunUntil(cluster, [&] { return resp->has_value(); },
                   sim::Seconds(30));
          if (*resp && (*resp)->ok) ++out.envar_sets_ok;
        }
        break;
      }
      case Action::kKillLpm: {
        const std::string& victim = random_host();
        if (core::Lpm* lpm = cluster.FindLpm(victim, kChaosUid)) {
          cluster.host(victim).kernel().PostSignal(
              lpm->pid(), host::Signal::kSigKill, host::kRootUid);
          ++out.lpm_kills;
        }
        break;
      }
      case Action::kCrashHost: {
        size_t up = 0;
        for (const std::string& h : plan.hosts) up += cluster.host(h).up();
        if (up > plan.min_hosts_up) {
          const std::string& victim = random_host();
          if (cluster.host(victim).up()) {
            cluster.Crash(victim);
            ++out.host_crashes;
          }
        }
        break;
      }
      case Action::kRebootHost: {
        for (const std::string& h : plan.hosts) {
          if (!cluster.host(h).up()) {
            cluster.Reboot(h);
            ++out.host_reboots;
            break;
          }
        }
        break;
      }
      case Action::kPartition: {
        std::vector<net::HostId> left, right;
        for (const std::string& h : plan.hosts) {
          net::HostId id = *net.FindHost(h);
          (rng.Chance(0.5) ? left : right).push_back(id);
        }
        if (!left.empty() && !right.empty()) {
          net.Partition({left, right});
          ++out.partitions;
        }
        break;
      }
      case Action::kHeal: {
        net.Heal();
        ++out.heals;
        break;
      }
    }
    cluster.RunFor(
        static_cast<sim::SimDuration>(rng.Range(plan.min_gap, plan.max_gap)));
  }

  // --- phase 2: heal and converge --------------------------------------
  net.ClearLinkFaults();
  net.Heal();
  for (const std::string& h : plan.hosts) {
    if (!cluster.host(h).up()) cluster.Reboot(h);
  }
  const sim::SimTime heal_at = cluster.simulator().Now();
  out.converged = RunUntil(
      cluster, [&] { return Quiet(cluster, plan); }, plan.settle,
      sim::Seconds(1));
  if (out.converged) {
    out.convergence_time =
        static_cast<sim::SimDuration>(cluster.simulator().Now() - heal_at);
    cluster.RunFor(sim::Seconds(10));  // quiet period before checks
    if (!Quiet(cluster, plan)) {
      out.violations.push_back(
          {"unstable-quiescence",
           "cluster left the quiet state again within 10 s of converging"});
    }
  }

  // --- phase 3: verify end to end --------------------------------------
  out.verify_ok = true;
  for (const std::string& h : plan.hosts) {
    tools::PpmClient* fresh =
        tools::SpawnTool(cluster.host(h), kChaosUser, kChaosUid, "verify");
    auto started = std::make_shared<std::optional<bool>>();
    auto err = std::make_shared<std::string>();
    fresh->Start([started, err](bool success, std::string e) {
      *started = success;
      *err = std::move(e);
    });
    if (!RunUntil(cluster, [&] { return started->has_value(); },
                  sim::Seconds(30)) ||
        !started->value_or(false)) {
      out.verify_ok = false;
      out.violations.push_back(
          {"verify-session", h + ": tool session failed: " + *err});
      continue;
    }

    auto created = std::make_shared<std::optional<core::CreateResp>>();
    fresh->CreateProcess(h, "verify-w", {},
                         [created](const core::CreateResp& r) { *created = r; });
    RunUntil(cluster, [&] { return created->has_value(); }, sim::Seconds(30));
    if (!*created || !(*created)->ok) {
      out.verify_ok = false;
      out.violations.push_back(
          {"verify-create",
           h + ": " + (*created ? (*created)->error : "create hung")});
    } else {
      auto sig = std::make_shared<std::optional<core::SignalResp>>();
      fresh->Signal((*created)->gpid, host::Signal::kSigKill,
                    [sig](const core::SignalResp& r) { *sig = r; });
      RunUntil(cluster, [&] { return sig->has_value(); }, sim::Seconds(30));
      if (!*sig || !(*sig)->ok) {
        out.verify_ok = false;
        out.violations.push_back(
            {"verify-signal",
             h + ": " + (*sig ? (*sig)->error : "signal hung")});
      }
    }
    fresh->Disconnect();
    cluster.RunFor(sim::Millis(50));
  }

  // Verification itself spawned fresh LPMs, each of which may have
  // claimed the coordinator role on first tool contact.  Give them two
  // probe cycles to defer to the recovery-list head, so the sibling
  // graph is stable before snapshots are judged for coverage and the
  // single-CCS invariant is checked.
  cluster.RunFor(plan.probe_interval * 2 + sim::Seconds(5));

  for (const std::string& h : plan.hosts) {
    tools::PpmClient* snapper =
        tools::SpawnTool(cluster.host(h), kChaosUser, kChaosUid, "verify-snap");
    auto started = std::make_shared<std::optional<bool>>();
    snapper->Start(
        [started](bool success, std::string) { *started = success; });
    if (!RunUntil(cluster, [&] { return started->has_value(); },
                  sim::Seconds(30)) ||
        !started->value_or(false)) {
      out.verify_ok = false;
      out.violations.push_back(
          {"verify-session", h + ": snapshot tool session failed"});
      continue;
    }
    auto snap = std::make_shared<std::optional<core::SnapshotResp>>();
    snapper->Snapshot([snap](const core::SnapshotResp& r) { *snap = r; });
    RunUntil(cluster, [&] { return snap->has_value(); }, sim::Seconds(60));
    if (!*snap) {
      out.verify_ok = false;
      out.violations.push_back({"verify-snapshot", h + ": snapshot hung"});
    } else {
      CheckSnapshotCoverage(cluster, kChaosUid, snapper->lpm_host(),
                            (*snap)->records, &out.violations);
    }
    snapper->Disconnect();
    cluster.RunFor(sim::Millis(50));
  }

  // Plans that exercised barriers end with one cluster-wide round: with
  // the network whole and a single CCS, a party on every host must enter
  // and every party must be released — the liveness counterpart to the
  // no-split-release safety invariant the schedule stressed.
  if (plan.workload.barrier > 0) {
    BarrierRound round = barrier_round(plan.hosts);
    if (round.hosts.size() != plan.hosts.size()) {
      out.verify_ok = false;
      out.violations.push_back(
          {"group-verify-barrier",
           "only " + std::to_string(round.hosts.size()) + " of " +
               std::to_string(plan.hosts.size()) +
               " hosts could field a barrier party after heal"});
    }
    for (size_t i = 0; i < round.hosts.size(); ++i) {
      const auto& r = round.replies[i];
      if (!r || !r->ok || !r->released) {
        out.verify_ok = false;
        out.violations.push_back(
            {"group-verify-barrier",
             round.hosts[i] + ": " +
                 (!r ? "barrier reply hung"
                     : (r->ok ? "party timed out" : r->error))});
      }
    }
  }

  // --- books ------------------------------------------------------------
  const net::NetStats& end_stats = net.stats();
  out.frames_drop_injected = end_stats.faults_dropped - start_stats.faults_dropped;
  out.frames_dup_injected =
      end_stats.faults_duplicated - start_stats.faults_duplicated;
  out.frames_reorder_injected =
      end_stats.faults_reordered - start_stats.faults_reordered;
  out.corrupt_injected = end_stats.faults_corrupted - start_stats.faults_corrupted;
  out.corrupt_detected = corrupt_counter->value() - start_detected;

  // Checksum rejections can only come from injected corruption; a
  // detection without an injection is a wire-layer bug.
  if (out.corrupt_detected > out.corrupt_injected) {
    std::ostringstream os;
    os << "checksum rejected " << out.corrupt_detected
       << " frames but only " << out.corrupt_injected << " were corrupted";
    out.violations.push_back({"corruption-books", os.str()});
  }

  std::vector<InvariantViolation> cluster_violations =
      CheckClusterInvariants(cluster, kChaosUid);
  out.violations.insert(out.violations.end(), cluster_violations.begin(),
                        cluster_violations.end());
  // Every chaos run doubles as a durability test: at this quiescent
  // point a read-only replay of each LPM's checkpoint + journal must
  // reconstruct its live state exactly.
  CheckStoreDurability(cluster, kChaosUid, &out.violations);
  // Group-state invariants are vacuous without group workload, so every
  // plan runs them: split barrier verdicts and forked envar tables are
  // wrong no matter which schedule produced the state.
  CheckGroupInvariants(cluster, kChaosUid, &out.violations);

  if (plan.forced_violation) {
    out.violations.push_back(
        {"forced-violation",
         "deliberately injected by plan.forced_violation (test seam)"});
  }

  // Black-box rule: any failed invariant dumps the flight recorder, so
  // the last N structured events leading up to the violation survive as
  // a post-mortem artifact.
  if (!out.violations.empty()) {
    auto& flight = obs::FlightRecorder::Instance();
    for (const InvariantViolation& v : out.violations) {
      flight.Record(obs::FlightKind::kInvariantViolation, "chaos", v.name);
    }
    out.flight_dump = flight.Dump("chaos invariant failure: plan=" + plan.name +
                                  " seed=" + std::to_string(seed));
  }

  return out;
}

}  // namespace ppm::chaos

// invariants.h — cluster-wide correctness conditions checked at
// quiescent points of a chaos run.
//
// The paper's robustness story (Section 5, Section 8) makes claims that
// hold *after convergence*, not during a partition: one crash
// coordinator per user, no manager stuck dying once its recovery hosts
// answer again, genealogy a consistent forest, snapshots covering the
// reachable sibling graph, and no kernel/network resources leaked by
// crashes.  These checkers turn each claim into a predicate over a
// Cluster; the chaos engine evaluates them after heal + settle, and any
// violation is reported with enough detail to debug the (seed, plan)
// replay.
#pragma once

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/types.h"

namespace ppm::chaos {

struct InvariantViolation {
  std::string name;    // which invariant (stable identifier)
  std::string detail;  // human-readable specifics
};

// Checks the always-true invariants at a quiescent point (final heal +
// settle already done):
//   genealogy-forest      every alive process has an alive parent
//   one-lpm-per-host      at most one live LPM per (host, uid)
//   tracked-pid           LPM-tracked pids exist in the kernel, same uid
//   single-ccs            at most one LPM claims the CCS role
//   no-dying-after-heal   no LPM still dying with the network whole
//   bind-leak/circuit-leak  crashed hosts hold no sockets or circuits
//   frame-accounting      frames sent >= delivered + dropped
// Returns the violations found; empty means every invariant holds.
std::vector<InvariantViolation> CheckClusterInvariants(core::Cluster& cluster,
                                                       host::Uid uid);

// Checks one *completed* snapshot against the cluster: the records must
// cover exactly the sibling-graph component reachable from
// `origin_host` — every live tracked process of every component host
// appears, no gpid appears twice, and no record names a host outside
// the component.  Violations are appended to `out`.
void CheckSnapshotCoverage(core::Cluster& cluster, host::Uid uid,
                           const std::string& origin_host,
                           const std::vector<core::ProcRecord>& records,
                           std::vector<InvariantViolation>* out);

// Durable-store invariant, checked at quiescence on every up host whose
// LPM runs with a store.  The journal is write-through (a read returns
// the live view, synced or not), so a read-only replay of checkpoint +
// journal must reconstruct EXACTLY the manager's in-memory state —
// event history (up to the ring bound), installed triggers, and rusage
// records.  Any divergence means the store either lost a record
// (replayed ⊉ live) or invented one (live ⊉ replayed); a nonzero torn
// tail at quiescence means a crash's garbage survived compaction.
void CheckStoreDurability(core::Cluster& cluster, host::Uid uid,
                          std::vector<InvariantViolation>* out);

// Group-operations invariants (src/group/), vacuous when no group state
// exists, so every plan may run them:
//   group.no_split_release   for each (barrier, epoch), the union of
//                            verdicts applied to waiters anywhere in the
//                            cluster never contains both "released" and
//                            "timed out".  A member cut off from the CCS
//                            fails its waiters with an *unknown* outcome
//                            (recording nothing), and a demoted CCS
//                            rejects epochs it no longer owns — so a
//                            split brain must never split a verdict.
//   group.envar_consistent   the replicated envar table has not forked:
//                            no two up LPMs hold the same key at the
//                            same (version, origin) with different
//                            values, and within the sibling component
//                            reachable from the CCS (where anti-entropy
//                            has provably run) the tables are identical.
void CheckGroupInvariants(core::Cluster& cluster, host::Uid uid,
                          std::vector<InvariantViolation>* out);

}  // namespace ppm::chaos

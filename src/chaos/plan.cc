#include "chaos/plan.h"

namespace ppm::chaos {

ChaosPlan CrashPlan() {
  ChaosPlan plan;
  plan.name = "crash";
  plan.faults.crash_host = 20;
  plan.faults.reboot_host = 20;
  plan.faults.kill_lpm = 15;
  plan.workload.create = 25;
  plan.workload.signal = 10;
  plan.workload.snapshot = 10;
  return plan;
}

ChaosPlan PartitionPlan() {
  ChaosPlan plan;
  plan.name = "partition";
  plan.faults.partition = 25;
  plan.faults.heal = 15;
  plan.faults.kill_lpm = 5;
  plan.workload.create = 25;
  plan.workload.signal = 15;
  plan.workload.snapshot = 15;
  // Long partitions relative to time_to_die exercise the dying/rescue
  // races of paper Section 5.
  plan.max_gap = sim::Seconds(8);
  return plan;
}

ChaosPlan CorruptionPlan() {
  ChaosPlan plan;
  plan.name = "corruption";
  plan.workload.create = 35;
  plan.workload.signal = 20;
  plan.workload.snapshot = 20;
  plan.faults.kill_lpm = 5;
  plan.link_faults.drop = 0.02;
  plan.link_faults.duplicate = 0.05;
  plan.link_faults.reorder = 0.10;
  plan.link_faults.corrupt = 0.08;
  plan.link_faults.reorder_delay_max = sim::Millis(80);
  return plan;
}

ChaosPlan StorePlan() {
  ChaosPlan plan;
  plan.name = "store";
  // Crash-heavy: the point is to die mid-write, reboot, and warm-restart.
  plan.faults.crash_host = 25;
  plan.faults.reboot_host = 25;
  plan.faults.kill_lpm = 20;
  // Busy workload keeps the journal hot so crashes land inside batches.
  plan.workload.create = 30;
  plan.workload.signal = 15;
  plan.workload.snapshot = 10;
  plan.min_gap = sim::Millis(500);
  plan.max_gap = sim::Seconds(3);
  // Wide group commit: up to 31 frames of unsynced tail to tear.
  plan.store_group_commit = 32;
  // Tight checkpoints: compaction races crashes often.
  plan.store_checkpoint_every = 32;
  return plan;
}

ChaosPlan OverloadPlan() {
  ChaosPlan plan;
  plan.name = "overload";
  // Flood: more rounds with much shorter gaps than any other plan, so
  // requests arrive faster than handler pools drain them and the
  // admission path actually sheds.
  plan.steps = 30;
  plan.min_gap = sim::Millis(100);
  plan.max_gap = sim::Millis(500);
  plan.workload.create = 6;
  plan.workload.signal = 6;
  plan.workload.snapshot = 2;
  // Partition-under-load: splits while the flood runs, healed often
  // enough that the breaker's quarantine/readmission cycle completes
  // inside the schedule.
  plan.faults.partition = 2;
  plan.faults.heal = 3;
  // A mildly lossy wire makes forwards fail fast (channel breaks), which
  // drives retries — and duplication exercises their idempotency tokens.
  plan.link_faults.drop = 0.02;
  plan.link_faults.duplicate = 0.02;
  // One host serves the flood with a contended CPU.
  plan.noisy_procs = 4;
  return plan;
}

ChaosPlan GroupPlan() {
  ChaosPlan plan;
  plan.name = "group";
  // Barrier rounds under partitions: splits land while parties from
  // several hosts sit in the same epoch, so verdict delivery races the
  // cut.  No host crashes — the point is the *protocol* split-brain
  // (a demoted CCS deciding an epoch it no longer owns), not machine
  // death; kill_lpm keeps warm-restart epoch journaling in play.
  plan.faults.partition = 25;
  plan.faults.heal = 15;
  plan.faults.kill_lpm = 5;
  plan.workload.barrier = 25;
  plan.workload.envar_set = 10;
  plan.workload.create = 10;
  plan.workload.signal = 5;
  plan.workload.snapshot = 5;
  plan.max_gap = sim::Seconds(8);
  return plan;
}

ChaosPlan GroupFailoverPlan() {
  ChaosPlan plan;
  plan.name = "group-failover";
  // Envar writes under CCS churn: crash/kill weights high enough that
  // the coordinator (recovery-list head included) dies repeatedly
  // mid-flood, forcing version assignment to move between CCSs and the
  // replicas to reconcile through sibling anti-entropy afterwards.
  plan.faults.crash_host = 20;
  plan.faults.reboot_host = 20;
  plan.faults.kill_lpm = 15;
  plan.workload.envar_set = 30;
  plan.workload.barrier = 10;
  plan.workload.create = 10;
  plan.workload.snapshot = 5;
  return plan;
}

}  // namespace ppm::chaos

// engine.h — executes a ChaosPlan against a live cluster.
//
// The engine is deliberately policy-free: every decision it makes — which
// action, which victim host, how long between rounds, which side of a
// partition — draws from the cluster simulator's single seeded RNG.  A
// run is therefore a pure function of (seed, plan), which is the replay
// pair every failure message carries.
//
// A run has three phases:
//   1. chaos     — `plan.steps` rounds of weighted fault/workload actions
//                  with `plan.link_faults` in force on every link;
//   2. recovery  — link faults cleared, network healed, every host
//                  rebooted; the engine polls until the cluster converges
//                  (no dying LPM, at most one CCS) and records how long
//                  that took;
//   3. verify    — a fresh tool session on every host runs create /
//                  signal / snapshot end to end, snapshot coverage and
//                  the cluster-wide invariants are checked, and the
//                  corruption books are reconciled (checksum detections
//                  must not exceed injected corruptions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/plan.h"
#include "core/cluster.h"

namespace ppm::chaos {

// The chaos account, matching the suite-wide test identity.
constexpr host::Uid kChaosUid = 100;
inline const char* kChaosUser = "leslie";

// Cluster configuration for a chaos run: the seed plus the plan's LPM
// recovery knobs (scaled-down death/retry/probe periods).
core::ClusterConfig MakeClusterConfig(const ChaosPlan& plan, uint64_t seed);

// Builds the plan's world inside `cluster`: hosts, one Ethernet, the
// chaos account with full trust, and the recovery list.
void SetupCluster(core::Cluster& cluster, const ChaosPlan& plan);

// Everything a run observed, for assertions and bench reporting.
struct ChaosOutcome {
  uint64_t seed = 0;
  std::string plan_name;

  // Workload served during the chaos phase.
  size_t creates_ok = 0;
  size_t signals_sent = 0;
  size_t snapshots_attempted = 0;
  size_t snapshots_completed = 0;
  size_t barrier_parties = 0;    // BarrierEnter calls issued
  size_t barrier_releases = 0;   // ... that came back released
  size_t envar_sets_ok = 0;      // acknowledged GenvSet writes

  // Faults injected by the schedule.
  size_t host_crashes = 0;
  size_t host_reboots = 0;
  size_t lpm_kills = 0;
  size_t partitions = 0;
  size_t heals = 0;

  // Link-fault fallout (deltas over this run).
  uint64_t frames_drop_injected = 0;
  uint64_t frames_dup_injected = 0;
  uint64_t frames_reorder_injected = 0;
  uint64_t corrupt_injected = 0;
  uint64_t corrupt_detected = 0;  // checksum rejections ("net.corrupt_frames")

  // Recovery phase.
  bool converged = false;
  sim::SimDuration convergence_time = 0;  // heal -> quiescence

  // Verify phase.
  bool verify_ok = false;
  std::vector<InvariantViolation> violations;

  // The flight-recorder dump emitted automatically when any invariant
  // failed (empty on a clean run).  Tests and CI write it out as a
  // post-mortem artifact; trace_export can interleave it with the causal
  // timeline.
  std::string flight_dump;

  bool ok() const { return converged && verify_ok && violations.empty(); }
  // Multi-line report; always leads with the (seed, plan) replay pair.
  std::string Summary() const;
};

// Runs `plan` in a fresh cluster seeded with `seed`.
ChaosOutcome RunChaosPlan(uint64_t seed, const ChaosPlan& plan);

// Same, against a caller-owned cluster already built with
// MakeClusterConfig + SetupCluster (benches keep the cluster for extra
// measurements afterwards).
ChaosOutcome RunChaosPlan(core::Cluster& cluster, uint64_t seed,
                          const ChaosPlan& plan);

}  // namespace ppm::chaos

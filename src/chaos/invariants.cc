#include "chaos/invariants.h"

#include <map>
#include <set>
#include <sstream>

#include "core/lpm.h"
#include "core/recovery.h"
#include "host/kernel.h"
#include "host/process.h"

namespace ppm::chaos {

namespace {

void Add(std::vector<InvariantViolation>* out, std::string name,
         std::string detail) {
  out->push_back({std::move(name), std::move(detail)});
}

}  // namespace

std::vector<InvariantViolation> CheckClusterInvariants(core::Cluster& cluster,
                                                       host::Uid uid) {
  std::vector<InvariantViolation> out;
  net::Network& net = cluster.network();

  size_t ccs_count = 0;
  std::vector<std::string> ccs_hosts;

  for (const std::string& name : cluster.host_names()) {
    host::Host& h = cluster.host(name);
    net::HostId nid = h.net_id();

    // Up or down, no host may sit on a half-open circuit at quiescence:
    // every connect that failed to establish (timeout, refusal, crash
    // mid-handshake) must have been fully unwound — acceptor notified,
    // entry reaped.  Guards the connect-path cleanup against chaos
    // faults that eat the SYN-ACK.
    if (size_t n = net.HalfOpenConnCount(nid); n != 0) {
      Add(&out, "circuit-leak",
          "host " + name + " touches " + std::to_string(n) +
              " half-open circuit(s): connect neither established nor reaped");
    }

    if (!h.up()) {
      // A crashed host must hold no network resources: its sockets died
      // with the kernel, and every circuit touching it must have been
      // torn down (break detection ran during settle).
      if (size_t n = net.ListenerCount(nid); n != 0) {
        Add(&out, "bind-leak",
            "down host " + name + " still has " + std::to_string(n) +
                " stream listener(s)");
      }
      if (size_t n = net.DgramBindCount(nid); n != 0) {
        Add(&out, "bind-leak",
            "down host " + name + " still has " + std::to_string(n) +
                " datagram bind(s)");
      }
      if (size_t n = net.ConnsTouching(nid).size(); n != 0) {
        Add(&out, "circuit-leak",
            "down host " + name + " still touches " + std::to_string(n) +
                " circuit(s)");
      }
      continue;
    }

    host::Kernel& k = h.kernel();

    // Genealogy is a consistent forest: every live process either is
    // init or has a parent that exists in the table (live or zombie
    // pending reap — what must never happen is a dangling ppid).
    for (host::Pid pid : k.AllPids()) {
      const host::Process* p = k.Find(pid);
      if (!p) continue;
      if (pid == host::Kernel::kInitPid) continue;
      if (k.Find(p->ppid) == nullptr) {
        Add(&out, "genealogy-forest",
            name + " pid " + std::to_string(pid) + " (" + p->command +
                ") has dangling parent pid " + std::to_string(p->ppid));
      }
    }

    // At most one live LPM per (host, user).
    size_t lpms_here = 0;
    for (host::Pid pid : k.ProcessesOf(uid)) {
      const host::Process* p = k.Find(pid);
      if (p && p->alive() && p->command == "lpm") ++lpms_here;
    }
    if (lpms_here > 1) {
      Add(&out, "one-lpm-per-host",
          name + " runs " + std::to_string(lpms_here) +
              " live LPMs for uid " + std::to_string(uid));
    }

    core::Lpm* lpm = cluster.FindLpm(name, uid);
    if (lpm == nullptr) continue;

    // The LPM's model of its local processes matches the kernel: every
    // pid it tracks as live exists and belongs to its user.
    for (host::Pid pid : lpm->TrackedLocalPids()) {
      const host::Process* p = k.Find(pid);
      if (p == nullptr) {
        Add(&out, "tracked-pid",
            name + " LPM tracks pid " + std::to_string(pid) +
                " which is not in the kernel table");
      } else if (p->uid != uid) {
        Add(&out, "tracked-pid",
            name + " LPM tracks pid " + std::to_string(pid) +
                " owned by uid " + std::to_string(p->uid));
      }
    }

    if (lpm->is_ccs()) {
      ++ccs_count;
      ccs_hosts.push_back(name);
    }

    // After heal + settle no LPM may still be dying: either it rescued
    // itself through the recovery list or it expired and exited.
    if (lpm->mode() == core::LpmMode::kDying) {
      Add(&out, "no-dying-after-heal",
          name + " LPM still in kDying after heal and settle");
    }

    // No silent loss: at a quiescent point every admitted request has
    // terminated — in a reply, an explicit error, or a recorded expiry —
    // so nothing may still sit in the handler queue and no forward may
    // still await a response (each carries a timeout that has long since
    // fired).
    if (size_t n = lpm->queued_request_count(); n != 0) {
      Add(&out, "no-silent-loss",
          name + " LPM still holds " + std::to_string(n) +
              " queued request(s) at quiescence");
    }
    if (size_t n = lpm->pending_forward_count(); n != 0) {
      Add(&out, "no-silent-loss",
          name + " LPM still awaits " + std::to_string(n) +
              " forwarded response(s) at quiescence");
    }

    // Shed accounting partitions the rejected requests exactly: every
    // shed sent an explicit BUSY, never a silent drop.
    const core::LpmStats& ls = lpm->stats();
    if (ls.requests_shed != ls.busy_sent) {
      Add(&out, "shed-partition",
          name + " LPM shed " + std::to_string(ls.requests_shed) +
              " request(s) but sent " + std::to_string(ls.busy_sent) +
              " BUSY replies");
    }
  }

  if (ccs_count > 1) {
    std::ostringstream os;
    os << ccs_count << " LPMs claim the CCS role:";
    for (const auto& hn : ccs_hosts) os << ' ' << hn;
    Add(&out, "single-ccs", os.str());
  }

  // Conservation of frames: every frame put on a wire was delivered,
  // dropped, or is still in flight — so sent >= delivered + dropped.
  // Injected duplicates count as sent, so the inequality survives
  // duplication faults.
  const net::NetStats& ns = net.stats();
  if (ns.frames_sent < ns.frames_delivered + ns.frames_dropped) {
    std::ostringstream os;
    os << "frames_sent=" << ns.frames_sent
       << " < delivered=" << ns.frames_delivered
       << " + dropped=" << ns.frames_dropped;
    Add(&out, "frame-accounting", os.str());
  }

  return out;
}

void CheckSnapshotCoverage(core::Cluster& cluster, host::Uid uid,
                           const std::string& origin_host,
                           const std::vector<core::ProcRecord>& records,
                           std::vector<InvariantViolation>* out) {
  // Component of the sibling graph reachable from the origin, restricted
  // to up hosts that actually run an LPM for the user.  This is exactly
  // the set of hosts the flood broadcast can have reached.
  std::set<std::string> component;
  std::vector<std::string> frontier;
  if (cluster.HasHost(origin_host) && cluster.FindLpm(origin_host, uid)) {
    component.insert(origin_host);
    frontier.push_back(origin_host);
  }
  while (!frontier.empty()) {
    std::string cur = frontier.back();
    frontier.pop_back();
    core::Lpm* lpm = cluster.FindLpm(cur, uid);
    if (!lpm) continue;
    for (const std::string& sib : lpm->sibling_hosts()) {
      if (component.count(sib)) continue;
      if (!cluster.HasHost(sib)) continue;
      if (!cluster.host(sib).up()) continue;
      if (cluster.FindLpm(sib, uid) == nullptr) continue;
      component.insert(sib);
      frontier.push_back(sib);
    }
  }

  // No gpid may appear twice (duplicate suppression in the broadcast
  // layer must have deduplicated re-floods).
  std::set<core::GPid> seen;
  for (const core::ProcRecord& r : records) {
    if (!seen.insert(r.gpid).second) {
      Add(out, "snapshot-dup",
          "snapshot from " + origin_host + " lists " +
              core::ToString(r.gpid) + " twice");
    }
    if (!component.count(r.gpid.host)) {
      Add(out, "snapshot-scope",
          "snapshot from " + origin_host + " contains record for " +
              core::ToString(r.gpid) + " outside the reachable component");
    }
  }

  // Completeness: every process the component hosts' LPMs track as live
  // (and the kernel confirms) must appear.  Both sides derive from the
  // same LPM-local table, so a restarted LPM that lost adoption of some
  // orphan is judged against what *it* knows, not against history.
  for (const std::string& name : component) {
    core::Lpm* lpm = cluster.FindLpm(name, uid);
    if (!lpm) continue;
    host::Kernel& k = cluster.host(name).kernel();
    for (host::Pid pid : lpm->TrackedLocalPids()) {
      const host::Process* p = k.Find(pid);
      if (!p || !p->alive()) continue;  // raced with an exit; scan skips it
      core::GPid g{name, pid};
      if (!seen.count(g)) {
        // Reconstructing the sibling graph is the first step of any
        // replay, so the message carries it.
        std::ostringstream os;
        os << "snapshot from " << origin_host
           << " misses live tracked process " << core::ToString(g) << " ("
           << p->command << "); sibling graph:";
        for (const std::string& c : component) {
          os << ' ' << c << "->[";
          if (core::Lpm* l = cluster.FindLpm(c, uid)) {
            bool first = true;
            for (const std::string& s : l->sibling_hosts()) {
              os << (first ? "" : ",") << s;
              first = false;
            }
          }
          os << ']';
        }
        Add(out, "snapshot-coverage", os.str());
      }
    }
  }
}

void CheckStoreDurability(core::Cluster& cluster, host::Uid uid,
                          std::vector<InvariantViolation>* out) {
  for (const std::string& name : cluster.host_names()) {
    host::Host& h = cluster.host(name);
    if (!h.up()) continue;
    core::Lpm* lpm = cluster.FindLpm(name, uid);
    if (!lpm || !lpm->store()) continue;

    store::RecoveredState replayed =
        store::LpmStore::Recover(host::Disk(h.fs(), uid));

    if (!replayed.found) {
      Add(out, "store-empty",
          name + ": LPM runs a store but replay found no state at all");
      continue;
    }
    if (replayed.torn_bytes != 0) {
      // At quiescence the journal read is the live view; a torn tail can
      // only be crash garbage that open-time compaction failed to purge.
      Add(out, "store-torn-at-rest",
          name + ": " + std::to_string(replayed.torn_bytes) +
              " torn journal byte(s) survived to a quiescent point");
    }

    // Replay must reconstruct exactly the live state: nothing lost,
    // nothing invented.  Events are compared under the ring bound.
    std::vector<core::HistEvent> events = replayed.events;
    size_t cap = lpm->event_log().capacity();
    if (events.size() > cap) {
      events.erase(events.begin(),
                   events.end() - static_cast<ptrdiff_t>(cap));
    }
    std::vector<core::HistEvent> live = lpm->event_log().Query();
    if (events != live) {
      Add(out, "store-events-diverge",
          name + ": replayed " + std::to_string(events.size()) +
              " event(s) but the live log holds " +
              std::to_string(live.size()) +
              " (or contents differ): replay must equal live history");
    }
    if (replayed.triggers != lpm->triggers().entries()) {
      Add(out, "store-triggers-diverge",
          name + ": replayed " + std::to_string(replayed.triggers.size()) +
              " trigger(s), live table holds " +
              std::to_string(lpm->triggers().entries().size()) +
              " (or specs differ)");
    }
    if (replayed.rusage != lpm->exited_stats()) {
      Add(out, "store-rusage-diverge",
          name + ": replayed " + std::to_string(replayed.rusage.size()) +
              " rusage record(s), live list holds " +
              std::to_string(lpm->exited_stats().size()) +
              " (or records differ)");
    }
  }
}

void CheckGroupInvariants(core::Cluster& cluster, host::Uid uid,
                          std::vector<InvariantViolation>* out) {
  // --- group.no_split_release ------------------------------------------
  // Union, across every up LPM, of the verdicts actually applied to
  // local barrier waiters.  kOutcomeReleased and kOutcomeTimedOut for
  // the same (name, epoch) means some member observed "released" while
  // another observed "timed out" — the split-verdict the demoted-CCS
  // rejection and the unknown-outcome local failure exist to prevent.
  std::map<group::GroupTable::BarrierKey, uint8_t> verdicts;
  std::map<group::GroupTable::BarrierKey, std::string> where;
  for (const std::string& name : cluster.host_names()) {
    if (!cluster.host(name).up()) continue;
    core::Lpm* lpm = cluster.FindLpm(name, uid);
    if (!lpm) continue;
    for (const auto& [key, mask] : lpm->group_table().outcomes()) {
      verdicts[key] |= mask;
      where[key] += ' ' + name + '=' +
                    (mask == group::kOutcomeReleased   ? "released"
                     : mask == group::kOutcomeTimedOut ? "timed-out"
                                                       : "both!");
    }
  }
  for (const auto& [key, mask] : verdicts) {
    if ((mask & group::kOutcomeReleased) && (mask & group::kOutcomeTimedOut)) {
      Add(out, "group.no_split_release",
          "barrier <" + key.first + ", epoch " + std::to_string(key.second) +
              "> was released for some members and timed out for others:" +
              where[key]);
    }
  }

  // --- group.envar_consistent ------------------------------------------
  // Fork-freedom everywhere: a (key, version, origin) triple names one
  // write (versions are coordinator-assigned and journaled across warm
  // restarts), so two up replicas disagreeing on its value means the
  // version sequence forked — the split-brain failure mode of a
  // replicated table.
  std::string ccs_host;
  std::map<std::string, std::map<std::pair<uint64_t, std::string>,
                                 std::pair<std::string, std::string>>>
      writes;  // key -> (version, origin) -> (value, first host seen)
  for (const std::string& name : cluster.host_names()) {
    if (!cluster.host(name).up()) continue;
    core::Lpm* lpm = cluster.FindLpm(name, uid);
    if (!lpm) continue;
    if (lpm->is_ccs()) ccs_host = name;
    for (const auto& [key, var] : lpm->group_table().envars()) {
      auto ins = writes[key].try_emplace({var.version, var.origin},
                                         std::make_pair(var.value, name));
      if (!ins.second && ins.first->second.first != var.value) {
        Add(out, "group.envar_consistent",
            "envar '" + key + "' v" + std::to_string(var.version) + " from " +
                var.origin + " has forked: " + ins.first->second.second +
                " holds '" + ins.first->second.first + "' but " + name +
                " holds '" + var.value + "'");
      }
    }
  }

  // Convergence inside the CCS's sibling component: every edge ran
  // anti-entropy when it was (re)established and floods re-originate
  // adopted entries, so at quiescence each component member must hold
  // the identical table — nothing missed, nothing stale.
  if (ccs_host.empty()) return;
  std::set<std::string> component{ccs_host};
  std::vector<std::string> frontier{ccs_host};
  while (!frontier.empty()) {
    std::string cur = frontier.back();
    frontier.pop_back();
    core::Lpm* lpm = cluster.FindLpm(cur, uid);
    if (!lpm) continue;
    for (const std::string& sib : lpm->sibling_hosts()) {
      if (component.count(sib)) continue;
      if (!cluster.HasHost(sib) || !cluster.host(sib).up()) continue;
      if (cluster.FindLpm(sib, uid) == nullptr) continue;
      component.insert(sib);
      frontier.push_back(sib);
    }
  }
  const auto& reference =
      cluster.FindLpm(ccs_host, uid)->group_table().envars();
  for (const std::string& name : component) {
    const auto& mine = cluster.FindLpm(name, uid)->group_table().envars();
    for (const auto& [key, var] : reference) {
      auto it = mine.find(key);
      if (it == mine.end()) {
        Add(out, "group.envar_consistent",
            name + " is in the CCS sibling component but misses envar '" +
                key + "' (CCS " + ccs_host + " holds v" +
                std::to_string(var.version) + ")");
      } else if (it->second.version != var.version ||
                 it->second.value != var.value ||
                 it->second.origin != var.origin) {
        Add(out, "group.envar_consistent",
            name + " holds envar '" + key + "' v" +
                std::to_string(it->second.version) + "='" + it->second.value +
                "' but CCS " + ccs_host + " holds v" +
                std::to_string(var.version) + "='" + var.value + "'");
      }
    }
    for (const auto& [key, var] : mine) {
      if (!reference.count(key)) {
        Add(out, "group.envar_consistent",
            name + " holds envar '" + key + "' v" +
                std::to_string(var.version) +
                " that CCS " + ccs_host + " never heard of");
      }
    }
  }
}

}  // namespace ppm::chaos

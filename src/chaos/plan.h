// plan.h — declarative chaos schedules.
//
// A ChaosPlan is a *description* of an adversarial run: the topology,
// how many fault steps, the relative weights of the fault and workload
// actions, and the adversarial link behaviour in force while the
// schedule runs.  The plan deliberately contains no randomness of its
// own — every stochastic choice during execution draws from the cluster
// simulator's single seeded RNG — so a run is reproduced exactly by the
// (seed, plan) pair, which is what failure messages print.
//
// This is the "reproducible fault scenario artifact" style of harness
// (cf. DPM-Bench): the scenario is data, the engine is policy-free, and
// the invariants are checked at a quiescent point after heal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/time.h"

namespace ppm::chaos {

// Relative weights of the fault actions the engine may take at each
// schedule step.  Zero disables an action; weights need not sum to
// anything in particular.
struct FaultWeights {
  uint32_t crash_host = 0;   // hard host crash (keeps >= min_hosts_up)
  uint32_t reboot_host = 0;  // revive one crashed host
  uint32_t kill_lpm = 0;     // SIGKILL a random LPM (software failure)
  uint32_t partition = 0;    // random bipartition of the network
  uint32_t heal = 0;         // restore every link
};

// Relative weights of the workload operations interleaved between
// faults — the administration traffic the faults are trying to break.
struct WorkloadWeights {
  uint32_t create = 0;    // create a process on a random host
  uint32_t signal = 0;    // signal a previously created process
  uint32_t snapshot = 0;  // genealogy snapshot (may be partial)
  uint32_t barrier = 0;   // multi-host barrier round at a fresh epoch
  uint32_t envar_set = 0; // set the replicated global envar
};

struct ChaosPlan {
  std::string name;  // replay key, printed by failure messages

  // Topology: one Ethernet over these hosts; the first hosts double as
  // the user's ~/.recovery list (decreasing priority).
  std::vector<std::string> hosts = {"h0", "h1", "h2", "h3", "h4"};
  std::vector<std::string> recovery = {"h0", "h1", "h2"};

  size_t steps = 20;                           // fault/workload rounds
  sim::SimDuration min_gap = sim::Seconds(1);  // pause between rounds
  sim::SimDuration max_gap = sim::Seconds(5);
  size_t min_hosts_up = 2;  // crash_host refuses below this floor

  FaultWeights faults;
  WorkloadWeights workload;

  // Adversarial behaviour of every link while the schedule runs
  // (cleared before the final heal so convergence is measurable).
  net::LinkFaultProfile link_faults;

  // How long after the final heal the cluster gets to converge before
  // the invariants are checked.
  sim::SimDuration settle = sim::Seconds(120);

  // LPM recovery knobs, scaled down so death/retry/probe cycles fit
  // inside the run.
  sim::SimDuration time_to_die = sim::Seconds(90);
  sim::SimDuration retry_interval = sim::Seconds(10);
  sim::SimDuration probe_interval = sim::Seconds(15);

  // Noisy neighbor: this many CPU-pinned processes are spawned on the
  // last host at run start (duty 1.0, so they sit on the run queue for
  // the whole run) — that host then serves the same administration
  // traffic with a contended CPU.  0 = none.
  size_t noisy_procs = 0;

  // Test seam: append a deliberate violation to the outcome so the
  // flight-recorder auto-dump path can be exercised without finding a
  // real bug on demand.
  bool forced_violation = false;

  // Durable store knobs.  Chaos runs always turn the store on: every
  // plan doubles as a crash-recovery test, and the store-durability
  // invariant is only meaningful with it.  A larger group_commit makes
  // crashes land mid-batch (an unsynced tail to tear); a small
  // checkpoint interval exercises compaction under fire.
  bool durable_store = true;
  uint32_t store_group_commit = 8;
  uint32_t store_checkpoint_every = 64;
};

// The canned plans of the seed sweep.  Each stresses one failure family
// of the paper: host/LPM death (Section 5's CCS handoff), partitions
// (time-to-die and probe-upward), and a hostile wire (checksummed
// corruption, duplication, reordering, loss).
ChaosPlan CrashPlan();
ChaosPlan PartitionPlan();
ChaosPlan CorruptionPlan();
// Crash-mid-write stressor for the durable store: heavy host crashes and
// LPM kills under constant workload, with group commit wide enough that
// most crashes catch a journal batch unsynced — the torn tail must be
// detected and discarded, never parsed.
ChaosPlan StorePlan();
// Overload stressor: a request flood (short gaps, workload-heavy
// weights) against a cluster with a noisy-neighbor host and occasional
// partitions under load, on a mildly lossy wire.  Exercises admission
// control, deadline expiry, retry/backoff with duplicate suppression,
// and the per-host circuit breaker; judged by the no-silent-loss and
// shed-partition invariants on top of the standard set.
ChaosPlan OverloadPlan();
// Group-operations stressors (src/group/).  GroupPlan partitions the
// network while multi-host barrier rounds are in flight: members split
// from the CCS must time out locally with an *unknown* outcome, never a
// verdict of their own, so for any (barrier, epoch) the cluster-wide
// union of applied verdicts stays one-sided (the group.no_split_release
// invariant).  GroupFailoverPlan crashes hosts and kills LPMs — the CCS
// prominently among them — under a flood of global-envar writes: the
// journaled version vector plus sibling anti-entropy must leave every
// surviving replica with an identical, unforked table at quiescence
// (the group.envar_consistent invariant).
ChaosPlan GroupPlan();
ChaosPlan GroupFailoverPlan();

}  // namespace ppm::chaos

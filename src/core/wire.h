// wire.h — the PPM wire protocol.
//
// Everything that crosses an LPM socket — sibling channels, tool
// channels, and the 112-byte kernel event messages of Table 1 — is
// defined here as a typed message with explicit byte-level encode and
// decode.  Messages are one-per-frame on the (message-preserving)
// stream circuits of net::Network, so no additional length framing is
// needed; a real port would prepend a u32 length.
//
// Request/response correlation is by req_id, unique per issuing LPM.
// Broadcast requests additionally carry <origin host, broadcast seq,
// signed timestamp> for duplicate suppression and a hop route for
// source-destination reply routing (paper Section 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/types.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ppm::core {

// --- zero-copy codec primitives ------------------------------------------

// Caller-owned append-only encode buffer.  The encode hot path writes
// every frame into one of these instead of minting a fresh
// std::vector<uint8_t> per frame: Clear() resets the length but keeps
// the capacity, so a steady-state sender allocates nothing per frame.
// Fixed-width appends are inline memcpy-sized stores (little-endian,
// matching util::ByteWriter byte for byte).
class WireBuffer {
 public:
  void Clear() { buf_.clear(); }  // keeps capacity
  void Reserve(size_t n) { buf_.reserve(n); }

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) {
    uint8_t b[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
    Append(b, 2);
  }
  void U32(uint32_t v) {
    uint8_t b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    Append(b, 4);
  }
  void U64(uint64_t v) {
    uint8_t b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<uint8_t>(v >> (8 * i));
    Append(b, 8);
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Append(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void Pad(size_t n) { buf_.insert(buf_.end(), n, 0); }

  // Clears, then sizes the buffer to exactly `n` zero bytes and returns
  // the mutable base — the fixed-layout fast path for frames whose size
  // is a compile-time constant (the 112-byte kernel event): one memset,
  // then direct stores at known offsets.
  uint8_t* FillZeroed(size_t n) {
    buf_.assign(n, 0);
    return buf_.data();
  }

  // Overwrites two already-written bytes (little-endian) — how the
  // Fletcher-16 header is patched in after a single encode pass, where
  // the owning path used to copy the whole body into a fresh vector.
  void PatchU16(size_t pos, uint16_t v) {
    buf_[pos] = static_cast<uint8_t>(v);
    buf_[pos + 1] = static_cast<uint8_t>(v >> 8);
  }

  const uint8_t* data() const { return buf_.data(); }
  size_t size() const { return buf_.size(); }

  // An owning copy of the current contents, for sinks that must own
  // their bytes (net::Network::Send).  One allocation, one memcpy.
  std::vector<uint8_t> CopyOut() const { return buf_; }
  // Moves the contents out, leaving the buffer empty (capacity gone);
  // for one-shot callers of the owning Serialize wrappers.
  std::vector<uint8_t> TakeOut() { return std::move(buf_); }

 private:
  void Append(const uint8_t* p, size_t n) { buf_.insert(buf_.end(), p, p + n); }

  std::vector<uint8_t> buf_;
};

// Non-owning window over an encoded frame.  Parsers decode in place —
// no copy of the payload is made; only variable-length fields (strings,
// record vectors) allocate, because the decoded message owns those.
// The viewed bytes must outlive the Parse call (they need not outlive
// the returned message).
class WireView {
 public:
  WireView(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  // Implicit: every existing vector-based call site is a view.
  WireView(const std::vector<uint8_t>& bytes) : data_(bytes.data()), len_(bytes.size()) {}
  WireView(const WireBuffer& buf) : data_(buf.data()), len_(buf.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return len_; }

 private:
  const uint8_t* data_;
  size_t len_;
};

// --- 112-byte kernel event messages (Table 1) ---------------------------

// Fixed wire size of one kernel→LPM event record.
constexpr size_t kKernelEventWireBytes = 112;

// Zero-copy primary: encodes into `out` (cleared first, capacity kept).
void SerializeKernelEvent(const host::KernelEvent& ev, WireBuffer& out);
// Owning convenience wrapper over the same encoder.
std::vector<uint8_t> SerializeKernelEvent(const host::KernelEvent& ev);
std::optional<host::KernelEvent> ParseKernelEvent(WireView bytes);

// --- channel establishment ------------------------------------------------

// Sibling LPM → sibling LPM, first message on a new circuit.  The token
// proves the connector obtained the accept address from the target's pmd
// (i.e. passed user-level authentication there).
struct HelloSibling {
  std::string user;
  std::string origin_host;
  int32_t origin_lpm_pid = -1;
  uint64_t token = 0;      // the *target* LPM's session token
  std::string ccs_host;    // current crash coordinator site
  bool operator==(const HelloSibling&) const = default;
};

// Tool → local LPM.  Tools are local by definition; the uid would be
// carried by SCM_CREDENTIALS on a real system.
struct HelloTool {
  std::string user;
  int32_t uid = -1;
  std::string tool_name;
  bool operator==(const HelloTool&) const = default;
};

struct HelloAck {
  std::string host;
  int32_t lpm_pid = -1;
  std::string ccs_host;
  bool operator==(const HelloAck&) const = default;
};

struct HelloReject {
  std::string reason;
  bool operator==(const HelloReject&) const = default;
};

// --- requests / responses ----------------------------------------------------

// Create a process on `target_host` with the LPM there acting as the
// process creation server.  The new process is adopted at birth.
struct CreateReq {
  uint64_t req_id = 0;
  std::string target_host;
  std::string command;
  GPid logical_parent;   // may be invalid: new computation root
  bool initially_running = true;
  uint32_t trace_mask = host::kTraceAll;
  bool operator==(const CreateReq&) const = default;
};

struct CreateResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  GPid gpid;
  bool operator==(const CreateResp&) const = default;
};

// Deliver a signal to any process of the user, anywhere — "with no
// interprocess constraints based on creation dependencies" (Section 1).
struct SignalReq {
  uint64_t req_id = 0;
  GPid target;
  host::Signal sig = host::Signal::kSigTerm;
  bool operator==(const SignalReq&) const = default;
};

struct SignalResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  bool operator==(const SignalResp&) const = default;
};

// Distributed snapshot of the genealogical process structure.  Broadcast
// over the sibling graph with the covering algorithm of Section 4.
struct SnapshotReq {
  uint64_t req_id = 0;          // meaningful at the origin only
  std::string origin_host;
  uint64_t bcast_seq = 0;       // per-origin sequence number
  uint64_t signed_ts = 0;       // signed timestamp naming the origin
  std::vector<std::string> route;  // hosts traversed, origin first
  bool operator==(const SnapshotReq&) const = default;
};

struct SnapshotResp {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t bcast_seq = 0;
  std::string replier_host;
  std::vector<std::string> forwarded_to;  // hosts this replier re-broadcast to
  std::vector<std::string> route;         // reverse route for the way back
  size_t route_index = 0;                 // next hop on the way back
  std::vector<ProcRecord> records;
  bool operator==(const SnapshotResp&) const = default;
};

// Exited-process resource consumption statistics for one host.
struct RusageReq {
  uint64_t req_id = 0;
  std::string target_host;
  bool operator==(const RusageReq&) const = default;
};

struct RusageResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<RusageRecord> records;
  bool operator==(const RusageResp&) const = default;
};

// Adopt an already-running process (and its descendants).
struct AdoptReq {
  uint64_t req_id = 0;
  GPid target;
  uint32_t trace_mask = host::kTraceAll;
  bool operator==(const AdoptReq&) const = default;
};

struct AdoptResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<int32_t> adopted_pids;
  bool operator==(const AdoptResp&) const = default;
};

// Adjust event-tracing granularity on an adopted process.
struct TraceReq {
  uint64_t req_id = 0;
  GPid target;
  uint32_t trace_mask = 0;
  bool operator==(const TraceReq&) const = default;
};

struct TraceResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  bool operator==(const TraceResp&) const = default;
};

// Query the event history kept by the LPM on `target_host`.
struct HistoryReq {
  uint64_t req_id = 0;
  std::string target_host;
  int32_t pid_filter = -1;  // -1: all processes
  uint32_t max_events = 0;  // 0: no limit
  bool operator==(const HistoryReq&) const = default;
};

struct HistoryResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<HistEvent> events;
  bool operator==(const HistoryResp&) const = default;
};

// Install a history-dependent trigger at the LPM on `target_host`.
struct TriggerReq {
  uint64_t req_id = 0;
  std::string target_host;
  TriggerSpec spec;
  bool operator==(const TriggerReq&) const = default;
};

struct TriggerResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  uint64_t trigger_id = 0;
  bool operator==(const TriggerResp&) const = default;
};

// Open files / file descriptors of one process (the "tool for displaying
// the open and closed files of processes" of the paper's future work).
struct FileRecord {
  int32_t fd = -1;
  std::string path;
  std::string mode;
  bool operator==(const FileRecord&) const = default;
};

struct FilesReq {
  uint64_t req_id = 0;
  GPid target;
  bool operator==(const FilesReq&) const = default;
};

struct FilesResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<FileRecord> files;
  bool operator==(const FilesResp&) const = default;
};

// Migrate a process to another host (our implementation of the paper's
// future-work direction; the 1986 PPM explicitly had "no process
// migration facilities").  Cold migration: the image is re-created from
// the command at the destination after a modelled image-transfer cost;
// the old incarnation is terminated and retained in the genealogy as the
// new one's logical parent, so the tree stays connected.
struct MigrateReq {
  uint64_t req_id = 0;
  GPid target;
  std::string dest_host;
  bool operator==(const MigrateReq&) const = default;
};

struct MigrateResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  GPid new_gpid;
  bool operator==(const MigrateResp&) const = default;
};

// Notifies the LPM owning `parent_pid` that a process on another host
// became its logical child (creations requested by third parties, e.g. a
// tool on a different machine, would otherwise leave the parent's
// manager ignorant of the link — and an exited parent would drop out of
// snapshots while descendants live on).  Fire-and-forget.
struct RegisterChild {
  int32_t parent_pid = -1;
  GPid child;
  bool operator==(const RegisterChild&) const = default;
};

// --- live introspection (the STAT protocol) ---------------------------------

// Per-pid event-log eviction count, surfaced so an operator can see
// *which* chatty process pushed everyone else's history out of the ring.
struct PidDrop {
  int32_t pid = -1;
  uint64_t dropped = 0;
  bool operator==(const PidDrop&) const = default;
};

// One group as seen by a coordinator LPM, for the ppmstat GROUPS
// section.
struct GroupStatEntry {
  std::string name;
  uint32_t members = 0;  // live members
  uint32_t exited = 0;   // exits collected so far
  bool operator==(const GroupStatEntry&) const = default;
};

// One barrier with local waiters (or CCS-side tallies), for ppmstat.
struct BarrierStatEntry {
  std::string name;
  uint64_t epoch = 0;
  uint32_t waiters = 0;
  uint32_t expected = 0;
  bool operator==(const BarrierStatEntry&) const = default;
};

// One manager's structured self-description: everything ppmstat renders
// for a host.  Sampled by the LPM answering a StatReq — genealogy
// subtree (procs), CCS role and recovery-list position, peer circuits
// and dispatcher queue depths, journal statistics, flight-recorder
// counters, and a health verdict with human-readable reasons.
struct LpmStatRecord {
  std::string host;
  std::string user;   // the <user, host> pair this manager serves
  int32_t uid = -1;
  int32_t lpm_pid = -1;
  uint8_t mode = 0;        // core::LpmMode
  bool is_ccs = false;
  std::string ccs_host;
  int32_t recovery_rank = -1;  // position in ~/.recovery; -1 when absent
  std::vector<std::string> siblings;

  // Dispatcher and endpoint load.
  uint32_t handlers = 0;
  uint32_t handlers_busy = 0;
  uint32_t queue_depth = 0;      // handler queue, current
  uint32_t queue_watermark = 0;  // handler queue, high-watermark
  uint32_t tool_circuits = 0;

  // LpmStats counters.
  uint64_t requests = 0;
  uint64_t forwards = 0;
  uint64_t kernel_events = 0;
  uint64_t handlers_created = 0;
  uint64_t handler_reuses = 0;
  uint64_t snapshots_served = 0;
  uint64_t bcasts_originated = 0;
  uint64_t bcast_duplicates = 0;
  uint64_t triggers_fired = 0;
  uint64_t failures_detected = 0;
  uint64_t recoveries_started = 0;
  uint64_t request_timeouts = 0;

  // Overload protection.
  uint64_t requests_shed = 0;      // admission control rejected (BUSY sent)
  uint64_t busy_sent = 0;          // explicit BUSY replies put on the wire
  uint64_t retries = 0;            // forwarded requests re-sent after backoff
  uint64_t deadline_expired = 0;   // queued work cancelled past its deadline
  uint64_t dup_suppressed = 0;     // retried requests answered from cache
  uint32_t breaker_open = 0;       // peers currently quarantined

  // Event-log accounting, including the per-pid eviction breakdown.
  uint64_t eventlog_size = 0;
  uint64_t eventlog_recorded = 0;
  uint64_t eventlog_filtered = 0;
  uint64_t eventlog_dropped = 0;
  std::vector<PidDrop> dropped_by_pid;

  // Durable store (zeroed when the store is off).
  bool store_enabled = false;
  uint64_t journal_seq = 0;
  uint64_t journal_bytes = 0;
  uint32_t journal_pending = 0;

  // The pmd living next door (zeroed if it cannot be reached).
  uint32_t pmd_registry = 0;
  uint64_t pmd_requests = 0;

  // Flight recorder counters at this host.
  uint64_t flight_records = 0;
  uint64_t flight_dumps = 0;

  // Health verdict (obs::HealthLevel) and the tripped-threshold reasons.
  uint8_t health = 0;
  std::vector<std::string> health_reasons;

  // The genealogy subtree this manager tracks (same records a snapshot
  // would contribute).
  std::vector<ProcRecord> procs;

  // Group operations: coordinated groups, barriers with waiters here,
  // and the replicated envar table size.
  std::vector<GroupStatEntry> groups;
  std::vector<BarrierStatEntry> barriers;
  uint32_t envars = 0;
  uint32_t envar_watchers = 0;

  // Accounting rollup inputs: charges this manager attributes to its
  // owning user — live + exited process CPU time (through the rusage
  // book, so the genealogy's dead members still bill) and the count of
  // rusage records backing it.
  uint64_t acct_cpu_us = 0;
  uint64_t acct_rusage_records = 0;
  bool operator==(const LpmStatRecord&) const = default;
};

// Broadcast over the sibling graph exactly like SnapshotReq — same
// covering algorithm, same duplicate suppression, same reverse-route
// replies — but each manager answers with an LpmStatRecord instead of a
// bare process scan.
struct StatReq {
  uint64_t req_id = 0;          // meaningful at the origin only
  std::string origin_host;      // empty: a tool asking its LPM to originate
  uint64_t bcast_seq = 0;
  uint64_t signed_ts = 0;
  std::vector<std::string> route;
  bool dump_flight = false;     // also dump the origin's flight recorder
  bool operator==(const StatReq&) const = default;
};

struct StatResp {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t bcast_seq = 0;
  std::string replier_host;
  std::vector<std::string> forwarded_to;
  std::vector<std::string> route;
  size_t route_index = 0;
  std::vector<LpmStatRecord> records;
  bool operator==(const StatResp&) const = default;
};

// --- continuous monitoring (STAT subscriptions) -----------------------------

// Opens a standing watch: flooded over the sibling graph exactly like
// StatReq (same duplicate suppression), and the flood's arrival edges
// induce a spanning tree over the covering graph — each manager records
// the sibling it first heard the subscribe from as its delta parent.
// From then on every manager pushes one StatDelta per interval toward
// the origin along that tree, children's records aggregated in transit,
// so a live watch costs O(hosts) frames per interval instead of a full
// O(edges) flood per refresh.
struct StatSubscribe {
  uint64_t req_id = 0;          // meaningful at the origin only
  std::string origin_host;      // empty: a tool asking its LPM to originate
  uint64_t watch_id = 0;        // minted by the origin LPM; 0 from a tool
  uint64_t bcast_seq = 0;
  uint64_t signed_ts = 0;
  std::vector<std::string> route;
  uint64_t interval_us = 0;     // push period, virtual microseconds
  bool operator==(const StatSubscribe&) const = default;
};

// One host's per-interval sample: counter deltas since its previous
// push plus instantaneous gauges.  `seq` increments by exactly one per
// push of this <watch, host>, so a subscriber can prove it saw every
// interval (no gap) exactly once (no double-count) — the no-silent-loss
// invariant extended to monitoring.
struct StatDeltaRecord {
  std::string host;
  std::string user;
  int32_t uid = -1;
  uint64_t seq = 0;             // per <watch, host>, 1-based, contiguous
  uint64_t t_us = 0;            // sample time at that host
  uint64_t dt_us = 0;           // interval the deltas cover
  uint64_t d_kernel_events = 0;
  uint64_t d_requests = 0;
  uint64_t d_requests_shed = 0;
  uint64_t d_retries = 0;
  uint64_t d_journal_bytes = 0;
  uint64_t d_eventlog_recorded = 0;
  uint64_t d_acct_cpu_us = 0;   // accounting: CPU charged to the user this interval
  uint32_t queue_depth = 0;
  uint32_t procs_live = 0;
  uint8_t health = 0;           // obs::HealthLevel
  bool operator==(const StatDeltaRecord&) const = default;
};

// The per-interval push.  A non-origin manager sends its own record
// plus any records buffered from its tree children to its delta parent;
// the origin flushes the aggregate to the subscribed tool.  req_id is
// the tool's subscribe req_id on the first push (the subscribe ack,
// carrying the minted watch_id) and 0 afterwards.
struct StatDelta {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t watch_id = 0;
  std::vector<StatDeltaRecord> records;
  bool operator==(const StatDelta&) const = default;
};

// Tears a watch down.  From a tool (origin_host empty) it cancels the
// origin's watch; between managers it cancels the receiver's watch for
// <origin_host, watch_id>.  Cancellation cascades lazily: a manager
// that receives a StatDelta for a watch it does not know answers with
// StatUnsubscribe on that circuit, so orphaned subtrees quiesce within
// one interval without any flood.
struct StatUnsubscribe {
  uint64_t req_id = 0;
  std::string origin_host;      // empty: tool-to-LPM form
  uint64_t watch_id = 0;
  bool operator==(const StatUnsubscribe&) const = default;
};

// --- recovery control ---------------------------------------------------------

// Sent to the LPM that should assume the crash-coordinator role.
struct BecomeCcs {
  std::string requested_by;
  bool operator==(const BecomeCcs&) const = default;
};

// CCS change announcement, propagated to siblings.
struct CcsChanged {
  std::string new_ccs;
  bool operator==(const CcsChanged&) const = default;
};

// Lightweight liveness probe over an existing channel.
struct Probe {
  uint64_t req_id = 0;
  bool operator==(const Probe&) const = default;
};

struct ProbeAck {
  uint64_t req_id = 0;
  std::string host;
  bool is_ccs = false;
  bool operator==(const ProbeAck&) const = default;
};

// --- overload protection ------------------------------------------------------

// Admission-control rejection: the receiving manager (or daemon) refused
// to enqueue the request because its bounded queue is full.  An explicit
// answer — never a silent drop — so the sender can retry after the hinted
// delay with the same idempotency token.
struct BusyResp {
  uint64_t req_id = 0;
  std::string error;            // e.g. "handler queue full"
  uint64_t retry_after_us = 0;  // sender should back off at least this long
  bool operator==(const BusyResp&) const = default;
};

// --- group operations (the 0xF8 frame family) -------------------------------
//
// Administration of a distributed computation is dominated by *group*
// actions: start N workers at once, synchronize them, signal or reap
// them together.  All group messages ride under the kGroupMsgTag escape
// opcode plus a sub-byte (their variant index minus kGroupIndexBase),
// so pre-group parsers reject them cleanly.  Like every other request
// they are deadline-stamped (0xF7) and idempotency-token aware, so the
// overload protection of the core applies unchanged.

// Gang-spawn: create one process per <host, command> pair, all enrolled
// in the named group, with all-or-nothing semantics — on any per-host
// failure the already-created members are killed (GroupUndoReq) and the
// response lists the per-host errors.
struct GroupSpawnReq {
  uint64_t req_id = 0;
  std::string group;
  std::vector<std::string> hosts;     // parallel arrays: hosts[i] runs
  std::vector<std::string> commands;  // commands[i]
  bool operator==(const GroupSpawnReq&) const = default;
};

struct GroupSpawnResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<GPid> members;            // created members, on success
  std::vector<std::string> host_errors; // "host: reason" per failed part
  bool operator==(const GroupSpawnResp&) const = default;
};

// Coordinator → member host: create one group member there.  The
// member-host LPM remembers <pid → group, coordinator> so it can report
// the member's exit back (GroupExitNotify).
struct GroupPartReq {
  uint64_t req_id = 0;
  std::string group;
  std::string coordinator;  // host whose LPM aggregates the group
  std::string command;
  bool operator==(const GroupPartReq&) const = default;
};

struct GroupPartResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  GPid gpid;
  bool operator==(const GroupPartResp&) const = default;
};

// Coordinator → member host: gang-spawn rollback.  Kill `target` and
// forget its group membership (the all-or-nothing "undo" leg).
struct GroupUndoReq {
  uint64_t req_id = 0;
  std::string group;
  GPid target;
  bool operator==(const GroupUndoReq&) const = default;
};

// Generic acknowledgement for group bookkeeping requests.
struct GroupAck {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  // On a "not the central coordinator" rejection: where the rejector
  // believes the CCS lives, so the sender can chase the redirect
  // instead of failing its waiters on a stale pointer.
  std::string ccs_hint;
  bool operator==(const GroupAck&) const = default;
};

// Member host → coordinator: a group member exited.
struct GroupExitNotify {
  uint64_t req_id = 0;
  std::string group;
  GPid gpid;
  int32_t exit_status = 0;
  bool operator==(const GroupExitNotify&) const = default;
};

// Member host → coordinator: a replacement member (trigger-respawned)
// joined the group.
struct GroupAddNotify {
  uint64_t req_id = 0;
  std::string group;
  GPid gpid;
  bool operator==(const GroupAddNotify&) const = default;
};

// Deliver a signal to every live member of the group.
struct GroupSignalReq {
  uint64_t req_id = 0;
  std::string group;
  host::Signal sig = host::Signal::kSigTerm;
  bool operator==(const GroupSignalReq&) const = default;
};

struct GroupSignalResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  uint32_t delivered = 0;
  uint32_t failed = 0;
  bool operator==(const GroupSignalResp&) const = default;
};

// Collect exit statuses of every member; the coordinator replies when
// the whole group has exited (exits arrive incrementally via
// GroupExitNotify and are retained).
struct GroupJoinReq {
  uint64_t req_id = 0;
  std::string group;
  bool operator==(const GroupJoinReq&) const = default;
};

struct GroupExit {
  GPid gpid;
  int32_t exit_status = 0;
  bool operator==(const GroupExit&) const = default;
};

struct GroupJoinResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::string group;
  std::vector<GroupExit> exits;
  bool operator==(const GroupJoinResp&) const = default;
};

// Cluster-wide barrier: a tool (or member) enters barrier `name` at
// `epoch` expecting `expected` participants in total.  The local LPM
// aggregates its waiters and contributes one BarrierJoinReq to the CCS,
// which decides the verdict exactly once per <name, epoch> — released
// when the count reaches `expected`, or timed out with the list of
// hosts still missing (stragglers).
struct BarrierEnterReq {
  uint64_t req_id = 0;
  std::string name;
  uint64_t epoch = 0;
  uint32_t expected = 0;
  bool operator==(const BarrierEnterReq&) const = default;
};

struct BarrierEnterResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  bool released = false;  // false + ok: timed out (stragglers listed)
  uint64_t epoch = 0;
  std::vector<std::string> stragglers;
  bool operator==(const BarrierEnterResp&) const = default;
};

// Member LPM → CCS: `count` local participants joined <name, epoch>.
struct BarrierJoinReq {
  uint64_t req_id = 0;
  std::string name;
  uint64_t epoch = 0;
  uint32_t expected = 0;
  std::string host;
  uint32_t count = 0;
  bool operator==(const BarrierJoinReq&) const = default;
};

// CCS → contributing LPM: the verdict for <name, epoch>.
struct BarrierReleaseReq {
  uint64_t req_id = 0;
  std::string name;
  uint64_t epoch = 0;
  bool released = false;
  std::vector<std::string> stragglers;
  bool operator==(const BarrierReleaseReq&) const = default;
};

// Global environment variables: a replicated key → value table every
// LPM holds.  Writes version at the origin and flood over the covering
// graph (EnvarUpdate); higher <version, origin> wins, so concurrent
// writers converge.  Watchers subscribe a TriggerSpec to a key and fire
// on every applied change.
struct EnvarSetReq {
  uint64_t req_id = 0;
  std::string key;
  std::string value;
  bool operator==(const EnvarSetReq&) const = default;
};

struct EnvarSetResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  uint64_t version = 0;
  bool operator==(const EnvarSetResp&) const = default;
};

struct EnvarGetReq {
  uint64_t req_id = 0;
  std::string key;
  bool operator==(const EnvarGetReq&) const = default;
};

struct EnvarGetResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::string key;
  std::string value;
  uint64_t version = 0;
  bool operator==(const EnvarGetResp&) const = default;
};

// Flooded over the sibling graph with the same <origin, seq, signed ts,
// route> duplicate suppression as SnapshotReq.
struct EnvarUpdate {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t bcast_seq = 0;
  uint64_t signed_ts = 0;
  std::vector<std::string> route;
  std::string key;
  std::string value;
  uint64_t version = 0;
  std::string version_origin;  // tie-break: larger origin wins at equal version
  bool operator==(const EnvarUpdate&) const = default;
};

// One replicated table entry, as carried by the anti-entropy sync.
struct EnvarEntry {
  std::string key;
  std::string value;
  uint64_t version = 0;
  std::string origin;
  bool operator==(const EnvarEntry&) const = default;
};

// Full-table anti-entropy, exchanged when a sibling channel is
// (re-)established: the receiver merges and re-floods anything newer,
// so partitions converge after heal.
struct EnvarSync {
  uint64_t req_id = 0;
  std::vector<EnvarEntry> entries;
  bool operator==(const EnvarSync&) const = default;
};

// Subscribe a trigger to a key on the receiving LPM: every applied
// change of `key` fires `spec` there (signal or spawn).
struct EnvarWatchReq {
  uint64_t req_id = 0;
  std::string key;
  TriggerSpec spec;
  bool operator==(const EnvarWatchReq&) const = default;
};

struct EnvarWatchResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  uint64_t watch_id = 0;
  bool operator==(const EnvarWatchResp&) const = default;
};

// --- the envelope -----------------------------------------------------------

using Msg = std::variant<HelloSibling, HelloTool, HelloAck, HelloReject, CreateReq,
                         CreateResp, SignalReq, SignalResp, SnapshotReq, SnapshotResp,
                         RusageReq, RusageResp, AdoptReq, AdoptResp, TraceReq, TraceResp,
                         HistoryReq, HistoryResp, TriggerReq, TriggerResp, BecomeCcs,
                         CcsChanged, Probe, ProbeAck, FilesReq, FilesResp, MigrateReq,
                         MigrateResp, RegisterChild, StatReq, StatResp, BusyResp,
                         GroupSpawnReq, GroupSpawnResp, GroupPartReq, GroupPartResp,
                         GroupUndoReq, GroupAck, GroupExitNotify, GroupAddNotify,
                         GroupSignalReq, GroupSignalResp, GroupJoinReq, GroupJoinResp,
                         BarrierEnterReq, BarrierEnterResp, BarrierJoinReq,
                         BarrierReleaseReq, EnvarSetReq, EnvarSetResp, EnvarGetReq,
                         EnvarGetResp, EnvarUpdate, EnvarSync, EnvarWatchReq,
                         EnvarWatchResp, StatSubscribe, StatDelta, StatUnsubscribe>;

// --- wire opcode map --------------------------------------------------------
//
//   0x00..0x1C  plain messages, tag = Msg variant index (29 types)
//   0xF3        BusyResp (admission-control rejection)
//   0xF4        checksum header (Fletcher-16, always first)
//   0xF5        trace header (trace id / span / parent span)
//   0xF6        STAT protocol, sub-byte 0 = StatReq, 1 = StatResp,
//                 2 = StatSubscribe, 3 = StatDelta, 4 = StatUnsubscribe
//   0xF7        deadline / idempotency header
//   0xF8        group operations, sub-byte = variant index − kGroupIndexBase:
//                 0 GroupSpawnReq    1 GroupSpawnResp   2 GroupPartReq
//                 3 GroupPartResp    4 GroupUndoReq     5 GroupAck
//                 6 GroupExitNotify  7 GroupAddNotify   8 GroupSignalReq
//                 9 GroupSignalResp 10 GroupJoinReq    11 GroupJoinResp
//                12 BarrierEnterReq 13 BarrierEnterResp 14 BarrierJoinReq
//                15 BarrierReleaseReq 16 EnvarSetReq   17 EnvarSetResp
//                18 EnvarGetReq     19 EnvarGetResp    20 EnvarUpdate
//                21 EnvarSync       22 EnvarWatchReq   23 EnvarWatchResp

// Trace header escape.  A frame whose first byte is kTraceHeaderTag
// carries a causal-tracing header (trace id, span id, parent span — see
// obs/trace.h) between the escape byte and the ordinary message tag.
// The escape values sit far above the last variant tag, so they can
// never collide with a message type.
constexpr uint8_t kTraceHeaderTag = 0xF5;
constexpr size_t kTraceHeaderBytes = 1 + 3 * 8;  // escape + three u64s

// Integrity header escape.  Every frame Serialize emits now begins with
// kChecksumHeaderTag followed by a 16-bit Fletcher checksum of all the
// remaining bytes (trace header included).  Parse verifies it and
// rejects mismatches, counting them under the "net.corrupt_frames"
// registry counter, so chaos-injected corruption is *detected* rather
// than fed to handlers.  Decoding is version-gated: frames without the
// header (the pre-checksum format) still parse.
constexpr uint8_t kChecksumHeaderTag = 0xF4;
constexpr size_t kChecksumHeaderBytes = 1 + 2;  // escape + u16 checksum

// STAT protocol escape.  The STAT family does not encode under variant
// indices like the other messages: every member rides under this opcode
// (the next escape value after the trace header) followed by a sub-byte.
// Pre-STAT parsers see an unknown tag and reject the frame cleanly
// instead of misdecoding it; parsers predating the subscription sub-ops
// (2..4) reject just those sub-bytes the same way.
constexpr uint8_t kStatMsgTag = 0xF6;
constexpr uint8_t kStatReqSub = 0;
constexpr uint8_t kStatRespSub = 1;
constexpr uint8_t kStatSubscribeSub = 2;
constexpr uint8_t kStatDeltaSub = 3;
constexpr uint8_t kStatUnsubscribeSub = 4;

// Deadline / idempotency header escape.  A frame may carry a
// DeadlineStamp between the trace header (if any) and the message body:
// an absolute expiry time (virtual microseconds) checked at every hop so
// queued work whose origin has already given up is cancelled instead of
// executed, plus an idempotency token under which the receiver
// duplicate-suppresses retried mutating requests.  Optional and
// version-gated like 0xF4/0xF5/0xF6: frames without it parse unchanged,
// and pre-deadline parsers reject stamped frames cleanly (unknown tag)
// rather than misdecoding them.
constexpr uint8_t kDeadlineHeaderTag = 0xF7;
constexpr size_t kDeadlineHeaderBytes = 1 + 2 * 8;  // escape + two u64s

// BUSY rejection escape.  BusyResp rides under this opcode (below the
// checksum escape, above the plain tags) rather than its variant index,
// so pre-overload parsers see an unknown tag and reject the frame
// cleanly.
constexpr uint8_t kBusyMsgTag = 0xF3;

// Group operations escape.  The 0xF8 frame family: every group /
// barrier / global-envar message rides under this opcode plus a
// sub-byte equal to its Msg variant index minus kGroupIndexBase, so
// pre-group parsers see an unknown tag and reject the frame cleanly.
constexpr uint8_t kGroupMsgTag = 0xF8;
constexpr size_t kGroupIndexBase = 32;  // variant index of GroupSpawnReq
constexpr size_t kGroupSubCount = 24;   // number of group message types

// The STAT subscription family (StatSubscribe/StatDelta/StatUnsubscribe)
// sits after the group family in the variant but encodes under 0xF6
// sub-bytes 2..4 like its StatReq/StatResp elders, not under its variant
// indices.
constexpr size_t kStatStreamIndexBase = kGroupIndexBase + kGroupSubCount;  // 56
constexpr size_t kStatStreamSubCount = 3;

struct DeadlineStamp {
  uint64_t deadline_us = 0;  // absolute sim time; 0 = no deadline
  uint64_t idem_token = 0;   // 0 = not idempotent / no suppression
  bool valid() const { return deadline_us != 0 || idem_token != 0; }
  bool operator==(const DeadlineStamp&) const = default;
};

// Zero-copy primary: encodes the frame (checksum header, optional trace
// header, optional deadline header, body) into `out` in one pass — the
// buffer is cleared first and its capacity is kept, so a reusing caller
// pays no per-frame allocation.  Pass an invalid (default) TraceContext
// for no trace header and an empty DeadlineStamp for no deadline header.
// The emitted bytes are identical to the owning wrappers'.
void Serialize(const Msg& msg, const obs::TraceContext& trace,
               const DeadlineStamp& stamp, WireBuffer& out);
void Serialize(const Msg& msg, const obs::TraceContext& trace, WireBuffer& out);

// Owning convenience wrappers over the same encoder.
std::vector<uint8_t> Serialize(const Msg& msg);
// Prepends the trace header when `trace` is valid; identical to
// Serialize(msg) otherwise.
std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace);
std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace,
                               const DeadlineStamp& stamp);

std::optional<Msg> Parse(WireView bytes);
// Also surfaces the frame's trace context: *trace is filled from the
// header when present and zeroed ({}) when not.  Accepts both formats.
// Decodes in place: the viewed bytes are never copied wholesale.
std::optional<Msg> Parse(WireView bytes, obs::TraceContext* trace);
// Also surfaces the frame's deadline stamp the same way: filled when the
// 0xF7 header is present, zeroed ({}) when not.
std::optional<Msg> Parse(WireView bytes, obs::TraceContext* trace,
                         DeadlineStamp* stamp);

// Human-readable message type name, for traces and tests.
const char* MsgTypeName(const Msg& msg);

// Classifies an encoded circuit frame by its opcode WITHOUT decoding the
// fields: skips the 0xF4 checksum and 0xF5 trace escapes, then names the
// message tag ("CreateReq", "StatResp", ...).  Returns a stable pointer
// usable as a counter-cache key.  Unrecognized tags classify as
// "unknown", truncated frames as "malformed" — the classification is
// total, so per-opcode frame/byte counters partition the net totals
// exactly.  Installed into net::Network by core::Cluster as the payload
// classifier behind the "net.op.<class>.{frames,bytes}" counters.  The
// raw-pointer form matches net::Network::PayloadClassFn, which hands the
// classifier a view rather than the owning vector.
const char* ClassifyWireFrame(const uint8_t* frame, size_t len);
inline const char* ClassifyWireFrame(const std::vector<uint8_t>& frame) {
  return ClassifyWireFrame(frame.data(), frame.size());
}

}  // namespace ppm::core

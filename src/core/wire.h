// wire.h — the PPM wire protocol.
//
// Everything that crosses an LPM socket — sibling channels, tool
// channels, and the 112-byte kernel event messages of Table 1 — is
// defined here as a typed message with explicit byte-level encode and
// decode.  Messages are one-per-frame on the (message-preserving)
// stream circuits of net::Network, so no additional length framing is
// needed; a real port would prepend a u32 length.
//
// Request/response correlation is by req_id, unique per issuing LPM.
// Broadcast requests additionally carry <origin host, broadcast seq,
// signed timestamp> for duplicate suppression and a hop route for
// source-destination reply routing (paper Section 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/types.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ppm::core {

// --- 112-byte kernel event messages (Table 1) ---------------------------

// Fixed wire size of one kernel→LPM event record.
constexpr size_t kKernelEventWireBytes = 112;

std::vector<uint8_t> SerializeKernelEvent(const host::KernelEvent& ev);
std::optional<host::KernelEvent> ParseKernelEvent(const std::vector<uint8_t>& bytes);

// --- channel establishment ------------------------------------------------

// Sibling LPM → sibling LPM, first message on a new circuit.  The token
// proves the connector obtained the accept address from the target's pmd
// (i.e. passed user-level authentication there).
struct HelloSibling {
  std::string user;
  std::string origin_host;
  int32_t origin_lpm_pid = -1;
  uint64_t token = 0;      // the *target* LPM's session token
  std::string ccs_host;    // current crash coordinator site
};

// Tool → local LPM.  Tools are local by definition; the uid would be
// carried by SCM_CREDENTIALS on a real system.
struct HelloTool {
  std::string user;
  int32_t uid = -1;
  std::string tool_name;
};

struct HelloAck {
  std::string host;
  int32_t lpm_pid = -1;
  std::string ccs_host;
};

struct HelloReject {
  std::string reason;
};

// --- requests / responses ----------------------------------------------------

// Create a process on `target_host` with the LPM there acting as the
// process creation server.  The new process is adopted at birth.
struct CreateReq {
  uint64_t req_id = 0;
  std::string target_host;
  std::string command;
  GPid logical_parent;   // may be invalid: new computation root
  bool initially_running = true;
  uint32_t trace_mask = host::kTraceAll;
};

struct CreateResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  GPid gpid;
};

// Deliver a signal to any process of the user, anywhere — "with no
// interprocess constraints based on creation dependencies" (Section 1).
struct SignalReq {
  uint64_t req_id = 0;
  GPid target;
  host::Signal sig = host::Signal::kSigTerm;
};

struct SignalResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
};

// Distributed snapshot of the genealogical process structure.  Broadcast
// over the sibling graph with the covering algorithm of Section 4.
struct SnapshotReq {
  uint64_t req_id = 0;          // meaningful at the origin only
  std::string origin_host;
  uint64_t bcast_seq = 0;       // per-origin sequence number
  uint64_t signed_ts = 0;       // signed timestamp naming the origin
  std::vector<std::string> route;  // hosts traversed, origin first
};

struct SnapshotResp {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t bcast_seq = 0;
  std::string replier_host;
  std::vector<std::string> forwarded_to;  // hosts this replier re-broadcast to
  std::vector<std::string> route;         // reverse route for the way back
  size_t route_index = 0;                 // next hop on the way back
  std::vector<ProcRecord> records;
};

// Exited-process resource consumption statistics for one host.
struct RusageReq {
  uint64_t req_id = 0;
  std::string target_host;
};

struct RusageResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<RusageRecord> records;
};

// Adopt an already-running process (and its descendants).
struct AdoptReq {
  uint64_t req_id = 0;
  GPid target;
  uint32_t trace_mask = host::kTraceAll;
};

struct AdoptResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<int32_t> adopted_pids;
};

// Adjust event-tracing granularity on an adopted process.
struct TraceReq {
  uint64_t req_id = 0;
  GPid target;
  uint32_t trace_mask = 0;
};

struct TraceResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
};

// Query the event history kept by the LPM on `target_host`.
struct HistoryReq {
  uint64_t req_id = 0;
  std::string target_host;
  int32_t pid_filter = -1;  // -1: all processes
  uint32_t max_events = 0;  // 0: no limit
};

struct HistoryResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<HistEvent> events;
};

// Install a history-dependent trigger at the LPM on `target_host`.
struct TriggerReq {
  uint64_t req_id = 0;
  std::string target_host;
  TriggerSpec spec;
};

struct TriggerResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  uint64_t trigger_id = 0;
};

// Open files / file descriptors of one process (the "tool for displaying
// the open and closed files of processes" of the paper's future work).
struct FileRecord {
  int32_t fd = -1;
  std::string path;
  std::string mode;
};

struct FilesReq {
  uint64_t req_id = 0;
  GPid target;
};

struct FilesResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  std::vector<FileRecord> files;
};

// Migrate a process to another host (our implementation of the paper's
// future-work direction; the 1986 PPM explicitly had "no process
// migration facilities").  Cold migration: the image is re-created from
// the command at the destination after a modelled image-transfer cost;
// the old incarnation is terminated and retained in the genealogy as the
// new one's logical parent, so the tree stays connected.
struct MigrateReq {
  uint64_t req_id = 0;
  GPid target;
  std::string dest_host;
};

struct MigrateResp {
  uint64_t req_id = 0;
  bool ok = false;
  std::string error;
  GPid new_gpid;
};

// Notifies the LPM owning `parent_pid` that a process on another host
// became its logical child (creations requested by third parties, e.g. a
// tool on a different machine, would otherwise leave the parent's
// manager ignorant of the link — and an exited parent would drop out of
// snapshots while descendants live on).  Fire-and-forget.
struct RegisterChild {
  int32_t parent_pid = -1;
  GPid child;
};

// --- live introspection (the STAT protocol) ---------------------------------

// Per-pid event-log eviction count, surfaced so an operator can see
// *which* chatty process pushed everyone else's history out of the ring.
struct PidDrop {
  int32_t pid = -1;
  uint64_t dropped = 0;
  bool operator==(const PidDrop&) const = default;
};

// One manager's structured self-description: everything ppmstat renders
// for a host.  Sampled by the LPM answering a StatReq — genealogy
// subtree (procs), CCS role and recovery-list position, peer circuits
// and dispatcher queue depths, journal statistics, flight-recorder
// counters, and a health verdict with human-readable reasons.
struct LpmStatRecord {
  std::string host;
  int32_t lpm_pid = -1;
  uint8_t mode = 0;        // core::LpmMode
  bool is_ccs = false;
  std::string ccs_host;
  int32_t recovery_rank = -1;  // position in ~/.recovery; -1 when absent
  std::vector<std::string> siblings;

  // Dispatcher and endpoint load.
  uint32_t handlers = 0;
  uint32_t handlers_busy = 0;
  uint32_t queue_depth = 0;      // handler queue, current
  uint32_t queue_watermark = 0;  // handler queue, high-watermark
  uint32_t tool_circuits = 0;

  // LpmStats counters.
  uint64_t requests = 0;
  uint64_t forwards = 0;
  uint64_t kernel_events = 0;
  uint64_t handlers_created = 0;
  uint64_t handler_reuses = 0;
  uint64_t snapshots_served = 0;
  uint64_t bcasts_originated = 0;
  uint64_t bcast_duplicates = 0;
  uint64_t triggers_fired = 0;
  uint64_t failures_detected = 0;
  uint64_t recoveries_started = 0;
  uint64_t request_timeouts = 0;

  // Event-log accounting, including the per-pid eviction breakdown.
  uint64_t eventlog_size = 0;
  uint64_t eventlog_recorded = 0;
  uint64_t eventlog_filtered = 0;
  uint64_t eventlog_dropped = 0;
  std::vector<PidDrop> dropped_by_pid;

  // Durable store (zeroed when the store is off).
  bool store_enabled = false;
  uint64_t journal_seq = 0;
  uint64_t journal_bytes = 0;
  uint32_t journal_pending = 0;

  // The pmd living next door (zeroed if it cannot be reached).
  uint32_t pmd_registry = 0;
  uint64_t pmd_requests = 0;

  // Flight recorder counters at this host.
  uint64_t flight_records = 0;
  uint64_t flight_dumps = 0;

  // Health verdict (obs::HealthLevel) and the tripped-threshold reasons.
  uint8_t health = 0;
  std::vector<std::string> health_reasons;

  // The genealogy subtree this manager tracks (same records a snapshot
  // would contribute).
  std::vector<ProcRecord> procs;
};

// Broadcast over the sibling graph exactly like SnapshotReq — same
// covering algorithm, same duplicate suppression, same reverse-route
// replies — but each manager answers with an LpmStatRecord instead of a
// bare process scan.
struct StatReq {
  uint64_t req_id = 0;          // meaningful at the origin only
  std::string origin_host;      // empty: a tool asking its LPM to originate
  uint64_t bcast_seq = 0;
  uint64_t signed_ts = 0;
  std::vector<std::string> route;
  bool dump_flight = false;     // also dump the origin's flight recorder
};

struct StatResp {
  uint64_t req_id = 0;
  std::string origin_host;
  uint64_t bcast_seq = 0;
  std::string replier_host;
  std::vector<std::string> forwarded_to;
  std::vector<std::string> route;
  size_t route_index = 0;
  std::vector<LpmStatRecord> records;
};

// --- recovery control ---------------------------------------------------------

// Sent to the LPM that should assume the crash-coordinator role.
struct BecomeCcs {
  std::string requested_by;
};

// CCS change announcement, propagated to siblings.
struct CcsChanged {
  std::string new_ccs;
};

// Lightweight liveness probe over an existing channel.
struct Probe {
  uint64_t req_id = 0;
};

struct ProbeAck {
  uint64_t req_id = 0;
  std::string host;
  bool is_ccs = false;
};

// --- the envelope -----------------------------------------------------------

using Msg = std::variant<HelloSibling, HelloTool, HelloAck, HelloReject, CreateReq,
                         CreateResp, SignalReq, SignalResp, SnapshotReq, SnapshotResp,
                         RusageReq, RusageResp, AdoptReq, AdoptResp, TraceReq, TraceResp,
                         HistoryReq, HistoryResp, TriggerReq, TriggerResp, BecomeCcs,
                         CcsChanged, Probe, ProbeAck, FilesReq, FilesResp, MigrateReq,
                         MigrateResp, RegisterChild, StatReq, StatResp>;

// Trace header escape.  A frame whose first byte is kTraceHeaderTag
// carries a causal-tracing header (trace id, span id, parent span — see
// obs/trace.h) between the escape byte and the ordinary message tag.
// The escape values sit far above the last variant tag, so they can
// never collide with a message type.
constexpr uint8_t kTraceHeaderTag = 0xF5;
constexpr size_t kTraceHeaderBytes = 1 + 3 * 8;  // escape + three u64s

// Integrity header escape.  Every frame Serialize emits now begins with
// kChecksumHeaderTag followed by a 16-bit Fletcher checksum of all the
// remaining bytes (trace header included).  Parse verifies it and
// rejects mismatches, counting them under the "net.corrupt_frames"
// registry counter, so chaos-injected corruption is *detected* rather
// than fed to handlers.  Decoding is version-gated: frames without the
// header (the pre-checksum format) still parse.
constexpr uint8_t kChecksumHeaderTag = 0xF4;
constexpr size_t kChecksumHeaderBytes = 1 + 2;  // escape + u16 checksum

// STAT protocol escape.  StatReq/StatResp do not encode under their
// variant index like the other messages: they ride under this opcode
// (the next escape value after the trace header) followed by a sub-byte
// (0 = StatReq, 1 = StatResp).  Pre-STAT parsers see an unknown tag and
// reject the frame cleanly instead of misdecoding it.
constexpr uint8_t kStatMsgTag = 0xF6;
constexpr uint8_t kStatReqSub = 0;
constexpr uint8_t kStatRespSub = 1;

std::vector<uint8_t> Serialize(const Msg& msg);
// Prepends the trace header when `trace` is valid; identical to
// Serialize(msg) otherwise.
std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace);

std::optional<Msg> Parse(const std::vector<uint8_t>& bytes);
// Also surfaces the frame's trace context: *trace is filled from the
// header when present and zeroed ({}) when not.  Accepts both formats.
std::optional<Msg> Parse(const std::vector<uint8_t>& bytes, obs::TraceContext* trace);

// Human-readable message type name, for traces and tests.
const char* MsgTypeName(const Msg& msg);

// Classifies an encoded circuit frame by its opcode WITHOUT decoding the
// fields: skips the 0xF4 checksum and 0xF5 trace escapes, then names the
// message tag ("CreateReq", "StatResp", ...).  Returns a stable pointer
// usable as a counter-cache key.  Unrecognized tags classify as
// "unknown", truncated frames as "malformed" — the classification is
// total, so per-opcode frame/byte counters partition the net totals
// exactly.  Installed into net::Network by core::Cluster as the payload
// classifier behind the "net.op.<class>.{frames,bytes}" counters.
const char* ClassifyWireFrame(const std::vector<uint8_t>& frame);

}  // namespace ppm::core

#include "core/wire.h"

#include <cstring>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "util/panic.h"

namespace ppm::core {

namespace {

// Indexed by Msg variant tag; kStatMsgTag frames map to indices 29/30,
// kBusyMsgTag to 31, and the kGroupMsgTag family to 32 onward.
const char* const kMsgTypeNames[] = {
    "HelloSibling", "HelloTool", "HelloAck", "HelloReject", "CreateReq", "CreateResp",
    "SignalReq", "SignalResp", "SnapshotReq", "SnapshotResp", "RusageReq", "RusageResp",
    "AdoptReq", "AdoptResp", "TraceReq", "TraceResp", "HistoryReq", "HistoryResp",
    "TriggerReq", "TriggerResp", "BecomeCcs", "CcsChanged", "Probe", "ProbeAck",
    "FilesReq", "FilesResp", "MigrateReq", "MigrateResp", "RegisterChild",
    "StatReq", "StatResp", "BusyResp",
    "GroupSpawnReq", "GroupSpawnResp", "GroupPartReq", "GroupPartResp",
    "GroupUndoReq", "GroupAck", "GroupExitNotify", "GroupAddNotify",
    "GroupSignalReq", "GroupSignalResp", "GroupJoinReq", "GroupJoinResp",
    "BarrierEnterReq", "BarrierEnterResp", "BarrierJoinReq", "BarrierReleaseReq",
    "EnvarSetReq", "EnvarSetResp", "EnvarGetReq", "EnvarGetResp",
    "EnvarUpdate", "EnvarSync", "EnvarWatchReq", "EnvarWatchResp",
    "StatSubscribe", "StatDelta", "StatUnsubscribe"};
constexpr size_t kPlainTagCount = 29;  // tags 0..28 encode under the variant index

// The sub-byte arithmetic of the 0xF8 family depends on the group
// messages sitting contiguously in the variant, and the 0xF6
// subscription sub-ops on the stream family sitting right after them.
static_assert(std::is_same_v<std::variant_alternative_t<kGroupIndexBase, Msg>, GroupSpawnReq>);
static_assert(std::is_same_v<std::variant_alternative_t<kStatStreamIndexBase, Msg>, StatSubscribe>);
static_assert(std::is_same_v<std::variant_alternative_t<kStatStreamIndexBase + 1, Msg>, StatDelta>);
static_assert(std::is_same_v<std::variant_alternative_t<kStatStreamIndexBase + 2, Msg>, StatUnsubscribe>);
static_assert(std::variant_size_v<Msg> ==
              kGroupIndexBase + kGroupSubCount + kStatStreamSubCount);
static_assert(sizeof(kMsgTypeNames) / sizeof(kMsgTypeNames[0]) == std::variant_size_v<Msg>);

// Codec-level accounting: how many frames pass through encode/decode and
// how much of each frame is escape-header overhead (the 0xF4 checksum
// and 0xF5 trace headers ppmprof's wire table decomposes).
struct WireMetrics {
  obs::Counter* frames_encoded;
  obs::Counter* frames_decoded;
  obs::Counter* hdr_checksum_bytes;
  obs::Counter* hdr_trace_bytes;
  obs::Counter* hdr_deadline_bytes;
  obs::Counter* kevent_encoded;
  obs::Counter* kevent_decoded;
};

WireMetrics& Metrics() {
  static WireMetrics m = {
      obs::Registry::Instance().GetCounter("wire.frames.encoded"),
      obs::Registry::Instance().GetCounter("wire.frames.decoded"),
      obs::Registry::Instance().GetCounter("wire.hdr.checksum.bytes"),
      obs::Registry::Instance().GetCounter("wire.hdr.trace.bytes"),
      obs::Registry::Instance().GetCounter("wire.hdr.deadline.bytes"),
      obs::Registry::Instance().GetCounter("wire.kevent.encoded"),
      obs::Registry::Instance().GetCounter("wire.kevent.decoded"),
  };
  return m;
}

}  // namespace

std::string ToString(const GPid& g) {
  return "<" + g.host + "," + std::to_string(g.pid) + ">";
}

// --- kernel event messages -------------------------------------------------

// Fixed layout of the 112-byte record.  The format is the historical
// field-by-field little-endian encoding (U8 kind, I32 pid, I32 other,
// U8 sig, I32 status, U64 at, length-prefixed detail, zero pad); because
// every offset is a constant the codec reads and writes it directly —
// no per-field bounds checks on a frame already known to be 112 bytes.
namespace kevent_layout {
constexpr size_t kKind = 0;
constexpr size_t kPid = 1;
constexpr size_t kOther = 5;
constexpr size_t kSig = 9;
constexpr size_t kStatus = 10;
constexpr size_t kAt = 14;
constexpr size_t kDetailLen = 22;
constexpr size_t kDetail = 26;
constexpr size_t kDetailRoom = kKernelEventWireBytes - kDetail;  // 86
}  // namespace kevent_layout

namespace {

inline void StoreU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline void StoreU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void SerializeKernelEvent(const host::KernelEvent& ev, WireBuffer& out) {
  PPM_PROF_SCOPE("wire.kevent.encode");
  Metrics().kevent_encoded->Inc();
  namespace L = kevent_layout;
  uint8_t* p = out.FillZeroed(kKernelEventWireBytes);  // one memset: pad comes free
  p[L::kKind] = static_cast<uint8_t>(ev.kind);
  StoreU32(p + L::kPid, static_cast<uint32_t>(ev.pid));
  StoreU32(p + L::kOther, static_cast<uint32_t>(ev.other));
  p[L::kSig] = static_cast<uint8_t>(ev.sig);
  StoreU32(p + L::kStatus, static_cast<uint32_t>(ev.status));
  StoreU64(p + L::kAt, ev.at);
  // Fixed-size detail field: what remains of the 112 bytes.  Truncation
  // is by length — no copy of the detail string is made.
  const size_t dlen = ev.detail.size() < L::kDetailRoom ? ev.detail.size() : L::kDetailRoom;
  StoreU32(p + L::kDetailLen, static_cast<uint32_t>(dlen));
  std::memcpy(p + L::kDetail, ev.detail.data(), dlen);
  PPM_CHECK(out.size() == kKernelEventWireBytes);
}

std::vector<uint8_t> SerializeKernelEvent(const host::KernelEvent& ev) {
  WireBuffer b;
  SerializeKernelEvent(ev, b);
  return b.TakeOut();
}

std::optional<host::KernelEvent> ParseKernelEvent(WireView bytes) {
  PPM_PROF_SCOPE("wire.kevent.decode");
  Metrics().kevent_decoded->Inc();
  namespace L = kevent_layout;
  if (bytes.size() != kKernelEventWireBytes) return std::nullopt;
  const uint8_t* p = bytes.data();
  const uint8_t kind = p[L::kKind];
  if (kind > static_cast<uint8_t>(host::KEvent::kIpcRecv)) return std::nullopt;
  const uint32_t dlen = LoadU32(p + L::kDetailLen);
  if (dlen > L::kDetailRoom) return std::nullopt;
  host::KernelEvent ev;
  ev.kind = static_cast<host::KEvent>(kind);
  ev.pid = static_cast<host::Pid>(static_cast<int32_t>(LoadU32(p + L::kPid)));
  ev.other = static_cast<host::Pid>(static_cast<int32_t>(LoadU32(p + L::kOther)));
  ev.sig = static_cast<host::Signal>(p[L::kSig]);
  ev.status = static_cast<int32_t>(LoadU32(p + L::kStatus));
  ev.at = LoadU64(p + L::kAt);
  ev.detail.assign(reinterpret_cast<const char*>(p + L::kDetail), dlen);
  return ev;
}

// --- field helpers -----------------------------------------------------------

namespace {

void PutGPid(WireBuffer& w, const GPid& g) {
  w.Str(g.host);
  w.I32(g.pid);
}

std::optional<GPid> GetGPid(util::ByteReader& r) {
  auto host = r.Str();
  auto pid = r.I32();
  if (!host || !pid) return std::nullopt;
  GPid g;
  g.host = *host;
  g.pid = *pid;
  return g;
}

void PutStrVec(WireBuffer& w, const std::vector<std::string>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) w.Str(s);
}

std::optional<std::vector<std::string>> GetStrVec(util::ByteReader& r) {
  auto n = r.U32();
  if (!n) return std::nullopt;
  // Every element costs at least one byte on the wire, so a count larger
  // than the remaining bytes is corrupt — reject it before reserve()
  // turns it into a giant allocation.
  if (*n > r.remaining()) return std::nullopt;
  std::vector<std::string> v;
  v.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto s = r.Str();
    if (!s) return std::nullopt;
    v.push_back(std::move(*s));
  }
  return v;
}

void PutProcRecord(WireBuffer& w, const ProcRecord& rec) {
  PutGPid(w, rec.gpid);
  PutGPid(w, rec.logical_parent);
  w.I32(rec.uid);
  w.Str(rec.command);
  w.U8(static_cast<uint8_t>(rec.state));
  w.Bool(rec.exited);
  w.U64(rec.start_time);
  w.U64(rec.end_time);
  w.U64(static_cast<uint64_t>(rec.cpu_time));
}

std::optional<ProcRecord> GetProcRecord(util::ByteReader& r) {
  ProcRecord rec;
  auto gpid = GetGPid(r);
  auto parent = GetGPid(r);
  auto uid = r.I32();
  auto command = r.Str();
  auto state = r.U8();
  auto exited = r.Bool();
  auto start = r.U64();
  auto end = r.U64();
  auto cpu = r.U64();
  if (!gpid || !parent || !uid || !command || !state || !exited || !start || !end || !cpu)
    return std::nullopt;
  rec.gpid = std::move(*gpid);
  rec.logical_parent = std::move(*parent);
  rec.uid = *uid;
  rec.command = std::move(*command);
  rec.state = static_cast<host::ProcState>(*state);
  rec.exited = *exited;
  rec.start_time = *start;
  rec.end_time = *end;
  rec.cpu_time = static_cast<sim::SimDuration>(*cpu);
  return rec;
}

void PutRusageRecord(WireBuffer& w, const RusageRecord& rec) {
  PutGPid(w, rec.gpid);
  w.Str(rec.command);
  w.I32(rec.exit_status);
  w.Bool(rec.killed_by_signal);
  w.U8(static_cast<uint8_t>(rec.death_signal));
  w.U64(rec.start_time);
  w.U64(rec.end_time);
  w.U64(static_cast<uint64_t>(rec.rusage.cpu_time));
  w.U64(rec.rusage.messages_sent);
  w.U64(rec.rusage.messages_received);
  w.U64(rec.rusage.files_opened);
  w.U64(rec.rusage.max_rss_kb);
  w.U64(rec.rusage.forks);
}

std::optional<RusageRecord> GetRusageRecord(util::ByteReader& r) {
  RusageRecord rec;
  auto gpid = GetGPid(r);
  auto command = r.Str();
  auto status = r.I32();
  auto killed = r.Bool();
  auto sig = r.U8();
  auto start = r.U64();
  auto end = r.U64();
  auto cpu = r.U64();
  auto sent = r.U64();
  auto recv = r.U64();
  auto files = r.U64();
  auto rss = r.U64();
  auto forks = r.U64();
  if (!gpid || !command || !status || !killed || !sig || !start || !end || !cpu || !sent ||
      !recv || !files || !rss || !forks)
    return std::nullopt;
  rec.gpid = std::move(*gpid);
  rec.command = std::move(*command);
  rec.exit_status = *status;
  rec.killed_by_signal = *killed;
  rec.death_signal = static_cast<host::Signal>(*sig);
  rec.start_time = *start;
  rec.end_time = *end;
  rec.rusage.cpu_time = static_cast<sim::SimDuration>(*cpu);
  rec.rusage.messages_sent = *sent;
  rec.rusage.messages_received = *recv;
  rec.rusage.files_opened = *files;
  rec.rusage.max_rss_kb = *rss;
  rec.rusage.forks = *forks;
  return rec;
}

void PutHistEvent(WireBuffer& w, const HistEvent& ev) {
  w.U64(ev.at);
  w.U8(static_cast<uint8_t>(ev.kind));
  w.I32(ev.pid);
  w.I32(ev.other);
  w.U8(static_cast<uint8_t>(ev.sig));
  w.I32(ev.status);
  w.Str(ev.detail);
}

std::optional<HistEvent> GetHistEvent(util::ByteReader& r) {
  HistEvent ev;
  auto at = r.U64();
  auto kind = r.U8();
  auto pid = r.I32();
  auto other = r.I32();
  auto sig = r.U8();
  auto status = r.I32();
  auto detail = r.Str();
  if (!at || !kind || !pid || !other || !sig || !status || !detail) return std::nullopt;
  ev.at = *at;
  ev.kind = static_cast<host::KEvent>(*kind);
  ev.pid = *pid;
  ev.other = *other;
  ev.sig = static_cast<host::Signal>(*sig);
  ev.status = *status;
  ev.detail = std::move(*detail);
  return ev;
}

void PutTriggerSpec(WireBuffer& w, const TriggerSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.event_kind));
  w.I32(spec.subject_pid);
  w.U8(static_cast<uint8_t>(spec.action));
  w.U8(static_cast<uint8_t>(spec.action_signal));
  PutGPid(w, spec.action_target);
  w.Str(spec.migrate_dest);
  w.Str(spec.spawn_command);
  w.Str(spec.group);
}

std::optional<TriggerSpec> GetTriggerSpec(util::ByteReader& r) {
  TriggerSpec spec;
  auto kind = r.U8();
  auto pid = r.I32();
  auto action = r.U8();
  auto sig = r.U8();
  auto target = GetGPid(r);
  auto dest = r.Str();
  auto cmd = r.Str();
  auto group = r.Str();
  if (!kind || !pid || !action || !sig || !target || !dest || !cmd || !group)
    return std::nullopt;
  if (*action > static_cast<uint8_t>(TriggerAction::kSpawn)) return std::nullopt;
  spec.event_kind = static_cast<host::KEvent>(*kind);
  spec.subject_pid = *pid;
  spec.action = static_cast<TriggerAction>(*action);
  spec.action_signal = static_cast<host::Signal>(*sig);
  spec.action_target = std::move(*target);
  spec.migrate_dest = std::move(*dest);
  spec.spawn_command = std::move(*cmd);
  spec.group = std::move(*group);
  return spec;
}

void PutLpmStatRecord(WireBuffer& w, const LpmStatRecord& rec) {
  w.Str(rec.host);
  w.Str(rec.user);
  w.I32(rec.uid);
  w.I32(rec.lpm_pid);
  w.U8(rec.mode);
  w.Bool(rec.is_ccs);
  w.Str(rec.ccs_host);
  w.I32(rec.recovery_rank);
  PutStrVec(w, rec.siblings);
  w.U32(rec.handlers);
  w.U32(rec.handlers_busy);
  w.U32(rec.queue_depth);
  w.U32(rec.queue_watermark);
  w.U32(rec.tool_circuits);
  w.U64(rec.requests);
  w.U64(rec.forwards);
  w.U64(rec.kernel_events);
  w.U64(rec.handlers_created);
  w.U64(rec.handler_reuses);
  w.U64(rec.snapshots_served);
  w.U64(rec.bcasts_originated);
  w.U64(rec.bcast_duplicates);
  w.U64(rec.triggers_fired);
  w.U64(rec.failures_detected);
  w.U64(rec.recoveries_started);
  w.U64(rec.request_timeouts);
  w.U64(rec.requests_shed);
  w.U64(rec.busy_sent);
  w.U64(rec.retries);
  w.U64(rec.deadline_expired);
  w.U64(rec.dup_suppressed);
  w.U32(rec.breaker_open);
  w.U64(rec.eventlog_size);
  w.U64(rec.eventlog_recorded);
  w.U64(rec.eventlog_filtered);
  w.U64(rec.eventlog_dropped);
  w.U32(static_cast<uint32_t>(rec.dropped_by_pid.size()));
  for (const PidDrop& d : rec.dropped_by_pid) {
    w.I32(d.pid);
    w.U64(d.dropped);
  }
  w.Bool(rec.store_enabled);
  w.U64(rec.journal_seq);
  w.U64(rec.journal_bytes);
  w.U32(rec.journal_pending);
  w.U32(rec.pmd_registry);
  w.U64(rec.pmd_requests);
  w.U64(rec.flight_records);
  w.U64(rec.flight_dumps);
  w.U8(rec.health);
  PutStrVec(w, rec.health_reasons);
  w.U32(static_cast<uint32_t>(rec.procs.size()));
  for (const auto& p : rec.procs) PutProcRecord(w, p);
  w.U32(static_cast<uint32_t>(rec.groups.size()));
  for (const GroupStatEntry& g : rec.groups) {
    w.Str(g.name);
    w.U32(g.members);
    w.U32(g.exited);
  }
  w.U32(static_cast<uint32_t>(rec.barriers.size()));
  for (const BarrierStatEntry& b : rec.barriers) {
    w.Str(b.name);
    w.U64(b.epoch);
    w.U32(b.waiters);
    w.U32(b.expected);
  }
  w.U32(rec.envars);
  w.U32(rec.envar_watchers);
  w.U64(rec.acct_cpu_us);
  w.U64(rec.acct_rusage_records);
}

std::optional<LpmStatRecord> GetLpmStatRecord(util::ByteReader& r) {
  LpmStatRecord rec;
  auto host = r.Str();
  auto user = r.Str();
  auto uid = r.I32();
  auto pid = r.I32();
  auto mode = r.U8();
  auto is_ccs = r.Bool();
  auto ccs = r.Str();
  auto rank = r.I32();
  auto siblings = GetStrVec(r);
  if (!host || !user || !uid || !pid || !mode || !is_ccs || !ccs || !rank || !siblings)
    return std::nullopt;
  rec.host = std::move(*host);
  rec.user = std::move(*user);
  rec.uid = *uid;
  rec.lpm_pid = *pid;
  rec.mode = *mode;
  rec.is_ccs = *is_ccs;
  rec.ccs_host = std::move(*ccs);
  rec.recovery_rank = *rank;
  rec.siblings = std::move(*siblings);
  auto handlers = r.U32();
  auto busy = r.U32();
  auto qdepth = r.U32();
  auto qwater = r.U32();
  auto tools = r.U32();
  if (!handlers || !busy || !qdepth || !qwater || !tools) return std::nullopt;
  rec.handlers = *handlers;
  rec.handlers_busy = *busy;
  rec.queue_depth = *qdepth;
  rec.queue_watermark = *qwater;
  rec.tool_circuits = *tools;
  // The LpmStats counters (twelve classic plus five overload), the
  // breaker gauge, and the four event-log counters, in declaration order.
  uint64_t* counters[] = {
      &rec.requests,         &rec.forwards,          &rec.kernel_events,
      &rec.handlers_created, &rec.handler_reuses,    &rec.snapshots_served,
      &rec.bcasts_originated, &rec.bcast_duplicates, &rec.triggers_fired,
      &rec.failures_detected, &rec.recoveries_started, &rec.request_timeouts,
      &rec.requests_shed,    &rec.busy_sent,         &rec.retries,
      &rec.deadline_expired, &rec.dup_suppressed};
  for (uint64_t* c : counters) {
    auto v = r.U64();
    if (!v) return std::nullopt;
    *c = *v;
  }
  auto breaker = r.U32();
  if (!breaker) return std::nullopt;
  rec.breaker_open = *breaker;
  uint64_t* elog[] = {&rec.eventlog_size, &rec.eventlog_recorded,
                      &rec.eventlog_filtered, &rec.eventlog_dropped};
  for (uint64_t* c : elog) {
    auto v = r.U64();
    if (!v) return std::nullopt;
    *c = *v;
  }
  auto ndrop = r.U32();
  if (!ndrop) return std::nullopt;
  if (*ndrop > r.remaining()) return std::nullopt;  // corrupt count
  rec.dropped_by_pid.reserve(*ndrop);
  for (uint32_t i = 0; i < *ndrop; ++i) {
    auto dpid = r.I32();
    auto dn = r.U64();
    if (!dpid || !dn) return std::nullopt;
    rec.dropped_by_pid.push_back(PidDrop{*dpid, *dn});
  }
  auto store = r.Bool();
  auto jseq = r.U64();
  auto jbytes = r.U64();
  auto jpend = r.U32();
  auto preg = r.U32();
  auto preq = r.U64();
  auto frecs = r.U64();
  auto fdumps = r.U64();
  auto health = r.U8();
  auto reasons = GetStrVec(r);
  if (!store || !jseq || !jbytes || !jpend || !preg || !preq || !frecs || !fdumps ||
      !health || !reasons)
    return std::nullopt;
  rec.store_enabled = *store;
  rec.journal_seq = *jseq;
  rec.journal_bytes = *jbytes;
  rec.journal_pending = *jpend;
  rec.pmd_registry = *preg;
  rec.pmd_requests = *preq;
  rec.flight_records = *frecs;
  rec.flight_dumps = *fdumps;
  rec.health = *health;
  rec.health_reasons = std::move(*reasons);
  auto nprocs = r.U32();
  if (!nprocs) return std::nullopt;
  if (*nprocs > r.remaining()) return std::nullopt;  // corrupt count
  rec.procs.reserve(*nprocs);
  for (uint32_t i = 0; i < *nprocs; ++i) {
    auto p = GetProcRecord(r);
    if (!p) return std::nullopt;
    rec.procs.push_back(std::move(*p));
  }
  auto ngroups = r.U32();
  if (!ngroups) return std::nullopt;
  if (*ngroups > r.remaining()) return std::nullopt;  // corrupt count
  rec.groups.reserve(*ngroups);
  for (uint32_t i = 0; i < *ngroups; ++i) {
    GroupStatEntry g;
    auto name = r.Str();
    auto members = r.U32();
    auto exited = r.U32();
    if (!name || !members || !exited) return std::nullopt;
    g.name = std::move(*name);
    g.members = *members;
    g.exited = *exited;
    rec.groups.push_back(std::move(g));
  }
  auto nbarriers = r.U32();
  if (!nbarriers) return std::nullopt;
  if (*nbarriers > r.remaining()) return std::nullopt;  // corrupt count
  rec.barriers.reserve(*nbarriers);
  for (uint32_t i = 0; i < *nbarriers; ++i) {
    BarrierStatEntry b;
    auto name = r.Str();
    auto epoch = r.U64();
    auto waiters = r.U32();
    auto expected = r.U32();
    if (!name || !epoch || !waiters || !expected) return std::nullopt;
    b.name = std::move(*name);
    b.epoch = *epoch;
    b.waiters = *waiters;
    b.expected = *expected;
    rec.barriers.push_back(std::move(b));
  }
  auto nenv = r.U32();
  auto nwatch = r.U32();
  auto acct_cpu = r.U64();
  auto acct_ru = r.U64();
  if (!nenv || !nwatch || !acct_cpu || !acct_ru) return std::nullopt;
  rec.envars = *nenv;
  rec.envar_watchers = *nwatch;
  rec.acct_cpu_us = *acct_cpu;
  rec.acct_rusage_records = *acct_ru;
  return rec;
}

void PutStatReq(WireBuffer& w, const StatReq& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.bcast_seq);
  w.U64(m.signed_ts);
  PutStrVec(w, m.route);
  w.Bool(m.dump_flight);
}

void PutStatResp(WireBuffer& w, const StatResp& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.bcast_seq);
  w.Str(m.replier_host);
  PutStrVec(w, m.forwarded_to);
  PutStrVec(w, m.route);
  w.U32(static_cast<uint32_t>(m.route_index));
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const auto& rec : m.records) PutLpmStatRecord(w, rec);
}

void PutStatSubscribe(WireBuffer& w, const StatSubscribe& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.watch_id);
  w.U64(m.bcast_seq);
  w.U64(m.signed_ts);
  PutStrVec(w, m.route);
  w.U64(m.interval_us);
}

void PutStatDeltaRecord(WireBuffer& w, const StatDeltaRecord& rec) {
  w.Str(rec.host);
  w.Str(rec.user);
  w.I32(rec.uid);
  w.U64(rec.seq);
  w.U64(rec.t_us);
  w.U64(rec.dt_us);
  w.U64(rec.d_kernel_events);
  w.U64(rec.d_requests);
  w.U64(rec.d_requests_shed);
  w.U64(rec.d_retries);
  w.U64(rec.d_journal_bytes);
  w.U64(rec.d_eventlog_recorded);
  w.U64(rec.d_acct_cpu_us);
  w.U32(rec.queue_depth);
  w.U32(rec.procs_live);
  w.U8(rec.health);
}

void PutStatDelta(WireBuffer& w, const StatDelta& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.watch_id);
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const auto& rec : m.records) PutStatDeltaRecord(w, rec);
}

void PutStatUnsubscribe(WireBuffer& w, const StatUnsubscribe& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.watch_id);
}

std::optional<StatDeltaRecord> GetStatDeltaRecord(util::ByteReader& r) {
  StatDeltaRecord rec;
  auto host = r.Str();
  auto user = r.Str();
  auto uid = r.I32();
  if (!host || !user || !uid) return std::nullopt;
  rec.host = std::move(*host);
  rec.user = std::move(*user);
  rec.uid = *uid;
  uint64_t* u64s[] = {&rec.seq,
                      &rec.t_us,
                      &rec.dt_us,
                      &rec.d_kernel_events,
                      &rec.d_requests,
                      &rec.d_requests_shed,
                      &rec.d_retries,
                      &rec.d_journal_bytes,
                      &rec.d_eventlog_recorded,
                      &rec.d_acct_cpu_us};
  for (uint64_t* c : u64s) {
    auto v = r.U64();
    if (!v) return std::nullopt;
    *c = *v;
  }
  auto qdepth = r.U32();
  auto live = r.U32();
  auto health = r.U8();
  if (!qdepth || !live || !health) return std::nullopt;
  rec.queue_depth = *qdepth;
  rec.procs_live = *live;
  rec.health = *health;
  return rec;
}

// --- serialize --------------------------------------------------------------

void EncodeMsg(WireBuffer& w, const Msg& msg) {
  // STAT frames do not use the variant index as their wire tag: they
  // ride under the 0xF6 escape opcode plus a request/response sub-byte,
  // so pre-STAT decoders reject them instead of misreading.
  if (const auto* req = std::get_if<StatReq>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatReqSub);
    PutStatReq(w, *req);
    return;
  }
  if (const auto* resp = std::get_if<StatResp>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatRespSub);
    PutStatResp(w, *resp);
    return;
  }
  // The subscription sub-ops live in the same 0xF6 family.  They must be
  // intercepted here, before the variant-index branches: their variant
  // indices sit past the group family and would otherwise encode as
  // out-of-range 0xF8 sub-bytes.
  if (const auto* sub = std::get_if<StatSubscribe>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatSubscribeSub);
    PutStatSubscribe(w, *sub);
    return;
  }
  if (const auto* delta = std::get_if<StatDelta>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatDeltaSub);
    PutStatDelta(w, *delta);
    return;
  }
  if (const auto* unsub = std::get_if<StatUnsubscribe>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatUnsubscribeSub);
    PutStatUnsubscribe(w, *unsub);
    return;
  }
  // BUSY rejections likewise ride under their own escape opcode so
  // pre-overload decoders reject rather than misread them.
  if (const auto* busy = std::get_if<BusyResp>(&msg)) {
    w.U8(kBusyMsgTag);
    w.U64(busy->req_id);
    w.Str(busy->error);
    w.U64(busy->retry_after_us);
    return;
  }
  // Group messages ride under the 0xF8 escape opcode plus a sub-byte so
  // pre-group decoders reject rather than misread them.
  if (msg.index() >= kGroupIndexBase) {
    w.U8(kGroupMsgTag);
    w.U8(static_cast<uint8_t>(msg.index() - kGroupIndexBase));
  } else {
    w.U8(static_cast<uint8_t>(msg.index()));
  }
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloSibling>) {
          w.Str(m.user);
          w.Str(m.origin_host);
          w.I32(m.origin_lpm_pid);
          w.U64(m.token);
          w.Str(m.ccs_host);
        } else if constexpr (std::is_same_v<T, HelloTool>) {
          w.Str(m.user);
          w.I32(m.uid);
          w.Str(m.tool_name);
        } else if constexpr (std::is_same_v<T, HelloAck>) {
          w.Str(m.host);
          w.I32(m.lpm_pid);
          w.Str(m.ccs_host);
        } else if constexpr (std::is_same_v<T, HelloReject>) {
          w.Str(m.reason);
        } else if constexpr (std::is_same_v<T, CreateReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          w.Str(m.command);
          PutGPid(w, m.logical_parent);
          w.Bool(m.initially_running);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, CreateResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          PutGPid(w, m.gpid);
        } else if constexpr (std::is_same_v<T, SignalReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U8(static_cast<uint8_t>(m.sig));
        } else if constexpr (std::is_same_v<T, SignalResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
        } else if constexpr (std::is_same_v<T, SnapshotReq>) {
          w.U64(m.req_id);
          w.Str(m.origin_host);
          w.U64(m.bcast_seq);
          w.U64(m.signed_ts);
          PutStrVec(w, m.route);
        } else if constexpr (std::is_same_v<T, SnapshotResp>) {
          w.U64(m.req_id);
          w.Str(m.origin_host);
          w.U64(m.bcast_seq);
          w.Str(m.replier_host);
          PutStrVec(w, m.forwarded_to);
          PutStrVec(w, m.route);
          w.U32(static_cast<uint32_t>(m.route_index));
          w.U32(static_cast<uint32_t>(m.records.size()));
          for (const auto& rec : m.records) PutProcRecord(w, rec);
        } else if constexpr (std::is_same_v<T, RusageReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
        } else if constexpr (std::is_same_v<T, RusageResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.records.size()));
          for (const auto& rec : m.records) PutRusageRecord(w, rec);
        } else if constexpr (std::is_same_v<T, AdoptReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, AdoptResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.adopted_pids.size()));
          for (int32_t pid : m.adopted_pids) w.I32(pid);
        } else if constexpr (std::is_same_v<T, TraceReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, TraceResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
        } else if constexpr (std::is_same_v<T, HistoryReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          w.I32(m.pid_filter);
          w.U32(m.max_events);
        } else if constexpr (std::is_same_v<T, HistoryResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.events.size()));
          for (const auto& ev : m.events) PutHistEvent(w, ev);
        } else if constexpr (std::is_same_v<T, TriggerReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          PutTriggerSpec(w, m.spec);
        } else if constexpr (std::is_same_v<T, TriggerResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U64(m.trigger_id);
        } else if constexpr (std::is_same_v<T, FilesReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
        } else if constexpr (std::is_same_v<T, FilesResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.files.size()));
          for (const auto& f : m.files) {
            w.I32(f.fd);
            w.Str(f.path);
            w.Str(f.mode);
          }
        } else if constexpr (std::is_same_v<T, MigrateReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.Str(m.dest_host);
        } else if constexpr (std::is_same_v<T, MigrateResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          PutGPid(w, m.new_gpid);
        } else if constexpr (std::is_same_v<T, RegisterChild>) {
          w.I32(m.parent_pid);
          PutGPid(w, m.child);
        } else if constexpr (std::is_same_v<T, BecomeCcs>) {
          w.Str(m.requested_by);
        } else if constexpr (std::is_same_v<T, CcsChanged>) {
          w.Str(m.new_ccs);
        } else if constexpr (std::is_same_v<T, Probe>) {
          w.U64(m.req_id);
        } else if constexpr (std::is_same_v<T, ProbeAck>) {
          w.U64(m.req_id);
          w.Str(m.host);
          w.Bool(m.is_ccs);
        } else if constexpr (std::is_same_v<T, GroupSpawnReq>) {
          w.U64(m.req_id);
          w.Str(m.group);
          PutStrVec(w, m.hosts);
          PutStrVec(w, m.commands);
        } else if constexpr (std::is_same_v<T, GroupSpawnResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.members.size()));
          for (const auto& g : m.members) PutGPid(w, g);
          PutStrVec(w, m.host_errors);
        } else if constexpr (std::is_same_v<T, GroupPartReq>) {
          w.U64(m.req_id);
          w.Str(m.group);
          w.Str(m.coordinator);
          w.Str(m.command);
        } else if constexpr (std::is_same_v<T, GroupPartResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          PutGPid(w, m.gpid);
        } else if constexpr (std::is_same_v<T, GroupUndoReq>) {
          w.U64(m.req_id);
          w.Str(m.group);
          PutGPid(w, m.target);
        } else if constexpr (std::is_same_v<T, GroupAck>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.Str(m.ccs_hint);
        } else if constexpr (std::is_same_v<T, GroupExitNotify>) {
          w.U64(m.req_id);
          w.Str(m.group);
          PutGPid(w, m.gpid);
          w.I32(m.exit_status);
        } else if constexpr (std::is_same_v<T, GroupAddNotify>) {
          w.U64(m.req_id);
          w.Str(m.group);
          PutGPid(w, m.gpid);
        } else if constexpr (std::is_same_v<T, GroupSignalReq>) {
          w.U64(m.req_id);
          w.Str(m.group);
          w.U8(static_cast<uint8_t>(m.sig));
        } else if constexpr (std::is_same_v<T, GroupSignalResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(m.delivered);
          w.U32(m.failed);
        } else if constexpr (std::is_same_v<T, GroupJoinReq>) {
          w.U64(m.req_id);
          w.Str(m.group);
        } else if constexpr (std::is_same_v<T, GroupJoinResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.Str(m.group);
          w.U32(static_cast<uint32_t>(m.exits.size()));
          for (const auto& e : m.exits) {
            PutGPid(w, e.gpid);
            w.I32(e.exit_status);
          }
        } else if constexpr (std::is_same_v<T, BarrierEnterReq>) {
          w.U64(m.req_id);
          w.Str(m.name);
          w.U64(m.epoch);
          w.U32(m.expected);
        } else if constexpr (std::is_same_v<T, BarrierEnterResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.Bool(m.released);
          w.U64(m.epoch);
          PutStrVec(w, m.stragglers);
        } else if constexpr (std::is_same_v<T, BarrierJoinReq>) {
          w.U64(m.req_id);
          w.Str(m.name);
          w.U64(m.epoch);
          w.U32(m.expected);
          w.Str(m.host);
          w.U32(m.count);
        } else if constexpr (std::is_same_v<T, BarrierReleaseReq>) {
          w.U64(m.req_id);
          w.Str(m.name);
          w.U64(m.epoch);
          w.Bool(m.released);
          PutStrVec(w, m.stragglers);
        } else if constexpr (std::is_same_v<T, EnvarSetReq>) {
          w.U64(m.req_id);
          w.Str(m.key);
          w.Str(m.value);
        } else if constexpr (std::is_same_v<T, EnvarSetResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U64(m.version);
        } else if constexpr (std::is_same_v<T, EnvarGetReq>) {
          w.U64(m.req_id);
          w.Str(m.key);
        } else if constexpr (std::is_same_v<T, EnvarGetResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.Str(m.key);
          w.Str(m.value);
          w.U64(m.version);
        } else if constexpr (std::is_same_v<T, EnvarUpdate>) {
          w.U64(m.req_id);
          w.Str(m.origin_host);
          w.U64(m.bcast_seq);
          w.U64(m.signed_ts);
          PutStrVec(w, m.route);
          w.Str(m.key);
          w.Str(m.value);
          w.U64(m.version);
          w.Str(m.version_origin);
        } else if constexpr (std::is_same_v<T, EnvarSync>) {
          w.U64(m.req_id);
          w.U32(static_cast<uint32_t>(m.entries.size()));
          for (const auto& e : m.entries) {
            w.Str(e.key);
            w.Str(e.value);
            w.U64(e.version);
            w.Str(e.origin);
          }
        } else if constexpr (std::is_same_v<T, EnvarWatchReq>) {
          w.U64(m.req_id);
          w.Str(m.key);
          PutTriggerSpec(w, m.spec);
        } else if constexpr (std::is_same_v<T, EnvarWatchResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U64(m.watch_id);
        }
      },
      msg);
}

}  // namespace

namespace {

// Fletcher-16 over `n` bytes.  Detects every single-byte change — which
// is exactly the corruption a LinkFaultProfile injects — at two bytes of
// header cost.
uint16_t Fletcher16(const uint8_t* p, size_t n) {
  uint32_t lo = 0, hi = 0;
  for (size_t i = 0; i < n; ++i) {
    lo = (lo + p[i]) % 255;
    hi = (hi + lo) % 255;
  }
  return static_cast<uint16_t>((hi << 8) | lo);
}

obs::Counter* CorruptFramesCounter() {
  static obs::Counter* c = obs::Registry::Instance().GetCounter("net.corrupt_frames");
  return c;
}

}  // namespace

void Serialize(const Msg& msg, const obs::TraceContext& trace,
               const DeadlineStamp& stamp, WireBuffer& out) {
  PPM_PROF_SCOPE("wire.encode");
  Metrics().frames_encoded->Inc();
  Metrics().hdr_checksum_bytes->Inc(kChecksumHeaderBytes);
  out.Clear();
  // Checksum header first, with a placeholder checksum patched in after
  // the body is encoded — one pass, no copy of the frame body.
  out.U8(kChecksumHeaderTag);
  out.U16(0);
  if (trace.valid()) {
    Metrics().hdr_trace_bytes->Inc(kTraceHeaderBytes);
    out.U8(kTraceHeaderTag);
    out.U64(trace.trace_id);
    out.U64(trace.span_id);
    out.U64(trace.parent_span);
  }
  if (stamp.valid()) {
    Metrics().hdr_deadline_bytes->Inc(kDeadlineHeaderBytes);
    out.U8(kDeadlineHeaderTag);
    out.U64(stamp.deadline_us);
    out.U64(stamp.idem_token);
  }
  EncodeMsg(out, msg);
  uint16_t ck = Fletcher16(out.data() + kChecksumHeaderBytes, out.size() - kChecksumHeaderBytes);
  out.PatchU16(1, ck);
}

void Serialize(const Msg& msg, const obs::TraceContext& trace, WireBuffer& out) {
  Serialize(msg, trace, DeadlineStamp{}, out);
}

std::vector<uint8_t> Serialize(const Msg& msg) {
  WireBuffer b;
  Serialize(msg, obs::TraceContext{}, DeadlineStamp{}, b);
  return b.TakeOut();
}

std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace) {
  WireBuffer b;
  Serialize(msg, trace, DeadlineStamp{}, b);
  return b.TakeOut();
}

std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace,
                               const DeadlineStamp& stamp) {
  WireBuffer b;
  Serialize(msg, trace, stamp, b);
  return b.TakeOut();
}

// --- parse ---------------------------------------------------------------------

namespace {

template <typename T>
std::optional<Msg> Lift(std::optional<T> m) {
  if (!m) return std::nullopt;
  return Msg{std::move(*m)};
}

std::optional<HelloSibling> ParseHelloSibling(util::ByteReader& r) {
  HelloSibling m;
  auto user = r.Str();
  auto oh = r.Str();
  auto pid = r.I32();
  auto token = r.U64();
  auto ccs = r.Str();
  if (!user || !oh || !pid || !token || !ccs) return std::nullopt;
  m.user = *user;
  m.origin_host = *oh;
  m.origin_lpm_pid = *pid;
  m.token = *token;
  m.ccs_host = *ccs;
  return m;
}

std::optional<HelloTool> ParseHelloTool(util::ByteReader& r) {
  HelloTool m;
  auto user = r.Str();
  auto uid = r.I32();
  auto name = r.Str();
  if (!user || !uid || !name) return std::nullopt;
  m.user = *user;
  m.uid = *uid;
  m.tool_name = *name;
  return m;
}

std::optional<HelloAck> ParseHelloAck(util::ByteReader& r) {
  HelloAck m;
  auto host = r.Str();
  auto pid = r.I32();
  auto ccs = r.Str();
  if (!host || !pid || !ccs) return std::nullopt;
  m.host = *host;
  m.lpm_pid = *pid;
  m.ccs_host = *ccs;
  return m;
}

std::optional<HelloReject> ParseHelloReject(util::ByteReader& r) {
  auto reason = r.Str();
  if (!reason) return std::nullopt;
  HelloReject m;
  m.reason = *reason;
  return m;
}

std::optional<CreateReq> ParseCreateReq(util::ByteReader& r) {
  CreateReq m;
  auto id = r.U64();
  auto host = r.Str();
  auto cmd = r.Str();
  auto parent = GetGPid(r);
  auto running = r.Bool();
  auto mask = r.U32();
  if (!id || !host || !cmd || !parent || !running || !mask) return std::nullopt;
  m.req_id = *id;
  m.target_host = *host;
  m.command = *cmd;
  m.logical_parent = std::move(*parent);
  m.initially_running = *running;
  m.trace_mask = *mask;
  return m;
}

std::optional<CreateResp> ParseCreateResp(util::ByteReader& r) {
  CreateResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto gpid = GetGPid(r);
  if (!id || !ok || !err || !gpid) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  m.gpid = std::move(*gpid);
  return m;
}

std::optional<SignalReq> ParseSignalReq(util::ByteReader& r) {
  SignalReq m;
  auto id = r.U64();
  auto target = GetGPid(r);
  auto sig = r.U8();
  if (!id || !target || !sig) return std::nullopt;
  m.req_id = *id;
  m.target = std::move(*target);
  m.sig = static_cast<host::Signal>(*sig);
  return m;
}

std::optional<SignalResp> ParseSignalResp(util::ByteReader& r) {
  SignalResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  if (!id || !ok || !err) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  return m;
}

std::optional<SnapshotReq> ParseSnapshotReq(util::ByteReader& r) {
  SnapshotReq m;
  auto id = r.U64();
  auto origin = r.Str();
  auto seq = r.U64();
  auto ts = r.U64();
  auto route = GetStrVec(r);
  if (!id || !origin || !seq || !ts || !route) return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.bcast_seq = *seq;
  m.signed_ts = *ts;
  m.route = std::move(*route);
  return m;
}

std::optional<SnapshotResp> ParseSnapshotResp(util::ByteReader& r) {
  SnapshotResp m;
  auto id = r.U64();
  auto origin = r.Str();
  auto seq = r.U64();
  auto replier = r.Str();
  auto fwd = GetStrVec(r);
  auto route = GetStrVec(r);
  auto idx = r.U32();
  auto n = r.U32();
  if (!id || !origin || !seq || !replier || !fwd || !route || !idx || !n)
    return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.bcast_seq = *seq;
  m.replier_host = *replier;
  m.forwarded_to = std::move(*fwd);
  m.route = std::move(*route);
  m.route_index = *idx;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.records.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto rec = GetProcRecord(r);
    if (!rec) return std::nullopt;
    m.records.push_back(std::move(*rec));
  }
  return m;
}

std::optional<RusageReq> ParseRusageReq(util::ByteReader& r) {
  RusageReq m;
  auto id = r.U64();
  auto host = r.Str();
  if (!id || !host) return std::nullopt;
  m.req_id = *id;
  m.target_host = *host;
  return m;
}

std::optional<RusageResp> ParseRusageResp(util::ByteReader& r) {
  RusageResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !n) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.records.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto rec = GetRusageRecord(r);
    if (!rec) return std::nullopt;
    m.records.push_back(std::move(*rec));
  }
  return m;
}

std::optional<AdoptReq> ParseAdoptReq(util::ByteReader& r) {
  AdoptReq m;
  auto id = r.U64();
  auto target = GetGPid(r);
  auto mask = r.U32();
  if (!id || !target || !mask) return std::nullopt;
  m.req_id = *id;
  m.target = std::move(*target);
  m.trace_mask = *mask;
  return m;
}

std::optional<AdoptResp> ParseAdoptResp(util::ByteReader& r) {
  AdoptResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !n) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  for (uint32_t i = 0; i < *n; ++i) {
    auto pid = r.I32();
    if (!pid) return std::nullopt;
    m.adopted_pids.push_back(*pid);
  }
  return m;
}

std::optional<TraceReq> ParseTraceReq(util::ByteReader& r) {
  TraceReq m;
  auto id = r.U64();
  auto target = GetGPid(r);
  auto mask = r.U32();
  if (!id || !target || !mask) return std::nullopt;
  m.req_id = *id;
  m.target = std::move(*target);
  m.trace_mask = *mask;
  return m;
}

std::optional<TraceResp> ParseTraceResp(util::ByteReader& r) {
  TraceResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  if (!id || !ok || !err) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  return m;
}

std::optional<HistoryReq> ParseHistoryReq(util::ByteReader& r) {
  HistoryReq m;
  auto id = r.U64();
  auto host = r.Str();
  auto filter = r.I32();
  auto max = r.U32();
  if (!id || !host || !filter || !max) return std::nullopt;
  m.req_id = *id;
  m.target_host = *host;
  m.pid_filter = *filter;
  m.max_events = *max;
  return m;
}

std::optional<HistoryResp> ParseHistoryResp(util::ByteReader& r) {
  HistoryResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !n) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.events.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto ev = GetHistEvent(r);
    if (!ev) return std::nullopt;
    m.events.push_back(std::move(*ev));
  }
  return m;
}

std::optional<TriggerReq> ParseTriggerReq(util::ByteReader& r) {
  TriggerReq m;
  auto id = r.U64();
  auto host = r.Str();
  auto spec = GetTriggerSpec(r);
  if (!id || !host || !spec) return std::nullopt;
  m.req_id = *id;
  m.target_host = *host;
  m.spec = std::move(*spec);
  return m;
}

std::optional<TriggerResp> ParseTriggerResp(util::ByteReader& r) {
  TriggerResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto tid = r.U64();
  if (!id || !ok || !err || !tid) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  m.trigger_id = *tid;
  return m;
}

std::optional<FilesReq> ParseFilesReq(util::ByteReader& r) {
  FilesReq m;
  auto id = r.U64();
  auto target = GetGPid(r);
  if (!id || !target) return std::nullopt;
  m.req_id = *id;
  m.target = std::move(*target);
  return m;
}

std::optional<FilesResp> ParseFilesResp(util::ByteReader& r) {
  FilesResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !n) return std::nullopt;
  for (uint32_t i = 0; i < *n; ++i) {
    FileRecord f;
    auto fd = r.I32();
    auto path = r.Str();
    auto mode = r.Str();
    if (!fd || !path || !mode) return std::nullopt;
    f.fd = *fd;
    f.path = std::move(*path);
    f.mode = std::move(*mode);
    m.files.push_back(std::move(f));
  }
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  return m;
}

std::optional<MigrateReq> ParseMigrateReq(util::ByteReader& r) {
  MigrateReq m;
  auto id = r.U64();
  auto target = GetGPid(r);
  auto dest = r.Str();
  if (!id || !target || !dest) return std::nullopt;
  m.req_id = *id;
  m.target = std::move(*target);
  m.dest_host = std::move(*dest);
  return m;
}

std::optional<MigrateResp> ParseMigrateResp(util::ByteReader& r) {
  MigrateResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto gpid = GetGPid(r);
  if (!id || !ok || !err || !gpid) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = *err;
  m.new_gpid = std::move(*gpid);
  return m;
}

std::optional<RegisterChild> ParseRegisterChild(util::ByteReader& r) {
  RegisterChild m;
  auto pid = r.I32();
  auto child = GetGPid(r);
  if (!pid || !child) return std::nullopt;
  m.parent_pid = *pid;
  m.child = std::move(*child);
  return m;
}

std::optional<BecomeCcs> ParseBecomeCcs(util::ByteReader& r) {
  auto by = r.Str();
  if (!by) return std::nullopt;
  BecomeCcs m;
  m.requested_by = *by;
  return m;
}

std::optional<CcsChanged> ParseCcsChanged(util::ByteReader& r) {
  auto ccs = r.Str();
  if (!ccs) return std::nullopt;
  CcsChanged m;
  m.new_ccs = *ccs;
  return m;
}

std::optional<Probe> ParseProbe(util::ByteReader& r) {
  auto id = r.U64();
  if (!id) return std::nullopt;
  Probe m;
  m.req_id = *id;
  return m;
}

std::optional<StatReq> ParseStatReq(util::ByteReader& r) {
  StatReq m;
  auto id = r.U64();
  auto origin = r.Str();
  auto seq = r.U64();
  auto ts = r.U64();
  auto route = GetStrVec(r);
  auto dump = r.Bool();
  if (!id || !origin || !seq || !ts || !route || !dump) return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.bcast_seq = *seq;
  m.signed_ts = *ts;
  m.route = std::move(*route);
  m.dump_flight = *dump;
  return m;
}

std::optional<StatResp> ParseStatResp(util::ByteReader& r) {
  StatResp m;
  auto id = r.U64();
  auto origin = r.Str();
  auto seq = r.U64();
  auto replier = r.Str();
  auto fwd = GetStrVec(r);
  auto route = GetStrVec(r);
  auto idx = r.U32();
  auto n = r.U32();
  if (!id || !origin || !seq || !replier || !fwd || !route || !idx || !n)
    return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.bcast_seq = *seq;
  m.replier_host = *replier;
  m.forwarded_to = std::move(*fwd);
  m.route = std::move(*route);
  m.route_index = *idx;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.records.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto rec = GetLpmStatRecord(r);
    if (!rec) return std::nullopt;
    m.records.push_back(std::move(*rec));
  }
  return m;
}

std::optional<StatSubscribe> ParseStatSubscribe(util::ByteReader& r) {
  StatSubscribe m;
  auto id = r.U64();
  auto origin = r.Str();
  auto watch = r.U64();
  auto seq = r.U64();
  auto ts = r.U64();
  auto route = GetStrVec(r);
  auto interval = r.U64();
  if (!id || !origin || !watch || !seq || !ts || !route || !interval)
    return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.watch_id = *watch;
  m.bcast_seq = *seq;
  m.signed_ts = *ts;
  m.route = std::move(*route);
  m.interval_us = *interval;
  return m;
}

std::optional<StatDelta> ParseStatDelta(util::ByteReader& r) {
  StatDelta m;
  auto id = r.U64();
  auto origin = r.Str();
  auto watch = r.U64();
  auto n = r.U32();
  if (!id || !origin || !watch || !n) return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.watch_id = *watch;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.records.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto rec = GetStatDeltaRecord(r);
    if (!rec) return std::nullopt;
    m.records.push_back(std::move(*rec));
  }
  return m;
}

std::optional<StatUnsubscribe> ParseStatUnsubscribe(util::ByteReader& r) {
  StatUnsubscribe m;
  auto id = r.U64();
  auto origin = r.Str();
  auto watch = r.U64();
  if (!id || !origin || !watch) return std::nullopt;
  m.req_id = *id;
  m.origin_host = *origin;
  m.watch_id = *watch;
  return m;
}

std::optional<ProbeAck> ParseProbeAck(util::ByteReader& r) {
  ProbeAck m;
  auto id = r.U64();
  auto host = r.Str();
  auto is_ccs = r.Bool();
  if (!id || !host || !is_ccs) return std::nullopt;
  m.req_id = *id;
  m.host = *host;
  m.is_ccs = *is_ccs;
  return m;
}

// --- group message parsers (the 0xF8 family) -------------------------------

std::optional<GroupSpawnReq> ParseGroupSpawnReq(util::ByteReader& r) {
  GroupSpawnReq m;
  auto id = r.U64();
  auto group = r.Str();
  auto hosts = GetStrVec(r);
  auto commands = GetStrVec(r);
  if (!id || !group || !hosts || !commands) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.hosts = std::move(*hosts);
  m.commands = std::move(*commands);
  return m;
}

std::optional<GroupSpawnResp> ParseGroupSpawnResp(util::ByteReader& r) {
  GroupSpawnResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !n) return std::nullopt;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.members.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    auto g = GetGPid(r);
    if (!g) return std::nullopt;
    m.members.push_back(std::move(*g));
  }
  auto errors = GetStrVec(r);
  if (!errors) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.host_errors = std::move(*errors);
  return m;
}

std::optional<GroupPartReq> ParseGroupPartReq(util::ByteReader& r) {
  GroupPartReq m;
  auto id = r.U64();
  auto group = r.Str();
  auto coord = r.Str();
  auto cmd = r.Str();
  if (!id || !group || !coord || !cmd) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.coordinator = std::move(*coord);
  m.command = std::move(*cmd);
  return m;
}

std::optional<GroupPartResp> ParseGroupPartResp(util::ByteReader& r) {
  GroupPartResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto gpid = GetGPid(r);
  if (!id || !ok || !err || !gpid) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.gpid = std::move(*gpid);
  return m;
}

std::optional<GroupUndoReq> ParseGroupUndoReq(util::ByteReader& r) {
  GroupUndoReq m;
  auto id = r.U64();
  auto group = r.Str();
  auto target = GetGPid(r);
  if (!id || !group || !target) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.target = std::move(*target);
  return m;
}

std::optional<GroupAck> ParseGroupAck(util::ByteReader& r) {
  GroupAck m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto hint = r.Str();
  if (!id || !ok || !err || !hint) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.ccs_hint = std::move(*hint);
  return m;
}

std::optional<GroupExitNotify> ParseGroupExitNotify(util::ByteReader& r) {
  GroupExitNotify m;
  auto id = r.U64();
  auto group = r.Str();
  auto gpid = GetGPid(r);
  auto status = r.I32();
  if (!id || !group || !gpid || !status) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.gpid = std::move(*gpid);
  m.exit_status = *status;
  return m;
}

std::optional<GroupAddNotify> ParseGroupAddNotify(util::ByteReader& r) {
  GroupAddNotify m;
  auto id = r.U64();
  auto group = r.Str();
  auto gpid = GetGPid(r);
  if (!id || !group || !gpid) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.gpid = std::move(*gpid);
  return m;
}

std::optional<GroupSignalReq> ParseGroupSignalReq(util::ByteReader& r) {
  GroupSignalReq m;
  auto id = r.U64();
  auto group = r.Str();
  auto sig = r.U8();
  if (!id || !group || !sig) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  m.sig = static_cast<host::Signal>(*sig);
  return m;
}

std::optional<GroupSignalResp> ParseGroupSignalResp(util::ByteReader& r) {
  GroupSignalResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto delivered = r.U32();
  auto failed = r.U32();
  if (!id || !ok || !err || !delivered || !failed) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.delivered = *delivered;
  m.failed = *failed;
  return m;
}

std::optional<GroupJoinReq> ParseGroupJoinReq(util::ByteReader& r) {
  GroupJoinReq m;
  auto id = r.U64();
  auto group = r.Str();
  if (!id || !group) return std::nullopt;
  m.req_id = *id;
  m.group = std::move(*group);
  return m;
}

std::optional<GroupJoinResp> ParseGroupJoinResp(util::ByteReader& r) {
  GroupJoinResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto group = r.Str();
  auto n = r.U32();
  if (!id || !ok || !err || !group || !n) return std::nullopt;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.exits.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    GroupExit e;
    auto gpid = GetGPid(r);
    auto status = r.I32();
    if (!gpid || !status) return std::nullopt;
    e.gpid = std::move(*gpid);
    e.exit_status = *status;
    m.exits.push_back(std::move(e));
  }
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.group = std::move(*group);
  return m;
}

std::optional<BarrierEnterReq> ParseBarrierEnterReq(util::ByteReader& r) {
  BarrierEnterReq m;
  auto id = r.U64();
  auto name = r.Str();
  auto epoch = r.U64();
  auto expected = r.U32();
  if (!id || !name || !epoch || !expected) return std::nullopt;
  m.req_id = *id;
  m.name = std::move(*name);
  m.epoch = *epoch;
  m.expected = *expected;
  return m;
}

std::optional<BarrierEnterResp> ParseBarrierEnterResp(util::ByteReader& r) {
  BarrierEnterResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto released = r.Bool();
  auto epoch = r.U64();
  auto stragglers = GetStrVec(r);
  if (!id || !ok || !err || !released || !epoch || !stragglers) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.released = *released;
  m.epoch = *epoch;
  m.stragglers = std::move(*stragglers);
  return m;
}

std::optional<BarrierJoinReq> ParseBarrierJoinReq(util::ByteReader& r) {
  BarrierJoinReq m;
  auto id = r.U64();
  auto name = r.Str();
  auto epoch = r.U64();
  auto expected = r.U32();
  auto host = r.Str();
  auto count = r.U32();
  if (!id || !name || !epoch || !expected || !host || !count) return std::nullopt;
  m.req_id = *id;
  m.name = std::move(*name);
  m.epoch = *epoch;
  m.expected = *expected;
  m.host = std::move(*host);
  m.count = *count;
  return m;
}

std::optional<BarrierReleaseReq> ParseBarrierReleaseReq(util::ByteReader& r) {
  BarrierReleaseReq m;
  auto id = r.U64();
  auto name = r.Str();
  auto epoch = r.U64();
  auto released = r.Bool();
  auto stragglers = GetStrVec(r);
  if (!id || !name || !epoch || !released || !stragglers) return std::nullopt;
  m.req_id = *id;
  m.name = std::move(*name);
  m.epoch = *epoch;
  m.released = *released;
  m.stragglers = std::move(*stragglers);
  return m;
}

std::optional<EnvarSetReq> ParseEnvarSetReq(util::ByteReader& r) {
  EnvarSetReq m;
  auto id = r.U64();
  auto key = r.Str();
  auto value = r.Str();
  if (!id || !key || !value) return std::nullopt;
  m.req_id = *id;
  m.key = std::move(*key);
  m.value = std::move(*value);
  return m;
}

std::optional<EnvarSetResp> ParseEnvarSetResp(util::ByteReader& r) {
  EnvarSetResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto version = r.U64();
  if (!id || !ok || !err || !version) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.version = *version;
  return m;
}

std::optional<EnvarGetReq> ParseEnvarGetReq(util::ByteReader& r) {
  EnvarGetReq m;
  auto id = r.U64();
  auto key = r.Str();
  if (!id || !key) return std::nullopt;
  m.req_id = *id;
  m.key = std::move(*key);
  return m;
}

std::optional<EnvarGetResp> ParseEnvarGetResp(util::ByteReader& r) {
  EnvarGetResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto key = r.Str();
  auto value = r.Str();
  auto version = r.U64();
  if (!id || !ok || !err || !key || !value || !version) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.key = std::move(*key);
  m.value = std::move(*value);
  m.version = *version;
  return m;
}

std::optional<EnvarUpdate> ParseEnvarUpdate(util::ByteReader& r) {
  EnvarUpdate m;
  auto id = r.U64();
  auto origin = r.Str();
  auto seq = r.U64();
  auto ts = r.U64();
  auto route = GetStrVec(r);
  auto key = r.Str();
  auto value = r.Str();
  auto version = r.U64();
  auto vorigin = r.Str();
  if (!id || !origin || !seq || !ts || !route || !key || !value || !version || !vorigin)
    return std::nullopt;
  m.req_id = *id;
  m.origin_host = std::move(*origin);
  m.bcast_seq = *seq;
  m.signed_ts = *ts;
  m.route = std::move(*route);
  m.key = std::move(*key);
  m.value = std::move(*value);
  m.version = *version;
  m.version_origin = std::move(*vorigin);
  return m;
}

std::optional<EnvarSync> ParseEnvarSync(util::ByteReader& r) {
  EnvarSync m;
  auto id = r.U64();
  auto n = r.U32();
  if (!id || !n) return std::nullopt;
  if (*n > r.remaining()) return std::nullopt;  // corrupt count
  m.entries.reserve(*n);
  for (uint32_t i = 0; i < *n; ++i) {
    EnvarEntry e;
    auto key = r.Str();
    auto value = r.Str();
    auto version = r.U64();
    auto origin = r.Str();
    if (!key || !value || !version || !origin) return std::nullopt;
    e.key = std::move(*key);
    e.value = std::move(*value);
    e.version = *version;
    e.origin = std::move(*origin);
    m.entries.push_back(std::move(e));
  }
  m.req_id = *id;
  return m;
}

std::optional<EnvarWatchReq> ParseEnvarWatchReq(util::ByteReader& r) {
  EnvarWatchReq m;
  auto id = r.U64();
  auto key = r.Str();
  auto spec = GetTriggerSpec(r);
  if (!id || !key || !spec) return std::nullopt;
  m.req_id = *id;
  m.key = std::move(*key);
  m.spec = std::move(*spec);
  return m;
}

std::optional<EnvarWatchResp> ParseEnvarWatchResp(util::ByteReader& r) {
  EnvarWatchResp m;
  auto id = r.U64();
  auto ok = r.Bool();
  auto err = r.Str();
  auto wid = r.U64();
  if (!id || !ok || !err || !wid) return std::nullopt;
  m.req_id = *id;
  m.ok = *ok;
  m.error = std::move(*err);
  m.watch_id = *wid;
  return m;
}

std::optional<Msg> ParseGroupMsg(uint8_t sub, util::ByteReader& r) {
  switch (sub) {
    case 0: return Lift(ParseGroupSpawnReq(r));
    case 1: return Lift(ParseGroupSpawnResp(r));
    case 2: return Lift(ParseGroupPartReq(r));
    case 3: return Lift(ParseGroupPartResp(r));
    case 4: return Lift(ParseGroupUndoReq(r));
    case 5: return Lift(ParseGroupAck(r));
    case 6: return Lift(ParseGroupExitNotify(r));
    case 7: return Lift(ParseGroupAddNotify(r));
    case 8: return Lift(ParseGroupSignalReq(r));
    case 9: return Lift(ParseGroupSignalResp(r));
    case 10: return Lift(ParseGroupJoinReq(r));
    case 11: return Lift(ParseGroupJoinResp(r));
    case 12: return Lift(ParseBarrierEnterReq(r));
    case 13: return Lift(ParseBarrierEnterResp(r));
    case 14: return Lift(ParseBarrierJoinReq(r));
    case 15: return Lift(ParseBarrierReleaseReq(r));
    case 16: return Lift(ParseEnvarSetReq(r));
    case 17: return Lift(ParseEnvarSetResp(r));
    case 18: return Lift(ParseEnvarGetReq(r));
    case 19: return Lift(ParseEnvarGetResp(r));
    case 20: return Lift(ParseEnvarUpdate(r));
    case 21: return Lift(ParseEnvarSync(r));
    case 22: return Lift(ParseEnvarWatchReq(r));
    case 23: return Lift(ParseEnvarWatchResp(r));
    default: return std::nullopt;
  }
}

}  // namespace

std::optional<Msg> Parse(WireView bytes) { return Parse(bytes, nullptr, nullptr); }

std::optional<Msg> Parse(WireView bytes, obs::TraceContext* trace) {
  return Parse(bytes, trace, nullptr);
}

std::optional<Msg> Parse(WireView bytes, obs::TraceContext* trace,
                         DeadlineStamp* stamp) {
  PPM_PROF_SCOPE("wire.decode");
  Metrics().frames_decoded->Inc();
  util::ByteReader r(bytes.data(), bytes.size());
  if (trace) *trace = obs::TraceContext{};
  if (stamp) *stamp = DeadlineStamp{};
  auto tag = r.U8();
  if (!tag) return std::nullopt;
  if (*tag == kChecksumHeaderTag) {
    auto lo = r.U8();
    auto hi = r.U8();
    if (!lo || !hi) return std::nullopt;
    uint16_t want = static_cast<uint16_t>(*lo | (static_cast<uint16_t>(*hi) << 8));
    uint16_t got = Fletcher16(bytes.data() + kChecksumHeaderBytes,
                              bytes.size() - kChecksumHeaderBytes);
    if (want != got) {
      // Corruption detected in flight: reject and count, never deliver.
      CorruptFramesCounter()->Inc();
      return std::nullopt;
    }
    tag = r.U8();
    if (!tag) return std::nullopt;
  }
  if (*tag == kTraceHeaderTag) {
    auto tid = r.U64();
    auto sid = r.U64();
    auto psid = r.U64();
    if (!tid || !sid || !psid) return std::nullopt;
    if (trace) {
      trace->trace_id = *tid;
      trace->span_id = *sid;
      trace->parent_span = *psid;
    }
    tag = r.U8();
    if (!tag) return std::nullopt;
  }
  if (*tag == kDeadlineHeaderTag) {
    auto deadline = r.U64();
    auto idem = r.U64();
    if (!deadline || !idem) return std::nullopt;
    if (stamp) {
      stamp->deadline_us = *deadline;
      stamp->idem_token = *idem;
    }
    tag = r.U8();
    if (!tag) return std::nullopt;
  }
  std::optional<Msg> msg;
  switch (*tag) {
    case 0: msg = Lift(ParseHelloSibling(r)); break;
    case 1: msg = Lift(ParseHelloTool(r)); break;
    case 2: msg = Lift(ParseHelloAck(r)); break;
    case 3: msg = Lift(ParseHelloReject(r)); break;
    case 4: msg = Lift(ParseCreateReq(r)); break;
    case 5: msg = Lift(ParseCreateResp(r)); break;
    case 6: msg = Lift(ParseSignalReq(r)); break;
    case 7: msg = Lift(ParseSignalResp(r)); break;
    case 8: msg = Lift(ParseSnapshotReq(r)); break;
    case 9: msg = Lift(ParseSnapshotResp(r)); break;
    case 10: msg = Lift(ParseRusageReq(r)); break;
    case 11: msg = Lift(ParseRusageResp(r)); break;
    case 12: msg = Lift(ParseAdoptReq(r)); break;
    case 13: msg = Lift(ParseAdoptResp(r)); break;
    case 14: msg = Lift(ParseTraceReq(r)); break;
    case 15: msg = Lift(ParseTraceResp(r)); break;
    case 16: msg = Lift(ParseHistoryReq(r)); break;
    case 17: msg = Lift(ParseHistoryResp(r)); break;
    case 18: msg = Lift(ParseTriggerReq(r)); break;
    case 19: msg = Lift(ParseTriggerResp(r)); break;
    case 20: msg = Lift(ParseBecomeCcs(r)); break;
    case 21: msg = Lift(ParseCcsChanged(r)); break;
    case 22: msg = Lift(ParseProbe(r)); break;
    case 23: msg = Lift(ParseProbeAck(r)); break;
    case 24: msg = Lift(ParseFilesReq(r)); break;
    case 25: msg = Lift(ParseFilesResp(r)); break;
    case 26: msg = Lift(ParseMigrateReq(r)); break;
    case 27: msg = Lift(ParseMigrateResp(r)); break;
    case 28: msg = Lift(ParseRegisterChild(r)); break;
    case kStatMsgTag: {
      auto sub = r.U8();
      if (!sub) return std::nullopt;
      if (*sub == kStatReqSub) {
        msg = Lift(ParseStatReq(r));
      } else if (*sub == kStatRespSub) {
        msg = Lift(ParseStatResp(r));
      } else if (*sub == kStatSubscribeSub) {
        msg = Lift(ParseStatSubscribe(r));
      } else if (*sub == kStatDeltaSub) {
        msg = Lift(ParseStatDelta(r));
      } else if (*sub == kStatUnsubscribeSub) {
        msg = Lift(ParseStatUnsubscribe(r));
      } else {
        return std::nullopt;
      }
      break;
    }
    case kBusyMsgTag: {
      auto req_id = r.U64();
      auto error = r.Str();
      auto after = r.U64();
      if (!req_id || !error || !after) return std::nullopt;
      BusyResp busy;
      busy.req_id = *req_id;
      busy.error = std::move(*error);
      busy.retry_after_us = *after;
      msg = Msg{std::move(busy)};
      break;
    }
    case kGroupMsgTag: {
      auto sub = r.U8();
      if (!sub) return std::nullopt;
      msg = ParseGroupMsg(*sub, r);
      break;
    }
    default: return std::nullopt;
  }
  // A well-formed frame is consumed exactly; trailing bytes mean the
  // length fields inside were tampered with.
  if (msg && !r.AtEnd()) return std::nullopt;
  return msg;
}

const char* MsgTypeName(const Msg& msg) { return kMsgTypeNames[msg.index()]; }

const char* ClassifyWireFrame(const uint8_t* frame, size_t len) {
  size_t pos = 0;
  if (pos < len && frame[pos] == kChecksumHeaderTag) {
    pos += kChecksumHeaderBytes;
  }
  if (pos < len && frame[pos] == kTraceHeaderTag) {
    pos += kTraceHeaderBytes;
  }
  if (pos < len && frame[pos] == kDeadlineHeaderTag) {
    pos += kDeadlineHeaderBytes;
  }
  if (pos >= len) return "malformed";
  const uint8_t tag = frame[pos];
  if (tag == kStatMsgTag) {
    if (pos + 1 >= len) return "malformed";
    const uint8_t sub = frame[pos + 1];
    if (sub == kStatReqSub) return kMsgTypeNames[kPlainTagCount];
    if (sub == kStatRespSub) return kMsgTypeNames[kPlainTagCount + 1];
    if (sub == kStatSubscribeSub) return kMsgTypeNames[kStatStreamIndexBase];
    if (sub == kStatDeltaSub) return kMsgTypeNames[kStatStreamIndexBase + 1];
    if (sub == kStatUnsubscribeSub) return kMsgTypeNames[kStatStreamIndexBase + 2];
    return "unknown";
  }
  if (tag == kBusyMsgTag) return kMsgTypeNames[kPlainTagCount + 2];
  if (tag == kGroupMsgTag) {
    if (pos + 1 >= len) return "malformed";
    const uint8_t sub = frame[pos + 1];
    if (sub < kGroupSubCount) return kMsgTypeNames[kGroupIndexBase + sub];
    return "unknown";
  }
  if (tag < kPlainTagCount) return kMsgTypeNames[tag];
  return "unknown";
}

}  // namespace ppm::core

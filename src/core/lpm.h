// lpm.h — the Local Process Manager.
//
// One LPM per <user, host>, created on demand through inetd/pmd (paper
// Figure 2).  The collection of a user's LPMs *is* the Personal Process
// Manager: a distributed program whose parts
//
//   * act as the process creation server for the user's remote processes,
//   * track the user's processes via kernel events on the kernel socket,
//   * keep an event history and exited-process resource statistics,
//   * answer tool requests (snapshots, signals, adoption, triggers),
//   * flood broadcast requests over the low-connectivity sibling graph,
//   * and run the crash-coordinator (CCS) recovery protocol.
//
// Internally the LPM mirrors the paper's structure (Section 6): a main
// *dispatcher* plus a pool of *handler processes*.  Handlers occupy real
// slots in the simulated process table; creating one costs a fork, and
// "processes that have handled a request may be given further requests,
// rather than simply creating new processes" — the reuse policy is a
// config knob so bench_ablate_handlers can measure the difference.
// Handlers block while waiting for remote responses without stalling
// the dispatcher; if a response never comes, the dispatcher returns a
// failure to the originator of the request.
//
// Endpoint inventory (paper Figure 4): one kernel socket (the kernel
// event sink), one accept socket (address published by pmd), and any
// number of sibling and tool circuits.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/broadcast.h"
#include "core/flat_map.h"
#include "core/history.h"
#include "core/recovery.h"
#include "core/types.h"
#include "core/wire.h"
#include "daemon/pmd.h"
#include "group/group.h"
#include "host/host.h"
#include "net/network.h"
#include "store/lpm_store.h"

namespace ppm::core {

struct LpmConfig {
  // How long an idle LPM lingers after its host stops holding processes
  // of its user (paper Section 3).
  sim::SimDuration time_to_live = sim::Seconds(600);
  // How long a disconnected LPM waits before closing down the user's
  // local processes and exiting (paper Section 5).
  sim::SimDuration time_to_die = sim::Seconds(300);
  // Low-frequency probe period of an acting CCS toward higher-priority
  // recovery hosts (paper Section 5: network partition handling).
  sim::SimDuration probe_interval = sim::Seconds(60);
  // Retry period of a dying LPM toward the recovery list.
  sim::SimDuration retry_interval = sim::Seconds(30);
  // Broadcast duplicate-suppression window (paper Section 4: "a
  // configuration parameter whose optimum value will be derived from
  // experience").
  sim::SimDuration bcast_window = sim::Seconds(120);
  // Snapshot completion timeout (partial results are returned).
  sim::SimDuration snapshot_timeout = sim::Seconds(10);
  // Forwarded-request timeout.
  sim::SimDuration request_timeout = sim::Seconds(10);
  // Barrier decision window at the CCS: an epoch that has not reached
  // its expected count this long after the first join is decided as
  // timed out (with a straggler report).  Member LPMs run a local
  // safety timeout at twice this, after which waiters get an explicit
  // *unknown* outcome ("barrier verdict unreachable") — never a
  // fabricated timeout, so a released verdict and a timeout verdict can
  // never coexist for one epoch (group.no_split_release).
  sim::SimDuration barrier_timeout = sim::Seconds(10);
  // Host running the CcsNameServer daemon; empty disables name-server-
  // assisted recovery (paper Section 5's sketched alternative) and the
  // ~/.recovery walk is used alone.  With a server configured, the LPM
  // registers whenever it assumes the CCS role and queries on failure,
  // falling back to the .recovery walk if the server cannot answer.
  std::string ccs_nameserver;
  sim::SimDuration ns_query_timeout = sim::Millis(500);
  // Event history bound.
  size_t event_log_capacity = 4096;
  // Which events get recorded in the history (user-settable granularity).
  uint32_t granularity_mask = host::kTraceAll;
  // Handler pool policy (paper Section 6).
  bool handler_reuse = true;
  size_t max_handlers = 8;
  // Durable state store (src/store/): when enabled, every history event,
  // trigger change, rusage record and genealogy change is written ahead
  // to a CRC-framed journal (with periodic checkpoints), and a restarted
  // LPM warm-restarts from it — replaying its event history, triggers
  // and exited-process statistics, and re-adopting still-live processes
  // of the same kernel generation.  Off by default so the journal's cost
  // is an opt-in (chaos plans and the durability tests turn it on; the
  // knob also lets benches measure exactly what durability costs).
  bool durable_store = false;
  // Journal frames per physical sync (group commit width).
  uint32_t store_group_commit = 8;
  // Records between checkpoint+compaction cycles; bounds replay cost.
  uint32_t store_checkpoint_every = 256;
  // --- overload protection (deadlines, retry, shedding, breaker) -------
  // Master switch: off restores the pre-protection behaviour exactly
  // (unbounded queue, no deadline stamps, no retries, no breaker), so
  // bench_overload can measure the collapse it prevents.
  bool overload_protection = true;
  // Dispatcher backlog bound: a request arriving while handler_queue_
  // holds this many entries is shed with an explicit BusyResp
  // (reject-newest — queued work is older and closer to its deadline).
  // 0 = unbounded.
  size_t max_queue_depth = 64;
  // Fast-failure retries per forwarded request (BUSY, channel lost,
  // sibling setup failure).  A full request_timeout expiry is final.
  uint32_t max_retries = 2;
  // First retry backoff; doubles per attempt, jittered 0.5x-1.5x from
  // the simulator rng so synchronized retry storms decorrelate.
  sim::SimDuration retry_base = sim::Millis(200);
  // Consecutive sibling-setup failures that trip the per-host circuit
  // breaker, and the initial quarantine before a half-open probe.
  uint32_t breaker_threshold = 3;
  sim::SimDuration breaker_probe = sim::Seconds(5);
  // Deadline on the whole sibling-setup exchange (pmd query, private
  // channel connect, hello/ack).  A frame lost on a faulty link can
  // otherwise leave the exchange half-done forever — conn open, no data,
  // no close — which wedges every waiter, including the recovery walk.
  // Unlike the rest of the overload knobs this is not gated on
  // overload_protection: an unbounded wait is a liveness bug, not a
  // degraded mode.
  sim::SimDuration sibling_setup_timeout = sim::Seconds(6);
};

struct LpmStats {
  uint64_t requests = 0;           // requests dispatched (tools + siblings)
  uint64_t forwards = 0;           // requests forwarded to a sibling
  uint64_t kernel_events = 0;      // events received on the kernel socket
  uint64_t handlers_created = 0;
  uint64_t handler_reuses = 0;
  uint64_t snapshots_served = 0;   // local scans on behalf of any origin
  uint64_t bcasts_originated = 0;
  uint64_t bcast_duplicates = 0;
  uint64_t triggers_fired = 0;
  uint64_t failures_detected = 0;  // sibling channels lost to crash/partition
  uint64_t recoveries_started = 0;
  uint64_t request_timeouts = 0;
  // Overload protection (shed-partition invariant: requests_shed ==
  // busy_sent — every shed request got an explicit BUSY, never silence).
  uint64_t requests_shed = 0;      // rejected at admission (queue full)
  uint64_t busy_sent = 0;          // explicit BusyResp frames sent back
  uint64_t retries = 0;            // forward attempts beyond the first
  uint64_t deadline_expired = 0;   // work cancelled past its deadline
  uint64_t dup_suppressed = 0;     // retried requests caught by idem token
  // Group operations (src/group/).
  uint64_t gang_spawns = 0;        // gang-spawns completed successfully
  uint64_t gang_rollbacks = 0;     // gang-spawns rolled back (partial failure)
  uint64_t barrier_releases = 0;   // barrier epochs released (CCS side)
  uint64_t barrier_timeouts = 0;   // barrier epochs timed out (CCS side)
  uint64_t envar_updates = 0;      // envar changes applied to the local table
  uint64_t envar_watch_fires = 0;  // watcher actions fired on applied changes
};

// Figure 4 exhibit: the LPM's communication end points.
struct LpmEndpoints {
  bool kernel_socket = false;
  net::SocketAddr accept_socket;
  std::vector<std::pair<std::string, net::ConnId>> siblings;  // host -> circuit
  size_t tool_circuits = 0;
};

class Lpm : public host::ProcessBody {
 public:
  // `pmd_getter` lets the LPM unregister at exit without a compile-time
  // dependency cycle (daemon cannot depend on core).
  Lpm(host::Host& host, host::Uid uid, std::string user, uint64_t token,
      net::Port accept_port, LpmConfig config,
      std::function<daemon::Pmd*()> pmd_getter);

  void OnStart() override;
  bool OnSignal(host::Signal sig) override;
  void OnShutdown() override;

  // --- introspection (tests, figures, tools running in-process) --------
  const std::string& user() const { return user_; }
  host::Uid uid() const { return uid_; }
  uint64_t token() const { return token_; }
  net::SocketAddr accept_addr() const;
  LpmMode mode() const { return mode_; }
  bool is_ccs() const { return is_ccs_; }
  // True while a recovery walk is in flight and undecided.  Chaos
  // quiescence checks need this: a walk started under a partition can
  // straddle the heal and only then tip the LPM into kDying, so "no walk
  // pending" is part of the cluster being genuinely settled.
  bool recovery_in_progress() const { return recovery_in_progress_; }
  const std::string& ccs_host() const { return ccs_host_; }
  std::vector<std::string> sibling_hosts() const;
  LpmEndpoints Endpoints() const;
  const LpmStats& stats() const { return stats_; }
  const EventLog& event_log() const { return event_log_; }
  const TriggerTable& triggers() const { return triggers_; }
  const std::vector<RusageRecord>& exited_stats() const { return exited_stats_; }
  // The durable store, or nullptr when config.durable_store is off.
  store::LpmStore* store() { return store_.get(); }
  size_t handler_count() const { return handlers_.size(); }
  // Overload-protection introspection (chaos no-silent-loss invariant:
  // at quiescence both must be zero on every live LPM — every admitted
  // request terminated in a reply, an explicit error, or a recorded
  // expiry, never in a forgotten queue entry).
  size_t pending_forward_count() const { return pending_.size(); }
  size_t queued_request_count() const { return handler_queue_.size(); }
  size_t open_breaker_count() const;
  bool breaker_open_for(const std::string& host) const;
  size_t adopted_live_count() const;
  // Live STAT subscriptions registered at this LPM (origin or relay).
  // Chaos invariants use it to assert lazy-cancel convergence: after a
  // watch is dropped and the cluster quiesces, no LPM still holds it.
  size_t stat_watch_count() const { return stat_watches_.size(); }
  // Group operations state (memberships, barrier outcomes, the envar
  // table) — chaos invariants read it directly.
  const group::GroupTable& group_table() const { return group_table_; }
  // Pids of the local processes this LPM currently tracks as live (the
  // chaos invariant checkers compare them against the kernel table and
  // snapshot records).
  std::vector<host::Pid> TrackedLocalPids() const;
  bool ttl_armed() const { return ttl_event_ != sim::kInvalidEventId; }

  // Adjusts history granularity at runtime (also reachable via TraceReq
  // with the LPM itself as target).
  void set_granularity_mask(uint32_t mask) { config_.granularity_mask = mask; }

 private:
  // --- connection bookkeeping ------------------------------------------
  enum class PeerKind : uint8_t { kUnknown, kSibling, kTool };
  struct PeerInfo {
    PeerKind kind = PeerKind::kUnknown;
    std::string host;        // sibling host name
    std::string tool_name;   // tool label
    bool authenticated = false;  // HelloAck exchanged (outbound siblings)
  };

  // --- handler pool -------------------------------------------------------
  struct Handler {
    host::Pid pid;
    bool busy = false;
  };

  // --- local process knowledge -------------------------------------------
  struct LocalProc {
    GPid logical_parent;      // may be remote or invalid
    std::string command;
    bool exited = false;
    std::vector<GPid> remote_children;  // created through us on other hosts
  };

  // --- pending forwarded requests -----------------------------------------
  // on_response receives the response message, or nullptr with an error
  // string on timeout / channel loss (the handler "informs the
  // dispatcher of the failure", paper Section 6).  The message, target
  // host and trace are retained so fast failures (BUSY, channel lost,
  // setup failure) can retry with backoff under the overall deadline;
  // retries reuse the same req_id and idempotency token, so the receiver
  // can suppress duplicates and replay the cached response.
  struct PendingForward {
    host::Pid handler = host::kNoPid;
    net::ConnId conn = net::kInvalidConn;
    std::function<void(const Msg*, const std::string&)> on_response;
    sim::EventId timeout_ev = sim::kInvalidEventId;
    std::string host;
    Msg msg;
    obs::TraceContext trace;
    uint32_t attempts = 0;        // retries used so far
    uint64_t deadline_us = 0;     // overall deadline (stamped on the wire)
    uint64_t idem_token = 0;      // stamped on every attempt
  };

  // --- per-host circuit breaker ---------------------------------------------
  // Trips after breaker_threshold consecutive sibling-setup failures;
  // while open (and before open_until) EnsureSibling fast-fails instead
  // of paying the connect timeout.  At open_until one half-open probe is
  // allowed: success closes the breaker, failure re-opens it with the
  // quarantine doubled (capped so a healed peer is readmitted promptly).
  struct Breaker {
    uint32_t failures = 0;
    bool open = false;
    uint64_t open_until = 0;         // virtual us; probe allowed after this
    sim::SimDuration backoff = 0;    // current quarantine length
  };

  // --- admission metadata carried with dispatched work ----------------------
  // Snapshot of the rx deadline stamp plus the reply route, taken at
  // request entry: the deadline rides into handler_queue_ so expired
  // work is cancelled instead of executed, and the (conn, req_id) pair
  // lets an expiry release the idempotency bookkeeping it would leak.
  struct RequestMeta {
    uint64_t deadline_us = 0;
    net::ConnId conn = net::kInvalidConn;
    uint64_t req_id = 0;
  };
  struct QueuedWork {
    RequestMeta meta;
    std::function<void(host::Pid)> fn;
  };

  // --- snapshot runs (this LPM as origin) -----------------------------------
  struct SnapshotRun {
    uint64_t tool_req_id = 0;
    net::ConnId tool_conn = net::kInvalidConn;
    host::Pid handler = host::kNoPid;
    std::vector<ProcRecord> records;
    std::set<std::string> replied;
    std::set<std::string> outstanding;
    sim::EventId timeout_ev = sim::kInvalidEventId;
    bool complete = false;
    obs::TraceContext trace;     // root span of the broadcast's causal trace
    sim::SimTime start_us = 0;   // for the snapshot round-trip histogram
  };

  // --- stat runs (this LPM as origin) ---------------------------------------
  // Same shape as SnapshotRun: one covering-graph broadcast, replies
  // carrying LpmStatRecords instead of process scans.
  struct StatRun {
    uint64_t tool_req_id = 0;
    net::ConnId tool_conn = net::kInvalidConn;
    host::Pid handler = host::kNoPid;
    std::vector<LpmStatRecord> records;
    std::set<std::string> replied;
    std::set<std::string> outstanding;
    sim::EventId timeout_ev = sim::kInvalidEventId;
    bool complete = false;
    obs::TraceContext trace;
    sim::SimTime start_us = 0;
  };

  // --- stat watches (continuous telemetry; see wire.h 0xF6 subs 2-4) -------
  // One entry per <origin, watch_id> this LPM participates in.  The
  // delta path is pinned at subscribe time: the sibling circuit the
  // StatSubscribe flood arrived on becomes parent_conn, and deltas only
  // ever flow back along it.  A broken circuit drops the watch rather
  // than re-routing — re-routing could replay or skip intervals, and the
  // no-silent-loss invariant wants per-<watch, host> sequence numbers
  // contiguous for as long as they arrive at all.  The subscriber heals
  // by resubscribing under a fresh watch_id.
  struct StatWatch {
    std::string origin_host;                  // key part 1
    uint64_t watch_id = 0;                    // key part 2
    bool is_origin = false;                   // this LPM started the watch
    net::ConnId tool_conn = net::kInvalidConn;   // origin only
    uint64_t tool_req_id = 0;                    // origin only (ack req_id)
    std::string parent_host;                  // next hop toward the origin
    net::ConnId parent_conn = net::kInvalidConn;
    uint64_t interval_us = 0;
    sim::EventId push_ev = sim::kInvalidEventId;
    uint64_t seq = 0;                         // last sequence number pushed
    // Counter snapshot at the previous push — deltas are differences
    // against this, so each interval's record is self-contained.
    uint64_t base_t_us = 0;
    uint64_t base_kernel_events = 0;
    uint64_t base_requests = 0;
    uint64_t base_requests_shed = 0;
    uint64_t base_retries = 0;
    uint64_t base_journal_bytes = 0;
    uint64_t base_eventlog_recorded = 0;
    uint64_t base_acct_cpu_us = 0;
    // Child records buffered since the last push (in-transit aggregation:
    // one upstream frame per interval carries them all).
    std::vector<StatDeltaRecord> pending;
  };
  using StatWatchKey = std::pair<std::string, uint64_t>;

  // message plumbing
  void OnAccept(net::ConnId conn, net::SocketAddr peer);
  void OnData(net::ConnId conn, const std::vector<uint8_t>& bytes);
  void OnClose(net::ConnId conn, net::CloseReason reason);
  // An invalid (default) trace context serializes to the untraced wire
  // format, so tracing never changes message bytes unless a span exists.
  void SendMsg(net::ConnId conn, const Msg& msg,
               const obs::TraceContext& trace = {},
               const DeadlineStamp& stamp = {});
  // Charges `base_cost` (marshalling + socket write, load-scaled) and
  // sends after that plus `extra_delay` (already-charged work that must
  // complete first).
  void SendToSibling(net::ConnId conn, Msg msg, sim::SimDuration base_cost,
                     sim::SimDuration extra_delay = 0,
                     const obs::TraceContext& trace = {},
                     const DeadlineStamp& stamp = {});
  // Replies on `conn`: immediate for local tools, charged at sibling
  // channel cost for remote managers.
  void ReplyMsg(net::ConnId conn, const Msg& msg);

  // dispatcher & handlers
  void Dispatch(std::function<void(host::Pid handler)> work);
  void Dispatch(const RequestMeta& meta, std::function<void(host::Pid handler)> work);
  void AcquireHandler(const RequestMeta& meta, std::function<void(host::Pid)> cb);
  void ReleaseHandler(host::Pid pid);

  // overload protection
  // Admission check at request entry: false = the request was shed (an
  // explicit BusyResp went back) or arrived already past its deadline
  // (recorded expiry; the origin's own timeout reports the error).
  bool AdmitRequest(net::ConnId conn, uint64_t req_id);
  // Duplicate suppression for mutating requests carrying an idempotency
  // token: replays the cached response for an already-executed token,
  // swallows a token still in flight.  True = suppressed, do not execute.
  bool SuppressDuplicate(net::ConnId conn, const Msg& msg);
  // Releases the idempotency bookkeeping registered for (conn, req_id)
  // when the request will never produce a capturable reply.
  void ReleaseIdem(net::ConnId conn, uint64_t req_id);
  // Snapshot of the rx stamp + reply route at request entry.
  RequestMeta RxMeta(net::ConnId conn, uint64_t req_id) const;
  // Retry machinery for forwarded requests.
  void StartForwardAttempt(uint64_t req_id);
  void ForwardAttemptFailed(uint64_t req_id, const std::string& why,
                            uint64_t min_backoff_us = 0);
  void FailForward(uint64_t req_id, const std::string& why);
  void HandleBusy(const BusyResp& busy);
  // Circuit breaker.
  bool PeerQuarantined(const std::string& host) const;
  void RecordPeerFailure(const std::string& host);
  void RecordPeerSuccess(const std::string& host);

  // hello handling
  void HandleHello(net::ConnId conn, const Msg& msg, PeerInfo& info);

  // request execution (local side)
  void HandleCreate(net::ConnId conn, const CreateReq& req);
  void HandleSignal(net::ConnId conn, const SignalReq& req);
  void HandleRusage(net::ConnId conn, const RusageReq& req);
  void HandleAdopt(net::ConnId conn, const AdoptReq& req);
  void HandleTrace(net::ConnId conn, const TraceReq& req);
  void HandleHistory(net::ConnId conn, const HistoryReq& req);
  void HandleTrigger(net::ConnId conn, const TriggerReq& req);
  void HandleFiles(net::ConnId conn, const FilesReq& req);
  void HandleMigrate(net::ConnId conn, const MigrateReq& req);
  void HandleSnapshotReq(net::ConnId conn, const SnapshotReq& req);
  void HandleSnapshotResp(const SnapshotResp& resp);
  void HandleResponse(const Msg& msg, uint64_t req_id);

  // local actions
  void DoCreateLocal(const CreateReq& req, host::Pid handler,
                     std::function<void(const CreateResp&)> done);
  // Migrates a *local* adopted process to `req.dest_host` (checkpoint,
  // re-create there with this process as logical parent, kill here).
  void DoMigrateLocal(const MigrateReq& req, host::Pid handler,
                      std::function<void(const MigrateResp&)> done);
  void DoSignalLocal(const SignalReq& req, host::Pid handler,
                     std::function<void(const SignalResp&)> done);
  std::vector<ProcRecord> ScanLocalProcesses();

  // forwarding
  void ForwardToHost(const std::string& host, Msg msg, uint64_t my_req_id,
                     host::Pid handler,
                     std::function<void(const Msg*, const std::string&)> on_response,
                     const obs::TraceContext& trace = {});
  void EnsureSibling(const std::string& host,
                     std::function<void(std::optional<net::ConnId>)> done);
  void FinishSiblingSetup(const std::string& host, const daemon::LpmResponse& resp);
  void SiblingEstablished(const std::string& host, net::ConnId conn);
  // `count_failure` is false for overload signals (pmd busy): the peer
  // is reachable, just saturated, so the circuit breaker stays out of it.
  void SiblingSetupFailed(const std::string& host, const std::string& why,
                          bool count_failure = true);
  void SiblingSetupTimedOut(const std::string& host);

  // snapshots
  void StartSnapshot(net::ConnId tool_conn, uint64_t tool_req_id, host::Pid handler);
  // Sends the request to every sibling except `except_host`; returns the
  // accumulated dispatcher cost of the sends.
  sim::SimDuration FloodSnapshot(uint64_t bcast_seq, const SnapshotReq& templ,
                                 const std::string& except_host,
                                 std::vector<std::string>* sent_to,
                                 const obs::TraceContext& parent = {});
  void MaybeFinishSnapshot(uint64_t bcast_seq);
  void FinishSnapshot(SnapshotRun& run, uint64_t bcast_seq);

  // live introspection (the STAT protocol; see wire.h)
  void StartStat(net::ConnId tool_conn, uint64_t tool_req_id, bool dump_flight,
                 host::Pid handler);
  sim::SimDuration FloodStat(uint64_t bcast_seq, const StatReq& templ,
                             const std::string& except_host,
                             std::vector<std::string>* sent_to,
                             const obs::TraceContext& parent = {});
  void HandleStatReq(net::ConnId conn, const StatReq& req);
  void HandleStatResp(const StatResp& resp);
  void MaybeFinishStat(uint64_t bcast_seq);
  void FinishStat(StatRun& run, uint64_t bcast_seq);
  // Samples this manager's structured self-description (one StatResp
  // record): role, queues, counters, store, flight recorder, health.
  LpmStatRecord BuildStatRecord();

  // stat watches (push-based monitoring)
  void HandleStatSubscribe(net::ConnId conn, const StatSubscribe& req);
  void StartStatWatch(net::ConnId tool_conn, uint64_t tool_req_id,
                      uint64_t interval_us, host::Pid handler);
  // Sends the subscribe flood to every sibling except `except_host`
  // (FloodStat's shape, StatSubscribe payload).
  sim::SimDuration FloodStatSubscribe(const StatSubscribe& templ,
                                      const std::string& except_host);
  void HandleStatDelta(net::ConnId conn, const StatDelta& delta);
  void HandleStatUnsubscribe(net::ConnId conn, const StatUnsubscribe& req);
  // Arms/re-arms the per-interval push timer for one watch.
  void ScheduleStatPush(const StatWatchKey& key);
  // One interval tick: build this host's delta record, flush buffered
  // child records, send the aggregate one hop toward the origin (or to
  // the subscribed tool at the origin).
  void PushStatDelta(const StatWatchKey& key);
  void DropStatWatch(const StatWatchKey& key, const char* why);
  StatDeltaRecord BuildStatDeltaRecord(StatWatch& w);
  // Total cpu charged to this user's processes on this host, exited and
  // live — the per-user accounting rollup's raw material.
  uint64_t AcctCpuUs();

  // kernel events
  void OnKernelEvent(const host::KernelEvent& ev);
  void FireTrigger(const TriggerSpec& spec, const HistEvent& ev);
  // Shared action tail of triggers and envar watchers: signal, migrate,
  // or (kSpawn) create a local process, enrolling it into spec.group.
  void ApplyTriggerAction(const TriggerSpec& spec);
  void SpawnTriggered(const TriggerSpec& spec);

  // group operations (src/group/): gang-spawn
  void HandleGroupSpawn(net::ConnId conn, const GroupSpawnReq& req);
  void StartGangSpawn(net::ConnId conn, const GroupSpawnReq& req, host::Pid handler);
  void GangPartDone(uint64_t run_id, const std::string& part_host, bool ok,
                    const GPid& gpid, const std::string& error);
  void FinishGangSpawn(uint64_t run_id);
  // Creates one group member locally (the member-host leg of a gang
  // spawn; also the local leg at the coordinator and the trigger-respawn
  // path).  Empty req.group skips membership bookkeeping.
  void DoGroupPartLocal(const GroupPartReq& req, host::Pid handler,
                        std::function<void(const GroupPartResp&)> done);
  void HandleGroupPart(net::ConnId conn, const GroupPartReq& req);
  void HandleGroupUndo(net::ConnId conn, const GroupUndoReq& req);
  // Kills a local gang member and forgets its membership (rollback leg).
  void UndoLocalGroupMember(host::Pid target);

  // group operations: exits, signal, join
  void HandleGroupExitNotify(net::ConnId conn, const GroupExitNotify& req);
  void HandleGroupAddNotify(net::ConnId conn, const GroupAddNotify& req);
  // Coordinator-side exit bookkeeping; flushes waiting joins when the
  // whole group is down.
  void ApplyGroupExit(const std::string& grp, const GPid& gpid, int32_t status);
  // Member-host side: route a local member's exit to its coordinator.
  void NotifyGroupExit(const std::string& grp, const std::string& coordinator,
                       const GPid& gpid, int32_t status);
  void FlushGroupJoins(const std::string& grp);
  void HandleGroupSignal(net::ConnId conn, const GroupSignalReq& req);
  void HandleGroupJoin(net::ConnId conn, const GroupJoinReq& req);
  GroupJoinResp BuildJoinResp(uint64_t req_id, const std::string& grp);

  // group operations: barriers
  void HandleBarrierEnter(net::ConnId conn, const BarrierEnterReq& req);
  // Reports this LPM's cumulative waiter count to the CCS (or applies it
  // directly when this LPM is the CCS).
  void SendBarrierJoin(const std::string& name, uint64_t epoch,
                       uint32_t expected, uint32_t count);
  // One join attempt addressed to `ccs`.  A "not the central
  // coordinator" bounce carries the rejector's CCS hint; the attempt
  // chases it (repairing this LPM's stale pointer on success) up to
  // `redirects_left` hops before failing the local waiters.
  void SendBarrierJoinTo(const std::string& ccs, const std::string& name,
                         uint64_t epoch, uint32_t expected, uint32_t count,
                         int redirects_left);
  // CCS side: tally a join; may decide the epoch.  Returns the ack for
  // the joining LPM (ok=false: stale epoch, already decided).
  GroupAck CcsBarrierJoin(const std::string& from_host, const std::string& name,
                          uint64_t epoch, uint32_t expected, uint32_t count);
  void HandleBarrierJoin(net::ConnId conn, const BarrierJoinReq& req);
  // CCS side: decide <name, epoch> exactly once (journal, then announce).
  void BarrierVerdict(const std::string& name, uint64_t epoch, bool released);
  void HandleBarrierRelease(net::ConnId conn, const BarrierReleaseReq& req);
  // Applies a verdict to the local waiters of <name, epoch>.
  void ApplyBarrierVerdict(const std::string& name, uint64_t epoch, bool released,
                           const std::vector<std::string>& stragglers);
  // Fails local waiters with an *unknown* outcome (no released/timed-out
  // claim): coordinator unreachable or safety timeout.
  void FailBarrierLocal(const std::string& name, uint64_t epoch,
                        const std::string& why);

  // group operations: global envars
  void HandleEnvarSet(net::ConnId conn, const EnvarSetReq& req);
  void HandleEnvarGet(net::ConnId conn, const EnvarGetReq& req);
  void HandleEnvarWatch(net::ConnId conn, const EnvarWatchReq& req);
  void HandleEnvarUpdate(const EnvarUpdate& upd);
  void HandleEnvarSync(const EnvarSync& sync);
  // Merges one entry into the local table; on adoption journals it,
  // counts it, and fires matching watchers.  True = applied.
  bool ApplyEnvar(const std::string& key, const std::string& value,
                  uint64_t version, const std::string& origin);
  // Sends `msg` to every sibling except `except_host` (flood leg shared
  // by EnvarUpdate propagation and sync re-floods).
  void FloodGroupMsg(const Msg& msg, const std::string& except_host);

  // durable store (src/store/)
  // Replays checkpoint+journal at boot and seeds the event log, trigger
  // table, rusage records, CCS hint and genealogy; re-adopts still-live
  // processes when the kernel generation matches.
  void WarmRestart(const store::RecoveredState& recovered);
  // Journals a CCS change (no-op without a store).
  void PersistCcs();

  // signal delivery to an arbitrary GPid (trigger actions)
  void SignalGPid(const GPid& target, host::Signal sig,
                  std::function<void(bool, std::string)> done);
  // migration of an arbitrary GPid (trigger actions)
  void MigrateGPid(const GPid& target, const std::string& dest,
                   std::function<void(bool, std::string)> done);

  // lifetime
  void ReviewTtl();
  void TtlExpired();
  void ExitSelf(int status);

  // Every mode change goes through here so the flight recorder sees the
  // "from->to" transition.
  void SetMode(LpmMode m);

  // recovery
  void OnSiblingLost(const std::string& host, net::CloseReason reason);
  void StartRecovery();
  // Dispatches to the name server (when configured) or the list walk.
  void RecoverEntry();
  void RecoverViaNameServer();
  void RegisterCcsWithNameServer();
  void WalkRecoveryList(size_t index);
  void BecomeActingCcs(size_t list_index);
  void YieldCcsTo(const std::string& host);
  void ProbeHigherPriority();
  void ProbeStep(size_t index, size_t limit, RecoveryList list);
  void EnterDying();
  void CancelDeath();
  void AnnounceCcs();
  // Hello-time CCS handling: a peer's claim is a *hint* (adopted only if
  // we have no CCS) unless we are in trouble, in which case contact from
  // a peer in normal operation restores us (paper Section 5: "…gets a
  // communication request from a LPM in contact with a valid CCS").
  void AdoptCcsFromPeer(const std::string& peer_ccs);
  // Authoritative CCS announcement (CcsChanged protocol message).
  void AcceptCcsAnnouncement(const std::string& new_ccs);
  // The ccs_host field we put into outgoing hellos: empty while our own
  // CCS knowledge is suspect, so we never evangelize a stale coordinator.
  std::string CcsClaim() const;

  uint64_t NextReqId() { return next_req_id_++; }
  uint64_t NextBcastSeq() { return next_bcast_seq_++; }
  host::Kernel& kernel() { return host_.kernel(); }
  net::Network& network() { return host_.network(); }
  sim::Simulator& simulator() { return host_.simulator(); }
  const std::string& host_name() const { return host_.name(); }

  host::Host& host_;
  host::Uid uid_;
  std::string user_;
  uint64_t token_;
  net::Port accept_port_;
  LpmConfig config_;
  std::function<daemon::Pmd*()> pmd_getter_;

  bool running_ = false;       // between OnStart and OnShutdown
  bool graceful_exit_ = false;  // distinguishes exit from being killed
  FlatMap<net::ConnId, PeerInfo> peers_;
  FlatMap<std::string, net::ConnId> siblings_;
  std::map<std::string, std::vector<std::function<void(std::optional<net::ConnId>)>>>
      sibling_waiters_;
  // Per-host deadline on an in-flight sibling setup, plus the connection
  // it is currently using (pmd circuit, then the private channel) so a
  // timeout can tear it down instead of leaking it half-open.
  std::map<std::string, sim::EventId> sibling_setup_timeout_ev_;
  std::map<std::string, net::ConnId> sibling_setup_conn_;
  std::vector<Handler> handlers_;
  std::deque<QueuedWork> handler_queue_;
  FlatMap<uint64_t, PendingForward> pending_;
  FlatMap<uint64_t, SnapshotRun> snapshots_;  // keyed by bcast seq
  FlatMap<uint64_t, StatRun> stat_runs_;      // keyed by bcast seq
  std::map<StatWatchKey, StatWatch> stat_watches_;  // <origin, watch_id>
  uint32_t queue_watermark_ = 0;  // handler queue depth high-watermark
  FlatMap<host::Pid, LocalProc> local_procs_;
  std::vector<RusageRecord> exited_stats_;
  BroadcastFilter bcast_filter_;
  EventLog event_log_;
  TriggerTable triggers_;
  std::unique_ptr<store::LpmStore> store_;  // null unless config.durable_store

  // recovery state
  LpmMode mode_ = LpmMode::kNormal;
  bool is_ccs_ = false;
  std::string ccs_host_;
  sim::EventId ttl_event_ = sim::kInvalidEventId;
  sim::EventId death_event_ = sim::kInvalidEventId;
  sim::EventId probe_event_ = sim::kInvalidEventId;
  sim::EventId retry_event_ = sim::kInvalidEventId;
  bool recovery_in_progress_ = false;

  uint64_t next_req_id_ = 1;
  uint64_t next_bcast_seq_ = 1;
  LpmStats stats_;

  // Reusable encode buffers for the two hot serialization paths: the
  // kernel socket (112-byte kernel events) and sibling sends.  Cleared,
  // not reallocated, per message (wire.h §ownership).
  WireBuffer kmsg_buf_;
  WireBuffer send_buf_;

  // Trace context of the message currently being handled.  OnData fills
  // it before the synchronous dispatch visit, so Handle* entry code may
  // copy it; it is meaningless once control returns to the event loop.
  obs::TraceContext rx_trace_;
  // Deadline/idempotency stamp of the message currently being handled
  // (same lifetime discipline as rx_trace_).
  DeadlineStamp rx_stamp_;

  // --- overload-protection state -----------------------------------------
  // Per-host circuit breakers (cold path; host set is small).
  std::map<std::string, Breaker> breakers_;
  // Receiver-side duplicate suppression.  A mutating request's token is
  // held in inflight_tokens_ while it executes; ReplyMsg captures the
  // response into done_cache_ (FIFO-evicted at kIdemCacheCap) so a
  // retransmit replays the original answer instead of re-executing.
  static constexpr size_t kIdemCacheCap = 256;
  std::set<uint64_t> inflight_tokens_;
  FlatMap<uint64_t, Msg> done_cache_;       // token -> captured response
  std::deque<uint64_t> done_order_;         // FIFO eviction order
  // (conn, response req_id) -> token: how ReplyMsg finds the token a
  // reply settles.  Keyed by conn too because req_ids are per-origin.
  std::map<std::pair<net::ConnId, uint64_t>, uint64_t> idem_replies_;
  // Last event_log_.total_dropped() mirrored into the shared registry
  // counter (multiple LPMs feed one counter, so each adds deltas).
  uint64_t eventlog_dropped_seen_ = 0;

  // --- group operations state (src/group/) --------------------------------
  group::GroupTable group_table_;

  // One in-flight gang spawn at the coordinator: per-host parts fan out
  // through ForwardToHost; all-or-nothing on completion.
  struct GangRun {
    net::ConnId tool_conn = net::kInvalidConn;
    uint64_t tool_req_id = 0;
    host::Pid handler = host::kNoPid;
    std::string group;
    size_t outstanding = 0;
    bool failed = false;
    std::vector<GPid> members;             // created so far
    std::vector<std::string> host_errors;  // "host: reason" per failed part
  };
  std::map<uint64_t, GangRun> gang_runs_;  // keyed by run id

  // Local waiters of one <name, epoch> plus what we last reported to the
  // CCS and the safety timeout that bounds waiting for a verdict.
  struct BarrierLocal {
    uint32_t expected = 0;
    std::vector<std::pair<net::ConnId, uint64_t>> waiters;  // conn, req_id
    uint32_t reported = 0;  // cumulative count last sent to the CCS
    sim::EventId safety_ev = sim::kInvalidEventId;
  };
  std::map<group::GroupTable::BarrierKey, BarrierLocal> barrier_local_;
  // CCS side: the decision timer per undecided epoch (tally itself lives
  // in group_table_).
  std::map<group::GroupTable::BarrierKey, sim::EventId> barrier_decide_ev_;
  // Join requests parked until the whole group has exited.
  std::map<std::string, std::vector<std::pair<net::ConnId, uint64_t>>> join_waiters_;
};

// The LpmFactory the PPM layer installs into inetd/pmd: spawns an LPM
// process on `host` for `uid` and returns its handle.  `config` applies
// to every LPM the factory creates.
daemon::LpmFactory MakeLpmFactory(LpmConfig config);

}  // namespace ppm::core

#include "core/broadcast.h"

#include "obs/metrics.h"

namespace ppm::core {

void BroadcastFilter::Purge(sim::SimTime now) {
  while (!order_.empty() &&
         order_.front().first + static_cast<sim::SimTime>(window_) < now) {
    seen_.erase(order_.front().second);
    order_.pop_front();
  }
}

bool BroadcastFilter::CheckAndRecord(const std::string& origin, uint64_t seq,
                                     sim::SimTime now) {
  Purge(now);
  Key key{origin, seq};
  if (seen_.count(key)) {
    ++duplicates_;
    static obs::Counter* dups =
        obs::Registry::Instance().GetCounter("core.bcast.duplicates_suppressed");
    dups->Inc();
    return false;
  }
  // A duplicate whose original sighting already aged out of the window
  // is indistinguishable from a new request; count it if we can tell
  // from the sequence number that we must have seen it before.  (The
  // caller's per-origin sequences are monotonic, so seq < max-seen-seq
  // for this origin implies a stale re-flood.)
  auto hit = max_seq_.find(origin);
  if (hit != max_seq_.end() && seq <= hit->second) {
    ++stale_refloods_;
    static obs::Counter* stale =
        obs::Registry::Instance().GetCounter("core.bcast.stale_refloods");
    stale->Inc();
  }
  if (hit == max_seq_.end() || seq > hit->second) max_seq_[origin] = seq;
  seen_.insert(key);
  order_.emplace_back(now, std::move(key));
  return true;
}

size_t BroadcastFilter::Size(sim::SimTime now) {
  Purge(now);
  return seen_.size();
}

}  // namespace ppm::core

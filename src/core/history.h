// history.h — per-LPM event history and history-dependent triggers.
//
// The paper's Section 1 argues that process management needs "historical
// processing information" so that "history dependent events can be set
// by users to trigger process state changes".  The LPM therefore keeps:
//
//   * an EventLog: every kernel event received on the kernel socket for
//     an adopted process, subject to the user-settable granularity mask
//     (the paper: "accept parameters that determine the amount of
//     process events recorded");
//   * a TriggerTable: user-installed TriggerSpecs; when a matching event
//     arrives, the LPM fires the trigger's action (a signal aimed at any
//     process of the user, possibly on another host).
//
// The log is bounded (ring semantics) so a chatty computation cannot
// exhaust the manager.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "core/types.h"

namespace ppm::core {

class EventLog {
 public:
  explicit EventLog(size_t capacity = 4096) : capacity_(capacity) {}

  // Appends if `kind` passes `granularity_mask` (TraceFlag bits);
  // returns whether the event was recorded (false: filtered out).
  bool Record(const HistEvent& ev, uint32_t granularity_mask);

  // Seeds the log from replayed durable state (warm restart).  Trims to
  // capacity keeping the newest; lifetime counters are not touched —
  // they describe this incarnation's traffic.
  void Restore(const std::vector<HistEvent>& events);

  // Events, oldest first, optionally filtered by pid.  With max != 0,
  // returns the most recent `max` matches (still oldest first).
  std::vector<HistEvent> Query(host::Pid pid_filter = host::kNoPid,
                               uint32_t max = 0) const;

  size_t size() const { return events_.size(); }
  uint64_t total_recorded() const { return total_; }
  uint64_t total_filtered() const { return filtered_; }
  // Events evicted from the ring: recorded, then pushed out by newer
  // ones.  A nonzero value means the computation is chattier than the
  // ring and history queries are missing the oldest events.
  uint64_t total_dropped() const { return dropped_; }
  // Eviction counts broken down by the pid of the evicted event, so an
  // operator can see *whose* history was lost (surfaced in STAT records).
  const std::map<host::Pid, uint64_t>& dropped_by_pid() const {
    return dropped_by_pid_;
  }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::deque<HistEvent> events_;
  uint64_t total_ = 0;
  uint64_t filtered_ = 0;  // suppressed by granularity mask
  uint64_t dropped_ = 0;   // evicted by ring overflow
  std::map<host::Pid, uint64_t> dropped_by_pid_;
};

// Maps a KEvent kind to its TraceFlag bit.
uint32_t TraceFlagOf(host::KEvent kind);

class TriggerTable {
 public:
  using FireFn = std::function<void(uint64_t id, const TriggerSpec&, const HistEvent&)>;

  // Installs a trigger; returns its id.
  uint64_t Install(const TriggerSpec& spec);
  bool Remove(uint64_t id);

  // Matches `ev` against every installed trigger and calls `fire` for
  // each hit.  Triggers are one-shot: a fired trigger is removed, which
  // keeps retry loops from delivering the same signal forever.
  void Match(const HistEvent& ev, const FireFn& fire);

  // Seeds the table from replayed durable state (warm restart).  The id
  // counter resumes past the highest restored id so re-installed and new
  // triggers never collide.
  void Restore(const std::map<uint64_t, TriggerSpec>& triggers);

  const std::map<uint64_t, TriggerSpec>& entries() const { return triggers_; }

  size_t size() const { return triggers_.size(); }
  uint64_t fired_count() const { return fired_; }

 private:
  std::map<uint64_t, TriggerSpec> triggers_;
  uint64_t next_id_ = 1;
  uint64_t fired_ = 0;
};

}  // namespace ppm::core

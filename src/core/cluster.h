// cluster.h — a whole networked computing environment in one object.
//
// Composes the substrates (simulator, network, hosts with kernels and
// daemons) into the environment the paper assumes: "networks of
// computers that have explicit machine boundaries and that share
// administrative authority".  Tests, benches and examples build their
// worlds through this class; it owns everything and guarantees teardown
// order.
//
// Convenience topologies mirror the paper's environment: Ethernet
// segments (all-pairs links) joined by gateway hosts give one- and
// two-hop distances, the independent variable of Tables 2 and 3.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/lpm.h"
#include "daemon/inetd.h"
#include "host/host.h"
#include "host/loadgen.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::core {

struct ClusterConfig {
  uint64_t seed = 1;
  net::NetworkParams net;
  // One Ethernet hop.  The latency is calibrated from Table 2 of the
  // paper: two hops cost ~11 ms more than one round trip over one, so
  // ~5.5 ms one way per segment (media access + gateway forwarding).
  net::LinkParams default_link{sim::Micros(5'500), sim::Micros(1)};
  daemon::PmdConfig pmd;
  LpmConfig lpm;
  sim::SimDuration la_tau = sim::Seconds(5);
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- topology -------------------------------------------------------
  host::Host& AddHost(const std::string& name,
                      host::HostType type = host::HostType::kVax780);
  void Link(const std::string& a, const std::string& b);
  void Link(const std::string& a, const std::string& b, net::LinkParams params);
  // All-pairs links among `names` (one Ethernet segment).
  void Ethernet(const std::vector<std::string>& names);

  host::Host& host(const std::string& name);
  bool HasHost(const std::string& name) const;
  std::vector<std::string> host_names() const;

  // --- accounts ----------------------------------------------------------
  // Installs the account on every existing host (consistent password
  // files, as the paper requires of administrators).
  void AddUserEverywhere(const std::string& user, host::Uid uid);
  // Writes ~/.rhosts on every host allowing `user` from every other host.
  void TrustUserEverywhere(const std::string& user, host::Uid uid);
  // Writes ~/.recovery (CCS priority list) on every host.
  void SetRecoveryList(host::Uid uid, const std::vector<std::string>& hosts);

  // --- daemon / LPM lookup --------------------------------------------------
  daemon::Inetd* FindInetd(const std::string& host_name);
  daemon::Pmd* FindPmd(const std::string& host_name);
  Lpm* FindLpm(const std::string& host_name, host::Uid uid);

  // --- failures ---------------------------------------------------------------
  void Crash(const std::string& host_name);
  void Reboot(const std::string& host_name);

  // --- running ------------------------------------------------------------------
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return net_; }
  const ClusterConfig& config() const { return config_; }

  // Advances virtual time by `d`.
  void RunFor(sim::SimDuration d) { sim_.RunUntil(sim_.Now() + static_cast<sim::SimTime>(d)); }
  // Runs until the event queue drains (bounded).
  void Drain(size_t max_events = 10'000'000) { sim_.Run(max_events); }

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  net::Network net_;
  std::vector<std::unique_ptr<host::Host>> hosts_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace ppm::core

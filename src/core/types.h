// types.h — PPM-level naming and records.
//
// "Processes are identified in the network by <host name, pid>" (paper
// Section 6): GPid is that pair.  ProcRecord is the unit of snapshot
// information exchanged between LPMs; RusageRecord is the unit of the
// exited-process resource consumption statistics tool; HistEvent is one
// entry of the METRIC-style event history an LPM accumulates for its
// adopted processes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "host/kernel.h"
#include "host/process.h"
#include "sim/time.h"

namespace ppm::core {

// Global process identity: <host name, pid>.
struct GPid {
  std::string host;
  host::Pid pid = host::kNoPid;

  bool operator==(const GPid&) const = default;
  bool operator<(const GPid& o) const {
    if (host != o.host) return host < o.host;
    return pid < o.pid;
  }
  bool valid() const { return pid != host::kNoPid && !host.empty(); }
};

std::string ToString(const GPid& g);

// One process as reported in a snapshot.  Exited processes are retained
// and marked while they still have live (logical) children, so the
// genealogical display stays a tree as long as possible (paper Section 2).
struct ProcRecord {
  GPid gpid;
  GPid logical_parent;       // invalid when the process is a root
  host::Uid uid = 0;
  std::string command;
  host::ProcState state = host::ProcState::kRunning;
  bool exited = false;
  sim::SimTime start_time = 0;
  sim::SimTime end_time = 0;
  sim::SimDuration cpu_time = 0;
  bool operator==(const ProcRecord&) const = default;
};

// Exited-process resource consumption statistics (the second built-in
// tool of paper Section 4).
struct RusageRecord {
  GPid gpid;
  std::string command;
  int exit_status = 0;
  bool killed_by_signal = false;
  host::Signal death_signal = host::Signal::kSigTerm;
  sim::SimTime start_time = 0;
  sim::SimTime end_time = 0;
  host::Rusage rusage;

  bool operator==(const RusageRecord&) const = default;
};

// One entry of the per-LPM event history.
struct HistEvent {
  sim::SimTime at = 0;
  host::KEvent kind = host::KEvent::kFork;
  host::Pid pid = host::kNoPid;
  host::Pid other = host::kNoPid;
  host::Signal sig = host::Signal::kSigHup;
  int status = 0;
  std::string detail;

  bool operator==(const HistEvent&) const = default;
};

// A history-dependent trigger (paper Section 1: "history dependent
// events can be set by users to trigger process state changes").  When
// an event of `event_kind` occurs on `subject_pid` (or any adopted
// process if kNoPid), the LPM performs the action on `action_target`,
// which may live on any host.  Three actions exist: deliver a signal,
// migrate the target to another host, or spawn a fresh process locally
// — the paper's "change the state of each of its processes and
// possibly the site of execution", in event-dependent ways (Section 1;
// migration and spawn are our extensions, the 1986 PPM had neither).
// kSpawn is what lets a group auto-restart dead workers: an exit
// trigger whose action re-creates the command and, when `group` is
// set, re-enrolls the replacement in that group.
enum class TriggerAction : uint8_t { kSignal = 0, kMigrate = 1, kSpawn = 2 };

struct TriggerSpec {
  host::KEvent event_kind = host::KEvent::kExit;
  host::Pid subject_pid = host::kNoPid;  // kNoPid = any adopted process
  TriggerAction action = TriggerAction::kSignal;
  host::Signal action_signal = host::Signal::kSigTerm;
  GPid action_target;
  std::string migrate_dest;    // destination host for kMigrate
  std::string spawn_command;   // command line for kSpawn
  std::string group;           // kSpawn: group the replacement joins ("" = none)

  bool operator==(const TriggerSpec&) const = default;
};

}  // namespace ppm::core

#include "core/recovery.h"

#include "util/strings.h"

namespace ppm::core {

const char* ToString(LpmMode m) {
  switch (m) {
    case LpmMode::kNormal: return "normal";
    case LpmMode::kRecovering: return "recovering";
    case LpmMode::kDying: return "dying";
  }
  return "?";
}

RecoveryList RecoveryList::Parse(const std::string& content) {
  RecoveryList list;
  for (const std::string& raw : util::Split(content, '\n')) {
    std::string line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    list.hosts.push_back(line);
  }
  return list;
}

std::string RecoveryList::Serialize() const {
  std::string out;
  for (const std::string& h : hosts) {
    out += h;
    out += '\n';
  }
  return out;
}

std::optional<size_t> RecoveryList::IndexOf(const std::string& host) const {
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i] == host) return i;
  }
  return std::nullopt;
}

RecoveryList ReadRecoveryList(const host::Filesystem& fs, host::Uid uid) {
  auto content = fs.Read(uid, ".recovery");
  if (!content) return RecoveryList{};
  return RecoveryList::Parse(*content);
}

void WriteRecoveryList(host::Filesystem& fs, host::Uid uid, const RecoveryList& list) {
  fs.Write(uid, ".recovery", list.Serialize());
}

}  // namespace ppm::core

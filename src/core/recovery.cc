#include "core/recovery.h"

#include <cctype>

#include "util/strings.h"

namespace ppm::core {

const char* ToString(LpmMode m) {
  switch (m) {
    case LpmMode::kNormal: return "normal";
    case LpmMode::kRecovering: return "recovering";
    case LpmMode::kDying: return "dying";
  }
  return "?";
}

namespace {
// Host names compare case-insensitively (1986 hosts tables were sloppy
// about case); the list keeps the first spelling it saw, since host
// lookup elsewhere is exact.
bool SameHost(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

RecoveryList RecoveryList::Parse(const std::string& content) {
  RecoveryList list;
  for (const std::string& raw : util::Split(content, '\n')) {
    std::string line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    // A host repeated further down the file must not shadow its first
    // (higher-priority) entry — a duplicate would make the recovery walk
    // retry a dead host and stall the CCS handoff.
    if (list.IndexOf(line)) continue;
    list.hosts.push_back(line);
  }
  return list;
}

std::string RecoveryList::Serialize() const {
  std::string out;
  for (const std::string& h : hosts) {
    out += h;
    out += '\n';
  }
  return out;
}

std::optional<size_t> RecoveryList::IndexOf(const std::string& host) const {
  for (size_t i = 0; i < hosts.size(); ++i) {
    if (SameHost(hosts[i], host)) return i;
  }
  return std::nullopt;
}

RecoveryList ReadRecoveryList(const host::Filesystem& fs, host::Uid uid) {
  auto content = fs.Read(uid, ".recovery");
  if (!content) return RecoveryList{};
  return RecoveryList::Parse(*content);
}

void WriteRecoveryList(host::Filesystem& fs, host::Uid uid, const RecoveryList& list) {
  fs.Write(uid, ".recovery", list.Serialize());
}

}  // namespace ppm::core

#include "core/history.h"

namespace ppm::core {

uint32_t TraceFlagOf(host::KEvent kind) {
  switch (kind) {
    case host::KEvent::kFork: return host::kTraceFork;
    case host::KEvent::kExec: return host::kTraceExec;
    case host::KEvent::kExit: return host::kTraceExit;
    case host::KEvent::kSignal: return host::kTraceSignal;
    case host::KEvent::kStop:
    case host::KEvent::kContinue: return host::kTraceStateChange;
    case host::KEvent::kFileOpen:
    case host::KEvent::kFileClose: return host::kTraceFile;
    case host::KEvent::kIpcSend:
    case host::KEvent::kIpcRecv: return host::kTraceIpc;
  }
  return 0;
}

bool EventLog::Record(const HistEvent& ev, uint32_t granularity_mask) {
  if (!(TraceFlagOf(ev.kind) & granularity_mask)) {
    ++filtered_;
    return false;
  }
  ++total_;
  events_.push_back(ev);
  while (events_.size() > capacity_) {
    ++dropped_by_pid_[events_.front().pid];
    events_.pop_front();
    ++dropped_;
  }
  return true;
}

void EventLog::Restore(const std::vector<HistEvent>& events) {
  events_.assign(events.begin(), events.end());
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<HistEvent> EventLog::Query(host::Pid pid_filter, uint32_t max) const {
  std::vector<HistEvent> out;
  for (const HistEvent& ev : events_) {
    if (pid_filter != host::kNoPid && ev.pid != pid_filter) continue;
    out.push_back(ev);
  }
  // A bounded query returns the *most recent* `max` matches — a user
  // asking for "the last 10 events" wants the tail of the history, not
  // its long-forgotten head — still ordered oldest first.
  if (max != 0 && out.size() > max)
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max));
  return out;
}

uint64_t TriggerTable::Install(const TriggerSpec& spec) {
  uint64_t id = next_id_++;
  triggers_[id] = spec;
  return id;
}

bool TriggerTable::Remove(uint64_t id) { return triggers_.erase(id) > 0; }

void TriggerTable::Match(const HistEvent& ev, const FireFn& fire) {
  std::vector<uint64_t> hits;
  for (const auto& [id, spec] : triggers_) {
    if (spec.event_kind != ev.kind) continue;
    if (spec.subject_pid != host::kNoPid && spec.subject_pid != ev.pid) continue;
    hits.push_back(id);
  }
  for (uint64_t id : hits) {
    TriggerSpec spec = triggers_[id];
    triggers_.erase(id);
    ++fired_;
    fire(id, spec, ev);
  }
}

void TriggerTable::Restore(const std::map<uint64_t, TriggerSpec>& triggers) {
  triggers_ = triggers;
  for (const auto& [id, _] : triggers_)
    if (id >= next_id_) next_id_ = id + 1;
}

}  // namespace ppm::core

// broadcast.h — duplicate suppression for graph-covering broadcasts.
//
// The sibling graph is deliberately low-connectivity, so broadcast
// requests are flooded: every LPM re-sends a request to all siblings
// except the one it came from.  A cyclic graph would echo requests
// forever; the paper's remedy (Section 4) is "a signed timestamp in
// which the name of the originating host appears", remembered for a
// configurable time window.  This class is that memory: a set of
// <origin host, sequence> pairs with timestamps, purged lazily once they
// age past the window.
//
// The window is a genuine tuning knob ("whose optimum value will be
// derived from experience"): too short and a slow duplicate is
// re-flooded; too long and memory grows with broadcast rate.
// bench_ablate_bcast_window measures both effects.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "sim/time.h"

namespace ppm::core {

class BroadcastFilter {
 public:
  explicit BroadcastFilter(sim::SimDuration window) : window_(window) {}

  // Records <origin, seq> seen at `now`.  Returns true if this is the
  // first sighting within the window (i.e. the request should be
  // processed and re-flooded), false for a duplicate.
  bool CheckAndRecord(const std::string& origin, uint64_t seq, sim::SimTime now);

  // Entries currently retained (after purging against `now`).
  size_t Size(sim::SimTime now);

  sim::SimDuration window() const { return window_; }
  uint64_t duplicates_suppressed() const { return duplicates_; }
  uint64_t stale_refloods() const { return stale_refloods_; }

 private:
  struct Key {
    std::string origin;
    uint64_t seq;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<std::string>()(k.origin) * 1315423911u ^ std::hash<uint64_t>()(k.seq);
    }
  };

  void Purge(sim::SimTime now);

  sim::SimDuration window_;
  std::unordered_set<Key, KeyHash> seen_;
  std::deque<std::pair<sim::SimTime, Key>> order_;  // purge queue
  std::unordered_map<std::string, uint64_t> max_seq_;  // stale-re-flood detector
  uint64_t duplicates_ = 0;
  uint64_t stale_refloods_ = 0;  // duplicates admitted because the entry aged out
};

}  // namespace ppm::core

// nameserver.h — name-server-assisted crash recovery.
//
// Paper Section 5, final paragraph: "The existence of name servers in
// the network could be used to aid in crash recovery.  LPMs would query
// the name server for a CCS.  The mechanism based on .recovery files
// would not be needed.  In this approach the assignment of the CCS could
// be better coordinated by network administrators to avoid possible
// bottlenecks."
//
// This module implements that alternative: a root-owned CcsNameServer
// daemon keeps a <user → CCS host> table; LPMs register when they assume
// the coordinator role and query when they lose theirs.  The protocol is
// datagram-based — a name lookup is exactly the single-exchange,
// no-session-state workload datagrams are right for (contrast the
// sibling channels, which stay on circuits).
//
// Enabled per-PPM by LpmConfig::ccs_nameserver; when the server is
// unreachable the LPM falls back to the ~/.recovery walk, so the
// mechanism degrades to the paper's baseline instead of failing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "host/host.h"
#include "net/network.h"

namespace ppm::core {

constexpr net::Port kCcsNameServerPort = 771;

struct NameServerStats {
  uint64_t registrations = 0;
  uint64_t queries = 0;
  uint64_t misses = 0;  // queries for unknown users
};

class CcsNameServer : public host::ProcessBody {
 public:
  explicit CcsNameServer(host::Host& host);

  void OnStart() override;
  void OnShutdown() override;

  std::optional<std::string> Lookup(const std::string& user) const;
  const NameServerStats& stats() const { return stats_; }

 private:
  void OnDgram(net::SocketAddr from, const std::vector<uint8_t>& data);

  host::Host& host_;
  std::map<std::string, std::string> table_;  // user -> CCS host name
  NameServerStats stats_;
};

// Boots the daemon on `host` (root-owned); returns its pid.
host::Pid StartCcsNameServer(host::Host& host);

// Fire-and-forget registration: "user's CCS now resides on ccs_host".
void NsRegister(host::Host& from, const std::string& ns_host, const std::string& user,
                const std::string& ccs_host);

// Asynchronous lookup; `done` receives the CCS host name, or nullopt on
// unknown user / unreachable server (after `timeout`).
void NsQuery(host::Host& from, const std::string& ns_host, const std::string& user,
             sim::SimDuration timeout,
             std::function<void(std::optional<std::string>)> done);

}  // namespace ppm::core

#include "core/nameserver.h"

#include "host/calibration.h"
#include "util/bytes.h"
#include "util/log.h"

namespace ppm::core {

namespace {

constexpr uint8_t kOpRegister = 1;
constexpr uint8_t kOpQuery = 2;
constexpr uint8_t kOpAnswer = 3;

// Reply sockets for queries come from this ephemeral range, one per
// outstanding query per host.
constexpr net::Port kReplyPortBase = 40000;

std::vector<uint8_t> EncodeRegister(const std::string& user, const std::string& ccs) {
  util::ByteWriter w;
  w.U8(kOpRegister);
  w.Str(user);
  w.Str(ccs);
  return w.Take();
}

std::vector<uint8_t> EncodeQuery(const std::string& user, net::Port reply_port) {
  util::ByteWriter w;
  w.U8(kOpQuery);
  w.Str(user);
  w.U16(reply_port);
  return w.Take();
}

std::vector<uint8_t> EncodeAnswer(const std::string& user, const std::string& ccs,
                                  bool found) {
  util::ByteWriter w;
  w.U8(kOpAnswer);
  w.Str(user);
  w.Bool(found);
  w.Str(ccs);
  return w.Take();
}

}  // namespace

CcsNameServer::CcsNameServer(host::Host& host) : host_(host) {}

void CcsNameServer::OnStart() {
  host_.network().BindDgram(host_.net_id(), kCcsNameServerPort,
                            [this](net::SocketAddr from, const std::vector<uint8_t>& data,
                                   const std::vector<net::HostId>&) {
                              OnDgram(from, data);
                            });
}

void CcsNameServer::OnShutdown() {
  if (host_.up()) host_.network().UnbindDgram(host_.net_id(), kCcsNameServerPort);
}

std::optional<std::string> CcsNameServer::Lookup(const std::string& user) const {
  auto it = table_.find(user);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void CcsNameServer::OnDgram(net::SocketAddr from, const std::vector<uint8_t>& data) {
  util::ByteReader r(data);
  auto op = r.U8();
  if (!op) return;
  if (*op == kOpRegister) {
    auto user = r.Str();
    auto ccs = r.Str();
    if (!user || !ccs) return;
    ++stats_.registrations;
    table_[*user] = *ccs;
    PPM_DEBUG("ccs-ns") << "registered CCS of " << *user << " at " << *ccs;
    return;
  }
  if (*op == kOpQuery) {
    auto user = r.Str();
    auto reply_port = r.U16();
    if (!user || !reply_port) return;
    ++stats_.queries;
    auto it = table_.find(*user);
    bool found = it != table_.end();
    if (!found) ++stats_.misses;
    sim::SimDuration cost = host_.kernel().Charge(pid(), host::BaseCosts::kPmdLookup);
    net::SocketAddr reply_to{from.host, *reply_port};
    std::string ccs = found ? it->second : "";
    std::string u = *user;
    host_.simulator().ScheduleIn(cost, [this, reply_to, u, ccs, found] {
      if (!host_.up()) return;
      host_.network().SendDgram(host_.net_id(), kCcsNameServerPort, reply_to,
                                EncodeAnswer(u, ccs, found));
    }, "ccs-ns-answer");
  }
}

host::Pid StartCcsNameServer(host::Host& host) {
  auto body = std::make_unique<CcsNameServer>(host);
  return host.kernel().Spawn(host::kNoPid, host::kRootUid, "ccs-nameserver",
                             std::move(body), host::ProcState::kSleeping);
}

void NsRegister(host::Host& from, const std::string& ns_host, const std::string& user,
                const std::string& ccs_host) {
  auto target = from.network().FindHost(ns_host);
  if (!target) return;
  from.network().SendDgram(from.net_id(), kReplyPortBase - 1,
                           net::SocketAddr{*target, kCcsNameServerPort},
                           EncodeRegister(user, ccs_host));
}

void NsQuery(host::Host& from, const std::string& ns_host, const std::string& user,
             sim::SimDuration timeout,
             std::function<void(std::optional<std::string>)> done) {
  auto target = from.network().FindHost(ns_host);
  if (!target) {
    done(std::nullopt);
    return;
  }
  // Allocate a reply port: a rotating per-host counter (binds panic on
  // reuse, and queries unbind promptly, so a 20k window never wraps into
  // a live binding in practice).
  struct State {
    bool finished = false;
  };
  auto state = std::make_shared<State>();
  host::Host* from_ptr = &from;
  static std::map<net::HostId, net::Port> next_port;
  auto [it, inserted] = next_port.try_emplace(from.net_id(), kReplyPortBase);
  net::Port reply_port = it->second;
  it->second = static_cast<net::Port>(it->second + 1);
  if (it->second >= kReplyPortBase + 20000) it->second = kReplyPortBase;

  from.network().BindDgram(
      from.net_id(), reply_port,
      [from_ptr, reply_port, state, done](net::SocketAddr, const std::vector<uint8_t>& data,
                                          const std::vector<net::HostId>&) {
        if (state->finished) return;
        state->finished = true;
        if (from_ptr->up()) from_ptr->network().UnbindDgram(from_ptr->net_id(), reply_port);
        util::ByteReader r(data);
        auto op = r.U8();
        auto user = r.Str();
        auto found = r.Bool();
        auto ccs = r.Str();
        if (!op || *op != 3 || !user || !found || !ccs || !*found || ccs->empty()) {
          done(std::nullopt);
          return;
        }
        done(*ccs);
      });
  from.network().SendDgram(from.net_id(), reply_port,
                           net::SocketAddr{*target, kCcsNameServerPort},
                           EncodeQuery(user, reply_port));
  from.simulator().ScheduleIn(timeout, [from_ptr, reply_port, state, done] {
    if (state->finished) return;
    state->finished = true;
    if (from_ptr->up()) from_ptr->network().UnbindDgram(from_ptr->net_id(), reply_port);
    done(std::nullopt);
  }, "ccs-ns-timeout");
}

}  // namespace ppm::core

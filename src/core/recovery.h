// recovery.h — crash-coordinator policy helpers.
//
// Recovery (paper Section 5) is driven by the per-user ~/.recovery file:
// "a list of hosts in decreasing order of priority in which their CCS
// should reside".  The file is expected to be short, present on every
// host the user frequents, and to name the user's home machines.  This
// header holds the pure-policy pieces — file parsing and the LPM
// operating mode — so they can be unit-tested away from the full LPM.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "host/filesystem.h"

namespace ppm::core {

// The LPM's recovery-related operating mode.
//   kNormal     in contact with a valid CCS (or is the top-priority CCS)
//   kRecovering acting CCS below the top of the list, probing upward at
//               low frequency
//   kDying      no recovery-list host reachable; time-to-die is running
enum class LpmMode : uint8_t { kNormal, kRecovering, kDying };

const char* ToString(LpmMode m);

// The parsed ~/.recovery file.
struct RecoveryList {
  std::vector<std::string> hosts;  // decreasing priority

  // Parses file content: one host per line; blank lines and '#' comments
  // ignored; repeated hosts (compared case-insensitively) keep only
  // their first, highest-priority entry.
  static RecoveryList Parse(const std::string& content);

  std::string Serialize() const;

  // Priority index of `host` (case-insensitive), or nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& host) const;

  bool empty() const { return hosts.empty(); }
};

// Reads and parses uid's ~/.recovery on the given filesystem; empty list
// if the file does not exist.
RecoveryList ReadRecoveryList(const host::Filesystem& fs, host::Uid uid);

// Writes the list to uid's home directory.
void WriteRecoveryList(host::Filesystem& fs, host::Uid uid, const RecoveryList& list);

}  // namespace ppm::core

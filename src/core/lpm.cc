#include "core/lpm.h"

#include "core/nameserver.h"

#include <algorithm>

#include "daemon/protocol.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::core {

using host::BaseCosts;
using host::Pid;

namespace {
// Shared by every LPM in the process (the registry is process-wide);
// per-LPM attribution lives in LpmStats, these are the fleet totals.
struct LpmMetrics {
  obs::Histogram* create_ms;
  obs::Histogram* signal_ms;
  obs::Histogram* snapshot_ms;
  obs::Histogram* stat_ms;
  obs::Gauge* eventlog_size;
  obs::Gauge* eventlog_dropped;
  obs::Counter* eventlog_dropped_total;
  obs::Gauge* triggers_size;
  obs::Counter* triggers_fired;
  // Overload protection (fleet totals; per-LPM numbers are in LpmStats).
  obs::Counter* requests_shed;
  obs::Counter* retries;
  obs::Counter* deadline_expired;
  obs::Counter* dup_suppressed;
  obs::Gauge* breaker_open;
};

LpmMetrics& Metrics() {
  auto& reg = obs::Registry::Instance();
  static LpmMetrics m = {
      reg.GetHistogram("lpm.create.ms"),
      reg.GetHistogram("lpm.signal.ms"),
      reg.GetHistogram("lpm.snapshot.ms"),
      reg.GetHistogram("lpm.stat.ms"),
      reg.GetGauge("core.eventlog.size"),
      reg.GetGauge("core.eventlog.dropped"),
      reg.GetCounter("core.eventlog.dropped.total"),
      reg.GetGauge("core.triggers.size"),
      reg.GetCounter("core.triggers.fired"),
      reg.GetCounter("lpm.shed.requests"),
      reg.GetCounter("lpm.retry.attempts"),
      reg.GetCounter("lpm.deadline.expired"),
      reg.GetCounter("lpm.dup.suppressed"),
      reg.GetGauge("lpm.breaker.open"),
  };
  return m;
}

// The response's req_id, when the message type carries one (all typed
// responses do; Hello/CCS control traffic does not).
std::optional<uint64_t> MsgReqId(const Msg& msg) {
  return std::visit(
      [](const auto& m) -> std::optional<uint64_t> {
        if constexpr (requires { m.req_id; }) {
          return m.req_id;
        } else {
          return std::nullopt;
        }
      },
      msg);
}

// FNV-1a over the origin host name, folded with the request id: a
// deterministic idempotency token, unique per <origin, req_id>, that
// costs no rng draw (the simulator rng stream feeds the deterministic
// bench baselines and must not shift with every forward).
uint64_t MakeIdemToken(const std::string& origin, uint64_t req_id) {
  uint64_t h = 1469598103934665603ull;
  for (char c : origin) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= req_id;
  h *= 1099511628211ull;
  return h != 0 ? h : 1;  // 0 means "no token" on the wire
}
}  // namespace

Lpm::Lpm(host::Host& host, host::Uid uid, std::string user, uint64_t token,
         net::Port accept_port, LpmConfig config,
         std::function<daemon::Pmd*()> pmd_getter)
    : host_(host),
      uid_(uid),
      user_(std::move(user)),
      token_(token),
      accept_port_(accept_port),
      config_(config),
      pmd_getter_(std::move(pmd_getter)),
      bcast_filter_(config.bcast_window),
      event_log_(config.event_log_capacity) {}

// --- lifecycle ---------------------------------------------------------------

void Lpm::OnStart() {
  running_ = true;
  // Broadcast sequences must be monotonic per origin *host* across LPM
  // incarnations: sibling duplicate-suppression filters remember
  // <origin, seq> pairs for bcast_window, so a restarted LPM that
  // restarted its counter at 1 would have its first floods silently
  // swallowed as duplicates of its predecessor's.  Seeding from the
  // clock keeps the sequence strictly above anything a previous
  // incarnation can have used.
  next_bcast_seq_ = static_cast<uint64_t>(simulator().Now()) + 1;
  network().Listen(host_.net_id(), accept_port_,
                   [this](net::ConnId conn, net::SocketAddr peer) {
                     OnAccept(conn, peer);
                     net::ConnCallbacks cb;
                     cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) {
                       OnData(c, b);
                     };
                     cb.on_close = [this](net::ConnId c, net::CloseReason r) {
                       OnClose(c, r);
                     };
                     return std::optional<net::ConnCallbacks>(cb);
                   });
  // The kernel socket (Figure 4): events cross it as genuine 112-byte
  // messages, so the serializer is on the hot path exactly as the paper
  // measured in Table 1.
  kernel().RegisterEventSink(uid_, pid(), [this](const host::KernelEvent& ev) {
    // Encode into the reusable buffer and decode in place — the frame
    // crosses the socket without ever owning a heap allocation.
    SerializeKernelEvent(ev, kmsg_buf_);
    auto parsed = ParseKernelEvent(WireView(kmsg_buf_));
    PPM_CHECK_MSG(parsed.has_value(), "kernel event wire corruption");
    OnKernelEvent(*parsed);
  });
  if (config_.durable_store) {
    store::StoreConfig scfg;
    scfg.group_commit = config_.store_group_commit;
    scfg.checkpoint_every = config_.store_checkpoint_every;
    scfg.event_capacity = config_.event_log_capacity;
    store_ = std::make_unique<store::LpmStore>(host::Disk(host_.fs(), uid_), scfg);
    // A physical sync is real kernel work.  Charge it as CPU consumed by
    // the LPM (it shows up in load and rusage) without stretching the
    // operation that triggered it: group commit means the sync overlaps
    // request handling rather than serializing it.
    store_->journal().set_sync_hook([this](size_t flushed) {
      if (running_ && host_.up()) {
        kernel().Charge(pid(), BaseCosts::kStoreSync);
        obs::FlightRecorder::Instance().Record(obs::FlightKind::kJournalSync,
                                               host_name(), "", 0, flushed);
        obs::HealthMonitor::Instance().Watermark(
            "store.journal.pending",
            static_cast<double>(store_->journal().pending_appends()));
      }
    });
    store::RecoveredState recovered = store_->Recover();
    if (recovered.found) WarmRestart(recovered);
    store_->Open(recovered, host_.generation());
    // Re-adopted processes forked *after* the predecessor's last journal
    // write exist in local_procs_ but not on disk yet: journal them now
    // that the store accepts records.
    for (const auto& [lp, info] : local_procs_) {
      if (!recovered.procs.count(lp)) {
        store_->RecordProcNew(lp, info.logical_parent, info.command);
      }
    }
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " up on " << host_name() << " pid " << pid();
  ReviewTtl();
}

bool Lpm::OnSignal(host::Signal sig) {
  if (sig == host::Signal::kSigTerm) {
    // Graceful shutdown request.
    ExitSelf(0);
    return true;
  }
  if (sig == host::Signal::kSigHup || sig == host::Signal::kSigUsr1) return true;
  return false;
}

void Lpm::OnShutdown() {
  if (!running_) return;
  running_ = false;
  if (host_.up()) {
    kernel().UnregisterEventSink(uid_);
    network().Unlisten(host_.net_id(), accept_port_);
    for (const auto& [conn, info] : peers_) {
      if (graceful_exit_) {
        network().Close(conn);
      } else {
        network().Abort(conn);
      }
    }
    // Handler processes die with their manager.
    for (const Handler& h : handlers_) {
      const host::Process* p = kernel().Find(h.pid);
      if (p && p->alive()) kernel().PostSignal(h.pid, host::Signal::kSigKill, uid_);
    }
  }
  peers_.clear();
  siblings_.clear();
  simulator().Cancel(ttl_event_);
  simulator().Cancel(death_event_);
  simulator().Cancel(probe_event_);
  simulator().Cancel(retry_event_);
  ttl_event_ = death_event_ = probe_event_ = retry_event_ = sim::kInvalidEventId;
  for (auto& [host, ev] : sibling_setup_timeout_ev_) simulator().Cancel(ev);
  sibling_setup_timeout_ev_.clear();
  sibling_setup_conn_.clear();
  // Fail anything still waiting.
  for (auto& [host, waiters] : sibling_waiters_) {
    for (auto& cb : waiters) cb(std::nullopt);
  }
  sibling_waiters_.clear();
  pending_.clear();
  snapshots_.clear();
  stat_runs_.clear();
  // A dying LPM must not leave its open breakers counted in the
  // fleet-wide gauge forever.
  for (const auto& [host, b] : breakers_) {
    if (b.open) Metrics().breaker_open->Add(-1);
  }
  breakers_.clear();
  inflight_tokens_.clear();
  done_cache_.clear();
  done_order_.clear();
  idem_replies_.clear();
}

// Warm restart (the tentpole of the durable store): seed in-memory state
// from what the previous incarnation journaled.  History, triggers and
// rusage records are valid across any restart; genealogy hints are only
// actionable within the same kernel generation, because a reboot killed
// every process and pids will be reused.
void Lpm::WarmRestart(const store::RecoveredState& recovered) {
  event_log_.Restore(recovered.events);
  triggers_.Restore(recovered.triggers);
  exited_stats_ = recovered.rusage;
  // Never self-appoint CCS from disk: the cluster may have elected
  // someone else while we were down.  A foreign hint is safe — worst
  // case it names a dead host and the normal timeout path clears it.
  if (!recovered.ccs_host.empty() && recovered.ccs_host != host_name()) {
    ccs_host_ = recovered.ccs_host;
  }
  size_t readopted = 0;
  if (recovered.generation == host_.generation()) {
    for (const auto& [rpid, hint] : recovered.procs) {
      const host::Process* p = kernel().Find(rpid);
      if (!p || !p->alive() || p->uid != uid_) continue;
      if (local_procs_.count(rpid)) continue;
      std::vector<Pid> adopted;
      if (!kernel().Adopt(pid(), rpid, host::kTraceAll, uid_, &adopted)) {
        continue;
      }
      for (Pid ap : adopted) {
        if (local_procs_.count(ap)) continue;
        LocalProc info;
        auto hit = recovered.procs.find(ap);
        const host::Process* proc = kernel().Find(ap);
        if (hit != recovered.procs.end()) {
          info.logical_parent = hit->second.logical_parent;
          info.command = hit->second.command;
        } else if (proc) {
          // Forked after our last journal write: its parent is local.
          info.logical_parent = GPid{host_name(), proc->ppid};
          info.command = proc->command;
        }
        local_procs_[ap] = std::move(info);
        ++readopted;
      }
    }
    for (const auto& [rpid, child] : recovered.remote_children) {
      auto it = local_procs_.find(rpid);
      if (it == local_procs_.end()) continue;
      auto& kids = it->second.remote_children;
      if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
        kids.push_back(child);
      }
    }
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " on " << host_name()
                  << " warm restart: " << recovered.events.size() << " events, "
                  << recovered.triggers.size() << " triggers, "
                  << recovered.rusage.size() << " rusage records, " << readopted
                  << " processes re-adopted"
                  << (recovered.torn_bytes
                          ? " (torn journal tail discarded)"
                          : "");
}

void Lpm::PersistCcs() {
  if (store_) store_->RecordCcs(ccs_host_);
}

void Lpm::ExitSelf(int status) {
  if (!running_) return;
  graceful_exit_ = true;
  // A clean exit leaves a fresh checkpoint and an empty journal: the
  // successor warm-restarts from the checkpoint alone.
  if (store_) store_->Checkpoint();
  if (daemon::Pmd* pmd = pmd_getter_ ? pmd_getter_() : nullptr) {
    pmd->Unregister(uid_, pid());
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " on " << host_name() << " exiting";
  kernel().Exit(pid(), status);
}

// --- introspection ---------------------------------------------------------------

net::SocketAddr Lpm::accept_addr() const {
  return net::SocketAddr{host_.net_id(), accept_port_};
}

std::vector<std::string> Lpm::sibling_hosts() const {
  std::vector<std::string> out;
  out.reserve(siblings_.size());
  for (const auto& [host, conn] : siblings_) out.push_back(host);
  return out;
}

LpmEndpoints Lpm::Endpoints() const {
  LpmEndpoints ep;
  ep.kernel_socket = host_.up() && host_.kernel().HasEventSink(uid_);
  ep.accept_socket = accept_addr();
  for (const auto& [host, conn] : siblings_) ep.siblings.emplace_back(host, conn);
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++ep.tool_circuits;
  }
  return ep;
}

size_t Lpm::adopted_live_count() const {
  size_t n = 0;
  for (const auto& [pid, info] : local_procs_) {
    const host::Process* p = host_.kernel().Find(pid);
    if (p && p->alive()) ++n;
  }
  return n;
}

std::vector<host::Pid> Lpm::TrackedLocalPids() const {
  std::vector<host::Pid> out;
  for (const auto& [pid, info] : local_procs_) {
    if (!info.exited) out.push_back(pid);
  }
  return out;
}

// --- dispatcher & handler pool ------------------------------------------------------

void Lpm::Dispatch(std::function<void(Pid)> work) {
  Dispatch(RequestMeta{}, std::move(work));
}

void Lpm::Dispatch(const RequestMeta& meta, std::function<void(Pid)> work) {
  PPM_PROF_SCOPE("lpm.dispatch");
  ++stats_.requests;
  sim::SimDuration cost = kernel().Charge(pid(), BaseCosts::kDispatch);
  simulator().ScheduleIn(cost, [this, meta, work = std::move(work)] {
    if (!running_) return;
    AcquireHandler(meta, work);
  }, "lpm-dispatch");
}

void Lpm::AcquireHandler(const RequestMeta& meta, std::function<void(Pid)> cb) {
  // Prune handlers that died under us (the user may kill them — they are
  // ordinary user processes) so the pool can refill.
  std::erase_if(handlers_, [this](const Handler& h) {
    const host::Process* p = kernel().Find(h.pid);
    return p == nullptr || !p->alive();
  });
  if (config_.handler_reuse) {
    for (Handler& h : handlers_) {
      if (!h.busy) {
        h.busy = true;
        ++stats_.handler_reuses;
        cb(h.pid);
        return;
      }
    }
  }
  if (!config_.handler_reuse || handlers_.size() < config_.max_handlers) {
    // Fork a fresh handler (paper Section 6: "process creation in UNIX
    // is relatively expensive" — this cost is why reuse is the default).
    sim::SimDuration cost = kernel().Charge(pid(), BaseCosts::kHandlerFork);
    Pid hp = kernel().Spawn(pid(), uid_, "lpm-handler", nullptr,
                            host::ProcState::kSleeping);
    handlers_.push_back(Handler{hp, true});
    ++stats_.handlers_created;
    simulator().ScheduleIn(cost, [this, hp, cb = std::move(cb)] {
      if (!running_) return;
      const host::Process* p = kernel().Find(hp);
      if (!p || !p->alive()) return;
      cb(hp);
    }, "lpm-handler-fork");
    return;
  }
  handler_queue_.push_back(QueuedWork{meta, std::move(cb)});
  if (handler_queue_.size() > queue_watermark_) {
    queue_watermark_ = static_cast<uint32_t>(handler_queue_.size());
  }
  obs::HealthMonitor::Instance().Watermark("lpm.queue.depth",
                                           static_cast<double>(handler_queue_.size()));
}

void Lpm::ReleaseHandler(Pid hpid) {
  auto it = std::find_if(handlers_.begin(), handlers_.end(),
                         [hpid](const Handler& h) { return h.pid == hpid; });
  if (it == handlers_.end()) return;
  if (!config_.handler_reuse) {
    // Fork-per-request policy: the handler exits after one request.
    const host::Process* p = kernel().Find(hpid);
    if (p && p->alive() && host_.up()) kernel().Exit(hpid, 0);
    kernel().Reap(pid());
    handlers_.erase(it);
    return;
  }
  while (!handler_queue_.empty()) {
    QueuedWork next = std::move(handler_queue_.front());
    handler_queue_.pop_front();
    if (next.meta.deadline_us != 0 &&
        static_cast<uint64_t>(simulator().Now()) > next.meta.deadline_us) {
      // The origin's timeout has already reported this request as failed;
      // running it now would burn a handler on work nobody is waiting
      // for.  Cancel it out of the queue, record the expiry, and release
      // any idempotency bookkeeping it registered on arrival.
      ++stats_.deadline_expired;
      Metrics().deadline_expired->Inc();
      obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestExpired,
                                             host_name(), "queued", 0,
                                             next.meta.req_id);
      ReleaseIdem(next.meta.conn, next.meta.req_id);
      continue;
    }
    next.fn(hpid);  // stays busy
    return;
  }
  it->busy = false;
}

// --- overload protection: admission, dedup, breaker --------------------------

Lpm::RequestMeta Lpm::RxMeta(net::ConnId conn, uint64_t req_id) const {
  RequestMeta meta;
  meta.deadline_us = rx_stamp_.deadline_us;
  meta.conn = conn;
  meta.req_id = req_id;
  return meta;
}

bool Lpm::AdmitRequest(net::ConnId conn, uint64_t req_id) {
  if (!config_.overload_protection) return true;
  // Expired on arrival: the origin gave up before the frame landed.
  // Executing it would be pure waste; no reply either — the origin's
  // own timeout already produced the explicit error.
  if (rx_stamp_.deadline_us != 0 &&
      static_cast<uint64_t>(simulator().Now()) > rx_stamp_.deadline_us) {
    ++stats_.deadline_expired;
    Metrics().deadline_expired->Inc();
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestExpired,
                                           host_name(), "arrival", 0, req_id);
    ReleaseIdem(conn, req_id);
    return false;
  }
  if (config_.max_queue_depth == 0 ||
      handler_queue_.size() < config_.max_queue_depth) {
    return true;
  }
  // Reject-newest shed: queued work is older and closer to its deadline,
  // so the arriving request is the one turned away — with an explicit
  // BUSY carrying a retry hint, never silently (shed-partition
  // invariant: requests_shed == busy_sent).
  ++stats_.requests_shed;
  Metrics().requests_shed->Inc();
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestShed,
                                         host_name(), "queue full", 0, req_id,
                                         handler_queue_.size());
  // Release first so the BusyResp is not captured as this token's
  // "result" — a later retry must be allowed to actually execute.
  ReleaseIdem(conn, req_id);
  BusyResp busy;
  busy.req_id = req_id;
  busy.error = "handler queue full";
  busy.retry_after_us = static_cast<uint64_t>(config_.retry_base);
  ++stats_.busy_sent;
  ReplyMsg(conn, busy);
  return false;
}

bool Lpm::SuppressDuplicate(net::ConnId conn, const Msg& msg) {
  if (!config_.overload_protection || rx_stamp_.idem_token == 0) return false;
  // Only mutating requests need exactly-once protection; reads are
  // harmless to re-execute.
  bool mutating = std::holds_alternative<CreateReq>(msg) ||
                  std::holds_alternative<SignalReq>(msg) ||
                  std::holds_alternative<AdoptReq>(msg) ||
                  std::holds_alternative<TraceReq>(msg) ||
                  std::holds_alternative<TriggerReq>(msg) ||
                  std::holds_alternative<MigrateReq>(msg);
  if (!mutating) return false;
  const uint64_t token = rx_stamp_.idem_token;
  auto done = done_cache_.find(token);
  if (done != done_cache_.end()) {
    // Already executed: replay the captured response (same req_id — the
    // sender reuses it across attempts) instead of executing twice.
    ++stats_.dup_suppressed;
    Metrics().dup_suppressed->Inc();
    ReplyMsg(conn, done->second);
    return true;
  }
  if (inflight_tokens_.count(token)) {
    // First attempt is still executing; its reply will go out when it
    // finishes.  Swallow the retransmit.
    ++stats_.dup_suppressed;
    Metrics().dup_suppressed->Inc();
    return true;
  }
  inflight_tokens_.insert(token);
  if (auto rid = MsgReqId(msg)) {
    idem_replies_[{conn, *rid}] = token;
  }
  return false;
}

void Lpm::ReleaseIdem(net::ConnId conn, uint64_t req_id) {
  auto it = idem_replies_.find({conn, req_id});
  if (it == idem_replies_.end()) return;
  inflight_tokens_.erase(it->second);
  idem_replies_.erase(it);
}

bool Lpm::PeerQuarantined(const std::string& host) const {
  auto it = breakers_.find(host);
  if (it == breakers_.end() || !it->second.open) return false;
  // Past open_until the breaker is half-open: one probe attempt may pay
  // the connect cost and decide readmission.
  return static_cast<uint64_t>(host_.simulator().Now()) < it->second.open_until;
}

void Lpm::RecordPeerFailure(const std::string& host) {
  if (!config_.overload_protection) return;
  Breaker& b = breakers_[host];
  ++b.failures;
  if (b.failures < config_.breaker_threshold && !b.open) return;
  // Quarantine doubles per failed half-open probe, capped so a healed
  // peer is readmitted within one chaos settle window.
  constexpr sim::SimDuration kMaxQuarantine = sim::Seconds(16);
  bool was_open = b.open;
  b.backoff = was_open ? std::min<sim::SimDuration>(b.backoff * 2, kMaxQuarantine)
                       : config_.breaker_probe;
  b.open_until = static_cast<uint64_t>(simulator().Now() + b.backoff);
  if (!was_open) {
    b.open = true;
    Metrics().breaker_open->Add(1);
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kBreakerOpen,
                                           host_name(), host, 0, b.failures);
    PPM_INFO("lpm") << host_name() << ": circuit breaker OPEN for " << host
                    << " after " << b.failures << " failures";
  }
}

void Lpm::RecordPeerSuccess(const std::string& host) {
  auto it = breakers_.find(host);
  if (it == breakers_.end()) return;
  if (it->second.open) {
    Metrics().breaker_open->Add(-1);
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kBreakerClose,
                                           host_name(), host, 0, 0);
    PPM_INFO("lpm") << host_name() << ": circuit breaker closed for " << host;
  }
  breakers_.erase(it);
}

size_t Lpm::open_breaker_count() const {
  size_t n = 0;
  for (const auto& [host, b] : breakers_) {
    if (b.open) ++n;
  }
  return n;
}

bool Lpm::breaker_open_for(const std::string& host) const {
  auto it = breakers_.find(host);
  return it != breakers_.end() && it->second.open;
}

// --- connection plumbing ----------------------------------------------------------------

void Lpm::OnAccept(net::ConnId conn, net::SocketAddr peer) {
  (void)peer;
  peers_[conn] = PeerInfo{};  // unknown until Hello
}

void Lpm::SendMsg(net::ConnId conn, const Msg& msg, const obs::TraceContext& trace,
                  const DeadlineStamp& stamp) {
  kernel().RecordIpc(pid(), /*sent=*/true, 0);
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kFrameSent, host_name(),
                                         MsgTypeName(msg), trace.trace_id,
                                         static_cast<uint64_t>(conn));
  Serialize(msg, trace, stamp, send_buf_);
  network().Send(conn, send_buf_.CopyOut());
}

void Lpm::SendToSibling(net::ConnId conn, Msg msg, sim::SimDuration base_cost,
                        sim::SimDuration extra_delay, const obs::TraceContext& trace,
                        const DeadlineStamp& stamp) {
  sim::SimDuration cost = kernel().Charge(pid(), base_cost) + extra_delay;
  simulator().ScheduleIn(cost, [this, conn, msg = std::move(msg), trace, stamp] {
    if (!running_) return;
    SendMsg(conn, msg, trace, stamp);
  }, "lpm-sibling-send");
}

void Lpm::ReplyMsg(net::ConnId conn, const Msg& msg) {
  // Settle idempotency bookkeeping: if this reply answers a tokened
  // mutating request, capture it so a retransmit of the same token
  // replays this exact response instead of re-executing.  Conn ids are
  // never reused, so capture is safe even after the circuit died (the
  // retry then arrives on a fresh conn and hits the cache).
  if (!idem_replies_.empty()) {
    if (auto rid = MsgReqId(msg)) {
      auto it = idem_replies_.find({conn, *rid});
      if (it != idem_replies_.end()) {
        const uint64_t token = it->second;
        idem_replies_.erase(it);
        inflight_tokens_.erase(token);
        done_cache_[token] = msg;
        done_order_.push_back(token);
        if (done_order_.size() > kIdemCacheCap) {
          done_cache_.erase(done_order_.front());
          done_order_.pop_front();
        }
      }
    }
  }
  auto it = peers_.find(conn);
  if (it != peers_.end() && it->second.kind == PeerKind::kSibling) {
    SendToSibling(conn, msg, BaseCosts::kSiblingSend);
  } else {
    SendMsg(conn, msg);
  }
}

void Lpm::OnClose(net::ConnId conn, net::CloseReason reason) {
  auto it = peers_.find(conn);
  if (it == peers_.end()) return;
  PeerInfo info = it->second;
  peers_.erase(it);

  // Every forwarded request waiting on this circuit lost its channel:
  // a fast failure, eligible for a backoff retry under the deadline
  // (the receiver's duplicate suppression makes the retry safe).
  std::vector<uint64_t> dead;
  for (auto& [id, pf] : pending_) {
    if (pf.conn == conn) dead.push_back(id);
  }
  for (uint64_t id : dead) {
    ForwardAttemptFailed(id, "channel lost");
  }

  if (info.kind == PeerKind::kSibling) {
    auto sit = siblings_.find(info.host);
    if (sit != siblings_.end() && sit->second == conn) siblings_.erase(sit);
    if (reason == net::CloseReason::kPeerCrash || reason == net::CloseReason::kNetBroken) {
      ++stats_.failures_detected;
      PPM_INFO("lpm") << host_name() << ": lost sibling " << info.host << " ("
                      << net::ToString(reason) << ")";
      OnSiblingLost(info.host, reason);
    }
    ReviewTtl();
  } else if (info.kind == PeerKind::kTool) {
    ReviewTtl();
  }
}

void Lpm::OnData(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  PPM_PROF_SCOPE("lpm.on_data");
  kernel().RecordIpc(pid(), /*sent=*/false, bytes.size());
  auto msg = Parse(bytes, &rx_trace_, &rx_stamp_);
  if (msg) {
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kFrameRecv, host_name(),
                                           MsgTypeName(*msg), rx_trace_.trace_id,
                                           static_cast<uint64_t>(conn));
  }
  if (msg && rx_trace_.valid()) {
    // Close the hop span: the message reached this manager now.
    obs::Tracer::Instance().RecordArrival(rx_trace_, host_name());
  }
  if (!msg) {
    PPM_WARN("lpm") << host_name() << ": unparseable message, closing circuit";
    network().Close(conn);
    // A corrupted channel is a failed channel: run the same bookkeeping
    // as a detected break, so sibling entries and pending forwards don't
    // keep pointing at a circuit that no longer exists (a zombie sibling
    // would swallow every future flood sent its way) and recovery runs
    // if the lost peer mattered.
    OnClose(conn, net::CloseReason::kNetBroken);
    return;
  }
  auto it = peers_.find(conn);
  if (it == peers_.end()) return;
  PeerInfo& info = it->second;

  if (info.kind == PeerKind::kUnknown || !info.authenticated) {
    HandleHello(conn, *msg, info);
    return;
  }

  // A retried mutating request (idempotency token on the frame) must
  // never execute twice: replay the cached response or swallow the
  // retransmit before the dispatch visit sees it.
  if (SuppressDuplicate(conn, *msg)) return;

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CreateReq>) {
          HandleCreate(conn, m);
        } else if constexpr (std::is_same_v<T, SignalReq>) {
          HandleSignal(conn, m);
        } else if constexpr (std::is_same_v<T, RusageReq>) {
          HandleRusage(conn, m);
        } else if constexpr (std::is_same_v<T, AdoptReq>) {
          HandleAdopt(conn, m);
        } else if constexpr (std::is_same_v<T, TraceReq>) {
          HandleTrace(conn, m);
        } else if constexpr (std::is_same_v<T, HistoryReq>) {
          HandleHistory(conn, m);
        } else if constexpr (std::is_same_v<T, TriggerReq>) {
          HandleTrigger(conn, m);
        } else if constexpr (std::is_same_v<T, FilesReq>) {
          HandleFiles(conn, m);
        } else if constexpr (std::is_same_v<T, MigrateReq>) {
          HandleMigrate(conn, m);
        } else if constexpr (std::is_same_v<T, SnapshotReq>) {
          if (m.origin_host.empty()) {
            // A tool asking us to originate a snapshot.
            if (!AdmitRequest(conn, m.req_id)) return;
            uint64_t tool_req = m.req_id;
            Dispatch(RxMeta(conn, tool_req),
                     [this, conn, tool_req](Pid h) { StartSnapshot(conn, tool_req, h); });
          } else {
            HandleSnapshotReq(conn, m);
          }
        } else if constexpr (std::is_same_v<T, SnapshotResp>) {
          HandleSnapshotResp(m);
        } else if constexpr (std::is_same_v<T, StatReq>) {
          if (m.origin_host.empty()) {
            // A tool asking us to originate a cluster-wide stat round.
            if (!AdmitRequest(conn, m.req_id)) return;
            uint64_t tool_req = m.req_id;
            bool dump = m.dump_flight;
            Dispatch(RxMeta(conn, tool_req), [this, conn, tool_req, dump](Pid h) {
              StartStat(conn, tool_req, dump, h);
            });
          } else {
            HandleStatReq(conn, m);
          }
        } else if constexpr (std::is_same_v<T, StatResp>) {
          HandleStatResp(m);
        } else if constexpr (std::is_same_v<T, BusyResp>) {
          HandleBusy(m);
        } else if constexpr (std::is_same_v<T, CreateResp> || std::is_same_v<T, SignalResp> ||
                             std::is_same_v<T, RusageResp> || std::is_same_v<T, AdoptResp> ||
                             std::is_same_v<T, TraceResp> || std::is_same_v<T, HistoryResp> ||
                             std::is_same_v<T, TriggerResp> || std::is_same_v<T, FilesResp> ||
                             std::is_same_v<T, MigrateResp>) {
          HandleResponse(*msg, m.req_id);
        } else if constexpr (std::is_same_v<T, BecomeCcs>) {
          PPM_INFO("lpm") << host_name() << ": assuming CCS role (asked by "
                          << m.requested_by << ")";
          is_ccs_ = true;
          ccs_host_ = host_name();
          PersistCcs();
          CancelDeath();
          SetMode(LpmMode::kNormal);
          recovery_in_progress_ = false;
          RegisterCcsWithNameServer();
          auto list = ReadRecoveryList(host_.fs(), uid_);
          auto idx = list.IndexOf(host_name());
          if (idx && *idx > 0) {
            SetMode(LpmMode::kRecovering);
            simulator().Cancel(probe_event_);
            probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                                  [this] { ProbeHigherPriority(); },
                                                  "lpm-probe");
          }
          AnnounceCcs();
          ReviewTtl();
        } else if constexpr (std::is_same_v<T, RegisterChild>) {
          auto it = local_procs_.find(m.parent_pid);
          if (it != local_procs_.end()) {
            auto& kids = it->second.remote_children;
            if (std::find(kids.begin(), kids.end(), m.child) == kids.end()) {
              kids.push_back(m.child);
              if (store_) store_->RecordRemoteChild(m.parent_pid, m.child);
            }
          }
        } else if constexpr (std::is_same_v<T, CcsChanged>) {
          AcceptCcsAnnouncement(m.new_ccs);
        } else if constexpr (std::is_same_v<T, Probe>) {
          ProbeAck ack;
          ack.req_id = m.req_id;
          ack.host = host_name();
          ack.is_ccs = is_ccs_;
          SendMsg(conn, ack);
        } else if constexpr (std::is_same_v<T, ProbeAck>) {
          HandleResponse(*msg, m.req_id);
        }
        // HelloSibling / HelloTool / HelloAck / HelloReject on an
        // authenticated circuit are protocol errors; ignore.
      },
      *msg);
}

// --- hello ------------------------------------------------------------------------

void Lpm::HandleHello(net::ConnId conn, const Msg& msg, PeerInfo& info) {
  if (const auto* hs = std::get_if<HelloSibling>(&msg)) {
    // Inbound sibling: must present *our* token (obtained from our pmd,
    // which enforced the user-level checks).
    if (hs->token != token_ || hs->user != user_) {
      HelloReject rej;
      rej.reason = "authentication failed";
      SendMsg(conn, rej);
      network().Close(conn);
      peers_.erase(conn);
      return;
    }
    info.kind = PeerKind::kSibling;
    info.host = hs->origin_host;
    info.authenticated = true;
    HelloAck ack;
    ack.host = host_name();
    ack.lpm_pid = pid();
    ack.ccs_host = CcsClaim();
    SendMsg(conn, ack);
    if (!hs->ccs_host.empty()) AdoptCcsFromPeer(hs->ccs_host);
    // Crossing setups: if our own outbound exchange to this host is
    // still in flight, this inbound circuit settles it — the waiters
    // (possibly a recovery walk) must not sit out the setup timeout.
    // The ack goes first so the peer authenticates the circuit before
    // any forwarded traffic the waiters emit on it.
    SiblingEstablished(hs->origin_host, conn);
    return;
  }
  if (const auto* ht = std::get_if<HelloTool>(&msg)) {
    // Tools are local: the circuit must originate on this host, and the
    // claimed uid must be ours (stands in for SCM_CREDENTIALS).
    auto ep = network().ConnEndpoints(conn);
    bool local = ep && ep->second.host == host_.net_id();
    if (!local || ht->uid != uid_ || ht->user != user_) {
      HelloReject rej;
      rej.reason = "tool authentication failed";
      SendMsg(conn, rej);
      network().Close(conn);
      peers_.erase(conn);
      return;
    }
    info.kind = PeerKind::kTool;
    info.tool_name = ht->tool_name;
    info.authenticated = true;
    // First contact establishes the session: if no CCS exists yet, this
    // LPM is it by default (paper Section 5).
    if (ccs_host_.empty()) {
      is_ccs_ = true;
      ccs_host_ = host_name();
      PersistCcs();
      RegisterCcsWithNameServer();
      // A default coordinator still owes deference to ~/.recovery: if a
      // higher-priority listed host (or any listed host, when we are
      // unlisted) runs an LPM, probe upward and yield to it, exactly
      // like an acting CCS after a partition heals.  Without this, tool
      // sessions started independently on different hosts would create
      // coordinator islands that never reconcile.
      auto list = ReadRecoveryList(host_.fs(), uid_);
      auto idx = list.IndexOf(host_name());
      if (!list.hosts.empty() && (!idx || *idx > 0)) {
        simulator().Cancel(probe_event_);
        probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                              [this] { ProbeHigherPriority(); },
                                              "lpm-probe");
      }
    }
    HelloAck ack;
    ack.host = host_name();
    ack.lpm_pid = pid();
    ack.ccs_host = CcsClaim();
    SendMsg(conn, ack);
    ReviewTtl();
    return;
  }
  if (const auto* ack = std::get_if<HelloAck>(&msg)) {
    // Outbound sibling circuit we initiated: authentication complete.
    if (info.kind == PeerKind::kSibling && !info.authenticated) {
      info.authenticated = true;
      if (!ack->ccs_host.empty()) AdoptCcsFromPeer(ack->ccs_host);
      SiblingEstablished(info.host, conn);
      return;
    }
    return;
  }
  if (std::get_if<HelloReject>(&msg) != nullptr) {
    std::string host = info.host;
    network().Close(conn);
    peers_.erase(conn);
    if (!host.empty()) SiblingSetupFailed(host, "hello rejected");
    return;
  }
  // Anything else before authentication: refuse.
  HelloReject rej;
  rej.reason = "hello expected";
  SendMsg(conn, rej);
  network().Close(conn);
  peers_.erase(conn);
}

// --- local actions ---------------------------------------------------------------

void Lpm::DoCreateLocal(const CreateReq& req, Pid handler,
                        std::function<void(const CreateResp&)> done) {
  // The LPM is the process creation server (paper Section 2): the child
  // is forked from the manager, adopted at birth, and its logical parent
  // — possibly on another machine — is recorded for the genealogy.
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(handler, BaseCosts::kForkExec);
  simulator().ScheduleIn(cost, [this, req, done = std::move(done)] {
    CreateResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    Pid child = kernel().Spawn(pid(), uid_, req.command, nullptr,
                               req.initially_running ? host::ProcState::kRunning
                                                     : host::ProcState::kSleeping,
                               req.trace_mask, pid());
    LocalProc info;
    info.logical_parent = req.logical_parent;
    info.command = req.command;
    if (store_) store_->RecordProcNew(child, info.logical_parent, info.command);
    local_procs_[child] = std::move(info);
    resp.ok = true;
    resp.gpid = GPid{host_name(), child};
    // A cross-host logical parent must learn of this child, or once it
    // exits its manager would drop it from snapshots while the child
    // lives ("retain exit information while there are children alive").
    if (req.logical_parent.valid() && req.logical_parent.host != host_name()) {
      GPid parent = req.logical_parent;
      GPid child_gpid = resp.gpid;
      EnsureSibling(parent.host, [this, parent, child_gpid](std::optional<net::ConnId> c) {
        if (!c || !running_) return;
        RegisterChild note;
        note.parent_pid = parent.pid;
        note.child = child_gpid;
        SendMsg(*c, note);
      });
    }
    ReviewTtl();
    done(resp);
  }, "lpm-create");
}

void Lpm::DoSignalLocal(const SignalReq& req, Pid handler,
                        std::function<void(const SignalResp&)> done) {
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(handler, BaseCosts::kSignal);
  simulator().ScheduleIn(cost, [this, req, done = std::move(done)] {
    SignalResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    std::string err;
    resp.ok = kernel().PostSignal(req.target.pid, req.sig, uid_, &err);
    resp.error = err;
    done(resp);
  }, "lpm-signal");
}

std::vector<ProcRecord> Lpm::ScanLocalProcesses() {
  // Which exited processes still matter?  Those that still anchor
  // descendants — the paper retains exit information while children are
  // alive and marks the node as exited in the display.  Anchoring is
  // *transitive*: an exited parent of an exited-but-anchoring child must
  // itself be kept, or the chain to its live grandchildren snaps.
  // (Remote children are counted conservatively: we do not learn of
  // their deaths, so a parent with any recorded remote child is kept.)
  std::set<GPid> included;
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    if ((p && p->alive()) || !info.remote_children.empty()) {
      included.insert(GPid{host_name(), lpid});
    }
  }
  bool grew = true;
  while (grew) {
    grew = false;
    // Parents of included records must be included too.
    for (const auto& [lpid, info] : local_procs_) {
      GPid self{host_name(), lpid};
      if (!included.count(self) || !info.logical_parent.valid()) continue;
      if (info.logical_parent.host == host_name() &&
          local_procs_.count(info.logical_parent.pid) &&
          !included.count(info.logical_parent)) {
        included.insert(info.logical_parent);
        grew = true;
      }
    }
  }
  std::vector<ProcRecord> out;
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    bool alive = p && p->alive();
    GPid self{host_name(), lpid};
    if (!alive && !included.count(self)) continue;
    ProcRecord rec;
    rec.gpid = self;
    rec.logical_parent = info.logical_parent;
    rec.uid = uid_;
    rec.command = info.command;
    if (alive) {
      rec.state = p->state;
      rec.exited = false;
      rec.start_time = p->start_time;
      rec.cpu_time = p->rusage.cpu_time;
    } else {
      rec.state = host::ProcState::kDead;
      rec.exited = true;
      if (p) {
        rec.start_time = p->start_time;
        rec.end_time = p->end_time;
        rec.cpu_time = p->rusage.cpu_time;
      }
    }
    out.push_back(std::move(rec));
  }
  return out;
}

// --- request handlers -----------------------------------------------------------------

void Lpm::HandleCreate(net::ConnId conn, const CreateReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  obs::TraceContext rx = rx_trace_;
  sim::SimTime t0 = simulator().Now();
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req, rx, t0](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      DoCreateLocal(req, h, [this, conn, h, t0](const CreateResp& resp) {
        Metrics().create_ms->Observe(
            static_cast<double>(simulator().Now() - t0) / 1000.0);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      });
      return;
    }
    CreateReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    GPid parent = req.logical_parent;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id, parent, t0](const Msg* m, const std::string& err) {
                    CreateResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<CreateResp>(*m)) {
                      resp = std::get<CreateResp>(*m);
                      resp.req_id = orig_id;
                      // (Cross-host parent links are registered with the
                      // parent's manager by the child's birth-site LPM;
                      // see DoCreateLocal.)
                      (void)parent;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    Metrics().create_ms->Observe(
                        static_cast<double>(simulator().Now() - t0) / 1000.0);
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  },
                  rx);
  });
}

void Lpm::HandleSignal(net::ConnId conn, const SignalReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  obs::TraceContext rx = rx_trace_;
  sim::SimTime t0 = simulator().Now();
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req, rx, t0](Pid h) {
    if (req.target.host == host_name()) {
      DoSignalLocal(req, h, [this, conn, h, t0](const SignalResp& resp) {
        Metrics().signal_ms->Observe(
            static_cast<double>(simulator().Now() - t0) / 1000.0);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      });
      return;
    }
    SignalReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id, t0](const Msg* m, const std::string& err) {
                    SignalResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<SignalResp>(*m)) {
                      resp = std::get<SignalResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    Metrics().signal_ms->Observe(
                        static_cast<double>(simulator().Now() - t0) / 1000.0);
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  },
                  rx);
  });
}

void Lpm::HandleRusage(net::ConnId conn, const RusageReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      cost += kernel().Charge(
          h, BaseCosts::kPerProcessScan * static_cast<int64_t>(exited_stats_.size() + 1));
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        RusageResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.records = exited_stats_;
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-rusage");
      return;
    }
    RusageReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    RusageResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<RusageResp>(*m)) {
                      resp = std::get<RusageResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleAdopt(net::ConnId conn, const AdoptReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        AdoptResp resp;
        resp.req_id = req.req_id;
        std::vector<Pid> adopted;
        std::string err;
        if (!running_) {
          resp.ok = false;
          resp.error = "manager shutting down";
        } else if (kernel().Adopt(pid(), req.target.pid, req.trace_mask, uid_, &adopted,
                                  &err)) {
          resp.ok = true;
          for (Pid p : adopted) {
            resp.adopted_pids.push_back(p);
            if (!local_procs_.count(p)) {
              const host::Process* proc = kernel().Find(p);
              LocalProc info;
              info.command = proc ? proc->command : "?";
              // Derive the logical parent from the kernel genealogy when
              // the parent is also ours.
              if (proc && local_procs_.count(proc->ppid)) {
                info.logical_parent = GPid{host_name(), proc->ppid};
              }
              if (store_) {
                store_->RecordProcNew(p, info.logical_parent, info.command);
              }
              local_procs_[p] = std::move(info);
            }
          }
          ReviewTtl();
        } else {
          resp.ok = false;
          resp.error = err;
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-adopt");
      return;
    }
    AdoptReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    AdoptResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<AdoptResp>(*m)) {
                      resp = std::get<AdoptResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleTrace(net::ConnId conn, const TraceReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        TraceResp resp;
        resp.req_id = req.req_id;
        std::string err;
        if (!running_) {
          resp.ok = false;
          resp.error = "manager shutting down";
        } else {
          resp.ok = kernel().SetTraceMask(req.target.pid, req.trace_mask, uid_, &err);
          resp.error = err;
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-trace");
      return;
    }
    TraceReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    TraceResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<TraceResp>(*m)) {
                      resp = std::get<TraceResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleHistory(net::ConnId conn, const HistoryReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        HistoryResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.events = event_log_.Query(req.pid_filter, req.max_events);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-history");
      return;
    }
    HistoryReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    HistoryResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<HistoryResp>(*m)) {
                      resp = std::get<HistoryResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleTrigger(net::ConnId conn, const TriggerReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        TriggerResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.trigger_id = triggers_.Install(req.spec);
        if (store_) store_->RecordTriggerInstall(resp.trigger_id, req.spec);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-trigger");
      return;
    }
    TriggerReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    TriggerResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<TriggerResp>(*m)) {
                      resp = std::get<TriggerResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleFiles(net::ConnId conn, const FilesReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      cost += kernel().Charge(h, BaseCosts::kPerProcessScan);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        FilesResp resp;
        resp.req_id = req.req_id;
        const host::Process* p = running_ ? kernel().Find(req.target.pid) : nullptr;
        if (!p || !p->alive()) {
          resp.ok = false;
          resp.error = "no such process";
        } else if (p->uid != uid_) {
          resp.ok = false;
          resp.error = "permission denied";
        } else {
          resp.ok = true;
          for (const host::OpenFile& f : p->open_files) {
            resp.files.push_back(FileRecord{f.fd, f.path, f.mode});
          }
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-files");
      return;
    }
    FilesReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    FilesResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<FilesResp>(*m)) {
                      resp = std::get<FilesResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::DoMigrateLocal(const MigrateReq& req, Pid handler,
                         std::function<void(const MigrateResp&)> done) {
  MigrateResp resp;
  resp.req_id = req.req_id;
  const host::Process* proc = kernel().Find(req.target.pid);
  if (!proc || !proc->alive() || !local_procs_.count(req.target.pid)) {
    resp.ok = false;
    resp.error = "no such adopted process";
    done(resp);
    return;
  }
  if (req.dest_host == host_name()) {
    resp.ok = false;
    resp.error = "already on " + host_name();
    done(resp);
    return;
  }
  // Checkpoint: scan the PCB and ship the image.
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kPerProcessScan);
  cost += kernel().Charge(handler, BaseCosts::kMigrateImage);
  bool was_running = proc->state == host::ProcState::kRunning;
  bool was_stopped = proc->state == host::ProcState::kStopped;
  CreateReq create;
  create.req_id = NextReqId();
  create.target_host = req.dest_host;
  create.command = proc->command;
  // The old incarnation becomes the new one's logical parent, so the
  // genealogical tree stays connected across the move (the old node is
  // retained, marked exited, exactly like any other exited interior).
  create.logical_parent = req.target;
  create.initially_running = was_running;
  create.trace_mask = proc->trace_mask;

  simulator().ScheduleIn(cost, [this, req, create, handler, was_stopped,
                                done = std::move(done)]() mutable {
    MigrateResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    uint64_t my_id = create.req_id;
    ForwardToHost(
        req.dest_host, Msg{create}, my_id, handler,
        [this, req, handler, was_stopped, done = std::move(done)](
            const Msg* m, const std::string& err) mutable {
          MigrateResp resp;
          resp.req_id = req.req_id;
          if (m == nullptr || !std::holds_alternative<CreateResp>(*m) ||
              !std::get<CreateResp>(*m).ok) {
            resp.ok = false;
            resp.error = m != nullptr && std::holds_alternative<CreateResp>(*m)
                             ? std::get<CreateResp>(*m).error
                             : (err.empty() ? "destination unreachable" : err);
            done(resp);  // the original process is untouched
            return;
          }
          GPid new_gpid = std::get<CreateResp>(*m).gpid;
          // Commit: terminate the old incarnation and anchor the new one.
          auto it = local_procs_.find(req.target.pid);
          if (it != local_procs_.end()) {
            it->second.remote_children.push_back(new_gpid);
            if (store_) store_->RecordRemoteChild(req.target.pid, new_gpid);
          }
          kernel().PostSignal(req.target.pid, host::Signal::kSigKill, uid_);
          resp.ok = true;
          resp.new_gpid = new_gpid;
          if (!was_stopped) {
            done(resp);
            return;
          }
          // Preserve the stopped state at the destination.
          SignalReq stop;
          stop.req_id = NextReqId();
          stop.target = new_gpid;
          stop.sig = host::Signal::kSigStop;
          uint64_t stop_id = stop.req_id;
          ForwardToHost(new_gpid.host, Msg{stop}, stop_id, handler,
                        [resp, done = std::move(done)](const Msg*, const std::string&) {
                          done(resp);
                        });
        });
  }, "lpm-migrate");
}

void Lpm::HandleMigrate(net::ConnId conn, const MigrateReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        DoMigrateLocal(req, h, [this, conn, h](const MigrateResp& resp) {
          ReplyMsg(conn, resp);
          ReleaseHandler(h);
        });
      }, "lpm-migrate-local");
      return;
    }
    MigrateReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    MigrateResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<MigrateResp>(*m)) {
                      resp = std::get<MigrateResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::MigrateGPid(const GPid& target, const std::string& dest,
                      std::function<void(bool, std::string)> done) {
  Dispatch([this, target, dest, done = std::move(done)](Pid h) {
    MigrateReq req;
    req.req_id = NextReqId();
    req.target = target;
    req.dest_host = dest;
    if (target.host == host_name()) {
      DoMigrateLocal(req, h, [this, h, done = std::move(done)](const MigrateResp& resp) {
        done(resp.ok, resp.error);
        ReleaseHandler(h);
      });
      return;
    }
    uint64_t my_id = req.req_id;
    ForwardToHost(target.host, Msg{req}, my_id, h,
                  [this, h, done = std::move(done)](const Msg* m, const std::string& err) {
                    if (m != nullptr && std::holds_alternative<MigrateResp>(*m)) {
                      const auto& resp = std::get<MigrateResp>(*m);
                      done(resp.ok, resp.error);
                    } else {
                      done(false, err);
                    }
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleResponse(const Msg& msg, uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;  // late response after timeout
  PendingForward pf = std::move(it->second);
  pending_.erase(it);
  simulator().Cancel(pf.timeout_ev);
  if (pf.on_response) pf.on_response(&msg, "");
}

// --- forwarding & sibling management ----------------------------------------------------

void Lpm::ForwardToHost(const std::string& host, Msg msg, uint64_t my_req_id,
                        Pid handler,
                        std::function<void(const Msg*, const std::string&)> on_response,
                        const obs::TraceContext& trace) {
  ++stats_.forwards;
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kForward);
  simulator().ScheduleIn(cost, [this, host, msg = std::move(msg), my_req_id, handler,
                                on_response = std::move(on_response), trace]() mutable {
    if (!running_) {
      on_response(nullptr, "manager shutting down");
      return;
    }
    // Install the pending entry before the first attempt: the overall
    // deadline (one request_timeout from now) covers every retry, and a
    // timeout expiry is final — only fast failures (BUSY, channel lost,
    // sibling setup failure) re-attempt under it.  The deadline and the
    // idempotency token ride the wire on every attempt, so downstream
    // hops can cancel expired work and suppress duplicate execution.
    PendingForward pf;
    pf.handler = handler;
    pf.on_response = std::move(on_response);
    pf.host = host;
    pf.msg = std::move(msg);
    pf.trace = trace;
    if (config_.overload_protection) {
      pf.deadline_us =
          static_cast<uint64_t>(simulator().Now() + config_.request_timeout);
      pf.idem_token = MakeIdemToken(host_name(), my_req_id);
    }
    pf.timeout_ev = simulator().ScheduleIn(config_.request_timeout, [this, my_req_id] {
      auto it = pending_.find(my_req_id);
      if (it == pending_.end()) return;
      ++stats_.request_timeouts;
      FailForward(my_req_id, "request timed out");
    }, "lpm-fwd-timeout");
    pending_[my_req_id] = std::move(pf);
    StartForwardAttempt(my_req_id);
  }, "lpm-forward");
}

void Lpm::StartForwardAttempt(uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end() || !running_) return;
  const std::string host = it->second.host;
  if (config_.overload_protection && PeerQuarantined(host)) {
    // Fast-fail without paying the connect timeout; quarantine is not
    // itself evidence of a new failure, so the breaker stays untouched.
    FailForward(req_id, "peer quarantined");
    return;
  }
  EnsureSibling(host, [this, req_id](std::optional<net::ConnId> conn) {
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // overall timeout beat the connect
    if (!conn) {
      ForwardAttemptFailed(req_id, "sibling unreachable");
      return;
    }
    PendingForward& pf = it->second;
    pf.conn = *conn;
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(pf.trace, "forward", host_name());
    DeadlineStamp stamp;
    stamp.deadline_us = pf.deadline_us;
    stamp.idem_token = pf.idem_token;
    SendToSibling(*conn, pf.msg, BaseCosts::kSiblingSend, 0, hop, stamp);
  });
}

void Lpm::ForwardAttemptFailed(uint64_t req_id, const std::string& why,
                               uint64_t min_backoff_us) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  PendingForward& pf = it->second;
  pf.conn = net::kInvalidConn;  // no attempt in flight while backing off
  if (!config_.overload_protection || pf.attempts >= config_.max_retries) {
    FailForward(req_id, why);
    return;
  }
  // Exponential backoff with seeded jitter (0.5x-1.5x) so a burst of
  // simultaneous failures does not retry in lockstep; a BUSY peer's
  // retry-after hint floors the wait.
  const uint32_t attempt = ++pf.attempts;
  ++stats_.retries;
  Metrics().retries->Inc();
  double jitter = 0.5 + simulator().rng().NextDouble();
  auto backoff = static_cast<sim::SimDuration>(
      static_cast<double>(config_.retry_base << (attempt - 1)) * jitter);
  backoff = std::max(backoff, static_cast<sim::SimDuration>(min_backoff_us));
  if (pf.deadline_us != 0 &&
      static_cast<uint64_t>(simulator().Now() + backoff) >= pf.deadline_us) {
    // No room left under the deadline for another round trip.
    FailForward(req_id, why);
    return;
  }
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kRetry, host_name(),
                                         pf.host, 0, req_id, attempt);
  simulator().ScheduleIn(backoff, [this, req_id] { StartForwardAttempt(req_id); },
                         "lpm-fwd-retry");
}

void Lpm::FailForward(uint64_t req_id, const std::string& why) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  PendingForward pf = std::move(it->second);
  pending_.erase(it);
  simulator().Cancel(pf.timeout_ev);
  if (pf.on_response) pf.on_response(nullptr, why);
}

void Lpm::HandleBusy(const BusyResp& busy) {
  auto it = pending_.find(busy.req_id);
  if (it == pending_.end()) return;  // late BUSY after timeout
  ForwardAttemptFailed(busy.req_id,
                       busy.error.empty() ? "peer busy" : busy.error,
                       busy.retry_after_us);
}

void Lpm::EnsureSibling(const std::string& host,
                        std::function<void(std::optional<net::ConnId>)> done) {
  auto it = siblings_.find(host);
  if (it != siblings_.end()) {
    done(it->second);
    return;
  }
  // No quarantine check here: the forward path fast-fails in
  // StartForwardAttempt before it ever reaches this point, and the
  // control-plane callers (recovery walk, CCS probe) must pay the real
  // connect cost — a breaker left open across a heal would otherwise make
  // a healthy recovery host look dead and march the LPM into time-to-die.
  bool setup_in_progress = sibling_waiters_.count(host) > 0;
  sibling_waiters_[host].push_back(std::move(done));
  if (setup_in_progress) return;

  auto host_id = network().FindHost(host);
  if (!host_id) {
    SiblingSetupFailed(host, "unknown host");
    return;
  }
  // The exchange as a whole runs against a deadline: a frame lost on a
  // faulty link can leave a circuit open-but-silent, and without a bound
  // every waiter (most critically the recovery walk) would hang forever.
  sibling_setup_timeout_ev_[host] = simulator().ScheduleIn(
      config_.sibling_setup_timeout, [this, host] { SiblingSetupTimedOut(host); },
      "lpm-sibling-setup-timeout");
  // Note: no liveness shortcut here — whether the host is up can only be
  // learned by trying, i.e. by paying the connect timeout, exactly the
  // cost structure the recovery-list walk has on real networks.
  // Step (1) of Figure 2: ask the remote inetd for the user's LPM.
  net::ConnCallbacks cb;
  cb.on_data = [this, host](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto resp = daemon::LpmResponse::Parse(bytes);
    sibling_setup_conn_.erase(host);
    network().Close(c);
    if (!resp) {
      SiblingSetupFailed(host, "bad pmd response");
      return;
    }
    FinishSiblingSetup(host, *resp);
  };
  cb.on_close = [](net::ConnId, net::CloseReason) {};
  network().Connect(host_.net_id(), net::SocketAddr{*host_id, net::kInetdPort},
                    std::move(cb), [this, host](std::optional<net::ConnId> c) {
                      if (!running_) return;
                      if (!c) {
                        SiblingSetupFailed(host, "inetd unreachable");
                        return;
                      }
                      sibling_setup_conn_[host] = *c;
                      daemon::LpmRequest req;
                      req.user = user_;
                      req.origin_host = host_name();
                      req.origin_user = user_;
                      network().Send(*c, req.Serialize());
                    });
}

void Lpm::FinishSiblingSetup(const std::string& host, const daemon::LpmResponse& resp) {
  if (!running_) return;
  if (!resp.ok) {
    // A busy pmd is reachable — an overload signal, not unreachability;
    // retry under backoff without feeding the circuit breaker.
    SiblingSetupFailed(host, resp.error, /*count_failure=*/!resp.busy);
    return;
  }
  // Step (4) done: we hold the accept address and the token; open the
  // private channel (Figure 3) and authenticate.
  net::ConnCallbacks cb;
  cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) { OnData(c, b); };
  cb.on_close = [this](net::ConnId c, net::CloseReason r) { OnClose(c, r); };
  uint64_t token = resp.token;
  network().Connect(host_.net_id(), resp.accept_addr, std::move(cb),
                    [this, host, token](std::optional<net::ConnId> c) {
                      if (!running_) return;
                      if (!c) {
                        SiblingSetupFailed(host, "accept socket unreachable");
                        return;
                      }
                      sibling_setup_conn_[host] = *c;
                      PeerInfo info;
                      info.kind = PeerKind::kSibling;
                      info.host = host;
                      info.authenticated = false;  // until HelloAck
                      peers_[*c] = info;
                      HelloSibling hello;
                      hello.user = user_;
                      hello.origin_host = host_name();
                      hello.origin_lpm_pid = pid();
                      hello.token = token;
                      hello.ccs_host = CcsClaim();
                      SendMsg(*c, hello);
                    });
}

void Lpm::SiblingEstablished(const std::string& host, net::ConnId conn) {
  auto tit = sibling_setup_timeout_ev_.find(host);
  if (tit != sibling_setup_timeout_ev_.end()) {
    simulator().Cancel(tit->second);
    sibling_setup_timeout_ev_.erase(tit);
  }
  // A crossing inbound setup can win while our own outbound exchange is
  // mid-flight on a different circuit; close the abandoned one.
  auto cit = sibling_setup_conn_.find(host);
  if (cit != sibling_setup_conn_.end()) {
    if (cit->second != conn) {
      peers_.erase(cit->second);
      network().Close(cit->second);
    }
    sibling_setup_conn_.erase(cit);
  }
  siblings_[host] = conn;
  RecordPeerSuccess(host);  // closes (and forgets) any open breaker
  auto waiters = std::move(sibling_waiters_[host]);
  sibling_waiters_.erase(host);
  for (auto& cb : waiters) cb(conn);
  ReviewTtl();
}

void Lpm::SiblingSetupFailed(const std::string& host, const std::string& why,
                             bool count_failure) {
  PPM_DEBUG("lpm") << host_name() << ": sibling setup to " << host << " failed: " << why;
  auto tit = sibling_setup_timeout_ev_.find(host);
  if (tit != sibling_setup_timeout_ev_.end()) {
    simulator().Cancel(tit->second);
    sibling_setup_timeout_ev_.erase(tit);
  }
  // Tear down whatever circuit the exchange was using, so an abandoned
  // setup never leaks a half-open connection.  No forward is attached to
  // it yet (attachment happens only after the waiters fire), so a plain
  // close is safe.
  auto cit = sibling_setup_conn_.find(host);
  if (cit != sibling_setup_conn_.end()) {
    net::ConnId c = cit->second;
    sibling_setup_conn_.erase(cit);
    peers_.erase(c);
    network().Close(c);
  }
  if (count_failure) RecordPeerFailure(host);
  auto it = sibling_waiters_.find(host);
  if (it == sibling_waiters_.end()) return;
  auto waiters = std::move(it->second);
  sibling_waiters_.erase(it);
  for (auto& cb : waiters) cb(std::nullopt);
}

void Lpm::SiblingSetupTimedOut(const std::string& host) {
  sibling_setup_timeout_ev_.erase(host);
  if (!running_ || siblings_.count(host) > 0) return;
  PPM_INFO("lpm") << host_name() << ": sibling setup to " << host
                  << " timed out after "
                  << config_.sibling_setup_timeout / 1000 << " ms";
  SiblingSetupFailed(host, "sibling setup timed out");
}

// --- snapshots (the graph-covering broadcast of Section 4) ------------------------------

void Lpm::StartSnapshot(net::ConnId tool_conn, uint64_t tool_req_id, Pid handler) {
  uint64_t seq = NextBcastSeq();
  ++stats_.bcasts_originated;
  // Record our own broadcast so an echo through a cycle is suppressed.
  bcast_filter_.CheckAndRecord(host_name(), seq, simulator().Now());

  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(
      handler, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
  simulator().ScheduleIn(cost, [this, tool_conn, tool_req_id, handler, seq] {
    if (!running_) return;
    SnapshotRun run;
    run.tool_req_id = tool_req_id;
    run.tool_conn = tool_conn;
    run.handler = handler;
    run.records = ScanLocalProcesses();
    // Root of the broadcast's causal trace: every flood hop, reply, and
    // relay becomes a descendant span, so the finished trace replays the
    // covering-graph tree (paper Section 4's recorded routes).
    run.trace = obs::Tracer::Instance().StartTrace("snapshot", host_name());
    run.start_us = simulator().Now();

    SnapshotReq templ;
    templ.req_id = seq;
    templ.origin_host = host_name();
    templ.bcast_seq = seq;
    templ.signed_ts = simulator().Now();  // "signed" by naming the origin host
    templ.route.push_back(host_name());

    std::vector<std::string> sent;
    FloodSnapshot(seq, templ, /*except_host=*/"", &sent, run.trace);
    for (const std::string& h : sent) run.outstanding.insert(h);
    run.replied.insert(host_name());
    {
      std::string to;
      for (const std::string& h : sent) to += h + " ";
      PPM_DEBUG("lpm") << host_name() << ": snapshot seq " << seq
                       << " flooded to [ " << to << "]";
    }

    if (!run.outstanding.empty()) {
      run.timeout_ev = simulator().ScheduleIn(config_.snapshot_timeout, [this, seq] {
        auto it = snapshots_.find(seq);
        if (it == snapshots_.end()) return;
        it->second.timeout_ev = sim::kInvalidEventId;
        FinishSnapshot(it->second, seq);
      }, "lpm-snapshot-timeout");
      snapshots_[seq] = std::move(run);
    } else {
      snapshots_[seq] = std::move(run);
      FinishSnapshot(snapshots_[seq], seq);
    }
  }, "lpm-snapshot-start");
}

sim::SimDuration Lpm::FloodSnapshot(uint64_t bcast_seq, const SnapshotReq& templ,
                                    const std::string& except_host,
                                    std::vector<std::string>* sent_to,
                                    const obs::TraceContext& parent) {
  (void)bcast_seq;
  // The dispatcher marshals once and then writes the message to each
  // sibling channel in turn: the first send pays the full marshalling
  // cost, the rest only the write.
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [host, conn] : siblings_) {
    if (host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, templ, parent] {
      if (!running_) return;
      // One hop span per fan-out edge, opened at the moment the frame
      // actually leaves; closed by the receiving LPM's OnData.
      obs::TraceContext hop =
          obs::Tracer::Instance().StartSpan(parent, "snapshot.req", host_name());
      SendMsg(target, templ, hop);
    }, "lpm-flood-send");
    if (sent_to) sent_to->push_back(host);
  }
  return cum;
}

void Lpm::HandleSnapshotReq(net::ConnId conn, const SnapshotReq& req) {
  (void)conn;
  // The hop span that carried the request here: re-floods and the reply
  // continue the causal chain under it.
  obs::TraceContext rx = rx_trace_;
  if (!bcast_filter_.CheckAndRecord(req.origin_host, req.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    PPM_DEBUG("lpm") << host_name() << ": suppressed duplicate snapshot flood from "
                     << req.origin_host << " seq " << req.bcast_seq;
    return;
  }
  std::string sender = req.route.empty() ? std::string() : req.route.back();
  Dispatch([this, req, sender, rx](Pid h) {
    ++stats_.snapshots_served;
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    cost += kernel().Charge(
        h, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
    simulator().ScheduleIn(cost, [this, req, sender, rx, h] {
      if (!running_) {
        ReleaseHandler(h);
        return;
      }
      SnapshotReq fwd = req;
      fwd.route.push_back(host_name());
      std::vector<std::string> sent;
      sim::SimDuration flood_cost = FloodSnapshot(req.bcast_seq, fwd, sender, &sent, rx);

      SnapshotResp resp;
      resp.req_id = req.req_id;
      resp.origin_host = req.origin_host;
      resp.bcast_seq = req.bcast_seq;
      resp.replier_host = host_name();
      resp.forwarded_to = sent;
      resp.route = fwd.route;  // origin … us; replies walk it backwards
      resp.route_index = 0;
      resp.records = ScanLocalProcesses();
      // First hop of the return path is whoever handed us the request.
      // The reply is marshalled after the forwarded floods have left.
      auto sit = siblings_.find(sender);
      if (sit != siblings_.end()) {
        obs::TraceContext hop =
            obs::Tracer::Instance().StartSpan(rx, "snapshot.resp", host_name());
        SendToSibling(sit->second, Msg{resp}, BaseCosts::kSiblingSend, flood_cost, hop);
      }
      // If the channel back is gone the origin's timeout covers us.
      ReleaseHandler(h);
    }, "lpm-snapshot-serve");
  });
}

void Lpm::HandleSnapshotResp(const SnapshotResp& resp) {
  obs::TraceContext rx = rx_trace_;
  if (resp.origin_host != host_name()) {
    // Relay toward the origin along the recorded route (paper Section 4:
    // "All data returned to the originator of a broadcast request
    // includes the message's source-destination route").
    auto pos = std::find(resp.route.begin(), resp.route.end(), host_name());
    if (pos == resp.route.end() || pos == resp.route.begin()) return;
    const std::string& next = *(pos - 1);
    auto sit = siblings_.find(next);
    if (sit == siblings_.end()) return;  // path broke; origin times out
    // Relaying costs a dispatch plus a channel write ("quick routing" of
    // replies along the recorded route, but not free).
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(rx, "snapshot.resp.relay", host_name());
    SendToSibling(sit->second, Msg{resp},
                  BaseCosts::kDispatch + BaseCosts::kHandlerWork + BaseCosts::kSiblingSend,
                  0, hop);
    return;
  }
  auto it = snapshots_.find(resp.bcast_seq);
  if (it == snapshots_.end()) return;  // finished or timed out already
  SnapshotRun& run = it->second;
  if (run.replied.count(resp.replier_host)) return;  // duplicate reply
  run.replied.insert(resp.replier_host);
  run.outstanding.erase(resp.replier_host);
  for (const ProcRecord& rec : resp.records) run.records.push_back(rec);
  for (const std::string& h : resp.forwarded_to) {
    if (!run.replied.count(h)) run.outstanding.insert(h);
  }
  MaybeFinishSnapshot(resp.bcast_seq);
}

void Lpm::MaybeFinishSnapshot(uint64_t bcast_seq) {
  auto it = snapshots_.find(bcast_seq);
  if (it == snapshots_.end()) return;
  if (!it->second.outstanding.empty()) return;
  FinishSnapshot(it->second, bcast_seq);
}

void Lpm::FinishSnapshot(SnapshotRun& run, uint64_t bcast_seq) {
  if (run.complete) return;
  run.complete = true;
  simulator().Cancel(run.timeout_ev);
  Metrics().snapshot_ms->Observe(
      static_cast<double>(simulator().Now() - run.start_us) / 1000.0);
  SnapshotResp out;
  out.req_id = run.tool_req_id;
  out.origin_host = host_name();
  out.bcast_seq = bcast_seq;
  out.replier_host = host_name();
  // The tool learns which hosts contributed (coverage) via forwarded_to.
  out.forwarded_to.assign(run.replied.begin(), run.replied.end());
  out.records = std::move(run.records);
  // The final hop to the tool closes the trace's outermost branch.
  obs::TraceContext hop =
      obs::Tracer::Instance().StartSpan(run.trace, "snapshot.done", host_name());
  if (peers_.count(run.tool_conn)) SendMsg(run.tool_conn, out, hop);
  ReleaseHandler(run.handler);
  snapshots_.erase(bcast_seq);
}

// --- live introspection (the STAT protocol) ------------------------------------------------
//
// Same covering-graph broadcast as the snapshot above — one flood, one
// reverse-routed reply per manager — but the payload is each manager's
// structured self-description (BuildStatRecord) rather than a process
// scan.  ppmstat renders the collected records as a cluster-wide table.

LpmStatRecord Lpm::BuildStatRecord() {
  LpmStatRecord rec;
  rec.host = host_name();
  rec.lpm_pid = pid();
  rec.mode = static_cast<uint8_t>(mode_);
  rec.is_ccs = is_ccs_;
  rec.ccs_host = ccs_host_;
  auto list = ReadRecoveryList(host_.fs(), uid_);
  auto idx = list.IndexOf(host_name());
  rec.recovery_rank = idx ? static_cast<int32_t>(*idx) : -1;
  rec.siblings = sibling_hosts();

  rec.handlers = static_cast<uint32_t>(handlers_.size());
  for (const Handler& h : handlers_) {
    if (h.busy) ++rec.handlers_busy;
  }
  rec.queue_depth = static_cast<uint32_t>(handler_queue_.size());
  rec.queue_watermark = queue_watermark_;
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++rec.tool_circuits;
  }

  rec.requests = stats_.requests;
  rec.forwards = stats_.forwards;
  rec.kernel_events = stats_.kernel_events;
  rec.handlers_created = stats_.handlers_created;
  rec.handler_reuses = stats_.handler_reuses;
  rec.snapshots_served = stats_.snapshots_served;
  rec.bcasts_originated = stats_.bcasts_originated;
  rec.bcast_duplicates = stats_.bcast_duplicates;
  rec.triggers_fired = stats_.triggers_fired;
  rec.failures_detected = stats_.failures_detected;
  rec.recoveries_started = stats_.recoveries_started;
  rec.request_timeouts = stats_.request_timeouts;
  rec.requests_shed = stats_.requests_shed;
  rec.busy_sent = stats_.busy_sent;
  rec.retries = stats_.retries;
  rec.deadline_expired = stats_.deadline_expired;
  rec.dup_suppressed = stats_.dup_suppressed;
  rec.breaker_open = static_cast<uint32_t>(open_breaker_count());

  rec.eventlog_size = event_log_.size();
  rec.eventlog_recorded = event_log_.total_recorded();
  rec.eventlog_filtered = event_log_.total_filtered();
  rec.eventlog_dropped = event_log_.total_dropped();
  for (const auto& [dpid, n] : event_log_.dropped_by_pid()) {
    rec.dropped_by_pid.push_back(PidDrop{dpid, n});
  }

  if (store_) {
    rec.store_enabled = true;
    rec.journal_seq = store_->seq();
    rec.journal_bytes = store_->journal().size_bytes();
    rec.journal_pending = static_cast<uint32_t>(store_->journal().pending_appends());
  }

  if (daemon::Pmd* pmd = pmd_getter_ ? pmd_getter_() : nullptr) {
    rec.pmd_registry = static_cast<uint32_t>(pmd->registry_size());
    rec.pmd_requests = pmd->stats().requests;
  }

  rec.flight_records = obs::FlightRecorder::Instance().total_recorded();
  rec.flight_dumps = obs::FlightRecorder::Instance().dump_count();

  obs::LpmHealthInputs in;
  in.eventlog_recorded = event_log_.total_recorded();
  in.eventlog_dropped = event_log_.total_dropped();
  in.bcasts_handled = stats_.bcasts_originated + stats_.snapshots_served;
  in.bcast_duplicates = stats_.bcast_duplicates;
  in.requests = stats_.requests;
  in.request_timeouts = stats_.request_timeouts;
  in.handler_queue_depth = handler_queue_.size();
  in.journal_pending = store_ ? store_->journal().pending_appends() : 0;
  in.deadline_expired = stats_.deadline_expired;
  in.requests_shed = stats_.requests_shed;
  in.breaker_open = open_breaker_count();
  obs::HealthReport report = obs::ClassifyLpm(in);
  rec.health = static_cast<uint8_t>(report.level);
  rec.health_reasons = std::move(report.reasons);

  rec.procs = ScanLocalProcesses();
  return rec;
}

void Lpm::StartStat(net::ConnId tool_conn, uint64_t tool_req_id, bool dump_flight,
                    Pid handler) {
  uint64_t seq = NextBcastSeq();
  ++stats_.bcasts_originated;
  bcast_filter_.CheckAndRecord(host_name(), seq, simulator().Now());
  if (dump_flight) {
    // On-demand black-box dump; the text is retained in last_dump() for
    // the tool side (ppmstat fetches it out of the in-process recorder).
    obs::FlightRecorder::Instance().Dump("stat request from tool");
  }

  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(
      handler, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
  simulator().ScheduleIn(cost, [this, tool_conn, tool_req_id, handler, seq] {
    if (!running_) return;
    StatRun run;
    run.tool_req_id = tool_req_id;
    run.tool_conn = tool_conn;
    run.handler = handler;
    run.records.push_back(BuildStatRecord());
    run.trace = obs::Tracer::Instance().StartTrace("stat", host_name());
    run.start_us = simulator().Now();

    StatReq templ;
    templ.req_id = seq;
    templ.origin_host = host_name();
    templ.bcast_seq = seq;
    templ.signed_ts = simulator().Now();
    templ.route.push_back(host_name());

    std::vector<std::string> sent;
    FloodStat(seq, templ, /*except_host=*/"", &sent, run.trace);
    for (const std::string& h : sent) run.outstanding.insert(h);
    run.replied.insert(host_name());

    if (!run.outstanding.empty()) {
      run.timeout_ev = simulator().ScheduleIn(config_.snapshot_timeout, [this, seq] {
        auto it = stat_runs_.find(seq);
        if (it == stat_runs_.end()) return;
        it->second.timeout_ev = sim::kInvalidEventId;
        FinishStat(it->second, seq);
      }, "lpm-stat-timeout");
      stat_runs_[seq] = std::move(run);
    } else {
      stat_runs_[seq] = std::move(run);
      FinishStat(stat_runs_[seq], seq);
    }
  }, "lpm-stat-start");
}

sim::SimDuration Lpm::FloodStat(uint64_t bcast_seq, const StatReq& templ,
                                const std::string& except_host,
                                std::vector<std::string>* sent_to,
                                const obs::TraceContext& parent) {
  (void)bcast_seq;
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [host, conn] : siblings_) {
    if (host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, templ, parent] {
      if (!running_) return;
      obs::TraceContext hop =
          obs::Tracer::Instance().StartSpan(parent, "stat.req", host_name());
      SendMsg(target, templ, hop);
    }, "lpm-flood-send");
    if (sent_to) sent_to->push_back(host);
  }
  return cum;
}

void Lpm::HandleStatReq(net::ConnId conn, const StatReq& req) {
  (void)conn;
  obs::TraceContext rx = rx_trace_;
  if (!bcast_filter_.CheckAndRecord(req.origin_host, req.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    return;
  }
  std::string sender = req.route.empty() ? std::string() : req.route.back();
  Dispatch([this, req, sender, rx](Pid h) {
    ++stats_.snapshots_served;  // a stat serve is a local scan too
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    cost += kernel().Charge(
        h, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
    simulator().ScheduleIn(cost, [this, req, sender, rx, h] {
      if (!running_) {
        ReleaseHandler(h);
        return;
      }
      StatReq fwd = req;
      fwd.route.push_back(host_name());
      std::vector<std::string> sent;
      sim::SimDuration flood_cost = FloodStat(req.bcast_seq, fwd, sender, &sent, rx);

      StatResp resp;
      resp.req_id = req.req_id;
      resp.origin_host = req.origin_host;
      resp.bcast_seq = req.bcast_seq;
      resp.replier_host = host_name();
      resp.forwarded_to = sent;
      resp.route = fwd.route;
      resp.route_index = 0;
      resp.records.push_back(BuildStatRecord());
      auto sit = siblings_.find(sender);
      if (sit != siblings_.end()) {
        obs::TraceContext hop =
            obs::Tracer::Instance().StartSpan(rx, "stat.resp", host_name());
        SendToSibling(sit->second, Msg{resp}, BaseCosts::kSiblingSend, flood_cost, hop);
      }
      ReleaseHandler(h);
    }, "lpm-stat-serve");
  });
}

void Lpm::HandleStatResp(const StatResp& resp) {
  obs::TraceContext rx = rx_trace_;
  if (resp.origin_host != host_name()) {
    auto pos = std::find(resp.route.begin(), resp.route.end(), host_name());
    if (pos == resp.route.end() || pos == resp.route.begin()) return;
    const std::string& next = *(pos - 1);
    auto sit = siblings_.find(next);
    if (sit == siblings_.end()) return;  // path broke; origin times out
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(rx, "stat.resp.relay", host_name());
    SendToSibling(sit->second, Msg{resp},
                  BaseCosts::kDispatch + BaseCosts::kHandlerWork + BaseCosts::kSiblingSend,
                  0, hop);
    return;
  }
  auto it = stat_runs_.find(resp.bcast_seq);
  if (it == stat_runs_.end()) return;  // finished or timed out already
  StatRun& run = it->second;
  if (run.replied.count(resp.replier_host)) return;  // duplicate reply
  run.replied.insert(resp.replier_host);
  run.outstanding.erase(resp.replier_host);
  for (const LpmStatRecord& rec : resp.records) run.records.push_back(rec);
  for (const std::string& h : resp.forwarded_to) {
    if (!run.replied.count(h)) run.outstanding.insert(h);
  }
  MaybeFinishStat(resp.bcast_seq);
}

void Lpm::MaybeFinishStat(uint64_t bcast_seq) {
  auto it = stat_runs_.find(bcast_seq);
  if (it == stat_runs_.end()) return;
  if (!it->second.outstanding.empty()) return;
  FinishStat(it->second, bcast_seq);
}

void Lpm::FinishStat(StatRun& run, uint64_t bcast_seq) {
  if (run.complete) return;
  run.complete = true;
  simulator().Cancel(run.timeout_ev);
  Metrics().stat_ms->Observe(
      static_cast<double>(simulator().Now() - run.start_us) / 1000.0);
  StatResp out;
  out.req_id = run.tool_req_id;
  out.origin_host = host_name();
  out.bcast_seq = bcast_seq;
  out.replier_host = host_name();
  out.forwarded_to.assign(run.replied.begin(), run.replied.end());
  out.records = std::move(run.records);
  obs::TraceContext hop =
      obs::Tracer::Instance().StartSpan(run.trace, "stat.done", host_name());
  if (peers_.count(run.tool_conn)) SendMsg(run.tool_conn, out, hop);
  ReleaseHandler(run.handler);
  stat_runs_.erase(bcast_seq);
}

// --- kernel events, history, triggers ------------------------------------------------------

void Lpm::OnKernelEvent(const host::KernelEvent& ev) {
  PPM_PROF_SCOPE("lpm.kernel_event");
  if (!running_) return;
  ++stats_.kernel_events;
  // Hot path: one O(1) ring write, measured by bench_overhead.
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kKernelEvent, host_name(),
                                         host::ToString(ev.kind), 0,
                                         static_cast<uint64_t>(ev.pid));
  HistEvent h;
  h.at = ev.at;
  h.kind = ev.kind;
  h.pid = ev.pid;
  h.other = ev.other;
  h.sig = ev.sig;
  h.status = ev.status;
  h.detail = ev.detail;
  if (event_log_.Record(h, config_.granularity_mask) && store_) {
    store_->RecordEvent(h);
  }
  LpmMetrics& m = Metrics();
  m.eventlog_size->Set(static_cast<double>(event_log_.size()));
  m.eventlog_dropped->Set(static_cast<double>(event_log_.total_dropped()));
  if (event_log_.total_dropped() > eventlog_dropped_seen_) {
    m.eventlog_dropped_total->Inc(event_log_.total_dropped() - eventlog_dropped_seen_);
    eventlog_dropped_seen_ = event_log_.total_dropped();
  }

  switch (ev.kind) {
    case host::KEvent::kFork: {
      // A tracked process forked: the child is ours from birth.
      if (!local_procs_.count(ev.other)) {
        const host::Process* child = kernel().Find(ev.other);
        LocalProc info;
        info.command = child ? child->command : "?";
        info.logical_parent = GPid{host_name(), ev.pid};
        if (store_) {
          store_->RecordProcNew(ev.other, info.logical_parent, info.command);
        }
        local_procs_[ev.other] = std::move(info);
      }
      break;
    }
    case host::KEvent::kExit: {
      auto it = local_procs_.find(ev.pid);
      if (it != local_procs_.end() && !it->second.exited) {
        it->second.exited = true;
        // Preserve the resource consumption record before the zombie is
        // reaped — this is the data the statistics tool serves.
        const host::Process* p = kernel().Find(ev.pid);
        if (p) {
          RusageRecord rec;
          rec.gpid = GPid{host_name(), ev.pid};
          rec.command = p->command;
          rec.exit_status = p->exit_status;
          rec.killed_by_signal = p->killed_by_signal;
          rec.death_signal = p->death_signal;
          rec.start_time = p->start_time;
          rec.end_time = p->end_time;
          rec.rusage = p->rusage;
          if (store_) store_->RecordRusage(rec);
          exited_stats_.push_back(std::move(rec));
        }
        if (store_) store_->RecordProcExit(ev.pid);
        kernel().Reap(pid());  // collect creation-server children
        ReviewTtl();
      }
      break;
    }
    default:
      break;
  }

  triggers_.Match(h, [this](uint64_t id, const TriggerSpec& spec,
                            const HistEvent& hev) {
    // Triggers are one-shot: journal the removal so a warm restart does
    // not re-arm (and re-fire) an already-consumed trigger.
    if (store_) store_->RecordTriggerRemove(id);
    FireTrigger(spec, hev);
  });
  m.triggers_size->Set(static_cast<double>(triggers_.size()));
}

void Lpm::FireTrigger(const TriggerSpec& spec, const HistEvent& ev) {
  ++stats_.triggers_fired;
  Metrics().triggers_fired->Inc();
  if (spec.action == TriggerAction::kMigrate) {
    PPM_INFO("lpm") << host_name() << ": trigger fired on " << host::ToString(ev.kind)
                    << " of pid " << ev.pid << " -> migrate "
                    << ToString(spec.action_target) << " to " << spec.migrate_dest;
    MigrateGPid(spec.action_target, spec.migrate_dest, [](bool, std::string) {});
    return;
  }
  PPM_INFO("lpm") << host_name() << ": trigger fired on " << host::ToString(ev.kind)
                  << " of pid " << ev.pid << " -> " << host::ToString(spec.action_signal)
                  << " to " << ToString(spec.action_target);
  SignalGPid(spec.action_target, spec.action_signal, [](bool, std::string) {});
}

void Lpm::SignalGPid(const GPid& target, host::Signal sig,
                     std::function<void(bool, std::string)> done) {
  Dispatch([this, target, sig, done = std::move(done)](Pid h) {
    SignalReq req;
    req.req_id = NextReqId();
    req.target = target;
    req.sig = sig;
    if (target.host == host_name()) {
      DoSignalLocal(req, h, [this, h, done = std::move(done)](const SignalResp& resp) {
        done(resp.ok, resp.error);
        ReleaseHandler(h);
      });
      return;
    }
    uint64_t my_id = req.req_id;
    ForwardToHost(target.host, Msg{req}, my_id, h,
                  [this, h, done = std::move(done)](const Msg* m, const std::string& err) {
                    if (m != nullptr && std::holds_alternative<SignalResp>(*m)) {
                      const auto& resp = std::get<SignalResp>(*m);
                      done(resp.ok, resp.error);
                    } else {
                      done(false, err);
                    }
                    ReleaseHandler(h);
                  });
  });
}

// --- time-to-live --------------------------------------------------------------------------

void Lpm::ReviewTtl() {
  if (!running_) return;
  size_t tools = 0;
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++tools;
  }
  bool idle = adopted_live_count() == 0 && tools == 0;
  // "For the CCS, the time-to-live interval has a different meaning: as
  // long as there is any sibling LPM in the networked system,
  // time-to-live is not decremented."
  if (is_ccs_ && !siblings_.empty()) idle = false;
  if (idle && ttl_event_ == sim::kInvalidEventId) {
    ttl_event_ = simulator().ScheduleIn(config_.time_to_live, [this] {
      ttl_event_ = sim::kInvalidEventId;
      TtlExpired();
    }, "lpm-ttl");
  } else if (!idle && ttl_event_ != sim::kInvalidEventId) {
    simulator().Cancel(ttl_event_);
    ttl_event_ = sim::kInvalidEventId;
  }
}

void Lpm::TtlExpired() {
  if (!running_) return;
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                         "ttl");
  PPM_INFO("lpm") << host_name() << ": time-to-live expired";
  ExitSelf(0);
}

// --- recovery (paper Section 5) ---------------------------------------------------------------

void Lpm::SetMode(LpmMode m) {
  if (m == mode_) return;
  std::string transition = std::string(ToString(mode_)) + "->" + ToString(m);
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kStateTransition,
                                         host_name(), transition);
  mode_ = m;
}

void Lpm::OnSiblingLost(const std::string& host, net::CloseReason reason) {
  (void)host;
  (void)reason;
  StartRecovery();
}

void Lpm::StartRecovery() {
  if (!running_ || recovery_in_progress_) return;
  ++stats_.recoveries_started;
  if (is_ccs_) {
    // The coordinator itself stays put; siblings come to it.
    return;
  }
  recovery_in_progress_ = true;
  if (!ccs_host_.empty() && ccs_host_ != host_name()) {
    if (siblings_.count(ccs_host_)) {
      // Still in touch with the coordinator: nothing to do.
      recovery_in_progress_ = false;
      SetMode(LpmMode::kNormal);
      return;
    }
    EnsureSibling(ccs_host_, [this](std::optional<net::ConnId> conn) {
      if (!running_) return;
      if (conn) {
        recovery_in_progress_ = false;
        SetMode(LpmMode::kNormal);
        CancelDeath();
        return;
      }
      RecoverEntry();
    });
    return;
  }
  RecoverEntry();
}

void Lpm::RecoverEntry() {
  if (!running_) return;
  if (!config_.ccs_nameserver.empty()) {
    RecoverViaNameServer();
  } else {
    WalkRecoveryList(0);
  }
}

void Lpm::RecoverViaNameServer() {
  // Paper Section 5 (alternative): "LPMs would query the name server for
  // a CCS."  A stale or missing answer degrades to self-appointment or
  // the .recovery walk.
  NsQuery(host_, config_.ccs_nameserver, user_, config_.ns_query_timeout,
          [this](std::optional<std::string> answer) {
            if (!running_) return;
            if (!answer) {
              // Server unreachable or no record: the administrators'
              // coordination is unavailable; use the file mechanism.
              WalkRecoveryList(0);
              return;
            }
            if (*answer == host_name()) {
              is_ccs_ = true;
              ccs_host_ = host_name();
              PersistCcs();
              SetMode(LpmMode::kNormal);
              recovery_in_progress_ = false;
              CancelDeath();
              AnnounceCcs();
              ReviewTtl();
              return;
            }
            EnsureSibling(*answer, [this, ccs = *answer](std::optional<net::ConnId> conn) {
              if (!running_) return;
              if (conn) {
                ccs_host_ = ccs;
                is_ccs_ = false;
                PersistCcs();
                SetMode(LpmMode::kNormal);
                recovery_in_progress_ = false;
                CancelDeath();
                AnnounceCcs();
                return;
              }
              // The registered CCS is gone too: appoint ourselves and
              // tell the name server, so later queriers find us.
              PPM_INFO("lpm") << host_name()
                              << ": registered CCS unreachable; self-appointing";
              is_ccs_ = true;
              ccs_host_ = host_name();
              PersistCcs();
              SetMode(LpmMode::kNormal);
              recovery_in_progress_ = false;
              CancelDeath();
              RegisterCcsWithNameServer();
              AnnounceCcs();
              ReviewTtl();
              // Two orphaned LPMs can self-appoint concurrently (both saw
              // the same stale record).  Re-read the server once the dust
              // settles: the LAST registration wins and the loser defers —
              // the "better coordinated" assignment the paper wants from
              // name servers.
              simulator().ScheduleIn(2 * config_.ns_query_timeout, [this] {
                if (!running_ || !is_ccs_) return;
                NsQuery(host_, config_.ccs_nameserver, user_, config_.ns_query_timeout,
                        [this](std::optional<std::string> winner) {
                          if (!running_ || !is_ccs_ || !winner ||
                              *winner == host_name()) {
                            return;
                          }
                          EnsureSibling(*winner,
                                        [this, w = *winner](std::optional<net::ConnId> c) {
                                          if (!running_ || !c) return;
                                          PPM_INFO("lpm") << host_name()
                                                          << ": deferring CCS role to "
                                                          << w;
                                          is_ccs_ = false;
                                          ccs_host_ = w;
                                          PersistCcs();
                                          AnnounceCcs();
                                          ReviewTtl();
                                        });
                        });
              }, "lpm-ns-reconcile");
            });
          });
}

void Lpm::RegisterCcsWithNameServer() {
  if (config_.ccs_nameserver.empty() || !is_ccs_) return;
  NsRegister(host_, config_.ccs_nameserver, user_, host_name());
}

void Lpm::WalkRecoveryList(size_t index) {
  if (!running_) return;
  RecoveryList list = ReadRecoveryList(host_.fs(), uid_);
  if (index >= list.hosts.size()) {
    EnterDying();
    return;
  }
  const std::string target = list.hosts[index];
  if (target == host_name()) {
    BecomeActingCcs(index);
    return;
  }
  EnsureSibling(target, [this, index, target](std::optional<net::ConnId> conn) {
    if (!running_) return;
    if (!conn) {
      WalkRecoveryList(index + 1);
      return;
    }
    // The reachable recovery host's LPM becomes the coordinator.
    ccs_host_ = target;
    is_ccs_ = false;
    PersistCcs();
    SetMode(LpmMode::kNormal);
    recovery_in_progress_ = false;
    CancelDeath();
    BecomeCcs msg;
    msg.requested_by = host_name();
    SendMsg(*conn, msg);
    AnnounceCcs();
  });
}

void Lpm::BecomeActingCcs(size_t list_index) {
  PPM_INFO("lpm") << host_name() << ": becoming "
                  << (list_index == 0 ? "CCS" : "acting CCS") << " (priority "
                  << list_index << ")";
  is_ccs_ = true;
  ccs_host_ = host_name();
  PersistCcs();
  recovery_in_progress_ = false;
  CancelDeath();
  RegisterCcsWithNameServer();
  if (list_index > 0) {
    // Not the top of the list: keep probing upward at low frequency
    // until a higher-priority host comes back (partition healing).
    SetMode(LpmMode::kRecovering);
    simulator().Cancel(probe_event_);
    probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                          [this] { ProbeHigherPriority(); }, "lpm-probe");
  } else {
    SetMode(LpmMode::kNormal);
  }
  AnnounceCcs();
  ReviewTtl();
}

void Lpm::ProbeHigherPriority() {
  probe_event_ = sim::kInvalidEventId;
  if (!running_ || !is_ccs_) return;
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                         "probe");
  RecoveryList list = ReadRecoveryList(host_.fs(), uid_);
  auto my_index = list.IndexOf(host_name());
  size_t limit = my_index ? *my_index : list.hosts.size();
  if (limit == 0) {
    SetMode(LpmMode::kNormal);
    return;
  }
  ProbeStep(0, limit, std::move(list));
}

void Lpm::ProbeStep(size_t index, size_t limit, RecoveryList list) {
  if (!running_ || !is_ccs_) return;
  if (index >= limit) {
    // Everyone above is still unreachable; probe again later.
    SetMode(LpmMode::kRecovering);
    simulator().Cancel(probe_event_);
    probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                          [this] { ProbeHigherPriority(); }, "lpm-probe");
    return;
  }
  const std::string target = list.hosts[index];
  EnsureSibling(target, [this, index, limit, target,
                         list = std::move(list)](std::optional<net::ConnId> conn) mutable {
    if (!running_ || !is_ccs_) return;
    if (!conn) {
      ProbeStep(index + 1, limit, std::move(list));
      return;
    }
    YieldCcsTo(target);
  });
}

void Lpm::YieldCcsTo(const std::string& host) {
  PPM_INFO("lpm") << host_name() << ": yielding CCS role to " << host;
  is_ccs_ = false;
  ccs_host_ = host;
  PersistCcs();
  SetMode(LpmMode::kNormal);
  simulator().Cancel(probe_event_);
  probe_event_ = sim::kInvalidEventId;
  auto it = siblings_.find(host);
  if (it != siblings_.end()) {
    BecomeCcs msg;
    msg.requested_by = host_name();
    SendMsg(it->second, msg);
  }
  AnnounceCcs();
}

void Lpm::EnterDying() {
  if (!running_) return;
  recovery_in_progress_ = false;
  // Re-entered after a failed retry walk: the death timer keeps ticking,
  // but the retry below must be re-armed — rescue may come from any
  // retry before the deadline, not just the first.
  if (mode_ != LpmMode::kDying) {
    SetMode(LpmMode::kDying);
    PPM_WARN("lpm") << host_name()
                    << ": no recovery host reachable; time-to-die armed";
  }
  if (death_event_ == sim::kInvalidEventId) {
    death_event_ = simulator().ScheduleIn(config_.time_to_die, [this] {
      death_event_ = sim::kInvalidEventId;
      if (!running_ || mode_ != LpmMode::kDying) return;
      obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                             "death");
      // "…the appropriate action is to close down all the activities."
      PPM_WARN("lpm") << host_name() << ": time-to-die expired; terminating "
                      << adopted_live_count() << " user processes";
      for (const auto& [lpid, info] : local_procs_) {
        const host::Process* p = kernel().Find(lpid);
        if (p && p->alive()) kernel().PostSignal(lpid, host::Signal::kSigKill, uid_);
      }
      ExitSelf(1);
    }, "lpm-death");
  }
  simulator().Cancel(retry_event_);
  retry_event_ = simulator().ScheduleIn(config_.retry_interval, [this] {
    retry_event_ = sim::kInvalidEventId;
    if (!running_ || mode_ != LpmMode::kDying) return;
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                           "retry");
    recovery_in_progress_ = true;
    RecoverEntry();
    // If the attempt fails it re-enters dying and re-arms the retry timer.
  }, "lpm-retry");
}

void Lpm::CancelDeath() {
  simulator().Cancel(death_event_);
  simulator().Cancel(retry_event_);
  death_event_ = retry_event_ = sim::kInvalidEventId;
  if (mode_ == LpmMode::kDying) SetMode(LpmMode::kNormal);
}

void Lpm::AnnounceCcs() {
  CcsChanged msg;
  msg.new_ccs = ccs_host_;
  for (const auto& [host, conn] : siblings_) {
    if (host == ccs_host_) continue;
    SendMsg(conn, msg);
  }
}

std::string Lpm::CcsClaim() const {
  if (mode_ != LpmMode::kNormal || recovery_in_progress_) return "";
  return ccs_host_;
}

void Lpm::AdoptCcsFromPeer(const std::string& peer_ccs) {
  if (peer_ccs.empty()) return;  // peer's own knowledge was suspect
  if (ccs_host_.empty()) {
    // First CCS knowledge for this LPM: a plain hint.
    ccs_host_ = peer_ccs;
    is_ccs_ = (peer_ccs == host_name());
    PersistCcs();
    return;
  }
  // "…a LPM not in contact with a CCS resumes the normal mode of
  // operation if it … gets a communication request from a LPM in
  // contact with a valid CCS."  (Peers in trouble claim nothing, so a
  // nonempty claim implies the sender believes its CCS is valid.)
  if (mode_ != LpmMode::kNormal) {
    AcceptCcsAnnouncement(peer_ccs);
  }
}

void Lpm::AcceptCcsAnnouncement(const std::string& new_ccs) {
  if (new_ccs.empty()) return;
  ccs_host_ = new_ccs;
  is_ccs_ = (new_ccs == host_name());
  PersistCcs();
  recovery_in_progress_ = false;
  CancelDeath();
  if (is_ccs_) RegisterCcsWithNameServer();
  if (!is_ccs_) {
    simulator().Cancel(probe_event_);
    probe_event_ = sim::kInvalidEventId;
  }
  SetMode(LpmMode::kNormal);
  ReviewTtl();
}

// --- factory --------------------------------------------------------------------------------

daemon::LpmFactory MakeLpmFactory(LpmConfig config) {
  return [config](host::Host& host, host::Uid uid, uint64_t token) -> daemon::LpmHandle {
    // One accept port per user per host; freed when the LPM exits, so a
    // successor LPM for the same user can reuse it.  If the slot is taken
    // (e.g. a duplicate LPM after a volatile-registry pmd crash), probe
    // upward like a bind-retry loop.
    net::Port port = static_cast<net::Port>(5000 + (static_cast<uint32_t>(uid) % 20000));
    while (host.network().HasListener(host.net_id(), port)) ++port;
    std::string user = host.users().NameOf(uid).value_or("uid" + std::to_string(uid));
    host::Host* host_ptr = &host;
    auto pmd_getter = [host_ptr]() -> daemon::Pmd* {
      if (!host_ptr->up()) return nullptr;
      for (host::Pid p : host_ptr->kernel().AllPids()) {
        host::Process* proc = host_ptr->kernel().Find(p);
        if (proc && proc->alive() && proc->command == "pmd") {
          return dynamic_cast<daemon::Pmd*>(proc->body.get());
        }
      }
      return nullptr;
    };
    auto body = std::make_unique<Lpm>(host, uid, user, token, port, config, pmd_getter);
    host::Pid pid = host.kernel().Spawn(host::kNoPid, uid, "lpm", std::move(body),
                                        host::ProcState::kSleeping);
    return daemon::LpmHandle{pid, net::SocketAddr{host.net_id(), port}};
  };
}

}  // namespace ppm::core


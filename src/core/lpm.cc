#include "core/lpm.h"

#include "core/nameserver.h"

#include <algorithm>

#include "daemon/protocol.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::core {

using host::BaseCosts;
using host::Pid;

namespace {
// Shared by every LPM in the process (the registry is process-wide);
// per-LPM attribution lives in LpmStats, these are the fleet totals.
struct LpmMetrics {
  obs::Histogram* create_ms;
  obs::Histogram* signal_ms;
  obs::Histogram* snapshot_ms;
  obs::Histogram* stat_ms;
  obs::Gauge* eventlog_size;
  obs::Gauge* eventlog_dropped;
  obs::Counter* eventlog_dropped_total;
  obs::Gauge* triggers_size;
  obs::Counter* triggers_fired;
  // Overload protection (fleet totals; per-LPM numbers are in LpmStats).
  obs::Counter* requests_shed;
  obs::Counter* retries;
  obs::Counter* deadline_expired;
  obs::Counter* dup_suppressed;
  obs::Gauge* breaker_open;
  // Stat watches (continuous telemetry; fleet totals).
  obs::Counter* watch_subscribes;
  obs::Counter* watch_pushes;
  obs::Counter* watch_records;
  obs::Counter* watch_cancels;
  obs::Gauge* watch_active;
  // Group operations (fleet totals).
  obs::Counter* group_spawns;
  obs::Counter* group_rollbacks;
  obs::Counter* barrier_releases;
  obs::Counter* barrier_timeouts;
  obs::Counter* envar_updates;
  obs::Counter* envar_watch_fires;
};

LpmMetrics& Metrics() {
  auto& reg = obs::Registry::Instance();
  static LpmMetrics m = {
      reg.GetHistogram("lpm.create.ms"),
      reg.GetHistogram("lpm.signal.ms"),
      reg.GetHistogram("lpm.snapshot.ms"),
      reg.GetHistogram("lpm.stat.ms"),
      reg.GetGauge("core.eventlog.size"),
      reg.GetGauge("core.eventlog.dropped"),
      reg.GetCounter("core.eventlog.dropped.total"),
      reg.GetGauge("core.triggers.size"),
      reg.GetCounter("core.triggers.fired"),
      reg.GetCounter("lpm.shed.requests"),
      reg.GetCounter("lpm.retry.attempts"),
      reg.GetCounter("lpm.deadline.expired"),
      reg.GetCounter("lpm.dup.suppressed"),
      reg.GetGauge("lpm.breaker.open"),
      reg.GetCounter("lpm.watch.subscribes"),
      reg.GetCounter("lpm.watch.pushes"),
      reg.GetCounter("lpm.watch.records"),
      reg.GetCounter("lpm.watch.cancels"),
      reg.GetGauge("lpm.watch.active"),
      reg.GetCounter("lpm.group.spawns"),
      reg.GetCounter("lpm.group.rollbacks"),
      reg.GetCounter("lpm.barrier.releases"),
      reg.GetCounter("lpm.barrier.timeouts"),
      reg.GetCounter("lpm.envar.updates"),
      reg.GetCounter("lpm.envar.watch_fires"),
  };
  return m;
}

// The response's req_id, when the message type carries one (all typed
// responses do; Hello/CCS control traffic does not).
std::optional<uint64_t> MsgReqId(const Msg& msg) {
  return std::visit(
      [](const auto& m) -> std::optional<uint64_t> {
        if constexpr (requires { m.req_id; }) {
          return m.req_id;
        } else {
          return std::nullopt;
        }
      },
      msg);
}

// FNV-1a over the origin host name, folded with the request id: a
// deterministic idempotency token, unique per <origin, req_id>, that
// costs no rng draw (the simulator rng stream feeds the deterministic
// bench baselines and must not shift with every forward).
uint64_t MakeIdemToken(const std::string& origin, uint64_t req_id) {
  uint64_t h = 1469598103934665603ull;
  for (char c : origin) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  h ^= req_id;
  h *= 1099511628211ull;
  return h != 0 ? h : 1;  // 0 means "no token" on the wire
}
}  // namespace

Lpm::Lpm(host::Host& host, host::Uid uid, std::string user, uint64_t token,
         net::Port accept_port, LpmConfig config,
         std::function<daemon::Pmd*()> pmd_getter)
    : host_(host),
      uid_(uid),
      user_(std::move(user)),
      token_(token),
      accept_port_(accept_port),
      config_(config),
      pmd_getter_(std::move(pmd_getter)),
      bcast_filter_(config.bcast_window),
      event_log_(config.event_log_capacity) {}

// --- lifecycle ---------------------------------------------------------------

void Lpm::OnStart() {
  running_ = true;
  // Broadcast sequences must be monotonic per origin *host* across LPM
  // incarnations: sibling duplicate-suppression filters remember
  // <origin, seq> pairs for bcast_window, so a restarted LPM that
  // restarted its counter at 1 would have its first floods silently
  // swallowed as duplicates of its predecessor's.  Seeding from the
  // clock keeps the sequence strictly above anything a previous
  // incarnation can have used.
  next_bcast_seq_ = static_cast<uint64_t>(simulator().Now()) + 1;
  // Request ids need the same treatment: the idempotency token a forward
  // carries is <origin host, req_id>, and peers cache completed results
  // by token.  A warm-restarted LPM that counted from 1 again would
  // collide with its predecessor's tokens, and its first forwards would
  // be answered from the done-cache with a *stale* captured reply —
  // acknowledged but never executed.
  next_req_id_ = static_cast<uint64_t>(simulator().Now()) + 1;
  network().Listen(host_.net_id(), accept_port_,
                   [this](net::ConnId conn, net::SocketAddr peer) {
                     OnAccept(conn, peer);
                     net::ConnCallbacks cb;
                     cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) {
                       OnData(c, b);
                     };
                     cb.on_close = [this](net::ConnId c, net::CloseReason r) {
                       OnClose(c, r);
                     };
                     return std::optional<net::ConnCallbacks>(cb);
                   });
  // The kernel socket (Figure 4): events cross it as genuine 112-byte
  // messages, so the serializer is on the hot path exactly as the paper
  // measured in Table 1.
  kernel().RegisterEventSink(uid_, pid(), [this](const host::KernelEvent& ev) {
    // Encode into the reusable buffer and decode in place — the frame
    // crosses the socket without ever owning a heap allocation.
    SerializeKernelEvent(ev, kmsg_buf_);
    auto parsed = ParseKernelEvent(WireView(kmsg_buf_));
    PPM_CHECK_MSG(parsed.has_value(), "kernel event wire corruption");
    OnKernelEvent(*parsed);
  });
  if (config_.durable_store) {
    store::StoreConfig scfg;
    scfg.group_commit = config_.store_group_commit;
    scfg.checkpoint_every = config_.store_checkpoint_every;
    scfg.event_capacity = config_.event_log_capacity;
    store_ = std::make_unique<store::LpmStore>(host::Disk(host_.fs(), uid_), scfg);
    // A physical sync is real kernel work.  Charge it as CPU consumed by
    // the LPM (it shows up in load and rusage) without stretching the
    // operation that triggered it: group commit means the sync overlaps
    // request handling rather than serializing it.
    store_->journal().set_sync_hook([this](size_t flushed) {
      if (running_ && host_.up()) {
        kernel().Charge(pid(), BaseCosts::kStoreSync);
        obs::FlightRecorder::Instance().Record(obs::FlightKind::kJournalSync,
                                               host_name(), "", 0, flushed);
        obs::HealthMonitor::Instance().Watermark(
            "store.journal.pending",
            static_cast<double>(store_->journal().pending_appends()));
      }
    });
    store::RecoveredState recovered = store_->Recover();
    if (recovered.found) WarmRestart(recovered);
    store_->Open(recovered, host_.generation());
    // Re-adopted processes forked *after* the predecessor's last journal
    // write exist in local_procs_ but not on disk yet: journal them now
    // that the store accepts records.
    for (const auto& [lp, info] : local_procs_) {
      if (!recovered.procs.count(lp)) {
        store_->RecordProcNew(lp, info.logical_parent, info.command);
      }
    }
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " up on " << host_name() << " pid " << pid();
  ReviewTtl();
}

bool Lpm::OnSignal(host::Signal sig) {
  if (sig == host::Signal::kSigTerm) {
    // Graceful shutdown request.
    ExitSelf(0);
    return true;
  }
  if (sig == host::Signal::kSigHup || sig == host::Signal::kSigUsr1) return true;
  return false;
}

void Lpm::OnShutdown() {
  if (!running_) return;
  running_ = false;
  if (host_.up()) {
    kernel().UnregisterEventSink(uid_);
    network().Unlisten(host_.net_id(), accept_port_);
    for (const auto& [conn, info] : peers_) {
      if (graceful_exit_) {
        network().Close(conn);
      } else {
        network().Abort(conn);
      }
    }
    // Handler processes die with their manager.
    for (const Handler& h : handlers_) {
      const host::Process* p = kernel().Find(h.pid);
      if (p && p->alive()) kernel().PostSignal(h.pid, host::Signal::kSigKill, uid_);
    }
  }
  peers_.clear();
  siblings_.clear();
  simulator().Cancel(ttl_event_);
  simulator().Cancel(death_event_);
  simulator().Cancel(probe_event_);
  simulator().Cancel(retry_event_);
  ttl_event_ = death_event_ = probe_event_ = retry_event_ = sim::kInvalidEventId;
  for (auto& [host, ev] : sibling_setup_timeout_ev_) simulator().Cancel(ev);
  sibling_setup_timeout_ev_.clear();
  sibling_setup_conn_.clear();
  // Fail anything still waiting.
  for (auto& [host, waiters] : sibling_waiters_) {
    for (auto& cb : waiters) cb(std::nullopt);
  }
  sibling_waiters_.clear();
  pending_.clear();
  snapshots_.clear();
  stat_runs_.clear();
  if (!stat_watches_.empty()) {
    for (auto& [key, w] : stat_watches_) simulator().Cancel(w.push_ev);
    Metrics().watch_active->Add(-static_cast<double>(stat_watches_.size()));
    stat_watches_.clear();
  }
  gang_runs_.clear();
  for (auto& [key, bl] : barrier_local_) simulator().Cancel(bl.safety_ev);
  barrier_local_.clear();
  for (auto& [key, ev] : barrier_decide_ev_) simulator().Cancel(ev);
  barrier_decide_ev_.clear();
  join_waiters_.clear();
  // A dying LPM must not leave its open breakers counted in the
  // fleet-wide gauge forever.
  for (const auto& [host, b] : breakers_) {
    if (b.open) Metrics().breaker_open->Add(-1);
  }
  breakers_.clear();
  inflight_tokens_.clear();
  done_cache_.clear();
  done_order_.clear();
  idem_replies_.clear();
}

// Warm restart (the tentpole of the durable store): seed in-memory state
// from what the previous incarnation journaled.  History, triggers and
// rusage records are valid across any restart; genealogy hints are only
// actionable within the same kernel generation, because a reboot killed
// every process and pids will be reused.
void Lpm::WarmRestart(const store::RecoveredState& recovered) {
  event_log_.Restore(recovered.events);
  triggers_.Restore(recovered.triggers);
  exited_stats_ = recovered.rusage;
  // Never self-appoint CCS from disk: the cluster may have elected
  // someone else while we were down.  A foreign hint is safe — worst
  // case it names a dead host and the normal timeout path clears it.
  if (!recovered.ccs_host.empty() && recovered.ccs_host != host_name()) {
    ccs_host_ = recovered.ccs_host;
  }
  // Group operations state: coordinated groups, the replicated envar
  // table and decided barrier epochs are valid across any restart.
  for (const auto& [gname, members] : recovered.groups) {
    for (const store::GroupMemberHint& m : members) {
      group_table_.AddMember(gname, m.gpid);
      if (m.exited) group_table_.MarkExited(gname, m.gpid, m.exit_status);
    }
  }
  for (const auto& [key, hint] : recovered.envars) {
    group_table_.MergeEnvar(key, hint.value, hint.version, hint.origin);
  }
  for (const auto& [bname, epoch] : recovered.barrier_epochs) {
    group_table_.NoteDecided(bname, epoch);
  }
  size_t readopted = 0;
  if (recovered.generation == host_.generation()) {
    // Local memberships are generation-scoped like ProcHints: pids are
    // reused across reboots.  A member that exited while the manager was
    // down misses its exit notify; the coordinator's join then waits on
    // the member-host snapshot of truth, which is the best we can know.
    for (const auto& [mpid, hint] : recovered.group_local) {
      const host::Process* p = kernel().Find(mpid);
      if (p && p->alive() && p->uid == uid_) {
        group_table_.AddLocal(mpid, hint.group, hint.coordinator);
      }
    }
    for (const auto& [rpid, hint] : recovered.procs) {
      const host::Process* p = kernel().Find(rpid);
      if (!p || !p->alive() || p->uid != uid_) continue;
      if (local_procs_.count(rpid)) continue;
      std::vector<Pid> adopted;
      if (!kernel().Adopt(pid(), rpid, host::kTraceAll, uid_, &adopted)) {
        continue;
      }
      for (Pid ap : adopted) {
        if (local_procs_.count(ap)) continue;
        LocalProc info;
        auto hit = recovered.procs.find(ap);
        const host::Process* proc = kernel().Find(ap);
        if (hit != recovered.procs.end()) {
          info.logical_parent = hit->second.logical_parent;
          info.command = hit->second.command;
        } else if (proc) {
          // Forked after our last journal write: its parent is local.
          info.logical_parent = GPid{host_name(), proc->ppid};
          info.command = proc->command;
        }
        local_procs_[ap] = std::move(info);
        ++readopted;
      }
    }
    for (const auto& [rpid, child] : recovered.remote_children) {
      auto it = local_procs_.find(rpid);
      if (it == local_procs_.end()) continue;
      auto& kids = it->second.remote_children;
      if (std::find(kids.begin(), kids.end(), child) == kids.end()) {
        kids.push_back(child);
      }
    }
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " on " << host_name()
                  << " warm restart: " << recovered.events.size() << " events, "
                  << recovered.triggers.size() << " triggers, "
                  << recovered.rusage.size() << " rusage records, " << readopted
                  << " processes re-adopted"
                  << (recovered.torn_bytes
                          ? " (torn journal tail discarded)"
                          : "");
}

void Lpm::PersistCcs() {
  if (store_) store_->RecordCcs(ccs_host_);
}

void Lpm::ExitSelf(int status) {
  if (!running_) return;
  graceful_exit_ = true;
  // A clean exit leaves a fresh checkpoint and an empty journal: the
  // successor warm-restarts from the checkpoint alone.
  if (store_) store_->Checkpoint();
  if (daemon::Pmd* pmd = pmd_getter_ ? pmd_getter_() : nullptr) {
    pmd->Unregister(uid_, pid());
  }
  PPM_INFO("lpm") << "LPM for " << user_ << " on " << host_name() << " exiting";
  kernel().Exit(pid(), status);
}

// --- introspection ---------------------------------------------------------------

net::SocketAddr Lpm::accept_addr() const {
  return net::SocketAddr{host_.net_id(), accept_port_};
}

std::vector<std::string> Lpm::sibling_hosts() const {
  std::vector<std::string> out;
  out.reserve(siblings_.size());
  for (const auto& [host, conn] : siblings_) out.push_back(host);
  return out;
}

LpmEndpoints Lpm::Endpoints() const {
  LpmEndpoints ep;
  ep.kernel_socket = host_.up() && host_.kernel().HasEventSink(uid_);
  ep.accept_socket = accept_addr();
  for (const auto& [host, conn] : siblings_) ep.siblings.emplace_back(host, conn);
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++ep.tool_circuits;
  }
  return ep;
}

size_t Lpm::adopted_live_count() const {
  size_t n = 0;
  for (const auto& [pid, info] : local_procs_) {
    const host::Process* p = host_.kernel().Find(pid);
    if (p && p->alive()) ++n;
  }
  return n;
}

std::vector<host::Pid> Lpm::TrackedLocalPids() const {
  std::vector<host::Pid> out;
  for (const auto& [pid, info] : local_procs_) {
    if (!info.exited) out.push_back(pid);
  }
  return out;
}

// --- dispatcher & handler pool ------------------------------------------------------

void Lpm::Dispatch(std::function<void(Pid)> work) {
  Dispatch(RequestMeta{}, std::move(work));
}

void Lpm::Dispatch(const RequestMeta& meta, std::function<void(Pid)> work) {
  PPM_PROF_SCOPE("lpm.dispatch");
  ++stats_.requests;
  sim::SimDuration cost = kernel().Charge(pid(), BaseCosts::kDispatch);
  simulator().ScheduleIn(cost, [this, meta, work = std::move(work)] {
    if (!running_) return;
    AcquireHandler(meta, work);
  }, "lpm-dispatch");
}

void Lpm::AcquireHandler(const RequestMeta& meta, std::function<void(Pid)> cb) {
  // Prune handlers that died under us (the user may kill them — they are
  // ordinary user processes) so the pool can refill.
  std::erase_if(handlers_, [this](const Handler& h) {
    const host::Process* p = kernel().Find(h.pid);
    return p == nullptr || !p->alive();
  });
  if (config_.handler_reuse) {
    for (Handler& h : handlers_) {
      if (!h.busy) {
        h.busy = true;
        ++stats_.handler_reuses;
        cb(h.pid);
        return;
      }
    }
  }
  if (!config_.handler_reuse || handlers_.size() < config_.max_handlers) {
    // Fork a fresh handler (paper Section 6: "process creation in UNIX
    // is relatively expensive" — this cost is why reuse is the default).
    sim::SimDuration cost = kernel().Charge(pid(), BaseCosts::kHandlerFork);
    Pid hp = kernel().Spawn(pid(), uid_, "lpm-handler", nullptr,
                            host::ProcState::kSleeping);
    handlers_.push_back(Handler{hp, true});
    ++stats_.handlers_created;
    simulator().ScheduleIn(cost, [this, hp, cb = std::move(cb)] {
      if (!running_) return;
      const host::Process* p = kernel().Find(hp);
      if (!p || !p->alive()) return;
      cb(hp);
    }, "lpm-handler-fork");
    return;
  }
  handler_queue_.push_back(QueuedWork{meta, std::move(cb)});
  if (handler_queue_.size() > queue_watermark_) {
    queue_watermark_ = static_cast<uint32_t>(handler_queue_.size());
  }
  obs::HealthMonitor::Instance().Watermark("lpm.queue.depth",
                                           static_cast<double>(handler_queue_.size()));
}

void Lpm::ReleaseHandler(Pid hpid) {
  auto it = std::find_if(handlers_.begin(), handlers_.end(),
                         [hpid](const Handler& h) { return h.pid == hpid; });
  if (it == handlers_.end()) return;
  if (!config_.handler_reuse) {
    // Fork-per-request policy: the handler exits after one request.
    const host::Process* p = kernel().Find(hpid);
    if (p && p->alive() && host_.up()) kernel().Exit(hpid, 0);
    kernel().Reap(pid());
    handlers_.erase(it);
    return;
  }
  while (!handler_queue_.empty()) {
    QueuedWork next = std::move(handler_queue_.front());
    handler_queue_.pop_front();
    if (next.meta.deadline_us != 0 &&
        static_cast<uint64_t>(simulator().Now()) > next.meta.deadline_us) {
      // The origin's timeout has already reported this request as failed;
      // running it now would burn a handler on work nobody is waiting
      // for.  Cancel it out of the queue, record the expiry, and release
      // any idempotency bookkeeping it registered on arrival.
      ++stats_.deadline_expired;
      Metrics().deadline_expired->Inc();
      obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestExpired,
                                             host_name(), "queued", 0,
                                             next.meta.req_id);
      ReleaseIdem(next.meta.conn, next.meta.req_id);
      continue;
    }
    next.fn(hpid);  // stays busy
    return;
  }
  it->busy = false;
}

// --- overload protection: admission, dedup, breaker --------------------------

Lpm::RequestMeta Lpm::RxMeta(net::ConnId conn, uint64_t req_id) const {
  RequestMeta meta;
  meta.deadline_us = rx_stamp_.deadline_us;
  meta.conn = conn;
  meta.req_id = req_id;
  return meta;
}

bool Lpm::AdmitRequest(net::ConnId conn, uint64_t req_id) {
  if (!config_.overload_protection) return true;
  // Expired on arrival: the origin gave up before the frame landed.
  // Executing it would be pure waste; no reply either — the origin's
  // own timeout already produced the explicit error.
  if (rx_stamp_.deadline_us != 0 &&
      static_cast<uint64_t>(simulator().Now()) > rx_stamp_.deadline_us) {
    ++stats_.deadline_expired;
    Metrics().deadline_expired->Inc();
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestExpired,
                                           host_name(), "arrival", 0, req_id);
    ReleaseIdem(conn, req_id);
    return false;
  }
  if (config_.max_queue_depth == 0 ||
      handler_queue_.size() < config_.max_queue_depth) {
    return true;
  }
  // Reject-newest shed: queued work is older and closer to its deadline,
  // so the arriving request is the one turned away — with an explicit
  // BUSY carrying a retry hint, never silently (shed-partition
  // invariant: requests_shed == busy_sent).
  ++stats_.requests_shed;
  Metrics().requests_shed->Inc();
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestShed,
                                         host_name(), "queue full", 0, req_id,
                                         handler_queue_.size());
  // Release first so the BusyResp is not captured as this token's
  // "result" — a later retry must be allowed to actually execute.
  ReleaseIdem(conn, req_id);
  BusyResp busy;
  busy.req_id = req_id;
  busy.error = "handler queue full";
  busy.retry_after_us = static_cast<uint64_t>(config_.retry_base);
  ++stats_.busy_sent;
  ReplyMsg(conn, busy);
  return false;
}

bool Lpm::SuppressDuplicate(net::ConnId conn, const Msg& msg) {
  if (!config_.overload_protection || rx_stamp_.idem_token == 0) return false;
  // Only mutating requests need exactly-once protection; reads are
  // harmless to re-execute.
  bool mutating = std::holds_alternative<CreateReq>(msg) ||
                  std::holds_alternative<SignalReq>(msg) ||
                  std::holds_alternative<AdoptReq>(msg) ||
                  std::holds_alternative<TraceReq>(msg) ||
                  std::holds_alternative<TriggerReq>(msg) ||
                  std::holds_alternative<MigrateReq>(msg) ||
                  std::holds_alternative<GroupSpawnReq>(msg) ||
                  std::holds_alternative<GroupPartReq>(msg) ||
                  std::holds_alternative<GroupUndoReq>(msg) ||
                  std::holds_alternative<GroupExitNotify>(msg) ||
                  std::holds_alternative<GroupAddNotify>(msg) ||
                  std::holds_alternative<GroupSignalReq>(msg) ||
                  std::holds_alternative<BarrierEnterReq>(msg) ||
                  std::holds_alternative<BarrierJoinReq>(msg) ||
                  std::holds_alternative<BarrierReleaseReq>(msg) ||
                  std::holds_alternative<EnvarSetReq>(msg);
  if (!mutating) return false;
  const uint64_t token = rx_stamp_.idem_token;
  auto done = done_cache_.find(token);
  if (done != done_cache_.end()) {
    // Already executed: replay the captured response (same req_id — the
    // sender reuses it across attempts) instead of executing twice.
    ++stats_.dup_suppressed;
    Metrics().dup_suppressed->Inc();
    ReplyMsg(conn, done->second);
    return true;
  }
  if (inflight_tokens_.count(token)) {
    // First attempt is still executing; its reply will go out when it
    // finishes.  Swallow the retransmit.
    ++stats_.dup_suppressed;
    Metrics().dup_suppressed->Inc();
    return true;
  }
  inflight_tokens_.insert(token);
  if (auto rid = MsgReqId(msg)) {
    idem_replies_[{conn, *rid}] = token;
  }
  return false;
}

void Lpm::ReleaseIdem(net::ConnId conn, uint64_t req_id) {
  auto it = idem_replies_.find({conn, req_id});
  if (it == idem_replies_.end()) return;
  inflight_tokens_.erase(it->second);
  idem_replies_.erase(it);
}

bool Lpm::PeerQuarantined(const std::string& host) const {
  auto it = breakers_.find(host);
  if (it == breakers_.end() || !it->second.open) return false;
  // Past open_until the breaker is half-open: one probe attempt may pay
  // the connect cost and decide readmission.
  return static_cast<uint64_t>(host_.simulator().Now()) < it->second.open_until;
}

void Lpm::RecordPeerFailure(const std::string& host) {
  if (!config_.overload_protection) return;
  Breaker& b = breakers_[host];
  ++b.failures;
  if (b.failures < config_.breaker_threshold && !b.open) return;
  // Quarantine doubles per failed half-open probe, capped so a healed
  // peer is readmitted within one chaos settle window.
  constexpr sim::SimDuration kMaxQuarantine = sim::Seconds(16);
  bool was_open = b.open;
  b.backoff = was_open ? std::min<sim::SimDuration>(b.backoff * 2, kMaxQuarantine)
                       : config_.breaker_probe;
  b.open_until = static_cast<uint64_t>(simulator().Now() + b.backoff);
  if (!was_open) {
    b.open = true;
    Metrics().breaker_open->Add(1);
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kBreakerOpen,
                                           host_name(), host, 0, b.failures);
    PPM_INFO("lpm") << host_name() << ": circuit breaker OPEN for " << host
                    << " after " << b.failures << " failures";
  }
}

void Lpm::RecordPeerSuccess(const std::string& host) {
  auto it = breakers_.find(host);
  if (it == breakers_.end()) return;
  if (it->second.open) {
    Metrics().breaker_open->Add(-1);
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kBreakerClose,
                                           host_name(), host, 0, 0);
    PPM_INFO("lpm") << host_name() << ": circuit breaker closed for " << host;
  }
  breakers_.erase(it);
}

size_t Lpm::open_breaker_count() const {
  size_t n = 0;
  for (const auto& [host, b] : breakers_) {
    if (b.open) ++n;
  }
  return n;
}

bool Lpm::breaker_open_for(const std::string& host) const {
  auto it = breakers_.find(host);
  return it != breakers_.end() && it->second.open;
}

// --- connection plumbing ----------------------------------------------------------------

void Lpm::OnAccept(net::ConnId conn, net::SocketAddr peer) {
  (void)peer;
  peers_[conn] = PeerInfo{};  // unknown until Hello
}

void Lpm::SendMsg(net::ConnId conn, const Msg& msg, const obs::TraceContext& trace,
                  const DeadlineStamp& stamp) {
  kernel().RecordIpc(pid(), /*sent=*/true, 0);
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kFrameSent, host_name(),
                                         MsgTypeName(msg), trace.trace_id,
                                         static_cast<uint64_t>(conn));
  Serialize(msg, trace, stamp, send_buf_);
  network().Send(conn, send_buf_.CopyOut());
}

void Lpm::SendToSibling(net::ConnId conn, Msg msg, sim::SimDuration base_cost,
                        sim::SimDuration extra_delay, const obs::TraceContext& trace,
                        const DeadlineStamp& stamp) {
  sim::SimDuration cost = kernel().Charge(pid(), base_cost) + extra_delay;
  simulator().ScheduleIn(cost, [this, conn, msg = std::move(msg), trace, stamp] {
    if (!running_) return;
    SendMsg(conn, msg, trace, stamp);
  }, "lpm-sibling-send");
}

void Lpm::ReplyMsg(net::ConnId conn, const Msg& msg) {
  // Settle idempotency bookkeeping: if this reply answers a tokened
  // mutating request, capture it so a retransmit of the same token
  // replays this exact response instead of re-executing.  Conn ids are
  // never reused, so capture is safe even after the circuit died (the
  // retry then arrives on a fresh conn and hits the cache).
  if (!idem_replies_.empty()) {
    if (auto rid = MsgReqId(msg)) {
      auto it = idem_replies_.find({conn, *rid});
      if (it != idem_replies_.end()) {
        const uint64_t token = it->second;
        idem_replies_.erase(it);
        inflight_tokens_.erase(token);
        done_cache_[token] = msg;
        done_order_.push_back(token);
        if (done_order_.size() > kIdemCacheCap) {
          done_cache_.erase(done_order_.front());
          done_order_.pop_front();
        }
      }
    }
  }
  auto it = peers_.find(conn);
  if (it != peers_.end() && it->second.kind == PeerKind::kSibling) {
    SendToSibling(conn, msg, BaseCosts::kSiblingSend);
  } else {
    SendMsg(conn, msg);
  }
}

void Lpm::OnClose(net::ConnId conn, net::CloseReason reason) {
  auto it = peers_.find(conn);
  if (it == peers_.end()) return;
  PeerInfo info = it->second;
  peers_.erase(it);

  // Every forwarded request waiting on this circuit lost its channel:
  // a fast failure, eligible for a backoff retry under the deadline
  // (the receiver's duplicate suppression makes the retry safe).
  std::vector<uint64_t> dead;
  for (auto& [id, pf] : pending_) {
    if (pf.conn == conn) dead.push_back(id);
  }
  for (uint64_t id : dead) {
    ForwardAttemptFailed(id, "channel lost");
  }

  // Watches pinned to this circuit die with it: the delta path never
  // migrates to a re-established circuit (sequence contiguity), so a
  // break ends the watch here.  Downstream relays learn lazily — their
  // next push to us meets an unknown watch and gets a StatUnsubscribe.
  std::vector<StatWatchKey> dead_watches;
  for (auto& [key, w] : stat_watches_) {
    if ((w.is_origin && w.tool_conn == conn) ||
        (!w.is_origin && w.parent_conn == conn)) {
      dead_watches.push_back(key);
    }
  }
  for (const StatWatchKey& key : dead_watches) {
    DropStatWatch(key, "circuit lost");
  }

  if (info.kind == PeerKind::kSibling) {
    auto sit = siblings_.find(info.host);
    if (sit != siblings_.end() && sit->second == conn) siblings_.erase(sit);
    if (reason == net::CloseReason::kPeerCrash || reason == net::CloseReason::kNetBroken) {
      ++stats_.failures_detected;
      PPM_INFO("lpm") << host_name() << ": lost sibling " << info.host << " ("
                      << net::ToString(reason) << ")";
      OnSiblingLost(info.host, reason);
    }
    ReviewTtl();
  } else if (info.kind == PeerKind::kTool) {
    ReviewTtl();
  }
}

void Lpm::OnData(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  PPM_PROF_SCOPE("lpm.on_data");
  kernel().RecordIpc(pid(), /*sent=*/false, bytes.size());
  auto msg = Parse(bytes, &rx_trace_, &rx_stamp_);
  if (msg) {
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kFrameRecv, host_name(),
                                           MsgTypeName(*msg), rx_trace_.trace_id,
                                           static_cast<uint64_t>(conn));
  }
  if (msg && rx_trace_.valid()) {
    // Close the hop span: the message reached this manager now.
    obs::Tracer::Instance().RecordArrival(rx_trace_, host_name());
  }
  if (!msg) {
    PPM_WARN("lpm") << host_name() << ": unparseable message, closing circuit";
    network().Close(conn);
    // A corrupted channel is a failed channel: run the same bookkeeping
    // as a detected break, so sibling entries and pending forwards don't
    // keep pointing at a circuit that no longer exists (a zombie sibling
    // would swallow every future flood sent its way) and recovery runs
    // if the lost peer mattered.
    OnClose(conn, net::CloseReason::kNetBroken);
    return;
  }
  auto it = peers_.find(conn);
  if (it == peers_.end()) return;
  PeerInfo& info = it->second;

  if (info.kind == PeerKind::kUnknown || !info.authenticated) {
    HandleHello(conn, *msg, info);
    return;
  }

  // A retried mutating request (idempotency token on the frame) must
  // never execute twice: replay the cached response or swallow the
  // retransmit before the dispatch visit sees it.
  if (SuppressDuplicate(conn, *msg)) return;

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, CreateReq>) {
          HandleCreate(conn, m);
        } else if constexpr (std::is_same_v<T, SignalReq>) {
          HandleSignal(conn, m);
        } else if constexpr (std::is_same_v<T, RusageReq>) {
          HandleRusage(conn, m);
        } else if constexpr (std::is_same_v<T, AdoptReq>) {
          HandleAdopt(conn, m);
        } else if constexpr (std::is_same_v<T, TraceReq>) {
          HandleTrace(conn, m);
        } else if constexpr (std::is_same_v<T, HistoryReq>) {
          HandleHistory(conn, m);
        } else if constexpr (std::is_same_v<T, TriggerReq>) {
          HandleTrigger(conn, m);
        } else if constexpr (std::is_same_v<T, FilesReq>) {
          HandleFiles(conn, m);
        } else if constexpr (std::is_same_v<T, MigrateReq>) {
          HandleMigrate(conn, m);
        } else if constexpr (std::is_same_v<T, SnapshotReq>) {
          if (m.origin_host.empty()) {
            // A tool asking us to originate a snapshot.
            if (!AdmitRequest(conn, m.req_id)) return;
            uint64_t tool_req = m.req_id;
            Dispatch(RxMeta(conn, tool_req),
                     [this, conn, tool_req](Pid h) { StartSnapshot(conn, tool_req, h); });
          } else {
            HandleSnapshotReq(conn, m);
          }
        } else if constexpr (std::is_same_v<T, SnapshotResp>) {
          HandleSnapshotResp(m);
        } else if constexpr (std::is_same_v<T, StatReq>) {
          if (m.origin_host.empty()) {
            // A tool asking us to originate a cluster-wide stat round.
            if (!AdmitRequest(conn, m.req_id)) return;
            uint64_t tool_req = m.req_id;
            bool dump = m.dump_flight;
            Dispatch(RxMeta(conn, tool_req), [this, conn, tool_req, dump](Pid h) {
              StartStat(conn, tool_req, dump, h);
            });
          } else {
            HandleStatReq(conn, m);
          }
        } else if constexpr (std::is_same_v<T, StatResp>) {
          HandleStatResp(m);
        } else if constexpr (std::is_same_v<T, StatSubscribe>) {
          HandleStatSubscribe(conn, m);
        } else if constexpr (std::is_same_v<T, StatDelta>) {
          HandleStatDelta(conn, m);
        } else if constexpr (std::is_same_v<T, StatUnsubscribe>) {
          HandleStatUnsubscribe(conn, m);
        } else if constexpr (std::is_same_v<T, BusyResp>) {
          HandleBusy(m);
        } else if constexpr (std::is_same_v<T, GroupSpawnReq>) {
          HandleGroupSpawn(conn, m);
        } else if constexpr (std::is_same_v<T, GroupPartReq>) {
          HandleGroupPart(conn, m);
        } else if constexpr (std::is_same_v<T, GroupUndoReq>) {
          HandleGroupUndo(conn, m);
        } else if constexpr (std::is_same_v<T, GroupExitNotify>) {
          HandleGroupExitNotify(conn, m);
        } else if constexpr (std::is_same_v<T, GroupAddNotify>) {
          HandleGroupAddNotify(conn, m);
        } else if constexpr (std::is_same_v<T, GroupSignalReq>) {
          HandleGroupSignal(conn, m);
        } else if constexpr (std::is_same_v<T, GroupJoinReq>) {
          HandleGroupJoin(conn, m);
        } else if constexpr (std::is_same_v<T, BarrierEnterReq>) {
          HandleBarrierEnter(conn, m);
        } else if constexpr (std::is_same_v<T, BarrierJoinReq>) {
          HandleBarrierJoin(conn, m);
        } else if constexpr (std::is_same_v<T, BarrierReleaseReq>) {
          HandleBarrierRelease(conn, m);
        } else if constexpr (std::is_same_v<T, EnvarSetReq>) {
          HandleEnvarSet(conn, m);
        } else if constexpr (std::is_same_v<T, EnvarGetReq>) {
          HandleEnvarGet(conn, m);
        } else if constexpr (std::is_same_v<T, EnvarWatchReq>) {
          HandleEnvarWatch(conn, m);
        } else if constexpr (std::is_same_v<T, EnvarUpdate>) {
          HandleEnvarUpdate(m);
        } else if constexpr (std::is_same_v<T, EnvarSync>) {
          HandleEnvarSync(m);
        } else if constexpr (std::is_same_v<T, CreateResp> || std::is_same_v<T, SignalResp> ||
                             std::is_same_v<T, RusageResp> || std::is_same_v<T, AdoptResp> ||
                             std::is_same_v<T, TraceResp> || std::is_same_v<T, HistoryResp> ||
                             std::is_same_v<T, TriggerResp> || std::is_same_v<T, FilesResp> ||
                             std::is_same_v<T, MigrateResp> ||
                             std::is_same_v<T, GroupSpawnResp> ||
                             std::is_same_v<T, GroupPartResp> ||
                             std::is_same_v<T, GroupAck> ||
                             std::is_same_v<T, GroupSignalResp> ||
                             std::is_same_v<T, GroupJoinResp> ||
                             std::is_same_v<T, BarrierEnterResp> ||
                             std::is_same_v<T, EnvarSetResp> ||
                             std::is_same_v<T, EnvarGetResp> ||
                             std::is_same_v<T, EnvarWatchResp>) {
          HandleResponse(*msg, m.req_id);
        } else if constexpr (std::is_same_v<T, BecomeCcs>) {
          PPM_INFO("lpm") << host_name() << ": assuming CCS role (asked by "
                          << m.requested_by << ")";
          is_ccs_ = true;
          ccs_host_ = host_name();
          PersistCcs();
          CancelDeath();
          SetMode(LpmMode::kNormal);
          recovery_in_progress_ = false;
          RegisterCcsWithNameServer();
          auto list = ReadRecoveryList(host_.fs(), uid_);
          auto idx = list.IndexOf(host_name());
          if (idx && *idx > 0) {
            SetMode(LpmMode::kRecovering);
            simulator().Cancel(probe_event_);
            probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                                  [this] { ProbeHigherPriority(); },
                                                  "lpm-probe");
          }
          AnnounceCcs();
          ReviewTtl();
        } else if constexpr (std::is_same_v<T, RegisterChild>) {
          auto it = local_procs_.find(m.parent_pid);
          if (it != local_procs_.end()) {
            auto& kids = it->second.remote_children;
            if (std::find(kids.begin(), kids.end(), m.child) == kids.end()) {
              kids.push_back(m.child);
              if (store_) store_->RecordRemoteChild(m.parent_pid, m.child);
            }
          }
        } else if constexpr (std::is_same_v<T, CcsChanged>) {
          AcceptCcsAnnouncement(m.new_ccs);
        } else if constexpr (std::is_same_v<T, Probe>) {
          ProbeAck ack;
          ack.req_id = m.req_id;
          ack.host = host_name();
          ack.is_ccs = is_ccs_;
          SendMsg(conn, ack);
        } else if constexpr (std::is_same_v<T, ProbeAck>) {
          HandleResponse(*msg, m.req_id);
        }
        // HelloSibling / HelloTool / HelloAck / HelloReject on an
        // authenticated circuit are protocol errors; ignore.
      },
      *msg);
}

// --- hello ------------------------------------------------------------------------

void Lpm::HandleHello(net::ConnId conn, const Msg& msg, PeerInfo& info) {
  if (const auto* hs = std::get_if<HelloSibling>(&msg)) {
    // Inbound sibling: must present *our* token (obtained from our pmd,
    // which enforced the user-level checks).
    if (hs->token != token_ || hs->user != user_) {
      HelloReject rej;
      rej.reason = "authentication failed";
      SendMsg(conn, rej);
      network().Close(conn);
      peers_.erase(conn);
      return;
    }
    info.kind = PeerKind::kSibling;
    info.host = hs->origin_host;
    info.authenticated = true;
    HelloAck ack;
    ack.host = host_name();
    ack.lpm_pid = pid();
    ack.ccs_host = CcsClaim();
    SendMsg(conn, ack);
    if (!hs->ccs_host.empty()) AdoptCcsFromPeer(hs->ccs_host);
    // Crossing setups: if our own outbound exchange to this host is
    // still in flight, this inbound circuit settles it — the waiters
    // (possibly a recovery walk) must not sit out the setup timeout.
    // The ack goes first so the peer authenticates the circuit before
    // any forwarded traffic the waiters emit on it.
    SiblingEstablished(hs->origin_host, conn);
    return;
  }
  if (const auto* ht = std::get_if<HelloTool>(&msg)) {
    // Tools are local: the circuit must originate on this host, and the
    // claimed uid must be ours (stands in for SCM_CREDENTIALS).
    auto ep = network().ConnEndpoints(conn);
    bool local = ep && ep->second.host == host_.net_id();
    if (!local || ht->uid != uid_ || ht->user != user_) {
      HelloReject rej;
      rej.reason = "tool authentication failed";
      SendMsg(conn, rej);
      network().Close(conn);
      peers_.erase(conn);
      return;
    }
    info.kind = PeerKind::kTool;
    info.tool_name = ht->tool_name;
    info.authenticated = true;
    // First contact establishes the session: if no CCS exists yet, this
    // LPM is it by default (paper Section 5).
    if (ccs_host_.empty()) {
      is_ccs_ = true;
      ccs_host_ = host_name();
      PersistCcs();
      RegisterCcsWithNameServer();
      // A default coordinator still owes deference to ~/.recovery: if a
      // higher-priority listed host (or any listed host, when we are
      // unlisted) runs an LPM, probe upward and yield to it, exactly
      // like an acting CCS after a partition heals.  Without this, tool
      // sessions started independently on different hosts would create
      // coordinator islands that never reconcile.
      auto list = ReadRecoveryList(host_.fs(), uid_);
      auto idx = list.IndexOf(host_name());
      if (!list.hosts.empty() && (!idx || *idx > 0)) {
        simulator().Cancel(probe_event_);
        probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                              [this] { ProbeHigherPriority(); },
                                              "lpm-probe");
      }
    }
    HelloAck ack;
    ack.host = host_name();
    ack.lpm_pid = pid();
    ack.ccs_host = CcsClaim();
    SendMsg(conn, ack);
    ReviewTtl();
    return;
  }
  if (const auto* ack = std::get_if<HelloAck>(&msg)) {
    // Outbound sibling circuit we initiated: authentication complete.
    if (info.kind == PeerKind::kSibling && !info.authenticated) {
      info.authenticated = true;
      if (!ack->ccs_host.empty()) AdoptCcsFromPeer(ack->ccs_host);
      SiblingEstablished(info.host, conn);
      return;
    }
    return;
  }
  if (std::get_if<HelloReject>(&msg) != nullptr) {
    std::string host = info.host;
    network().Close(conn);
    peers_.erase(conn);
    if (!host.empty()) SiblingSetupFailed(host, "hello rejected");
    return;
  }
  // Anything else before authentication: refuse.
  HelloReject rej;
  rej.reason = "hello expected";
  SendMsg(conn, rej);
  network().Close(conn);
  peers_.erase(conn);
}

// --- local actions ---------------------------------------------------------------

void Lpm::DoCreateLocal(const CreateReq& req, Pid handler,
                        std::function<void(const CreateResp&)> done) {
  // The LPM is the process creation server (paper Section 2): the child
  // is forked from the manager, adopted at birth, and its logical parent
  // — possibly on another machine — is recorded for the genealogy.
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(handler, BaseCosts::kForkExec);
  simulator().ScheduleIn(cost, [this, req, done = std::move(done)] {
    CreateResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    Pid child = kernel().Spawn(pid(), uid_, req.command, nullptr,
                               req.initially_running ? host::ProcState::kRunning
                                                     : host::ProcState::kSleeping,
                               req.trace_mask, pid());
    LocalProc info;
    info.logical_parent = req.logical_parent;
    info.command = req.command;
    if (store_) store_->RecordProcNew(child, info.logical_parent, info.command);
    local_procs_[child] = std::move(info);
    resp.ok = true;
    resp.gpid = GPid{host_name(), child};
    // A cross-host logical parent must learn of this child, or once it
    // exits its manager would drop it from snapshots while the child
    // lives ("retain exit information while there are children alive").
    if (req.logical_parent.valid() && req.logical_parent.host != host_name()) {
      GPid parent = req.logical_parent;
      GPid child_gpid = resp.gpid;
      EnsureSibling(parent.host, [this, parent, child_gpid](std::optional<net::ConnId> c) {
        if (!c || !running_) return;
        RegisterChild note;
        note.parent_pid = parent.pid;
        note.child = child_gpid;
        SendMsg(*c, note);
      });
    }
    ReviewTtl();
    done(resp);
  }, "lpm-create");
}

void Lpm::DoSignalLocal(const SignalReq& req, Pid handler,
                        std::function<void(const SignalResp&)> done) {
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(handler, BaseCosts::kSignal);
  simulator().ScheduleIn(cost, [this, req, done = std::move(done)] {
    SignalResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    std::string err;
    resp.ok = kernel().PostSignal(req.target.pid, req.sig, uid_, &err);
    resp.error = err;
    done(resp);
  }, "lpm-signal");
}

std::vector<ProcRecord> Lpm::ScanLocalProcesses() {
  // Which exited processes still matter?  Those that still anchor
  // descendants — the paper retains exit information while children are
  // alive and marks the node as exited in the display.  Anchoring is
  // *transitive*: an exited parent of an exited-but-anchoring child must
  // itself be kept, or the chain to its live grandchildren snaps.
  // (Remote children are counted conservatively: we do not learn of
  // their deaths, so a parent with any recorded remote child is kept.)
  std::set<GPid> included;
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    if ((p && p->alive()) || !info.remote_children.empty()) {
      included.insert(GPid{host_name(), lpid});
    }
  }
  bool grew = true;
  while (grew) {
    grew = false;
    // Parents of included records must be included too.
    for (const auto& [lpid, info] : local_procs_) {
      GPid self{host_name(), lpid};
      if (!included.count(self) || !info.logical_parent.valid()) continue;
      if (info.logical_parent.host == host_name() &&
          local_procs_.count(info.logical_parent.pid) &&
          !included.count(info.logical_parent)) {
        included.insert(info.logical_parent);
        grew = true;
      }
    }
  }
  std::vector<ProcRecord> out;
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    bool alive = p && p->alive();
    GPid self{host_name(), lpid};
    if (!alive && !included.count(self)) continue;
    ProcRecord rec;
    rec.gpid = self;
    rec.logical_parent = info.logical_parent;
    rec.uid = uid_;
    rec.command = info.command;
    if (alive) {
      rec.state = p->state;
      rec.exited = false;
      rec.start_time = p->start_time;
      rec.cpu_time = p->rusage.cpu_time;
    } else {
      rec.state = host::ProcState::kDead;
      rec.exited = true;
      if (p) {
        rec.start_time = p->start_time;
        rec.end_time = p->end_time;
        rec.cpu_time = p->rusage.cpu_time;
      }
    }
    out.push_back(std::move(rec));
  }
  return out;
}

// --- request handlers -----------------------------------------------------------------

void Lpm::HandleCreate(net::ConnId conn, const CreateReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  obs::TraceContext rx = rx_trace_;
  sim::SimTime t0 = simulator().Now();
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req, rx, t0](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      DoCreateLocal(req, h, [this, conn, h, t0](const CreateResp& resp) {
        Metrics().create_ms->Observe(
            static_cast<double>(simulator().Now() - t0) / 1000.0);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      });
      return;
    }
    CreateReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    GPid parent = req.logical_parent;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id, parent, t0](const Msg* m, const std::string& err) {
                    CreateResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<CreateResp>(*m)) {
                      resp = std::get<CreateResp>(*m);
                      resp.req_id = orig_id;
                      // (Cross-host parent links are registered with the
                      // parent's manager by the child's birth-site LPM;
                      // see DoCreateLocal.)
                      (void)parent;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    Metrics().create_ms->Observe(
                        static_cast<double>(simulator().Now() - t0) / 1000.0);
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  },
                  rx);
  });
}

void Lpm::HandleSignal(net::ConnId conn, const SignalReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  obs::TraceContext rx = rx_trace_;
  sim::SimTime t0 = simulator().Now();
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req, rx, t0](Pid h) {
    if (req.target.host == host_name()) {
      DoSignalLocal(req, h, [this, conn, h, t0](const SignalResp& resp) {
        Metrics().signal_ms->Observe(
            static_cast<double>(simulator().Now() - t0) / 1000.0);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      });
      return;
    }
    SignalReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id, t0](const Msg* m, const std::string& err) {
                    SignalResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<SignalResp>(*m)) {
                      resp = std::get<SignalResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    Metrics().signal_ms->Observe(
                        static_cast<double>(simulator().Now() - t0) / 1000.0);
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  },
                  rx);
  });
}

void Lpm::HandleRusage(net::ConnId conn, const RusageReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      cost += kernel().Charge(
          h, BaseCosts::kPerProcessScan * static_cast<int64_t>(exited_stats_.size() + 1));
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        RusageResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.records = exited_stats_;
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-rusage");
      return;
    }
    RusageReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    RusageResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<RusageResp>(*m)) {
                      resp = std::get<RusageResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleAdopt(net::ConnId conn, const AdoptReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        AdoptResp resp;
        resp.req_id = req.req_id;
        std::vector<Pid> adopted;
        std::string err;
        if (!running_) {
          resp.ok = false;
          resp.error = "manager shutting down";
        } else if (kernel().Adopt(pid(), req.target.pid, req.trace_mask, uid_, &adopted,
                                  &err)) {
          resp.ok = true;
          for (Pid p : adopted) {
            resp.adopted_pids.push_back(p);
            if (!local_procs_.count(p)) {
              const host::Process* proc = kernel().Find(p);
              LocalProc info;
              info.command = proc ? proc->command : "?";
              // Derive the logical parent from the kernel genealogy when
              // the parent is also ours.
              if (proc && local_procs_.count(proc->ppid)) {
                info.logical_parent = GPid{host_name(), proc->ppid};
              }
              if (store_) {
                store_->RecordProcNew(p, info.logical_parent, info.command);
              }
              local_procs_[p] = std::move(info);
            }
          }
          ReviewTtl();
        } else {
          resp.ok = false;
          resp.error = err;
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-adopt");
      return;
    }
    AdoptReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    AdoptResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<AdoptResp>(*m)) {
                      resp = std::get<AdoptResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleTrace(net::ConnId conn, const TraceReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        TraceResp resp;
        resp.req_id = req.req_id;
        std::string err;
        if (!running_) {
          resp.ok = false;
          resp.error = "manager shutting down";
        } else {
          resp.ok = kernel().SetTraceMask(req.target.pid, req.trace_mask, uid_, &err);
          resp.error = err;
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-trace");
      return;
    }
    TraceReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    TraceResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<TraceResp>(*m)) {
                      resp = std::get<TraceResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleHistory(net::ConnId conn, const HistoryReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        HistoryResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.events = event_log_.Query(req.pid_filter, req.max_events);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-history");
      return;
    }
    HistoryReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    HistoryResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<HistoryResp>(*m)) {
                      resp = std::get<HistoryResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleTrigger(net::ConnId conn, const TriggerReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    bool local = req.target_host.empty() || req.target_host == host_name();
    if (local) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        TriggerResp resp;
        resp.req_id = req.req_id;
        resp.ok = true;
        resp.trigger_id = triggers_.Install(req.spec);
        if (store_) store_->RecordTriggerInstall(resp.trigger_id, req.spec);
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-trigger");
      return;
    }
    TriggerReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target_host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    TriggerResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<TriggerResp>(*m)) {
                      resp = std::get<TriggerResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleFiles(net::ConnId conn, const FilesReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      cost += kernel().Charge(h, BaseCosts::kPerProcessScan);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        FilesResp resp;
        resp.req_id = req.req_id;
        const host::Process* p = running_ ? kernel().Find(req.target.pid) : nullptr;
        if (!p || !p->alive()) {
          resp.ok = false;
          resp.error = "no such process";
        } else if (p->uid != uid_) {
          resp.ok = false;
          resp.error = "permission denied";
        } else {
          resp.ok = true;
          for (const host::OpenFile& f : p->open_files) {
            resp.files.push_back(FileRecord{f.fd, f.path, f.mode});
          }
        }
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
      }, "lpm-files");
      return;
    }
    FilesReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    FilesResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<FilesResp>(*m)) {
                      resp = std::get<FilesResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::DoMigrateLocal(const MigrateReq& req, Pid handler,
                         std::function<void(const MigrateResp&)> done) {
  MigrateResp resp;
  resp.req_id = req.req_id;
  const host::Process* proc = kernel().Find(req.target.pid);
  if (!proc || !proc->alive() || !local_procs_.count(req.target.pid)) {
    resp.ok = false;
    resp.error = "no such adopted process";
    done(resp);
    return;
  }
  if (req.dest_host == host_name()) {
    resp.ok = false;
    resp.error = "already on " + host_name();
    done(resp);
    return;
  }
  // Checkpoint: scan the PCB and ship the image.
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kPerProcessScan);
  cost += kernel().Charge(handler, BaseCosts::kMigrateImage);
  bool was_running = proc->state == host::ProcState::kRunning;
  bool was_stopped = proc->state == host::ProcState::kStopped;
  CreateReq create;
  create.req_id = NextReqId();
  create.target_host = req.dest_host;
  create.command = proc->command;
  // The old incarnation becomes the new one's logical parent, so the
  // genealogical tree stays connected across the move (the old node is
  // retained, marked exited, exactly like any other exited interior).
  create.logical_parent = req.target;
  create.initially_running = was_running;
  create.trace_mask = proc->trace_mask;

  simulator().ScheduleIn(cost, [this, req, create, handler, was_stopped,
                                done = std::move(done)]() mutable {
    MigrateResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    uint64_t my_id = create.req_id;
    ForwardToHost(
        req.dest_host, Msg{create}, my_id, handler,
        [this, req, handler, was_stopped, done = std::move(done)](
            const Msg* m, const std::string& err) mutable {
          MigrateResp resp;
          resp.req_id = req.req_id;
          if (m == nullptr || !std::holds_alternative<CreateResp>(*m) ||
              !std::get<CreateResp>(*m).ok) {
            resp.ok = false;
            resp.error = m != nullptr && std::holds_alternative<CreateResp>(*m)
                             ? std::get<CreateResp>(*m).error
                             : (err.empty() ? "destination unreachable" : err);
            done(resp);  // the original process is untouched
            return;
          }
          GPid new_gpid = std::get<CreateResp>(*m).gpid;
          // Commit: terminate the old incarnation and anchor the new one.
          auto it = local_procs_.find(req.target.pid);
          if (it != local_procs_.end()) {
            it->second.remote_children.push_back(new_gpid);
            if (store_) store_->RecordRemoteChild(req.target.pid, new_gpid);
          }
          kernel().PostSignal(req.target.pid, host::Signal::kSigKill, uid_);
          resp.ok = true;
          resp.new_gpid = new_gpid;
          if (!was_stopped) {
            done(resp);
            return;
          }
          // Preserve the stopped state at the destination.
          SignalReq stop;
          stop.req_id = NextReqId();
          stop.target = new_gpid;
          stop.sig = host::Signal::kSigStop;
          uint64_t stop_id = stop.req_id;
          ForwardToHost(new_gpid.host, Msg{stop}, stop_id, handler,
                        [resp, done = std::move(done)](const Msg*, const std::string&) {
                          done(resp);
                        });
        });
  }, "lpm-migrate");
}

void Lpm::HandleMigrate(net::ConnId conn, const MigrateReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    if (req.target.host == host_name()) {
      sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
      simulator().ScheduleIn(cost, [this, conn, h, req] {
        DoMigrateLocal(req, h, [this, conn, h](const MigrateResp& resp) {
          ReplyMsg(conn, resp);
          ReleaseHandler(h);
        });
      }, "lpm-migrate-local");
      return;
    }
    MigrateReq fwd = req;
    uint64_t my_id = NextReqId();
    fwd.req_id = my_id;
    uint64_t orig_id = req.req_id;
    ForwardToHost(req.target.host, Msg{fwd}, my_id, h,
                  [this, conn, h, orig_id](const Msg* m, const std::string& err) {
                    MigrateResp resp;
                    resp.req_id = orig_id;
                    if (m != nullptr && std::holds_alternative<MigrateResp>(*m)) {
                      resp = std::get<MigrateResp>(*m);
                      resp.req_id = orig_id;
                    } else {
                      resp.ok = false;
                      resp.error = err.empty() ? "forward failed" : err;
                    }
                    ReplyMsg(conn, resp);
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::MigrateGPid(const GPid& target, const std::string& dest,
                      std::function<void(bool, std::string)> done) {
  Dispatch([this, target, dest, done = std::move(done)](Pid h) {
    MigrateReq req;
    req.req_id = NextReqId();
    req.target = target;
    req.dest_host = dest;
    if (target.host == host_name()) {
      DoMigrateLocal(req, h, [this, h, done = std::move(done)](const MigrateResp& resp) {
        done(resp.ok, resp.error);
        ReleaseHandler(h);
      });
      return;
    }
    uint64_t my_id = req.req_id;
    ForwardToHost(target.host, Msg{req}, my_id, h,
                  [this, h, done = std::move(done)](const Msg* m, const std::string& err) {
                    if (m != nullptr && std::holds_alternative<MigrateResp>(*m)) {
                      const auto& resp = std::get<MigrateResp>(*m);
                      done(resp.ok, resp.error);
                    } else {
                      done(false, err);
                    }
                    ReleaseHandler(h);
                  });
  });
}

void Lpm::HandleResponse(const Msg& msg, uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;  // late response after timeout
  PendingForward pf = std::move(it->second);
  pending_.erase(it);
  simulator().Cancel(pf.timeout_ev);
  if (pf.on_response) pf.on_response(&msg, "");
}

// --- forwarding & sibling management ----------------------------------------------------

void Lpm::ForwardToHost(const std::string& host, Msg msg, uint64_t my_req_id,
                        Pid handler,
                        std::function<void(const Msg*, const std::string&)> on_response,
                        const obs::TraceContext& trace) {
  ++stats_.forwards;
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kForward);
  simulator().ScheduleIn(cost, [this, host, msg = std::move(msg), my_req_id, handler,
                                on_response = std::move(on_response), trace]() mutable {
    if (!running_) {
      on_response(nullptr, "manager shutting down");
      return;
    }
    // Install the pending entry before the first attempt: the overall
    // deadline (one request_timeout from now) covers every retry, and a
    // timeout expiry is final — only fast failures (BUSY, channel lost,
    // sibling setup failure) re-attempt under it.  The deadline and the
    // idempotency token ride the wire on every attempt, so downstream
    // hops can cancel expired work and suppress duplicate execution.
    PendingForward pf;
    pf.handler = handler;
    pf.on_response = std::move(on_response);
    pf.host = host;
    pf.msg = std::move(msg);
    pf.trace = trace;
    if (config_.overload_protection) {
      pf.deadline_us =
          static_cast<uint64_t>(simulator().Now() + config_.request_timeout);
      pf.idem_token = MakeIdemToken(host_name(), my_req_id);
    }
    pf.timeout_ev = simulator().ScheduleIn(config_.request_timeout, [this, my_req_id] {
      auto it = pending_.find(my_req_id);
      if (it == pending_.end()) return;
      ++stats_.request_timeouts;
      FailForward(my_req_id, "request timed out");
    }, "lpm-fwd-timeout");
    pending_[my_req_id] = std::move(pf);
    StartForwardAttempt(my_req_id);
  }, "lpm-forward");
}

void Lpm::StartForwardAttempt(uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end() || !running_) return;
  const std::string host = it->second.host;
  if (config_.overload_protection && PeerQuarantined(host)) {
    // Fast-fail without paying the connect timeout; quarantine is not
    // itself evidence of a new failure, so the breaker stays untouched.
    FailForward(req_id, "peer quarantined");
    return;
  }
  EnsureSibling(host, [this, req_id](std::optional<net::ConnId> conn) {
    auto it = pending_.find(req_id);
    if (it == pending_.end()) return;  // overall timeout beat the connect
    if (!conn) {
      ForwardAttemptFailed(req_id, "sibling unreachable");
      return;
    }
    PendingForward& pf = it->second;
    pf.conn = *conn;
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(pf.trace, "forward", host_name());
    DeadlineStamp stamp;
    stamp.deadline_us = pf.deadline_us;
    stamp.idem_token = pf.idem_token;
    SendToSibling(*conn, pf.msg, BaseCosts::kSiblingSend, 0, hop, stamp);
  });
}

void Lpm::ForwardAttemptFailed(uint64_t req_id, const std::string& why,
                               uint64_t min_backoff_us) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  PendingForward& pf = it->second;
  pf.conn = net::kInvalidConn;  // no attempt in flight while backing off
  if (!config_.overload_protection || pf.attempts >= config_.max_retries) {
    FailForward(req_id, why);
    return;
  }
  // Exponential backoff with seeded jitter (0.5x-1.5x) so a burst of
  // simultaneous failures does not retry in lockstep; a BUSY peer's
  // retry-after hint floors the wait.
  const uint32_t attempt = ++pf.attempts;
  ++stats_.retries;
  Metrics().retries->Inc();
  double jitter = 0.5 + simulator().rng().NextDouble();
  auto backoff = static_cast<sim::SimDuration>(
      static_cast<double>(config_.retry_base << (attempt - 1)) * jitter);
  backoff = std::max(backoff, static_cast<sim::SimDuration>(min_backoff_us));
  if (pf.deadline_us != 0 &&
      static_cast<uint64_t>(simulator().Now() + backoff) >= pf.deadline_us) {
    // No room left under the deadline for another round trip.
    FailForward(req_id, why);
    return;
  }
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kRetry, host_name(),
                                         pf.host, 0, req_id, attempt);
  simulator().ScheduleIn(backoff, [this, req_id] { StartForwardAttempt(req_id); },
                         "lpm-fwd-retry");
}

void Lpm::FailForward(uint64_t req_id, const std::string& why) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  PendingForward pf = std::move(it->second);
  pending_.erase(it);
  simulator().Cancel(pf.timeout_ev);
  if (pf.on_response) pf.on_response(nullptr, why);
}

void Lpm::HandleBusy(const BusyResp& busy) {
  auto it = pending_.find(busy.req_id);
  if (it == pending_.end()) return;  // late BUSY after timeout
  ForwardAttemptFailed(busy.req_id,
                       busy.error.empty() ? "peer busy" : busy.error,
                       busy.retry_after_us);
}

void Lpm::EnsureSibling(const std::string& host,
                        std::function<void(std::optional<net::ConnId>)> done) {
  auto it = siblings_.find(host);
  if (it != siblings_.end()) {
    done(it->second);
    return;
  }
  // No quarantine check here: the forward path fast-fails in
  // StartForwardAttempt before it ever reaches this point, and the
  // control-plane callers (recovery walk, CCS probe) must pay the real
  // connect cost — a breaker left open across a heal would otherwise make
  // a healthy recovery host look dead and march the LPM into time-to-die.
  bool setup_in_progress = sibling_waiters_.count(host) > 0;
  sibling_waiters_[host].push_back(std::move(done));
  if (setup_in_progress) return;

  auto host_id = network().FindHost(host);
  if (!host_id) {
    SiblingSetupFailed(host, "unknown host");
    return;
  }
  // The exchange as a whole runs against a deadline: a frame lost on a
  // faulty link can leave a circuit open-but-silent, and without a bound
  // every waiter (most critically the recovery walk) would hang forever.
  sibling_setup_timeout_ev_[host] = simulator().ScheduleIn(
      config_.sibling_setup_timeout, [this, host] { SiblingSetupTimedOut(host); },
      "lpm-sibling-setup-timeout");
  // Note: no liveness shortcut here — whether the host is up can only be
  // learned by trying, i.e. by paying the connect timeout, exactly the
  // cost structure the recovery-list walk has on real networks.
  // Step (1) of Figure 2: ask the remote inetd for the user's LPM.
  net::ConnCallbacks cb;
  cb.on_data = [this, host](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto resp = daemon::LpmResponse::Parse(bytes);
    sibling_setup_conn_.erase(host);
    network().Close(c);
    if (!resp) {
      SiblingSetupFailed(host, "bad pmd response");
      return;
    }
    FinishSiblingSetup(host, *resp);
  };
  cb.on_close = [](net::ConnId, net::CloseReason) {};
  network().Connect(host_.net_id(), net::SocketAddr{*host_id, net::kInetdPort},
                    std::move(cb), [this, host](std::optional<net::ConnId> c) {
                      if (!running_) return;
                      if (!c) {
                        SiblingSetupFailed(host, "inetd unreachable");
                        return;
                      }
                      sibling_setup_conn_[host] = *c;
                      daemon::LpmRequest req;
                      req.user = user_;
                      req.origin_host = host_name();
                      req.origin_user = user_;
                      network().Send(*c, req.Serialize());
                    });
}

void Lpm::FinishSiblingSetup(const std::string& host, const daemon::LpmResponse& resp) {
  if (!running_) return;
  if (!resp.ok) {
    // A busy pmd is reachable — an overload signal, not unreachability;
    // retry under backoff without feeding the circuit breaker.
    SiblingSetupFailed(host, resp.error, /*count_failure=*/!resp.busy);
    return;
  }
  // Step (4) done: we hold the accept address and the token; open the
  // private channel (Figure 3) and authenticate.
  net::ConnCallbacks cb;
  cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) { OnData(c, b); };
  cb.on_close = [this](net::ConnId c, net::CloseReason r) { OnClose(c, r); };
  uint64_t token = resp.token;
  network().Connect(host_.net_id(), resp.accept_addr, std::move(cb),
                    [this, host, token](std::optional<net::ConnId> c) {
                      if (!running_) return;
                      if (!c) {
                        SiblingSetupFailed(host, "accept socket unreachable");
                        return;
                      }
                      sibling_setup_conn_[host] = *c;
                      PeerInfo info;
                      info.kind = PeerKind::kSibling;
                      info.host = host;
                      info.authenticated = false;  // until HelloAck
                      peers_[*c] = info;
                      HelloSibling hello;
                      hello.user = user_;
                      hello.origin_host = host_name();
                      hello.origin_lpm_pid = pid();
                      hello.token = token;
                      hello.ccs_host = CcsClaim();
                      SendMsg(*c, hello);
                    });
}

void Lpm::SiblingEstablished(const std::string& host, net::ConnId conn) {
  auto tit = sibling_setup_timeout_ev_.find(host);
  if (tit != sibling_setup_timeout_ev_.end()) {
    simulator().Cancel(tit->second);
    sibling_setup_timeout_ev_.erase(tit);
  }
  // A crossing inbound setup can win while our own outbound exchange is
  // mid-flight on a different circuit; close the abandoned one.
  auto cit = sibling_setup_conn_.find(host);
  if (cit != sibling_setup_conn_.end()) {
    if (cit->second != conn) {
      peers_.erase(cit->second);
      network().Close(cit->second);
    }
    sibling_setup_conn_.erase(cit);
  }
  siblings_[host] = conn;
  RecordPeerSuccess(host);  // closes (and forgets) any open breaker
  // Anti-entropy for the replicated envar table: a freshly (re)connected
  // sibling may have missed flooded updates while unreachable, so push
  // our full table; merge on the far side keeps the highest version.
  if (!group_table_.envars().empty()) {
    EnvarSync sync;
    for (const auto& [key, var] : group_table_.envars()) {
      EnvarEntry e;
      e.key = key;
      e.value = var.value;
      e.version = var.version;
      e.origin = var.origin;
      sync.entries.push_back(std::move(e));
    }
    SendToSibling(conn, Msg{sync}, BaseCosts::kSiblingSend);
  }
  auto waiters = std::move(sibling_waiters_[host]);
  sibling_waiters_.erase(host);
  for (auto& cb : waiters) cb(conn);
  ReviewTtl();
}

void Lpm::SiblingSetupFailed(const std::string& host, const std::string& why,
                             bool count_failure) {
  PPM_DEBUG("lpm") << host_name() << ": sibling setup to " << host << " failed: " << why;
  auto tit = sibling_setup_timeout_ev_.find(host);
  if (tit != sibling_setup_timeout_ev_.end()) {
    simulator().Cancel(tit->second);
    sibling_setup_timeout_ev_.erase(tit);
  }
  // Tear down whatever circuit the exchange was using, so an abandoned
  // setup never leaks a half-open connection.  No forward is attached to
  // it yet (attachment happens only after the waiters fire), so a plain
  // close is safe.
  auto cit = sibling_setup_conn_.find(host);
  if (cit != sibling_setup_conn_.end()) {
    net::ConnId c = cit->second;
    sibling_setup_conn_.erase(cit);
    peers_.erase(c);
    network().Close(c);
  }
  if (count_failure) RecordPeerFailure(host);
  auto it = sibling_waiters_.find(host);
  if (it == sibling_waiters_.end()) return;
  auto waiters = std::move(it->second);
  sibling_waiters_.erase(it);
  for (auto& cb : waiters) cb(std::nullopt);
}

void Lpm::SiblingSetupTimedOut(const std::string& host) {
  sibling_setup_timeout_ev_.erase(host);
  if (!running_ || siblings_.count(host) > 0) return;
  PPM_INFO("lpm") << host_name() << ": sibling setup to " << host
                  << " timed out after "
                  << config_.sibling_setup_timeout / 1000 << " ms";
  SiblingSetupFailed(host, "sibling setup timed out");
}

// --- snapshots (the graph-covering broadcast of Section 4) ------------------------------

void Lpm::StartSnapshot(net::ConnId tool_conn, uint64_t tool_req_id, Pid handler) {
  uint64_t seq = NextBcastSeq();
  ++stats_.bcasts_originated;
  // Record our own broadcast so an echo through a cycle is suppressed.
  bcast_filter_.CheckAndRecord(host_name(), seq, simulator().Now());

  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(
      handler, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
  simulator().ScheduleIn(cost, [this, tool_conn, tool_req_id, handler, seq] {
    if (!running_) return;
    SnapshotRun run;
    run.tool_req_id = tool_req_id;
    run.tool_conn = tool_conn;
    run.handler = handler;
    run.records = ScanLocalProcesses();
    // Root of the broadcast's causal trace: every flood hop, reply, and
    // relay becomes a descendant span, so the finished trace replays the
    // covering-graph tree (paper Section 4's recorded routes).
    run.trace = obs::Tracer::Instance().StartTrace("snapshot", host_name());
    run.start_us = simulator().Now();

    SnapshotReq templ;
    templ.req_id = seq;
    templ.origin_host = host_name();
    templ.bcast_seq = seq;
    templ.signed_ts = simulator().Now();  // "signed" by naming the origin host
    templ.route.push_back(host_name());

    std::vector<std::string> sent;
    FloodSnapshot(seq, templ, /*except_host=*/"", &sent, run.trace);
    for (const std::string& h : sent) run.outstanding.insert(h);
    run.replied.insert(host_name());
    {
      std::string to;
      for (const std::string& h : sent) to += h + " ";
      PPM_DEBUG("lpm") << host_name() << ": snapshot seq " << seq
                       << " flooded to [ " << to << "]";
    }

    if (!run.outstanding.empty()) {
      run.timeout_ev = simulator().ScheduleIn(config_.snapshot_timeout, [this, seq] {
        auto it = snapshots_.find(seq);
        if (it == snapshots_.end()) return;
        it->second.timeout_ev = sim::kInvalidEventId;
        FinishSnapshot(it->second, seq);
      }, "lpm-snapshot-timeout");
      snapshots_[seq] = std::move(run);
    } else {
      snapshots_[seq] = std::move(run);
      FinishSnapshot(snapshots_[seq], seq);
    }
  }, "lpm-snapshot-start");
}

sim::SimDuration Lpm::FloodSnapshot(uint64_t bcast_seq, const SnapshotReq& templ,
                                    const std::string& except_host,
                                    std::vector<std::string>* sent_to,
                                    const obs::TraceContext& parent) {
  (void)bcast_seq;
  // The dispatcher marshals once and then writes the message to each
  // sibling channel in turn: the first send pays the full marshalling
  // cost, the rest only the write.
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [host, conn] : siblings_) {
    if (host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, templ, parent] {
      if (!running_) return;
      // One hop span per fan-out edge, opened at the moment the frame
      // actually leaves; closed by the receiving LPM's OnData.
      obs::TraceContext hop =
          obs::Tracer::Instance().StartSpan(parent, "snapshot.req", host_name());
      SendMsg(target, templ, hop);
    }, "lpm-flood-send");
    if (sent_to) sent_to->push_back(host);
  }
  return cum;
}

void Lpm::HandleSnapshotReq(net::ConnId conn, const SnapshotReq& req) {
  (void)conn;
  // The hop span that carried the request here: re-floods and the reply
  // continue the causal chain under it.
  obs::TraceContext rx = rx_trace_;
  if (!bcast_filter_.CheckAndRecord(req.origin_host, req.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    PPM_DEBUG("lpm") << host_name() << ": suppressed duplicate snapshot flood from "
                     << req.origin_host << " seq " << req.bcast_seq;
    return;
  }
  std::string sender = req.route.empty() ? std::string() : req.route.back();
  Dispatch([this, req, sender, rx](Pid h) {
    ++stats_.snapshots_served;
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    cost += kernel().Charge(
        h, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
    simulator().ScheduleIn(cost, [this, req, sender, rx, h] {
      if (!running_) {
        ReleaseHandler(h);
        return;
      }
      SnapshotReq fwd = req;
      fwd.route.push_back(host_name());
      std::vector<std::string> sent;
      sim::SimDuration flood_cost = FloodSnapshot(req.bcast_seq, fwd, sender, &sent, rx);

      SnapshotResp resp;
      resp.req_id = req.req_id;
      resp.origin_host = req.origin_host;
      resp.bcast_seq = req.bcast_seq;
      resp.replier_host = host_name();
      resp.forwarded_to = sent;
      resp.route = fwd.route;  // origin … us; replies walk it backwards
      resp.route_index = 0;
      resp.records = ScanLocalProcesses();
      // First hop of the return path is whoever handed us the request.
      // The reply is marshalled after the forwarded floods have left.
      auto sit = siblings_.find(sender);
      if (sit != siblings_.end()) {
        obs::TraceContext hop =
            obs::Tracer::Instance().StartSpan(rx, "snapshot.resp", host_name());
        SendToSibling(sit->second, Msg{resp}, BaseCosts::kSiblingSend, flood_cost, hop);
      }
      // If the channel back is gone the origin's timeout covers us.
      ReleaseHandler(h);
    }, "lpm-snapshot-serve");
  });
}

void Lpm::HandleSnapshotResp(const SnapshotResp& resp) {
  obs::TraceContext rx = rx_trace_;
  if (resp.origin_host != host_name()) {
    // Relay toward the origin along the recorded route (paper Section 4:
    // "All data returned to the originator of a broadcast request
    // includes the message's source-destination route").
    auto pos = std::find(resp.route.begin(), resp.route.end(), host_name());
    if (pos == resp.route.end() || pos == resp.route.begin()) return;
    const std::string& next = *(pos - 1);
    auto sit = siblings_.find(next);
    if (sit == siblings_.end()) return;  // path broke; origin times out
    // Relaying costs a dispatch plus a channel write ("quick routing" of
    // replies along the recorded route, but not free).
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(rx, "snapshot.resp.relay", host_name());
    SendToSibling(sit->second, Msg{resp},
                  BaseCosts::kDispatch + BaseCosts::kHandlerWork + BaseCosts::kSiblingSend,
                  0, hop);
    return;
  }
  auto it = snapshots_.find(resp.bcast_seq);
  if (it == snapshots_.end()) return;  // finished or timed out already
  SnapshotRun& run = it->second;
  if (run.replied.count(resp.replier_host)) return;  // duplicate reply
  run.replied.insert(resp.replier_host);
  run.outstanding.erase(resp.replier_host);
  for (const ProcRecord& rec : resp.records) run.records.push_back(rec);
  for (const std::string& h : resp.forwarded_to) {
    if (!run.replied.count(h)) run.outstanding.insert(h);
  }
  MaybeFinishSnapshot(resp.bcast_seq);
}

void Lpm::MaybeFinishSnapshot(uint64_t bcast_seq) {
  auto it = snapshots_.find(bcast_seq);
  if (it == snapshots_.end()) return;
  if (!it->second.outstanding.empty()) return;
  FinishSnapshot(it->second, bcast_seq);
}

void Lpm::FinishSnapshot(SnapshotRun& run, uint64_t bcast_seq) {
  if (run.complete) return;
  run.complete = true;
  simulator().Cancel(run.timeout_ev);
  Metrics().snapshot_ms->Observe(
      static_cast<double>(simulator().Now() - run.start_us) / 1000.0);
  SnapshotResp out;
  out.req_id = run.tool_req_id;
  out.origin_host = host_name();
  out.bcast_seq = bcast_seq;
  out.replier_host = host_name();
  // The tool learns which hosts contributed (coverage) via forwarded_to.
  out.forwarded_to.assign(run.replied.begin(), run.replied.end());
  out.records = std::move(run.records);
  // The final hop to the tool closes the trace's outermost branch.
  obs::TraceContext hop =
      obs::Tracer::Instance().StartSpan(run.trace, "snapshot.done", host_name());
  if (peers_.count(run.tool_conn)) SendMsg(run.tool_conn, out, hop);
  ReleaseHandler(run.handler);
  snapshots_.erase(bcast_seq);
}

// --- live introspection (the STAT protocol) ------------------------------------------------
//
// Same covering-graph broadcast as the snapshot above — one flood, one
// reverse-routed reply per manager — but the payload is each manager's
// structured self-description (BuildStatRecord) rather than a process
// scan.  ppmstat renders the collected records as a cluster-wide table.

LpmStatRecord Lpm::BuildStatRecord() {
  LpmStatRecord rec;
  rec.host = host_name();
  rec.user = user_;
  rec.uid = static_cast<int32_t>(uid_);
  rec.lpm_pid = pid();
  rec.mode = static_cast<uint8_t>(mode_);
  rec.is_ccs = is_ccs_;
  rec.ccs_host = ccs_host_;
  auto list = ReadRecoveryList(host_.fs(), uid_);
  auto idx = list.IndexOf(host_name());
  rec.recovery_rank = idx ? static_cast<int32_t>(*idx) : -1;
  rec.siblings = sibling_hosts();

  rec.handlers = static_cast<uint32_t>(handlers_.size());
  for (const Handler& h : handlers_) {
    if (h.busy) ++rec.handlers_busy;
  }
  rec.queue_depth = static_cast<uint32_t>(handler_queue_.size());
  rec.queue_watermark = queue_watermark_;
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++rec.tool_circuits;
  }

  rec.requests = stats_.requests;
  rec.forwards = stats_.forwards;
  rec.kernel_events = stats_.kernel_events;
  rec.handlers_created = stats_.handlers_created;
  rec.handler_reuses = stats_.handler_reuses;
  rec.snapshots_served = stats_.snapshots_served;
  rec.bcasts_originated = stats_.bcasts_originated;
  rec.bcast_duplicates = stats_.bcast_duplicates;
  rec.triggers_fired = stats_.triggers_fired;
  rec.failures_detected = stats_.failures_detected;
  rec.recoveries_started = stats_.recoveries_started;
  rec.request_timeouts = stats_.request_timeouts;
  rec.requests_shed = stats_.requests_shed;
  rec.busy_sent = stats_.busy_sent;
  rec.retries = stats_.retries;
  rec.deadline_expired = stats_.deadline_expired;
  rec.dup_suppressed = stats_.dup_suppressed;
  rec.breaker_open = static_cast<uint32_t>(open_breaker_count());

  rec.eventlog_size = event_log_.size();
  rec.eventlog_recorded = event_log_.total_recorded();
  rec.eventlog_filtered = event_log_.total_filtered();
  rec.eventlog_dropped = event_log_.total_dropped();
  for (const auto& [dpid, n] : event_log_.dropped_by_pid()) {
    rec.dropped_by_pid.push_back(PidDrop{dpid, n});
  }

  if (store_) {
    rec.store_enabled = true;
    rec.journal_seq = store_->seq();
    rec.journal_bytes = store_->journal().size_bytes();
    rec.journal_pending = static_cast<uint32_t>(store_->journal().pending_appends());
  }

  if (daemon::Pmd* pmd = pmd_getter_ ? pmd_getter_() : nullptr) {
    rec.pmd_registry = static_cast<uint32_t>(pmd->registry_size());
    rec.pmd_requests = pmd->stats().requests;
  }

  rec.flight_records = obs::FlightRecorder::Instance().total_recorded();
  rec.flight_dumps = obs::FlightRecorder::Instance().dump_count();

  obs::LpmHealthInputs in;
  in.eventlog_recorded = event_log_.total_recorded();
  in.eventlog_dropped = event_log_.total_dropped();
  in.bcasts_handled = stats_.bcasts_originated + stats_.snapshots_served;
  in.bcast_duplicates = stats_.bcast_duplicates;
  in.requests = stats_.requests;
  in.request_timeouts = stats_.request_timeouts;
  in.handler_queue_depth = handler_queue_.size();
  in.journal_pending = store_ ? store_->journal().pending_appends() : 0;
  in.deadline_expired = stats_.deadline_expired;
  in.requests_shed = stats_.requests_shed;
  in.breaker_open = open_breaker_count();
  obs::HealthReport report = obs::ClassifyLpm(in);
  rec.health = static_cast<uint8_t>(report.level);
  rec.health_reasons = std::move(report.reasons);

  for (const auto& [gname, members] : group_table_.groups()) {
    GroupStatEntry ge;
    ge.name = gname;
    ge.members = static_cast<uint32_t>(members.size());
    for (const auto& m : members) {
      if (m.exited) ++ge.exited;
    }
    rec.groups.push_back(std::move(ge));
  }
  for (const auto& [key, bl] : barrier_local_) {
    BarrierStatEntry be;
    be.name = key.first;
    be.epoch = key.second;
    be.waiters = static_cast<uint32_t>(bl.waiters.size());
    be.expected = bl.expected;
    rec.barriers.push_back(std::move(be));
  }
  for (const auto& [key, tally] : group_table_.tallies()) {
    BarrierStatEntry be;
    be.name = key.first;
    be.epoch = key.second;
    be.waiters = tally.Total();
    be.expected = tally.expected;
    rec.barriers.push_back(std::move(be));
  }
  rec.envars = static_cast<uint32_t>(group_table_.envars().size());
  rec.envar_watchers = static_cast<uint32_t>(group_table_.watcher_count());

  rec.acct_cpu_us = AcctCpuUs();
  rec.acct_rusage_records = exited_stats_.size();

  rec.procs = ScanLocalProcesses();
  return rec;
}

void Lpm::StartStat(net::ConnId tool_conn, uint64_t tool_req_id, bool dump_flight,
                    Pid handler) {
  uint64_t seq = NextBcastSeq();
  ++stats_.bcasts_originated;
  bcast_filter_.CheckAndRecord(host_name(), seq, simulator().Now());
  if (dump_flight) {
    // On-demand black-box dump; the text is retained in last_dump() for
    // the tool side (ppmstat fetches it out of the in-process recorder).
    obs::FlightRecorder::Instance().Dump("stat request from tool");
  }

  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(
      handler, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
  simulator().ScheduleIn(cost, [this, tool_conn, tool_req_id, handler, seq] {
    if (!running_) return;
    StatRun run;
    run.tool_req_id = tool_req_id;
    run.tool_conn = tool_conn;
    run.handler = handler;
    run.records.push_back(BuildStatRecord());
    run.trace = obs::Tracer::Instance().StartTrace("stat", host_name());
    run.start_us = simulator().Now();

    StatReq templ;
    templ.req_id = seq;
    templ.origin_host = host_name();
    templ.bcast_seq = seq;
    templ.signed_ts = simulator().Now();
    templ.route.push_back(host_name());

    std::vector<std::string> sent;
    FloodStat(seq, templ, /*except_host=*/"", &sent, run.trace);
    for (const std::string& h : sent) run.outstanding.insert(h);
    run.replied.insert(host_name());

    if (!run.outstanding.empty()) {
      run.timeout_ev = simulator().ScheduleIn(config_.snapshot_timeout, [this, seq] {
        auto it = stat_runs_.find(seq);
        if (it == stat_runs_.end()) return;
        it->second.timeout_ev = sim::kInvalidEventId;
        FinishStat(it->second, seq);
      }, "lpm-stat-timeout");
      stat_runs_[seq] = std::move(run);
    } else {
      stat_runs_[seq] = std::move(run);
      FinishStat(stat_runs_[seq], seq);
    }
  }, "lpm-stat-start");
}

sim::SimDuration Lpm::FloodStat(uint64_t bcast_seq, const StatReq& templ,
                                const std::string& except_host,
                                std::vector<std::string>* sent_to,
                                const obs::TraceContext& parent) {
  (void)bcast_seq;
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [host, conn] : siblings_) {
    if (host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, templ, parent] {
      if (!running_) return;
      obs::TraceContext hop =
          obs::Tracer::Instance().StartSpan(parent, "stat.req", host_name());
      SendMsg(target, templ, hop);
    }, "lpm-flood-send");
    if (sent_to) sent_to->push_back(host);
  }
  return cum;
}

void Lpm::HandleStatReq(net::ConnId conn, const StatReq& req) {
  (void)conn;
  obs::TraceContext rx = rx_trace_;
  if (!bcast_filter_.CheckAndRecord(req.origin_host, req.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    return;
  }
  std::string sender = req.route.empty() ? std::string() : req.route.back();
  Dispatch([this, req, sender, rx](Pid h) {
    ++stats_.snapshots_served;  // a stat serve is a local scan too
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    cost += kernel().Charge(
        h, BaseCosts::kPerProcessScan * static_cast<int64_t>(local_procs_.size() + 1));
    simulator().ScheduleIn(cost, [this, req, sender, rx, h] {
      if (!running_) {
        ReleaseHandler(h);
        return;
      }
      StatReq fwd = req;
      fwd.route.push_back(host_name());
      std::vector<std::string> sent;
      sim::SimDuration flood_cost = FloodStat(req.bcast_seq, fwd, sender, &sent, rx);

      StatResp resp;
      resp.req_id = req.req_id;
      resp.origin_host = req.origin_host;
      resp.bcast_seq = req.bcast_seq;
      resp.replier_host = host_name();
      resp.forwarded_to = sent;
      resp.route = fwd.route;
      resp.route_index = 0;
      resp.records.push_back(BuildStatRecord());
      auto sit = siblings_.find(sender);
      if (sit != siblings_.end()) {
        obs::TraceContext hop =
            obs::Tracer::Instance().StartSpan(rx, "stat.resp", host_name());
        SendToSibling(sit->second, Msg{resp}, BaseCosts::kSiblingSend, flood_cost, hop);
      }
      ReleaseHandler(h);
    }, "lpm-stat-serve");
  });
}

void Lpm::HandleStatResp(const StatResp& resp) {
  obs::TraceContext rx = rx_trace_;
  if (resp.origin_host != host_name()) {
    auto pos = std::find(resp.route.begin(), resp.route.end(), host_name());
    if (pos == resp.route.end() || pos == resp.route.begin()) return;
    const std::string& next = *(pos - 1);
    auto sit = siblings_.find(next);
    if (sit == siblings_.end()) return;  // path broke; origin times out
    obs::TraceContext hop =
        obs::Tracer::Instance().StartSpan(rx, "stat.resp.relay", host_name());
    SendToSibling(sit->second, Msg{resp},
                  BaseCosts::kDispatch + BaseCosts::kHandlerWork + BaseCosts::kSiblingSend,
                  0, hop);
    return;
  }
  auto it = stat_runs_.find(resp.bcast_seq);
  if (it == stat_runs_.end()) return;  // finished or timed out already
  StatRun& run = it->second;
  if (run.replied.count(resp.replier_host)) return;  // duplicate reply
  run.replied.insert(resp.replier_host);
  run.outstanding.erase(resp.replier_host);
  for (const LpmStatRecord& rec : resp.records) run.records.push_back(rec);
  for (const std::string& h : resp.forwarded_to) {
    if (!run.replied.count(h)) run.outstanding.insert(h);
  }
  MaybeFinishStat(resp.bcast_seq);
}

void Lpm::MaybeFinishStat(uint64_t bcast_seq) {
  auto it = stat_runs_.find(bcast_seq);
  if (it == stat_runs_.end()) return;
  if (!it->second.outstanding.empty()) return;
  FinishStat(it->second, bcast_seq);
}

void Lpm::FinishStat(StatRun& run, uint64_t bcast_seq) {
  if (run.complete) return;
  run.complete = true;
  simulator().Cancel(run.timeout_ev);
  Metrics().stat_ms->Observe(
      static_cast<double>(simulator().Now() - run.start_us) / 1000.0);
  StatResp out;
  out.req_id = run.tool_req_id;
  out.origin_host = host_name();
  out.bcast_seq = bcast_seq;
  out.replier_host = host_name();
  out.forwarded_to.assign(run.replied.begin(), run.replied.end());
  out.records = std::move(run.records);
  obs::TraceContext hop =
      obs::Tracer::Instance().StartSpan(run.trace, "stat.done", host_name());
  if (peers_.count(run.tool_conn)) SendMsg(run.tool_conn, out, hop);
  ReleaseHandler(run.handler);
  stat_runs_.erase(bcast_seq);
}

// --- stat watches (push-based continuous telemetry) ----------------------------------------
//
// A StatSubscribe floods outward exactly like a StatReq, but instead of
// one reply the flood leaves a *watch* behind at every manager: a
// per-interval timer that pushes this host's counter deltas one hop back
// along the edge the flood arrived on.  Relays batch their children's
// records into their own push, so each interval costs one frame per
// covering-graph edge — O(hosts) total — instead of a full flood per
// refresh.  The delta path is pinned at subscribe time and never
// re-routed; a broken circuit ends the watch (the subscriber resubscribes
// under a fresh watch_id), which keeps per-<watch, host> sequence numbers
// contiguous for as long as they arrive at all.

uint64_t Lpm::AcctCpuUs() {
  uint64_t total = 0;
  for (const RusageRecord& r : exited_stats_) {
    total += static_cast<uint64_t>(r.rusage.cpu_time);
  }
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    if (p && p->alive()) total += static_cast<uint64_t>(p->rusage.cpu_time);
  }
  return total;
}

void Lpm::HandleStatSubscribe(net::ConnId conn, const StatSubscribe& req) {
  if (req.origin_host.empty()) {
    // A tool asking us to originate a watch.
    if (!AdmitRequest(conn, req.req_id)) return;
    uint64_t tool_req = req.req_id;
    uint64_t interval = req.interval_us ? req.interval_us : 1'000'000;
    Dispatch(RxMeta(conn, tool_req), [this, conn, tool_req, interval](Pid h) {
      StartStatWatch(conn, tool_req, interval, h);
    });
    return;
  }
  // Sibling leg of the subscribe flood.
  if (!bcast_filter_.CheckAndRecord(req.origin_host, req.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    return;
  }
  StatWatchKey key{req.origin_host, req.watch_id};
  if (stat_watches_.count(key)) return;  // resubscribed through another edge
  std::string sender = req.route.empty() ? std::string() : req.route.back();
  kernel().Charge(pid(), BaseCosts::kDispatch);

  StatWatch w;
  w.origin_host = req.origin_host;
  w.watch_id = req.watch_id;
  w.is_origin = false;
  w.parent_host = sender;
  w.parent_conn = conn;  // pinned: deltas only ever flow back along this edge
  w.interval_us = req.interval_us ? req.interval_us : 1'000'000;
  w.base_t_us = static_cast<uint64_t>(simulator().Now());
  w.base_kernel_events = stats_.kernel_events;
  w.base_requests = stats_.requests;
  w.base_requests_shed = stats_.requests_shed;
  w.base_retries = stats_.retries;
  w.base_journal_bytes = store_ ? store_->journal().size_bytes() : 0;
  w.base_eventlog_recorded = event_log_.total_recorded();
  w.base_acct_cpu_us = AcctCpuUs();
  stat_watches_[key] = std::move(w);
  Metrics().watch_subscribes->Inc();
  Metrics().watch_active->Add(1);

  StatSubscribe fwd = req;
  fwd.route.push_back(host_name());
  FloodStatSubscribe(fwd, sender);
  ScheduleStatPush(key);
}

void Lpm::StartStatWatch(net::ConnId tool_conn, uint64_t tool_req_id,
                         uint64_t interval_us, Pid handler) {
  uint64_t watch_id = NextReqId();
  uint64_t seq = NextBcastSeq();
  ++stats_.bcasts_originated;
  bcast_filter_.CheckAndRecord(host_name(), seq, simulator().Now());

  StatWatch w;
  w.origin_host = host_name();
  w.watch_id = watch_id;
  w.is_origin = true;
  w.tool_conn = tool_conn;
  w.tool_req_id = tool_req_id;
  w.interval_us = interval_us;
  w.base_t_us = static_cast<uint64_t>(simulator().Now());
  w.base_kernel_events = stats_.kernel_events;
  w.base_requests = stats_.requests;
  w.base_requests_shed = stats_.requests_shed;
  w.base_retries = stats_.retries;
  w.base_journal_bytes = store_ ? store_->journal().size_bytes() : 0;
  w.base_eventlog_recorded = event_log_.total_recorded();
  w.base_acct_cpu_us = AcctCpuUs();
  StatWatchKey key{host_name(), watch_id};
  stat_watches_[key] = std::move(w);
  Metrics().watch_subscribes->Inc();
  Metrics().watch_active->Add(1);

  StatSubscribe templ;
  templ.req_id = seq;
  templ.origin_host = host_name();
  templ.watch_id = watch_id;
  templ.bcast_seq = seq;
  templ.signed_ts = simulator().Now();
  templ.route.push_back(host_name());
  templ.interval_us = interval_us;
  FloodStatSubscribe(templ, /*except_host=*/"");

  // The first push doubles as the subscribe ack: it carries the tool's
  // req_id and the seq-1 baseline record, so the subscriber learns its
  // watch_id from the data stream itself.
  PushStatDelta(key);
  ReleaseHandler(handler);
}

sim::SimDuration Lpm::FloodStatSubscribe(const StatSubscribe& templ,
                                         const std::string& except_host) {
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [host, conn] : siblings_) {
    if (host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, templ] {
      if (!running_) return;
      SendMsg(target, templ);
    }, "lpm-watch-flood");
  }
  return cum;
}

void Lpm::ScheduleStatPush(const StatWatchKey& key) {
  auto it = stat_watches_.find(key);
  if (it == stat_watches_.end()) return;
  StatWatch& w = it->second;
  simulator().Cancel(w.push_ev);
  w.push_ev = simulator().ScheduleIn(
      static_cast<sim::SimDuration>(w.interval_us),
      [this, key] {
        if (!running_) return;
        auto wit = stat_watches_.find(key);
        if (wit == stat_watches_.end()) return;
        wit->second.push_ev = sim::kInvalidEventId;
        PushStatDelta(key);
      },
      "lpm-watch-push");
}

StatDeltaRecord Lpm::BuildStatDeltaRecord(StatWatch& w) {
  StatDeltaRecord r;
  r.host = host_name();
  r.user = user_;
  r.uid = static_cast<int32_t>(uid_);
  r.seq = ++w.seq;
  const uint64_t now = static_cast<uint64_t>(simulator().Now());
  const uint64_t journal_bytes = store_ ? store_->journal().size_bytes() : 0;
  const uint64_t acct_cpu = AcctCpuUs();
  r.t_us = now;
  r.dt_us = now - w.base_t_us;
  r.d_kernel_events = stats_.kernel_events - w.base_kernel_events;
  r.d_requests = stats_.requests - w.base_requests;
  r.d_requests_shed = stats_.requests_shed - w.base_requests_shed;
  r.d_retries = stats_.retries - w.base_retries;
  r.d_journal_bytes = journal_bytes - w.base_journal_bytes;
  r.d_eventlog_recorded = event_log_.total_recorded() - w.base_eventlog_recorded;
  r.d_acct_cpu_us = acct_cpu - w.base_acct_cpu_us;
  r.queue_depth = static_cast<uint32_t>(handler_queue_.size());
  uint32_t live = 0;
  for (const auto& [lpid, info] : local_procs_) {
    const host::Process* p = kernel().Find(lpid);
    if (p && p->alive()) ++live;
  }
  r.procs_live = live;
  obs::LpmHealthInputs in;
  in.eventlog_recorded = event_log_.total_recorded();
  in.eventlog_dropped = event_log_.total_dropped();
  in.bcasts_handled = stats_.bcasts_originated + stats_.snapshots_served;
  in.bcast_duplicates = stats_.bcast_duplicates;
  in.requests = stats_.requests;
  in.request_timeouts = stats_.request_timeouts;
  in.handler_queue_depth = handler_queue_.size();
  in.journal_pending = store_ ? store_->journal().pending_appends() : 0;
  in.deadline_expired = stats_.deadline_expired;
  in.requests_shed = stats_.requests_shed;
  in.breaker_open = open_breaker_count();
  r.health = static_cast<uint8_t>(obs::ClassifyLpm(in).level);
  // Next interval's deltas start here.
  w.base_t_us = now;
  w.base_kernel_events = stats_.kernel_events;
  w.base_requests = stats_.requests;
  w.base_requests_shed = stats_.requests_shed;
  w.base_retries = stats_.retries;
  w.base_journal_bytes = journal_bytes;
  w.base_eventlog_recorded = event_log_.total_recorded();
  w.base_acct_cpu_us = acct_cpu;
  return r;
}

void Lpm::PushStatDelta(const StatWatchKey& key) {
  auto it = stat_watches_.find(key);
  if (it == stat_watches_.end()) return;
  StatWatch& w = it->second;

  StatDelta out;
  out.origin_host = w.origin_host;
  out.watch_id = w.watch_id;
  out.req_id = w.is_origin ? w.tool_req_id : 0;
  out.records.push_back(BuildStatDeltaRecord(w));
  for (StatDeltaRecord& r : w.pending) out.records.push_back(std::move(r));
  w.pending.clear();

  LpmMetrics& m = Metrics();
  m.watch_pushes->Inc();
  m.watch_records->Inc(out.records.size());

  if (w.is_origin) {
    if (!peers_.count(w.tool_conn)) {
      DropStatWatch(key, "tool circuit gone");
      return;
    }
    kernel().Charge(pid(), BaseCosts::kStatPush);
    SendMsg(w.tool_conn, out);
  } else {
    if (!peers_.count(w.parent_conn)) {
      DropStatWatch(key, "parent circuit gone");
      return;
    }
    SendToSibling(w.parent_conn, Msg{out}, BaseCosts::kStatPush);
  }
  ScheduleStatPush(key);
}

void Lpm::HandleStatDelta(net::ConnId conn, const StatDelta& delta) {
  StatWatchKey key{delta.origin_host, delta.watch_id};
  auto it = stat_watches_.find(key);
  if (it == stat_watches_.end()) {
    // Lazy cascade cancel: this watch died here (unsubscribe, circuit
    // break, restart) but a downstream relay is still pushing.  One
    // unsubscribe back down the edge stops it — and ITS children learn
    // the same way on their next push.
    StatUnsubscribe un;
    un.origin_host = delta.origin_host;
    un.watch_id = delta.watch_id;
    ReplyMsg(conn, un);
    return;
  }
  // In-transit aggregation: buffer the child's records; our own interval
  // tick carries them upstream in one frame.
  StatWatch& w = it->second;
  for (const StatDeltaRecord& r : delta.records) w.pending.push_back(r);
}

void Lpm::HandleStatUnsubscribe(net::ConnId conn, const StatUnsubscribe& req) {
  (void)conn;
  if (req.origin_host.empty()) {
    // Tool form: end the watch this LPM originated under this watch_id.
    DropStatWatch({host_name(), req.watch_id}, "unsubscribed");
    return;
  }
  DropStatWatch({req.origin_host, req.watch_id}, "cancelled upstream");
}

void Lpm::DropStatWatch(const StatWatchKey& key, const char* why) {
  auto it = stat_watches_.find(key);
  if (it == stat_watches_.end()) return;
  simulator().Cancel(it->second.push_ev);
  stat_watches_.erase(it);
  Metrics().watch_cancels->Inc();
  Metrics().watch_active->Add(-1);
  PPM_INFO("lpm") << host_name() << ": watch <" << key.first << "," << key.second
                  << "> dropped (" << why << ")";
}

// --- kernel events, history, triggers ------------------------------------------------------

void Lpm::OnKernelEvent(const host::KernelEvent& ev) {
  PPM_PROF_SCOPE("lpm.kernel_event");
  if (!running_) return;
  ++stats_.kernel_events;
  // Hot path: one O(1) ring write, measured by bench_overhead.
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kKernelEvent, host_name(),
                                         host::ToString(ev.kind), 0,
                                         static_cast<uint64_t>(ev.pid));
  HistEvent h;
  h.at = ev.at;
  h.kind = ev.kind;
  h.pid = ev.pid;
  h.other = ev.other;
  h.sig = ev.sig;
  h.status = ev.status;
  h.detail = ev.detail;
  if (event_log_.Record(h, config_.granularity_mask) && store_) {
    store_->RecordEvent(h);
  }
  LpmMetrics& m = Metrics();
  m.eventlog_size->Set(static_cast<double>(event_log_.size()));
  m.eventlog_dropped->Set(static_cast<double>(event_log_.total_dropped()));
  if (event_log_.total_dropped() > eventlog_dropped_seen_) {
    m.eventlog_dropped_total->Inc(event_log_.total_dropped() - eventlog_dropped_seen_);
    eventlog_dropped_seen_ = event_log_.total_dropped();
  }

  switch (ev.kind) {
    case host::KEvent::kFork: {
      // A tracked process forked: the child is ours from birth.
      if (!local_procs_.count(ev.other)) {
        const host::Process* child = kernel().Find(ev.other);
        LocalProc info;
        info.command = child ? child->command : "?";
        info.logical_parent = GPid{host_name(), ev.pid};
        if (store_) {
          store_->RecordProcNew(ev.other, info.logical_parent, info.command);
        }
        local_procs_[ev.other] = std::move(info);
      }
      break;
    }
    case host::KEvent::kExit: {
      auto it = local_procs_.find(ev.pid);
      if (it != local_procs_.end() && !it->second.exited) {
        it->second.exited = true;
        // Preserve the resource consumption record before the zombie is
        // reaped — this is the data the statistics tool serves.
        const host::Process* p = kernel().Find(ev.pid);
        if (p) {
          RusageRecord rec;
          rec.gpid = GPid{host_name(), ev.pid};
          rec.command = p->command;
          rec.exit_status = p->exit_status;
          rec.killed_by_signal = p->killed_by_signal;
          rec.death_signal = p->death_signal;
          rec.start_time = p->start_time;
          rec.end_time = p->end_time;
          rec.rusage = p->rusage;
          if (store_) store_->RecordRusage(rec);
          exited_stats_.push_back(std::move(rec));
        }
        if (store_) store_->RecordProcExit(ev.pid);
        kernel().Reap(pid());  // collect creation-server children
        ReviewTtl();
        // Group membership: tell the coordinating manager this member is
        // gone so pending gjoin waiters can complete.
        if (auto lm = group_table_.TakeLocal(ev.pid)) {
          if (store_) store_->RecordGroupLocalRemove(ev.pid);
          NotifyGroupExit(lm->group, lm->coordinator,
                          GPid{host_name(), ev.pid}, ev.status);
        }
      }
      break;
    }
    default:
      break;
  }

  triggers_.Match(h, [this](uint64_t id, const TriggerSpec& spec,
                            const HistEvent& hev) {
    // Triggers are one-shot: journal the removal so a warm restart does
    // not re-arm (and re-fire) an already-consumed trigger.
    if (store_) store_->RecordTriggerRemove(id);
    FireTrigger(spec, hev);
  });
  m.triggers_size->Set(static_cast<double>(triggers_.size()));
}

void Lpm::FireTrigger(const TriggerSpec& spec, const HistEvent& ev) {
  ++stats_.triggers_fired;
  Metrics().triggers_fired->Inc();
  PPM_INFO("lpm") << host_name() << ": trigger fired on " << host::ToString(ev.kind)
                  << " of pid " << ev.pid;
  ApplyTriggerAction(spec);
}

void Lpm::ApplyTriggerAction(const TriggerSpec& spec) {
  switch (spec.action) {
    case TriggerAction::kMigrate:
      PPM_INFO("lpm") << host_name() << ": trigger action -> migrate "
                      << ToString(spec.action_target) << " to " << spec.migrate_dest;
      MigrateGPid(spec.action_target, spec.migrate_dest, [](bool, std::string) {});
      break;
    case TriggerAction::kSpawn:
      PPM_INFO("lpm") << host_name() << ": trigger action -> spawn \""
                      << spec.spawn_command << "\""
                      << (spec.group.empty() ? "" : " into group " + spec.group);
      SpawnTriggered(spec);
      break;
    case TriggerAction::kSignal:
    default:
      PPM_INFO("lpm") << host_name() << ": trigger action -> "
                      << host::ToString(spec.action_signal) << " to "
                      << ToString(spec.action_target);
      SignalGPid(spec.action_target, spec.action_signal, [](bool, std::string) {});
      break;
  }
}

void Lpm::SpawnTriggered(const TriggerSpec& spec) {
  // Respawn locally; if the spec names a group, re-enroll the fresh pid
  // with the group's coordinating manager so gjoin still sees it.
  Dispatch([this, spec](Pid h) {
    GroupPartReq req;
    req.req_id = NextReqId();
    req.group = spec.group;
    req.command = spec.spawn_command;
    if (!spec.group.empty()) {
      if (auto coord = group_table_.KnownCoordinator(spec.group)) {
        req.coordinator = *coord;
      } else {
        req.coordinator = ccs_host_.empty() ? host_name() : ccs_host_;
      }
    }
    DoGroupPartLocal(req, h, [this, h, req](const GroupPartResp& resp) {
      if (!resp.ok || req.group.empty()) {
        ReleaseHandler(h);
        return;
      }
      if (req.coordinator == host_name() || req.coordinator.empty()) {
        group_table_.AddMember(req.group, resp.gpid);
        if (store_) store_->RecordGroupMember(req.group, resp.gpid);
        ReleaseHandler(h);
        return;
      }
      GroupAddNotify add;
      add.req_id = NextReqId();
      add.group = req.group;
      add.gpid = resp.gpid;
      uint64_t my_id = add.req_id;
      ForwardToHost(req.coordinator, Msg{add}, my_id, h,
                    [this, h](const Msg*, const std::string&) { ReleaseHandler(h); });
    });
  });
}

void Lpm::SignalGPid(const GPid& target, host::Signal sig,
                     std::function<void(bool, std::string)> done) {
  Dispatch([this, target, sig, done = std::move(done)](Pid h) {
    SignalReq req;
    req.req_id = NextReqId();
    req.target = target;
    req.sig = sig;
    if (target.host == host_name()) {
      DoSignalLocal(req, h, [this, h, done = std::move(done)](const SignalResp& resp) {
        done(resp.ok, resp.error);
        ReleaseHandler(h);
      });
      return;
    }
    uint64_t my_id = req.req_id;
    ForwardToHost(target.host, Msg{req}, my_id, h,
                  [this, h, done = std::move(done)](const Msg* m, const std::string& err) {
                    if (m != nullptr && std::holds_alternative<SignalResp>(*m)) {
                      const auto& resp = std::get<SignalResp>(*m);
                      done(resp.ok, resp.error);
                    } else {
                      done(false, err);
                    }
                    ReleaseHandler(h);
                  });
  });
}

// --- time-to-live --------------------------------------------------------------------------

void Lpm::ReviewTtl() {
  if (!running_) return;
  size_t tools = 0;
  for (const auto& [conn, info] : peers_) {
    if (info.kind == PeerKind::kTool) ++tools;
  }
  bool idle = adopted_live_count() == 0 && tools == 0;
  // "For the CCS, the time-to-live interval has a different meaning: as
  // long as there is any sibling LPM in the networked system,
  // time-to-live is not decremented."
  if (is_ccs_ && !siblings_.empty()) idle = false;
  if (idle && ttl_event_ == sim::kInvalidEventId) {
    ttl_event_ = simulator().ScheduleIn(config_.time_to_live, [this] {
      ttl_event_ = sim::kInvalidEventId;
      TtlExpired();
    }, "lpm-ttl");
  } else if (!idle && ttl_event_ != sim::kInvalidEventId) {
    simulator().Cancel(ttl_event_);
    ttl_event_ = sim::kInvalidEventId;
  }
}

void Lpm::TtlExpired() {
  if (!running_) return;
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                         "ttl");
  PPM_INFO("lpm") << host_name() << ": time-to-live expired";
  ExitSelf(0);
}

// --- recovery (paper Section 5) ---------------------------------------------------------------

void Lpm::SetMode(LpmMode m) {
  if (m == mode_) return;
  std::string transition = std::string(ToString(mode_)) + "->" + ToString(m);
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kStateTransition,
                                         host_name(), transition);
  mode_ = m;
}

void Lpm::OnSiblingLost(const std::string& host, net::CloseReason reason) {
  (void)host;
  (void)reason;
  StartRecovery();
}

void Lpm::StartRecovery() {
  if (!running_ || recovery_in_progress_) return;
  ++stats_.recoveries_started;
  if (is_ccs_) {
    // The coordinator itself stays put; siblings come to it.
    return;
  }
  recovery_in_progress_ = true;
  if (!ccs_host_.empty() && ccs_host_ != host_name()) {
    if (siblings_.count(ccs_host_)) {
      // Still in touch with the coordinator: nothing to do.
      recovery_in_progress_ = false;
      SetMode(LpmMode::kNormal);
      return;
    }
    EnsureSibling(ccs_host_, [this](std::optional<net::ConnId> conn) {
      if (!running_) return;
      if (conn) {
        recovery_in_progress_ = false;
        SetMode(LpmMode::kNormal);
        CancelDeath();
        return;
      }
      RecoverEntry();
    });
    return;
  }
  RecoverEntry();
}

void Lpm::RecoverEntry() {
  if (!running_) return;
  if (!config_.ccs_nameserver.empty()) {
    RecoverViaNameServer();
  } else {
    WalkRecoveryList(0);
  }
}

void Lpm::RecoverViaNameServer() {
  // Paper Section 5 (alternative): "LPMs would query the name server for
  // a CCS."  A stale or missing answer degrades to self-appointment or
  // the .recovery walk.
  NsQuery(host_, config_.ccs_nameserver, user_, config_.ns_query_timeout,
          [this](std::optional<std::string> answer) {
            if (!running_) return;
            if (!answer) {
              // Server unreachable or no record: the administrators'
              // coordination is unavailable; use the file mechanism.
              WalkRecoveryList(0);
              return;
            }
            if (*answer == host_name()) {
              is_ccs_ = true;
              ccs_host_ = host_name();
              PersistCcs();
              SetMode(LpmMode::kNormal);
              recovery_in_progress_ = false;
              CancelDeath();
              AnnounceCcs();
              ReviewTtl();
              return;
            }
            EnsureSibling(*answer, [this, ccs = *answer](std::optional<net::ConnId> conn) {
              if (!running_) return;
              if (conn) {
                ccs_host_ = ccs;
                is_ccs_ = false;
                PersistCcs();
                SetMode(LpmMode::kNormal);
                recovery_in_progress_ = false;
                CancelDeath();
                AnnounceCcs();
                return;
              }
              // The registered CCS is gone too: appoint ourselves and
              // tell the name server, so later queriers find us.
              PPM_INFO("lpm") << host_name()
                              << ": registered CCS unreachable; self-appointing";
              is_ccs_ = true;
              ccs_host_ = host_name();
              PersistCcs();
              SetMode(LpmMode::kNormal);
              recovery_in_progress_ = false;
              CancelDeath();
              RegisterCcsWithNameServer();
              AnnounceCcs();
              ReviewTtl();
              // Two orphaned LPMs can self-appoint concurrently (both saw
              // the same stale record).  Re-read the server once the dust
              // settles: the LAST registration wins and the loser defers —
              // the "better coordinated" assignment the paper wants from
              // name servers.
              simulator().ScheduleIn(2 * config_.ns_query_timeout, [this] {
                if (!running_ || !is_ccs_) return;
                NsQuery(host_, config_.ccs_nameserver, user_, config_.ns_query_timeout,
                        [this](std::optional<std::string> winner) {
                          if (!running_ || !is_ccs_ || !winner ||
                              *winner == host_name()) {
                            return;
                          }
                          EnsureSibling(*winner,
                                        [this, w = *winner](std::optional<net::ConnId> c) {
                                          if (!running_ || !c) return;
                                          PPM_INFO("lpm") << host_name()
                                                          << ": deferring CCS role to "
                                                          << w;
                                          is_ccs_ = false;
                                          ccs_host_ = w;
                                          PersistCcs();
                                          AnnounceCcs();
                                          ReviewTtl();
                                        });
                        });
              }, "lpm-ns-reconcile");
            });
          });
}

void Lpm::RegisterCcsWithNameServer() {
  if (config_.ccs_nameserver.empty() || !is_ccs_) return;
  NsRegister(host_, config_.ccs_nameserver, user_, host_name());
}

void Lpm::WalkRecoveryList(size_t index) {
  if (!running_) return;
  RecoveryList list = ReadRecoveryList(host_.fs(), uid_);
  if (index >= list.hosts.size()) {
    EnterDying();
    return;
  }
  const std::string target = list.hosts[index];
  if (target == host_name()) {
    BecomeActingCcs(index);
    return;
  }
  EnsureSibling(target, [this, index, target](std::optional<net::ConnId> conn) {
    if (!running_) return;
    if (!conn) {
      WalkRecoveryList(index + 1);
      return;
    }
    // The reachable recovery host's LPM becomes the coordinator.
    ccs_host_ = target;
    is_ccs_ = false;
    PersistCcs();
    SetMode(LpmMode::kNormal);
    recovery_in_progress_ = false;
    CancelDeath();
    BecomeCcs msg;
    msg.requested_by = host_name();
    SendMsg(*conn, msg);
    AnnounceCcs();
  });
}

void Lpm::BecomeActingCcs(size_t list_index) {
  PPM_INFO("lpm") << host_name() << ": becoming "
                  << (list_index == 0 ? "CCS" : "acting CCS") << " (priority "
                  << list_index << ")";
  is_ccs_ = true;
  ccs_host_ = host_name();
  PersistCcs();
  recovery_in_progress_ = false;
  CancelDeath();
  RegisterCcsWithNameServer();
  if (list_index > 0) {
    // Not the top of the list: keep probing upward at low frequency
    // until a higher-priority host comes back (partition healing).
    SetMode(LpmMode::kRecovering);
    simulator().Cancel(probe_event_);
    probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                          [this] { ProbeHigherPriority(); }, "lpm-probe");
  } else {
    SetMode(LpmMode::kNormal);
  }
  AnnounceCcs();
  ReviewTtl();
}

void Lpm::ProbeHigherPriority() {
  probe_event_ = sim::kInvalidEventId;
  if (!running_ || !is_ccs_) return;
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                         "probe");
  RecoveryList list = ReadRecoveryList(host_.fs(), uid_);
  auto my_index = list.IndexOf(host_name());
  size_t limit = my_index ? *my_index : list.hosts.size();
  if (limit == 0) {
    SetMode(LpmMode::kNormal);
    return;
  }
  ProbeStep(0, limit, std::move(list));
}

void Lpm::ProbeStep(size_t index, size_t limit, RecoveryList list) {
  if (!running_ || !is_ccs_) return;
  if (index >= limit) {
    // Everyone above is still unreachable; probe again later.
    SetMode(LpmMode::kRecovering);
    simulator().Cancel(probe_event_);
    probe_event_ = simulator().ScheduleIn(config_.probe_interval,
                                          [this] { ProbeHigherPriority(); }, "lpm-probe");
    return;
  }
  const std::string target = list.hosts[index];
  EnsureSibling(target, [this, index, limit, target,
                         list = std::move(list)](std::optional<net::ConnId> conn) mutable {
    if (!running_ || !is_ccs_) return;
    if (!conn) {
      ProbeStep(index + 1, limit, std::move(list));
      return;
    }
    YieldCcsTo(target);
  });
}

void Lpm::YieldCcsTo(const std::string& host) {
  PPM_INFO("lpm") << host_name() << ": yielding CCS role to " << host;
  is_ccs_ = false;
  ccs_host_ = host;
  PersistCcs();
  SetMode(LpmMode::kNormal);
  simulator().Cancel(probe_event_);
  probe_event_ = sim::kInvalidEventId;
  auto it = siblings_.find(host);
  if (it != siblings_.end()) {
    BecomeCcs msg;
    msg.requested_by = host_name();
    SendMsg(it->second, msg);
  }
  AnnounceCcs();
}

void Lpm::EnterDying() {
  if (!running_) return;
  recovery_in_progress_ = false;
  // Re-entered after a failed retry walk: the death timer keeps ticking,
  // but the retry below must be re-armed — rescue may come from any
  // retry before the deadline, not just the first.
  if (mode_ != LpmMode::kDying) {
    SetMode(LpmMode::kDying);
    PPM_WARN("lpm") << host_name()
                    << ": no recovery host reachable; time-to-die armed";
  }
  if (death_event_ == sim::kInvalidEventId) {
    death_event_ = simulator().ScheduleIn(config_.time_to_die, [this] {
      death_event_ = sim::kInvalidEventId;
      if (!running_ || mode_ != LpmMode::kDying) return;
      obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                             "death");
      // "…the appropriate action is to close down all the activities."
      PPM_WARN("lpm") << host_name() << ": time-to-die expired; terminating "
                      << adopted_live_count() << " user processes";
      for (const auto& [lpid, info] : local_procs_) {
        const host::Process* p = kernel().Find(lpid);
        if (p && p->alive()) kernel().PostSignal(lpid, host::Signal::kSigKill, uid_);
      }
      ExitSelf(1);
    }, "lpm-death");
  }
  simulator().Cancel(retry_event_);
  retry_event_ = simulator().ScheduleIn(config_.retry_interval, [this] {
    retry_event_ = sim::kInvalidEventId;
    if (!running_ || mode_ != LpmMode::kDying) return;
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kTimerFired, host_name(),
                                           "retry");
    recovery_in_progress_ = true;
    RecoverEntry();
    // If the attempt fails it re-enters dying and re-arms the retry timer.
  }, "lpm-retry");
}

void Lpm::CancelDeath() {
  simulator().Cancel(death_event_);
  simulator().Cancel(retry_event_);
  death_event_ = retry_event_ = sim::kInvalidEventId;
  if (mode_ == LpmMode::kDying) SetMode(LpmMode::kNormal);
}

void Lpm::AnnounceCcs() {
  CcsChanged msg;
  msg.new_ccs = ccs_host_;
  for (const auto& [host, conn] : siblings_) {
    if (host == ccs_host_) continue;
    SendMsg(conn, msg);
  }
}

std::string Lpm::CcsClaim() const {
  if (mode_ != LpmMode::kNormal || recovery_in_progress_) return "";
  return ccs_host_;
}

void Lpm::AdoptCcsFromPeer(const std::string& peer_ccs) {
  if (peer_ccs.empty()) return;  // peer's own knowledge was suspect
  if (ccs_host_.empty()) {
    // First CCS knowledge for this LPM: a plain hint.
    ccs_host_ = peer_ccs;
    is_ccs_ = (peer_ccs == host_name());
    PersistCcs();
    return;
  }
  // "…a LPM not in contact with a CCS resumes the normal mode of
  // operation if it … gets a communication request from a LPM in
  // contact with a valid CCS."  (Peers in trouble claim nothing, so a
  // nonempty claim implies the sender believes its CCS is valid.)
  if (mode_ != LpmMode::kNormal) {
    AcceptCcsAnnouncement(peer_ccs);
  }
}

void Lpm::AcceptCcsAnnouncement(const std::string& new_ccs) {
  if (new_ccs.empty()) return;
  ccs_host_ = new_ccs;
  is_ccs_ = (new_ccs == host_name());
  PersistCcs();
  recovery_in_progress_ = false;
  CancelDeath();
  if (is_ccs_) RegisterCcsWithNameServer();
  if (!is_ccs_) {
    simulator().Cancel(probe_event_);
    probe_event_ = sim::kInvalidEventId;
  }
  SetMode(LpmMode::kNormal);
  ReviewTtl();
}

// --- group operations (src/group/): gang-spawn ----------------------------------------------

void Lpm::HandleGroupSpawn(net::ConnId conn, const GroupSpawnReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id),
           [this, conn, req](Pid h) { StartGangSpawn(conn, req, h); });
}

void Lpm::StartGangSpawn(net::ConnId conn, const GroupSpawnReq& req, Pid handler) {
  auto reject = [&](const std::string& why) {
    GroupSpawnResp resp;
    resp.req_id = req.req_id;
    resp.ok = false;
    resp.error = why;
    ReplyMsg(conn, resp);
    ReleaseHandler(handler);
  };
  if (!running_) {
    reject("manager shutting down");
    return;
  }
  if (req.group.empty()) {
    reject("group name must be non-empty");
    return;
  }
  if (req.hosts.empty() || req.hosts.size() != req.commands.size()) {
    reject("hosts and commands must be non-empty and the same length");
    return;
  }
  if (group_table_.HasGroup(req.group)) {
    reject("group already exists: " + req.group);
    return;
  }
  for (const auto& [id, run] : gang_runs_) {
    if (run.group == req.group) {
      reject("gang spawn already in flight for group: " + req.group);
      return;
    }
  }

  uint64_t run_id = NextReqId();
  GangRun& run = gang_runs_[run_id];
  run.tool_conn = conn;
  run.tool_req_id = req.req_id;
  run.handler = handler;
  run.group = req.group;
  run.outstanding = req.hosts.size();
  PPM_INFO("lpm") << host_name() << ": gang spawn \"" << req.group << "\" across "
                  << req.hosts.size() << " part(s)";

  for (size_t i = 0; i < req.hosts.size(); ++i) {
    const std::string part_host = req.hosts[i];
    GroupPartReq part;
    part.req_id = NextReqId();
    part.group = req.group;
    part.coordinator = host_name();
    part.command = req.commands[i];
    if (part_host == host_name()) {
      DoGroupPartLocal(part, handler,
                       [this, run_id, part_host](const GroupPartResp& resp) {
                         GangPartDone(run_id, part_host, resp.ok, resp.gpid, resp.error);
                       });
      continue;
    }
    uint64_t my_id = part.req_id;
    ForwardToHost(part_host, Msg{part}, my_id, handler,
                  [this, run_id, part_host](const Msg* m, const std::string& err) {
                    if (m != nullptr && std::holds_alternative<GroupPartResp>(*m)) {
                      const auto& resp = std::get<GroupPartResp>(*m);
                      GangPartDone(run_id, part_host, resp.ok, resp.gpid, resp.error);
                    } else {
                      GangPartDone(run_id, part_host, false, GPid{}, err);
                    }
                  });
  }
}

void Lpm::GangPartDone(uint64_t run_id, const std::string& part_host, bool ok,
                       const GPid& gpid, const std::string& error) {
  auto it = gang_runs_.find(run_id);
  if (it == gang_runs_.end()) return;
  GangRun& run = it->second;
  if (ok) {
    run.members.push_back(gpid);
  } else {
    run.failed = true;
    run.host_errors.push_back(part_host + ": " +
                              (error.empty() ? "spawn failed" : error));
  }
  if (--run.outstanding == 0) FinishGangSpawn(run_id);
}

void Lpm::FinishGangSpawn(uint64_t run_id) {
  auto it = gang_runs_.find(run_id);
  if (it == gang_runs_.end()) return;
  GangRun run = std::move(it->second);
  gang_runs_.erase(it);

  GroupSpawnResp resp;
  resp.req_id = run.tool_req_id;
  if (!run.failed) {
    // All parts landed: the group becomes visible atomically, and only
    // now — a concurrent gjoin/gsig never sees a half-spawned gang.
    for (const GPid& m : run.members) {
      group_table_.AddMember(run.group, m);
      if (store_) store_->RecordGroupMember(run.group, m);
    }
    ++stats_.gang_spawns;
    Metrics().group_spawns->Inc();
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kGroupSpawn, host_name(),
                                           run.group, run.members.size(), 0);
    resp.ok = true;
    resp.members = std::move(run.members);
    ReplyMsg(run.tool_conn, resp);
    ReleaseHandler(run.handler);
    return;
  }

  // All-or-nothing: kill every part that did come up.  Undo legs are
  // charged to the manager itself — the tool's handler is released with
  // the reply, not held across remote cleanup.
  ++stats_.gang_rollbacks;
  Metrics().group_rollbacks->Inc();
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kGroupSpawn, host_name(),
                                         run.group, run.members.size(), 1);
  PPM_INFO("lpm") << host_name() << ": gang spawn \"" << run.group
                  << "\" rolled back (" << run.host_errors.size() << " failed part(s))";
  for (const GPid& m : run.members) {
    if (m.host == host_name()) {
      UndoLocalGroupMember(m.pid);
      continue;
    }
    GroupUndoReq undo;
    undo.req_id = NextReqId();
    undo.group = run.group;
    undo.target = m;
    uint64_t my_id = undo.req_id;
    ForwardToHost(m.host, Msg{undo}, my_id, pid(),
                  [](const Msg*, const std::string&) {});
  }
  resp.ok = false;
  resp.error = "gang spawn failed on " + std::to_string(run.host_errors.size()) +
               " host(s)";
  resp.host_errors = std::move(run.host_errors);
  ReplyMsg(run.tool_conn, resp);
  ReleaseHandler(run.handler);
}

void Lpm::DoGroupPartLocal(const GroupPartReq& req, Pid handler,
                           std::function<void(const GroupPartResp&)> done) {
  sim::SimDuration cost = kernel().Charge(handler, BaseCosts::kHandlerWork);
  cost += kernel().Charge(handler, BaseCosts::kForkExec);
  simulator().ScheduleIn(cost, [this, req, done = std::move(done)] {
    GroupPartResp resp;
    resp.req_id = req.req_id;
    if (!running_) {
      resp.ok = false;
      resp.error = "manager shutting down";
      done(resp);
      return;
    }
    Pid child = kernel().Spawn(pid(), uid_, req.command, nullptr,
                               host::ProcState::kRunning, host::kTraceAll, pid());
    LocalProc info;
    info.command = req.command;
    if (store_) store_->RecordProcNew(child, info.logical_parent, info.command);
    local_procs_[child] = std::move(info);
    if (!req.group.empty()) {
      group_table_.AddLocal(child, req.group, req.coordinator);
      if (store_) store_->RecordGroupLocalMember(child, req.group, req.coordinator);
    }
    resp.ok = true;
    resp.gpid = GPid{host_name(), child};
    ReviewTtl();
    done(resp);
  }, "lpm-gang-part");
}

void Lpm::HandleGroupPart(net::ConnId conn, const GroupPartReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    DoGroupPartLocal(req, h, [this, conn, h](const GroupPartResp& resp) {
      ReplyMsg(conn, resp);
      ReleaseHandler(h);
    });
  });
}

void Lpm::HandleGroupUndo(net::ConnId conn, const GroupUndoReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    cost += kernel().Charge(h, BaseCosts::kSignal);
    simulator().ScheduleIn(cost, [this, conn, req, h] {
      GroupAck ack;
      ack.req_id = req.req_id;
      if (!running_) {
        ack.ok = false;
        ack.error = "manager shutting down";
      } else {
        UndoLocalGroupMember(req.target.pid);
        ack.ok = true;
      }
      ReplyMsg(conn, ack);
      ReleaseHandler(h);
    }, "lpm-gang-undo");
  });
}

void Lpm::UndoLocalGroupMember(host::Pid target) {
  // Forget the membership *before* killing: the kExit hook must not send
  // a stray exit notify for a member the coordinator is rolling back.
  if (group_table_.TakeLocal(target)) {
    if (store_) store_->RecordGroupLocalRemove(target);
  }
  kernel().PostSignal(target, host::Signal::kSigKill, uid_);
}

// --- group operations: exits, signal, join --------------------------------------------------

void Lpm::HandleGroupExitNotify(net::ConnId conn, const GroupExitNotify& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  ApplyGroupExit(req.group, req.gpid, req.exit_status);
  GroupAck ack;
  ack.req_id = req.req_id;
  ack.ok = true;
  ReplyMsg(conn, ack);
}

void Lpm::HandleGroupAddNotify(net::ConnId conn, const GroupAddNotify& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  GroupAck ack;
  ack.req_id = req.req_id;
  if (!group_table_.HasGroup(req.group)) {
    // Nothing to enroll into: the replacement still runs, but we will
    // not invent a coordinator-side group that was never gang-spawned.
    ack.ok = false;
    ack.error = "unknown group " + req.group;
  } else {
    group_table_.AddMember(req.group, req.gpid);
    if (store_) store_->RecordGroupMember(req.group, req.gpid);
    ack.ok = true;
  }
  ReplyMsg(conn, ack);
}

void Lpm::ApplyGroupExit(const std::string& grp, const GPid& gpid, int32_t status) {
  // MarkExited is idempotent: a retried notify or a duplicate kernel
  // event changes nothing the second time.
  if (!group_table_.MarkExited(grp, gpid, status)) return;
  if (store_) store_->RecordGroupExit(grp, gpid, status);
  if (group_table_.AllExited(grp)) FlushGroupJoins(grp);
}

void Lpm::NotifyGroupExit(const std::string& grp, const std::string& coordinator,
                          const GPid& gpid, int32_t status) {
  if (coordinator.empty() || coordinator == host_name()) {
    ApplyGroupExit(grp, gpid, status);
    return;
  }
  Dispatch([this, grp, coordinator, gpid, status](Pid h) {
    GroupExitNotify note;
    note.req_id = NextReqId();
    note.group = grp;
    note.gpid = gpid;
    note.exit_status = status;
    uint64_t my_id = note.req_id;
    ForwardToHost(coordinator, Msg{note}, my_id, h,
                  [this, h](const Msg*, const std::string&) { ReleaseHandler(h); });
  });
}

void Lpm::FlushGroupJoins(const std::string& grp) {
  auto it = join_waiters_.find(grp);
  if (it == join_waiters_.end()) return;
  auto waiters = std::move(it->second);
  join_waiters_.erase(it);
  for (auto& [conn, req_id] : waiters) {
    ReplyMsg(conn, BuildJoinResp(req_id, grp));
  }
}

GroupJoinResp Lpm::BuildJoinResp(uint64_t req_id, const std::string& grp) {
  GroupJoinResp resp;
  resp.req_id = req_id;
  resp.ok = true;
  resp.group = grp;
  auto git = group_table_.groups().find(grp);
  if (git != group_table_.groups().end()) {
    for (const auto& m : git->second) {
      GroupExit e;
      e.gpid = m.gpid;
      e.exit_status = m.exit_status;
      resp.exits.push_back(e);
    }
  }
  return resp;
}

void Lpm::HandleGroupSignal(net::ConnId conn, const GroupSignalReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  if (!group_table_.HasGroup(req.group)) {
    GroupSignalResp resp;
    resp.req_id = req.req_id;
    resp.ok = false;
    resp.error = "unknown group " + req.group +
                 " (issue gsig to the coordinating manager)";
    ReplyMsg(conn, resp);
    return;
  }
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    std::vector<GPid> live = group_table_.LiveMembers(req.group);
    if (live.empty()) {
      GroupSignalResp resp;
      resp.req_id = req.req_id;
      resp.ok = true;
      ReplyMsg(conn, resp);
      ReleaseHandler(h);
      return;
    }
    struct SigFan {
      size_t pending = 0;
      uint32_t delivered = 0;
      uint32_t failed = 0;
    };
    auto fan = std::make_shared<SigFan>();
    fan->pending = live.size();
    auto one_done = [this, conn, req, h, fan](bool ok) {
      if (ok) {
        ++fan->delivered;
      } else {
        ++fan->failed;
      }
      if (--fan->pending > 0) return;
      GroupSignalResp resp;
      resp.req_id = req.req_id;
      resp.ok = true;
      resp.delivered = fan->delivered;
      resp.failed = fan->failed;
      ReplyMsg(conn, resp);
      ReleaseHandler(h);
    };
    for (const GPid& m : live) {
      SignalGPid(m, req.sig, [one_done](bool ok, std::string) { one_done(ok); });
    }
  });
}

void Lpm::HandleGroupJoin(net::ConnId conn, const GroupJoinReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  if (!group_table_.HasGroup(req.group)) {
    GroupJoinResp resp;
    resp.req_id = req.req_id;
    resp.ok = false;
    resp.group = req.group;
    resp.error = "unknown group " + req.group +
                 " (issue gjoin to the coordinating manager)";
    ReplyMsg(conn, resp);
    return;
  }
  if (group_table_.AllExited(req.group)) {
    ReplyMsg(conn, BuildJoinResp(req.req_id, req.group));
    return;
  }
  join_waiters_[req.group].push_back({conn, req.req_id});
}

// --- group operations: barriers -------------------------------------------------------------

void Lpm::HandleBarrierEnter(net::ConnId conn, const BarrierEnterReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  const uint64_t decided = group_table_.DecidedEpoch(req.name);
  if (req.epoch <= decided) {
    BarrierEnterResp resp;
    resp.req_id = req.req_id;
    resp.ok = false;
    resp.epoch = req.epoch;
    resp.error = "barrier epoch already decided (highest " + std::to_string(decided) +
                 ")";
    ReplyMsg(conn, resp);
    return;
  }
  group::GroupTable::BarrierKey key{req.name, req.epoch};
  BarrierLocal& bl = barrier_local_[key];
  bl.expected = std::max(bl.expected, req.expected);
  bl.waiters.push_back({conn, req.req_id});
  if (bl.safety_ev == sim::kInvalidEventId) {
    // Bound the wait: if no verdict ever reaches this host (CCS dead,
    // partition), waiters fail with an explicitly *unknown* outcome —
    // never a guessed release or timeout.
    std::string name = req.name;
    uint64_t epoch = req.epoch;
    bl.safety_ev = simulator().ScheduleIn(
        2 * config_.barrier_timeout,
        [this, name, epoch] {
          FailBarrierLocal(name, epoch, "barrier verdict unreachable");
        },
        "lpm-barrier-safety");
  }
  if (bl.waiters.size() > bl.reported) {
    SendBarrierJoin(req.name, req.epoch, bl.expected,
                    static_cast<uint32_t>(bl.waiters.size()));
  }
}

void Lpm::SendBarrierJoin(const std::string& name, uint64_t epoch, uint32_t expected,
                          uint32_t count) {
  group::GroupTable::BarrierKey key{name, epoch};
  auto it = barrier_local_.find(key);
  if (it != barrier_local_.end()) {
    it->second.reported = std::max(it->second.reported, count);
  }
  if (is_ccs_) {
    GroupAck ack = CcsBarrierJoin(host_name(), name, epoch, expected, count);
    if (!ack.ok) FailBarrierLocal(name, epoch, ack.error);
    return;
  }
  if (ccs_host_.empty()) {
    FailBarrierLocal(name, epoch, "no barrier coordinator known");
    return;
  }
  PPM_DEBUG("lpm") << host_name() << ": barrier \"" << name << "\" epoch "
                   << epoch << " join -> ccs " << ccs_host_;
  SendBarrierJoinTo(ccs_host_, name, epoch, expected, count,
                    /*redirects_left=*/2);
}

void Lpm::SendBarrierJoinTo(const std::string& ccs, const std::string& name,
                            uint64_t epoch, uint32_t expected, uint32_t count,
                            int redirects_left) {
  Dispatch([this, ccs, name, epoch, expected, count, redirects_left](Pid h) {
    BarrierJoinReq req;
    req.req_id = NextReqId();
    req.name = name;
    req.epoch = epoch;
    req.expected = expected;
    req.host = host_name();
    req.count = count;
    uint64_t my_id = req.req_id;
    ForwardToHost(
        ccs, Msg{req}, my_id, h,
        [this, h, ccs, name, epoch, expected, count,
         redirects_left](const Msg* m, const std::string& err) {
          if (m != nullptr && std::holds_alternative<GroupAck>(*m)) {
            const auto& ack = std::get<GroupAck>(*m);
            if (ack.ok) {
              // The far side answered *as* the coordinator; a join that
              // travelled a redirect just validated the hint, so repair
              // the stale pointer for every later CCS-routed operation.
              if (ccs_host_ != ccs && ccs != host_name()) {
                ccs_host_ = ccs;
                is_ccs_ = false;
                PersistCcs();
              }
            } else if (!ack.ccs_hint.empty() && ack.ccs_hint != ccs &&
                       ack.ccs_hint != host_name() && redirects_left > 0) {
              // A demoted coordinator bounced the join but told us where
              // the role went (a pointer gone stale across a partition,
              // e.g. a yield announcement this host never heard).  Chase
              // the redirect instead of failing the waiters; the hop
              // bound keeps a pointer cycle from looping forever.
              SendBarrierJoinTo(ack.ccs_hint, name, epoch, expected, count,
                                redirects_left - 1);
            } else {
              FailBarrierLocal(name, epoch, ack.error);
            }
          } else {
            PPM_DEBUG("lpm") << host_name() << ": barrier \"" << name
                             << "\" epoch " << epoch << " join to " << ccs
                             << " failed: " << err;
            FailBarrierLocal(name, epoch,
                             "barrier coordinator unreachable: " + err);
          }
          ReleaseHandler(h);
        });
  });
}

GroupAck Lpm::CcsBarrierJoin(const std::string& from_host, const std::string& name,
                             uint64_t epoch, uint32_t expected, uint32_t count) {
  GroupAck ack;
  if (!is_ccs_) {
    // A demoted CCS must not keep tallying: two deciders for one epoch
    // is exactly the split group.no_split_release forbids.
    ack.ok = false;
    ack.error = "not the central coordinator (ccs=" + ccs_host_ + ")";
    ack.ccs_hint = ccs_host_;
    return ack;
  }
  if (epoch <= group_table_.DecidedEpoch(name)) {
    ack.ok = false;
    ack.error = "barrier epoch already decided";
    return ack;
  }
  bool fresh = !group_table_.HasTally(name, epoch);
  group::BarrierTally& tally = group_table_.Tally(name, epoch);
  tally.expected = std::max(tally.expected, expected);
  uint32_t& joined = tally.counts[from_host];
  joined = std::max(joined, count);  // cumulative per host: retries are idempotent
  if (fresh) {
    group::GroupTable::BarrierKey key{name, epoch};
    barrier_decide_ev_[key] = simulator().ScheduleIn(
        config_.barrier_timeout,
        [this, name, epoch] { BarrierVerdict(name, epoch, false); },
        "lpm-barrier-decide");
  }
  ack.ok = true;
  if (tally.expected > 0 && tally.Total() >= tally.expected) {
    BarrierVerdict(name, epoch, true);
  }
  return ack;
}

void Lpm::HandleBarrierJoin(net::ConnId conn, const BarrierJoinReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  GroupAck ack = CcsBarrierJoin(req.host, req.name, req.epoch, req.expected, req.count);
  ack.req_id = req.req_id;
  ReplyMsg(conn, ack);
}

void Lpm::BarrierVerdict(const std::string& name, uint64_t epoch, bool released) {
  if (!group_table_.HasTally(name, epoch)) return;  // already decided
  group::GroupTable::BarrierKey key{name, epoch};
  auto eit = barrier_decide_ev_.find(key);
  if (eit != barrier_decide_ev_.end()) {
    simulator().Cancel(eit->second);
    barrier_decide_ev_.erase(eit);
  }
  group::BarrierTally tally = group_table_.Tally(name, epoch);
  group_table_.EraseTally(name, epoch);
  group_table_.NoteDecided(name, epoch);
  // Journal (and sync) the decision *before* announcing it: a warm-
  // restarted CCS must never decide the same epoch a second time.
  if (store_) store_->RecordBarrierEpoch(name, epoch);

  // On a timeout the report names the hosts whose waiters were left
  // stuck at the barrier; hosts that never joined are unknowable here.
  std::vector<std::string> stragglers;
  if (!released) {
    for (const auto& [joined_host, c] : tally.counts) stragglers.push_back(joined_host);
  }
  if (released) {
    ++stats_.barrier_releases;
    Metrics().barrier_releases->Inc();
  } else {
    ++stats_.barrier_timeouts;
    Metrics().barrier_timeouts->Inc();
  }
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kBarrierRelease, host_name(),
                                         name, epoch, released ? 1 : 0);
  {
    std::string joined;
    for (const auto& [joined_host, c] : tally.counts) joined += ' ' + joined_host;
    PPM_INFO("lpm") << host_name() << ": barrier \"" << name << "\" epoch "
                    << epoch << (released ? " released (" : " timed out (")
                    << tally.Total() << "/" << tally.expected << " joined:"
                    << joined << ")";
  }

  for (const auto& [joined_host, c] : tally.counts) {
    if (joined_host == host_name()) {
      ApplyBarrierVerdict(name, epoch, released, stragglers);
      continue;
    }
    std::string dest = joined_host;
    Dispatch([this, dest, name, epoch, released, stragglers](Pid h) {
      BarrierReleaseReq rel;
      rel.req_id = NextReqId();
      rel.name = name;
      rel.epoch = epoch;
      rel.released = released;
      rel.stragglers = stragglers;
      uint64_t my_id = rel.req_id;
      ForwardToHost(dest, Msg{rel}, my_id, h,
                    [this, h](const Msg*, const std::string&) { ReleaseHandler(h); });
    });
  }
}

void Lpm::HandleBarrierRelease(net::ConnId conn, const BarrierReleaseReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  ApplyBarrierVerdict(req.name, req.epoch, req.released, req.stragglers);
  GroupAck ack;
  ack.req_id = req.req_id;
  ack.ok = true;
  ReplyMsg(conn, ack);
}

void Lpm::ApplyBarrierVerdict(const std::string& name, uint64_t epoch, bool released,
                              const std::vector<std::string>& stragglers) {
  group::GroupTable::BarrierKey key{name, epoch};
  auto it = barrier_local_.find(key);
  if (it == barrier_local_.end()) return;  // already applied (or never waited here)
  BarrierLocal bl = std::move(it->second);
  barrier_local_.erase(it);
  simulator().Cancel(bl.safety_ev);
  group_table_.NoteDecided(name, epoch);
  group_table_.NoteOutcome(name, epoch, released);
  for (auto& [conn, req_id] : bl.waiters) {
    BarrierEnterResp resp;
    resp.req_id = req_id;
    resp.ok = true;
    resp.released = released;
    resp.epoch = epoch;
    resp.stragglers = stragglers;
    if (!released) resp.error = "barrier timed out";
    ReplyMsg(conn, resp);
  }
}

void Lpm::FailBarrierLocal(const std::string& name, uint64_t epoch,
                           const std::string& why) {
  group::GroupTable::BarrierKey key{name, epoch};
  auto it = barrier_local_.find(key);
  if (it == barrier_local_.end()) return;
  BarrierLocal bl = std::move(it->second);
  barrier_local_.erase(it);
  simulator().Cancel(bl.safety_ev);
  // Deliberately *no* outcome note: the verdict is unknown here, and
  // guessing released/timed-out is what group.no_split_release forbids.
  for (auto& [conn, req_id] : bl.waiters) {
    BarrierEnterResp resp;
    resp.req_id = req_id;
    resp.ok = false;
    resp.epoch = epoch;
    resp.error = why;
    ReplyMsg(conn, resp);
  }
}

// --- group operations: global envars --------------------------------------------------------

void Lpm::HandleEnvarSet(net::ConnId conn, const EnvarSetReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  Dispatch(RxMeta(conn, req.req_id), [this, conn, req](Pid h) {
    sim::SimDuration cost = kernel().Charge(h, BaseCosts::kHandlerWork);
    simulator().ScheduleIn(cost, [this, conn, req, h] {
      EnvarSetResp resp;
      resp.req_id = req.req_id;
      if (!running_) {
        resp.ok = false;
        resp.error = "manager shutting down";
        ReplyMsg(conn, resp);
        ReleaseHandler(h);
        return;
      }
      // Version is claimed at the origin; every replica's merge rule
      // (higher version, ties toward the larger origin) converges on
      // one winner without any coordination round.
      uint64_t version = group_table_.NextVersion(req.key);
      ApplyEnvar(req.key, req.value, version, host_name());
      EnvarUpdate upd;
      upd.origin_host = host_name();
      upd.bcast_seq = NextBcastSeq();
      upd.signed_ts = simulator().Now();
      upd.route.push_back(host_name());
      upd.key = req.key;
      upd.value = req.value;
      upd.version = version;
      upd.version_origin = host_name();
      ++stats_.bcasts_originated;
      bcast_filter_.CheckAndRecord(host_name(), upd.bcast_seq, simulator().Now());
      FloodGroupMsg(Msg{upd}, std::string());
      resp.ok = true;
      resp.version = version;
      ReplyMsg(conn, resp);
      ReleaseHandler(h);
    }, "lpm-envar-set");
  });
}

void Lpm::HandleEnvarGet(net::ConnId conn, const EnvarGetReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  EnvarGetResp resp;
  resp.req_id = req.req_id;
  resp.key = req.key;
  const group::Envar* var = group_table_.FindEnvar(req.key);
  if (var == nullptr) {
    resp.ok = false;
    resp.error = "unset envar " + req.key;
  } else {
    resp.ok = true;
    resp.value = var->value;
    resp.version = var->version;
  }
  ReplyMsg(conn, resp);
}

void Lpm::HandleEnvarWatch(net::ConnId conn, const EnvarWatchReq& req) {
  if (!AdmitRequest(conn, req.req_id)) return;
  EnvarWatchResp resp;
  resp.req_id = req.req_id;
  if (req.key.empty()) {
    resp.ok = false;
    resp.error = "watch key must be non-empty";
  } else {
    resp.ok = true;
    resp.watch_id = group_table_.AddWatcher(req.key, req.spec);
  }
  ReplyMsg(conn, resp);
}

void Lpm::HandleEnvarUpdate(const EnvarUpdate& upd) {
  if (!bcast_filter_.CheckAndRecord(upd.origin_host, upd.bcast_seq, simulator().Now())) {
    ++stats_.bcast_duplicates;
    obs::HealthMonitor::Instance().RateEvent("lpm.bcast.dup");
    return;
  }
  // Re-flood away from the arrival leg regardless of whether we adopt
  // the value: the covering graph needs every edge walked even when this
  // replica already holds a newer version.
  std::string sender = upd.route.empty() ? std::string() : upd.route.back();
  EnvarUpdate fwd = upd;
  fwd.route.push_back(host_name());
  FloodGroupMsg(Msg{fwd}, sender);
  ApplyEnvar(upd.key, upd.value, upd.version, upd.version_origin);
}

void Lpm::HandleEnvarSync(const EnvarSync& sync) {
  for (const EnvarEntry& e : sync.entries) {
    if (!ApplyEnvar(e.key, e.value, e.version, e.origin)) continue;
    // Adopted from anti-entropy: re-originate as a fresh flood so hosts
    // beyond this sibling hear of it too (their filters never saw the
    // original broadcast — it happened while we were apart).
    EnvarUpdate upd;
    upd.origin_host = host_name();
    upd.bcast_seq = NextBcastSeq();
    upd.signed_ts = simulator().Now();
    upd.route.push_back(host_name());
    upd.key = e.key;
    upd.value = e.value;
    upd.version = e.version;
    upd.version_origin = e.origin;
    ++stats_.bcasts_originated;
    bcast_filter_.CheckAndRecord(host_name(), upd.bcast_seq, simulator().Now());
    FloodGroupMsg(Msg{upd}, std::string());
  }
}

bool Lpm::ApplyEnvar(const std::string& key, const std::string& value,
                     uint64_t version, const std::string& origin) {
  if (!group_table_.MergeEnvar(key, value, version, origin)) return false;
  if (store_) store_->RecordEnvar(key, value, version, origin);
  ++stats_.envar_updates;
  Metrics().envar_updates->Inc();
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kEnvarUpdate, host_name(),
                                         key, version, 0);
  for (const auto& [id, w] : group_table_.WatchersFor(key)) {
    ++stats_.envar_watch_fires;
    Metrics().envar_watch_fires->Inc();
    ApplyTriggerAction(w->spec);
  }
  return true;
}

void Lpm::FloodGroupMsg(const Msg& msg, const std::string& except_host) {
  sim::SimDuration cum = 0;
  bool first = true;
  for (const auto& [sib_host, conn] : siblings_) {
    if (sib_host == except_host) continue;
    cum += kernel().Charge(pid(), first ? BaseCosts::kSiblingSend
                                        : BaseCosts::kSiblingSendExtra);
    first = false;
    net::ConnId target = conn;
    simulator().ScheduleIn(cum, [this, target, msg] {
      if (!running_) return;
      SendMsg(target, msg);
    }, "lpm-flood-send");
  }
}

// --- factory --------------------------------------------------------------------------------

daemon::LpmFactory MakeLpmFactory(LpmConfig config) {
  return [config](host::Host& host, host::Uid uid, uint64_t token) -> daemon::LpmHandle {
    // One accept port per user per host; freed when the LPM exits, so a
    // successor LPM for the same user can reuse it.  If the slot is taken
    // (e.g. a duplicate LPM after a volatile-registry pmd crash), probe
    // upward like a bind-retry loop.
    net::Port port = static_cast<net::Port>(5000 + (static_cast<uint32_t>(uid) % 20000));
    while (host.network().HasListener(host.net_id(), port)) ++port;
    std::string user = host.users().NameOf(uid).value_or("uid" + std::to_string(uid));
    host::Host* host_ptr = &host;
    auto pmd_getter = [host_ptr]() -> daemon::Pmd* {
      if (!host_ptr->up()) return nullptr;
      for (host::Pid p : host_ptr->kernel().AllPids()) {
        host::Process* proc = host_ptr->kernel().Find(p);
        if (proc && proc->alive() && proc->command == "pmd") {
          return dynamic_cast<daemon::Pmd*>(proc->body.get());
        }
      }
      return nullptr;
    };
    auto body = std::make_unique<Lpm>(host, uid, user, token, port, config, pmd_getter);
    host::Pid pid = host.kernel().Spawn(host::kNoPid, uid, "lpm", std::move(body),
                                        host::ProcState::kSleeping);
    return daemon::LpmHandle{pid, net::SocketAddr{host.net_id(), port}};
  };
}

}  // namespace ppm::core


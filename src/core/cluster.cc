#include "core/cluster.h"

#include "util/panic.h"

namespace ppm::core {

Cluster::Cluster(ClusterConfig config)
    : config_(config), sim_(config.seed), net_(sim_, config.net) {
  // The net layer cannot see inside circuit payloads (core depends on
  // net, not the reverse), so the cluster injects the wire codec's
  // opcode classifier: from here on net.bytes.sent decomposes into
  // per-message-type "net.op.*" counters.
  net_.set_payload_classifier(&ClassifyWireFrame);
}

Cluster::~Cluster() = default;

host::Host& Cluster::AddHost(const std::string& name, host::HostType type) {
  PPM_CHECK_MSG(!by_name_.count(name), "duplicate host name: " + name);
  net::HostId id = net_.AddHost(name);
  auto h = std::make_unique<host::Host>(sim_, net_, id, type, name, config_.la_tau);
  host::Host* raw = h.get();
  daemon::PmdConfig pmd_config = config_.pmd;
  LpmConfig lpm_config = config_.lpm;
  raw->set_boot_fn([pmd_config, lpm_config](host::Host& booted) {
    daemon::StartInetd(booted, pmd_config, MakeLpmFactory(lpm_config));
  });
  by_name_[name] = hosts_.size();
  hosts_.push_back(std::move(h));
  // First boot.
  daemon::StartInetd(*raw, pmd_config, MakeLpmFactory(lpm_config));
  return *raw;
}

void Cluster::Link(const std::string& a, const std::string& b) {
  Link(a, b, config_.default_link);
}

void Cluster::Link(const std::string& a, const std::string& b, net::LinkParams params) {
  net_.AddLink(host(a).net_id(), host(b).net_id(), params);
}

void Cluster::Ethernet(const std::vector<std::string>& names) {
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      Link(names[i], names[j]);
    }
  }
}

host::Host& Cluster::host(const std::string& name) {
  auto it = by_name_.find(name);
  PPM_CHECK_MSG(it != by_name_.end(), "no such host: " + name);
  return *hosts_[it->second];
}

bool Cluster::HasHost(const std::string& name) const { return by_name_.count(name) > 0; }

std::vector<std::string> Cluster::host_names() const {
  std::vector<std::string> out;
  out.reserve(hosts_.size());
  for (const auto& h : hosts_) out.push_back(h->name());
  return out;
}

void Cluster::AddUserEverywhere(const std::string& user, host::Uid uid) {
  for (auto& h : hosts_) {
    PPM_CHECK_MSG(h->users().AddUser(user, uid), "conflicting account: " + user);
  }
}

void Cluster::TrustUserEverywhere(const std::string& user, host::Uid uid) {
  std::string rhosts;
  for (const auto& h : hosts_) {
    rhosts += h->name() + " " + user + "\n";
  }
  for (auto& h : hosts_) {
    h->fs().Write(uid, ".rhosts", rhosts);
  }
}

void Cluster::SetRecoveryList(host::Uid uid, const std::vector<std::string>& list_hosts) {
  RecoveryList list;
  list.hosts = list_hosts;
  for (auto& h : hosts_) {
    WriteRecoveryList(h->fs(), uid, list);
  }
}

daemon::Inetd* Cluster::FindInetd(const std::string& host_name) {
  host::Host& h = host(host_name);
  if (!h.up()) return nullptr;
  for (host::Pid p : h.kernel().AllPids()) {
    host::Process* proc = h.kernel().Find(p);
    if (proc && proc->alive() && proc->command == "inetd") {
      return dynamic_cast<daemon::Inetd*>(proc->body.get());
    }
  }
  return nullptr;
}

daemon::Pmd* Cluster::FindPmd(const std::string& host_name) {
  host::Host& h = host(host_name);
  if (!h.up()) return nullptr;
  for (host::Pid p : h.kernel().AllPids()) {
    host::Process* proc = h.kernel().Find(p);
    if (proc && proc->alive() && proc->command == "pmd") {
      return dynamic_cast<daemon::Pmd*>(proc->body.get());
    }
  }
  return nullptr;
}

Lpm* Cluster::FindLpm(const std::string& host_name, host::Uid uid) {
  host::Host& h = host(host_name);
  if (!h.up()) return nullptr;
  for (host::Pid p : h.kernel().AllPids()) {
    host::Process* proc = h.kernel().Find(p);
    if (proc && proc->alive() && proc->command == "lpm" && proc->uid == uid) {
      return dynamic_cast<Lpm*>(proc->body.get());
    }
  }
  return nullptr;
}

void Cluster::Crash(const std::string& host_name) { host(host_name).Crash(); }

void Cluster::Reboot(const std::string& host_name) { host(host_name).Reboot(); }

}  // namespace ppm::core

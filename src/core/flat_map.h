// flat_map.h — a sorted-vector map for the LPM's hot lookup tables.
//
// The per-LPM tables (circuit → peer, pid → local process, sequence →
// broadcast run) are small — tens of entries — and are hit on every
// message and every kernel event.  A node-based std::map pays a heap
// allocation per entry and a pointer chase per comparison; at these
// sizes a contiguous sorted vector wins on every operation and keeps
// the same ordered-iteration semantics the deterministic counters rely
// on (iteration is in strict key order, exactly like std::map).
//
// The interface is the subset of std::map the LPM uses: find / count /
// erase(key) / erase(iterator) / operator[] / clear / size / empty and
// ordered iteration with structured bindings.  Unlike std::map, ANY
// insert or erase invalidates ALL iterators and references — callers
// must not hold a reference across a mutation of the same map (lpm.cc
// was audited for this; see DESIGN.md §12).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace ppm::core {

template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  iterator find(const Key& k) {
    iterator it = LowerBound(k);
    return (it != v_.end() && !cmp_(k, it->first)) ? it : v_.end();
  }
  const_iterator find(const Key& k) const {
    const_iterator it = LowerBound(k);
    return (it != v_.end() && !cmp_(k, it->first)) ? it : v_.end();
  }
  size_t count(const Key& k) const { return find(k) != v_.end() ? 1 : 0; }

  // Inserts a default-constructed value at the sorted position when the
  // key is absent, exactly like std::map::operator[].
  T& operator[](const Key& k) {
    iterator it = LowerBound(k);
    if (it == v_.end() || cmp_(k, it->first)) {
      it = v_.insert(it, value_type(k, T()));
    }
    return it->second;
  }

  size_t erase(const Key& k) {
    iterator it = find(k);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return v_.erase(it); }

 private:
  iterator LowerBound(const Key& k) {
    return std::lower_bound(v_.begin(), v_.end(), k,
                            [this](const value_type& e, const Key& key) {
                              return cmp_(e.first, key);
                            });
  }
  const_iterator LowerBound(const Key& k) const {
    return std::lower_bound(v_.begin(), v_.end(), k,
                            [this](const value_type& e, const Key& key) {
                              return cmp_(e.first, key);
                            });
  }

  std::vector<value_type> v_;
  [[no_unique_address]] Compare cmp_;
};

}  // namespace ppm::core

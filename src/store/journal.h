// journal.h — a CRC32-framed append-only write-ahead journal.
//
// The journal is the durability primitive of the PPM (ROADMAP: "what a
// production process manager's daemons remember across failures").  It
// writes length-prefixed, checksummed frames through host::Disk::Append
// — which models a buffer cache: appended bytes are NOT durable until a
// Sync, and a host crash tears the unsynced tail at an arbitrary byte.
//
// Frame layout (all little-endian):
//
//   [u32 payload length][u32 CRC-32 of payload][payload bytes]
//
// Group commit: Append() batches physical syncs — one fsync per
// `group_commit` appended frames — because the fsync is the expensive
// part (BaseCosts::kStoreSync models a mid-80s Winchester seek+write).
// Callers place explicit sync points with Sync() wherever a record must
// be durable *now* (e.g. before acknowledging a trigger install).
//
// Replay walks frames from the front and stops at the first frame that
// is short, torn, or fails its CRC: a torn tail is *detected and
// discarded*, never parsed as garbage.  Everything before the tear is
// returned in append order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "host/filesystem.h"

namespace ppm::store {

class Journal {
 public:
  // `group_commit` >= 1: number of appended frames per physical sync.
  Journal(host::Disk disk, std::string name, uint32_t group_commit);

  // Frames and appends one payload (write-through to the buffer cache);
  // issues a physical sync when the batch is full.  Returns true when
  // this append triggered a sync.
  bool Append(const std::vector<uint8_t>& payload);

  // Explicit sync point: flushes the batch regardless of fill.  Returns
  // the number of bytes that became durable (0 when already clean).
  size_t Sync();

  // Compaction: truncates the journal to empty, durably (checkpoint
  // callers invoke this after the checkpoint file is safely written).
  void Reset();

  struct Replayed {
    std::vector<std::vector<uint8_t>> payloads;  // intact frames, in order
    size_t torn_bytes = 0;  // trailing bytes discarded as torn/corrupt
  };

  // Read-only decode of the journal as found on disk.  Static so a
  // freshly rebooted LPM (and the chaos store invariant) can replay
  // without constructing a writer.
  static Replayed Replay(const host::Disk& disk, const std::string& name);
  Replayed Replay() const { return Replay(disk_, name_); }

  // Frames appended since the last physical sync.
  size_t pending_appends() const { return pending_; }
  const std::string& name() const { return name_; }
  size_t size_bytes() const { return disk_.Size(name_); }

  // Invoked after every physical sync with the bytes flushed; the LPM
  // installs a hook that charges the kernel BaseCosts::kStoreSync so
  // durability is visible in the cost model (and in bench_store).
  void set_sync_hook(std::function<void(size_t flushed)> fn) { sync_hook_ = std::move(fn); }

 private:
  host::Disk disk_;
  std::string name_;
  uint32_t group_commit_;
  size_t pending_ = 0;
  std::function<void(size_t)> sync_hook_;
};

}  // namespace ppm::store

// lpm_store.h — the durable state store of one LPM.
//
// The paper promises "historical processing information" and exited-
// process resource statistics that outlive the processes themselves;
// this store is what makes them outlive the *manager* too.  It couples
// a write-ahead Journal with periodic checkpoints:
//
//   * every LPM state mutation (history event, trigger install/remove,
//     rusage record, genealogy change, CCS change) is appended to the
//     journal as one framed record before — or atomically with — the
//     in-memory mutation becoming visible;
//   * every `checkpoint_every` records, the full state is written
//     atomically to the checkpoint file and the journal is compacted
//     (truncated), so warm-restart replay cost is bounded by the
//     checkpoint interval, not by total history;
//   * records carry a monotone sequence number.  A crash between
//     checkpoint write and journal truncation is safe: replay skips
//     journal records with seq <= the checkpoint's last_seq.
//
// Record payload layout: [u64 seq][u8 type][type-specific fields],
// using the same field encodings as the wire protocol (util::ByteWriter
// rules).  The store deliberately does NOT link against core's wire
// code — it re-encodes the shared types locally — so the dependency
// order stays store -> host and core -> store without a cycle.
//
// Warm restart: Recover() decodes checkpoint + journal read-only and
// returns a RecoveredState; the LPM seeds its EventLog, TriggerTable
// and rusage list from it, uses the genealogy hints to re-adopt still-
// live processes (same kernel generation only — a reboot destroys every
// process and pids are reused), then Open()s the store to continue
// journaling from the recovered sequence number.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "store/journal.h"

namespace ppm::store {

// Journal record types (payload byte after the seq).
enum class RecordType : uint8_t {
  kBoot = 1,           // u32 generation — an LPM incarnation started
  kEvent = 2,          // HistEvent
  kTriggerInstall = 3, // u64 id + TriggerSpec
  kTriggerRemove = 4,  // u64 id (fired or explicitly removed)
  kRusage = 5,         // RusageRecord
  kProcNew = 6,        // i32 pid + logical-parent GPid + command string
  kProcExit = 7,       // i32 pid
  kRemoteChild = 8,    // i32 local parent pid + child GPid
  kCcs = 9,            // host string (empty = cleared)
  kGroupMember = 10,   // group string + member GPid (coordinator side)
  kGroupExit = 11,     // group string + member GPid + i32 exit status
  kGroupLocalMember = 12,  // i32 pid + group + coordinator host
  kGroupLocalRemove = 13,  // i32 pid
  kEnvar = 14,         // key + value + u64 version + origin host
  kBarrierEpoch = 15,  // barrier name + u64 highest epoch decided
};

// A genealogy hint: a process the LPM managed when it last wrote the
// journal.  Valid for re-adoption only within the same kernel
// generation (pids are reused across reboots).
struct ProcHint {
  core::GPid logical_parent;  // may be remote or invalid (computation root)
  std::string command;
};

// One member of a coordinated group, as journaled at the coordinator.
struct GroupMemberHint {
  core::GPid gpid;
  bool exited = false;
  int32_t exit_status = 0;
};

// One local group member (member-host side): which group the pid
// belongs to and which host coordinates it.  Generation-scoped like
// ProcHint — pids are reused across reboots.
struct LocalMemberHint {
  std::string group;
  std::string coordinator;
};

// One replicated global-envar entry.
struct EnvarHint {
  std::string value;
  uint64_t version = 0;
  std::string origin;
};

// Everything a warm restart can learn from disk.
struct RecoveredState {
  bool found = false;        // true when a checkpoint or any record existed
  uint64_t last_seq = 0;     // highest sequence number applied
  uint32_t generation = 0;   // kernel generation of the last kBoot record
  std::vector<core::HistEvent> events;
  std::map<uint64_t, core::TriggerSpec> triggers;
  std::vector<core::RusageRecord> rusage;
  std::map<host::Pid, ProcHint> procs;  // live procs of the last generation
  std::vector<std::pair<host::Pid, core::GPid>> remote_children;
  std::string ccs_host;
  // Group operations state: coordinated groups (survive restart), local
  // memberships (generation-scoped), the replicated envar table, and
  // the highest barrier epoch decided per name (what makes an epoch
  // unreusable across a warm restart).
  std::map<std::string, std::vector<GroupMemberHint>> groups;
  std::map<host::Pid, LocalMemberHint> group_local;
  std::map<std::string, EnvarHint> envars;
  std::map<std::string, uint64_t> barrier_epochs;
  size_t replayed_records = 0;  // journal records applied (after the ckpt)
  size_t torn_bytes = 0;        // discarded torn/corrupt journal tail
};

struct StoreConfig {
  uint32_t group_commit = 8;      // journal frames per physical sync
  uint32_t checkpoint_every = 256;  // records per checkpoint; 0 = never
  size_t event_capacity = 4096;   // ring bound mirrored from the EventLog
};

class LpmStore {
 public:
  // Files live in the disk owner's home directory.
  static constexpr const char* kJournalFile = "lpm.journal";
  static constexpr const char* kCheckpointFile = "lpm.ckpt";

  LpmStore(host::Disk disk, StoreConfig config);

  // Read-only decode of checkpoint + journal as found on disk.  Never
  // parses a torn tail: framing CRCs cut replay at the first bad frame.
  static RecoveredState Recover(const host::Disk& disk);
  RecoveredState Recover() const { return Recover(disk_); }

  // Starts this incarnation: seeds the in-memory mirror (the state the
  // next checkpoint will serialize) from `recovered`, resumes the
  // sequence counter, and journals a kBoot record for `generation`.
  void Open(const RecoveredState& recovered, uint32_t generation);

  // Mutation records.  Each appends one journal frame write-through;
  // group commit and checkpointing happen underneath.
  void RecordEvent(const core::HistEvent& ev);
  void RecordTriggerInstall(uint64_t id, const core::TriggerSpec& spec);
  void RecordTriggerRemove(uint64_t id);
  void RecordRusage(const core::RusageRecord& rec);
  void RecordProcNew(host::Pid pid, const core::GPid& logical_parent,
                     const std::string& command);
  void RecordProcExit(host::Pid pid);
  void RecordRemoteChild(host::Pid parent, const core::GPid& child);
  void RecordCcs(const std::string& ccs_host);
  void RecordGroupMember(const std::string& group, const core::GPid& gpid);
  void RecordGroupExit(const std::string& group, const core::GPid& gpid,
                       int32_t exit_status);
  void RecordGroupLocalMember(host::Pid pid, const std::string& group,
                              const std::string& coordinator);
  void RecordGroupLocalRemove(host::Pid pid);
  void RecordEnvar(const std::string& key, const std::string& value,
                   uint64_t version, const std::string& origin);
  void RecordBarrierEpoch(const std::string& name, uint64_t epoch);

  // Explicit sync point: makes everything journaled so far durable.
  void Sync() { journal_.Sync(); }

  // Serializes the mirror to the checkpoint file and compacts the
  // journal.  Called automatically every `checkpoint_every` records;
  // public for tests and for a clean shutdown.
  void Checkpoint();

  Journal& journal() { return journal_; }
  uint64_t seq() const { return seq_; }
  const StoreConfig& config() const { return config_; }

 private:
  void AppendRecord(RecordType type, const std::vector<uint8_t>& fields);

  host::Disk disk_;
  StoreConfig config_;
  Journal journal_;
  uint64_t seq_ = 0;
  uint32_t records_since_ckpt_ = 0;
  bool open_ = false;
  RecoveredState mirror_;  // the state a checkpoint serializes
};

}  // namespace ppm::store

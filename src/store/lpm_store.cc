#include "store/lpm_store.h"

#include "obs/metrics.h"
#include "util/bytes.h"

namespace ppm::store {

namespace {

struct StoreMetrics {
  obs::Counter* records;
  obs::Counter* checkpoints;
  obs::Counter* checkpoint_bytes;
  obs::Counter* compactions;
  obs::Counter* recoveries;
  obs::Counter* replay_events;
  obs::Counter* replay_records;
};

StoreMetrics& Metrics() {
  static StoreMetrics m = [] {
    auto& r = obs::Registry::Instance();
    StoreMetrics mm;
    mm.records = r.GetCounter("store.records");
    mm.checkpoints = r.GetCounter("store.checkpoints");
    mm.checkpoint_bytes = r.GetCounter("store.checkpoint_bytes");
    mm.compactions = r.GetCounter("store.compactions");
    mm.recoveries = r.GetCounter("store.recoveries");
    mm.replay_events = r.GetCounter("store.replay_events");
    mm.replay_records = r.GetCounter("store.replay_records");
    return mm;
  }();
  return m;
}

// Checkpoint file magic: "PCK" + version byte.  Version 2 added the
// group-operations sections (groups, local memberships, envars, barrier
// epochs); a v1 checkpoint fails decode and recovery starts from the
// journal alone.
constexpr uint32_t kCkptMagic = 0x324B4350;  // 'P' 'C' 'K' '2'

// --- shared-type field encoders --------------------------------------------
// Same field rules as core/wire.cc (little-endian, u32-length strings).
// Re-encoded here so the store does not depend on core's wire code.

void PutGPid(util::ByteWriter& w, const core::GPid& g) {
  w.Str(g.host);
  w.I32(g.pid);
}

std::optional<core::GPid> GetGPid(util::ByteReader& r) {
  auto host = r.Str();
  auto pid = r.I32();
  if (!host || !pid) return std::nullopt;
  core::GPid g;
  g.host = *host;
  g.pid = *pid;
  return g;
}

void PutHistEvent(util::ByteWriter& w, const core::HistEvent& ev) {
  w.U64(ev.at);
  w.U8(static_cast<uint8_t>(ev.kind));
  w.I32(ev.pid);
  w.I32(ev.other);
  w.U8(static_cast<uint8_t>(ev.sig));
  w.I32(ev.status);
  w.Str(ev.detail);
}

std::optional<core::HistEvent> GetHistEvent(util::ByteReader& r) {
  core::HistEvent ev;
  auto at = r.U64();
  auto kind = r.U8();
  auto pid = r.I32();
  auto other = r.I32();
  auto sig = r.U8();
  auto status = r.I32();
  auto detail = r.Str();
  if (!at || !kind || !pid || !other || !sig || !status || !detail) return std::nullopt;
  ev.at = *at;
  ev.kind = static_cast<host::KEvent>(*kind);
  ev.pid = *pid;
  ev.other = *other;
  ev.sig = static_cast<host::Signal>(*sig);
  ev.status = *status;
  ev.detail = std::move(*detail);
  return ev;
}

void PutTriggerSpec(util::ByteWriter& w, const core::TriggerSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.event_kind));
  w.I32(spec.subject_pid);
  w.U8(static_cast<uint8_t>(spec.action));
  w.U8(static_cast<uint8_t>(spec.action_signal));
  PutGPid(w, spec.action_target);
  w.Str(spec.migrate_dest);
  w.Str(spec.spawn_command);
  w.Str(spec.group);
}

std::optional<core::TriggerSpec> GetTriggerSpec(util::ByteReader& r) {
  core::TriggerSpec spec;
  auto kind = r.U8();
  auto pid = r.I32();
  auto action = r.U8();
  auto sig = r.U8();
  auto target = GetGPid(r);
  auto dest = r.Str();
  auto cmd = r.Str();
  auto group = r.Str();
  if (!kind || !pid || !action || !sig || !target || !dest || !cmd || !group)
    return std::nullopt;
  if (*action > static_cast<uint8_t>(core::TriggerAction::kSpawn)) return std::nullopt;
  spec.event_kind = static_cast<host::KEvent>(*kind);
  spec.subject_pid = *pid;
  spec.action = static_cast<core::TriggerAction>(*action);
  spec.action_signal = static_cast<host::Signal>(*sig);
  spec.action_target = std::move(*target);
  spec.migrate_dest = std::move(*dest);
  spec.spawn_command = std::move(*cmd);
  spec.group = std::move(*group);
  return spec;
}

// Marks `gpid` exited in `group`'s member list, appending the member if
// it was never journaled (exit surviving a rollback race).
void ApplyGroupExit(RecoveredState& st, const std::string& group,
                    const core::GPid& gpid, int32_t status) {
  auto& members = st.groups[group];
  for (auto& m : members) {
    if (m.gpid == gpid) {
      m.exited = true;
      m.exit_status = status;
      return;
    }
  }
  members.push_back(GroupMemberHint{gpid, true, status});
}

void PutRusageRecord(util::ByteWriter& w, const core::RusageRecord& rec) {
  PutGPid(w, rec.gpid);
  w.Str(rec.command);
  w.I32(rec.exit_status);
  w.Bool(rec.killed_by_signal);
  w.U8(static_cast<uint8_t>(rec.death_signal));
  w.U64(rec.start_time);
  w.U64(rec.end_time);
  w.U64(static_cast<uint64_t>(rec.rusage.cpu_time));
  w.U64(rec.rusage.messages_sent);
  w.U64(rec.rusage.messages_received);
  w.U64(rec.rusage.files_opened);
  w.U64(rec.rusage.max_rss_kb);
  w.U64(rec.rusage.forks);
}

std::optional<core::RusageRecord> GetRusageRecord(util::ByteReader& r) {
  core::RusageRecord rec;
  auto gpid = GetGPid(r);
  auto command = r.Str();
  auto status = r.I32();
  auto killed = r.Bool();
  auto sig = r.U8();
  auto start = r.U64();
  auto end = r.U64();
  auto cpu = r.U64();
  auto sent = r.U64();
  auto recv = r.U64();
  auto files = r.U64();
  auto rss = r.U64();
  auto forks = r.U64();
  if (!gpid || !command || !status || !killed || !sig || !start || !end || !cpu ||
      !sent || !recv || !files || !rss || !forks)
    return std::nullopt;
  rec.gpid = std::move(*gpid);
  rec.command = std::move(*command);
  rec.exit_status = *status;
  rec.killed_by_signal = *killed;
  rec.death_signal = static_cast<host::Signal>(*sig);
  rec.start_time = *start;
  rec.end_time = *end;
  rec.rusage.cpu_time = static_cast<sim::SimDuration>(*cpu);
  rec.rusage.messages_sent = *sent;
  rec.rusage.messages_received = *recv;
  rec.rusage.files_opened = *files;
  rec.rusage.max_rss_kb = *rss;
  rec.rusage.forks = *forks;
  return rec;
}

// --- record application ------------------------------------------------------

// Applies one decoded journal payload to `st`.  Returns false when the
// payload is malformed (a CRC-valid frame whose fields do not decode —
// should not happen, but a store must never crash its manager).
bool ApplyRecord(RecoveredState& st, const std::vector<uint8_t>& payload) {
  util::ByteReader r(payload);
  auto seq = r.U64();
  auto type = r.U8();
  if (!seq || !type) return false;
  if (*seq <= st.last_seq && st.found) {
    // Pre-checkpoint record surviving an interrupted compaction: the
    // checkpoint already covers it.
    return true;
  }
  switch (static_cast<RecordType>(*type)) {
    case RecordType::kBoot: {
      auto gen = r.U32();
      if (!gen) return false;
      // A new kernel generation means every process of the previous one
      // died with the host; those pids may be reused, so the genealogy
      // hints are void.  History, triggers, rusage and the CCS hint
      // survive — that is the point of the store.
      if (*gen != st.generation) {
        st.procs.clear();
        st.remote_children.clear();
      }
      st.generation = *gen;
      break;
    }
    case RecordType::kEvent: {
      auto ev = GetHistEvent(r);
      if (!ev) return false;
      st.events.push_back(std::move(*ev));
      break;
    }
    case RecordType::kTriggerInstall: {
      auto id = r.U64();
      auto spec = GetTriggerSpec(r);
      if (!id || !spec) return false;
      st.triggers[*id] = std::move(*spec);
      break;
    }
    case RecordType::kTriggerRemove: {
      auto id = r.U64();
      if (!id) return false;
      st.triggers.erase(*id);
      break;
    }
    case RecordType::kRusage: {
      auto rec = GetRusageRecord(r);
      if (!rec) return false;
      st.rusage.push_back(std::move(*rec));
      break;
    }
    case RecordType::kProcNew: {
      auto pid = r.I32();
      auto parent = GetGPid(r);
      auto command = r.Str();
      if (!pid || !parent || !command) return false;
      st.procs[*pid] = ProcHint{std::move(*parent), std::move(*command)};
      break;
    }
    case RecordType::kProcExit: {
      auto pid = r.I32();
      if (!pid) return false;
      st.procs.erase(*pid);
      break;
    }
    case RecordType::kRemoteChild: {
      auto pid = r.I32();
      auto child = GetGPid(r);
      if (!pid || !child) return false;
      st.remote_children.emplace_back(*pid, std::move(*child));
      break;
    }
    case RecordType::kCcs: {
      auto ccs = r.Str();
      if (!ccs) return false;
      st.ccs_host = std::move(*ccs);
      break;
    }
    case RecordType::kGroupMember: {
      auto group = r.Str();
      auto gpid = GetGPid(r);
      if (!group || !gpid) return false;
      st.groups[*group].push_back(GroupMemberHint{std::move(*gpid), false, 0});
      break;
    }
    case RecordType::kGroupExit: {
      auto group = r.Str();
      auto gpid = GetGPid(r);
      auto status = r.I32();
      if (!group || !gpid || !status) return false;
      ApplyGroupExit(st, *group, *gpid, *status);
      break;
    }
    case RecordType::kGroupLocalMember: {
      auto pid = r.I32();
      auto group = r.Str();
      auto coord = r.Str();
      if (!pid || !group || !coord) return false;
      st.group_local[*pid] = LocalMemberHint{std::move(*group), std::move(*coord)};
      break;
    }
    case RecordType::kGroupLocalRemove: {
      auto pid = r.I32();
      if (!pid) return false;
      st.group_local.erase(*pid);
      break;
    }
    case RecordType::kEnvar: {
      auto key = r.Str();
      auto value = r.Str();
      auto version = r.U64();
      auto origin = r.Str();
      if (!key || !value || !version || !origin) return false;
      st.envars[*key] = EnvarHint{std::move(*value), *version, std::move(*origin)};
      break;
    }
    case RecordType::kBarrierEpoch: {
      auto name = r.Str();
      auto epoch = r.U64();
      if (!name || !epoch) return false;
      uint64_t& e = st.barrier_epochs[*name];
      if (*epoch > e) e = *epoch;
      break;
    }
    default:
      return false;
  }
  st.last_seq = *seq;
  st.found = true;
  return true;
}

std::string EncodeCheckpoint(const RecoveredState& st) {
  util::ByteWriter w;
  w.U32(kCkptMagic);
  w.U64(st.last_seq);
  w.U32(st.generation);
  w.Str(st.ccs_host);
  w.U32(static_cast<uint32_t>(st.events.size()));
  for (const auto& ev : st.events) PutHistEvent(w, ev);
  w.U32(static_cast<uint32_t>(st.triggers.size()));
  for (const auto& [id, spec] : st.triggers) {
    w.U64(id);
    PutTriggerSpec(w, spec);
  }
  w.U32(static_cast<uint32_t>(st.rusage.size()));
  for (const auto& rec : st.rusage) PutRusageRecord(w, rec);
  w.U32(static_cast<uint32_t>(st.procs.size()));
  for (const auto& [pid, hint] : st.procs) {
    w.I32(pid);
    PutGPid(w, hint.logical_parent);
    w.Str(hint.command);
  }
  w.U32(static_cast<uint32_t>(st.remote_children.size()));
  for (const auto& [pid, child] : st.remote_children) {
    w.I32(pid);
    PutGPid(w, child);
  }
  w.U32(static_cast<uint32_t>(st.groups.size()));
  for (const auto& [name, members] : st.groups) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(members.size()));
    for (const auto& m : members) {
      PutGPid(w, m.gpid);
      w.Bool(m.exited);
      w.I32(m.exit_status);
    }
  }
  w.U32(static_cast<uint32_t>(st.group_local.size()));
  for (const auto& [pid, hint] : st.group_local) {
    w.I32(pid);
    w.Str(hint.group);
    w.Str(hint.coordinator);
  }
  w.U32(static_cast<uint32_t>(st.envars.size()));
  for (const auto& [key, e] : st.envars) {
    w.Str(key);
    w.Str(e.value);
    w.U64(e.version);
    w.Str(e.origin);
  }
  w.U32(static_cast<uint32_t>(st.barrier_epochs.size()));
  for (const auto& [name, epoch] : st.barrier_epochs) {
    w.Str(name);
    w.U64(epoch);
  }
  std::vector<uint8_t> body = w.Take();
  return std::string(body.begin(), body.end());
}

bool DecodeCheckpoint(const std::string& content, RecoveredState& st) {
  std::vector<uint8_t> bytes(content.begin(), content.end());
  util::ByteReader r(bytes);
  auto magic = r.U32();
  if (!magic || *magic != kCkptMagic) return false;
  auto seq = r.U64();
  auto gen = r.U32();
  auto ccs = r.Str();
  if (!seq || !gen || !ccs) return false;
  RecoveredState out;
  out.last_seq = *seq;
  out.generation = *gen;
  out.ccs_host = std::move(*ccs);
  auto nev = r.U32();
  if (!nev) return false;
  for (uint32_t i = 0; i < *nev; ++i) {
    auto ev = GetHistEvent(r);
    if (!ev) return false;
    out.events.push_back(std::move(*ev));
  }
  auto ntr = r.U32();
  if (!ntr) return false;
  for (uint32_t i = 0; i < *ntr; ++i) {
    auto id = r.U64();
    auto spec = GetTriggerSpec(r);
    if (!id || !spec) return false;
    out.triggers[*id] = std::move(*spec);
  }
  auto nru = r.U32();
  if (!nru) return false;
  for (uint32_t i = 0; i < *nru; ++i) {
    auto rec = GetRusageRecord(r);
    if (!rec) return false;
    out.rusage.push_back(std::move(*rec));
  }
  auto npr = r.U32();
  if (!npr) return false;
  for (uint32_t i = 0; i < *npr; ++i) {
    auto pid = r.I32();
    auto parent = GetGPid(r);
    auto command = r.Str();
    if (!pid || !parent || !command) return false;
    out.procs[*pid] = ProcHint{std::move(*parent), std::move(*command)};
  }
  auto nrc = r.U32();
  if (!nrc) return false;
  for (uint32_t i = 0; i < *nrc; ++i) {
    auto pid = r.I32();
    auto child = GetGPid(r);
    if (!pid || !child) return false;
    out.remote_children.emplace_back(*pid, std::move(*child));
  }
  auto ngr = r.U32();
  if (!ngr) return false;
  for (uint32_t i = 0; i < *ngr; ++i) {
    auto name = r.Str();
    auto nm = r.U32();
    if (!name || !nm) return false;
    auto& members = out.groups[*name];
    for (uint32_t j = 0; j < *nm; ++j) {
      auto gpid = GetGPid(r);
      auto exited = r.Bool();
      auto status = r.I32();
      if (!gpid || !exited || !status) return false;
      members.push_back(GroupMemberHint{std::move(*gpid), *exited, *status});
    }
  }
  auto ngl = r.U32();
  if (!ngl) return false;
  for (uint32_t i = 0; i < *ngl; ++i) {
    auto pid = r.I32();
    auto group = r.Str();
    auto coord = r.Str();
    if (!pid || !group || !coord) return false;
    out.group_local[*pid] = LocalMemberHint{std::move(*group), std::move(*coord)};
  }
  auto nenv = r.U32();
  if (!nenv) return false;
  for (uint32_t i = 0; i < *nenv; ++i) {
    auto key = r.Str();
    auto value = r.Str();
    auto version = r.U64();
    auto origin = r.Str();
    if (!key || !value || !version || !origin) return false;
    out.envars[*key] = EnvarHint{std::move(*value), *version, std::move(*origin)};
  }
  auto nbar = r.U32();
  if (!nbar) return false;
  for (uint32_t i = 0; i < *nbar; ++i) {
    auto name = r.Str();
    auto epoch = r.U64();
    if (!name || !epoch) return false;
    out.barrier_epochs[*name] = *epoch;
  }
  out.found = true;
  st = std::move(out);
  return true;
}

}  // namespace

LpmStore::LpmStore(host::Disk disk, StoreConfig config)
    : disk_(disk),
      config_(config),
      journal_(disk, kJournalFile, config.group_commit) {}

RecoveredState LpmStore::Recover(const host::Disk& disk) {
  Metrics().recoveries->Inc();
  RecoveredState st;
  if (auto ckpt = disk.Read(kCheckpointFile)) {
    // A checkpoint is written atomically-durably (Filesystem::Write), so
    // a decode failure means a format change, not a tear; start empty.
    DecodeCheckpoint(*ckpt, st);
  }
  Journal::Replayed replayed = Journal::Replay(disk, kJournalFile);
  for (const auto& payload : replayed.payloads) {
    if (ApplyRecord(st, payload)) ++st.replayed_records;
  }
  st.torn_bytes = replayed.torn_bytes;
  Metrics().replay_records->Inc(st.replayed_records);
  Metrics().replay_events->Inc(st.events.size());
  return st;
}

void LpmStore::Open(const RecoveredState& recovered, uint32_t generation) {
  mirror_ = recovered;
  mirror_.replayed_records = 0;
  mirror_.torn_bytes = 0;
  seq_ = recovered.last_seq;
  open_ = true;
  if (generation != mirror_.generation) {
    mirror_.procs.clear();
    mirror_.remote_children.clear();
    // Local group memberships are pid-keyed; a new generation voids them
    // (coordinated groups, envars and barrier epochs survive — that is
    // the point of journaling them).
    mirror_.group_local.clear();
  }
  mirror_.generation = generation;
  // Checkpoint-on-open serves two purposes.  It bounds the next replay
  // to this incarnation's records, and — crucially — it truncates any
  // torn tail the previous crash left in the journal file: appending
  // the boot record AFTER surviving garbage would hide it (and every
  // later record) from the next replay, which stops at the first bad
  // frame.
  Checkpoint();
  util::ByteWriter w;
  w.U32(generation);
  AppendRecord(RecordType::kBoot, w.Take());
  // The boot record is a natural sync point: after it is durable, any
  // later replay knows which generation the genealogy hints belong to.
  journal_.Sync();
}

void LpmStore::AppendRecord(RecordType type, const std::vector<uint8_t>& fields) {
  if (!open_) return;  // nothing may be journaled before Open() resumes seq
  util::ByteWriter w;
  w.U64(++seq_);
  w.U8(static_cast<uint8_t>(type));
  std::vector<uint8_t> payload = w.Take();
  payload.insert(payload.end(), fields.begin(), fields.end());
  journal_.Append(payload);
  Metrics().records->Inc();
  mirror_.last_seq = seq_;
  mirror_.found = true;
  if (config_.checkpoint_every != 0 && ++records_since_ckpt_ >= config_.checkpoint_every)
    Checkpoint();
}

void LpmStore::RecordEvent(const core::HistEvent& ev) {
  util::ByteWriter w;
  PutHistEvent(w, ev);
  mirror_.events.push_back(ev);
  // Mirror the EventLog's ring bound so checkpoints stay proportional
  // to the history a query could actually return.
  while (mirror_.events.size() > config_.event_capacity)
    mirror_.events.erase(mirror_.events.begin());
  AppendRecord(RecordType::kEvent, w.Take());
}

void LpmStore::RecordTriggerInstall(uint64_t id, const core::TriggerSpec& spec) {
  util::ByteWriter w;
  w.U64(id);
  PutTriggerSpec(w, spec);
  mirror_.triggers[id] = spec;
  AppendRecord(RecordType::kTriggerInstall, w.Take());
  // A trigger acknowledged to the user must survive a crash: explicit
  // sync point (the paper's "history dependent events" are a contract).
  journal_.Sync();
}

void LpmStore::RecordTriggerRemove(uint64_t id) {
  util::ByteWriter w;
  w.U64(id);
  mirror_.triggers.erase(id);
  AppendRecord(RecordType::kTriggerRemove, w.Take());
}

void LpmStore::RecordRusage(const core::RusageRecord& rec) {
  util::ByteWriter w;
  PutRusageRecord(w, rec);
  mirror_.rusage.push_back(rec);
  AppendRecord(RecordType::kRusage, w.Take());
}

void LpmStore::RecordProcNew(host::Pid pid, const core::GPid& logical_parent,
                             const std::string& command) {
  util::ByteWriter w;
  w.I32(pid);
  PutGPid(w, logical_parent);
  w.Str(command);
  mirror_.procs[pid] = ProcHint{logical_parent, command};
  AppendRecord(RecordType::kProcNew, w.Take());
}

void LpmStore::RecordProcExit(host::Pid pid) {
  util::ByteWriter w;
  w.I32(pid);
  mirror_.procs.erase(pid);
  AppendRecord(RecordType::kProcExit, w.Take());
}

void LpmStore::RecordRemoteChild(host::Pid parent, const core::GPid& child) {
  util::ByteWriter w;
  w.I32(parent);
  PutGPid(w, child);
  mirror_.remote_children.emplace_back(parent, child);
  AppendRecord(RecordType::kRemoteChild, w.Take());
}

void LpmStore::RecordCcs(const std::string& ccs_host) {
  util::ByteWriter w;
  w.Str(ccs_host);
  mirror_.ccs_host = ccs_host;
  AppendRecord(RecordType::kCcs, w.Take());
}

void LpmStore::RecordGroupMember(const std::string& group, const core::GPid& gpid) {
  util::ByteWriter w;
  w.Str(group);
  PutGPid(w, gpid);
  mirror_.groups[group].push_back(GroupMemberHint{gpid, false, 0});
  AppendRecord(RecordType::kGroupMember, w.Take());
}

void LpmStore::RecordGroupExit(const std::string& group, const core::GPid& gpid,
                               int32_t exit_status) {
  util::ByteWriter w;
  w.Str(group);
  PutGPid(w, gpid);
  w.I32(exit_status);
  ApplyGroupExit(mirror_, group, gpid, exit_status);
  AppendRecord(RecordType::kGroupExit, w.Take());
}

void LpmStore::RecordGroupLocalMember(host::Pid pid, const std::string& group,
                                      const std::string& coordinator) {
  util::ByteWriter w;
  w.I32(pid);
  w.Str(group);
  w.Str(coordinator);
  mirror_.group_local[pid] = LocalMemberHint{group, coordinator};
  AppendRecord(RecordType::kGroupLocalMember, w.Take());
}

void LpmStore::RecordGroupLocalRemove(host::Pid pid) {
  util::ByteWriter w;
  w.I32(pid);
  mirror_.group_local.erase(pid);
  AppendRecord(RecordType::kGroupLocalRemove, w.Take());
}

void LpmStore::RecordEnvar(const std::string& key, const std::string& value,
                           uint64_t version, const std::string& origin) {
  util::ByteWriter w;
  w.Str(key);
  w.Str(value);
  w.U64(version);
  w.Str(origin);
  mirror_.envars[key] = EnvarHint{value, version, origin};
  AppendRecord(RecordType::kEnvar, w.Take());
}

void LpmStore::RecordBarrierEpoch(const std::string& name, uint64_t epoch) {
  util::ByteWriter w;
  w.Str(name);
  w.U64(epoch);
  uint64_t& e = mirror_.barrier_epochs[name];
  if (epoch > e) e = epoch;
  AppendRecord(RecordType::kBarrierEpoch, w.Take());
  // A barrier verdict acknowledged to anyone must survive a crash —
  // epoch reuse after restart would split the release decision.
  journal_.Sync();
}

void LpmStore::Checkpoint() {
  if (!open_) return;
  records_since_ckpt_ = 0;
  std::string body = EncodeCheckpoint(mirror_);
  // Order is the whole crash-safety argument: (1) the checkpoint lands
  // atomically-durably under a name replay reads first; (2) only then is
  // the journal compacted.  A crash between the two leaves stale journal
  // records whose seq <= last_seq — replay skips them.
  disk_.Write(kCheckpointFile, body);
  Metrics().checkpoints->Inc();
  Metrics().checkpoint_bytes->Inc(body.size());
  journal_.Reset();
  Metrics().compactions->Inc();
}

}  // namespace ppm::store

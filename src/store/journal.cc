#include "store/journal.h"

#include "obs/metrics.h"
#include "obs/prof.h"
#include "util/bytes.h"

namespace ppm::store {

namespace {

struct JournalMetrics {
  obs::Counter* appends;
  obs::Counter* append_bytes;
  obs::Counter* fsyncs;
  obs::Counter* fsync_bytes;
  obs::Counter* replays;
  obs::Counter* replay_frames;
  obs::Counter* replay_torn_bytes;
};

JournalMetrics& Metrics() {
  static JournalMetrics m = [] {
    auto& r = obs::Registry::Instance();
    JournalMetrics mm;
    mm.appends = r.GetCounter("store.journal.appends");
    mm.append_bytes = r.GetCounter("store.append_bytes");
    mm.fsyncs = r.GetCounter("store.fsyncs");
    mm.fsync_bytes = r.GetCounter("store.fsync_bytes");
    mm.replays = r.GetCounter("store.replays");
    mm.replay_frames = r.GetCounter("store.replay_frames");
    mm.replay_torn_bytes = r.GetCounter("store.replay_torn_bytes");
    return mm;
  }();
  return m;
}

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

}  // namespace

Journal::Journal(host::Disk disk, std::string name, uint32_t group_commit)
    : disk_(disk), name_(std::move(name)), group_commit_(group_commit ? group_commit : 1) {}

bool Journal::Append(const std::vector<uint8_t>& payload) {
  PPM_PROF_SCOPE("store.journal.append");
  util::ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(util::Crc32(payload));
  std::vector<uint8_t> frame = w.Take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  disk_.Append(name_, std::string(frame.begin(), frame.end()));
  Metrics().appends->Inc();
  Metrics().append_bytes->Inc(frame.size());
  if (++pending_ < group_commit_) return false;
  Sync();
  return true;
}

size_t Journal::Sync() {
  PPM_PROF_SCOPE("store.journal.sync");
  pending_ = 0;
  size_t flushed = disk_.Sync(name_);
  Metrics().fsyncs->Inc();
  Metrics().fsync_bytes->Inc(flushed);
  if (sync_hook_) sync_hook_(flushed);
  return flushed;
}

void Journal::Reset() {
  pending_ = 0;
  disk_.Write(name_, "");
}

Journal::Replayed Journal::Replay(const host::Disk& disk, const std::string& name) {
  PPM_PROF_SCOPE("store.journal.replay");
  Replayed out;
  Metrics().replays->Inc();
  std::optional<std::string> content = disk.Read(name);
  if (!content) return out;
  const auto* data = reinterpret_cast<const uint8_t*>(content->data());
  size_t pos = 0;
  const size_t size = content->size();
  while (pos + kFrameHeaderBytes <= size) {
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= static_cast<uint32_t>(data[pos + 4 + i]) << (8 * i);
    if (pos + kFrameHeaderBytes + len > size) break;        // torn mid-payload
    if (util::Crc32(data + pos + kFrameHeaderBytes, len) != crc) break;  // corrupt
    out.payloads.emplace_back(data + pos + kFrameHeaderBytes,
                              data + pos + kFrameHeaderBytes + len);
    pos += kFrameHeaderBytes + len;
  }
  out.torn_bytes = size - pos;
  Metrics().replay_frames->Inc(out.payloads.size());
  Metrics().replay_torn_bytes->Inc(out.torn_bytes);
  return out;
}

}  // namespace ppm::store

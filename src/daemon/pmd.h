// pmd.h — the process manager daemon.
//
// One per host, created on demand by inetd and "present in an
// installation as long as there is any LPM present" (paper Section 3).
// pmd is the trusted name server of the design: it owns the host's
// uid → LPM registry, creates LPMs through a factory installed by the
// PPM layer, and hands out accept addresses and session tokens only to
// requesters that pass user-level authentication (.rhosts for remote
// requests).
//
// The registry is durable by default.  The paper notes that keeping it
// in stable storage would let the mechanism survive pmd-only crashes at
// the price of extra LPM-creation overhead, but left that unimplemented;
// we implement it behind PmdConfig::stable_storage so the trade-off can
// be measured (bench_ablate_pmd_storage) and the failure mode of the
// volatile variant demonstrated (a duplicate LPM after a pmd restart —
// see daemon_test's PmdCrashTest, which opts out of durability to show
// it).  Since the durable state store landed (src/store/), stable
// registrations are the default: a pmd restart re-reads pmd.state and
// re-binds to still-live LPMs instead of minting duplicates.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "daemon/protocol.h"
#include "host/host.h"

namespace ppm::daemon {

// What the PPM layer's factory returns when pmd asks it to create an LPM.
struct LpmHandle {
  host::Pid pid = host::kNoPid;
  net::SocketAddr accept_addr;
};

// Creates an LPM process for `uid` on `host` with the given session
// token, returning its pid and pre-assigned accept address.  Installed
// by the PPM layer (keeps this module independent of the PPM core).
using LpmFactory =
    std::function<LpmHandle(host::Host& host, host::Uid uid, uint64_t token)>;

struct PmdConfig {
  // Keep the registry in a disk file so a pmd-only crash is survivable.
  // On by default; turn off to reproduce the paper's volatile pmd and
  // its duplicate-LPM failure mode.
  bool stable_storage = true;
  // The paper: pmd "is present in an installation as long as there is
  // any LPM present".  Once the registry empties, pmd lingers this long
  // and then exits; inetd re-creates it on the next request.  0 = never
  // exit.
  sim::SimDuration idle_exit = sim::Seconds(600);
  // Overload protection: requests in flight (charged but not yet
  // replied) beyond this bound are shed with an explicit busy response
  // and a retry-after hint.  0 = unbounded (the pre-protection pmd).
  size_t max_inflight = 32;
};

struct PmdStats {
  uint64_t requests = 0;
  uint64_t lpms_created = 0;
  uint64_t auth_failures = 0;
  uint64_t stable_writes = 0;
  uint64_t requests_shed = 0;  // rejected at admission (inflight window full)
};

class Pmd : public host::ProcessBody {
 public:
  Pmd(host::Host& host, PmdConfig config, LpmFactory factory);

  void OnStart() override;
  void OnShutdown() override;

  // Handles one step-(2) request; `reply` fires after the modelled
  // processing costs (lookup, optional LPM fork+exec, optional stable
  // write).  `local` marks a request arriving from the host itself, for
  // which .rhosts is not consulted.
  void EnsureLpm(const LpmRequest& request, bool local,
                 std::function<void(const LpmResponse&)> reply);

  // Called by an LPM when it exits (time-to-live expiry): removes the
  // registry entry.
  void Unregister(host::Uid uid, host::Pid lpm_pid);

  // The registered LPM for `uid`, if any (liveness-checked).
  std::optional<LpmHandle> Lookup(host::Uid uid);

  size_t registry_size() const { return registry_.size(); }
  const PmdStats& stats() const { return stats_; }

  static constexpr const char* kStateFile = "pmd.state";
  static constexpr host::Uid kStateOwner = host::kRootUid;

 private:
  struct Entry {
    host::Pid pid;
    net::SocketAddr accept_addr;
    uint64_t token;
  };

  // User-level authentication (paper Section 4): the account must exist;
  // remote requesters must be the same user and be listed in the
  // account's ~/.rhosts as "<origin_host> <origin_user>".
  bool Authenticate(const LpmRequest& request, bool local, host::Uid* uid,
                    std::string* error) const;

  void SaveRegistry();
  void LoadRegistry();
  void ReviewIdleExit();

  // Schedules `reply(resp)` after `cost`, counting it against the
  // inflight window until it fires.  The counter is shared-ptr-owned so
  // a reply scheduled before pmd's idle exit can still settle safely.
  void ReplyAfter(sim::SimDuration cost, LpmResponse resp,
                  std::function<void(const LpmResponse&)> reply);

  host::Host& host_;
  PmdConfig config_;
  LpmFactory factory_;
  std::map<host::Uid, Entry> registry_;
  sim::EventId idle_event_ = sim::kInvalidEventId;
  PmdStats stats_;
  std::shared_ptr<size_t> inflight_ = std::make_shared<size_t>(0);
};

}  // namespace ppm::daemon

#include "daemon/pmd.h"

#include <sstream>

#include "host/calibration.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "util/log.h"
#include "util/panic.h"
#include "util/strings.h"

namespace ppm::daemon {

using host::BaseCosts;

namespace {
struct PmdCounters {
  obs::Counter* requests;
  obs::Counter* auth_failures;
  obs::Counter* lookup_hits;
  obs::Counter* lookup_misses;
  obs::Counter* lpms_created;
  obs::Counter* stable_writes;
  obs::Counter* requests_shed;
};

PmdCounters& Counters() {
  static PmdCounters c = {
      obs::Registry::Instance().GetCounter("pmd.requests"),
      obs::Registry::Instance().GetCounter("pmd.auth.failures"),
      obs::Registry::Instance().GetCounter("pmd.lookup.hits"),
      obs::Registry::Instance().GetCounter("pmd.lookup.misses"),
      obs::Registry::Instance().GetCounter("pmd.lpms.created"),
      obs::Registry::Instance().GetCounter("pmd.stable.writes"),
      obs::Registry::Instance().GetCounter("pmd.shed.requests"),
  };
  return c;
}
}  // namespace

Pmd::Pmd(host::Host& host, PmdConfig config, LpmFactory factory)
    : host_(host), config_(config), factory_(std::move(factory)) {}

void Pmd::OnStart() {
  if (config_.stable_storage) LoadRegistry();
}

void Pmd::OnShutdown() {
  // Nothing: the registry either lives on disk (stable storage) or is
  // deliberately lost, reproducing the paper's discussion of pmd crash
  // consequences.
}

bool Pmd::Authenticate(const LpmRequest& request, bool local, host::Uid* uid,
                       std::string* error) const {
  auto target_uid = host_.users().UidOf(request.user);
  if (!target_uid) {
    *error = "unknown user: " + request.user;
    return false;
  }
  *uid = *target_uid;
  if (local) return true;
  // Remote requests: same account name, and permitted by ~/.rhosts.
  if (request.origin_user != request.user) {
    *error = "user-level masquerade rejected: " + request.origin_user +
             " requested LPM of " + request.user;
    return false;
  }
  auto rhosts = host_.fs().Read(*target_uid, ".rhosts");
  if (!rhosts) {
    *error = "no .rhosts for " + request.user + " on " + host_.name();
    return false;
  }
  for (const std::string& raw : util::Split(*rhosts, '\n')) {
    std::string line = util::Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto fields = util::Split(line, ' ');
    if (fields.size() != 2) continue;
    if (fields[0] == request.origin_host && fields[1] == request.origin_user) return true;
  }
  *error = "rejected by .rhosts: " + request.origin_host + " " + request.origin_user;
  return false;
}

void Pmd::ReplyAfter(sim::SimDuration cost, LpmResponse resp,
                     std::function<void(const LpmResponse&)> reply) {
  ++*inflight_;
  host_.simulator().ScheduleIn(
      cost,
      [inflight = inflight_, reply = std::move(reply), resp] {
        --*inflight;
        reply(resp);
      },
      "pmd-reply");
}

void Pmd::EnsureLpm(const LpmRequest& request, bool local,
                    std::function<void(const LpmResponse&)> reply) {
  ++stats_.requests;
  Counters().requests->Inc();

  // Admission control: a full inflight window sheds the request with an
  // explicit busy + retry-after before any lookup work is charged.  The
  // shed reply itself is immediate and does not occupy the window.
  if (config_.max_inflight != 0 && *inflight_ >= config_.max_inflight) {
    ++stats_.requests_shed;
    Counters().requests_shed->Inc();
    obs::FlightRecorder::Instance().Record(obs::FlightKind::kRequestShed,
                                           host_.name(), "pmd", 0, 0, *inflight_);
    LpmResponse busy;
    busy.ok = false;
    busy.busy = true;
    busy.error = "pmd busy";
    busy.retry_after_us = 200'000;
    host_.simulator().ScheduleIn(0, [reply = std::move(reply), busy] { reply(busy); },
                                 "pmd-reply");
    return;
  }

  sim::SimDuration cost = host_.kernel().Charge(pid(), BaseCosts::kPmdLookup);

  LpmResponse resp;
  host::Uid uid = -1;
  std::string error;
  if (!Authenticate(request, local, &uid, &error)) {
    ++stats_.auth_failures;
    Counters().auth_failures->Inc();
    resp.ok = false;
    resp.error = error;
    ReplyAfter(cost, resp, std::move(reply));
    return;
  }

  // "…after verifying that there is no LPM for that user in that host.
  // If an appropriate LPM is found in the host, its accept address is
  // returned."  Liveness is re-checked: the registry may name a pid that
  // died without unregistering (LPM crash).
  auto it = registry_.find(uid);
  if (it != registry_.end()) {
    const host::Process* proc = host_.kernel().Find(it->second.pid);
    if (proc && proc->alive()) {
      Counters().lookup_hits->Inc();
      resp.ok = true;
      resp.accept_addr = it->second.accept_addr;
      resp.token = it->second.token;
      resp.lpm_pid = it->second.pid;
      resp.created = false;
      ReplyAfter(cost, resp, std::move(reply));
      return;
    }
    registry_.erase(it);
  }

  // Create the LPM (step 3).  The factory pre-assigns the accept address
  // so pmd can answer without waiting for the LPM to come up.
  Counters().lookup_misses->Inc();
  uint64_t token = host_.simulator().rng().Next();
  LpmHandle handle = factory_(host_, uid, token);
  PPM_CHECK_MSG(handle.pid != host::kNoPid, "LPM factory failed");
  registry_[uid] = Entry{handle.pid, handle.accept_addr, token};
  ReviewIdleExit();
  ++stats_.lpms_created;
  Counters().lpms_created->Inc();
  cost += host_.kernel().Charge(pid(), BaseCosts::kForkExec);
  if (config_.stable_storage) {
    SaveRegistry();
    ++stats_.stable_writes;
    Counters().stable_writes->Inc();
    cost += host_.kernel().Charge(pid(), BaseCosts::kPmdStableWrite);
  }

  resp.ok = true;
  resp.accept_addr = handle.accept_addr;
  resp.token = token;
  resp.lpm_pid = handle.pid;
  resp.created = true;
  PPM_DEBUG("pmd") << "created LPM pid " << handle.pid << " for uid " << uid << " on "
                   << host_.name();
  ReplyAfter(cost, resp, std::move(reply));
}

void Pmd::Unregister(host::Uid uid, host::Pid lpm_pid) {
  auto it = registry_.find(uid);
  if (it != registry_.end() && it->second.pid == lpm_pid) {
    registry_.erase(it);
    if (config_.stable_storage) SaveRegistry();
    ReviewIdleExit();
  }
}

void Pmd::ReviewIdleExit() {
  // "The process manager daemon is present in an installation as long
  // as there is any LPM present."  An empty registry starts the idle
  // countdown; any new LPM cancels it.
  if (config_.idle_exit == 0) return;
  if (!registry_.empty()) {
    host_.simulator().Cancel(idle_event_);
    idle_event_ = sim::kInvalidEventId;
    return;
  }
  if (idle_event_ != sim::kInvalidEventId) return;
  idle_event_ = host_.simulator().ScheduleIn(config_.idle_exit, [this] {
    idle_event_ = sim::kInvalidEventId;
    if (!host_.up() || !registry_.empty()) return;
    const host::Process* self = host_.kernel().Find(pid());
    if (!self || !self->alive()) return;
    PPM_DEBUG("pmd") << "no LPMs on " << host_.name() << "; pmd exiting";
    host_.kernel().Exit(pid(), 0);
  }, "pmd-idle-exit");
}

std::optional<LpmHandle> Pmd::Lookup(host::Uid uid) {
  auto it = registry_.find(uid);
  if (it == registry_.end()) return std::nullopt;
  const host::Process* proc = host_.kernel().Find(it->second.pid);
  if (!proc || !proc->alive()) return std::nullopt;
  return LpmHandle{it->second.pid, it->second.accept_addr};
}

void Pmd::SaveRegistry() {
  std::ostringstream out;
  for (const auto& [uid, entry] : registry_) {
    out << uid << ' ' << entry.pid << ' ' << entry.accept_addr.host << ' '
        << entry.accept_addr.port << ' ' << entry.token << '\n';
  }
  host_.fs().Write(kStateOwner, kStateFile, out.str());
}

void Pmd::LoadRegistry() {
  auto content = host_.fs().Read(kStateOwner, kStateFile);
  if (!content) return;
  for (const std::string& raw : util::Split(*content, '\n')) {
    std::string line = util::Trim(raw);
    if (line.empty()) continue;
    auto fields = util::Split(line, ' ');
    if (fields.size() != 5) continue;
    Entry entry;
    host::Uid uid;
    try {
      uid = std::stoi(fields[0]);
      entry.pid = std::stoi(fields[1]);
      entry.accept_addr.host = static_cast<net::HostId>(std::stoul(fields[2]));
      entry.accept_addr.port = static_cast<net::Port>(std::stoul(fields[3]));
      entry.token = std::stoull(fields[4]);
    } catch (...) {
      continue;  // tolerate a torn write
    }
    // Only resurrect entries whose LPM is still alive; after a *host*
    // crash the pids are stale and must not be trusted.
    const host::Process* proc = host_.kernel().Find(entry.pid);
    if (proc && proc->alive() && proc->uid == uid) registry_[uid] = entry;
  }
}

}  // namespace ppm::daemon

#include "daemon/protocol.h"

namespace ppm::daemon {

namespace {
constexpr uint8_t kReqMagic = 0x51;
constexpr uint8_t kRespMagic = 0x52;
}  // namespace

std::vector<uint8_t> LpmRequest::Serialize() const {
  util::ByteWriter w;
  w.U8(kReqMagic);
  w.Str(user);
  w.Str(origin_host);
  w.Str(origin_user);
  return w.Take();
}

std::optional<LpmRequest> LpmRequest::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kReqMagic) return std::nullopt;
  LpmRequest req;
  auto user = r.Str();
  auto oh = r.Str();
  auto ou = r.Str();
  if (!user || !oh || !ou || !r.AtEnd()) return std::nullopt;
  req.user = *user;
  req.origin_host = *oh;
  req.origin_user = *ou;
  return req;
}

std::vector<uint8_t> LpmResponse::Serialize() const {
  util::ByteWriter w;
  w.U8(kRespMagic);
  w.Bool(ok);
  w.Str(error);
  w.U32(accept_addr.host);
  w.U16(accept_addr.port);
  w.U64(token);
  w.I32(lpm_pid);
  w.Bool(created);
  return w.Take();
}

std::optional<LpmResponse> LpmResponse::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kRespMagic) return std::nullopt;
  LpmResponse resp;
  auto ok = r.Bool();
  auto error = r.Str();
  auto host = r.U32();
  auto port = r.U16();
  auto token = r.U64();
  auto pid = r.I32();
  auto created = r.Bool();
  if (!ok || !error || !host || !port || !token || !pid || !created || !r.AtEnd())
    return std::nullopt;
  resp.ok = *ok;
  resp.error = *error;
  resp.accept_addr = net::SocketAddr{*host, *port};
  resp.token = *token;
  resp.lpm_pid = *pid;
  resp.created = *created;
  return resp;
}

}  // namespace ppm::daemon

#include "daemon/protocol.h"

namespace ppm::daemon {

namespace {
constexpr uint8_t kReqMagic = 0x51;
constexpr uint8_t kRespMagic = 0x52;
}  // namespace

std::vector<uint8_t> LpmRequest::Serialize() const {
  util::ByteWriter w;
  w.U8(kReqMagic);
  w.Str(user);
  w.Str(origin_host);
  w.Str(origin_user);
  return w.Take();
}

std::optional<LpmRequest> LpmRequest::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kReqMagic) return std::nullopt;
  LpmRequest req;
  auto user = r.Str();
  auto oh = r.Str();
  auto ou = r.Str();
  if (!user || !oh || !ou || !r.AtEnd()) return std::nullopt;
  req.user = *user;
  req.origin_host = *oh;
  req.origin_user = *ou;
  return req;
}

std::vector<uint8_t> LpmResponse::Serialize() const {
  util::ByteWriter w;
  w.U8(kRespMagic);
  w.Bool(ok);
  w.Str(error);
  w.U32(accept_addr.host);
  w.U16(accept_addr.port);
  w.U64(token);
  w.I32(lpm_pid);
  w.Bool(created);
  // Overload-protection trailer (PR 8).  Appended after the original
  // fields so an old parser that stopped at `created` would still have
  // seen a well-formed prefix; our parser tolerates its absence for the
  // same reason in reverse.
  w.Bool(busy);
  w.U64(retry_after_us);
  return w.Take();
}

std::optional<LpmResponse> LpmResponse::Parse(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kRespMagic) return std::nullopt;
  LpmResponse resp;
  auto ok = r.Bool();
  auto error = r.Str();
  auto host = r.U32();
  auto port = r.U16();
  auto token = r.U64();
  auto pid = r.I32();
  auto created = r.Bool();
  if (!ok || !error || !host || !port || !token || !pid || !created)
    return std::nullopt;
  resp.ok = *ok;
  resp.error = *error;
  resp.accept_addr = net::SocketAddr{*host, *port};
  resp.token = *token;
  resp.lpm_pid = *pid;
  resp.created = *created;
  // Version-tolerant trailer: absent on frames from the original format.
  if (!r.AtEnd()) {
    auto busy = r.Bool();
    auto retry = r.U64();
    if (!busy || !retry || !r.AtEnd()) return std::nullopt;
    resp.busy = *busy;
    resp.retry_after_us = *retry;
  }
  return resp;
}

}  // namespace ppm::daemon

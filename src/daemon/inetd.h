// inetd.h — the inet daemon.
//
// Step (1) of LPM creation (paper Figure 2): requests arrive on inetd's
// well-known stream port; inetd passes them to the process manager
// daemon, *creating pmd if necessary*, and relays pmd's answer back over
// the requesting connection before closing it.  inetd itself is started
// at boot by the cluster layer, which is "an alternative to having a
// well known communications port" for pmd itself (paper footnote 5).
//
// The connection protocol is one-shot: one LpmRequest in, one
// LpmResponse out, server closes.
#pragma once

#include <set>

#include "daemon/pmd.h"
#include "daemon/protocol.h"
#include "host/host.h"
#include "net/network.h"

namespace ppm::daemon {

struct InetdStats {
  uint64_t connections = 0;
  uint64_t bad_requests = 0;
  uint64_t pmd_spawns = 0;
};

class Inetd : public host::ProcessBody {
 public:
  Inetd(host::Host& host, PmdConfig pmd_config, LpmFactory lpm_factory);

  void OnStart() override;
  void OnShutdown() override;

  // The current pmd body, spawning it first if dead or never started.
  Pmd& EnsurePmd();

  // The pmd body if alive, else nullptr (tests use this to kill it).
  Pmd* pmd();
  host::Pid pmd_pid() const { return pmd_pid_; }

  const InetdStats& stats() const { return stats_; }

 private:
  void HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes,
                     net::SocketAddr peer);

  host::Host& host_;
  PmdConfig pmd_config_;
  LpmFactory lpm_factory_;
  host::Pid pmd_pid_ = host::kNoPid;
  Pmd* pmd_body_ = nullptr;  // valid only while pmd_pid_ is alive
  std::set<net::ConnId> open_conns_;
  InetdStats stats_;
};

// Boots inetd on a host: spawns the daemon process (owned by root).
// Returns its pid.  Used by the cluster layer's boot function.
host::Pid StartInetd(host::Host& host, PmdConfig pmd_config, LpmFactory lpm_factory);

}  // namespace ppm::daemon

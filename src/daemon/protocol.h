// protocol.h — the inetd/pmd service protocol (paper Figure 2).
//
// Creating an LPM ab initio takes four steps:
//   (1) the requester (a tool, or a sibling LPM on another machine)
//       opens a stream connection to the target host's inetd and sends
//       an LpmRequest;
//   (2) inetd passes the request to the process manager daemon, pmd,
//       creating pmd first if necessary;
//   (3) pmd verifies that no LPM for that user exists on the host and
//       creates one if needed;
//   (4) pmd returns the LPM's accept address (plus, in our concrete
//       authentication scheme, a per-LPM session token).
//
// The token is what makes pmd a *trusted name server*: it is revealed
// only to requesters that pass the user-level authentication check, and
// a sibling LPM must present it when connecting to the accept address.
// This prevents user-level masquerade; host-level masquerade is not
// addressed, exactly as in the paper (Section 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.h"
#include "util/bytes.h"

namespace ppm::daemon {

struct LpmRequest {
  std::string user;         // target account on this host
  std::string origin_host;  // claimed origin (unverifiable: see header)
  std::string origin_user;  // claimed requesting account

  std::vector<uint8_t> Serialize() const;
  static std::optional<LpmRequest> Parse(const std::vector<uint8_t>& bytes);
};

struct LpmResponse {
  bool ok = false;
  std::string error;           // set when !ok
  net::SocketAddr accept_addr; // the LPM's accept socket
  uint64_t token = 0;          // session token for sibling authentication
  int32_t lpm_pid = -1;
  bool created = false;        // true if this request created the LPM
  // Overload protection: true when pmd shed the request at admission
  // (its inflight window was full); retry after the hinted backoff.
  // Serialized as a version-tolerant trailer — a frame without it parses
  // with both fields defaulted.
  bool busy = false;
  uint64_t retry_after_us = 0;

  std::vector<uint8_t> Serialize() const;
  static std::optional<LpmResponse> Parse(const std::vector<uint8_t>& bytes);
};

}  // namespace ppm::daemon

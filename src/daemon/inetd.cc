#include "daemon/inetd.h"

#include "host/calibration.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::daemon {

using host::BaseCosts;

Inetd::Inetd(host::Host& host, PmdConfig pmd_config, LpmFactory lpm_factory)
    : host_(host), pmd_config_(pmd_config), lpm_factory_(std::move(lpm_factory)) {}

void Inetd::OnStart() {
  net::Network& network = host_.network();
  network.Listen(host_.net_id(), net::kInetdPort,
                 [this](net::ConnId conn, net::SocketAddr peer) {
                   ++stats_.connections;
                   open_conns_.insert(conn);
                   net::ConnCallbacks cb;
                   cb.on_data = [this, peer](net::ConnId c, const std::vector<uint8_t>& bytes) {
                     HandleRequest(c, bytes, peer);
                   };
                   cb.on_close = [this](net::ConnId c, net::CloseReason) {
                     open_conns_.erase(c);
                   };
                   return cb;
                 });
}

void Inetd::OnShutdown() {
  net::Network& network = host_.network();
  if (host_.up()) {
    network.Unlisten(host_.net_id(), net::kInetdPort);
    for (net::ConnId c : open_conns_) network.Close(c);
  }
  open_conns_.clear();
}

Pmd& Inetd::EnsurePmd() {
  if (Pmd* existing = pmd()) return *existing;
  auto body = std::make_unique<Pmd>(host_, pmd_config_, lpm_factory_);
  Pmd* raw = body.get();
  pmd_pid_ = host_.kernel().Spawn(pid(), host::kRootUid, "pmd", std::move(body),
                                  host::ProcState::kSleeping);
  pmd_body_ = raw;
  ++stats_.pmd_spawns;
  return *raw;
}

Pmd* Inetd::pmd() {
  if (pmd_pid_ == host::kNoPid) return nullptr;
  const host::Process* proc = host_.kernel().Find(pmd_pid_);
  if (!proc || !proc->alive()) return nullptr;
  return pmd_body_;
}

void Inetd::HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes,
                          net::SocketAddr peer) {
  auto request = LpmRequest::Parse(bytes);
  if (!request) {
    ++stats_.bad_requests;
    host_.network().Close(conn);
    open_conns_.erase(conn);
    return;
  }
  bool local = peer.host == host_.net_id();
  sim::SimDuration dispatch = host_.kernel().Charge(pid(), BaseCosts::kInetdDispatch);

  // Step (2): pass to pmd, creating it if necessary.  Spawning pmd costs
  // a fork which this request waits out.
  bool pmd_was_alive = pmd() != nullptr;
  Pmd& daemon = EnsurePmd();
  if (!pmd_was_alive) {
    dispatch += host_.kernel().Charge(pid(), BaseCosts::kHandlerFork);
  }

  host::Host* host = &host_;
  net::ConnId reply_conn = conn;
  host_.simulator().ScheduleIn(dispatch, [this, host, reply_conn, request, local,
                                          &daemon] {
    // Re-validate: pmd (or the whole host) may have died while this
    // request sat in inetd's queue.
    if (!host->up() || pmd() != &daemon) return;
    daemon.EnsureLpm(*request, local, [this, host, reply_conn](const LpmResponse& resp) {
      if (!host->up()) return;
      host->network().Send(reply_conn, resp.Serialize());
      host->network().Close(reply_conn);
      open_conns_.erase(reply_conn);
    });
  }, "inetd-dispatch");
}

host::Pid StartInetd(host::Host& host, PmdConfig pmd_config, LpmFactory lpm_factory) {
  auto body = std::make_unique<Inetd>(host, pmd_config, std::move(lpm_factory));
  return host.kernel().Spawn(host::kNoPid, host::kRootUid, "inetd", std::move(body),
                             host::ProcState::kSleeping);
}

}  // namespace ppm::daemon

// rng.h — deterministic pseudo-random number generation.
//
// The simulator owns a single seeded generator; every stochastic choice
// (load-generator burst lengths, probe jitter, workload inter-arrival
// times) draws from it, which makes whole-system runs reproducible from
// the seed alone.  The generator is xoshiro256**, chosen for speed and
// well-understood statistical quality; we avoid std::mt19937 so that the
// byte-for-byte stream is stable across standard library versions.
#pragma once

#include <cstdint>

namespace ppm::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t Next();

  // Uniform on [0, bound); bound must be nonzero.  Uses rejection
  // sampling, so the distribution is exact.
  uint64_t Below(uint64_t bound);

  // Uniform on [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi);

  // Uniform on [0, 1).
  double NextDouble();

  // Exponentially distributed with the given mean (> 0); used for
  // Poisson process inter-arrival times in the workload generators.
  double Exponential(double mean);

  // True with probability p (clamped to [0,1]).
  bool Chance(double p);

 private:
  uint64_t s_[4];
};

}  // namespace ppm::sim

// simulator.h — the discrete-event simulation kernel.
//
// Everything in the reproduction — network message delivery, kernel
// scheduling ticks, LPM timeouts, crash-coordinator probes — is an event
// on one global virtual-time queue.  The simulator is single-threaded
// and fully deterministic: events at equal timestamps fire in the order
// they were scheduled (FIFO tie-break by sequence number), and all
// randomness flows from one seeded Rng.
//
// Cancellation is by token: schedulers receive an EventId and may cancel
// it later (e.g. an LPM cancels its time-to-live timer when a new tool
// connects).  Cancelled events stay in the heap but are skipped as they
// surface, which keeps cancel O(1).
//
// Hot-path structure (see DESIGN.md §12):
//   * The heap is a plain vector managed with std::push_heap/pop_heap,
//     so pops MOVE the event out (no std::function copy per event).
//   * Run drains every ready event that shares the head timestamp into
//     a reusable batch vector in one pass, then fires the batch.  Events
//     scheduled during a batch carry later sequence numbers, so firing
//     them in a subsequent batch at the same timestamp preserves the
//     global (time, seq) order exactly.
//   * Per-label fire counters and profiler sites are resolved once at
//     schedule time; each event carries a pre-resolved handle, so the
//     fire path does no hashing.
// Run/RunUntil/Step must not be called from inside an event handler.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace ppm::obs {
class Counter;
class Gauge;
}  // namespace ppm::obs

namespace ppm::obs::prof {
class Site;
}  // namespace ppm::obs::prof

namespace ppm::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  // Returns a token usable with Cancel().
  EventId ScheduleIn(SimDuration delay, EventFn fn, const char* label = "");

  // Schedules `fn` at absolute virtual time `at` (clamped to Now()).
  EventId ScheduleAt(SimTime at, EventFn fn, const char* label = "");

  // Cancels a pending event; returns true if it had not yet fired.
  bool Cancel(EventId id);

  // Runs until the queue is empty or `until` is reached, whichever is
  // first.  Returns the number of events fired.
  size_t RunUntil(SimTime until);

  // Runs until the queue is empty.  `max_events` guards against runaway
  // self-rescheduling loops in tests.
  size_t Run(size_t max_events = 100'000'000);

  // Fires exactly one event if any is pending; returns false when idle.
  bool Step();

  // Virtual time of the next pending event, or kSimTimeNever.
  SimTime NextEventTime() const;

  size_t pending_events() const;
  uint64_t total_fired() const { return fired_; }

 private:
  // Per-label observability handles.  The slot is allocated when a label
  // is first scheduled; the counter ("sim.events.<label>") and profiler
  // site ("sim.dispatch.<label>", only when the profiler is compiled in)
  // are resolved when the label first FIRES — so labels that only ever
  // get scheduled-and-cancelled register nothing, exactly as before.
  // Addresses are stable: unordered_map never moves its nodes.
  struct LabelInfo {
    const char* label = nullptr;
    obs::Counter* counter = nullptr;
    obs::prof::Site* site = nullptr;
  };
  struct Event {
    SimTime at;
    uint64_t seq;
    EventId id;
    EventFn fn;
    LabelInfo* info;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  LabelInfo* ResolveLabel(const char* label);
  // Shared Run/RunUntil loop: fires events with at <= horizon, at most
  // max_events of them, batching same-timestamp runs.
  size_t RunLoop(SimTime horizon, size_t max_events);
  void FireEvent(const Event& ev);

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
  std::vector<Event> heap_;  // binary min-heap via std::push_heap/pop_heap
  // Current same-timestamp batch: entries [batch_pos_, batch_.size())
  // are drained from the heap but not yet fired, and still count as
  // pending.  Cleared (capacity kept) between batches.
  std::vector<Event> batch_;
  size_t batch_pos_ = 0;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
  obs::Counter* fired_counter_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  std::unordered_map<const char*, LabelInfo> labels_;
};

}  // namespace ppm::sim

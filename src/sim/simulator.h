// simulator.h — the discrete-event simulation kernel.
//
// Everything in the reproduction — network message delivery, kernel
// scheduling ticks, LPM timeouts, crash-coordinator probes — is an event
// on one global virtual-time queue.  The simulator is single-threaded
// and fully deterministic: events at equal timestamps fire in the order
// they were scheduled (FIFO tie-break by sequence number), and all
// randomness flows from one seeded Rng.
//
// Cancellation is by token: schedulers receive an EventId and may cancel
// it later (e.g. an LPM cancels its time-to-live timer when a new tool
// connects).  Cancelled events stay in the heap but are skipped on pop,
// which keeps cancel O(1).
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace ppm::obs {
class Counter;
class Gauge;
}  // namespace ppm::obs

namespace ppm::obs::prof {
class Site;
}  // namespace ppm::obs::prof

namespace ppm::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }
  Rng& rng() { return rng_; }

  // Schedules `fn` to run `delay` from now (delay < 0 is clamped to 0).
  // Returns a token usable with Cancel().
  EventId ScheduleIn(SimDuration delay, EventFn fn, const char* label = "");

  // Schedules `fn` at absolute virtual time `at` (clamped to Now()).
  EventId ScheduleAt(SimTime at, EventFn fn, const char* label = "");

  // Cancels a pending event; returns true if it had not yet fired.
  bool Cancel(EventId id);

  // Runs until the queue is empty or `until` is reached, whichever is
  // first.  Returns the number of events fired.
  size_t RunUntil(SimTime until);

  // Runs until the queue is empty.  `max_events` guards against runaway
  // self-rescheduling loops in tests.
  size_t Run(size_t max_events = 100'000'000);

  // Fires exactly one event if any is pending; returns false when idle.
  bool Step();

  // Virtual time of the next pending event, or kSimTimeNever.
  SimTime NextEventTime() const;

  size_t pending_events() const;
  uint64_t total_fired() const { return fired_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    EventId id;
    EventFn fn;
    const char* label;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopNext(Event& out);
  // Runs the event's handler, wrapped in a "sim.dispatch.<label>"
  // profiler span when the profiler is compiled in.
  void DispatchEvent(const Event& ev);
  // Bumps the per-label fire counter ("sim.events.<label>") and the
  // queue-depth gauge.  Labels are string literals, so the cache is
  // keyed by pointer — no hashing of the text on the hot path.
  void CountFire(const char* label);
  // Profiler site "sim.dispatch.<label>" for an event label, cached by
  // pointer like the counters.  Only called when the profiler is
  // compiled in; defined unconditionally so the header stays identical.
  obs::prof::Site* DispatchSite(const char* label);

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  EventId next_id_ = 1;
  uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  Rng rng_;
  obs::Counter* fired_counter_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  std::unordered_map<const char*, obs::Counter*> label_counters_;
  std::unordered_map<const char*, obs::prof::Site*> label_sites_;
};

}  // namespace ppm::sim

#include "sim/rng.h"

#include <cmath>

#include "util/panic.h"

namespace ppm::sim {

namespace {
// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // All-zero state would be absorbing; splitmix cannot produce four zero
  // outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  PPM_CHECK(bound != 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  PPM_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double mean) {
  PPM_CHECK(mean > 0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

}  // namespace ppm::sim

#include "sim/simulator.h"

#include <algorithm>
#include <limits>

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  util::Logger::Instance().set_time_source([this] { return now_; });
  obs::Tracer::Instance().set_time_source([this] { return now_; });
  obs::FlightRecorder::Instance().set_time_source([this] { return now_; });
  obs::HealthMonitor::Instance().set_time_source([this] { return now_; });
  fired_counter_ = obs::Registry::Instance().GetCounter("sim.events.fired");
  queue_gauge_ = obs::Registry::Instance().GetGauge("sim.queue.depth");
}

Simulator::~Simulator() {
  util::Logger::Instance().set_time_source(nullptr);
  obs::Tracer::Instance().set_time_source(nullptr);
  obs::FlightRecorder::Instance().set_time_source(nullptr);
  obs::HealthMonitor::Instance().set_time_source(nullptr);
}

Simulator::LabelInfo* Simulator::ResolveLabel(const char* label) {
  LabelInfo& slot = labels_[label];
  slot.label = label;
  return &slot;
}

EventId Simulator::ScheduleIn(SimDuration delay, EventFn fn, const char* label) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + static_cast<SimTime>(delay), std::move(fn), label);
}

EventId Simulator::ScheduleAt(SimTime at, EventFn fn, const char* label) {
  PPM_CHECK(fn != nullptr);
  if (at < now_) at = now_;
  EventId id = next_id_++;
  heap_.push_back(Event{at, seq_++, id, std::move(fn), ResolveLabel(label)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  queue_gauge_->Set(static_cast<double>(pending_events()));
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  // Only mark as cancelled if it could still be pending; the set is
  // cleaned as cancelled events surface.
  return cancelled_.insert(id).second;
}

void Simulator::FireEvent(const Event& ev) {
  // The scheduler's virtual clock advances only when an event actually
  // fires — cancelled entries never move time.
  now_ = ev.at;
  ++fired_;
  fired_counter_->Inc();
  queue_gauge_->Set(static_cast<double>(pending_events()));
  if (ev.info->counter == nullptr) {
    // First fire of this label: register its counter (and profiler
    // site).  Scheduled-but-never-fired labels register nothing.
    const char* base =
        (ev.info->label != nullptr && ev.info->label[0] != '\0') ? ev.info->label : "unlabeled";
    ev.info->counter = obs::Registry::Instance().GetCounter(std::string("sim.events.") + base);
#if PPM_PROF_ENABLED
    ev.info->site =
        obs::prof::ProfRegistry::Instance().GetSite(std::string("sim.dispatch.") + base);
#endif
  }
  ev.info->counter->Inc();
#if PPM_PROF_ENABLED
  // "sim.dispatch.<label>" wraps the whole handler so ppmprof's
  // per-event-kind phase breakdown accounts for (nearly) all of Run's
  // wall time.  Compiled out, the dispatch is exactly `ev.fn()`.
  PPM_PROF_SCOPE_SITE(ev.info->site);
#endif
  ev.fn();
}

size_t Simulator::RunLoop(SimTime horizon, size_t max_events) {
  size_t n = 0;
  while (n < max_events) {
    if (batch_pos_ >= batch_.size()) {
      // Refill: drain the whole run of head-timestamp events in one
      // pass.  Events a handler schedules at the same timestamp carry
      // later sequence numbers, so they land in a subsequent batch and
      // still fire in global (time, seq) order.
      batch_.clear();
      batch_pos_ = 0;
      if (heap_.empty()) break;
      SimTime ts = heap_.front().at;
      if (ts > horizon) break;  // peek, don't pop: no re-heapify on the way out
      do {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        batch_.push_back(std::move(heap_.back()));
        heap_.pop_back();
      } while (!heap_.empty() && heap_.front().at == ts);
    }
    Event& ev = batch_[batch_pos_++];
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    ++n;
    FireEvent(ev);
  }
  if (batch_pos_ >= batch_.size()) {
    batch_.clear();  // drop the fired handlers; capacity is kept
    batch_pos_ = 0;
  }
  return n;
}

size_t Simulator::RunUntil(SimTime until) {
  // The batch-run entry points carry their own span so the scheduler's
  // bookkeeping (heap pops, counters) is attributed too: the dispatch
  // spans nest under "sim.run", whose self time IS the loop overhead.
  PPM_PROF_SCOPE("sim.run");
  size_t n = RunLoop(until, std::numeric_limits<size_t>::max());
  // Advance the clock to the horizon even if the queue drained early so
  // that repeated RunUntil calls form a monotonic timeline.
  if (now_ < until) now_ = until;
  return n;
}

size_t Simulator::Run(size_t max_events) {
  PPM_PROF_SCOPE("sim.run");
  size_t n = RunLoop(kSimTimeNever, max_events);
  PPM_CHECK_MSG(n < max_events, "simulator exceeded max_events; runaway event loop?");
  return n;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    FireEvent(ev);
    return true;
  }
  return false;
}

SimTime Simulator::NextEventTime() const {
  // Unfired batch entries are the nearest pending events (they already
  // left the heap); otherwise the heap head answers in O(1) unless it
  // is cancelled, in which case scan — no copy of the queue.
  for (size_t i = batch_pos_; i < batch_.size(); ++i) {
    if (!cancelled_.count(batch_[i].id)) return batch_[i].at;
  }
  if (heap_.empty()) return kSimTimeNever;
  if (!cancelled_.count(heap_.front().id)) return heap_.front().at;
  SimTime best = kSimTimeNever;
  for (const Event& ev : heap_) {
    if (ev.at < best && !cancelled_.count(ev.id)) best = ev.at;
  }
  return best;
}

size_t Simulator::pending_events() const {
  size_t queued = heap_.size() + (batch_.size() - batch_pos_);
  return queued >= cancelled_.size() ? queued - cancelled_.size() : 0;
}

}  // namespace ppm::sim

#include "sim/simulator.h"

#include "obs/flight.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {
  util::Logger::Instance().set_time_source([this] { return now_; });
  obs::Tracer::Instance().set_time_source([this] { return now_; });
  obs::FlightRecorder::Instance().set_time_source([this] { return now_; });
  obs::HealthMonitor::Instance().set_time_source([this] { return now_; });
  fired_counter_ = obs::Registry::Instance().GetCounter("sim.events.fired");
  queue_gauge_ = obs::Registry::Instance().GetGauge("sim.queue.depth");
}

Simulator::~Simulator() {
  util::Logger::Instance().set_time_source(nullptr);
  obs::Tracer::Instance().set_time_source(nullptr);
  obs::FlightRecorder::Instance().set_time_source(nullptr);
  obs::HealthMonitor::Instance().set_time_source(nullptr);
}

EventId Simulator::ScheduleIn(SimDuration delay, EventFn fn, const char* label) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + static_cast<SimTime>(delay), std::move(fn), label);
}

EventId Simulator::ScheduleAt(SimTime at, EventFn fn, const char* label) {
  PPM_CHECK(fn != nullptr);
  if (at < now_) at = now_;
  EventId id = next_id_++;
  queue_.push(Event{at, seq_++, id, std::move(fn), label});
  queue_gauge_->Set(static_cast<double>(pending_events()));
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  // Only mark as cancelled if it could still be pending; the set is
  // cleaned as cancelled events surface at the queue head.
  return cancelled_.insert(id).second;
}

bool Simulator::PopNext(Event& out) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

void Simulator::CountFire(const char* label) {
  fired_counter_->Inc();
  queue_gauge_->Set(static_cast<double>(pending_events()));
  obs::Counter*& slot = label_counters_[label];
  if (slot == nullptr) {
    std::string name = "sim.events.";
    name += (label != nullptr && label[0] != '\0') ? label : "unlabeled";
    slot = obs::Registry::Instance().GetCounter(name);
  }
  slot->Inc();
}

obs::prof::Site* Simulator::DispatchSite(const char* label) {
  obs::prof::Site*& slot = label_sites_[label];
  if (slot == nullptr) {
    std::string name = "sim.dispatch.";
    name += (label != nullptr && label[0] != '\0') ? label : "unlabeled";
    slot = obs::prof::ProfRegistry::Instance().GetSite(name);
  }
  return slot;
}

void Simulator::DispatchEvent(const Event& ev) {
#if PPM_PROF_ENABLED
  // "sim.dispatch.<label>" wraps the whole handler so ppmprof's
  // per-event-kind phase breakdown accounts for (nearly) all of Run's
  // wall time.  Compiled out, this function is exactly `ev.fn()`.
  PPM_PROF_SCOPE_SITE(DispatchSite(ev.label));
#endif
  ev.fn();
}

size_t Simulator::RunUntil(SimTime until) {
  // The batch-run entry points carry their own span so the scheduler's
  // bookkeeping (heap pops, counters) is attributed too: the dispatch
  // spans nest under "sim.run", whose self time IS the loop overhead.
  PPM_PROF_SCOPE("sim.run");
  size_t n = 0;
  Event ev;
  while (PopNext(ev)) {
    if (ev.at > until) {
      // Past the horizon: put it back untouched for a later call.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.at;
    ++fired_;
    ++n;
    CountFire(ev.label);
    DispatchEvent(ev);
  }
  // Advance the clock to the horizon even if the queue drained early so
  // that repeated RunUntil calls form a monotonic timeline.
  if (now_ < until) now_ = until;
  return n;
}

size_t Simulator::Run(size_t max_events) {
  PPM_PROF_SCOPE("sim.run");
  size_t n = 0;
  Event ev;
  while (n < max_events && PopNext(ev)) {
    now_ = ev.at;
    ++fired_;
    ++n;
    CountFire(ev.label);
    DispatchEvent(ev);
  }
  PPM_CHECK_MSG(n < max_events, "simulator exceeded max_events; runaway event loop?");
  return n;
}

bool Simulator::Step() {
  Event ev;
  if (!PopNext(ev)) return false;
  now_ = ev.at;
  ++fired_;
  CountFire(ev.label);
  DispatchEvent(ev);
  return true;
}

SimTime Simulator::NextEventTime() const {
  // The queue may have cancelled events at the head; peek past them by
  // copying (cheap: only happens for the few cancelled-at-head cases).
  auto copy = queue_;
  while (!copy.empty()) {
    const Event& ev = copy.top();
    if (!cancelled_.count(ev.id)) return ev.at;
    copy.pop();
  }
  return kSimTimeNever;
}

size_t Simulator::pending_events() const {
  return queue_.size() >= cancelled_.size() ? queue_.size() - cancelled_.size() : 0;
}

}  // namespace ppm::sim

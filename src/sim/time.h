// time.h — the simulated time base.
//
// All latencies in the reproduction are expressed in virtual microseconds
// so that the millisecond-scale numbers of the paper's Tables 1-3 can be
// represented exactly and compared deterministically.
#pragma once

#include <cstdint>

namespace ppm::sim {

// Virtual time in microseconds since simulation start.
using SimTime = uint64_t;

// Signed duration in microseconds.
using SimDuration = int64_t;

constexpr SimTime kSimTimeNever = ~static_cast<SimTime>(0);

constexpr SimDuration Micros(int64_t us) { return us; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000; }

// Converts a virtual duration to floating-point milliseconds, the unit
// of every number reported in the paper.
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1000.0; }

}  // namespace ppm::sim
